(** Tiered-execution measurements: the VM engine run to steady state on
    the evaluation's workloads, against a tier-0-only engine and the AOT
    configurations.

    For each benchmark the same source is driven four ways:

    - {e tier0}: a {!Vm.Engine} with {!Vm.Policy.never} — a plain
      profiled interpreter, the promotion-free control;
    - {e tiered}: the full engine, warmed over [warmup] runs so
      promotions and background compiles settle, then one measured run;
    - {e AOT baseline / dbds}: the existing {!Runner.measure} numbers
      for context (compile-everything-up-front upper bounds).

    The acceptance bar mirrors the evaluation: steady-state tiered
    cycles must beat pure interpretation wherever the workload has any
    heat — the win comes from hot functions running optimized bodies
    (profile-guided DBDS included) instead of being re-interpreted. *)

let default_warmup = 4

(* Engine fuel matches Runner's workload budget: suites run tens of
   millions of interpreted instructions. *)
let fuel = 50_000_000

let measure_benchmark ?(warmup = default_warmup) ?(config = Vm.Engine.config ())
    (b : Workloads.Suite.benchmark) =
  let args = b.Workloads.Suite.args in
  let fresh () = Workloads.Suite.compile b in
  (* Tier-0-only control: same engine machinery, promotion disabled. *)
  let tier0_cfg =
    Vm.Engine.config ~policy:Vm.Policy.never ~icache:config.Vm.Engine.icache
      ~fuel ()
  in
  let tier0 = Vm.Engine.create ~config:tier0_cfg (fresh ()) in
  for _ = 1 to warmup do
    ignore (Vm.Engine.run_full tier0 ~args)
  done;
  let _, t0_stats, _ = Vm.Engine.run_full tier0 ~args in
  (* The tiered engine: first (cold) run, warmup, steady-state run. *)
  let cfg = { config with Vm.Engine.fuel } in
  let tiered = Vm.Engine.create ~config:cfg (fresh ()) in
  let tiered_result, first_stats, _ = Vm.Engine.run_full tiered ~args in
  for _ = 1 to max 0 (warmup - 1) do
    ignore (Vm.Engine.run_full tiered ~args)
  done;
  let steady_result, steady_stats, _ = Vm.Engine.run_full tiered ~args in
  if
    Interp.Machine.result_to_string tiered_result
    <> Interp.Machine.result_to_string steady_result
  then
    raise
      (Runner.Benchmark_failed
         ( b.Workloads.Suite.name,
           Printf.sprintf "tiered runs disagree: %s / %s"
             (Interp.Machine.result_to_string tiered_result)
             (Interp.Machine.result_to_string steady_result) ));
  let vs = Vm.Engine.finish tiered in
  (* AOT context rows. *)
  let aot config = Runner.measure ~jobs:1 ~config b in
  let aot_baseline = aot Dbds.Config.off in
  let aot_dbds = aot Dbds.Config.dbds in
  if
    Interp.Machine.result_to_string steady_result
    <> aot_baseline.Metrics.result_value
  then
    raise
      (Runner.Benchmark_failed
         ( b.Workloads.Suite.name,
           Printf.sprintf "tiered result %s disagrees with AOT %s"
             (Interp.Machine.result_to_string steady_result)
             aot_baseline.Metrics.result_value ));
  {
    Metrics.t_benchmark = b.Workloads.Suite.name;
    t_tier0_cycles = t0_stats.Interp.Machine.cycles;
    t_first_cycles = first_stats.Interp.Machine.cycles;
    t_steady_cycles = steady_stats.Interp.Machine.cycles;
    t_aot_baseline_cycles = aot_baseline.Metrics.peak_cycles;
    t_aot_dbds_cycles = aot_dbds.Metrics.peak_cycles;
    t_promotions = vs.Vm.Vmstats.promotions;
    t_compiles = vs.Vm.Vmstats.compiles;
    t_deopts = vs.Vm.Vmstats.deopts;
    t_max_queue_depth = vs.Vm.Vmstats.max_queue_depth;
    t_tier1_share = Vm.Vmstats.tier1_share vs;
    t_compile_work = vs.Vm.Vmstats.compile_work;
  }

(** One row per suite (its representative first benchmark), as the bench
    harness reports. *)
let measure_suite ?warmup ?config (s : Workloads.Suite.t) =
  measure_benchmark ?warmup ?config (List.hd s.Workloads.Suite.benchmarks)
