(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract —
    no exception escapes the driver, contained functions roll back to
    byte-identical pre-attempt IR, and runs are deterministic across
    [jobs] values.  Everything is seeded; violations reproduce. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
val run :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?jobs_matrix:int list ->
  unit ->
  result
