(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract —
    no exception escapes the driver, contained functions roll back to
    byte-identical pre-attempt IR, and runs are deterministic across
    [jobs] values.  Everything is seeded; violations reproduce. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
val run :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?jobs_matrix:int list ->
  unit ->
  result

type tiered_result = {
  t_pairs_run : int;  (** (graph seed × plan) pairs executed *)
  t_promotions : int;  (** promotions observed across all pairs *)
  t_deopts : int;  (** deoptimizations observed (incl. forced ones) *)
  t_compile_failures : int;  (** contained background-compile crashes *)
  t_violations : string list;  (** property breaches; [[]] = pass *)
}

(** Fuzz the tiered VM over random programs × fault plans: every engine
    run — across promotions, background-compile crashes and forced
    deoptimizations — must be byte-identical (result and final globals)
    to a fresh never-optimized interpretation, and outputs plus
    {!Vm.Vmstats.fingerprint} must agree between [jobs:1] and [jobs:4].
    Defaults: 12 seeds × 2 plans, 3 runs per pair. *)
val run_tiered :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?runs_per_pair:int ->
  unit ->
  tiered_result
