(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract —
    no exception escapes the driver, contained functions roll back to
    byte-identical pre-attempt IR, and runs are deterministic across
    [jobs] values.  Everything is seeded; violations reproduce. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
val run :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?jobs_matrix:int list ->
  unit ->
  result

type service_result = {
  s_pairs_run : int;  (** (graph seed × store fault plan) pairs executed *)
  s_store_hits : int;  (** store hits observed across warm passes *)
  s_recovered : int;
      (** contained store degradations: torn writes, read faults and
          corrupt entries that were evicted and recompiled *)
  s_violations : string list;  (** property breaches; [[]] = pass *)
}

(** Fuzz the artifact store over random programs × random
    {!Dbds.Faults.store_sites} plans (torn temp writes, torn
    publications, read faults).  Each pair runs a cold pass (empty
    store) and a warm pass (recompile against whatever the faulty cold
    pass published — including torn files) at every [jobs] value, and
    asserts: no exception escapes the driver; both passes produce
    canonical IR byte-identical to an uncached reference compile
    (corrupted artifacts must be evicted and recompiled, never served);
    outputs and store counters agree across the [jobs_matrix].
    Defaults: 10 seeds × 3 plans, at [jobs:1] and [jobs:4]. *)
val run_service :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?jobs_matrix:int list ->
  unit ->
  service_result

type tiered_result = {
  t_pairs_run : int;  (** (graph seed × plan) pairs executed *)
  t_promotions : int;  (** promotions observed across all pairs *)
  t_deopts : int;  (** deoptimizations observed (incl. forced ones) *)
  t_compile_failures : int;  (** contained background-compile crashes *)
  t_violations : string list;  (** property breaches; [[]] = pass *)
}

(** Fuzz the tiered VM over random programs × fault plans: every engine
    run — across promotions, background-compile crashes and forced
    deoptimizations — must be byte-identical (result and final globals)
    to a fresh never-optimized interpretation, and outputs plus
    {!Vm.Vmstats.fingerprint} must agree between [jobs:1] and [jobs:4].
    Defaults: 12 seeds × 2 plans, 3 runs per pair. *)
val run_tiered :
  ?graph_seeds:int list ->
  ?plans_per_graph:int ->
  ?runs_per_pair:int ->
  unit ->
  tiered_result

type frontdoor_result = {
  f_decoder_cases : int;  (** byte strings fed to the pure decoders *)
  f_server_runs : int;  (** simulated garbage-client server runs *)
  f_rejected : int;  (** structured rejections observed end-to-end *)
  f_violations : string list;  (** hardening breaches; [[]] = pass *)
}

(** Fuzz the frontdoor's framing decoders.  Two layers: the pure
    incremental decoders ({!Service.Protocol.decode} /
    [decode_binary]) on random garbage, magic-prefixed garbage, and
    mutations/truncations of well-formed messages in both framings —
    any structured outcome is acceptable, raising is the bug; then
    [server_seeds] simulated garbage-client runs against a live
    {!Service.Frontdoor} — junk must earn a structured rejection or a
    clean close (never an escaping exception or a wedged event loop),
    and a fresh well-formed connection must still be served
    afterwards.  Everything is seeded; violations reproduce. *)
val run_frontdoor :
  ?decoder_cases:int -> ?server_seeds:int -> unit -> frontdoor_result

type lab_result = {
  l_pairs_run : int;
      (** (program × tier × fault plan) jobs-identity pairs executed *)
  l_paranoid_runs : int;  (** paranoid (contract-audited) driver runs *)
  l_enables_checked : int;  (** enables-completeness checks performed *)
  l_violations : string list;  (** property breaches; [[]] = pass *)
}

(** Fuzz the workload lab and the new passes.  Corpus: every
    adversarial benchmark plus [progen_seeds] random programs with the
    irreducible-region flag on.  Three properties over the
    copyprop-canon / lospre / condelim_dup tiers (dbds as control):
    whole-run byte identity between [jobs:1] and [jobs:4], with and
    without fault plans; the paranoid driver (verifier + preserves
    audits) contains nothing on the clean corpus; and each firing of
    copyprop/lospre chased through only its declared [enables] passes
    leaves nothing for the full classic group. *)
val run_lab :
  ?progen_seeds:int list -> ?plans_per_pair:int -> unit -> lab_result
