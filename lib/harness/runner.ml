(** Compiles and measures one benchmark under one configuration. *)

exception Benchmark_failed of string * string

let compile_benchmark (b : Workloads.Suite.benchmark) =
  try Workloads.Suite.compile b with
  | Lang.Frontend.Error msg ->
      raise (Benchmark_failed (b.Workloads.Suite.name, msg))
  | Ir.Parse.Parse_error msg ->
      raise (Benchmark_failed (b.Workloads.Suite.name, msg))

let program_code_size prog =
  let total = ref 0 in
  Ir.Program.iter_functions prog (fun g ->
      total := !total + Costmodel.Estimate.graph_size g);
  !total

(* The work-unit model covers the optimizer; a real JIT also parses,
   schedules, allocates registers and emits machine code — several passes
   whose cost scales with the *final* IR size.  Charging them makes the
   compile-time ratios meaningful (the paper's +18% DBDS overhead is
   relative to a whole compilation, not to the optimizer alone). *)
let backend_passes = 60

let program_instr_count prog =
  let total = ref 0 in
  Ir.Program.iter_functions prog (fun g ->
      total := !total + Ir.Graph.live_instr_count g);
  !total

(** Compile [b] under [config], then execute its workload on the cost
    interpreter.  Fresh frontend output per call so configurations never
    share IR.  [jobs] fans the optimizer out over that many domains
    (default: all cores); results are identical for any value. *)
let measure ?(icache = Interp.Machine.default_icache) ?jobs ~config
    (b : Workloads.Suite.benchmark) =
  let prog = compile_benchmark b in
  let t0 = Unix.gettimeofday () in
  let ctx, stats = Dbds.Driver.optimize_program ~config ?jobs prog in
  let wall = Unix.gettimeofday () -. t0 in
  Opt.Phase.charge ctx (backend_passes * program_instr_count prog);
  let totals = Dbds.Driver.total_stats stats in
  let result, run_stats =
    try Interp.Machine.run ~icache ~fuel:50_000_000 prog ~args:b.Workloads.Suite.args
    with e ->
      raise
        (Benchmark_failed
           ( b.Workloads.Suite.name,
             Printf.sprintf "%s under %s" (Printexc.to_string e)
               (Dbds.Config.mode_to_string config.Dbds.Config.mode) ))
  in
  {
    Metrics.peak_cycles = run_stats.Interp.Machine.cycles;
    code_size = program_code_size prog;
    compile_work = ctx.Opt.Phase.work;
    compile_wall_s = wall;
    duplications = totals.Dbds.Driver.duplications_performed;
    candidates = totals.Dbds.Driver.candidates_found;
    contained = ctx.Opt.Phase.contained;
    passes = Opt.Phase.pass_table ctx;
    analysis_hits = ctx.Opt.Phase.analysis_hits;
    analysis_misses = ctx.Opt.Phase.analysis_misses;
    run_icache_hits = run_stats.Interp.Machine.icache_hits;
    run_icache_misses = run_stats.Interp.Machine.icache_misses;
    result_value = Interp.Machine.result_to_string result;
  }

(** Measure a benchmark under the three paper configurations, checking
    that all three compute the same result. *)
let run_benchmark ?icache ?jobs (b : Workloads.Suite.benchmark) =
  let baseline = measure ?icache ?jobs ~config:Dbds.Config.off b in
  let dbds = measure ?icache ?jobs ~config:Dbds.Config.dbds b in
  let dupalot = measure ?icache ?jobs ~config:Dbds.Config.dupalot b in
  if
    baseline.Metrics.result_value <> dbds.Metrics.result_value
    || baseline.Metrics.result_value <> dupalot.Metrics.result_value
  then
    raise
      (Benchmark_failed
         ( b.Workloads.Suite.name,
           Printf.sprintf "configurations disagree: %s / %s / %s"
             baseline.Metrics.result_value dbds.Metrics.result_value
             dupalot.Metrics.result_value ));
  {
    Metrics.benchmark = b.Workloads.Suite.name;
    baseline;
    dbds;
    dupalot;
  }

let run_suite ?icache ?jobs (s : Workloads.Suite.t) =
  List.map (run_benchmark ?icache ?jobs) s.Workloads.Suite.benchmarks
