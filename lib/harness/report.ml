(** Paper-style table rendering: one row per benchmark with the three
    metrics for DBDS and dupalot normalized to baseline, plus the
    geometric-mean footer matching the tables under Figures 5–8. *)

open Metrics

type suite_summary = {
  suite_name : string;
  figure : string;
  rows : row list;
  geo_peak_dbds : float;
  geo_peak_dupalot : float;
  geo_compile_dbds : float;
  geo_compile_dupalot : float;
  geo_size_dbds : float;
  geo_size_dupalot : float;
}

let summarize (suite : Workloads.Suite.t) rows =
  let collect f = List.map f rows in
  {
    suite_name = suite.Workloads.Suite.suite_name;
    figure = suite.Workloads.Suite.figure;
    rows;
    geo_peak_dbds =
      geomean_pct (collect (fun r -> peak_delta ~baseline:r.baseline r.dbds));
    geo_peak_dupalot =
      geomean_pct (collect (fun r -> peak_delta ~baseline:r.baseline r.dupalot));
    geo_compile_dbds =
      geomean_pct (collect (fun r -> compile_delta ~baseline:r.baseline r.dbds));
    geo_compile_dupalot =
      geomean_pct
        (collect (fun r -> compile_delta ~baseline:r.baseline r.dupalot));
    geo_size_dbds =
      geomean_pct (collect (fun r -> size_delta ~baseline:r.baseline r.dbds));
    geo_size_dupalot =
      geomean_pct (collect (fun r -> size_delta ~baseline:r.baseline r.dupalot));
  }

(* Degraded-but-complete runs must be visible in benchmark output: any
   contained optimizer failure is listed per benchmark, configuration
   and crash site. *)
let pp_contained ppf rows =
  List.iter
    (fun r ->
      List.iter
        (fun (cfg, m) ->
          if contained_total m > 0 then
            Fmt.pf ppf "  ! %s/%s: %d contained optimizer failure(s): %a@\n"
              r.benchmark cfg (contained_total m)
              Fmt.(
                list ~sep:(any ", ") (fun ppf (site, n) ->
                    pf ppf "%s x%d" site n))
              m.contained)
        [ ("baseline", r.baseline); ("dbds", r.dbds); ("dupalot", r.dupalot) ])
    rows

(* Aggregated per-pass instrumentation over a suite's rows (DBDS
   configuration), merged in pass-name order; immutable accumulation so
   the measurements' own stat records are never mutated. *)
let pp_passes ppf (s : suite_summary) =
  let merge acc (name, (st : Opt.Phase.pass_stat)) =
    let runs, fired, work, time, dsize =
      match List.assoc_opt name acc with
      | Some t -> t
      | None -> (0, 0, 0, 0.0, 0)
    in
    (name,
     ( runs + st.Opt.Phase.runs,
       fired + st.Opt.Phase.fired,
       work + st.Opt.Phase.pwork,
       time +. st.Opt.Phase.time_s,
       dsize + st.Opt.Phase.size_delta ))
    :: List.remove_assoc name acc
  in
  let table =
    List.fold_left (fun acc r -> List.fold_left merge acc r.dbds.passes) []
      s.rows
    |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
  in
  if table <> [] then begin
    Fmt.pf ppf "per-pass (dbds configuration, summed over the suite):@\n";
    Fmt.pf ppf "  %-14s %6s %6s %10s %9s %8s@\n" "pass" "runs" "fired" "work"
      "time(s)" "dsize";
    List.iter
      (fun (name, (runs, fired, work, time, dsize)) ->
        Fmt.pf ppf "  %-14s %6d %6d %10d %9.4f %8d@\n" name runs fired work
          time dsize)
      table;
    let hits, misses =
      List.fold_left
        (fun (h, m) r -> (h + r.dbds.analysis_hits, m + r.dbds.analysis_misses))
        (0, 0) s.rows
    in
    if hits + misses > 0 then
      Fmt.pf ppf "  analysis cache: %d hits, %d misses (%.1f%% hit rate)@\n"
        hits misses
        (100.0 *. float_of_int hits /. float_of_int (hits + misses))
  end

(* Run-time i-cache behaviour, summed per configuration over the
   suite's rows — the mechanism behind dupalot's peak regressions
   (more duplicated code, more modelled misses). *)
let pp_icache ppf rows =
  let totals =
    List.map
      (fun (cfg, pick) ->
        let hits, misses =
          List.fold_left
            (fun (h, m) r ->
              let mm = pick r in
              (h + mm.run_icache_hits, m + mm.run_icache_misses))
            (0, 0) rows
        in
        (cfg, hits, misses))
      [
        ("baseline", fun r -> r.baseline);
        ("dbds", fun r -> r.dbds);
        ("dupalot", fun r -> r.dupalot);
      ]
  in
  if List.exists (fun (_, h, m) -> h + m > 0) totals then begin
    Fmt.pf ppf "run i-cache (block model, summed over the suite):@\n";
    List.iter
      (fun (cfg, hits, misses) ->
        let total = hits + misses in
        Fmt.pf ppf "  %-10s %10d hits %9d misses (%5.1f%% hit rate)@\n" cfg
          hits misses
          (if total = 0 then 0.0
           else 100.0 *. float_of_int hits /. float_of_int total))
      totals
  end

let pp_suite ppf (s : suite_summary) =
  Fmt.pf ppf "%s: %s (normalized to baseline; peak higher is better,@\n"
    s.figure s.suite_name;
  Fmt.pf ppf "compile time and code size lower is better)@\n";
  Fmt.pf ppf
    "%-14s | %22s | %22s | %22s@\n" "benchmark" "peak perf %" "compile time %"
    "code size %";
  Fmt.pf ppf "%-14s | %10s %11s | %10s %11s | %10s %11s@\n" "" "DBDS" "dupalot"
    "DBDS" "dupalot" "DBDS" "dupalot";
  Fmt.pf ppf "%s@\n" (String.make 88 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s | %+10.2f %+11.2f | %+10.2f %+11.2f | %+10.2f %+11.2f@\n"
        r.benchmark
        (peak_delta ~baseline:r.baseline r.dbds)
        (peak_delta ~baseline:r.baseline r.dupalot)
        (compile_delta ~baseline:r.baseline r.dbds)
        (compile_delta ~baseline:r.baseline r.dupalot)
        (size_delta ~baseline:r.baseline r.dbds)
        (size_delta ~baseline:r.baseline r.dupalot))
    s.rows;
  Fmt.pf ppf "%s@\n" (String.make 88 '-');
  Fmt.pf ppf "%-14s | %+10.2f %+11.2f | %+10.2f %+11.2f | %+10.2f %+11.2f@\n"
    "geomean" s.geo_peak_dbds s.geo_peak_dupalot s.geo_compile_dbds
    s.geo_compile_dupalot s.geo_size_dbds s.geo_size_dupalot;
  pp_icache ppf s.rows;
  pp_passes ppf s;
  pp_contained ppf s.rows

(** The headline aggregate of the abstract: mean peak-performance
    increase, mean code-size increase, mean compile-time increase over
    every benchmark of every suite, plus the best individual speedup. *)
type headline = {
  mean_peak : float;
  mean_size : float;
  mean_compile : float;
  max_peak : float;
  max_peak_benchmark : string;
}

let headline_of summaries =
  let all_rows = List.concat_map (fun s -> s.rows) summaries in
  let peaks =
    List.map (fun r -> (peak_delta ~baseline:r.baseline r.dbds, r.benchmark)) all_rows
  in
  let max_peak, max_peak_benchmark =
    List.fold_left
      (fun (bm, bn) (m, n) -> if m > bm then (m, n) else (bm, bn))
      (neg_infinity, "-") peaks
  in
  {
    mean_peak = geomean_pct (List.map fst peaks);
    mean_size =
      geomean_pct
        (List.map (fun r -> size_delta ~baseline:r.baseline r.dbds) all_rows);
    mean_compile =
      geomean_pct
        (List.map (fun r -> compile_delta ~baseline:r.baseline r.dbds) all_rows);
    max_peak;
    max_peak_benchmark;
  }

(** Tiered-execution rows: steady-state engine cycles against the
    tier-0-only control, with warmup gain, tier-1 call share and engine
    event counts; AOT cycles shown for context. *)
let pp_tiered ppf (rows : tiered_row list) =
  Fmt.pf ppf
    "%-14s | %12s %12s %8s | %7s %6s %6s %5s | %12s@\n" "benchmark"
    "tier0 cyc" "steady cyc" "speedup" "warmup" "tier1" "promo" "deopt"
    "aot-dbds cyc";
  Fmt.pf ppf "%s@\n" (String.make 104 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf
        "%-14s | %12.0f %12.0f %+7.1f%% | %+6.1f%% %5.1f%% %6d %5d | %12.0f@\n"
        r.t_benchmark r.t_tier0_cycles r.t_steady_cycles (tiered_speedup r)
        (tiered_warmup r)
        (100.0 *. r.t_tier1_share)
        r.t_promotions r.t_deopts r.t_aot_dbds_cycles)
    rows;
  let wins =
    List.length (List.filter (fun r -> tiered_speedup r > 0.0) rows)
  in
  Fmt.pf ppf "%s@\n" (String.make 104 '-');
  Fmt.pf ppf
    "geomean steady-state speedup vs interpretation: %+.2f%% (%d/%d suites \
     improve)@\n"
    (geomean_pct (List.map tiered_speedup rows))
    wins (List.length rows)

(** Compilation-service rows: mean wall-clock per program compile with
    a cold artifact store against a warm one, the warm pass's store hit
    rate and the byte-identity check of warm vs cold canonical IR. *)
let pp_service ppf (rows : service_row list) =
  Fmt.pf ppf "%-14s | %12s %12s %8s | %8s %4s %6s %9s@\n" "suite" "cold ns"
    "warm ns" "speedup" "hit rate" "fns" "evict" "identical";
  Fmt.pf ppf "%s@\n" (String.make 87 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s | %12.0f %12.0f %7.1fx | %7.1f%% %4d %6d %9s@\n"
        r.sv_suite r.sv_cold_ns r.sv_warm_ns (service_speedup r)
        (100.0 *. r.sv_warm_hit_rate)
        r.sv_functions r.sv_evictions
        (if r.sv_identical then "yes" else "NO"))
    rows;
  Fmt.pf ppf "%s@\n" (String.make 87 '-');
  let min_speedup =
    List.fold_left (fun acc r -> min acc (service_speedup r)) infinity rows
  in
  let all_identical = List.for_all (fun r -> r.sv_identical) rows in
  Fmt.pf ppf
    "worst-case warm speedup: %.1fx over %d suites; outputs identical: %s@\n"
    (if rows = [] then 0.0 else min_speedup)
    (List.length rows)
    (if all_identical then "yes" else "NO")

(** Fleet rows: measured warm-hit cost per request, and the modeled
    throughput of the consistent-hash fleet at each size (the shard
    shapes are real ring assignments; the cross-node parallelism is the
    model — see {!Fleetbench}). *)
let pp_fleet ppf (rows : fleet_row list) =
  let sizes =
    match rows with
    | [] -> []
    | r :: _ -> List.map (fun p -> p.fp_nodes) r.fb_points
  in
  Fmt.pf ppf "%-14s | %5s %12s |" "suite" "reqs" "warm-hit ns";
  List.iter (fun k -> Fmt.pf ppf " %11s" (Printf.sprintf "x(%d nodes)" k)) sizes;
  Fmt.pf ppf " %10s@\n" "max share";
  let width = 37 + (12 * List.length sizes) + 11 in
  Fmt.pf ppf "%s@\n" (String.make width '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s | %5d %12.0f |" r.fb_suite r.fb_requests
        r.fb_warm_hit_ns;
      List.iter (fun p -> Fmt.pf ppf " %10.2fx" p.fp_scaling) r.fb_points;
      (match List.rev r.fb_points with
      | last :: _ -> Fmt.pf ppf " %9.1f%%" (100.0 *. last.fp_max_share)
      | [] -> ());
      Fmt.pf ppf "@\n")
    rows;
  Fmt.pf ppf "%s@\n" (String.make width '-');
  match List.rev rows with
  | agg :: _ when sizes <> [] ->
      let top = List.fold_left max 1 sizes in
      Fmt.pf ppf
        "modeled warm-hit scaling at %d nodes (%s): %.2fx over %d requests@\n"
        top agg.fb_suite
        (fleet_scaling_at agg top)
        agg.fb_requests
  | _ -> ()

let pp_frontdoor ppf (r : frontdoor_row) =
  Fmt.pf ppf
    "frontdoor load sweep (capacity %.0f rps, %d tenants, %d requests/point, \
     simulated):@\n"
    r.fd_capacity_rps r.fd_tenants r.fd_requests;
  Fmt.pf ppf "%-6s | %8s | %5s %5s %5s | %9s | %8s %8s %8s | %s@\n" "load"
    "offered" "done" "shed" "fail" "goodput" "p50 ms" "p95 ms" "p99 ms"
    "retry-after";
  let width = 85 in
  Fmt.pf ppf "%s@\n" (String.make width '-');
  List.iter
    (fun p ->
      Fmt.pf ppf "%5.2gx | %8.1f | %5d %5d %5d | %9.1f | %8.1f %8.1f %8.1f | %s@\n"
        p.fd_mult p.fd_offered_rps p.fd_done p.fd_shed p.fd_failed
        p.fd_goodput_rps p.fd_p50_ms p.fd_p95_ms p.fd_p99_ms
        (if p.fd_retry_after_ok then "ok" else "MISSING"))
    r.fd_points;
  Fmt.pf ppf "%s@\n" (String.make width '-');
  let peak =
    List.fold_left (fun acc p -> Float.max acc p.fd_goodput_rps) 0.0 r.fd_points
  in
  (match (frontdoor_point_at r 2.0, frontdoor_point_at r 0.5) with
  | Some over, Some calm when peak > 0.0 && calm.fd_p99_ms > 0.0 ->
      Fmt.pf ppf
        "goodput at 2x: %.1f rps (%.0f%% of peak) — interactive p99 at 2x: \
         %.1f ms (%.2fx uncontended)@\n"
        over.fd_goodput_rps
        (100.0 *. over.fd_goodput_rps /. peak)
        over.fd_p99_ms
        (over.fd_p99_ms /. calm.fd_p99_ms)
  | _ -> ());
  Fmt.pf ppf "artifacts byte-identical to oracle: %s — schedules clean: %s@\n"
    (if r.fd_identical then "yes" else "NO")
    (if r.fd_clean then "yes" else "NO")

let pp_headline ppf h =
  Fmt.pf ppf
    "headline (DBDS vs baseline over all suites):@\n\
    \  mean peak performance:  %+.2f%%   (paper: +5.89%%)@\n\
    \  best peak performance:  %+.2f%% on %s (paper: up to ~40%%)@\n\
    \  mean code size:         %+.2f%%   (paper: +9.93%%)@\n\
    \  mean compile time:      %+.2f%%   (paper: +18.44%%)@\n"
    h.mean_peak h.max_peak h.max_peak_benchmark h.mean_size h.mean_compile
