(** Fleet warm-hit throughput at 1→N nodes — see the interface. *)

let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ())

(* A single-function program sharing the base program's class table and
   globals — the unit the service compiles (as in Servicebench). *)
let lone (base : Ir.Program.t) g =
  let functions = Hashtbl.create 1 in
  Hashtbl.replace functions (Ir.Graph.name g) g;
  {
    Ir.Program.classes = base.Ir.Program.classes;
    globals = base.Ir.Program.globals;
    functions;
    main = Ir.Graph.name g;
  }

let requests_of sources =
  List.concat_map
    (fun src ->
      let prog = Lang.Frontend.compile src in
      List.filter_map
        (fun name ->
          Option.map (lone prog) (Ir.Program.find_function prog name))
        (Ir.Program.function_names prog))
    sources

(* The digest the router shards by: identical to what the store-backed
   driver cache computes for the request. *)
let digest_of ~config p =
  let g = Option.get (Ir.Program.find_function p p.Ir.Program.main) in
  Service.Digest.of_request
    (Service.Digest.request_of_graph
       ~context:(Service.Digest.context_of_program p)
       ~config g)

let compile_pass ~config ~store reqs =
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun p ->
      let cache =
        Service.Store.driver_cache
          ~context:(Service.Digest.context_of_program p)
          store
      in
      ignore
        (Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1
           ~cache p))
    reqs;
  Unix.gettimeofday () -. t0

let warm_reps = 3

(* The same node-id scheme dbdsc --fleet-join defaults to. *)
let node_ids k = List.init k (fun i -> Printf.sprintf "node-%d" (i + 1))

(* Shard (digest, per-request seconds) pairs over a K-node ring; the
   fleet's modeled capacity is bounded by its most loaded node. *)
let point_of ~costed k =
  let ring = Service.Ring.create (node_ids k) in
  let load = Hashtbl.create 8 in
  let requests = List.length costed in
  let count = Hashtbl.create 8 in
  List.iter
    (fun (digest, cost_s) ->
      match Service.Ring.lookup ring digest with
      | Some id ->
          Hashtbl.replace load id
            (cost_s +. Option.value ~default:0.0 (Hashtbl.find_opt load id));
          Hashtbl.replace count id
            (1 + Option.value ~default:0 (Hashtbl.find_opt count id))
      | None -> ())
    costed;
  let makespan_s = Hashtbl.fold (fun _ s acc -> max s acc) load 0.0 in
  let max_count = Hashtbl.fold (fun _ n acc -> max n acc) count 0 in
  {
    Metrics.fp_nodes = k;
    fp_max_share =
      (if requests = 0 then 0.0
       else float_of_int max_count /. float_of_int requests);
    fp_throughput_rps =
      (if makespan_s <= 0.0 then 0.0 else float_of_int requests /. makespan_s);
    fp_scaling = 1.0;
  }

let points_of ~costed fleet_sizes =
  let points = List.map (point_of ~costed) (List.sort compare fleet_sizes) in
  match points with
  | [] -> []
  | base :: _ ->
      List.map
        (fun p ->
          {
            p with
            Metrics.fp_scaling =
              (if base.Metrics.fp_throughput_rps <= 0.0 then 0.0
               else p.Metrics.fp_throughput_rps /. base.Metrics.fp_throughput_rps);
          })
        points

let row_of ~suite_name ~fleet_sizes ~replicas ~warm_ns costed =
  {
    Metrics.fb_suite = suite_name;
    fb_requests = List.length costed;
    fb_warm_hit_ns = warm_ns;
    fb_replicas = replicas;
    fb_points = points_of ~costed fleet_sizes;
  }

(* Measure one suite's warm-hit cost and return the costed digests too,
   so [run] can build the all-suites aggregate without re-measuring. *)
let measure_costed ?(fleet_sizes = [ 1; 2; 3 ]) ?(replicas = 1)
    (suite : Workloads.Suite.t) =
  let config = Dbds.Config.dbds in
  let dir = Filename.temp_dir "dbds-fleet-bench" ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Service.Store.create ~dir () in
  let sources =
    List.map
      (fun b -> b.Workloads.Suite.source)
      suite.Workloads.Suite.benchmarks
  in
  (* Publish everything (untimed), then keep the fastest warm pass. *)
  ignore (compile_pass ~config ~store (requests_of sources));
  let warm_s =
    List.fold_left min infinity
      (List.init warm_reps (fun _ ->
           compile_pass ~config ~store (requests_of sources)))
  in
  let digests = List.map (digest_of ~config) (requests_of sources) in
  let requests = max 1 (List.length digests) in
  let per_request_s = warm_s /. float_of_int requests in
  let costed = List.map (fun d -> (d, per_request_s)) digests in
  ( row_of
      ~suite_name:suite.Workloads.Suite.suite_name
      ~fleet_sizes ~replicas
      ~warm_ns:(per_request_s *. 1e9)
      costed,
    costed )

let measure_suite ?fleet_sizes ?replicas suite =
  fst (measure_costed ?fleet_sizes ?replicas suite)

let run ?(fleet_sizes = [ 1; 2; 3 ]) ?(replicas = 1)
    ?(suites = Workloads.Registry.all) () =
  let rows, costed =
    List.split (List.map (measure_costed ~fleet_sizes ~replicas) suites)
  in
  let all = List.concat costed in
  let total_s = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 all in
  let aggregate =
    row_of ~suite_name:"all-suites" ~fleet_sizes ~replicas
      ~warm_ns:
        (if all = [] then 0.0
         else total_s /. float_of_int (List.length all) *. 1e9)
      all
  in
  rows @ [ aggregate ]
