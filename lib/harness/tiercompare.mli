(** Tier comparison over the adversarial workload lab: every
    {!Workloads.Registry.adversarial} benchmark compiled and run under
    the seven tiers (off, copyprop-canon, lospre, condelim_dup, dbds,
    dupalot, backtracking), with a cross-[jobs] determinism
    fingerprint.  See DESIGN.md §16. *)

(** The tier labels and configurations, in report/JSON column order. *)
val tiers : (string * Dbds.Config.t) list

(** Labels of tiers that duplicate code. *)
val duplication_tiers : string list

(** Measure one benchmark under every tier.
    @raise Runner.Benchmark_failed when any tier's result disagrees. *)
val measure_benchmark :
  ?jobs:int ->
  suite:string ->
  Workloads.Suite.benchmark ->
  Metrics.tier_row

(** The full lab table, suite by suite. *)
val run : ?jobs:int -> unit -> Metrics.tier_row list

(** Hex digest of every lab benchmark's optimized IR under every tier —
    must be identical for any [jobs]. *)
val fingerprint : ?jobs:int -> unit -> string

(** Total peak cycles of [tier] over [suite]'s rows. *)
val suite_peak : Metrics.tier_row list -> suite:string -> tier:string -> float

val pp : Format.formatter -> Metrics.tier_row list -> unit
