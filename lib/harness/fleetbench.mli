(** Fleet benchmark: warm-hit serving throughput at 1→N nodes.

    The fleet's steady state is warm-hit serving: every artifact is
    already published, and each request is a digest lookup answered
    from the owner's disk.  This bench measures that per-request cost
    for real — each suite's functions are compiled into a scratch
    store, then re-requested through the store-backed driver cache,
    keeping the fastest of a few warm passes — and then {e models} the
    fleet's throughput at each size: the request digests are sharded
    over the consistent-hash ring exactly as the router shards them
    (same {!Service.Ring}, same node-id scheme as [dbdsc --fleet-join]
    defaults), each node serves its shard at the measured per-request
    cost, and throughput is bounded by the most loaded node.

    The cross-node parallelism is modeled, not measured — bench hosts
    (CI containers in particular) are frequently single-core, where a
    wall-clock "fleet speedup" would measure the OS scheduler, not the
    sharding.  The JSON emitted from these rows labels every modeled
    figure with a [_model] suffix, per the perf section's precedent. *)

(** Measure one suite at the given fleet sizes (default [1; 2; 3], a
    coordinator plus K workers) with [replicas] successor copies
    assumed on publish (default 1; replication does not change the
    owner-serves model, it is recorded for context).  The scratch
    store directory is removed on exit. *)
val measure_suite :
  ?fleet_sizes:int list ->
  ?replicas:int ->
  Workloads.Suite.t ->
  Metrics.fleet_row

(** Measure every suite (default {!Workloads.Registry.all}) and append
    the all-suites aggregate row ([fb_suite = "all-suites"]): every
    suite's digests sharded together, each costed at its own suite's
    measured warm-hit ns — the fleet-wide headline number. *)
val run :
  ?fleet_sizes:int list ->
  ?replicas:int ->
  ?suites:Workloads.Suite.t list ->
  unit ->
  Metrics.fleet_row list
