(** The experiment definitions: one entry per paper artifact (see the
    experiment index in DESIGN.md §4), each able to regenerate its rows.
    [bin/experiments.exe] prints all of them; [bench/main.exe] wraps the
    compile-time measurements in Bechamel. *)

(* ------------------------------------------------------------------ *)
(* Figures 5–8                                                         *)
(* ------------------------------------------------------------------ *)

let run_figure suite =
  let rows = Runner.run_suite suite in
  Report.summarize suite rows

let run_all_figures () = List.map run_figure Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Ablation: backtracking vs simulation compile time (paper §3.1)      *)
(* ------------------------------------------------------------------ *)

type backtracking_row = {
  bt_benchmark : string;
  dbds_work : int;
  backtracking_work : int;
  ratio : float;
}

(** The paper reports that the graph-copying backtracking strategy
    increased compilation time ~10x; this reproduces the comparison on a
    sample of benchmarks (backtracking is expensive — that is the
    point). *)
let run_backtracking_ablation ?(benchmarks_per_suite = 2) () =
  let sample (s : Workloads.Suite.t) =
    List.filteri (fun i _ -> i < benchmarks_per_suite) s.Workloads.Suite.benchmarks
  in
  let benchmarks = List.concat_map sample Workloads.Registry.all in
  List.map
    (fun b ->
      let dbds = Runner.measure ~config:Dbds.Config.dbds b in
      let bt = Runner.measure ~config:Dbds.Config.backtracking b in
      {
        bt_benchmark = b.Workloads.Suite.name;
        dbds_work = dbds.Metrics.compile_work;
        backtracking_work = bt.Metrics.compile_work;
        ratio =
          float_of_int bt.Metrics.compile_work
          /. float_of_int (max dbds.Metrics.compile_work 1);
      })
    benchmarks

let pp_backtracking ppf rows =
  Fmt.pf ppf "Ablation (paper §3.1): backtracking vs DBDS compile effort@\n";
  Fmt.pf ppf "%-14s | %12s | %14s | %7s@\n" "benchmark" "DBDS work"
    "backtrack work" "ratio";
  Fmt.pf ppf "%s@\n" (String.make 56 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s | %12d | %14d | %6.1fx@\n" r.bt_benchmark r.dbds_work
        r.backtracking_work r.ratio)
    rows;
  let geo =
    Metrics.geomean_pct (List.map (fun r -> (r.ratio -. 1.0) *. 100.0) rows)
  in
  Fmt.pf ppf "%s@\n" (String.make 56 '-');
  Fmt.pf ppf "%-14s | %43.1fx@\n" "geomean" (1.0 +. (geo /. 100.0))

(* ------------------------------------------------------------------ *)
(* Ablation: DBDS iteration count (paper §5.2)                         *)
(* ------------------------------------------------------------------ *)

type iteration_row = {
  it_iterations : int;
  it_peak : float;  (** geomean peak delta vs baseline *)
  it_compile : float;
  it_size : float;
}

let run_iteration_ablation ?(suite = Workloads.Micro.suite) () =
  let measure_config config b =
    Runner.measure ~config b
  in
  let baseline =
    List.map (measure_config Dbds.Config.off) suite.Workloads.Suite.benchmarks
  in
  List.map
    (fun iters ->
      let config = { Dbds.Config.default with Dbds.Config.max_iterations = iters } in
      let ms =
        List.map (measure_config config) suite.Workloads.Suite.benchmarks
      in
      let deltas f = List.map2 f baseline ms in
      {
        it_iterations = iters;
        it_peak =
          Metrics.geomean_pct
            (deltas (fun b m -> Metrics.peak_delta ~baseline:b m));
        it_compile =
          Metrics.geomean_pct
            (deltas (fun b m -> Metrics.compile_delta ~baseline:b m));
        it_size =
          Metrics.geomean_pct
            (deltas (fun b m -> Metrics.size_delta ~baseline:b m));
      })
    [ 1; 2; 3; 4 ]

let pp_iterations ppf rows =
  Fmt.pf ppf "Ablation (paper §5.2): DBDS iteration count (micro suite)@\n";
  Fmt.pf ppf "%10s | %10s | %14s | %11s@\n" "iterations" "peak %" "compile %"
    "size %";
  Fmt.pf ppf "%s@\n" (String.make 54 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%10d | %+10.2f | %+14.2f | %+11.2f@\n" r.it_iterations
        r.it_peak r.it_compile r.it_size)
    rows

(* ------------------------------------------------------------------ *)
(* Ablation: trade-off constants (paper §5.4)                          *)
(* ------------------------------------------------------------------ *)

type budget_row = {
  bd_label : string;
  bd_peak : float;
  bd_size : float;
  bd_duplications : int;
}

let run_budget_ablation ?(suite = Workloads.Micro.suite) () =
  let baseline =
    List.map
      (fun b -> Runner.measure ~config:Dbds.Config.off b)
      suite.Workloads.Suite.benchmarks
  in
  let eval label config =
    let ms =
      List.map
        (fun b -> Runner.measure ~config b)
        suite.Workloads.Suite.benchmarks
    in
    {
      bd_label = label;
      bd_peak =
        Metrics.geomean_pct
          (List.map2 (fun b m -> Metrics.peak_delta ~baseline:b m) baseline ms);
      bd_size =
        Metrics.geomean_pct
          (List.map2 (fun b m -> Metrics.size_delta ~baseline:b m) baseline ms);
      bd_duplications =
        List.fold_left (fun n m -> n + m.Metrics.duplications) 0 ms;
    }
  in
  List.map
    (fun (label, bs, ib) ->
      eval label
        {
          Dbds.Config.default with
          Dbds.Config.benefit_scale = bs;
          Dbds.Config.size_budget = ib;
        })
    [
      ("BS=1    IB=1.5", 1.0, 1.5);
      ("BS=16   IB=1.5", 16.0, 1.5);
      ("BS=256  IB=1.5", 256.0, 1.5);
      ("BS=4096 IB=1.5", 4096.0, 1.5);
      ("BS=256  IB=1.1", 256.0, 1.1);
      ("BS=256  IB=3.0", 256.0, 3.0);
    ]

let pp_budget ppf rows =
  Fmt.pf ppf
    "Ablation (paper §5.4): benefit scale BS and size budget IB (micro suite)@\n";
  Fmt.pf ppf "%-16s | %10s | %11s | %13s@\n" "config" "peak %" "size %"
    "duplications";
  Fmt.pf ppf "%s@\n" (String.make 58 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s | %+10.2f | %+11.2f | %13d@\n" r.bd_label r.bd_peak
        r.bd_size r.bd_duplications)
    rows

(* ------------------------------------------------------------------ *)
(* Extension: path-based duplication (paper §8 future work)            *)
(* ------------------------------------------------------------------ *)

type path_row = {
  pd_suite : string;
  pd_peak_plain : float;
  pd_peak_paths : float;
  pd_compile_plain : float;
  pd_compile_paths : float;
  pd_size_plain : float;
  pd_size_paths : float;
}

(** The paper's §8 asks whether duplicating over multiple merges along
    paths can "increase peak performance even further": compare plain
    DBDS against DBDS with the path extension on every suite. *)
let run_path_ablation () =
  List.map
    (fun (suite : Workloads.Suite.t) ->
      let baseline =
        List.map
          (fun b -> Runner.measure ~config:Dbds.Config.off b)
          suite.Workloads.Suite.benchmarks
      in
      let eval config =
        List.map
          (fun b -> Runner.measure ~config b)
          suite.Workloads.Suite.benchmarks
      in
      let plain = eval Dbds.Config.dbds in
      let paths = eval Dbds.Config.dbds_paths in
      let geo f ms =
        Metrics.geomean_pct (List.map2 (fun b m -> f b m) baseline ms)
      in
      {
        pd_suite = suite.Workloads.Suite.suite_name;
        pd_peak_plain = geo (fun b m -> Metrics.peak_delta ~baseline:b m) plain;
        pd_peak_paths = geo (fun b m -> Metrics.peak_delta ~baseline:b m) paths;
        pd_compile_plain =
          geo (fun b m -> Metrics.compile_delta ~baseline:b m) plain;
        pd_compile_paths =
          geo (fun b m -> Metrics.compile_delta ~baseline:b m) paths;
        pd_size_plain = geo (fun b m -> Metrics.size_delta ~baseline:b m) plain;
        pd_size_paths = geo (fun b m -> Metrics.size_delta ~baseline:b m) paths;
      })
    Workloads.Registry.all

let pp_path_ablation ppf rows =
  Fmt.pf ppf
    "Extension (paper §8): path-based duplication vs plain DBDS (geomeans vs \
     baseline)@\n";
  Fmt.pf ppf "%-16s | %9s %9s | %9s %9s | %9s %9s@\n" "suite" "pk-dbds"
    "pk-paths" "ct-dbds" "ct-paths" "sz-dbds" "sz-paths";
  Fmt.pf ppf "%s@\n" (String.make 80 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-16s | %+9.2f %+9.2f | %+9.2f %+9.2f | %+9.2f %+9.2f@\n"
        r.pd_suite r.pd_peak_plain r.pd_peak_paths r.pd_compile_plain
        r.pd_compile_paths r.pd_size_plain r.pd_size_paths)
    rows

(* ------------------------------------------------------------------ *)
(* Figure 4: the node cost model example                               *)
(* ------------------------------------------------------------------ *)

(** Rebuild Figure 4's two-block example and report the estimated times
    before and after duplication (the paper's table computes 14 → 12.2
    cycles with its node costs; the mechanism — constant folding removes
    the multiply from the 90% path — is identical under our table). *)
let figure4 () =
  let src =
    {|
    global int sink;
    int main(int p0) {
      int phi;
      if (p0 > 0) @0.9 { phi = 3; } else { phi = p0; }
      int m = phi * 3;
      sink = m;
      return m;
    }
    |}
  in
  let before = Lang.Frontend.compile src in
  let after = Ir.Program.copy before in
  let _ = Dbds.Driver.optimize_program ~config:Dbds.Config.off before in
  let _ = Dbds.Driver.optimize_program ~config:Dbds.Config.dbds after in
  let cycles p =
    Costmodel.Estimate.weighted_cycles
      (Option.get (Ir.Program.find_function p "main"))
  in
  (cycles before, cycles after)

let pp_figure4 ppf (before, after) =
  Fmt.pf ppf
    "Figure 4 (node cost model example): estimated %.1f cycles before, %.1f \
     after duplication (saving %.1f; the paper's instance saves 1.8 with its \
     store=10/mul=2/return=2 table)@\n"
    before after (before -. after)
