(** Measurement records and derived statistics for the evaluation
    harness.  The three metrics mirror paper §6.1:

    - {e peak performance}: total cost-model cycles charged by the
      interpreter (with the i-cache model active) running the benchmark's
      workload — lower is better, reported as speedup vs. baseline;
    - {e compile time}: deterministic work units accumulated by all
      phases plus a backend charge over the final IR (wall-clock is
      measured separately by the Bechamel benches);
    - {e code size}: cost-model size of all optimized functions. *)

type measurement = {
  peak_cycles : float;
  code_size : int;
  compile_work : int;
  compile_wall_s : float;
  duplications : int;
  candidates : int;
  contained : (string * int) list;
      (** contained per-function optimizer failures, per crash site —
          a degraded-but-complete compilation, never silent *)
  passes : (string * Opt.Phase.pass_stat) list;
      (** per-pass instrumentation from the pass manager, sorted by
          pass name; all columns except wall time are deterministic *)
  analysis_hits : int;  (** {!Ir.Analyses} cache hits during compile *)
  analysis_misses : int;  (** ... and misses (= real recomputes) *)
  run_icache_hits : int;  (** interpreter i-cache hits during the run *)
  run_icache_misses : int;  (** ... and misses (each charges a penalty) *)
  result_value : string;  (** for cross-configuration sanity checking *)
}

(** Total contained failures across all sites. *)
val contained_total : measurement -> int

(** Analysis-cache hit rate in [0,1]; 0 when nothing was queried. *)
val analysis_hit_rate : measurement -> float

(** Run-time i-cache hit rate in [0,1]; 0 when the model never fired. *)
val run_icache_hit_rate : measurement -> float

type row = {
  benchmark : string;
  baseline : measurement;
  dbds : measurement;
  dupalot : measurement;
}

(** Relative change against a base value, as a percentage. *)
val pct_change : base:float -> float -> float

(** Peak performance delta (%); positive = faster than baseline. *)
val peak_delta : baseline:measurement -> measurement -> float

val compile_delta : baseline:measurement -> measurement -> float
val size_delta : baseline:measurement -> measurement -> float

(** One benchmark's tiered-execution comparison: steady-state cycles of
    the tiered engine against a tier-0-only engine on the same workload,
    with the AOT configurations for context.  Plain data so the harness
    report and the bench JSON writer need no [vm] dependency. *)
type tiered_row = {
  t_benchmark : string;
  t_tier0_cycles : float;  (** tier-0-only engine, steady-state run *)
  t_first_cycles : float;  (** tiered engine, first (cold) run *)
  t_steady_cycles : float;  (** tiered engine, steady-state run *)
  t_aot_baseline_cycles : float;
  t_aot_dbds_cycles : float;
  t_promotions : int;
  t_compiles : int;
  t_deopts : int;
  t_max_queue_depth : int;
  t_tier1_share : float;  (** fraction of calls served by optimized code *)
  t_compile_work : int;  (** background compile effort, work units *)
}

(** Steady-state speedup of tiered execution over pure interpretation
    (%); positive = tiering pays. *)
val tiered_speedup : tiered_row -> float

(** Warmup gain: steady-state vs the engine's own first (cold) run (%). *)
val tiered_warmup : tiered_row -> float

(** One benchmark × tier cell of the adversarial workload-lab
    comparison ({!Tiercompare}). *)
type tier_cell = {
  tc_tier : string;
  tc_peak_cycles : float;
  tc_code_size : int;
  tc_compile_work : int;
  tc_decisions : int;
      (** duplication tiers: duplications performed; upgrade-pass tiers:
          times the tier's pass fired; off: 0 *)
}

(** One adversarial benchmark's row: a cell per tier, in
    {!Tiercompare.tiers} order. *)
type tier_row = {
  tc_suite : string;
  tc_benchmark : string;
  tc_cells : tier_cell list;
}

(** One suite's compilation-service comparison: mean wall-clock per
    program compile against a cold (empty) artifact store vs a warm
    (populated) one, with the warm pass's store hit rate and the
    byte-identity check of the resulting canonical IR.  Plain data so
    the report and the bench JSON writer need no [service]
    dependency. *)
type service_row = {
  sv_suite : string;
  sv_programs : int;  (** program compiles per pass *)
  sv_functions : int;  (** function artifacts involved per pass *)
  sv_cold_ns : float;  (** mean ns per program compile, empty store *)
  sv_warm_ns : float;  (** ... recompiling against the warm store *)
  sv_warm_hit_rate : float;  (** store hit rate during the warm pass *)
  sv_identical : bool;  (** warm canonical IR byte-identical to cold *)
  sv_evictions : int;  (** LRU GC victims over the cold + warm passes *)
}

(** Warm-over-cold compile-time ratio; the service's headline number. *)
val service_speedup : service_row -> float

(** One fleet size's modeled warm-hit serving capacity: the request
    digests are sharded over the consistent-hash ring exactly as the
    router shards them, each node serves its shard at the {e measured}
    per-request warm-hit cost, and the fleet's throughput is bounded by
    its most loaded node.  The parallelism across nodes is modeled
    (bench hosts are often single-core); the per-request cost and the
    shard shapes are real. *)
type fleet_point = {
  fp_nodes : int;  (** fleet size *)
  fp_max_share : float;  (** the most loaded node's share of requests *)
  fp_throughput_rps : float;  (** modeled warm-hit requests per second *)
  fp_scaling : float;  (** modeled throughput vs the 1-node fleet *)
}

(** One suite's fleet scaling row (plus the all-suites aggregate).
    Plain data so the report and the bench JSON writer need no
    [service] dependency. *)
type fleet_row = {
  fb_suite : string;
  fb_requests : int;  (** distinct warm-hit request digests routed *)
  fb_warm_hit_ns : float;  (** measured ns per warm-hit request *)
  fb_replicas : int;  (** successor copies assumed on publish *)
  fb_points : fleet_point list;  (** one per fleet size, ascending *)
}

(** Modeled scaling at fleet size [n]; 0 when the size was not swept. *)
val fleet_scaling_at : fleet_row -> int -> float

(** One offered-load point of the frontdoor overload sweep, measured
    under the deterministic simulator: open-loop arrivals at
    [fd_mult] times the broker's service capacity, split over an
    interactive and a batch tenant with mixed text/binary framing.
    Latencies are client-observed virtual time on the {e interactive}
    lane — the lane the acceptance gate holds to its p99 bound. *)
type frontdoor_point = {
  fd_mult : float;  (** offered load as a multiple of capacity *)
  fd_offered_rps : float;
  fd_sent : int;  (** requests fired at this point *)
  fd_done : int;  (** answered with an artifact *)
  fd_shed : int;  (** refused by admission control *)
  fd_failed : int;  (** anything else (transport, timeout, ...) *)
  fd_goodput_rps : float;  (** completed artifacts per virtual second *)
  fd_p50_ms : float;  (** interactive-lane client-observed latency *)
  fd_p95_ms : float;
  fd_p99_ms : float;
  fd_retry_after_ok : bool;  (** every shed carried a retry-after hint *)
}

(** The frontdoor load-sweep row.  Plain data so the report and the
    bench JSON writer need no [service] dependency. *)
type frontdoor_row = {
  fd_capacity_rps : float;  (** broker service capacity (workers/delay) *)
  fd_tenants : int;
  fd_requests : int;  (** requests fired per point *)
  fd_points : frontdoor_point list;  (** ascending by [fd_mult] *)
  fd_identical : bool;  (** every served IR matched the offline oracle *)
  fd_clean : bool;  (** every point's simulated schedule ran clean *)
}

(** The point swept at [mult] times capacity, if any. *)
val frontdoor_point_at : frontdoor_row -> float -> frontdoor_point option

(** Geometric mean of percentage deltas: geomean of the ratios
    (1 + d/100) minus one, as the paper's tables report. *)
val geomean_pct : float list -> float
