(** Tier comparison over the adversarial workload lab ({!Workloads.Advgen}).

    Every lab benchmark is compiled and run under seven tiers:

    - [off] — the classic pipeline, no duplication, no upgrades;
    - [copyprop-canon] — classic fixpoint plus optimistic copy
      propagation (arXiv 2207.03894) as a canonicalization upgrade;
    - [lospre] — classic fixpoint plus linear-time speculative PRE
      (arXiv 2011.10789);
    - [condelim_dup] — greedy conditional elimination through
      duplication (arXiv 1106.3478), no trade-off;
    - [dbds] / [dupalot] / [backtracking] — the paper's tiers.

    Per cell we record peak cycles, code size, compile work and the
    tier's decision count (duplications for duplication tiers, pass
    firings for the upgrade passes).  All tiers must agree on every
    benchmark's result — the lab's differential invariant — and the
    whole table must be byte-deterministic at any [jobs] value, which
    {!fingerprint} lets CI check cheaply. *)

let spec_of s =
  match Opt.Spec.of_string s with
  | Ok spec -> spec
  | Error msg -> invalid_arg ("Tiercompare.spec_of: " ^ msg)

(* The baseline fixpoint group with one extra pass folded in.  The
   upgrade passes stay out of the calibrated default group (digest
   stability), so the lab opts in per tier via an explicit spec. *)
let upgraded pass =
  {
    Dbds.Config.off with
    Dbds.Config.passes =
      Some
        (spec_of
           ("inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce,"
          ^ pass ^ ")"));
  }

let tiers : (string * Dbds.Config.t) list =
  [
    ("off", Dbds.Config.off);
    ("copyprop-canon", upgraded "copyprop");
    ("lospre", upgraded "lospre");
    ("condelim_dup", Dbds.Config.condelim_dup);
    ("dbds", Dbds.Config.dbds);
    ("dupalot", Dbds.Config.dupalot);
    ("backtracking", Dbds.Config.backtracking);
  ]

(** The tiers that duplicate code (candidates for the lab's
    giant-switch win gate). *)
let duplication_tiers = [ "condelim_dup"; "dbds"; "dupalot"; "backtracking" ]

let fired pass stats =
  match List.assoc_opt pass stats with
  | Some (s : Opt.Phase.pass_stat) -> s.Opt.Phase.fired
  | None -> 0

let decisions ~tier (m : Metrics.measurement) =
  match tier with
  | "off" -> 0
  | "copyprop-canon" -> fired "copyprop" m.Metrics.passes
  | "lospre" -> fired "lospre" m.Metrics.passes
  | _ -> m.Metrics.duplications

let measure_benchmark ?jobs ~suite (b : Workloads.Suite.benchmark) =
  let measured =
    List.map (fun (tier, config) -> (tier, Runner.measure ?jobs ~config b)) tiers
  in
  (match measured with
  | (_, first) :: rest ->
      List.iter
        (fun (tier, (m : Metrics.measurement)) ->
          if m.Metrics.result_value <> first.Metrics.result_value then
            raise
              (Runner.Benchmark_failed
                 ( b.Workloads.Suite.name,
                   Printf.sprintf "tier %s computes %s, off computes %s" tier
                     m.Metrics.result_value first.Metrics.result_value )))
        rest
  | [] -> ());
  {
    Metrics.tc_suite = suite;
    tc_benchmark = b.Workloads.Suite.name;
    tc_cells =
      List.map
        (fun (tier, (m : Metrics.measurement)) ->
          {
            Metrics.tc_tier = tier;
            tc_peak_cycles = m.Metrics.peak_cycles;
            tc_code_size = m.Metrics.code_size;
            tc_compile_work = m.Metrics.compile_work;
            tc_decisions = decisions ~tier m;
          })
        measured;
  }

(** The full lab table: every adversarial benchmark under every tier. *)
let run ?jobs () =
  List.concat_map
    (fun (s : Workloads.Suite.t) ->
      List.map
        (measure_benchmark ?jobs ~suite:s.Workloads.Suite.suite_name)
        s.Workloads.Suite.benchmarks)
    Workloads.Registry.adversarial

(** Hex digest of the optimized IR of every lab benchmark under every
    tier — the cheap cross-[jobs] byte-identity probe for CI. *)
let fingerprint ?jobs () =
  let buf = Buffer.create 65536 in
  List.iter
    (fun (s : Workloads.Suite.t) ->
      List.iter
        (fun (b : Workloads.Suite.benchmark) ->
          List.iter
            (fun (tier, config) ->
              Buffer.add_string buf
                (Printf.sprintf "%s/%s/%s\n" s.Workloads.Suite.suite_name
                   b.Workloads.Suite.name tier);
              let prog = Workloads.Suite.compile b in
              ignore (Dbds.Driver.optimize_program ~config ?jobs prog);
              Ir.Program.iter_functions prog (fun g ->
                  Buffer.add_string buf (Ir.Printer.graph_to_string g)))
            tiers)
        s.Workloads.Suite.benchmarks)
    Workloads.Registry.adversarial;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(** Peak-cycle total of one tier over one suite's rows. *)
let suite_peak rows ~suite ~tier =
  List.fold_left
    (fun acc (r : Metrics.tier_row) ->
      if r.Metrics.tc_suite <> suite then acc
      else
        List.fold_left
          (fun acc (c : Metrics.tier_cell) ->
            if c.Metrics.tc_tier = tier then acc +. c.Metrics.tc_peak_cycles
            else acc)
          acc r.Metrics.tc_cells)
    0.0 rows

let pp ppf rows =
  let current = ref "" in
  List.iter
    (fun (r : Metrics.tier_row) ->
      if r.Metrics.tc_suite <> !current then begin
        current := r.Metrics.tc_suite;
        Fmt.pf ppf "@.[%s]@." r.Metrics.tc_suite
      end;
      Fmt.pf ppf "  %-10s" r.Metrics.tc_benchmark;
      let off =
        List.find
          (fun (c : Metrics.tier_cell) -> c.Metrics.tc_tier = "off")
          r.Metrics.tc_cells
      in
      List.iter
        (fun (c : Metrics.tier_cell) ->
          if c.Metrics.tc_tier <> "off" then
            Fmt.pf ppf " %s:%+.1f%%/%+d"
              c.Metrics.tc_tier
              (Metrics.pct_change
                 ~base:(max off.Metrics.tc_peak_cycles 1.0)
                 c.Metrics.tc_peak_cycles)
              (c.Metrics.tc_code_size - off.Metrics.tc_code_size))
        r.Metrics.tc_cells;
      Fmt.pf ppf "@.")
    rows;
  Fmt.pf ppf
    "@.(per tier: peak-cycle delta vs off — negative = faster — and code-size \
     delta)@."
