(** Measurement records and derived statistics for the evaluation
    harness.  The three metrics mirror paper §6.1:

    - {e peak performance}: total cost-model cycles charged by the
      interpreter (with the i-cache model active) running the benchmark's
      workload — lower is better, reported as speedup vs. baseline;
    - {e compile time}: deterministic work units accumulated by all
      phases (wall-clock is measured separately by the Bechamel benches);
    - {e code size}: cost-model size of all optimized functions. *)

type measurement = {
  peak_cycles : float;
  code_size : int;
  compile_work : int;
  compile_wall_s : float;
  duplications : int;
  candidates : int;
  contained : (string * int) list;
      (** contained per-function optimizer failures, per crash site —
          a degraded-but-complete compilation, never silent *)
  passes : (string * Opt.Phase.pass_stat) list;
      (** per-pass instrumentation from the pass manager, sorted by
          pass name; all columns except wall time are deterministic *)
  analysis_hits : int;  (** {!Ir.Analyses} cache hits during compile *)
  analysis_misses : int;  (** ... and misses (= real recomputes) *)
  run_icache_hits : int;  (** interpreter i-cache hits during the run *)
  run_icache_misses : int;  (** ... and misses (each charges a penalty) *)
  result_value : string;  (** for cross-configuration sanity checking *)
}

let contained_total m = List.fold_left (fun acc (_, n) -> acc + n) 0 m.contained

(** Analysis-cache hit rate in [0,1]; 0 when nothing was queried. *)
let analysis_hit_rate m =
  let total = m.analysis_hits + m.analysis_misses in
  if total = 0 then 0.0 else float_of_int m.analysis_hits /. float_of_int total

(** Run-time i-cache hit rate in [0,1]; 0 when the model never fired. *)
let run_icache_hit_rate m =
  let total = m.run_icache_hits + m.run_icache_misses in
  if total = 0 then 0.0
  else float_of_int m.run_icache_hits /. float_of_int total

type row = {
  benchmark : string;
  baseline : measurement;
  dbds : measurement;
  dupalot : measurement;
}

(** Relative change of [v] against [base], as a percentage; positive =
    larger than baseline. *)
let pct_change ~base v = (v /. base -. 1.0) *. 100.0

(** Peak performance delta (%); positive = faster than baseline (the
    paper plots speedups as positive). *)
let peak_delta ~baseline m =
  (baseline.peak_cycles /. m.peak_cycles -. 1.0) *. 100.0

let compile_delta ~baseline m =
  pct_change
    ~base:(float_of_int (max baseline.compile_work 1))
    (float_of_int m.compile_work)

let size_delta ~baseline m =
  pct_change
    ~base:(float_of_int (max baseline.code_size 1))
    (float_of_int m.code_size)

(** One benchmark's tiered-execution comparison: steady-state cycles of
    the tiered engine against a tier-0-only engine on the same workload,
    with the AOT configurations for context.  Plain data so the harness
    report and the bench JSON writer need no [vm] dependency. *)
type tiered_row = {
  t_benchmark : string;
  t_tier0_cycles : float;  (** tier-0-only engine, steady-state run *)
  t_first_cycles : float;  (** tiered engine, first (cold) run *)
  t_steady_cycles : float;  (** tiered engine, steady-state run *)
  t_aot_baseline_cycles : float;
  t_aot_dbds_cycles : float;
  t_promotions : int;
  t_compiles : int;
  t_deopts : int;
  t_max_queue_depth : int;
  t_tier1_share : float;  (** fraction of calls served by optimized code *)
  t_compile_work : int;  (** background compile effort, work units *)
}

(** Steady-state speedup of tiered execution over pure interpretation
    (%); positive = tiering pays. *)
let tiered_speedup r =
  if r.t_steady_cycles <= 0.0 then 0.0
  else (r.t_tier0_cycles /. r.t_steady_cycles -. 1.0) *. 100.0

(** Warmup gain: how much faster the steady-state run is than the first
    (cold) run of the same engine (%). *)
let tiered_warmup r =
  if r.t_steady_cycles <= 0.0 then 0.0
  else (r.t_first_cycles /. r.t_steady_cycles -. 1.0) *. 100.0

(** One benchmark × tier cell of the adversarial workload-lab
    comparison ({!Tiercompare}). *)
type tier_cell = {
  tc_tier : string;
  tc_peak_cycles : float;
  tc_code_size : int;
  tc_compile_work : int;
  tc_decisions : int;
      (** duplication tiers: duplications performed; upgrade-pass tiers:
          times the tier's pass fired; off: 0 *)
}

(** One adversarial benchmark's row: a cell per tier, in
    {!Tiercompare.tiers} order. *)
type tier_row = {
  tc_suite : string;
  tc_benchmark : string;
  tc_cells : tier_cell list;
}

(** One suite's compilation-service comparison: mean wall-clock per
    program compile against a cold (empty) artifact store vs a warm
    (populated) one, with the warm pass's store hit rate and the
    byte-identity check of the resulting canonical IR.  Plain data so
    the report and the bench JSON writer need no [service]
    dependency. *)
type service_row = {
  sv_suite : string;
  sv_programs : int;  (** program compiles per pass *)
  sv_functions : int;  (** function artifacts involved per pass *)
  sv_cold_ns : float;  (** mean ns per program compile, empty store *)
  sv_warm_ns : float;  (** ... recompiling against the warm store *)
  sv_warm_hit_rate : float;  (** store hit rate during the warm pass *)
  sv_identical : bool;  (** warm canonical IR byte-identical to cold *)
  sv_evictions : int;  (** LRU GC victims over the cold + warm passes *)
}

(** Warm-over-cold compile-time ratio; the service's headline number. *)
let service_speedup r =
  if r.sv_warm_ns <= 0.0 then 0.0 else r.sv_cold_ns /. r.sv_warm_ns

(** One fleet size's modeled warm-hit serving capacity: the request
    digests are sharded over the ring exactly as the router shards
    them, each node serves its shard at the {e measured} per-request
    warm-hit cost, and the fleet's throughput is bounded by its most
    loaded node.  The parallelism across nodes is modeled (bench hosts
    are often single-core); the per-request cost and the shard shapes
    are real. *)
type fleet_point = {
  fp_nodes : int;  (** fleet size *)
  fp_max_share : float;  (** the most loaded node's share of requests *)
  fp_throughput_rps : float;  (** modeled warm-hit requests per second *)
  fp_scaling : float;  (** modeled throughput vs the 1-node fleet *)
}

(** One suite's fleet scaling row (plus the all-suites aggregate). *)
type fleet_row = {
  fb_suite : string;
  fb_requests : int;  (** distinct warm-hit request digests routed *)
  fb_warm_hit_ns : float;  (** measured ns per warm-hit request *)
  fb_replicas : int;  (** successor copies assumed on publish *)
  fb_points : fleet_point list;  (** one per fleet size, ascending *)
}

(** Modeled scaling at fleet size [n]; 0 when the size was not swept. *)
let fleet_scaling_at r n =
  match List.find_opt (fun p -> p.fp_nodes = n) r.fb_points with
  | Some p -> p.fp_scaling
  | None -> 0.0

(** One offered-load point of the frontdoor overload sweep (simulated;
    latencies are interactive-lane client-observed virtual time). *)
type frontdoor_point = {
  fd_mult : float;  (** offered load as a multiple of capacity *)
  fd_offered_rps : float;
  fd_sent : int;
  fd_done : int;
  fd_shed : int;
  fd_failed : int;
  fd_goodput_rps : float;
  fd_p50_ms : float;
  fd_p95_ms : float;
  fd_p99_ms : float;
  fd_retry_after_ok : bool;
}

(** The frontdoor load-sweep row. *)
type frontdoor_row = {
  fd_capacity_rps : float;
  fd_tenants : int;
  fd_requests : int;
  fd_points : frontdoor_point list;
  fd_identical : bool;
  fd_clean : bool;
}

let frontdoor_point_at r mult =
  List.find_opt (fun p -> p.fd_mult = mult) r.fd_points

(** Geometric mean of percentage deltas: geomean of the ratios (1 + d/100)
    minus one, as the paper's tables report. *)
let geomean_pct deltas =
  match deltas with
  | [] -> 0.0
  | _ ->
      let log_sum =
        List.fold_left (fun acc d -> acc +. log (1.0 +. (d /. 100.0))) 0.0 deltas
      in
      (exp (log_sum /. float_of_int (List.length deltas)) -. 1.0) *. 100.0
