(** Measurement records and derived statistics for the evaluation
    harness.  The three metrics mirror paper §6.1:

    - {e peak performance}: total cost-model cycles charged by the
      interpreter (with the i-cache model active) running the benchmark's
      workload — lower is better, reported as speedup vs. baseline;
    - {e compile time}: deterministic work units accumulated by all
      phases (wall-clock is measured separately by the Bechamel benches);
    - {e code size}: cost-model size of all optimized functions. *)

type measurement = {
  peak_cycles : float;
  code_size : int;
  compile_work : int;
  compile_wall_s : float;
  duplications : int;
  candidates : int;
  contained : (string * int) list;
      (** contained per-function optimizer failures, per crash site —
          a degraded-but-complete compilation, never silent *)
  passes : (string * Opt.Phase.pass_stat) list;
      (** per-pass instrumentation from the pass manager, sorted by
          pass name; all columns except wall time are deterministic *)
  analysis_hits : int;  (** {!Ir.Analyses} cache hits during compile *)
  analysis_misses : int;  (** ... and misses (= real recomputes) *)
  result_value : string;  (** for cross-configuration sanity checking *)
}

let contained_total m = List.fold_left (fun acc (_, n) -> acc + n) 0 m.contained

(** Analysis-cache hit rate in [0,1]; 0 when nothing was queried. *)
let analysis_hit_rate m =
  let total = m.analysis_hits + m.analysis_misses in
  if total = 0 then 0.0 else float_of_int m.analysis_hits /. float_of_int total

type row = {
  benchmark : string;
  baseline : measurement;
  dbds : measurement;
  dupalot : measurement;
}

(** Relative change of [v] against [base], as a percentage; positive =
    larger than baseline. *)
let pct_change ~base v = (v /. base -. 1.0) *. 100.0

(** Peak performance delta (%); positive = faster than baseline (the
    paper plots speedups as positive). *)
let peak_delta ~baseline m =
  (baseline.peak_cycles /. m.peak_cycles -. 1.0) *. 100.0

let compile_delta ~baseline m =
  pct_change
    ~base:(float_of_int (max baseline.compile_work 1))
    (float_of_int m.compile_work)

let size_delta ~baseline m =
  pct_change
    ~base:(float_of_int (max baseline.code_size 1))
    (float_of_int m.code_size)

(** Geometric mean of percentage deltas: geomean of the ratios (1 + d/100)
    minus one, as the paper's tables report. *)
let geomean_pct deltas =
  match deltas with
  | [] -> 0.0
  | _ ->
      let log_sum =
        List.fold_left (fun acc d -> acc +. log (1.0 +. (d /. 100.0))) 0.0 deltas
      in
      (exp (log_sum /. float_of_int (List.length deltas)) -. 1.0) *. 100.0
