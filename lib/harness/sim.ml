(** Deterministic whole-system simulation, re-exported so bench and
    test code can say [Harness.Sim.builder] next to the other
    harnesses.  The implementation lives in {!Simtest.Harness} (its own
    library, so the service tests can use it without pulling the bench
    harness in). *)

include Simtest.Harness
