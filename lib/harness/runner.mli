(** Compiles and measures one benchmark under one configuration. *)

exception Benchmark_failed of string * string

val compile_benchmark : Workloads.Suite.benchmark -> Ir.Program.t
val program_code_size : Ir.Program.t -> int

(** Compile under [config], then execute the workload on the cost
    interpreter.  Fresh frontend output per call so configurations never
    share IR.  [jobs] fans the optimizer out over that many domains
    (default: all cores); results are identical for any value.
    @raise Benchmark_failed when compilation or execution fails. *)
val measure :
  ?icache:Interp.Machine.icache_config ->
  ?jobs:int ->
  config:Dbds.Config.t ->
  Workloads.Suite.benchmark ->
  Metrics.measurement

(** Measure a benchmark under the three paper configurations, checking
    that all three compute the same result.
    @raise Benchmark_failed when the configurations disagree. *)
val run_benchmark :
  ?icache:Interp.Machine.icache_config ->
  ?jobs:int ->
  Workloads.Suite.benchmark ->
  Metrics.row

val run_suite :
  ?icache:Interp.Machine.icache_config ->
  ?jobs:int ->
  Workloads.Suite.t ->
  Metrics.row list
