(** Paper-style table rendering: one row per benchmark with the three
    metrics for DBDS and dupalot normalized to baseline, plus the
    geometric-mean footer matching the tables under Figures 5–8. *)

type suite_summary = {
  suite_name : string;
  figure : string;
  rows : Metrics.row list;
  geo_peak_dbds : float;
  geo_peak_dupalot : float;
  geo_compile_dbds : float;
  geo_compile_dupalot : float;
  geo_size_dbds : float;
  geo_size_dupalot : float;
}

val summarize : Workloads.Suite.t -> Metrics.row list -> suite_summary

(** Aggregated per-pass instrumentation (DBDS configuration) plus the
    analysis-cache hit rate, summed over the suite's rows.  Included in
    {!pp_suite}. *)
val pp_passes : Format.formatter -> suite_summary -> unit

val pp_suite : Format.formatter -> suite_summary -> unit

(** The headline aggregate of the abstract: mean peak-performance
    increase, mean code-size increase, mean compile-time increase over
    every benchmark of every suite, plus the best individual speedup. *)
type headline = {
  mean_peak : float;
  mean_size : float;
  mean_compile : float;
  max_peak : float;
  max_peak_benchmark : string;
}

val headline_of : suite_summary list -> headline
val pp_headline : Format.formatter -> headline -> unit

(** Tiered-execution rows ({!Metrics.tiered_row}): steady-state engine
    cycles against the tier-0-only control, warmup gain, tier-1 call
    share, promotion/deopt counts, AOT cycles for context, and a
    geomean footer. *)
val pp_tiered : Format.formatter -> Metrics.tiered_row list -> unit

(** Compilation-service rows ({!Metrics.service_row}): mean wall-clock
    per program compile with a cold artifact store against a warm one,
    the warm pass's store hit rate, and whether the warm canonical IR
    was byte-identical to the cold — with a worst-case footer (the
    acceptance bar is the {e minimum} warm speedup, not the mean). *)
val pp_service : Format.formatter -> Metrics.service_row list -> unit

(** Fleet rows ({!Metrics.fleet_row}): measured warm-hit cost per
    request and the modeled warm-hit throughput scaling of the
    consistent-hash fleet at each swept size, with the most loaded
    node's request share — plus a footer quoting the aggregate row's
    scaling at the largest size (the acceptance headline). *)
val pp_fleet : Format.formatter -> Metrics.fleet_row list -> unit

(** The frontdoor load-sweep row ({!Metrics.frontdoor_row}): one line
    per offered-load multiple — completions, sheds, goodput,
    interactive-lane latency percentiles, retry-after coverage — with
    a footer quoting the acceptance gates (goodput at 2x vs peak,
    interactive p99 at 2x vs uncontended) and the byte-identity and
    clean-schedule verdicts. *)
val pp_frontdoor : Format.formatter -> Metrics.frontdoor_row -> unit
