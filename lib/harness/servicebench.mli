(** Compilation-service benchmark: cold vs warm artifact store.

    For each suite, every function of every benchmark becomes one
    compile request — a single-function program sharing its base
    program's classes and globals, optimized with [~inline:false], the
    service's unit of work (program-level inlining is the client's
    job).  Each request runs twice through a
    {!Service.Store.driver_cache} rooted in a scratch directory:

    - the {e cold} pass starts from an empty store — every request
      misses, runs the full pipeline and publishes its artifact;
    - the {e warm} pass re-issues the same requests against the
      populated store — every request should be served from disk.

    Only the driver call is timed (the frontend re-runs per pass so
    each request starts from pristine IR, but outside the clock), and
    the warm pass additionally checks that the canonical IR of every
    function is byte-identical to the cold pass's — the store must be a
    pure accelerator, never an answer-changer.  The warm pass keeps the
    fastest of a few repetitions (it is pure file reads and noisy at
    the microsecond scale). *)

(** Measure one suite; the scratch store directory is removed on exit. *)
val measure_suite : Workloads.Suite.t -> Metrics.service_row

(** Measure every suite (default: {!Workloads.Registry.all}). *)
val run : ?suites:Workloads.Suite.t list -> unit -> Metrics.service_row list

(** The frontdoor overload sweep, under the deterministic simulator:
    a broker whose artificial compile stretch fixes the service
    capacity at [capacity_rps] ([workers]/[delay]), fronted by the
    event-loop {!Service.Frontdoor}, swept with open-loop arrivals at
    each multiple in [mults] of that capacity (default 0.5x, 1x, 2x
    and 4x).  Requests split over an interactive and a batch tenant
    with mixed text/binary framing; each is a {e distinct} function
    (its own generator seed), so neither broker coalescing nor the
    artifact store can flatter the numbers.

    [queue_limit] (default 2 per lane) is deliberately tight: overload
    is shed at admission with a retry-after hint instead of queueing
    deep, which is what keeps the interactive p99 bounded at 2x — the
    acceptance gate.  Virtual time makes the row deterministic for a
    given [seed]; wall-clock only pays for the native compiles. *)
val load_sweep :
  ?capacity_rps:float ->
  ?workers:int ->
  ?queue_limit:int ->
  ?requests:int ->
  ?mults:float list ->
  ?seed:int ->
  unit ->
  Metrics.frontdoor_row
