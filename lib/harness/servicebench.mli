(** Compilation-service benchmark: cold vs warm artifact store.

    For each suite, every function of every benchmark becomes one
    compile request — a single-function program sharing its base
    program's classes and globals, optimized with [~inline:false], the
    service's unit of work (program-level inlining is the client's
    job).  Each request runs twice through a
    {!Service.Store.driver_cache} rooted in a scratch directory:

    - the {e cold} pass starts from an empty store — every request
      misses, runs the full pipeline and publishes its artifact;
    - the {e warm} pass re-issues the same requests against the
      populated store — every request should be served from disk.

    Only the driver call is timed (the frontend re-runs per pass so
    each request starts from pristine IR, but outside the clock), and
    the warm pass additionally checks that the canonical IR of every
    function is byte-identical to the cold pass's — the store must be a
    pure accelerator, never an answer-changer.  The warm pass keeps the
    fastest of a few repetitions (it is pure file reads and noisy at
    the microsecond scale). *)

(** Measure one suite; the scratch store directory is removed on exit. *)
val measure_suite : Workloads.Suite.t -> Metrics.service_row

(** Measure every suite (default: {!Workloads.Registry.all}). *)
val run : ?suites:Workloads.Suite.t list -> unit -> Metrics.service_row list
