(** Cold-vs-warm artifact-store measurements — see the interface. *)

(* The store directory is scratch: remove every artifact and the
   directory itself (best effort — a leftover temp dir is harmless). *)
let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ())

(* A single-function program sharing the base program's class table and
   globals — the unit the service compiles (program-level inlining is
   the client's job, so it is excluded here via [~inline:false]). *)
let lone (base : Ir.Program.t) g =
  let functions = Hashtbl.create 1 in
  Hashtbl.replace functions (Ir.Graph.name g) g;
  {
    Ir.Program.classes = base.Ir.Program.classes;
    globals = base.Ir.Program.globals;
    functions;
    main = Ir.Graph.name g;
  }

(* One timed compile request through the store-backed driver cache.
   Returns (wall seconds, canonical IR of the optimized function). *)
let compile_request ~config ~store p =
  let cache =
    Service.Store.driver_cache
      ~context:(Service.Digest.context_of_program p)
      store
  in
  let t0 = Unix.gettimeofday () in
  ignore
    (Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1 ~cache
       p);
  let dt = Unix.gettimeofday () -. t0 in
  let fp = ref "" in
  Ir.Program.iter_functions p (fun g ->
      fp := !fp ^ Service.Digest.canonical_of_graph g);
  (dt, !fp)

(* Every function of every benchmark as a fresh compile request (the
   frontend is re-run per pass so each pass starts from pristine IR). *)
let requests_of sources =
  List.concat_map
    (fun src ->
      let prog = Lang.Frontend.compile src in
      List.filter_map
        (fun name -> Option.map (lone prog) (Ir.Program.find_function prog name))
        (Ir.Program.function_names prog))
    sources

(* Warm passes are pure store reads and fast enough to be noisy; keep
   the fastest of a few repetitions, as the Bechamel benches do by OLS. *)
let warm_reps = 3

let measure_suite (suite : Workloads.Suite.t) =
  let config = Dbds.Config.dbds in
  let dir = Filename.temp_dir "dbds-service-bench" ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Service.Store.create ~dir () in
  let sources =
    List.map
      (fun b -> b.Workloads.Suite.source)
      suite.Workloads.Suite.benchmarks
  in
  let run_pass () = List.map (compile_request ~config ~store) (requests_of sources) in
  let cold = run_pass () in
  let cold_s = List.fold_left (fun acc (dt, _) -> acc +. dt) 0.0 cold in
  let warm_pass () =
    let st = Service.Store.stats store in
    let h0 = st.Service.Store.hits and m0 = st.Service.Store.misses in
    let rows = run_pass () in
    let total = List.fold_left (fun acc (dt, _) -> acc +. dt) 0.0 rows in
    let dh = st.Service.Store.hits - h0
    and dm = st.Service.Store.misses - m0 in
    (total, rows, dh, dm)
  in
  let passes = List.init warm_reps (fun _ -> warm_pass ()) in
  let warm_s, warm_rows, hits, misses =
    List.fold_left
      (fun ((best_t, _, _, _) as best) ((t, _, _, _) as p) ->
        if t < best_t then p else best)
      (List.hd passes) (List.tl passes)
  in
  let identical = List.for_all2 (fun (_, a) (_, b) -> a = b) cold warm_rows in
  let requests = List.length cold in
  let n = float_of_int (max requests 1) in
  let evictions = (Service.Store.stats store).Service.Store.evictions in
  {
    Metrics.sv_suite = suite.Workloads.Suite.suite_name;
    sv_programs = List.length sources;
    sv_functions = requests;
    sv_cold_ns = cold_s /. n *. 1e9;
    sv_warm_ns = warm_s /. n *. 1e9;
    sv_warm_hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    sv_identical = identical;
    sv_evictions = evictions;
  }

let run ?(suites = Workloads.Registry.all) () = List.map measure_suite suites

(* ---- the frontdoor overload sweep ----------------------------------- *)

(* Distinct single-function requests (their own generator seeds, away
   from the sim harness's pool) so neither broker coalescing nor the
   artifact store can flatter the measured capacity — plus the offline
   oracle each served artifact must match byte-for-byte. *)
let sweep_config = { Dbds.Config.dbds with bundle_dir = None }

let sweep_pool =
  lazy
    (let progs =
       List.init 16 (fun p ->
           Workloads.Progen.generate ~n_helpers:3 ~seed:(3000 + p) ())
     in
     let reqs =
       List.concat_map
         (fun src ->
           List.map
             (fun p ->
               let g =
                 Option.get
                   (Ir.Program.find_function p p.Ir.Program.main)
               in
               let fn = Ir.Graph.name g in
               let ir = Ir.Printer.graph_to_string g in
               (* The oracle mirrors the broker byte-for-byte: parse
                  the wire text (print -> parse normalizes ids), then
                  the same lone-graph pipeline. *)
               let parsed = Ir.Parse.parse_graph ir in
               let program = Ir.Program.of_graph parsed in
               ignore
                 (Dbds.Driver.optimize_program_report ~config:sweep_config
                    ~inline:false ~jobs:1 program);
               let expected =
                 Service.Digest.canonical_of_graph
                   (Option.value
                      (Ir.Program.find_function program fn)
                      ~default:parsed)
               in
               (fn, ir, expected))
             (requests_of [ src ]))
         progs
     in
     Array.of_list reqs)

(* Exact client-observed percentile (the stats verb's histogram is the
   operational view; the bench reports the precise one). *)
let percentile q samples =
  match List.sort compare samples with
  | [] -> 0.0
  | l ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      arr.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))

let load_point ~capacity_rps ~workers ~delay_s ~queue_limit ~requests ~seed
    ~idx mult =
  let offered = mult *. capacity_rps in
  let pool = Lazy.force sweep_pool in
  let npool = Array.length pool in
  let sched = Simtest.Sched.create ~seed:(seed + idx) () in
  let io = Simtest.Simio.create sched in
  let env = Simtest.Simio.env io in
  let lat_interactive = ref [] in
  let n_done = ref 0 and n_shed = ref 0 and n_failed = ref 0 in
  let hints_ok = ref true and identical = ref true in
  let finish_t = ref 0.0 in
  let out =
    Simtest.Sched.run sched (fun () ->
        let broker =
          Service.Broker.create ~env ~workers ~delay_s ~store:None ()
        in
        let fd_config =
          {
            Service.Frontdoor.default_config with
            fd_dispatchers = workers;
            fd_queue_limit = queue_limit;
            (* The sweep measures lane scheduling and queue shed; the
               per-tenant quota is neutralized (it has its own tests). *)
            fd_tenant_rate = 1e9;
            fd_tenant_burst = 1e9;
          }
        in
        let srv =
          env.Service.Env.spawn "frontdoor" (fun () ->
              Service.Frontdoor.serve ~env ~config:fd_config ~sock:"/fd"
                ~broker ())
        in
        (* Open-loop arrivals: request [j] fires at j/offered seconds
           regardless of how its predecessors fared — overload does not
           self-throttle.  Even requests ride the interactive lane, odd
           ones batch; framing is mixed across both. *)
        let fibers =
          List.init requests (fun j ->
              env.Service.Env.spawn (Printf.sprintf "load-%d" j) (fun () ->
                  let at = float_of_int j /. offered in
                  let now = env.Service.Env.mono () in
                  if at > now then env.Service.Env.sleep (at -. now);
                  let interactive = j mod 2 = 0 in
                  let lane = if interactive then "interactive" else "batch" in
                  let binary = j mod 4 = 1 || j mod 4 = 2 in
                  let fn, ir, expected = pool.(j mod npool) in
                  match
                    Service.Client.connect ~env ~deadline_s:5.0
                      ~io_deadline_s:600. ~tenant:lane ~lane ~binary
                      ~sock:"/fd" ()
                  with
                  | exception _ -> incr n_failed
                  | c ->
                      let t0 = env.Service.Env.mono () in
                      (match
                         Service.Client.compile_ex ~config:sweep_config ~fn
                           ~ir c
                       with
                      | Ok (Service.Broker.Done { ir = got; _ }, _) ->
                          incr n_done;
                          if got <> expected then identical := false;
                          let t1 = env.Service.Env.mono () in
                          if t1 > !finish_t then finish_t := t1;
                          if interactive then
                            lat_interactive :=
                              ((t1 -. t0) *. 1000.) :: !lat_interactive
                      | Ok (Service.Broker.Shed, hint) ->
                          incr n_shed;
                          if hint = None then hints_ok := false
                      | Ok _ -> incr n_failed
                      | Error _ -> incr n_failed);
                      Service.Client.close c))
        in
        List.iter
          (fun (t : Service.Env.thread) -> t.Service.Env.join ())
          fibers;
        (match
           Service.Client.connect ~env ~deadline_s:5.0 ~io_deadline_s:60.
             ~sock:"/fd" ()
         with
        | c ->
            ignore (Service.Client.shutdown_server c);
            Service.Client.close c
        | exception _ -> ());
        srv.Service.Env.join ())
  in
  let goodput =
    if !finish_t > 0.0 then float_of_int !n_done /. !finish_t else 0.0
  in
  ( {
      Metrics.fd_mult = mult;
      fd_offered_rps = offered;
      fd_sent = requests;
      fd_done = !n_done;
      fd_shed = !n_shed;
      fd_failed = !n_failed;
      fd_goodput_rps = goodput;
      fd_p50_ms = percentile 0.50 !lat_interactive;
      fd_p95_ms = percentile 0.95 !lat_interactive;
      fd_p99_ms = percentile 0.99 !lat_interactive;
      fd_retry_after_ok = !hints_ok;
    },
    !identical,
    out.Simtest.Sched.ok )

let load_sweep ?(capacity_rps = 50.0) ?(workers = 2) ?(queue_limit = 2)
    ?(requests = 48) ?(mults = [ 0.5; 1.0; 2.0; 4.0 ]) ?(seed = 9000) () =
  let delay_s = float_of_int workers /. capacity_rps in
  let results =
    List.mapi
      (fun idx mult ->
        load_point ~capacity_rps ~workers ~delay_s ~queue_limit ~requests
          ~seed ~idx mult)
      mults
  in
  {
    Metrics.fd_capacity_rps = capacity_rps;
    fd_tenants = 2;
    fd_requests = requests;
    fd_points = List.map (fun (p, _, _) -> p) results;
    fd_identical = List.for_all (fun (_, i, _) -> i) results;
    fd_clean = List.for_all (fun (_, _, ok) -> ok) results;
  }
