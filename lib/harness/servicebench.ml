(** Cold-vs-warm artifact-store measurements — see the interface. *)

(* The store directory is scratch: remove every artifact and the
   directory itself (best effort — a leftover temp dir is harmless). *)
let rm_rf dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ())

(* A single-function program sharing the base program's class table and
   globals — the unit the service compiles (program-level inlining is
   the client's job, so it is excluded here via [~inline:false]). *)
let lone (base : Ir.Program.t) g =
  let functions = Hashtbl.create 1 in
  Hashtbl.replace functions (Ir.Graph.name g) g;
  {
    Ir.Program.classes = base.Ir.Program.classes;
    globals = base.Ir.Program.globals;
    functions;
    main = Ir.Graph.name g;
  }

(* One timed compile request through the store-backed driver cache.
   Returns (wall seconds, canonical IR of the optimized function). *)
let compile_request ~config ~store p =
  let cache =
    Service.Store.driver_cache
      ~context:(Service.Digest.context_of_program p)
      store
  in
  let t0 = Unix.gettimeofday () in
  ignore
    (Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1 ~cache
       p);
  let dt = Unix.gettimeofday () -. t0 in
  let fp = ref "" in
  Ir.Program.iter_functions p (fun g ->
      fp := !fp ^ Service.Digest.canonical_of_graph g);
  (dt, !fp)

(* Every function of every benchmark as a fresh compile request (the
   frontend is re-run per pass so each pass starts from pristine IR). *)
let requests_of sources =
  List.concat_map
    (fun src ->
      let prog = Lang.Frontend.compile src in
      List.filter_map
        (fun name -> Option.map (lone prog) (Ir.Program.find_function prog name))
        (Ir.Program.function_names prog))
    sources

(* Warm passes are pure store reads and fast enough to be noisy; keep
   the fastest of a few repetitions, as the Bechamel benches do by OLS. *)
let warm_reps = 3

let measure_suite (suite : Workloads.Suite.t) =
  let config = Dbds.Config.dbds in
  let dir = Filename.temp_dir "dbds-service-bench" ".store" in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let store = Service.Store.create ~dir () in
  let sources =
    List.map
      (fun b -> b.Workloads.Suite.source)
      suite.Workloads.Suite.benchmarks
  in
  let run_pass () = List.map (compile_request ~config ~store) (requests_of sources) in
  let cold = run_pass () in
  let cold_s = List.fold_left (fun acc (dt, _) -> acc +. dt) 0.0 cold in
  let warm_pass () =
    let st = Service.Store.stats store in
    let h0 = st.Service.Store.hits and m0 = st.Service.Store.misses in
    let rows = run_pass () in
    let total = List.fold_left (fun acc (dt, _) -> acc +. dt) 0.0 rows in
    let dh = st.Service.Store.hits - h0
    and dm = st.Service.Store.misses - m0 in
    (total, rows, dh, dm)
  in
  let passes = List.init warm_reps (fun _ -> warm_pass ()) in
  let warm_s, warm_rows, hits, misses =
    List.fold_left
      (fun ((best_t, _, _, _) as best) ((t, _, _, _) as p) ->
        if t < best_t then p else best)
      (List.hd passes) (List.tl passes)
  in
  let identical = List.for_all2 (fun (_, a) (_, b) -> a = b) cold warm_rows in
  let requests = List.length cold in
  let n = float_of_int (max requests 1) in
  let evictions = (Service.Store.stats store).Service.Store.evictions in
  {
    Metrics.sv_suite = suite.Workloads.Suite.suite_name;
    sv_programs = List.length sources;
    sv_functions = requests;
    sv_cold_ns = cold_s /. n *. 1e9;
    sv_warm_ns = warm_s /. n *. 1e9;
    sv_warm_hit_rate =
      (if hits + misses = 0 then 0.0
       else float_of_int hits /. float_of_int (hits + misses));
    sv_identical = identical;
    sv_evictions = evictions;
  }

let run ?(suites = Workloads.Registry.all) () = List.map measure_suite suites
