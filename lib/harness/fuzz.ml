(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract.

    For every (graph seed × fault plan) pair the optimizer runs under
    injection, and three invariants are asserted:

    + {e no escape}: no exception leaves
      {!Dbds.Driver.optimize_program_report};
    + {e rollback fidelity}: every contained function's IR is
      byte-identical to its pre-attempt IR (the graph the pipeline
      started from);
    + {e jobs determinism}: the printed program, the failure list, the
      per-function statistics and the phase-context counters are
      identical under every [jobs] value tried.

    Any breach is reported as a human-readable violation string; an
    empty [violations] list is the pass criterion.  Everything is
    seeded, so a reported violation reproduces by rerunning the same
    pair. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(* One deterministic fingerprint of a finished run: printed graphs,
   failures, stats, counters.  Byte-equal fingerprints = identical runs. *)
let fingerprint prog (r : Dbds.Driver.report) =
  let buf = Buffer.create 4096 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Ir.Printer.graph_to_string g);
      Buffer.add_char buf '\n');
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Format.asprintf "%s: %a@." name Dbds.Driver.pp_stats s))
    r.Dbds.Driver.rep_stats;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "failure %s at %s: %s\n" f.Dbds.Driver.fail_fn
           f.Dbds.Driver.fail_site f.Dbds.Driver.fail_exn))
    r.Dbds.Driver.rep_failures;
  let ctx = r.Dbds.Driver.rep_ctx in
  Buffer.add_string buf
    (Printf.sprintf "work=%d contained=%d\n" ctx.Opt.Phase.work
       (Opt.Phase.contained_total ctx));
  Buffer.contents buf

let config_for plan k =
  {
    Dbds.Config.default with
    Dbds.Config.mode =
      (* Every fourth plan runs the backtracking comparator so the
         copy-based containment path and the speculation journal's
         Fun.protect unwind get fuzzed too. *)
      (if k mod 4 = 3 then Dbds.Config.Backtracking else Dbds.Config.Dbds);
    fault_plan = Some plan;
    verify_between_phases = k mod 5 = 0;
    containment = true;
  }

(* Run one (source, plan) pair at one jobs value; returns the
   fingerprint and the report, or a violation string if an exception
   escaped. *)
let run_one ~src ~config ~jobs =
  let prog = Lang.Frontend.compile src in
  match Dbds.Driver.optimize_program_report ~config ~jobs prog with
  | r -> Ok (fingerprint prog r, prog, r)
  | exception e ->
      Error
        (Printf.sprintf "escaped exception (jobs=%d): %s" jobs
           (Printexc.to_string e))

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
let run ?(graph_seeds = List.init 25 Fun.id) ?(plans_per_graph = 4)
    ?(jobs_matrix = [ 1; 4 ]) () =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let pairs = ref 0 in
  let contained = ref 0 in
  let by_site = ref [] in
  let jobs_matrix = match jobs_matrix with [] -> [ 1 ] | l -> l in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      for k = 0 to plans_per_graph - 1 do
        let plan = Dbds.Faults.of_seed ((seed * 8191) + k) in
        let config = config_for plan k in
        let tag =
          Printf.sprintf "seed=%d plan=%s mode=%s" seed
            (Dbds.Faults.to_string plan)
            (Dbds.Config.mode_to_string config.Dbds.Config.mode)
        in
        incr pairs;
        let results =
          List.map (fun jobs -> (jobs, run_one ~src ~config ~jobs)) jobs_matrix
        in
        (match results with
        | (_, Ok (fp0, _, _)) :: rest ->
            List.iter
              (fun (jobs, res) ->
                match res with
                | Ok (fp, _, _) ->
                    if fp <> fp0 then
                      violate "%s: jobs=%d diverges from jobs=%d" tag jobs
                        (List.hd jobs_matrix)
                | Error msg -> violate "%s: %s" tag msg)
              rest
        | (_, Error msg) :: _ -> violate "%s: %s" tag msg
        | [] -> ());
        (* Invariants 1 and 2 on the first jobs value's run. *)
        match results with
        | (_, Ok (_, prog, r)) :: _ ->
            List.iter
              (fun f ->
                contained := !contained + 1;
                by_site :=
                  (let site = f.Dbds.Driver.fail_site in
                   let n =
                     match List.assoc_opt site !by_site with
                     | Some n -> n
                     | None -> 0
                   in
                   (site, n + 1) :: List.remove_assoc site !by_site);
                match Ir.Program.find_function prog f.Dbds.Driver.fail_fn with
                | None ->
                    violate "%s: contained function %s vanished" tag
                      f.Dbds.Driver.fail_fn
                | Some g ->
                    if Ir.Printer.graph_to_string g <> f.Dbds.Driver.fail_pre_ir
                    then
                      violate
                        "%s: %s not rolled back to its pre-attempt IR" tag
                        f.Dbds.Driver.fail_fn)
              r.Dbds.Driver.rep_failures
        | _ -> ()
      done)
    graph_seeds;
  {
    pairs_run = !pairs;
    contained = !contained;
    by_site = List.sort compare !by_site;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Tiered-execution property                                           *)
(* ------------------------------------------------------------------ *)

type tiered_result = {
  t_pairs_run : int;  (** (graph seed × plan) pairs executed *)
  t_promotions : int;  (** promotions observed across all pairs *)
  t_deopts : int;  (** deoptimizations observed (incl. forced ones) *)
  t_compile_failures : int;  (** contained background-compile crashes *)
  t_violations : string list;  (** property breaches; [[]] = pass *)
}

(* The full observable state of one execution: result value plus every
   global binding.  Byte-equal strings = indistinguishable runs. *)
let render_state result globals =
  Printf.sprintf "%s | %s"
    (Interp.Machine.result_to_string result)
    (String.concat ", "
       (List.map
          (fun (n, v) ->
            Printf.sprintf "%s=%s" n (Interp.Machine.value_to_string v))
          globals))

(* Generous budget so the tiered/tier-0 comparison never diverges on
   fuel: both sides run under the same cap. *)
let tiered_fuel = 50_000_000

(** The tiered-VM property, fuzzed over [graph_seeds] × [plans_per_graph]
    pairs of random programs and fault plans:

    + {e transparency}: every [run_full] of the engine — across
      promotions, background-compile crashes and (on odd pairs) one
      forced deoptimization of [main] — produces a result and final
      globals byte-identical to a fresh never-optimized interpretation
      of the same program on the same arguments;
    + {e jobs determinism}: the per-run outputs and the final
      {!Vm.Vmstats.fingerprint} are identical under [jobs:1] and
      [jobs:4].

    The policy is deliberately aggressive (promote on the first call,
    resample often) so every pair actually exercises tier 1 within
    [runs_per_pair] executions. *)
let run_tiered ?(graph_seeds = List.init 12 Fun.id) ?(plans_per_graph = 2)
    ?(runs_per_pair = 3) () =
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let pairs = ref 0 in
  let promotions = ref 0 in
  let deopts = ref 0 in
  let compile_failures = ref 0 in
  let policy =
    {
      Vm.Policy.default with
      Vm.Policy.invocation_threshold = 1;
      backedge_threshold = 8;
      profile_period = 3;
      drift_min_samples = 8;
    }
  in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      for k = 0 to plans_per_graph - 1 do
        incr pairs;
        let plan = Dbds.Faults.of_seed ((seed * 8191) + k) in
        (* Even pairs crash the background compiler somewhere; odd pairs
           force a deoptimization of an installed main instead. *)
        let compile =
          {
            Dbds.Config.dbds with
            Dbds.Config.fault_plan = (if k mod 2 = 0 then Some plan else None);
            containment = true;
          }
        in
        let deopt_plan =
          if k mod 2 = 1 then Some ("main", 1 + (seed mod 2)) else None
        in
        let tag =
          Printf.sprintf "tiered seed=%d plan=%s deopt=%s" seed
            (if k mod 2 = 0 then Dbds.Faults.to_string plan else "-")
            (match deopt_plan with
            | Some (fn, n) -> Printf.sprintf "%s:%d" fn n
            | None -> "-")
        in
        let args_for i = [| (seed + i) mod 7; ((seed * 3) + i) mod 5 |] in
        let run_engine jobs =
          let cfg =
            Vm.Engine.config ~policy ~compile ~jobs ~fuel:tiered_fuel
              ?deopt_plan ()
          in
          let eng = Vm.Engine.create ~config:cfg (Lang.Frontend.compile src) in
          let outs =
            List.init runs_per_pair (fun i ->
                let result, _, globals =
                  Vm.Engine.run_full eng ~args:(args_for i)
                in
                render_state result globals)
          in
          let vs = Vm.Engine.finish eng in
          (outs, vs, Vm.Vmstats.fingerprint vs)
        in
        match run_engine 1 with
        | exception e ->
            violate "%s: engine escaped: %s" tag (Printexc.to_string e)
        | outs1, vs, fp1 -> (
            (* Transparency: each run against a fresh tier-0-only
               interpretation of the unoptimized program. *)
            List.iteri
              (fun i out ->
                let prog = Lang.Frontend.compile src in
                let expect_result, _, expect_globals =
                  Interp.Machine.run_full ~fuel:tiered_fuel prog
                    ~args:(args_for i)
                in
                let expect = render_state expect_result expect_globals in
                if out <> expect then
                  violate "%s run %d: tiered [%s] <> tier-0 [%s]" tag i out
                    expect)
              outs1;
            (* Engine event tallies come from the jobs:1 leg. *)
            promotions := !promotions + vs.Vm.Vmstats.promotions;
            deopts := !deopts + vs.Vm.Vmstats.deopts;
            compile_failures :=
              !compile_failures + vs.Vm.Vmstats.compile_failures;
            (* Jobs determinism: identical outputs and vmstats. *)
            match run_engine 4 with
            | exception e ->
                violate "%s: jobs=4 escaped: %s" tag (Printexc.to_string e)
            | outs4, _, fp4 ->
                if outs4 <> outs1 then
                  violate "%s: jobs=4 run outputs diverge from jobs=1" tag;
                if fp4 <> fp1 then
                  violate "%s: jobs=4 vmstats fingerprint diverges from jobs=1"
                    tag)
      done)
    graph_seeds;
  {
    t_pairs_run = !pairs;
    t_promotions = !promotions;
    t_deopts = !deopts;
    t_compile_failures = !compile_failures;
    t_violations = List.rev !violations;
  }
