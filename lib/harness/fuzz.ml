(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract.

    For every (graph seed × fault plan) pair the optimizer runs under
    injection, and three invariants are asserted:

    + {e no escape}: no exception leaves
      {!Dbds.Driver.optimize_program_report};
    + {e rollback fidelity}: every contained function's IR is
      byte-identical to its pre-attempt IR (the graph the pipeline
      started from);
    + {e jobs determinism}: the printed program, the failure list, the
      per-function statistics and the phase-context counters are
      identical under every [jobs] value tried.

    Any breach is reported as a human-readable violation string; an
    empty [violations] list is the pass criterion.  Everything is
    seeded, so a reported violation reproduces by rerunning the same
    pair. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(* One deterministic fingerprint of a finished run: printed graphs,
   failures, stats, counters.  Byte-equal fingerprints = identical runs. *)
let fingerprint prog (r : Dbds.Driver.report) =
  let buf = Buffer.create 4096 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Ir.Printer.graph_to_string g);
      Buffer.add_char buf '\n');
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Format.asprintf "%s: %a@." name Dbds.Driver.pp_stats s))
    r.Dbds.Driver.rep_stats;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "failure %s at %s: %s\n" f.Dbds.Driver.fail_fn
           f.Dbds.Driver.fail_site f.Dbds.Driver.fail_exn))
    r.Dbds.Driver.rep_failures;
  let ctx = r.Dbds.Driver.rep_ctx in
  Buffer.add_string buf
    (Printf.sprintf "work=%d contained=%d\n" ctx.Opt.Phase.work
       (Opt.Phase.contained_total ctx));
  Buffer.contents buf

let config_for plan k =
  {
    Dbds.Config.default with
    Dbds.Config.mode =
      (* Every fourth plan runs the backtracking comparator so the
         copy-based containment path and the speculation journal's
         Fun.protect unwind get fuzzed too. *)
      (if k mod 4 = 3 then Dbds.Config.Backtracking else Dbds.Config.Dbds);
    fault_plan = Some plan;
    verify_between_phases = k mod 5 = 0;
    containment = true;
  }

(* Run one (source, plan) pair at one jobs value; returns the
   fingerprint and the report, or a violation string if an exception
   escaped. *)
let run_one ~src ~config ~jobs =
  let prog = Lang.Frontend.compile src in
  match Dbds.Driver.optimize_program_report ~config ~jobs prog with
  | r -> Ok (fingerprint prog r, prog, r)
  | exception e ->
      Error
        (Printf.sprintf "escaped exception (jobs=%d): %s" jobs
           (Printexc.to_string e))

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
let run ?(graph_seeds = List.init 25 Fun.id) ?(plans_per_graph = 4)
    ?(jobs_matrix = [ 1; 4 ]) () =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let pairs = ref 0 in
  let contained = ref 0 in
  let by_site = ref [] in
  let jobs_matrix = match jobs_matrix with [] -> [ 1 ] | l -> l in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      for k = 0 to plans_per_graph - 1 do
        let plan = Dbds.Faults.of_seed ((seed * 8191) + k) in
        let config = config_for plan k in
        let tag =
          Printf.sprintf "seed=%d plan=%s mode=%s" seed
            (Dbds.Faults.to_string plan)
            (Dbds.Config.mode_to_string config.Dbds.Config.mode)
        in
        incr pairs;
        let results =
          List.map (fun jobs -> (jobs, run_one ~src ~config ~jobs)) jobs_matrix
        in
        (match results with
        | (_, Ok (fp0, _, _)) :: rest ->
            List.iter
              (fun (jobs, res) ->
                match res with
                | Ok (fp, _, _) ->
                    if fp <> fp0 then
                      violate "%s: jobs=%d diverges from jobs=%d" tag jobs
                        (List.hd jobs_matrix)
                | Error msg -> violate "%s: %s" tag msg)
              rest
        | (_, Error msg) :: _ -> violate "%s: %s" tag msg
        | [] -> ());
        (* Invariants 1 and 2 on the first jobs value's run. *)
        match results with
        | (_, Ok (_, prog, r)) :: _ ->
            List.iter
              (fun f ->
                contained := !contained + 1;
                by_site :=
                  (let site = f.Dbds.Driver.fail_site in
                   let n =
                     match List.assoc_opt site !by_site with
                     | Some n -> n
                     | None -> 0
                   in
                   (site, n + 1) :: List.remove_assoc site !by_site);
                match Ir.Program.find_function prog f.Dbds.Driver.fail_fn with
                | None ->
                    violate "%s: contained function %s vanished" tag
                      f.Dbds.Driver.fail_fn
                | Some g ->
                    if Ir.Printer.graph_to_string g <> f.Dbds.Driver.fail_pre_ir
                    then
                      violate
                        "%s: %s not rolled back to its pre-attempt IR" tag
                        f.Dbds.Driver.fail_fn)
              r.Dbds.Driver.rep_failures
        | _ -> ()
      done)
    graph_seeds;
  {
    pairs_run = !pairs;
    contained = !contained;
    by_site = List.sort compare !by_site;
    violations = List.rev !violations;
  }
