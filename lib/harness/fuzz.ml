(** Resilience fuzzing: drive random {!Workloads.Progen} programs
    through random fault plans and check the containment contract.

    For every (graph seed × fault plan) pair the optimizer runs under
    injection, and three invariants are asserted:

    + {e no escape}: no exception leaves
      {!Dbds.Driver.optimize_program_report};
    + {e rollback fidelity}: every contained function's IR is
      byte-identical to its pre-attempt IR (the graph the pipeline
      started from);
    + {e jobs determinism}: the printed program, the failure list, the
      per-function statistics and the phase-context counters are
      identical under every [jobs] value tried.

    Any breach is reported as a human-readable violation string; an
    empty [violations] list is the pass criterion.  Everything is
    seeded, so a reported violation reproduces by rerunning the same
    pair. *)

type result = {
  pairs_run : int;  (** (graph seed × fault plan) pairs executed *)
  contained : int;  (** contained failures observed (at [List.hd jobs]) *)
  by_site : (string * int) list;  (** ... broken down per crash site *)
  violations : string list;  (** invariant breaches; [[]] = pass *)
}

(* One deterministic fingerprint of a finished run: printed graphs,
   failures, stats, counters.  Byte-equal fingerprints = identical runs. *)
let fingerprint prog (r : Dbds.Driver.report) =
  let buf = Buffer.create 4096 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Ir.Printer.graph_to_string g);
      Buffer.add_char buf '\n');
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Format.asprintf "%s: %a@." name Dbds.Driver.pp_stats s))
    r.Dbds.Driver.rep_stats;
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "failure %s at %s: %s\n" f.Dbds.Driver.fail_fn
           f.Dbds.Driver.fail_site f.Dbds.Driver.fail_exn))
    r.Dbds.Driver.rep_failures;
  let ctx = r.Dbds.Driver.rep_ctx in
  Buffer.add_string buf
    (Printf.sprintf "work=%d contained=%d\n" ctx.Opt.Phase.work
       (Opt.Phase.contained_total ctx));
  Buffer.contents buf

let config_for plan k =
  {
    Dbds.Config.default with
    Dbds.Config.mode =
      (* Every fourth plan runs the backtracking comparator so the
         copy-based containment path and the speculation journal's
         Fun.protect unwind get fuzzed too. *)
      (if k mod 4 = 3 then Dbds.Config.Backtracking else Dbds.Config.Dbds);
    fault_plan = Some plan;
    verify_between_phases = k mod 5 = 0;
    containment = true;
  }

(* Run one (source, plan) pair at one jobs value; returns the
   fingerprint and the report, or a violation string if an exception
   escaped. *)
let run_one ~src ~config ~jobs =
  let prog = Lang.Frontend.compile src in
  match Dbds.Driver.optimize_program_report ~config ~jobs prog with
  | r -> Ok (fingerprint prog r, prog, r)
  | exception e ->
      Error
        (Printf.sprintf "escaped exception (jobs=%d): %s" jobs
           (Printexc.to_string e))

(** Fuzz the containment contract over [graph_seeds] × [plans_per_graph]
    pairs, each at every jobs value in [jobs_matrix].  Defaults: 25
    seeds × 4 plans = 100 pairs, at [jobs:1] and [jobs:4]. *)
let run ?(graph_seeds = List.init 25 Fun.id) ?(plans_per_graph = 4)
    ?(jobs_matrix = [ 1; 4 ]) () =
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let pairs = ref 0 in
  let contained = ref 0 in
  let by_site = ref [] in
  let jobs_matrix = match jobs_matrix with [] -> [ 1 ] | l -> l in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      for k = 0 to plans_per_graph - 1 do
        let plan = Dbds.Faults.of_seed ((seed * 8191) + k) in
        let config = config_for plan k in
        let tag =
          Printf.sprintf "seed=%d plan=%s mode=%s" seed
            (Dbds.Faults.to_string plan)
            (Dbds.Config.mode_to_string config.Dbds.Config.mode)
        in
        incr pairs;
        let results =
          List.map (fun jobs -> (jobs, run_one ~src ~config ~jobs)) jobs_matrix
        in
        (match results with
        | (_, Ok (fp0, _, _)) :: rest ->
            List.iter
              (fun (jobs, res) ->
                match res with
                | Ok (fp, _, _) ->
                    if fp <> fp0 then
                      violate "%s: jobs=%d diverges from jobs=%d" tag jobs
                        (List.hd jobs_matrix)
                | Error msg -> violate "%s: %s" tag msg)
              rest
        | (_, Error msg) :: _ -> violate "%s: %s" tag msg
        | [] -> ());
        (* Invariants 1 and 2 on the first jobs value's run. *)
        match results with
        | (_, Ok (_, prog, r)) :: _ ->
            List.iter
              (fun f ->
                contained := !contained + 1;
                by_site :=
                  (let site = f.Dbds.Driver.fail_site in
                   let n =
                     match List.assoc_opt site !by_site with
                     | Some n -> n
                     | None -> 0
                   in
                   (site, n + 1) :: List.remove_assoc site !by_site);
                match Ir.Program.find_function prog f.Dbds.Driver.fail_fn with
                | None ->
                    violate "%s: contained function %s vanished" tag
                      f.Dbds.Driver.fail_fn
                | Some g ->
                    if Ir.Printer.graph_to_string g <> f.Dbds.Driver.fail_pre_ir
                    then
                      violate
                        "%s: %s not rolled back to its pre-attempt IR" tag
                        f.Dbds.Driver.fail_fn)
              r.Dbds.Driver.rep_failures
        | _ -> ()
      done)
    graph_seeds;
  {
    pairs_run = !pairs;
    contained = !contained;
    by_site = List.sort compare !by_site;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Artifact-store property                                             *)
(* ------------------------------------------------------------------ *)

type service_result = {
  s_pairs_run : int;  (** (graph seed × store fault plan) pairs executed *)
  s_store_hits : int;  (** store hits observed across warm passes *)
  s_recovered : int;
      (** contained store degradations: torn writes, read faults and
          corrupt entries that were evicted and recompiled *)
  s_violations : string list;  (** property breaches; [[]] = pass *)
}

let scratch_store_dir () = Filename.temp_dir "dbds-fuzz" ".store"

let remove_store_dir dir =
  if Sys.file_exists dir then (
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ())

(* Canonical post-optimization IR of the whole program — the store may
   legally renumber ids (a hit replays a parsed canonical artifact), so
   equality is asserted on the canonicalization fixpoint, not raw
   prints. *)
let canonical_fingerprint prog =
  let buf = Buffer.create 4096 in
  Ir.Program.iter_functions prog (fun g ->
      Buffer.add_string buf (Service.Digest.canonical_of_graph g);
      Buffer.add_char buf '\n');
  Buffer.contents buf

(* Store-counter fingerprint for the jobs-determinism check.  Evictions
   are excluded: LRU victim order depends on publication order, which
   is schedule-dependent under [jobs>1] (nothing evicts at the default
   capacity, but the exclusion keeps the property honest). *)
let store_counters (st : Service.Store.stats) =
  Printf.sprintf "h=%d m=%d w=%d wf=%d rf=%d c=%d" st.Service.Store.hits
    st.Service.Store.misses st.Service.Store.writes
    st.Service.Store.write_failures st.Service.Store.read_failures
    st.Service.Store.corrupt

(** The artifact-store property, fuzzed over random programs × random
    {!Dbds.Faults.store_sites} plans (torn temp writes, torn
    publications, read faults), each at every [jobs] value:

    + {e no escape}: injected store faults never leak an exception out
      of the driver — the store degrades to misses and recompiles;
    + {e answer fidelity}: both the cold pass (empty store) and the
      warm pass (recompiling against whatever the faulty cold pass
      managed to publish — including torn files) produce canonical IR
      byte-identical to an uncached reference compile.  A torn
      publication must be detected by checksum, evicted and recompiled;
    + {e jobs determinism}: outputs and store counters agree across the
      [jobs_matrix]. *)
let run_service ?(graph_seeds = List.init 10 Fun.id) ?(plans_per_graph = 3)
    ?(jobs_matrix = [ 1; 4 ]) () =
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let pairs = ref 0 in
  let store_hits = ref 0 in
  let recovered = ref 0 in
  let jobs_matrix = match jobs_matrix with [] -> [ 1 ] | l -> l in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      (* The uncached reference: same configuration, no store, no
         faults (store sites never execute without a store). *)
      let reference =
        let config = { Dbds.Config.dbds with Dbds.Config.containment = true } in
        let prog = Lang.Frontend.compile src in
        match Dbds.Driver.optimize_program_report ~config ~jobs:1 prog with
        | _ -> Some (canonical_fingerprint prog)
        | exception e ->
            violate "service seed=%d: reference compile escaped: %s" seed
              (Printexc.to_string e);
            None
      in
      match reference with
      | None -> ()
      | Some ref_fp ->
          for k = 0 to plans_per_graph - 1 do
            incr pairs;
            let plan = Dbds.Faults.of_seed_store ((seed * 8191) + k) in
            let config =
              {
                Dbds.Config.dbds with
                Dbds.Config.fault_plan = Some plan;
                containment = true;
              }
            in
            let tag =
              Printf.sprintf "service seed=%d plan=%s" seed
                (Dbds.Faults.to_string plan)
            in
            (* One leg = a fresh store, a cold pass and a warm pass at
               one jobs value. *)
            let run_leg jobs =
              let dir = scratch_store_dir () in
              Fun.protect ~finally:(fun () -> remove_store_dir dir)
              @@ fun () ->
              let store = Service.Store.create ~dir () in
              let pass () =
                let prog = Lang.Frontend.compile src in
                let cache =
                  Service.Store.driver_cache
                    ~context:(Service.Digest.context_of_program prog)
                    store
                in
                ignore
                  (Dbds.Driver.optimize_program_report ~config ~jobs ~cache
                     prog);
                canonical_fingerprint prog
              in
              let cold = pass () in
              let warm = pass () in
              let st = Service.Store.stats store in
              (cold, warm, store_counters st, st)
            in
            match run_leg (List.hd jobs_matrix) with
            | exception e ->
                violate "%s: escaped exception (jobs=%d): %s" tag
                  (List.hd jobs_matrix) (Printexc.to_string e)
            | cold0, warm0, counters0, st0 ->
                if cold0 <> ref_fp then
                  violate "%s: cold pass diverges from uncached reference" tag;
                if warm0 <> ref_fp then
                  violate "%s: warm pass diverges from uncached reference" tag;
                store_hits := !store_hits + st0.Service.Store.hits;
                recovered :=
                  !recovered + st0.Service.Store.write_failures
                  + st0.Service.Store.read_failures + st0.Service.Store.corrupt;
                List.iter
                  (fun jobs ->
                    match run_leg jobs with
                    | exception e ->
                        violate "%s: escaped exception (jobs=%d): %s" tag jobs
                          (Printexc.to_string e)
                    | cold, warm, counters, _ ->
                        if cold <> cold0 || warm <> warm0 then
                          violate "%s: jobs=%d outputs diverge from jobs=%d"
                            tag jobs (List.hd jobs_matrix);
                        if counters <> counters0 then
                          violate
                            "%s: jobs=%d store counters [%s] diverge from \
                             jobs=%d [%s]"
                            tag jobs counters (List.hd jobs_matrix) counters0)
                  (List.tl jobs_matrix)
          done)
    graph_seeds;
  {
    s_pairs_run = !pairs;
    s_store_hits = !store_hits;
    s_recovered = !recovered;
    s_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Tiered-execution property                                           *)
(* ------------------------------------------------------------------ *)

type tiered_result = {
  t_pairs_run : int;  (** (graph seed × plan) pairs executed *)
  t_promotions : int;  (** promotions observed across all pairs *)
  t_deopts : int;  (** deoptimizations observed (incl. forced ones) *)
  t_compile_failures : int;  (** contained background-compile crashes *)
  t_violations : string list;  (** property breaches; [[]] = pass *)
}

(* The full observable state of one execution: result value plus every
   global binding.  Byte-equal strings = indistinguishable runs. *)
let render_state result globals =
  Printf.sprintf "%s | %s"
    (Interp.Machine.result_to_string result)
    (String.concat ", "
       (List.map
          (fun (n, v) ->
            Printf.sprintf "%s=%s" n (Interp.Machine.value_to_string v))
          globals))

(* Generous budget so the tiered/tier-0 comparison never diverges on
   fuel: both sides run under the same cap. *)
let tiered_fuel = 50_000_000

(** The tiered-VM property, fuzzed over [graph_seeds] × [plans_per_graph]
    pairs of random programs and fault plans:

    + {e transparency}: every [run_full] of the engine — across
      promotions, background-compile crashes and (on odd pairs) one
      forced deoptimization of [main] — produces a result and final
      globals byte-identical to a fresh never-optimized interpretation
      of the same program on the same arguments;
    + {e jobs determinism}: the per-run outputs and the final
      {!Vm.Vmstats.fingerprint} are identical under [jobs:1] and
      [jobs:4].

    The policy is deliberately aggressive (promote on the first call,
    resample often) so every pair actually exercises tier 1 within
    [runs_per_pair] executions. *)
let run_tiered ?(graph_seeds = List.init 12 Fun.id) ?(plans_per_graph = 2)
    ?(runs_per_pair = 3) () =
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let pairs = ref 0 in
  let promotions = ref 0 in
  let deopts = ref 0 in
  let compile_failures = ref 0 in
  let policy =
    {
      Vm.Policy.default with
      Vm.Policy.invocation_threshold = 1;
      backedge_threshold = 8;
      profile_period = 3;
      drift_min_samples = 8;
    }
  in
  List.iter
    (fun seed ->
      let src = Workloads.Progen.generate ~seed () in
      for k = 0 to plans_per_graph - 1 do
        incr pairs;
        let plan = Dbds.Faults.of_seed ((seed * 8191) + k) in
        (* Even pairs crash the background compiler somewhere; odd pairs
           force a deoptimization of an installed main instead. *)
        let compile =
          {
            Dbds.Config.dbds with
            Dbds.Config.fault_plan = (if k mod 2 = 0 then Some plan else None);
            containment = true;
          }
        in
        let deopt_plan =
          if k mod 2 = 1 then Some ("main", 1 + (seed mod 2)) else None
        in
        let tag =
          Printf.sprintf "tiered seed=%d plan=%s deopt=%s" seed
            (if k mod 2 = 0 then Dbds.Faults.to_string plan else "-")
            (match deopt_plan with
            | Some (fn, n) -> Printf.sprintf "%s:%d" fn n
            | None -> "-")
        in
        let args_for i = [| (seed + i) mod 7; ((seed * 3) + i) mod 5 |] in
        let run_engine jobs =
          let cfg =
            Vm.Engine.config ~policy ~compile ~jobs ~fuel:tiered_fuel
              ?deopt_plan ()
          in
          let eng = Vm.Engine.create ~config:cfg (Lang.Frontend.compile src) in
          let outs =
            List.init runs_per_pair (fun i ->
                let result, _, globals =
                  Vm.Engine.run_full eng ~args:(args_for i)
                in
                render_state result globals)
          in
          let vs = Vm.Engine.finish eng in
          (outs, vs, Vm.Vmstats.fingerprint vs)
        in
        match run_engine 1 with
        | exception e ->
            violate "%s: engine escaped: %s" tag (Printexc.to_string e)
        | outs1, vs, fp1 -> (
            (* Transparency: each run against a fresh tier-0-only
               interpretation of the unoptimized program. *)
            List.iteri
              (fun i out ->
                let prog = Lang.Frontend.compile src in
                let expect_result, _, expect_globals =
                  Interp.Machine.run_full ~fuel:tiered_fuel prog
                    ~args:(args_for i)
                in
                let expect = render_state expect_result expect_globals in
                if out <> expect then
                  violate "%s run %d: tiered [%s] <> tier-0 [%s]" tag i out
                    expect)
              outs1;
            (* Engine event tallies come from the jobs:1 leg. *)
            promotions := !promotions + vs.Vm.Vmstats.promotions;
            deopts := !deopts + vs.Vm.Vmstats.deopts;
            compile_failures :=
              !compile_failures + vs.Vm.Vmstats.compile_failures;
            (* Jobs determinism: identical outputs and vmstats. *)
            match run_engine 4 with
            | exception e ->
                violate "%s: jobs=4 escaped: %s" tag (Printexc.to_string e)
            | outs4, _, fp4 ->
                if outs4 <> outs1 then
                  violate "%s: jobs=4 run outputs diverge from jobs=1" tag;
                if fp4 <> fp1 then
                  violate "%s: jobs=4 vmstats fingerprint diverges from jobs=1"
                    tag)
      done)
    graph_seeds;
  {
    t_pairs_run = !pairs;
    t_promotions = !promotions;
    t_deopts = !deopts;
    t_compile_failures = !compile_failures;
    t_violations = List.rev !violations;
  }

(* ---- frontdoor framing-decoder hardening ----------------------------- *)

type frontdoor_result = {
  f_decoder_cases : int;  (** byte strings fed to the pure decoders *)
  f_server_runs : int;  (** simulated garbage-client server runs *)
  f_rejected : int;  (** structured rejections observed end-to-end *)
  f_violations : string list;  (** hardening breaches; [[]] = pass *)
}

let run_frontdoor ?(decoder_cases = 400) ?(server_seeds = 8) () =
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let rng = Random.State.make [| 0xf4d0; decoder_cases; server_seeds |] in
  (* 1. The pure decoders on adversarial bytes: random garbage, valid
     messages with one byte flipped, and every truncation of a valid
     message.  Any outcome is fine — raising is the bug. *)
  let random_message () =
    let rand_string n =
      String.init (Random.State.int rng (n + 1)) (fun _ ->
          Char.chr (Random.State.int rng 256))
    in
    let verbs =
      [| "compile"; "reply"; "ping"; "stats"; "hello"; "lookup"; "a-verb" |]
    in
    {
      Service.Protocol.verb =
        verbs.(Random.State.int rng (Array.length verbs));
      fields =
        List.init (Random.State.int rng 4) (fun i ->
            (Printf.sprintf "f%d" i, rand_string 64));
    }
  in
  let feed tag decode bytes =
    match decode bytes with
    | Service.Protocol.Msg _ | Service.Protocol.More
    | Service.Protocol.Err _ ->
        ()
    | exception e ->
        violate "%s decoder raised %s on %d bytes" tag (Printexc.to_string e)
          (String.length bytes)
  in
  let cases = ref 0 in
  let feed_both bytes =
    incr cases;
    feed "text" Service.Protocol.decode bytes;
    feed "binary" Service.Protocol.decode_binary bytes
  in
  for _ = 1 to decoder_cases / 4 do
    (* Pure noise, binary-magic-prefixed noise, and mutations /
       truncations of well-formed renders in both framings. *)
    feed_both
      (String.init (Random.State.int rng 200) (fun _ ->
           Char.chr (Random.State.int rng 256)));
    feed_both
      ("\xBF"
      ^ String.init (Random.State.int rng 64) (fun _ ->
            Char.chr (Random.State.int rng 256)));
    let m = random_message () in
    let wire =
      if Random.State.bool rng then Service.Protocol.render m
      else Service.Protocol.render_binary m
    in
    let mutated =
      if wire = "" then wire
      else
        String.mapi
          (fun i c ->
            if i = Random.State.int rng (String.length wire) then
              Char.chr (Random.State.int rng 256)
            else c)
          wire
    in
    feed_both mutated;
    feed_both (String.sub wire 0 (Random.State.int rng (String.length wire + 1)))
  done;
  (* 2. End-to-end: a garbage client against a simulated frontdoor must
     get a structured rejection (or a clean close — never a crash or a
     wedged loop), and a fresh well-formed connection must still be
     served afterwards. *)
  let rejected = ref 0 in
  for k = 1 to server_seeds do
    (* Half the junk is line-terminated so the text decoder actually
       sees a complete (garbage) header; the rest stays newline-free —
       the server must cull the silent half-open connection instead. *)
    let junk =
      String.init
        (1 + Random.State.int rng 80)
        (fun _ -> Char.chr (Random.State.int rng 256))
      ^ if k mod 2 = 0 then "\n" else ""
    in
    let sched = Simtest.Sched.create ~seed:(77000 + k) () in
    let io = Simtest.Simio.create sched in
    let env = Simtest.Simio.env io in
    let out =
      Simtest.Sched.run sched (fun () ->
          let broker =
            Service.Broker.create ~env ~workers:1 ~store:None ()
          in
          let srv =
            env.Service.Env.spawn "frontdoor" (fun () ->
                Service.Frontdoor.serve ~env ~sock:"/fd" ~broker ())
          in
          env.Service.Env.sleep 0.01;
          (match env.Service.Env.connect "/fd" with
          | exception Service.Env.Net _ -> ()
          | conn ->
              (try
                 conn.Service.Env.send junk;
                 match
                   Service.Protocol.read_conn
                     ~deadline:(env.Service.Env.mono () +. 30.)
                     conn
                 with
                 | Ok r
                   when Service.Protocol.field r "status" = Some "rejected"
                   ->
                     incr rejected
                 | Ok r ->
                     (* Random bytes can parse as a harmless verb —
                        only a served artifact would be alarming. *)
                     if Service.Protocol.field r "ir" <> None then
                       violate "seed %d: garbage earned an artifact" k
                 | Error _ -> ()
               with Service.Env.Net _ -> ());
              (try conn.Service.Env.close_conn () with Service.Env.Net _ -> ()));
          (match
             Service.Client.connect ~env ~deadline_s:5.0 ~io_deadline_s:30.
               ~sock:"/fd" ()
           with
          | exception _ -> violate "seed %d: server unreachable after garbage" k
          | c ->
              if not (Service.Client.ping c) then
                violate "seed %d: ping failed after garbage" k;
              ignore (Service.Client.shutdown_server c);
              Service.Client.close c);
          srv.Service.Env.join ())
    in
    if not out.Simtest.Sched.ok then
      violate "seed %d: garbage run left an unclean schedule (%d hung, %d crashed)"
        k
        (List.length out.Simtest.Sched.hung)
        (List.length out.Simtest.Sched.crashed)
  done;
  {
    f_decoder_cases = !cases;
    f_server_runs = server_seeds;
    f_rejected = !rejected;
    f_violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Workload-lab property                                               *)
(* ------------------------------------------------------------------ *)

type lab_result = {
  l_pairs_run : int;
  l_paranoid_runs : int;
  l_enables_checked : int;
  l_violations : string list;
}

(* The lab corpus: every adversarial benchmark plus a few progen
   programs with the irreducible-region flag on.  Builders return a
   fresh program per call — optimization mutates graphs in place. *)
let lab_corpus ~progen_seeds =
  List.concat_map
    (fun (s : Workloads.Suite.t) ->
      List.map
        (fun (b : Workloads.Suite.benchmark) ->
          ( s.Workloads.Suite.suite_name ^ "/" ^ b.Workloads.Suite.name,
            fun () -> Workloads.Suite.compile b ))
        s.Workloads.Suite.benchmarks)
    Workloads.Registry.adversarial
  @ List.map
      (fun seed ->
        ( Printf.sprintf "progen-irr/%d" seed,
          fun () ->
            Workloads.Progen.generate_program ~irreducible:true ~seed () ))
      progen_seeds

(* The tiers under fuzz: the three new passes, plus dbds as the control.
   The legacy tiers ride through [run] above. *)
let lab_tiers () =
  List.filter
    (fun (name, _) ->
      List.mem name [ "copyprop-canon"; "lospre"; "condelim_dup"; "dbds" ])
    Tiercompare.tiers

let run_lab ?(progen_seeds = [ 0; 1; 2; 3 ]) ?(plans_per_pair = 2) () =
  let violations = ref [] in
  let violate fmt =
    Printf.ksprintf (fun s -> violations := s :: !violations) fmt
  in
  let pairs = ref 0 and paranoid = ref 0 and enables_checked = ref 0 in
  let corpus = lab_corpus ~progen_seeds in
  let tiers = lab_tiers () in
  (* (1) jobs 1-vs-4 byte identity of the whole run — printed IR,
     stats, failures, counters — with and without fault plans. *)
  List.iter
    (fun (name, fresh) ->
      List.iter
        (fun (tier, tconfig) ->
          for k = 0 to plans_per_pair - 1 do
            let plan =
              if k = 0 then None
              else Some (Dbds.Faults.of_seed ((Hashtbl.hash name * 31) + k))
            in
            let config =
              {
                tconfig with
                Dbds.Config.fault_plan = plan;
                containment = true;
                bundle_dir = None;
              }
            in
            incr pairs;
            let one jobs =
              let prog = fresh () in
              match Dbds.Driver.optimize_program_report ~config ~jobs prog with
              | r -> Ok (fingerprint prog r)
              | exception e -> Error (Printexc.to_string e)
            in
            match (one 1, one 4) with
            | Ok f1, Ok f4 ->
                if f1 <> f4 then
                  violate "%s tier=%s plan=%d: jobs=4 diverges from jobs=1"
                    name tier k
            | Error msg, _ | _, Error msg ->
                violate "%s tier=%s plan=%d: escaped exception: %s" name tier
                  k msg
          done)
        tiers)
    corpus;
  (* (2) preserves contracts: the paranoid driver (IR verifier plus
     recompute-and-compare audit of every declared-preserved analysis
     after each fired pass) must contain nothing on the clean corpus. *)
  List.iter
    (fun (name, fresh) ->
      List.iter
        (fun (tier, tconfig) ->
          let config =
            { tconfig with Dbds.Config.verify_between_phases = true }
          in
          incr paranoid;
          let prog = fresh () in
          match Dbds.Driver.optimize_program_report ~config ~jobs:1 prog with
          | r -> (
              match r.Dbds.Driver.rep_failures with
              | [] -> ()
              | f :: _ ->
                  violate "%s tier=%s: paranoid run contained %s at %s: %s"
                    name tier f.Dbds.Driver.fail_fn f.Dbds.Driver.fail_site
                    f.Dbds.Driver.fail_exn)
          | exception e ->
              violate "%s tier=%s: paranoid run raised %s" name tier
                (Printexc.to_string e))
        tiers)
    corpus;
  (* (3) enables completeness: once the classic fixpoint has settled,
     each firing of copyprop/lospre is chased through only its declared
     [enables] passes back to a fixpoint; the full classic group must
     then have nothing left to do.  An [enables] list that hides a
     consumer is a lie the incremental pass manager would act on. *)
  let resolve n =
    match Opt.Pipeline.resolve_classic n [] with
    | Ok p -> p
    | Error msg -> invalid_arg msg
  in
  let classic = List.map resolve Opt.Pipeline.classic_names in
  List.iter
    (fun (name, fresh) ->
      List.iter
        (fun pass_name ->
          let pass = resolve pass_name in
          let enabled =
            match pass.Opt.Phase.enables with
            | Some names -> List.map resolve names
            | None -> classic
          in
          let prog = fresh () in
          let ctx = Opt.Phase.create ~program:prog () in
          incr enables_checked;
          List.iter
            (fun fn ->
              match Ir.Program.find_function prog fn with
              | None -> ()
              | Some g -> (
                  try
                    ignore (Opt.Phase.fixpoint classic ctx g);
                    let fired = ref false and budget = ref 8 in
                    let converged = ref false in
                    while (not !converged) && !budget > 0 do
                      if Opt.Phase.run_pass ctx pass g then begin
                        fired := true;
                        decr budget;
                        ignore (Opt.Phase.fixpoint enabled ctx g)
                      end
                      else converged := true
                    done;
                    if
                      !fired && !converged
                      && Opt.Phase.fixpoint classic ctx g
                    then
                      violate
                        "%s/%s: %s's enables list misses a consumer (classic \
                         group still fired)"
                        name fn pass_name
                  with e ->
                    violate "%s/%s: enables check for %s raised %s" name fn
                      pass_name (Printexc.to_string e)))
            (Ir.Program.function_names prog))
        [ "copyprop"; "lospre" ])
    corpus;
  {
    l_pairs_run = !pairs;
    l_paranoid_runs = !paranoid;
    l_enables_checked = !enables_checked;
    l_violations = List.rev !violations;
  }
