(** The experiment definitions: one entry per paper artifact (see the
    experiment index in DESIGN.md §4), each able to regenerate its rows.
    [bin/experiments.exe] prints all of them; [bench/main.exe] wraps the
    compile-time measurements in Bechamel. *)

(** {2 Figures 5–8} *)

val run_figure : Workloads.Suite.t -> Report.suite_summary
val run_all_figures : unit -> Report.suite_summary list

(** {2 Ablation: backtracking vs simulation compile time (paper §3.1)} *)

type backtracking_row = {
  bt_benchmark : string;
  dbds_work : int;
  backtracking_work : int;
  ratio : float;
}

(** Compare compile effort on a sample of [benchmarks_per_suite]
    (default 2) benchmarks per suite. *)
val run_backtracking_ablation :
  ?benchmarks_per_suite:int -> unit -> backtracking_row list

val pp_backtracking : Format.formatter -> backtracking_row list -> unit

(** {2 Ablation: DBDS iteration count (paper §5.2)} *)

type iteration_row = {
  it_iterations : int;
  it_peak : float;  (** geomean peak delta vs baseline *)
  it_compile : float;
  it_size : float;
}

val run_iteration_ablation :
  ?suite:Workloads.Suite.t -> unit -> iteration_row list

val pp_iterations : Format.formatter -> iteration_row list -> unit

(** {2 Ablation: trade-off constants (paper §5.4)} *)

type budget_row = {
  bd_label : string;
  bd_peak : float;
  bd_size : float;
  bd_duplications : int;
}

val run_budget_ablation : ?suite:Workloads.Suite.t -> unit -> budget_row list
val pp_budget : Format.formatter -> budget_row list -> unit

(** {2 Extension: path-based duplication (paper §8 future work)} *)

type path_row = {
  pd_suite : string;
  pd_peak_plain : float;
  pd_peak_paths : float;
  pd_compile_plain : float;
  pd_compile_paths : float;
  pd_size_plain : float;
  pd_size_paths : float;
}

val run_path_ablation : unit -> path_row list
val pp_path_ablation : Format.formatter -> path_row list -> unit

(** {2 Figure 4: the node cost model example} *)

(** (estimated cycles before, after) duplication for the Figure 4
    program. *)
val figure4 : unit -> float * float

val pp_figure4 : Format.formatter -> float * float -> unit
