(** The IR node cost model (paper §5.3).

    Each instruction kind carries a platform-agnostic estimate of its
    execution latency in abstract {e cycles} and its machine-code
    {e size} in abstract bytes — the OCaml analogue of Graal's
    [@NodeInfo(cycles = ..., size = ...)] annotations.  The published
    data points are preserved: division costs 32 cycles, a shift costs 1
    (Figure 3d's strength reduction saves 31 cycles), an allocation costs
    8 ("tlab alloc + header init", Listing 7). *)

(** Revision of the cost tables: bump on any change to the constants.
    Folded into the compilation-service digest so artifacts cached under
    one cost model are never reused under another. *)
val revision : int

type estimate = { cycles : float; size : int }

val of_kind : Ir.Types.instr_kind -> estimate
val of_term : Ir.Types.terminator -> estimate
val cycles_of_kind : Ir.Types.instr_kind -> float
val size_of_kind : Ir.Types.instr_kind -> int
