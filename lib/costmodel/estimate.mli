(** Whole-graph static estimates built on the node cost model: code size
    (the budget currency of the trade-off tier) and frequency-weighted
    cycles (the static performance estimator used to rank candidates and
    by the backtracking comparator to detect progress). *)

(** Cost-model size of one block (instructions + terminator). *)
val block_size : Ir.Graph.t -> Ir.Types.block_id -> int

(** Static code size of the whole graph, in abstract bytes (reachable
    blocks only). *)
val graph_size : Ir.Graph.t -> int

(** Cost-model cycles of one block. *)
val block_cycles : Ir.Graph.t -> Ir.Types.block_id -> float

(** Frequency-weighted cycle estimate of the whole graph: the static
    performance estimator of paper §5.3 (Figure 4 computes exactly this
    quantity for a two-block example). *)
val weighted_cycles : ?loop_factor:float -> Ir.Graph.t -> float
