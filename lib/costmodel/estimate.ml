(** Whole-graph static estimates built on the node cost model: code size
    (the budget currency of the trade-off tier) and frequency-weighted
    cycles (the static performance estimator used to rank candidates and
    by the backtracking comparator to detect progress). *)

let block_size g bid =
  let instrs =
    List.fold_left
      (fun acc id -> acc + Cost.size_of_kind (Ir.Graph.kind g id))
      0
      (Ir.Graph.block_instrs g bid)
  in
  instrs + (Cost.of_term (Ir.Graph.term g bid)).Cost.size

(** Static code size of the whole graph, in abstract bytes. *)
let graph_size g =
  List.fold_left (fun acc bid -> acc + block_size g bid) 0 (Ir.Graph.rpo g)

let block_cycles g bid =
  let instrs =
    List.fold_left
      (fun acc id -> acc +. Cost.cycles_of_kind (Ir.Graph.kind g id))
      0.0
      (Ir.Graph.block_instrs g bid)
  in
  instrs +. (Cost.of_term (Ir.Graph.term g bid)).Cost.cycles

(** Frequency-weighted cycle estimate of the whole graph: the static
    performance estimator of paper §5.3 (Figure 4 computes exactly this
    quantity for a two-block example). *)
let weighted_cycles ?loop_factor g =
  let freq = Ir.Analyses.frequency ?loop_factor g in
  List.fold_left
    (fun acc bid -> acc +. (block_cycles g bid *. Ir.Frequency.frequency freq bid))
    0.0 (Ir.Graph.rpo g)
