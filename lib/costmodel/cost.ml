(** The IR node cost model (paper §5.3).

    Each instruction kind carries a platform-agnostic estimate of its
    execution latency in abstract {e cycles} and its machine-code
    {e size} in abstract bytes — the OCaml analogue of Graal's
    [@NodeInfo(cycles = ..., size = ...)] annotations (the paper
    annotated over 400 node classes; our IR has far fewer kinds, so a
    single table suffices).  The published data points are preserved:
    division costs 32 cycles, a shift costs 1 (Figure 3d's strength
    reduction saves 31 cycles), an allocation costs 8
    ("tlab alloc + header init", Listing 7), and Figure 4's
    constant-folding example computes 14 → 12.2 cycles. *)

open Ir.Types

(** Revision of the cost tables below.  Optimization decisions (the
    trade-off tier, LICM profitability, the backend size estimate) all
    read these constants, so cached compilation artifacts are only
    reusable across processes agreeing on them: the service digest folds
    this number in, and any edit to the tables must bump it. *)
let revision = 1

type estimate = { cycles : float; size : int }

(** Costs of an instruction, by kind. *)
let of_kind = function
  | Const _ | Null -> { cycles = 0.0; size = 1 }
      (* usually folded into the consuming instruction *)
  | Param _ -> { cycles = 0.0; size = 0 }
  | Phi _ -> { cycles = 0.0; size = 0 }
      (* resolved to moves on the incoming edges; charged there via size *)
  | Binop ((Add | Sub | And | Or | Xor), _, _) -> { cycles = 1.0; size = 1 }
  | Binop ((Shl | Shr), _, _) -> { cycles = 1.0; size = 1 }
  | Binop (Mul, _, _) -> { cycles = 2.0; size = 1 }
  | Binop ((Div | Rem), _, _) -> { cycles = 32.0; size = 2 }
  | Cmp _ -> { cycles = 1.0; size = 1 }
  | Neg _ | Not _ -> { cycles = 1.0; size = 1 }
  | New (_, args) -> { cycles = 8.0; size = 8 + Array.length args }
  | Load _ -> { cycles = 3.0; size = 2 }
  | Store _ -> { cycles = 3.0; size = 2 }
  | Load_global _ -> { cycles = 3.0; size = 2 }
  | Store_global _ -> { cycles = 3.0; size = 2 }
  | Call (_, args) -> { cycles = 20.0; size = 4 + Array.length args }

(** Costs of a terminator. *)
let of_term = function
  | Jump _ -> { cycles = 1.0; size = 1 }
  | Branch _ -> { cycles = 1.0; size = 2 }
  | Return _ -> { cycles = 1.0; size = 1 }
  | Unreachable -> { cycles = 0.0; size = 0 }

let cycles_of_kind k = (of_kind k).cycles
let size_of_kind k = (of_kind k).size
