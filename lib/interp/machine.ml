(** The IR interpreter — the measurement substrate standing in for the
    paper's hardware testbed.

    Executing an instruction charges its node-cost-model cycles; entering
    a basic block consults a block-granular LRU instruction-cache model
    (see DESIGN.md §2): a miss charges a penalty proportional to the
    block's code size.  Because duplication-enabled optimizations remove
    dynamically executed instructions, "peak performance" (total charged
    cycles on a workload) genuinely improves — and unbounded duplication
    (dupalot) can regress it by blowing the i-cache, reproducing the
    paper's raytrace observation.

    The {!Exec} sub-interface exposes the same evaluator to the tiered
    VM ([lib/vm]): a call handler intercepts every function dispatch so
    the engine can pick a code version per invocation, and a heap/global
    undo journal lets a deoptimizing invocation restore the exact state
    it entered with before re-executing in tier 0. *)

open Ir.Types

type value = VInt of int | VNull | VObj of int

type icache_config = {
  enabled : bool;
  capacity : int;  (** total cached code size, abstract bytes *)
  miss_penalty_base : float;
  miss_penalty_per_byte : float;
}

let default_icache =
  {
    enabled = true;
    capacity = 768;
    miss_penalty_base = 16.0;
    miss_penalty_per_byte = 1.0;
  }

let no_icache = { default_icache with enabled = false }

type stats = {
  mutable cycles : float;
  mutable instrs_executed : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable allocations : int;
  mutable calls : int;
}

exception Out_of_fuel
exception Runtime_error of string

(* Undo journal entries for the tiered VM's deoptimization: enough to
   restore heap, globals and the allocation counter to an earlier mark.
   Entries are recorded only while [journaling] is set (i.e. while an
   optimized frame is live) and applied strictly LIFO. *)
type undo =
  | U_field of value array * int * value  (** the array cell's old value *)
  | U_global of string * value option
  | U_alloc of int  (** object id to unalloc; restores [next_obj] too *)

type state = {
  program : Ir.Program.t;
  profile : Profile.t option;  (** record branch outcomes when present *)
  icache_config : icache_config;
  (* LRU as an association list (fn, code-version, block) -> size, most
     recent first; small capacities keep this cheap.  The code version
     keys distinct installed bodies of the same function apart (the
     tiered VM's optimized copies must not share cache lines with the
     tier-0 body they replaced). *)
  mutable icache : ((string * int * int) * int) list;
  mutable icache_used : int;
  heap : (int, string * value array) Hashtbl.t;
  globals : (string, value) Hashtbl.t;
  mutable next_obj : int;
  mutable fuel : int;
  stats : stats;
  mutable handler : (string -> value array -> value option) option;
      (** when set, every [Call] (and nothing else) goes through it *)
  mutable journaling : bool;
  mutable journal : undo list;
  mutable journal_len : int;
}

let fresh_stats () =
  {
    cycles = 0.0;
    instrs_executed = 0;
    icache_hits = 0;
    icache_misses = 0;
    allocations = 0;
    calls = 0;
  }

let charge st c = st.stats.cycles <- st.stats.cycles +. c

let icache_touch st fn version g bid =
  let cfg = st.icache_config in
  if cfg.enabled then begin
    let key = (fn, version, bid) in
    match List.assoc_opt key st.icache with
    | Some size ->
        (* hit: move to front *)
        st.stats.icache_hits <- st.stats.icache_hits + 1;
        st.icache <- (key, size) :: List.remove_assoc key st.icache
    | None ->
        let size = Costmodel.Estimate.block_size g bid in
        st.stats.icache_misses <- st.stats.icache_misses + 1;
        charge st
          (cfg.miss_penalty_base +. (cfg.miss_penalty_per_byte *. float_of_int size));
        st.icache <- (key, size) :: st.icache;
        st.icache_used <- st.icache_used + size;
        while st.icache_used > cfg.capacity && st.icache <> [] do
          match List.rev st.icache with
          | (victim, vsize) :: _ ->
              st.icache <- List.remove_assoc victim st.icache;
              st.icache_used <- st.icache_used - vsize
          | [] -> ()
        done
  end

let as_int = function
  | VInt n -> n
  | VNull -> raise (Runtime_error "expected int, got null")
  | VObj _ -> raise (Runtime_error "expected int, got object")

let truthy = function VInt 0 -> false | VInt _ -> true | VNull -> false | VObj _ -> true

let eval_cmp_values op a b =
  match (op, a, b) with
  | _, VInt x, VInt y -> VInt (eval_cmp op x y)
  | Eq, VNull, VNull -> VInt 1
  | Ne, VNull, VNull -> VInt 0
  | Eq, VObj x, VObj y -> VInt (if x = y then 1 else 0)
  | Ne, VObj x, VObj y -> VInt (if x = y then 0 else 1)
  | Eq, (VNull | VObj _), (VNull | VObj _) -> VInt 0
  | Ne, (VNull | VObj _), (VNull | VObj _) -> VInt 1
  | _ -> raise (Runtime_error "invalid comparison operands")

let field_slot st cls field =
  match Ir.Program.field_index st.program cls field with
  | Some i -> i
  | None ->
      raise (Runtime_error (Printf.sprintf "unknown field %s.%s" cls field))

let record_undo st u =
  st.journal <- u :: st.journal;
  st.journal_len <- st.journal_len + 1

(* Evaluate one function body.  [args] are the parameter values;
   [version] keys the i-cache (0 = the program's own body, the tiered
   VM passes the installed code version); [profile] records branch
   outcomes for this body only; [on_edge] observes every taken CFG edge
   (the VM's backedge counters). *)
let rec eval_function st ~version ~profile ~on_edge (g : Ir.Graph.t)
    (args : value array) : value option =
  let fn = Ir.Graph.name g in
  let env = Array.make (Ir.Graph.n_instrs g) VNull in
  let eval_instr id =
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    st.stats.instrs_executed <- st.stats.instrs_executed + 1;
    let kind = Ir.Graph.kind g id in
    charge st (Costmodel.Cost.cycles_of_kind kind);
    let v x = env.(x) in
    let result =
      match kind with
      | Const n -> VInt n
      | Null -> VNull
      | Param i ->
          if i < Array.length args then args.(i)
          else raise (Runtime_error "missing argument")
      | Binop (op, a, b) -> VInt (eval_binop op (as_int (v a)) (as_int (v b)))
      | Cmp (op, a, b) -> eval_cmp_values op (v a) (v b)
      | Neg a -> VInt (- as_int (v a))
      | Not a -> VInt (if truthy (v a) then 0 else 1)
      | Phi _ -> assert false (* handled on edges *)
      | New (cls, cargs) ->
          let n_fields =
            match Ir.Program.find_class st.program cls with
            | Some c -> List.length c.Ir.Program.fields
            | None -> Array.length cargs
          in
          let fields = Array.make n_fields (VInt 0) in
          Array.iteri (fun i a -> if i < n_fields then fields.(i) <- v a) cargs;
          let oid = st.next_obj in
          st.next_obj <- oid + 1;
          st.stats.allocations <- st.stats.allocations + 1;
          Hashtbl.replace st.heap oid (cls, fields);
          if st.journaling then record_undo st (U_alloc oid);
          VObj oid
      | Load (o, f) -> (
          match v o with
          | VObj oid ->
              let cls, fields = Hashtbl.find st.heap oid in
              fields.(field_slot st cls f)
          | VNull -> raise (Runtime_error "null dereference (load)")
          | VInt _ -> raise (Runtime_error "load from non-object"))
      | Store (o, f, x) -> (
          match v o with
          | VObj oid ->
              let cls, fields = Hashtbl.find st.heap oid in
              let slot = field_slot st cls f in
              if st.journaling then
                record_undo st (U_field (fields, slot, fields.(slot)));
              fields.(slot) <- v x;
              VInt 0
          | VNull -> raise (Runtime_error "null dereference (store)")
          | VInt _ -> raise (Runtime_error "store to non-object"))
      | Load_global gl ->
          Option.value ~default:(VInt 0) (Hashtbl.find_opt st.globals gl)
      | Store_global (gl, x) ->
          if st.journaling then
            record_undo st (U_global (gl, Hashtbl.find_opt st.globals gl));
          Hashtbl.replace st.globals gl (v x);
          VInt 0
      | Call (callee, cargs) -> (
          st.stats.calls <- st.stats.calls + 1;
          let vals = Array.map v cargs in
          match st.handler with
          | Some h -> Option.value ~default:(VInt 0) (h callee vals)
          | None -> (
              match Ir.Program.find_function st.program callee with
              | Some callee_g ->
                  Option.value ~default:(VInt 0)
                    (eval_function st ~version:0 ~profile:st.profile
                       ~on_edge:None callee_g vals)
              | None ->
                  raise
                    (Runtime_error (Printf.sprintf "unknown function %s" callee))
              ))
    in
    env.(id) <- result
  in
  (* Evaluate the target's phis simultaneously from the edge values. *)
  let enter_block from target =
    let idx = Ir.Graph.pred_index g target from in
    let moves = ref [] in
    Ir.Graph.iter_phis g target (fun phi_id ->
        match Ir.Graph.kind g phi_id with
        | Phi inputs -> moves := (phi_id, env.(inputs.(idx))) :: !moves
        | _ -> assert false);
    List.iter (fun (phi_id, v) -> env.(phi_id) <- v) !moves
  in
  let take_edge from target =
    (match on_edge with Some f -> f from target | None -> ());
    enter_block from target
  in
  (* Iterative block dispatch so long-running loops use constant stack. *)
  let current = ref (Ir.Graph.entry g) in
  let result = ref None in
  let running = ref true in
  while !running do
    let bid = !current in
    icache_touch st fn version g bid;
    Ir.Graph.iter_body g bid eval_instr;
    st.fuel <- st.fuel - 1;
    if st.fuel <= 0 then raise Out_of_fuel;
    let term = Ir.Graph.term g bid in
    charge st (Costmodel.Cost.of_term term).Costmodel.Cost.cycles;
    match term with
    | Return None -> running := false
    | Return (Some v) ->
        result := Some env.(v);
        running := false
    | Unreachable -> raise (Runtime_error "reached unreachable")
    | Jump target ->
        take_edge bid target;
        current := target
    | Branch { cond; if_true; if_false; _ } ->
        let taken_true = truthy env.(cond) in
        (match profile with
        | Some profile -> Profile.record profile ~fn ~bid ~taken_true
        | None -> ());
        let target = if taken_true then if_true else if_false in
        take_edge bid target;
        current := target
  done;
  !result

let create ?(icache = default_icache) ?(fuel = 10_000_000) ?profile program =
  {
    program;
    profile;
    icache_config = icache;
    icache = [];
    icache_used = 0;
    heap = Hashtbl.create 64;
    globals = Hashtbl.create 8;
    next_obj = 0;
    fuel;
    stats = fresh_stats ();
    handler = None;
    journaling = false;
    journal = [];
    journal_len = 0;
  }

let main_graph st =
  match Ir.Program.find_function st.program st.program.Ir.Program.main with
  | Some g -> g
  | None ->
      raise
        (Runtime_error
           (Printf.sprintf "no main function %s" st.program.Ir.Program.main))

let sorted_globals st =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) st.globals []
  |> List.sort compare

(** Run a program's main function on integer arguments.  Returns the
    result (if any) and the accumulated statistics. *)
let run ?icache ?fuel ?profile program ~args =
  let st = create ?icache ?fuel ?profile program in
  let g = main_graph st in
  let result =
    eval_function st ~version:0 ~profile:st.profile ~on_edge:None g
      (Array.map (fun n -> VInt n) args)
  in
  (result, st.stats)

(** Run a single graph (wrapped as a program) — convenient in tests. *)
let run_graph ?icache ?fuel ?classes ?globals g ~args =
  run ?icache ?fuel (Ir.Program.of_graph ?classes ?globals g) ~args

(** Like {!run}, but also returns the final global-variable bindings
    (sorted by name) — the full observable state, used by differential
    tests. *)
let run_full ?icache ?fuel ?profile program ~args =
  let st = create ?icache ?fuel ?profile program in
  let g = main_graph st in
  let result =
    eval_function st ~version:0 ~profile:st.profile ~on_edge:None g
      (Array.map (fun n -> VInt n) args)
  in
  (result, st.stats, sorted_globals st)

let value_to_string = function
  | VInt n -> string_of_int n
  | VNull -> "null"
  | VObj n -> Printf.sprintf "obj#%d" n

let result_to_string = function
  | None -> "(void)"
  | Some v -> value_to_string v

(* ------------------------------------------------------------------ *)
(* The tiered-VM execution interface                                   *)
(* ------------------------------------------------------------------ *)

module Exec = struct
  type st = state
  type mark = int

  let make ?icache ?fuel program = create ?icache ?fuel program
  let stats (st : st) = st.stats
  let globals = sorted_globals
  let charge = charge
  let set_call_handler st h = st.handler <- Some h

  let run_body ?(version = 0) ?profile ?on_edge st g args =
    eval_function st ~version ~profile ~on_edge g args

  let set_journaling st b =
    st.journaling <- b;
    if not b then begin
      st.journal <- [];
      st.journal_len <- 0
    end

  let mark st = st.journal_len

  let undo_to st m =
    while st.journal_len > m do
      match st.journal with
      | [] -> st.journal_len <- m
      | u :: rest ->
          st.journal <- rest;
          st.journal_len <- st.journal_len - 1;
          (match u with
          | U_field (arr, i, old) -> arr.(i) <- old
          | U_global (gl, Some v) -> Hashtbl.replace st.globals gl v
          | U_global (gl, None) -> Hashtbl.remove st.globals gl
          | U_alloc oid ->
              Hashtbl.remove st.heap oid;
              st.next_obj <- oid)
    done
end
