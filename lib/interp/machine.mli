(** The IR interpreter — the measurement substrate standing in for the
    paper's hardware testbed.

    Executing an instruction charges its node-cost-model cycles; entering
    a basic block consults a block-granular LRU instruction-cache model:
    a miss charges a penalty proportional to the block's code size.
    Because duplication-enabled optimizations remove dynamically executed
    instructions, "peak performance" (total charged cycles on a workload)
    genuinely improves — and unbounded duplication (dupalot) can regress
    it by blowing the i-cache, reproducing the paper's raytrace
    observation. *)

type value = VInt of int | VNull | VObj of int

type icache_config = {
  enabled : bool;
  capacity : int;  (** total cached code size, abstract bytes *)
  miss_penalty_base : float;
  miss_penalty_per_byte : float;
}

(** 768 bytes, miss penalty 16 + 1.0/byte. *)
val default_icache : icache_config

(** The cache model disabled (pure cost-model cycles). *)
val no_icache : icache_config

type stats = {
  mutable cycles : float;
  mutable instrs_executed : int;
  mutable icache_hits : int;
  mutable icache_misses : int;
  mutable allocations : int;
  mutable calls : int;
}

exception Out_of_fuel
exception Runtime_error of string

(** Run a program's main function on integer arguments.  Returns the
    result (if any) and the accumulated statistics.
    @param fuel instruction budget (default 10M); {!Out_of_fuel} beyond.
    @param profile when given, records every branch outcome. *)
val run :
  ?icache:icache_config ->
  ?fuel:int ->
  ?profile:Profile.t ->
  Ir.Program.t ->
  args:int array ->
  value option * stats

(** Run a single graph (wrapped as a program) — convenient in tests. *)
val run_graph :
  ?icache:icache_config ->
  ?fuel:int ->
  ?classes:Ir.Program.class_decl list ->
  ?globals:string list ->
  Ir.Graph.t ->
  args:int array ->
  value option * stats

(** Like {!run}, but also returns the final global-variable bindings
    (sorted by name) — the full observable state, used by differential
    tests. *)
val run_full :
  ?icache:icache_config ->
  ?fuel:int ->
  ?profile:Profile.t ->
  Ir.Program.t ->
  args:int array ->
  value option * stats * (string * value) list

val value_to_string : value -> string
val result_to_string : value option -> string

(** Execution interface for the tiered VM ([lib/vm]).

    [Exec] exposes a persistent interpreter state whose heap, globals
    and statistics survive across top-level invocations, a call handler
    through which every [Call] instruction is dispatched (so the engine
    can select a code version per invocation), and an undo journal that
    rolls mutable state (heap fields, globals, allocations) back to a
    mark — the deoptimization mechanism: an optimized frame that faults
    is undone and transparently re-executed in tier 0. *)
module Exec : sig
  type st
  type mark

  (** A fresh persistent state for [program]. *)
  val make : ?icache:icache_config -> ?fuel:int -> Ir.Program.t -> st

  val stats : st -> stats

  (** Final global bindings, sorted by name. *)
  val globals : st -> (string * value) list

  (** Charge extra cycles (e.g. a deoptimization penalty). *)
  val charge : st -> float -> unit

  (** Route every [Call] through [handler].  The handler returns the
      call's result; it typically re-enters {!run_body} with whichever
      body/version it selected. *)
  val set_call_handler : st -> (string -> value array -> value option) -> unit

  (** Evaluate one function body on this state.
      @param version i-cache key for this body (0 = tier-0 body)
      @param profile record branch outcomes of this body only
      @param on_edge observes every taken CFG edge [(src, dst)] *)
  val run_body :
    ?version:int ->
    ?profile:Profile.t ->
    ?on_edge:(Ir.Types.block_id -> Ir.Types.block_id -> unit) ->
    st ->
    Ir.Graph.t ->
    value array ->
    value option

  (** Enable/disable undo journaling.  Disabling clears the journal. *)
  val set_journaling : st -> bool -> unit

  (** Current journal position. *)
  val mark : st -> mark

  (** Undo all journaled mutations back to [mark] (LIFO). *)
  val undo_to : st -> mark -> unit
end
