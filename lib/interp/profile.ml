(** Branch profiling — the interpreter-side half of a tiered VM.

    The paper's branch probabilities come from HotSpot's interpreter
    profiles (§5.3, citing Wade et al.); our source-level [@0.9]
    annotations are the convenient stand-in.  This module provides the
    realistic alternative: run the program under the interpreter with a
    profile attached, record per-branch taken counts, then {!apply} the
    observed frequencies back onto the IR's [Branch] probabilities before
    compiling — exactly the interpret-then-JIT flow of a tiered VM. *)

type key = string * Ir.Types.block_id

type t = {
  branches : (key, int ref * int ref) Hashtbl.t;
      (** (times the true edge was taken, total executions) *)
}

let create () = { branches = Hashtbl.create 64 }

let counters t fn bid =
  match Hashtbl.find_opt t.branches (fn, bid) with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.branches (fn, bid) c;
      c

(** Record one execution of the branch terminating [bid]. *)
let record t ~fn ~bid ~taken_true =
  let taken, total = counters t fn bid in
  if taken_true then incr taken;
  incr total

(** Observed probability of the true edge, if the branch executed at
    least [min_samples] times. *)
let observed ?(min_samples = 8) t ~fn ~bid =
  match Hashtbl.find_opt t.branches (fn, bid) with
  | Some (taken, total) when !total >= min_samples ->
      Some (float_of_int !taken /. float_of_int !total)
  | Some _ | None -> None

(** Total branch executions recorded. *)
let samples t =
  Hashtbl.fold (fun _ (_, total) acc -> acc + !total) t.branches 0

(** Rewrite every profiled [Branch] probability in the program from the
    recorded counts.  Branches never reached keep their static estimate
    (a real VM would treat them as never-taken and speculate; we stay
    conservative).  Probabilities are clamped away from 0/1 so cold paths
    keep a nonzero frequency, as HotSpot does. *)
let apply ?(min_samples = 8) ?(clamp = 0.0001) t program =
  let clamp_prob p = Float.max clamp (Float.min (1.0 -. clamp) p) in
  Ir.Program.iter_functions program (fun g ->
      let fn = Ir.Graph.name g in
      Ir.Graph.iter_blocks g (fun b ->
          match b.Ir.Graph.term with
          | Ir.Types.Branch br -> (
              match observed ~min_samples t ~fn ~bid:b.Ir.Graph.blk_id with
              | Some p ->
                  Ir.Graph.set_term g b.Ir.Graph.blk_id
                    (Ir.Types.Branch { br with prob = clamp_prob p })
              | None -> ())
          | Ir.Types.Jump _ | Ir.Types.Return _ | Ir.Types.Unreachable -> ()))
