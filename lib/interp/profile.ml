(** Branch profiling — the interpreter-side half of a tiered VM.

    The paper's branch probabilities come from HotSpot's interpreter
    profiles (§5.3, citing Wade et al.); our source-level [@0.9]
    annotations are the convenient stand-in.  This module provides the
    realistic alternative: run the program under the interpreter with a
    profile attached, record per-branch taken counts, then {!apply} the
    observed frequencies back onto the IR's [Branch] probabilities before
    compiling — exactly the interpret-then-JIT flow of a tiered VM. *)

type key = string * Ir.Types.block_id

type t = {
  branches : (key, int ref * int ref) Hashtbl.t;
      (** (times the true edge was taken, total executions) *)
}

let create () = { branches = Hashtbl.create 64 }

let counters t fn bid =
  match Hashtbl.find_opt t.branches (fn, bid) with
  | Some c -> c
  | None ->
      let c = (ref 0, ref 0) in
      Hashtbl.replace t.branches (fn, bid) c;
      c

(** Record one execution of the branch terminating [bid]. *)
let record t ~fn ~bid ~taken_true =
  let taken, total = counters t fn bid in
  if taken_true then incr taken;
  incr total

(** Observed probability of the true edge, if the branch executed at
    least [min_samples] times. *)
let observed ?(min_samples = 8) t ~fn ~bid =
  match Hashtbl.find_opt t.branches (fn, bid) with
  | Some (taken, total) when !total >= min_samples ->
      Some (float_of_int !taken /. float_of_int !total)
  | Some _ | None -> None

(** Total branch executions recorded. *)
let samples t =
  Hashtbl.fold (fun _ (_, total) acc -> acc + !total) t.branches 0

(** Total branch executions recorded for one function. *)
let samples_of t ~fn =
  Hashtbl.fold
    (fun (f, _) (_, total) acc -> if f = fn then acc + !total else acc)
    t.branches 0

(** A deep copy: later recording into [t] leaves the snapshot frozen. *)
let snapshot t =
  let branches = Hashtbl.create (Hashtbl.length t.branches) in
  Hashtbl.iter
    (fun k (taken, total) -> Hashtbl.replace branches k (ref !taken, ref !total))
    t.branches;
  { branches }

(** Fold over all recorded branches in deterministic (sorted-key)
    order. *)
let fold t ~init ~f =
  let keys =
    Hashtbl.fold (fun k _ acc -> k :: acc) t.branches [] |> List.sort compare
  in
  List.fold_left
    (fun acc ((fn, bid) as k) ->
      let taken, total = Hashtbl.find t.branches k in
      f acc ~fn ~bid ~taken:!taken ~total:!total)
    init keys

(** Line-oriented rendering ["fn bid taken total"] per branch, sorted —
    the bundle format's profile section. *)
let render t =
  let buf = Buffer.create 256 in
  fold t ~init:() ~f:(fun () ~fn ~bid ~taken ~total ->
      Buffer.add_string buf (Printf.sprintf "%s %d %d %d\n" fn bid taken total));
  Buffer.contents buf

(** Parse {!render}'s output.  Malformed lines raise [Failure]. *)
let parse s =
  let t = create () in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
         let line = String.trim line in
         if line <> "" then
           match String.split_on_char ' ' line with
           | [ fn; bid; taken; total ] ->
               Hashtbl.replace t.branches
                 (fn, int_of_string bid)
                 (ref (int_of_string taken), ref (int_of_string total))
           | _ -> failwith ("Profile.parse: malformed line: " ^ line));
  t

(** Maximum absolute probability shift of [fn]'s branches in [t]
    relative to [baseline], considering only branches with at least
    [min_samples] current samples.  A branch hot now but absent from the
    baseline counts as a full 1.0 shift (new behaviour the compiled code
    never saw). *)
let drift ?(min_samples = 16) ~fn ~baseline t =
  Hashtbl.fold
    (fun (f, bid) (taken, total) acc ->
      if f <> fn || !total < min_samples then acc
      else
        let p = float_of_int !taken /. float_of_int !total in
        let shift =
          match Hashtbl.find_opt baseline.branches (f, bid) with
          | Some (t0, n0) when !n0 > 0 ->
              Float.abs (p -. (float_of_int !t0 /. float_of_int !n0))
          | Some _ | None -> 1.0
        in
        Float.max acc shift)
    t.branches 0.0

(** Rewrite every profiled [Branch] probability in one graph from the
    recorded counts.  Branches never reached keep their static estimate
    (a real VM would treat them as never-taken and speculate; we stay
    conservative).  Probabilities are clamped away from 0/1 so cold paths
    keep a nonzero frequency, as HotSpot does. *)
let apply_graph ?(min_samples = 8) ?(clamp = 0.0001) t g =
  let clamp_prob p = Float.max clamp (Float.min (1.0 -. clamp) p) in
  let fn = Ir.Graph.name g in
  Ir.Graph.iter_blocks g (fun bid ->
      match Ir.Graph.term g bid with
      | Ir.Types.Branch br -> (
          match observed ~min_samples t ~fn ~bid with
          | Some p ->
              Ir.Graph.set_term g bid
                (Ir.Types.Branch { br with prob = clamp_prob p })
          | None -> ())
      | Ir.Types.Jump _ | Ir.Types.Return _ | Ir.Types.Unreachable -> ())

(** {!apply_graph} over every function of the program. *)
let apply ?min_samples ?clamp t program =
  Ir.Program.iter_functions program (apply_graph ?min_samples ?clamp t)
