(** Branch profiling — the interpreter-side half of a tiered VM.

    The paper's branch probabilities come from HotSpot's interpreter
    profiles (§5.3); run a program under {!Machine.run} with a profile
    attached, then {!apply} the observed frequencies back onto the IR's
    [Branch] probabilities before compiling — the interpret-then-JIT flow
    of a tiered VM. *)

type t

val create : unit -> t

(** Record one execution of the branch terminating [bid] in function
    [fn]. *)
val record : t -> fn:string -> bid:Ir.Types.block_id -> taken_true:bool -> unit

(** Observed probability of the true edge, if the branch executed at
    least [min_samples] times (default 8). *)
val observed :
  ?min_samples:int -> t -> fn:string -> bid:Ir.Types.block_id -> float option

(** Total branch executions recorded. *)
val samples : t -> int

(** Total branch executions recorded for one function. *)
val samples_of : t -> fn:string -> int

(** A deep copy: later recording leaves the snapshot frozen — the
    baseline for {!drift} and the bundle's profile section. *)
val snapshot : t -> t

(** Fold over all recorded branches in deterministic (sorted-key)
    order. *)
val fold :
  t ->
  init:'a ->
  f:('a -> fn:string -> bid:Ir.Types.block_id -> taken:int -> total:int -> 'a) ->
  'a

(** Line-oriented rendering ["fn bid taken total"] per branch, sorted. *)
val render : t -> string

(** Parse {!render}'s output.  @raise Failure on malformed lines. *)
val parse : string -> t

(** Maximum absolute probability shift of [fn]'s branches relative to
    [baseline], over branches with at least [min_samples] (default 16)
    current samples.  A hot branch absent from the baseline counts as a
    full 1.0 shift. *)
val drift : ?min_samples:int -> fn:string -> baseline:t -> t -> float

(** Rewrite every profiled [Branch] probability in the program from the
    recorded counts.  Unreached branches keep their static estimate;
    probabilities are clamped away from 0/1 (default 1e-4) so cold paths
    keep a nonzero frequency, as HotSpot does. *)
val apply : ?min_samples:int -> ?clamp:float -> t -> Ir.Program.t -> unit

(** {!apply} for a single graph. *)
val apply_graph : ?min_samples:int -> ?clamp:float -> t -> Ir.Graph.t -> unit
