(** Branch profiling — the interpreter-side half of a tiered VM.

    The paper's branch probabilities come from HotSpot's interpreter
    profiles (§5.3); run a program under {!Machine.run} with a profile
    attached, then {!apply} the observed frequencies back onto the IR's
    [Branch] probabilities before compiling — the interpret-then-JIT flow
    of a tiered VM. *)

type t

val create : unit -> t

(** Record one execution of the branch terminating [bid] in function
    [fn]. *)
val record : t -> fn:string -> bid:Ir.Types.block_id -> taken_true:bool -> unit

(** Observed probability of the true edge, if the branch executed at
    least [min_samples] times (default 8). *)
val observed :
  ?min_samples:int -> t -> fn:string -> bid:Ir.Types.block_id -> float option

(** Total branch executions recorded. *)
val samples : t -> int

(** Rewrite every profiled [Branch] probability in the program from the
    recorded counts.  Unreached branches keep their static estimate;
    probabilities are clamped away from 0/1 (default 1e-4) so cold paths
    keep a nonzero frequency, as HotSpot does. *)
val apply : ?min_samples:int -> ?clamp:float -> t -> Ir.Program.t -> unit
