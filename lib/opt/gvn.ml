(** Dominator-scoped global value numbering: a pure instruction whose
    (kind, operands) key already has a definition in a dominating block is
    replaced by that definition.  Keys use canonicalized operand order for
    commutative operators (the canonicalizer normalizes constants to the
    right; GVN additionally sorts operands of commutative kinds). *)

open Ir.Types
module G = Ir.Graph

(* A hashable key for a pure instruction. *)
let key_of_kind kind =
  match kind with
  | Binop (((Add | Mul | And | Or | Xor) as op), a, b) ->
      Binop (op, min a b, max a b)
  | Cmp (op, a, b) when a > b -> Cmp (swap_cmp op, b, a)
  | k -> k

(* GVN candidates: pure and non-phi (phis are position-dependent).
   Constants and parameters participate so that duplicated literals unify,
   which in turn lets compound expressions over them match. *)
let is_candidate = function
  | Binop _ | Cmp _ | Neg _ | Not _ | Const _ | Null | Param _ -> true
  | Phi _ | New _ | Load _ | Store _ | Load_global _ | Store_global _
  | Call _ ->
      false

let run ctx g =
  Phase.charge_graph ctx g;
  let dom = Ir.Analyses.dom g in
  let table : (instr_kind, value) Hashtbl.t = Hashtbl.create 64 in
  let changed = ref false in
  let rec visit bid =
    let added = ref [] in
    G.iter_block_instrs g bid (fun id ->
        let kind = G.kind g id in
        if is_candidate kind then begin
          let key = key_of_kind kind in
          match Hashtbl.find_opt table key with
          | Some earlier ->
              G.replace_uses g id ~by:earlier;
              G.remove_instr g id;
              changed := true
          | None ->
              Hashtbl.add table key id;
              added := key :: !added
        end);
    List.iter visit (Ir.Dom.children dom bid);
    List.iter (Hashtbl.remove table) !added
  in
  visit (G.entry g);
  !changed

(* Value numbering only replaces uses and deletes redundant
   instructions; the CFG is untouched. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "gvn" run
