(** Declarative pipeline specifications.

    A pipeline is described by a comma-separated string of items:

    {v
    spec  := item (',' item)*
    item  := 'fix' opts? '(' spec ')'     -- iterate body to a fixpoint
           | name opts?                   -- a single named pass
    opts  := '{' [key '=' value (',' key '=' value)*] '}'
    name, key, value := [A-Za-z0-9_.+-]+
    v}

    e.g. [inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}]
    — the default DBDS pipeline: inline, the classic optimizations to a
    fixpoint, then three iterations of the duplication tiers.

    This module is pure syntax: names are resolved against a registry by
    the pass manager ({!Manager}), so the grammar needs no knowledge of
    which passes exist.  {!to_string} prints the canonical form
    ([of_string] ∘ [to_string] is the identity on parsed specs, the CI
    round-trip check). *)

type item =
  | Pass of { name : string; opts : (string * string) list }
  | Fix of { opts : (string * string) list; body : item list }

type t = item list

(* ------------------------------------------------------------------ *)
(* Printing (canonical form: no whitespace, opts omitted when empty)   *)
(* ------------------------------------------------------------------ *)

let string_of_opts = function
  | [] -> ""
  | opts ->
      "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) opts)
      ^ "}"

let rec string_of_item = function
  | Pass { name; opts } -> name ^ string_of_opts opts
  | Fix { opts; body } ->
      "fix" ^ string_of_opts opts ^ "(" ^ to_string body ^ ")"

and to_string items = String.concat "," (List.map string_of_item items)

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; whitespace insignificant)               *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = '+'

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" cur.pos msg))

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && (let c = cur.src.[cur.pos] in
        c = ' ' || c = '\t' || c = '\n' || c = '\r')
  do
    cur.pos <- cur.pos + 1
  done

let peek cur =
  skip_ws cur;
  if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | Some c' -> error cur (Printf.sprintf "expected '%c', found '%c'" c c')
  | None -> error cur (Printf.sprintf "expected '%c', found end of spec" c)

let word cur =
  skip_ws cur;
  let start = cur.pos in
  while cur.pos < String.length cur.src && is_word_char cur.src.[cur.pos] do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then error cur "expected a name";
  String.sub cur.src start (cur.pos - start)

let opts cur =
  match peek cur with
  | Some '{' ->
      expect cur '{';
      let rec go acc =
        match peek cur with
        | Some '}' ->
            expect cur '}';
            List.rev acc
        | _ ->
            let k = word cur in
            expect cur '=';
            let v = word cur in
            let acc = (k, v) :: acc in
            if peek cur = Some ',' then begin
              expect cur ',';
              go acc
            end
            else begin
              expect cur '}';
              List.rev acc
            end
      in
      go []
  | _ -> []

let rec item cur =
  let name = word cur in
  let o = opts cur in
  if name = "fix" then begin
    expect cur '(';
    let body = items cur in
    expect cur ')';
    Fix { opts = o; body }
  end
  else Pass { name; opts = o }

and items cur =
  let first = item cur in
  let rec go acc =
    if peek cur = Some ',' then begin
      expect cur ',';
      go (item cur :: acc)
    end
    else List.rev acc
  in
  go [ first ]

let of_string s =
  let cur = { src = s; pos = 0 } in
  match items cur with
  | parsed ->
      skip_ws cur;
      if cur.pos <> String.length s then
        Error
          (Printf.sprintf "trailing garbage at offset %d in %S" cur.pos s)
      else Ok parsed
  | exception Parse_error msg -> Error (msg ^ " in " ^ Printf.sprintf "%S" s)

let equal (a : t) (b : t) = a = b

(* ------------------------------------------------------------------ *)
(* Option lookups (shared by resolvers)                                *)
(* ------------------------------------------------------------------ *)

(** Integer option [key], [default] when absent; [Error] when
    unparseable. *)
let int_opt opts key ~default =
  match List.assoc_opt key opts with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "option %s=%s is not an integer" key v))

(** Float option [key], [default] when absent. *)
let float_opt opts key ~default =
  match List.assoc_opt key opts with
  | None -> Ok default
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "option %s=%s is not a number" key v))

(** [Error] when [opts] contains a key outside [allowed]. *)
let check_opts ~pass allowed opts =
  match List.find_opt (fun (k, _) -> not (List.mem k allowed)) opts with
  | Some (k, _) ->
      Error
        (Printf.sprintf "pass %s does not understand option %s (allowed: %s)"
           pass k
           (if allowed = [] then "none" else String.concat ", " allowed))
  | None -> Ok ()
