(** Lifetime-optimal speculative partial redundancy elimination in the
    spirit of lospre (arXiv 2011.10789), specialized to this IR: every
    arithmetic instruction is speculatable ([Div]/[Rem] by zero yield 0
    rather than trapping — see {!Ir.Types.eval_binop}), so the
    placement question loses its safety side and becomes a pure
    redundancy question, answerable in one dominator-indexed sweep.

    For each merge block and each pure computation in its body, the
    pass resolves the computation's operands through the merge's phis
    along every incoming edge.  When the resolved expression is already
    {e available} along at least one edge (an instruction with the same
    GVN key defined in a block dominating that predecessor), the
    computation is partially redundant: a copy is placed at the end of
    every predecessor, a phi over the copies replaces the original, and
    the later [gvn] run in the same fixpoint group deduplicates the
    copies on the already-computing paths — eliminating the redundancy
    while merely moving (speculating) the computation on the others.

    The CFG is untouched, so all analyses are preserved; the fire
    introduces only pure scalar computations and phis, so the memory
    passes ([readelim]/[pea]) provably cannot gain opportunities. *)

open Ir.Types
module G = Ir.Graph

(* Speculatable, hoistable computations: pure scalar arithmetic.
   Constants/params are never worth hoisting; phis are positional. *)
let candidate = function
  | Binop _ | Cmp _ | Neg _ | Not _ -> true
  | Const _ | Null | Param _ | Phi _ | New _ | Load _ | Store _
  | Load_global _ | Store_global _ | Call _ ->
      false

let run ctx g =
  Phase.charge_graph ctx g;
  let dom = Ir.Analyses.dom g in
  (* Availability index: GVN key -> blocks defining that expression.
     An expression is available at the end of predecessor [p] iff some
     defining block dominates [p]. *)
  let index : (instr_kind, block_id list) Hashtbl.t = Hashtbl.create 64 in
  let note_def k b =
    let key = Gvn.key_of_kind k in
    let prev = Option.value ~default:[] (Hashtbl.find_opt index key) in
    if not (List.mem b prev) then Hashtbl.replace index key (b :: prev)
  in
  G.iter_instrs g (fun id ->
      let k = G.kind g id in
      if candidate k then note_def k (G.block_of g id));
  let available_at key p =
    match Hashtbl.find_opt index (Gvn.key_of_kind key) with
    | None -> false
    | Some defs -> List.exists (fun d -> Ir.Dom.dominates dom d p) defs
  in
  let changed = ref false in
  let hoist_from m =
    let preds = Array.of_list (G.preds g m) in
    if Array.length preds >= 2 then
      List.iter
        (fun e ->
          Phase.charge ctx 1;
          if G.instr_exists g e && G.has_uses g e then
            let kind = G.kind g e in
            if candidate kind then begin
              (* Resolve operands through this merge's phis, per edge. *)
              let resolve i v =
                match G.kind g v with
                | Phi inputs when G.block_of g v = m -> inputs.(i)
                | _ -> v
              in
              let resolved =
                Array.mapi (fun i _ -> map_inputs (resolve i) kind) preds
              in
              (* Every resolved operand must be computable at the end of
                 its predecessor (its definition dominates the pred; phi
                 inputs satisfy this by SSA construction). *)
              let placeable =
                Array.for_all2
                  (fun p k ->
                    let ok = ref true in
                    iter_inputs
                      (fun o ->
                        if not (Ir.Dom.dominates dom (G.block_of g o) p)
                        then ok := false)
                      k;
                    !ok)
                  preds resolved
              in
              let redundant_somewhere =
                placeable
                && Array.exists2 (fun p k -> available_at k p) preds resolved
              in
              if redundant_somewhere then begin
                let copies =
                  Array.map2
                    (fun p k ->
                      note_def k p;
                      G.append g p k)
                    preds resolved
                in
                let ph = G.append g m (Phi copies) in
                G.replace_uses g e ~by:ph;
                G.remove_instr g e;
                changed := true
              end
            end)
        (G.body g m)
  in
  (* RPO: forward predecessors are processed before their merges, so
     copies placed this sweep never cascade within the same run. *)
  List.iter hoist_from (G.rpo g);
  !changed

let phase =
  Phase.make ~preserves:Ir.Analyses.all_kinds
    ~enables:
      [ "canonicalize"; "simplify-cfg"; "sccp"; "gvn"; "condelim"; "dce";
        "licm" ]
    "lospre" run
