(** Loop-invariant code motion.

    Pure instructions whose operands are all defined outside a loop (or
    already hoisted) move to the loop's unique outside predecessor.  Our
    arithmetic is total (division by zero is defined), so hoisting is
    plain speculation — safe, at worst wasted cycles on the non-loop
    path.  Memory reads stay put (they would need the read-elimination
    machinery to prove stability across iterations).

    This phase is not part of the calibrated default pipeline
    ({!Pipeline.all_phases}): the evaluation's baseline/DBDS/dupalot
    comparison uses a fixed phase plan (as the paper's Graal configuration
    does), and adding a phase would shift every measured ratio.  It is
    exercised by `Pipeline.optimize ~licm:true`, its own test suite, and
    the bench harness' ablation. *)

open Ir.Types
module G = Ir.Graph

let hoistable = function
  | Binop _ | Cmp _ | Neg _ | Not _ | Const _ | Null -> true
  | Param _ | Phi _ | New _ | Load _ | Store _ | Load_global _
  | Store_global _ | Call _ ->
      false

(* The unique predecessor of [header] outside the loop body, if any. *)
let outside_pred g (loop : Ir.Loops.loop) =
  let inside b = List.mem b loop.Ir.Loops.body in
  match List.filter (fun p -> not (inside p)) (G.preds g loop.Ir.Loops.header) with
  | [ p ] -> Some p
  | _ -> None

let run ctx g =
  Phase.charge_graph ctx g;
  let loops = Ir.Analyses.loops g in
  let changed = ref false in
  List.iter
    (fun loop ->
      match outside_pred g loop with
      | None -> ()
      | Some pre ->
          let in_loop = Hashtbl.create 16 in
          List.iter (fun b -> Hashtbl.replace in_loop b ()) loop.Ir.Loops.body;
          (* A value is invariant if defined outside the loop, or defined
             in the loop by a hoistable instruction whose inputs are all
             invariant (resolved iteratively). *)
          let progress = ref true in
          while !progress do
            progress := false;
            List.iter
              (fun bid ->
                List.iter
                  (fun id ->
                    if
                      G.instr_exists g id
                      && G.block_of g id = bid
                      && hoistable (G.kind g id)
                      && List.for_all
                           (fun v -> not (Hashtbl.mem in_loop (G.block_of g v)))
                           (inputs_of_kind (G.kind g id))
                    then begin
                      (* Move to the end of the preheader's body. *)
                      G.detach g id;
                      G.attach g id pre;
                      progress := true;
                      changed := true
                    end)
                  (G.body g bid))
              loop.Ir.Loops.body
          done)
    (Ir.Loops.loops loops);
  !changed

(* Hoisting moves instructions between existing blocks; edges and
   terminators are untouched. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "licm" run
