(** Read elimination (paper §2): replace a load that is fully redundant —
    an available load or store of the same location dominates it with no
    intervening kill — by the available value.

    Availability is propagated along the dominator tree, but only into
    children whose sole CFG predecessor is the current block (through a
    merge, facts from one side would be unsound).  Partially redundant
    reads therefore survive this phase — duplication promotes them to
    fully redundant, which is exactly the paper's Listing 5/6 scenario. *)

(** Process one block's instructions over an incoming memory state,
    applying replacements; returns the outgoing state and whether
    anything changed.  (Exposed for tests.) *)
val process_block :
  Phase.ctx ->
  Ir.Graph.t ->
  Ir.Types.block_id ->
  Memstate.t ->
  Memstate.t * bool

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
