(** Conditional elimination through code duplication (after arXiv
    1106.3478), packaged as a standalone duplication {e tier}: a greedy
    comparator for DBDS's simulation-driven choice.

    Where DBDS simulates every optimization's potential and runs a
    benefit/cost trade-off, this tier asks one narrow question per
    (merge, predecessor) pair: {e if the merge were duplicated into
    this predecessor, would conditional elimination fire?}  The check
    reuses {!Condelim}'s implication engine with two refinements that
    plain conditional elimination cannot apply at a merge:

    - the merge's phis are resolved to their input along the candidate
      edge (the duplicate has a single predecessor, so the phi becomes
      that input);
    - the predecessor's own branch fact toward the merge is assumed
      (the duplicate is reached only along that edge).

    Every pair that passes is duplicated, unconditionally — no benefit
    scaling, no size budget.  The cost of that greed relative to the
    trade-off tier is exactly what {!Harness.Tiercompare} measures.

    The duplication transform lives in the core library (above this
    one), so the driver injects it: [duplicate g ~merge ~pred] performs
    one duplication and returns the duplicate's block id, or [None]
    when the pair went stale (the core transform's [Not_applicable]). *)

open Ir.Types
module G = Ir.Graph

(* Fact environments per block: a read-only replay of {!Condelim.run}'s
   dominator walk (facts flow from a branch only into children whose
   sole predecessor is the branching block). *)
let envs_of g dom =
  let envs = Hashtbl.create 32 in
  let kind_of v = G.kind g v in
  let rec visit env bid =
    Hashtbl.replace envs bid env;
    let env_for_child child =
      match G.term g bid with
      | Branch { cond; if_true; if_false; _ } ->
          if child = if_true && G.preds g if_true = [ bid ] then
            Condelim.assume ~kind_of env cond true
          else if child = if_false && G.preds g if_false = [ bid ] then
            Condelim.assume ~kind_of env cond false
          else env
      | Jump _ | Return _ | Unreachable -> env
    in
    List.iter
      (fun child -> visit (env_for_child child) child)
      (Ir.Dom.children dom bid)
  in
  visit Condelim.empty_env (G.entry g);
  envs

(* Would duplicating [m] into its predecessor [p] let conditional
   elimination fire inside the duplicate? *)
let decides g envs m p =
  let occurrences = List.length (List.filter (( = ) p) (G.preds g m)) in
  (* Two parallel edges from the same predecessor leave the phi inputs
     ambiguous; the transform would not fold the branch anyway. *)
  occurrences = 1
  &&
  let pi = G.pred_index g m p in
  let env0 =
    Option.value ~default:Condelim.empty_env (Hashtbl.find_opt envs p)
  in
  (* The duplicate has [p] as its sole predecessor, so [p]'s branch
     fact toward [m] holds inside it. *)
  let env =
    let kind_of v = G.kind g v in
    match G.term g p with
    | Branch { cond; if_true; if_false; _ }
      when if_true = m && if_false <> m ->
        Condelim.assume ~kind_of env0 cond true
    | Branch { cond; if_true; if_false; _ }
      when if_false = m && if_true <> m ->
        Condelim.assume ~kind_of env0 cond false
    | _ -> env0
  in
  let resolve v =
    match G.kind g v with
    | Phi inputs when G.block_of g v = m -> inputs.(pi)
    | _ -> v
  in
  let kind_of v = G.kind g (resolve v) in
  let cmp_decided id op a b =
    let ra = resolve a and rb = resolve b in
    match (G.kind g ra, G.kind g rb) with
    | Const _, Const _ ->
        (* Folds outright in the duplicate — but only count it as a win
           when the constness comes from phi resolution; a compare that
           is const-const without resolving would already have folded in
           the preceding classic fixpoint. *)
        ra <> a || rb <> b
    | _ -> Condelim.implied ~kind_of env id (Cmp (op, ra, rb)) <> None
  in
  let term_decided =
    match G.term g m with
    | Branch { cond; _ } -> (
        let rc = resolve cond in
        match G.kind g rc with
        (* A condition that is constant only after phi resolution is a
           genuine duplication win; one constant without resolution
           would already have folded in the preceding fixpoint. *)
        | Const _ -> rc <> cond
        | Cmp (op, a, b) -> cmp_decided rc op a b
        | _ -> false)
    | Jump _ | Return _ | Unreachable -> false
  in
  term_decided
  || List.exists
       (fun id ->
         match G.kind g id with
         | Cmp (op, a, b) -> cmp_decided id op a b
         | _ -> false)
       (G.body g m)

let run ~duplicate ~iters ctx g =
  Phase.charge_graph ctx g;
  let performed = ref 0 in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < iters do
    incr rounds;
    progress := false;
    let dom = Ir.Analyses.dom g in
    let envs = envs_of g dom in
    (* Candidates from a snapshot of this round's CFG, in deterministic
       (RPO, predecessor-order) order. *)
    let candidates =
      List.concat_map
        (fun m ->
          if G.pred_count g m >= 2 && not (List.mem m (G.succs g m)) then
            let seen = ref [] in
            List.filter_map
              (fun p ->
                if (not (List.mem p !seen)) && decides g envs m p then begin
                  seen := p :: !seen;
                  Some (m, p)
                end
                else None)
              (G.preds g m)
          else [])
        (G.rpo g)
    in
    List.iter
      (fun (m, p) ->
        (* Earlier applications this round may have moved the edge; the
           injected transform validates and reports staleness. *)
        if G.block_exists g m && List.mem p (G.preds g m) then
          match duplicate g ~merge:m ~pred:p with
          | Some (_ : block_id) ->
              incr performed;
              progress := true;
              Phase.charge ctx (G.live_instr_count g)
          | None -> ())
      candidates
  done;
  !performed > 0

(** The tier as a contract-checked phase.  Duplication rewrites the
    CFG, so nothing is preserved and any pass may gain opportunities
    (no [enables] claim). *)
let phase_with ~duplicate ~iters =
  Phase.make "condelim_dup" (run ~duplicate ~iters)
