(** Standard optimization pipelines.

    [baseline] is the paper's duplication-disabled configuration: all the
    classic optimizations run, only DBDS is off.  The DBDS driver composes
    the same phases after its duplication transformations. *)

let all_phases =
  [
    Canonicalize.phase;
    Simplify_cfg.phase;
    Sccp.phase;
    Gvn.phase;
    Condelim.phase;
    Readelim.phase;
    Pea.phase;
    Dce.phase;
  ]

(** Run the classic optimizations to a fixpoint on one graph.  [licm]
    additionally enables loop-invariant code motion (off in the
    calibrated evaluation plan — see {!Licm}). *)
let optimize ?(max_rounds = 8) ?(licm = false) ctx g =
  let phases = if licm then all_phases @ [ Licm.phase ] else all_phases in
  Phase.fixpoint ~max_rounds phases ctx g

(** Optimize every function of a program (baseline configuration). *)
let optimize_program ?max_rounds ?licm program =
  let ctx = Phase.create ~program () in
  Ir.Program.iter_functions program (fun g ->
      ignore (optimize ?max_rounds ?licm ctx g));
  ctx
