(** Standard optimization pipelines.

    [baseline_spec] is the paper's duplication-disabled configuration:
    all the classic optimizations to a fixpoint, only DBDS is off.  The
    DBDS driver composes the same fixpoint group (through the same
    {!Manager}) before and between its duplication tiers. *)

let all_phases =
  [
    Canonicalize.phase;
    Simplify_cfg.phase;
    Sccp.phase;
    Gvn.phase;
    Condelim.phase;
    Readelim.phase;
    Pea.phase;
    Dce.phase;
  ]

(* The classic per-graph passes by spec name.  Short names are
   canonical (what default specs print); the long forms are accepted as
   aliases. *)
let classic =
  [
    ("canon", Canonicalize.phase);
    ("canonicalize", Canonicalize.phase);
    ("simplify", Simplify_cfg.phase);
    ("simplify-cfg", Simplify_cfg.phase);
    ("sccp", Sccp.phase);
    ("gvn", Gvn.phase);
    ("condelim", Condelim.phase);
    ("readelim", Readelim.phase);
    ("pea", Pea.phase);
    ("dce", Dce.phase);
    ("licm", Licm.phase);
    (* Opt-in upgrades (not in the calibrated default group): the
       canonicalization-level copy/constant propagation and speculative
       PRE passes of the workload-lab tiers. *)
    ("copyprop", Copyprop.phase);
    ("lospre", Lospre.phase);
  ]

(** Resolve the classic pass names ([canon], [simplify], [sccp], [gvn],
    [condelim], [readelim], [pea], [dce], [licm], plus the opt-in
    [copyprop] and [lospre], and long-form aliases).  Only [pea] takes
    an option — [max_rounds], bounding its internal scalar-replacement
    sweeps (0 = fixpoint).  The driver's resolver layers the
    duplication tiers on top of this one. *)
let resolve_classic name opts =
  match name with
  | "pea" ->
      let ( let* ) = Result.bind in
      let* () = Spec.check_opts ~pass:name [ "max_rounds" ] opts in
      let* max_rounds = Spec.int_opt opts "max_rounds" ~default:0 in
      Ok (if max_rounds <= 0 then Pea.phase else Pea.phase_with ~max_rounds)
  | _ -> (
      match List.assoc_opt name classic with
      | Some p -> Result.map (fun () -> p) (Spec.check_opts ~pass:name [] opts)
      | None -> Error (Printf.sprintf "unknown pass %S" name))

(** The fixpoint-group members of the calibrated evaluation plan, in
    phase order. *)
let classic_names =
  [ "canon"; "simplify"; "sccp"; "gvn"; "condelim"; "readelim"; "pea"; "dce" ]

(** The classic optimizations as a [fix(...)] spec item.  [licm]
    additionally enables loop-invariant code motion (off in the
    calibrated evaluation plan — see {!Licm}); [pea_max_rounds > 0]
    caps PEA's internal sweeps ({!Pea.phase_with}). *)
let fix_group ?(max_rounds = 8) ?(licm = false) ?(pea_max_rounds = 0) () =
  let names = classic_names @ if licm then [ "licm" ] else [] in
  let pass n =
    let opts =
      if n = "pea" && pea_max_rounds > 0 then
        [ ("max_rounds", string_of_int pea_max_rounds) ]
      else []
    in
    Spec.Pass { name = n; opts }
  in
  Spec.Fix
    {
      opts =
        (if max_rounds = 8 then []
         else [ ("rounds", string_of_int max_rounds) ]);
      body = List.map pass names;
    }

(** The baseline pipeline spec: the classic fixpoint group alone. *)
let baseline_spec ?max_rounds ?licm ?pea_max_rounds () : Spec.t =
  [ fix_group ?max_rounds ?licm ?pea_max_rounds () ]

(** Run the classic optimizations to a fixpoint on one graph, through
    the pass manager. *)
let optimize ?max_rounds ?licm ?pea_max_rounds ctx g =
  Manager.run resolve_classic (baseline_spec ?max_rounds ?licm ?pea_max_rounds ()) ctx g

(* Containment must never swallow genuinely unrecoverable conditions. *)
let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

(* One function under containment: speculate the whole pipeline, roll
   back to the pre-attempt IR on any exception and record the failure
   instead of propagating (the driver's discipline, minus the fault
   registry and crash bundles it layers on top). *)
let optimize_one ?max_rounds ?licm ctx g =
  Ir.Graph.checkpoint g;
  match optimize ?max_rounds ?licm ctx g with
  | _ -> Ir.Graph.commit g
  | exception e when not (fatal e) ->
      if Ir.Graph.in_speculation g then Ir.Graph.rollback g;
      Phase.note_contained ctx ~site:"exception"

(** Optimize every function of a program (baseline configuration),
    fanned out over [jobs] domains (default: all cores) with per-function
    crash containment — the same {!Ir.Parallel} + rollback discipline as
    the DBDS driver, so [-j] and containment apply in baseline mode too.
    Per-function contexts merge in function-name order: the returned
    context is identical for any [jobs]. *)
let optimize_program ?max_rounds ?licm ?jobs program =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Ir.Parallel.default_jobs ()
  in
  let functions =
    List.filter_map
      (fun name -> Ir.Program.find_function program name)
      (Ir.Program.function_names program)
  in
  let ctx = Phase.create ~program () in
  if jobs = 1 then List.iter (optimize_one ?max_rounds ?licm ctx) functions
  else
    List.iter
      (fun w -> Phase.merge_into ~into:ctx w)
      (Ir.Parallel.map_weighted ~jobs
         ~weight:Ir.Graph.live_instr_count
         (fun g ->
           let w = Phase.create ~program () in
           optimize_one ?max_rounds ?licm w g;
           w)
         functions);
  ctx
