(** Standard optimization pipelines.

    The phase plan — canonicalize, CFG simplification, SCCP, GVN,
    conditional elimination, read elimination, escape analysis, DCE,
    iterated to a fixpoint — is the paper's {e baseline} configuration:
    all the classic optimizations run, only DBDS is off.  The DBDS driver
    composes the same fixpoint group (through the same {!Manager})
    before and between its duplication tiers. *)

val all_phases : Phase.t list

(** Resolve the classic pass names ([canon], [simplify], [sccp], [gvn],
    [condelim], [readelim], [pea], [dce], [licm] and long-form
    aliases).  Only [pea] takes an option — [max_rounds], bounding its
    internal scalar-replacement sweeps per invocation (0 = fixpoint,
    the default).  The driver's resolver layers the duplication tiers
    on top of this one. *)
val resolve_classic : Manager.resolver

(** The fixpoint-group members of the calibrated evaluation plan, in
    phase order (excludes [licm]). *)
val classic_names : string list

(** The classic optimizations as a [fix(...)] spec item.  [licm]
    additionally enables loop-invariant code motion (off in the
    calibrated evaluation plan — see {!Licm}); [pea_max_rounds > 0]
    caps PEA's internal sweeps ({!Pea.phase_with}). *)
val fix_group :
  ?max_rounds:int -> ?licm:bool -> ?pea_max_rounds:int -> unit -> Spec.item

(** The baseline pipeline spec: the classic fixpoint group alone. *)
val baseline_spec :
  ?max_rounds:int -> ?licm:bool -> ?pea_max_rounds:int -> unit -> Spec.t

(** Run the classic optimizations to a fixpoint on one graph, through
    the pass manager. *)
val optimize :
  ?max_rounds:int ->
  ?licm:bool ->
  ?pea_max_rounds:int ->
  Phase.ctx ->
  Ir.Graph.t ->
  bool

(** Optimize every function of a program (baseline configuration),
    fanned out over [jobs] domains (default: all cores) with per-function
    crash containment — the same {!Ir.Parallel} + rollback discipline as
    the DBDS driver.  Returns the accumulated context, identical for any
    [jobs]. *)
val optimize_program :
  ?max_rounds:int -> ?licm:bool -> ?jobs:int -> Ir.Program.t -> Phase.ctx
