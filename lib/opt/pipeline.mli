(** Standard optimization pipelines.

    The phase plan — canonicalize, CFG simplification, SCCP, GVN,
    conditional elimination, read elimination, escape analysis, DCE,
    iterated to a fixpoint — is the paper's {e baseline} configuration:
    all the classic optimizations run, only DBDS is off.  The DBDS driver
    composes the same phases after its duplication transformations. *)

val all_phases : Phase.t list

(** Run the classic optimizations to a fixpoint on one graph.  [licm]
    additionally enables loop-invariant code motion (off in the
    calibrated evaluation plan — see {!Licm}). *)
val optimize : ?max_rounds:int -> ?licm:bool -> Phase.ctx -> Ir.Graph.t -> bool

(** Optimize every function of a program (baseline configuration);
    returns the context with the accumulated work units. *)
val optimize_program :
  ?max_rounds:int -> ?licm:bool -> Ir.Program.t -> Phase.ctx
