(** Conditional elimination (paper §2, after Stadler et al.): walk the
    dominator tree maintaining facts established by dominating branches —
    the truth of condition values, integer ranges of values compared
    against constants, and non-nullness — and fold comparisons (and hence
    branches) that the facts imply.

    A fact from branch [p: branch c ? t : f] holds in the dominator
    subtree of [t] provided [t]'s only predecessor is [p] (otherwise other
    paths enter [t] without establishing the fact).

    The fact environment is exposed so the DBDS simulation tier can reuse
    the same implication engine as its conditional-elimination
    applicability check. *)

open Ir.Types
module G = Ir.Graph

type range = { lo : int; hi : int }

let full_range = { lo = min_int; hi = max_int }

(* The fact environment is scoped: entering a dominator subtree pushes
   facts, leaving pops them.  Implemented as persistent maps held in a
   mutable binding per walk level. *)
module VMap = Map.Make (Int)

type env = {
  truths : bool VMap.t;  (** condition value -> known truth *)
  ranges : range VMap.t;  (** value -> integer range *)
  non_null : unit VMap.t;  (** values known non-null *)
}

let empty_env =
  { truths = VMap.empty; ranges = VMap.empty; non_null = VMap.empty }

let range_of env v = Option.value ~default:full_range (VMap.find_opt v env.ranges)

let meet_range env v r =
  let cur = range_of env v in
  let merged = { lo = max cur.lo r.lo; hi = min cur.hi r.hi } in
  { env with ranges = VMap.add v merged env.ranges }

(** Add the facts implied by [cond = truth] to the environment.
    [kind_of] resolves operand kinds (synonym-aware in simulation). *)
let assume ~kind_of env cond truth =
  let env = { env with truths = VMap.add cond truth env.truths } in
  match kind_of cond with
  | Cmp (op, a, b) -> (
      let op = if truth then op else negate_cmp op in
      let const_of v = match kind_of v with Const n -> Some n | _ -> None in
      let is_null v = match kind_of v with Null -> true | _ -> false in
      match (const_of a, const_of b) with
      | None, Some c -> (
          match op with
          | Lt -> meet_range env a { lo = min_int; hi = c - 1 }
          | Le -> meet_range env a { lo = min_int; hi = c }
          | Gt -> meet_range env a { lo = c + 1; hi = max_int }
          | Ge -> meet_range env a { lo = c; hi = max_int }
          | Eq -> meet_range env a { lo = c; hi = c }
          | Ne -> env)
      | Some c, None -> (
          match swap_cmp op with
          | Lt -> meet_range env b { lo = min_int; hi = c - 1 }
          | Le -> meet_range env b { lo = min_int; hi = c }
          | Gt -> meet_range env b { lo = c + 1; hi = max_int }
          | Ge -> meet_range env b { lo = c; hi = max_int }
          | Eq -> meet_range env b { lo = c; hi = c }
          | Ne -> env)
      | _ ->
          (* x != null / x == null facts *)
          if is_null b && op = Ne then
            { env with non_null = VMap.add a () env.non_null }
          else if is_null a && op = Ne then
            { env with non_null = VMap.add b () env.non_null }
          else env)
  | _ -> env

(* Does the range prove the comparison?  Returns Some truth if decided. *)
let decide_range op r c =
  match op with
  | Lt -> if r.hi < c then Some true else if r.lo >= c then Some false else None
  | Le -> if r.hi <= c then Some true else if r.lo > c then Some false else None
  | Gt -> if r.lo > c then Some true else if r.hi <= c then Some false else None
  | Ge -> if r.lo >= c then Some true else if r.hi < c then Some false else None
  | Eq ->
      if r.lo = c && r.hi = c then Some true
      else if r.hi < c || r.lo > c then Some false
      else None
  | Ne ->
      if r.hi < c || r.lo > c then Some true
      else if r.lo = c && r.hi = c then Some false
      else None

(** Can the environment decide this condition value?  [v] is the value id
    of the condition (for direct truth lookups); [kind] its (resolved)
    kind. *)
let implied ~kind_of env v kind =
  match VMap.find_opt v env.truths with
  | Some t -> Some t
  | None -> (
      match kind with
      | Cmp (op, a, b) -> (
          let const_of x = match kind_of x with Const n -> Some n | _ -> None in
          let is_null x = match kind_of x with Null -> true | _ -> false in
          match (const_of a, const_of b) with
          | None, Some c -> (
              match decide_range op (range_of env a) c with
              | Some t -> Some t
              | None -> None)
          | Some c, None -> decide_range (swap_cmp op) (range_of env b) c
          | _ ->
              if is_null b && VMap.mem a env.non_null then
                match op with
                | Eq -> Some false
                | Ne -> Some true
                | _ -> None
              else if is_null a && VMap.mem b env.non_null then
                match op with
                | Eq -> Some false
                | Ne -> Some true
                | _ -> None
              else None)
      | _ -> None)

let run ctx g =
  Phase.charge_graph ctx g;
  let dom = Ir.Analyses.dom g in
  let changed = ref false in
  let kind_of v = G.kind g v in
  let rec visit env bid =
    (* Fold comparisons implied by dominating facts. *)
    List.iter
      (fun id ->
        match G.kind g id with
        | Cmp _ as kind -> (
            match implied ~kind_of env id kind with
            | Some t ->
                G.set_kind g id (Const (if t then 1 else 0));
                changed := true
            | None -> ())
        | _ -> ())
      (G.block_instrs g bid);
    (* Fold a branch whose condition is decided by the facts (typically
       the condition was GVN-deduplicated to a dominating compare). *)
    (match G.term g bid with
    | Branch { cond; if_true; if_false; _ } -> (
        match implied ~kind_of env cond (kind_of cond) with
        | Some t ->
            G.set_term g bid (Jump (if t then if_true else if_false));
            changed := true
        | None -> ())
    | Jump _ | Return _ | Unreachable -> ());
    (* Derive per-successor facts from this block's branch. *)
    let env_for_child child =
      match G.term g bid with
      | Branch { cond; if_true; if_false; _ } ->
          if child = if_true && G.preds g if_true = [ bid ] then
            assume ~kind_of env cond true
          else if child = if_false && G.preds g if_false = [ bid ] then
            assume ~kind_of env cond false
          else env
      | Jump _ | Return _ | Unreachable -> env
    in
    List.iter
      (fun child -> visit (env_for_child child) child)
      (Ir.Dom.children dom bid)
  in
  visit empty_env (G.entry g);
  !changed

let phase = Phase.make "condelim" run
