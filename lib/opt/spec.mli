(** Declarative pipeline specifications — the string form accepted by
    [dbdsc --passes]:

    {v
    spec  := item (',' item)*
    item  := 'fix' opts? '(' spec ')'     -- iterate body to a fixpoint
           | name opts?                   -- a single named pass
    opts  := '{' [key '=' value (',' key '=' value)*] '}'
    v}

    e.g. [inline,fix(canon,simplify,sccp,gvn,condelim,readelim,pea,dce),dbds{iters=3}].

    Pure syntax: names are resolved by the pass manager ({!Manager}).
    {!to_string} prints the canonical form; [of_string] ∘ [to_string]
    is the identity on parsed specs. *)

type item =
  | Pass of { name : string; opts : (string * string) list }
  | Fix of { opts : (string * string) list; body : item list }

type t = item list

(** Canonical rendering: no whitespace, opts omitted when empty. *)
val to_string : t -> string

val of_string : string -> (t, string) result
val equal : t -> t -> bool

(** {2 Option lookups (shared by pass resolvers)} *)

(** Integer option [key], [default] when absent; [Error] when
    unparseable. *)
val int_opt :
  (string * string) list -> string -> default:int -> (int, string) result

(** Float option [key], [default] when absent. *)
val float_opt :
  (string * string) list -> string -> default:float -> (float, string) result

(** [Error] when [opts] contains a key outside [allowed]. *)
val check_opts :
  pass:string -> string list -> (string * string) list -> (unit, string) result
