(** Control-flow simplification: fold branches on constants, remove
    unreachable blocks, collapse single-predecessor phis, and merge
    straight-line block pairs.  Runs after duplication to clean up
    degenerate shapes (a merge block left with one predecessor, dead
    branches revealed by folding). *)

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
