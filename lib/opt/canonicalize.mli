(** The canonicalizer: constant folding, algebraic simplification and
    strength reduction, expressed as a pure decision function
    ({!simplify}) plus a phase that applies it.

    The decision function is the shared engine behind both the real
    optimization phase and the DBDS applicability checks (paper §4.1
    splits optimizations into a {e precondition} and an {e action step}
    following Chang et al.; [simplify] computes both — returning the
    action's result rather than mutating the IR).

    Operand kinds are observed through a caller-supplied [kind_of]
    callback: the real phase passes the graph's kinds, the simulation
    tier passes a synonym-resolving view, which is what makes the same
    rules fire "as if" the duplication had been performed. *)

open Ir.Types

(** Result of the action step. *)
type action =
  | Fold of int  (** instruction becomes an integer constant *)
  | Fold_null  (** instruction becomes the null constant *)
  | Alias of value  (** instruction is redundant with an existing value *)
  | Rewrite of instr_kind
      (** instruction is replaced by a cheaper one; operands are existing
          values (fresh constants are materialized via [mk_const]) *)
  | Unchanged

val is_power_of_two : int -> bool
val log2 : int -> int

(** Does this kind statically produce a non-null reference? *)
val never_null : instr_kind -> bool

(** [simplify ~kind_of ~mk_const kind] decides how [kind] simplifies given
    the (possibly synonym-resolved) kinds of its operands.  [mk_const] is
    called to materialize fresh integer-constant operands for strength
    reductions.  [self] is the value id of the instruction itself when
    known (it lets loop phis of the shape [phi(x, self)] collapse). *)
val simplify :
  ?self:value ->
  kind_of:(value -> instr_kind) ->
  mk_const:(int -> value) ->
  instr_kind ->
  action

(** Estimated cycle cost of an action's result, given the original
    kind — used by the simulation tier to compute cycles saved. *)
val action_cycles : instr_kind -> action -> float

val action_size : instr_kind -> action -> int

(** A hash-consing constant materializer for one graph: reused constants
    are hoisted to the head of the entry block so they dominate every use
    site. *)
val materialize_const : Ir.Graph.t -> int -> value

(** The phase entry point. *)
val run : Phase.ctx -> Ir.Graph.t -> bool

val phase : Phase.t
