(** The pass manager: executes a declarative pipeline {!Spec} over one
    graph, resolving pass names through a caller-supplied registry.

    Every pass execution goes through {!Phase.run_pass}, so the
    instrumentation (per-pass stats, preservation contracts, paranoid
    hooks) is attached once, uniformly — fixpoint groups, DBDS tiers and
    standalone passes all look the same to it.

    The classic per-graph passes resolve in {!Pipeline.resolve_classic};
    the driver layers the duplication tiers ([dbds], [dupalot],
    [backtracking]) and program-level [inline] on top. *)

type resolver = string -> (string * string) list -> (Phase.t, string) result

(** A spec name (or option) the resolver rejected; raised at run time
    only for specs that skipped {!validate}. *)
exception Unresolved of string

let () =
  Printexc.register_printer (function
    | Unresolved msg -> Some (Printf.sprintf "Opt.Manager.Unresolved(%s)" msg)
    | _ -> None)

let get = function Ok v -> v | Error msg -> raise (Unresolved msg)

let fix_rounds opts =
  Result.bind (Spec.check_opts ~pass:"fix" [ "rounds" ] opts) (fun () ->
      Spec.int_opt opts "rounds" ~default:8)

(** Check every name and option of [spec] against [resolve] without
    running anything — surfacing bad specs at configuration time (e.g.
    CLI parsing) instead of mid-compilation. *)
let validate resolve spec =
  let rec item = function
    | Spec.Pass { name; opts } ->
        Result.map (fun (_ : Phase.t) -> ()) (resolve name opts)
    | Spec.Fix { opts; body } ->
        Result.bind
          (Result.map (fun (_ : int) -> ()) (fix_rounds opts))
          (fun () -> items body)
  and items = function
    | [] -> Ok ()
    | it :: rest -> Result.bind (item it) (fun () -> items rest)
  in
  items spec

(** Run [spec]'s items in order over [g]; a [fix(...)] group iterates
    its body until a full round changes nothing (or its [rounds] option,
    default 8, is exhausted).  Returns true if any pass fired. *)
let rec run_item resolve ctx g = function
  | Spec.Pass { name; opts } -> Phase.run_pass ctx (get (resolve name opts)) g
  | Spec.Fix { opts; body } ->
      let max_rounds = get (fix_rounds opts) in
      let any = ref false in
      let round = ref 0 in
      let changed = ref true in
      while !changed && !round < max_rounds do
        incr round;
        changed := false;
        List.iter
          (fun it -> if run_item resolve ctx g it then changed := true)
          body;
        if !changed then any := true
      done;
      !any

and run resolve spec ctx g =
  List.fold_left
    (fun fired it -> if run_item resolve ctx g it then true else fired)
    false spec
