(** Pass framework: every optimization is a function [ctx -> Graph.t ->
    bool] (did it change anything?), packaged as a {!t} record carrying
    its name and its preservation contract over {!Ir.Analyses} kinds.
    The context carries program metadata, a deterministic work-unit
    counter, and the per-pass instrumentation the pass manager maintains
    uniformly ({!run_pass}). *)

(** Per-pass instrumentation, accumulated by {!run_pass} and merged
    deterministically across parallel workers.  All fields except
    [time_s] are deterministic for any [jobs] value. *)
type pass_stat = {
  mutable runs : int;  (** invocations *)
  mutable fired : int;  (** invocations that changed the graph *)
  mutable pwork : int;  (** work units charged while the pass ran *)
  mutable time_s : float;  (** wall-clock seconds inside the pass *)
  mutable size_delta : int;
      (** summed live-instruction delta (negative = the pass shrank IR) *)
}

type ctx = {
  program : Ir.Program.t option;
      (** metadata for inter-procedural facts; [None] for lone graphs *)
  mutable work : int;  (** deterministic compile-effort counter *)
  mutable analysis_hits : int;
      (** {!Ir.Analyses} cache hits observed under this context *)
  mutable analysis_misses : int;  (** ... and misses (= real computes) *)
  mutable contained : (string * int) list;
      (** contained per-function failures, per crash site (sorted) *)
  mutable pass_stats : (string * pass_stat) list;
      (** per-pass instrumentation, sorted by pass name *)
  mutable preserve_analyses : bool;
      (** honor pass preservation contracts (on by default); off =
          the historical generation-bump-invalidates-everything mode *)
  mutable memo_clean_passes : bool;
      (** skip a pass that already ran clean at the graph's current
          generation (on by default); turned off for diagnostic runs
          (fault injection / paranoia) where every pass must execute *)
  mutable check_contracts : bool;
      (** paranoid: recompute-and-compare every preserved analysis after
          each fired pass, raising {!Contract_violated} on a lie *)
  mutable post_phase : (string -> Ir.Graph.t -> unit) option;
      (** paranoid hook: called after every pass that changed the
          graph; may raise to abort (and contain) the pipeline *)
}

val create : ?program:Ir.Program.t -> unit -> ctx

(** Charge [n] work units (roughly: IR nodes examined). *)
val charge : ctx -> int -> unit

(** Charge one pass over the graph's live instructions. *)
val charge_graph : ctx -> Ir.Graph.t -> unit

(** Record analysis-cache hit/miss deltas against this context. *)
val note_analyses : ctx -> hits:int -> misses:int -> unit

(** Record one contained per-function failure at [site]. *)
val note_contained : ctx -> site:string -> unit

(** Total contained failures across all sites. *)
val contained_total : ctx -> int

(** The per-pass instrumentation table, sorted by pass name. *)
val pass_table : ctx -> (string * pass_stat) list

(** Fold a worker context's counters into [into] (the parallel driver's
    deterministic merge: per-function contexts are merged in function
    name order, independent of which worker ran which function). *)
val merge_into : into:ctx -> ctx -> unit

type t = {
  pass_name : string;
  preserves : Ir.Analyses.kind list;
      (** analyses whose cached values stay valid across this pass's own
          mutations; an empty list = the pass may change the CFG and
          preserves nothing *)
  enables : string list option;
      (** pass-interaction contract: when this pass fires, only the
          named passes can gain new opportunities from its changes —
          every other pass that ran clean on the pre-fire state keeps
          its convergence memo.  [None] (default) = may enable
          anything. *)
  run : ctx -> Ir.Graph.t -> bool;
}

(** [make name run] with an optional preservation contract (default:
    preserves nothing) and an optional pass-interaction contract
    (default: firing may enable any other pass). *)
val make :
  ?preserves:Ir.Analyses.kind list ->
  ?enables:string list ->
  string ->
  (ctx -> Ir.Graph.t -> bool) ->
  t

(** A pass lied about its preservation contract: after [pass] ran, the
    cached [analysis] it declared preserved differs from a fresh
    recompute.  Raised only under {!ctx.check_contracts} (paranoid
    mode); contained and attributed to the guilty pass by the driver. *)
exception
  Contract_violated of { pass : string; analysis : string; reason : string }

(** Run one pass with the manager's uniform instrumentation: per-pass
    stats, application of the preservation contract to the analysis
    cache, the paranoid contract check, and the post-phase hook.  Every
    pass execution in the system goes through here. *)
val run_pass : ctx -> t -> Ir.Graph.t -> bool

(** Run passes in order repeatedly until a full round changes nothing (or
    [max_rounds] is hit).  Returns true if any pass ever fired. *)
val fixpoint : ?max_rounds:int -> t list -> ctx -> Ir.Graph.t -> bool
