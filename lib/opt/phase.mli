(** Phase framework: every optimization is a function [ctx -> Graph.t ->
    bool] (did it change anything?).  The context carries program
    metadata (class layouts for scalar replacement) and a deterministic
    work-unit counter — the compile-time proxy used by the evaluation
    harness alongside wall-clock measurements. *)

type ctx = {
  program : Ir.Program.t option;
      (** metadata for inter-procedural facts; [None] for lone graphs *)
  mutable work : int;  (** deterministic compile-effort counter *)
  mutable analysis_hits : int;
      (** {!Ir.Analyses} cache hits observed under this context *)
  mutable analysis_misses : int;  (** ... and misses (= real computes) *)
  mutable contained : (string * int) list;
      (** contained per-function failures, per crash site (sorted) *)
  mutable post_phase : (string -> Ir.Graph.t -> unit) option;
      (** paranoid hook: called after every phase that changed the
          graph; may raise to abort (and contain) the pipeline *)
}

val create : ?program:Ir.Program.t -> unit -> ctx

(** Charge [n] work units (roughly: IR nodes examined). *)
val charge : ctx -> int -> unit

(** Charge one pass over the graph's live instructions. *)
val charge_graph : ctx -> Ir.Graph.t -> unit

(** Record analysis-cache hit/miss deltas against this context. *)
val note_analyses : ctx -> hits:int -> misses:int -> unit

(** Record one contained per-function failure at [site]. *)
val note_contained : ctx -> site:string -> unit

(** Total contained failures across all sites. *)
val contained_total : ctx -> int

(** Fold a worker context's counters into [into] (the parallel driver's
    deterministic merge: integer sums, independent of worker order). *)
val merge_into : into:ctx -> ctx -> unit

type t = {
  phase_name : string;
  run : ctx -> Ir.Graph.t -> bool;
}

val make : string -> (ctx -> Ir.Graph.t -> bool) -> t

(** Run phases in order repeatedly until a full pass changes nothing (or
    [max_rounds] is hit).  Returns true if any phase ever fired. *)
val fixpoint : ?max_rounds:int -> t list -> ctx -> Ir.Graph.t -> bool
