(** Abstract memory state for read elimination: which field/global reads
    are available, and what value a read would yield.  Shared between the
    {!Readelim} phase and the DBDS read-elimination applicability check
    (the simulation tier threads a memory state through the dominator
    traversal and into duplication simulation traversals).

    Aliasing model: two bases may alias when they agree on the field
    name, so a store to [b.f] kills every recorded [_.f] except its own;
    distinct field names never alias; calls kill everything. *)

open Ir.Types

type t

val empty : t

(** Value known to be in [base.field], if any. *)
val load : t -> value -> string -> value option

val load_global : t -> string -> value option

(** Record a field write (killing same-field entries of other bases). *)
val store : t -> value -> string -> value -> t

(** A load does not kill anything; it records availability. *)
val record_load : t -> value -> string -> value -> t

val store_global : t -> string -> value -> t
val record_global_load : t -> string -> value -> t

(** Calls may read and write arbitrary memory. *)
val kill_all : t -> t

(** Record the effect of one instruction, returning the new state and
    (for a load whose location is available) the value making it
    redundant.  [id] is the value the instruction defines. *)
val transfer : t -> value -> instr_kind -> t * value option

(** With class metadata: after [New (cls, args)] producing [id], each
    field holds the matching constructor argument. *)
val seed_new : t -> fields:string list -> value -> value array -> t
