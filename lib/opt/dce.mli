(** Dead code elimination, as mark-and-sweep so that dead cyclic
    structures (an unused induction variable: [i = phi(0, i+1)] where the
    add only feeds the phi) are collected too.  Also removes unreachable
    blocks.

    Roots: side-effecting instructions and terminator inputs.  Allocations
    count as effects here — removing a provably useless allocation is
    escape analysis' job ({!Pea}), not DCE's. *)

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
