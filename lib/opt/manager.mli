(** The pass manager: executes a declarative pipeline {!Spec} over one
    graph, resolving pass names through a caller-supplied registry.
    Every pass execution goes through {!Phase.run_pass}, so per-pass
    stats, preservation contracts and paranoid hooks are attached once,
    uniformly. *)

(** Maps a spec name and its options to a pass. *)
type resolver = string -> (string * string) list -> (Phase.t, string) result

(** A spec name (or option) the resolver rejected; raised at run time
    only for specs that skipped {!validate}. *)
exception Unresolved of string

(** Check every name and option of a spec against a resolver without
    running anything. *)
val validate : resolver -> Spec.t -> (unit, string) result

(** Run a spec's items in order over a graph; [fix(...)] groups iterate
    their body to a fixpoint (option [rounds], default 8).  Returns true
    if any pass fired.
    @raise Unresolved on names/options [validate] would reject. *)
val run : resolver -> Spec.t -> Phase.ctx -> Ir.Graph.t -> bool
