(** Escape analysis and scalar replacement (paper §2, after Stadler et
    al.'s partial escape analysis).

    An allocation escapes if its reference leaves the function's scalar
    world: stored into another object or a global, passed to a call,
    returned, merged through a phi, or compared against anything but null
    (null compares fold away first, because an allocation is never null).
    A non-escaping allocation is {e scalar replaced}: its fields become
    SSA values, loads are rewritten, and the allocation and its stores
    are deleted.

    The {e partial} aspect of the paper's PEA arises through duplication:
    an allocation that escapes only through a phi becomes non-escaping on
    a predecessor path once the merge block is duplicated — which is the
    opportunity the DBDS applicability check looks for. *)

(** Why an allocation escapes (exposed for the simulation tier: an
    allocation escaping only through phis is a duplication candidate). *)
type escape = No_escape | Through_phi_only | Escapes

val escape_state : Ir.Graph.t -> Ir.Types.value -> escape

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t

(** {!phase} with the internal scalar-replacement sweep count capped at
    [max_rounds] per invocation (the [pea{max_rounds=N}] spec form;
    {!phase} itself runs to the fixpoint).  Nested allocation chains
    deeper than the cap leave their remainder to the enclosing fixpoint
    group. *)
val phase_with : max_rounds:int -> Phase.t
