(** Conditional elimination (paper §2, after Stadler et al.): walk the
    dominator tree maintaining facts established by dominating branches —
    the truth of condition values, integer ranges of values compared
    against constants, and non-nullness — and fold comparisons (and hence
    branches) that the facts imply.

    A fact from branch [p: branch c ? t : f] holds in the dominator
    subtree of [t] provided [t]'s only predecessor is [p] (otherwise other
    paths enter [t] without establishing the fact).

    The fact environment is exposed so the DBDS simulation tier can reuse
    the same implication engine as its conditional-elimination
    applicability check. *)

open Ir.Types

type range = { lo : int; hi : int }

val full_range : range

(** Immutable fact environment (persistent maps: pushing facts for a
    dominator subtree is just a rebinding). *)
type env

val empty_env : env

(** Add the facts implied by [cond = truth].  [kind_of] resolves operand
    kinds (synonym-aware in simulation). *)
val assume : kind_of:(value -> instr_kind) -> env -> value -> bool -> env

(** Can the environment decide this condition?  [v] is the value id of
    the condition (for direct truth lookups); [kind] its (resolved)
    kind. *)
val implied :
  kind_of:(value -> instr_kind) -> env -> value -> instr_kind -> bool option

(** The phase entry point. *)
val run : Phase.ctx -> Ir.Graph.t -> bool

val phase : Phase.t
