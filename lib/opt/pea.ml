(** Escape analysis and scalar replacement (paper §2, after Stadler et
    al.'s partial escape analysis).

    An allocation escapes if its reference leaves the function's scalar
    world: stored into another object or a global, passed to a call,
    returned, merged through a phi, or compared against anything but null
    (null compares are folded away by the canonicalizer first, because an
    allocation is never null).  A non-escaping allocation is {e scalar
    replaced}: its fields become SSA values (constructed with the same
    on-demand lookup machinery as post-duplication SSA repair), loads are
    rewritten, and the allocation and its stores are deleted.

    The {e partial} aspect of the paper's PEA arises through duplication:
    an allocation that escapes only through a phi becomes non-escaping on
    a predecessor path once the merge block is duplicated — which is the
    opportunity the DBDS applicability check looks for. *)

open Ir.Types
module G = Ir.Graph

(** Why an allocation escapes (exposed for the simulation tier: an
    allocation escaping only through phis is a duplication candidate). *)
type escape = No_escape | Through_phi_only | Escapes

let escape_state g alloc =
  let state = ref No_escape in
  let note_phi () = if !state = No_escape then state := Through_phi_only in
  let escape () = state := Escapes in
  List.iter
    (fun user ->
      match user with
      | G.U_term _ -> escape () (* returned or branched on *)
      | G.U_instr id -> (
          match G.kind g id with
          | Load (base, _) when base = alloc -> ()
          | Store (base, _, v) when base = alloc && v <> alloc -> ()
          | Phi _ -> note_phi ()
          | _ -> escape ()))
    (G.uses g alloc);
  !state

(* Scalar replacement of one non-escaping allocation. *)
let replace_scalar g alloc cls_fields args =
  let state_of : (string, Ir.Ssa_repair.var_state) Hashtbl.t =
    Hashtbl.create 4
  in
  let state_for f =
    match Hashtbl.find_opt state_of f with
    | Some st -> st
    | None ->
        let st =
          {
            Ir.Ssa_repair.defs = Hashtbl.create 4;
            live_in = Hashtbl.create 4;
            inserted = [];
          }
        in
        Hashtbl.replace state_of f st;
        st
  in
  (* Walk every block in order, tracking the field values as they evolve;
     loads with a known in-block value are rewritten immediately, loads
     whose value flows in from predecessors are resolved afterwards. *)
  let pending_loads = ref [] in
  let dead_stores = ref [] in
  G.iter_blocks g (fun bid ->
      let cur : (string, value) Hashtbl.t = Hashtbl.create 4 in
      List.iter
        (fun id ->
          match G.kind g id with
          | New _ when id = alloc ->
              List.iteri
                (fun i f ->
                  if i < Array.length args then Hashtbl.replace cur f args.(i))
                cls_fields
          | Load (base, f) when base = alloc -> (
              match Hashtbl.find_opt cur f with
              | Some v ->
                  G.replace_uses g id ~by:v;
                  Hashtbl.replace cur f v
              | None -> pending_loads := (id, f, bid) :: !pending_loads)
          | Store (base, f, v) when base = alloc ->
              Hashtbl.replace cur f v;
              dead_stores := id :: !dead_stores
          | _ -> ())
        (G.block_instrs g bid);
      (* Record end-of-block field values as definitions. *)
      Hashtbl.iter
        (fun f v -> Hashtbl.replace (state_for f).Ir.Ssa_repair.defs bid v)
        cur);
  (* Resolve loads whose value lives in from predecessors. *)
  List.iter
    (fun (load, f, bid) ->
      let v = Ir.Ssa_repair.value_live_into g (state_for f) bid in
      G.replace_uses g load ~by:v)
    !pending_loads;
  (* Delete the now-dead loads, stores and the allocation itself. *)
  List.iter (fun (load, _, _) -> G.remove_instr g load) !pending_loads;
  G.iter_blocks g (fun bid ->
      List.iter
        (fun id ->
          if G.instr_exists g id then
            match G.kind g id with
            | Load (base, _) when base = alloc && G.uses g id = [] ->
                G.remove_instr g id
            | _ -> ())
        (G.body g bid));
  List.iter (fun s -> if G.uses g s = [] then G.remove_instr g s) !dead_stores;
  if G.uses g alloc = [] then begin
    G.remove_instr g alloc;
    true
  end
  else false

let run_rounds ~max_rounds ctx g =
  Phase.charge_graph ctx g;
  match ctx.Phase.program with
  | None -> false
  | Some program ->
      (* Earlier phases in the same round (branch folding in particular)
         may have disconnected blocks; scalar replacement walks every
         block, so drop dead ones first. *)
      let changed = ref (G.remove_unreachable_blocks g) in
      (* Scalarizing an outer object can un-escape the allocation stored
         in its fields (the store that pinned it disappears), so iterate
         until a whole sweep replaces nothing — one run digests a nested
         allocation chain instead of dragging the full pipeline through
         one fixpoint round per nesting level.  [max_rounds > 0] caps
         the sweeps: deeply nested chains (the fig5 pathology) then
         leave their remainder to the enclosing fixpoint group instead
         of paying the whole chain here. *)
      let continue_ = ref true in
      let rounds = ref 0 in
      while !continue_ && (max_rounds = 0 || !rounds < max_rounds) do
        incr rounds;
        continue_ := false;
        let allocs =
          G.fold_instrs g
            (fun acc id ->
              match G.kind g id with
              | New (cls, args) -> (id, cls, args) :: acc
              | _ -> acc)
            []
        in
        List.iter
          (fun (alloc, cls, args) ->
            if G.instr_exists g alloc && escape_state g alloc = No_escape then
              match Ir.Program.find_class program cls with
              | Some c when List.length c.Ir.Program.fields <= Array.length args
                ->
                  if replace_scalar g alloc c.Ir.Program.fields args then begin
                    changed := true;
                    continue_ := true
                  end
              | Some _ | None -> ())
          allocs
      done;
      !changed

let run ctx g = run_rounds ~max_rounds:0 ctx g

(* Scalar replacement rewrites allocations and field accesses.  The
   unreachable-block sweep only deletes blocks no analysis covers (they
   are outside the RPO), so dominators, loops and frequencies of the
   reachable CFG are unchanged. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "pea" run

(** The phase with a bounded sweep count — what [pea{max_rounds=N}]
    resolves to. *)
let phase_with ~max_rounds =
  Phase.make ~preserves:Ir.Analyses.all_kinds "pea" (run_rounds ~max_rounds)
