(** Dead code elimination, as mark-and-sweep so that dead cyclic structures
    (an unused induction variable: [i = phi(0, i+1)] where the add only
    feeds the phi) are collected too.

    Roots: side-effecting instructions and terminator inputs.  Allocations
    count as effects here — removing a provably useless allocation is
    escape analysis' job ({!Pea}), not DCE's.

    The mark set is an {!Ir.Bitset} over instruction ids and the worklist
    carries plain ints: marking allocates nothing. *)

open Ir.Types
module G = Ir.Graph

let run ctx g =
  Phase.charge_graph ctx g;
  let changed = ref false in
  let marked = Ir.Bitset.create (G.n_instrs g) in
  let worklist = Queue.create () in
  let mark v =
    if not (Ir.Bitset.mem marked v) then begin
      Ir.Bitset.add marked v;
      Queue.add v worklist
    end
  in
  G.iter_instrs g (fun id ->
      if has_side_effect (G.kind g id) then mark id);
  G.iter_blocks g (fun bid ->
      match G.term g bid with
      | Return (Some v) -> mark v
      | Branch { cond; _ } -> mark cond
      | Jump _ | Return None | Unreachable -> ());
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    iter_inputs mark (G.kind g v)
  done;
  let dead =
    G.fold_instrs g
      (fun acc id -> if Ir.Bitset.mem marked id then acc else id :: acc)
      []
  in
  (* Clear inputs first so mutually-referencing dead instructions can be
     removed, then delete. *)
  List.iter (fun id -> G.set_kind g id (Const 0)) dead;
  List.iter
    (fun id ->
      (* A dead phi sits in a phi list but now has kind Const 0; detach
         explicitly before removal. *)
      G.remove_instr g id)
    dead;
  if dead <> [] then changed := true;
  !changed

(* Deletes dead instructions only — unreachable blocks belong to the CFG
   simplifier (and to the passes that fold branches).  That makes DCE's
   pass-interaction contract tight: removing an unused, effect-free
   instruction cannot create opportunities for any value- or CFG-level
   pass; the only analysis in the pipeline that reads {e use counts} is
   escape analysis, so a DCE firing re-enables {!Pea} alone and every
   other convergence memo survives. *)
let phase =
  Phase.make ~preserves:Ir.Analyses.all_kinds ~enables:[ "pea" ] "dce" run
