(** Dead code elimination, as mark-and-sweep so that dead cyclic structures
    (an unused induction variable: [i = phi(0, i+1)] where the add only
    feeds the phi) are collected too.

    Roots: side-effecting instructions and terminator inputs.  Allocations
    count as effects here — removing a provably useless allocation is
    escape analysis' job ({!Pea}), not DCE's. *)

open Ir.Types
module G = Ir.Graph

let run ctx g =
  Phase.charge_graph ctx g;
  let changed = ref (G.remove_unreachable_blocks g) in
  let marked = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let mark v =
    if not (Hashtbl.mem marked v) then begin
      Hashtbl.add marked v ();
      Queue.add v worklist
    end
  in
  G.iter_instrs g (fun i ->
      if has_side_effect i.G.kind then mark i.G.ins_id);
  G.iter_blocks g (fun b ->
      match b.G.term with
      | Return (Some v) -> mark v
      | Branch { cond; _ } -> mark cond
      | Jump _ | Return None | Unreachable -> ());
  while not (Queue.is_empty worklist) do
    let v = Queue.pop worklist in
    List.iter mark (inputs_of_kind (G.kind g v))
  done;
  let dead =
    G.fold_instrs g
      (fun acc i ->
        if Hashtbl.mem marked i.G.ins_id then acc else i.G.ins_id :: acc)
      []
  in
  (* Clear inputs first so mutually-referencing dead instructions can be
     removed, then delete. *)
  List.iter (fun id -> G.set_kind g id (Const 0)) dead;
  List.iter
    (fun id ->
      (* A dead phi sits in a phi list but now has kind Const 0; detach
         explicitly before removal. *)
      G.remove_instr g id)
    dead;
  if dead <> [] then changed := true;
  !changed

(* Deletes dead instructions plus unreachable blocks; as for {!Pea},
   neither changes any analysis result over the reachable CFG. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "dce" run
