(** Optimistic copy propagation over SSA, subsuming constant
    propagation through phis (after Braun et al., arXiv 2207.03894).

    The canonicalizer folds a phi whose inputs it can already see
    through pessimistically; what it cannot do is collapse a {e cycle}
    of phis that all forward the same underlying value (the classic
    [x1 = phi(v, x2); x2 = phi(x1, x1)] shape left behind by loop
    constructs and duplication), nor unify a phi over {e distinct}
    constant instructions that hold the same integer.  Both need the
    optimistic treatment: start every phi at Top, transfer with a meet
    that skips Top inputs and self-references, and iterate to the
    (two-level, hence linear-round) fixpoint.

    Replacements are restricted to representatives that are provably
    integer-valued ([Const]/[Binop]/[Cmp]/[Neg]/[Not]) or decided
    constants.  Object-typed values ([New]/[Null]/params/calls/loads
    that might carry references) are never propagated, so the memory
    passes ([readelim], [pea]) provably cannot gain opportunities from
    a fire — the basis of the [enables] contract below. *)

open Ir.Types
module G = Ir.Graph

(* The lattice: Top (unvisited optimism) > Cst n | Rep v > bottom.
   Bottom for a phi p is represented as [Rep p] — "p is its own
   representative" — which makes bottom per-phi and the meet total. *)
type lat = Top | Cst of int | Rep of value

let lat_equal a b =
  match (a, b) with
  | Top, Top -> true
  | Cst x, Cst y -> x = y
  | Rep x, Rep y -> x = y
  | _ -> false

(* Only these representative kinds are propagated (see above). *)
let int_valued = function
  | Const _ | Binop _ | Cmp _ | Neg _ | Not _ -> true
  | Null | Param _ | Phi _ | New _ | Load _ | Store _ | Load_global _
  | Store_global _ | Call _ ->
      false

let run ctx g =
  Phase.charge_graph ctx g;
  let n = G.n_instrs g in
  let lat = Array.make n Top in
  (* Fixed lattice values for non-phi instructions. *)
  let base_lat id =
    match G.kind g id with Const c -> Cst c | _ -> Rep id
  in
  let reach = G.reachable g in
  let phis_rpo =
    List.concat_map
      (fun b -> List.filter (fun id -> G.is_phi g id) (G.phis g b))
      (G.rpo g)
  in
  List.iter (fun id -> lat.(id) <- Top) phis_rpo;
  let value_of v = if G.is_phi g v then lat.(v) else base_lat v in
  (* One transfer: the meet over resolved inputs, skipping Top inputs
     and self-references (the optimistic part). *)
  let transfer p =
    match G.kind g p with
    | Phi inputs ->
        let acc = ref Top in
        Array.iter
          (fun v ->
            if v >= 0 then
              match value_of v with
              | Top -> ()
              | Rep r when r = p -> ()
              | l -> (
                  match !acc with
                  | Top -> acc := l
                  | cur -> if not (lat_equal cur l) then acc := Rep p))
          inputs;
        !acc
    | _ -> base_lat p
  in
  (* Round-robin sweeps in RPO until stable: each phi only descends
     (Top -> value -> bottom), so this terminates in O(phis) updates. *)
  let changed_lat = ref true in
  while !changed_lat do
    changed_lat := false;
    List.iter
      (fun p ->
        Phase.charge ctx 1;
        let nv = transfer p in
        if not (lat_equal nv lat.(p)) then begin
          lat.(p) <- nv;
          changed_lat := true
        end)
      phis_rpo
  done;
  (* Apply: collapse phis whose representative is a decided constant or
     a provably integer-valued dominating value.  (A phi left at Top
     has no reachable non-self input — dead or degenerate; leave it for
     DCE/unreachable-code removal.) *)
  let changed = ref false in
  let mk_const = Canonicalize.materialize_const g in
  (* The replacement value is an {e existing} value (or a cached entry
     const), so rewriting a memory access base through it could create
     a base congruence {!Readelim} keys on — which would break the
     enables contract.  Well-typed programs never use an integer as a
     base, but the IR does not forbid it; skip those phis. *)
  let used_as_base p =
    let bad = ref false in
    G.iter_uses g p (fun u ->
        match u with
        | G.U_instr i -> (
            match G.kind g i with
            | Load (b, _) | Store (b, _, _) -> if b = p then bad := true
            | _ -> ())
        | G.U_term _ -> ());
    !bad
  in
  List.iter
    (fun p ->
      if
        G.instr_exists g p && G.is_phi g p
        && reach.(G.block_of g p)
        && G.has_uses g p
        && not (used_as_base p)
      then
        match lat.(p) with
        | Cst c ->
            (* Constant-keyed representative: distinct Const instrs
               holding the same integer unify here, which is the
               constant-propagation subsumption.  A phi cannot change
               kind in place (it lives in the phi list); redirect its
               uses to a materialized constant and let DCE collect
               it. *)
            G.replace_uses g p ~by:(mk_const c);
            changed := true
        | Rep r
          when r <> p && G.instr_exists g r && int_valued (G.kind g r) ->
            (* [r] reaches the phi along every predecessor edge, so its
               single definition dominates every predecessor and hence
               the phi's block: the replacement is dominance-safe. *)
            G.replace_uses g p ~by:r;
            changed := true
        | _ -> ())
    phis_rpo;
  !changed

(* Copy propagation replaces uses and deletes phis; the CFG, branch
   probabilities and loop structure are untouched. *)
let phase =
  Phase.make ~preserves:Ir.Analyses.all_kinds
    ~enables:
      [ "canonicalize"; "simplify-cfg"; "sccp"; "gvn"; "condelim"; "dce";
        "licm" ]
    "copyprop" run
