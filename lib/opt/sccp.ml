(** Sparse conditional constant propagation (Wegman–Zadeck).

    Runs the classic two-worklist algorithm over the CFG and SSA edges:
    values live in the lattice Top → Const → Bottom, branch conditions
    that evaluate to lattice constants keep their dead successor edge
    non-executable, and phis meet only over executable incoming edges.
    This catches what the per-instruction canonicalizer cannot: constants
    threaded through cycles and through branches whose direction is
    itself determined by constants.

    The analysis state is arena-shaped: the lattice is an unboxed pair of
    int arrays (tag + payload) indexed by instruction id, executable
    edges and visited blocks are {!Ir.Bitset}s, and the worklists carry
    plain ints — the propagation loop allocates nothing.

    The transformation step replaces lattice-constant instructions with
    [Const] nodes and folds decided branches; unreachable blocks are then
    swept by the CFG simplifier / DCE. *)

open Ir.Types
module G = Ir.Graph

type lattice = Top | Cint of int | Cnull | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Cint m, Cint n when m = n -> a
  | Cnull, Cnull -> Cnull
  | _ -> Bottom

let equal_lattice a b =
  match (a, b) with
  | Top, Top | Cnull, Cnull | Bottom, Bottom -> true
  | Cint m, Cint n -> m = n
  | _ -> false

(* Unboxed lattice encoding: a tag byte plus an int payload (valid only
   for [t_cint]).  Storing ints instead of boxed constructors keeps the
   propagation loop free of write barriers and allocation. *)
let t_top = 0
let t_cint = 1
let t_cnull = 2
let t_bottom = 3

(* Growable int stack: the worklists push plain ints, a [Queue] cell per
   push is pure churn.  LIFO order is fine — the lattice only ever moves
   down, so the fixpoint is order-independent. *)
type stack = { mutable buf : int array; mutable top : int }

let stack_create n = { buf = Array.make (max 16 n) 0; top = 0 }

let push st v =
  if st.top = Array.length st.buf then begin
    let buf = Array.make (2 * st.top) 0 in
    Array.blit st.buf 0 buf 0 st.top;
    st.buf <- buf
  end;
  st.buf.(st.top) <- v;
  st.top <- st.top + 1

type state = {
  g : G.t;
  tag : Bytes.t;  (** lattice tag per instruction id *)
  pay : int array;  (** Cint payload per instruction id *)
  edge_executable : Ir.Bitset.t;  (** pred * n_blocks + succ *)
  block_visited : Ir.Bitset.t;
  flow_worklist : stack;  (** encoded edges *)
  ssa_worklist : stack;
  n_blocks : int;
}

let get_tag st v = Char.code (Bytes.unsafe_get st.tag v)
let lattice_of st v =
  match get_tag st v with
  | 0 -> Top
  | 1 -> Cint st.pay.(v)
  | 2 -> Cnull
  | _ -> Bottom

(* Evaluate one instruction over the lattice. *)
let eval_kind st kind =
  match kind with
  | Const n -> Cint n
  | Null -> Cnull
  | Param _ | New _ | Load _ | Store _ | Load_global _ | Store_global _
  | Call _ ->
      Bottom
  | Neg a -> (
      match get_tag st a with
      | 1 -> Cint (-st.pay.(a))
      | 0 -> Top
      | _ -> Bottom)
  | Not a -> (
      match get_tag st a with
      | 1 -> Cint (if st.pay.(a) = 0 then 1 else 0)
      | 0 -> Top
      | _ -> Bottom)
  | Binop (op, a, b) -> (
      match (get_tag st a, get_tag st b) with
      | 1, 1 -> Cint (eval_binop op st.pay.(a) st.pay.(b))
      | 0, _ | _, 0 -> Top
      | _ -> Bottom)
  | Cmp (op, a, b) -> (
      match (get_tag st a, get_tag st b) with
      | 1, 1 -> Cint (eval_cmp op st.pay.(a) st.pay.(b))
      | 2, 2 -> (
          match op with
          | Eq -> Cint 1
          | Ne -> Cint 0
          | Lt | Le | Gt | Ge -> Bottom)
      | 0, _ | _, 0 -> Top
      | _ -> Bottom)
  | Phi _ -> assert false (* handled separately: depends on edges *)

let set_value st v l =
  let tag, pay =
    match l with
    | Top -> (t_top, 0)
    | Cint n -> (t_cint, n)
    | Cnull -> (t_cnull, 0)
    | Bottom -> (t_bottom, 0)
  in
  if get_tag st v <> tag || (tag = t_cint && st.pay.(v) <> pay) then begin
    Bytes.unsafe_set st.tag v (Char.unsafe_chr tag);
    st.pay.(v) <- pay;
    push st.ssa_worklist v
  end

let edge_is_executable st p s =
  Ir.Bitset.mem st.edge_executable ((p * st.n_blocks) + s)

let eval_phi st phi =
  let bid = G.block_of st.g phi in
  match G.kind st.g phi with
  | Phi inputs ->
      let l = ref Top in
      let n = G.pred_count st.g bid in
      for i = 0 to n - 1 do
        if edge_is_executable st (G.pred_nth st.g bid i) bid then
          l := meet !l (lattice_of st inputs.(i))
      done;
      set_value st phi !l
  | _ -> assert false

let eval_instr st id =
  match G.kind st.g id with
  | Phi _ -> eval_phi st id
  | k -> set_value st id (eval_kind st k)

let eval_terminator st bid =
  let push s = push st.flow_worklist ((bid * st.n_blocks) + s) in
  match G.term st.g bid with
  | Jump t -> push t
  | Branch { cond; if_true; if_false; _ } -> (
      match get_tag st cond with
      | 1 -> if st.pay.(cond) = 0 then push if_false else push if_true
      | 2 ->
          (* null is falsy in the interpreter; a type-checked program
             never branches on a reference, stay conservative. *)
          push if_true;
          push if_false
      | 0 -> () (* not yet known: wait for more information *)
      | _ ->
          push if_true;
          push if_false)
  | Return _ | Unreachable -> ()

let analyze g =
  let nb = G.n_blocks g in
  let st =
    {
      g;
      tag = Bytes.make (G.n_instrs g) '\000';
      pay = Array.make (G.n_instrs g) 0;
      edge_executable = Ir.Bitset.create (nb * nb);
      block_visited = Ir.Bitset.create nb;
      flow_worklist = stack_create nb;
      ssa_worklist = stack_create (G.n_instrs g);
      n_blocks = nb;
    }
  in
  (* Parameters and effects are Bottom from the start. *)
  G.iter_instrs g (fun id ->
      match G.kind g id with
      | Param _ | New _ | Load _ | Store _ | Load_global _ | Store_global _
      | Call _ ->
          Bytes.unsafe_set st.tag id (Char.unsafe_chr t_bottom)
      | _ -> ());
  let entry = G.entry g in
  Ir.Bitset.add st.block_visited entry;
  G.iter_block_instrs g entry (fun id -> eval_instr st id);
  eval_terminator st entry;
  let process_block bid =
    G.iter_block_instrs g bid (fun id -> eval_instr st id);
    eval_terminator st bid
  in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    while st.flow_worklist.top > 0 do
      continue_ := true;
      st.flow_worklist.top <- st.flow_worklist.top - 1;
      let e = st.flow_worklist.buf.(st.flow_worklist.top) in
      let p = e / nb and s = e mod nb in
      if not (edge_is_executable st p s) then begin
        Ir.Bitset.add st.edge_executable e;
        (* A newly executable edge re-evaluates the target's phis (their
           meet now includes this edge). *)
        G.iter_phis g s (fun phi -> eval_phi st phi);
        if not (Ir.Bitset.mem st.block_visited s) then begin
          Ir.Bitset.add st.block_visited s;
          process_block s
        end
      end
    done;
    while st.ssa_worklist.top > 0 do
      continue_ := true;
      st.ssa_worklist.top <- st.ssa_worklist.top - 1;
      let v = st.ssa_worklist.buf.(st.ssa_worklist.top) in
      G.iter_uses_enc g v (fun e ->
          if G.user_is_term e then begin
            let bid = G.user_target e in
            if Ir.Bitset.mem st.block_visited bid then eval_terminator st bid
          end
          else begin
            let u = G.user_target e in
            if Ir.Bitset.mem st.block_visited (G.block_of g u) then
              eval_instr st u
          end)
    done
  done;
  st

let run ctx g =
  Phase.charge_graph ctx g;
  let st = analyze g in
  let n_analyzed = Bytes.length st.tag in
  let changed = ref false in
  let mk_const = Canonicalize.materialize_const g in
  (* Replace lattice constants.  A phi cannot simply change kind (it
     lives in the block's phi list); its uses are redirected to a
     materialized constant instead and DCE collects it. *)
  G.iter_instrs g (fun id ->
      (* Constants materialized during this very loop have no lattice
         entry (and need none). *)
      if
        id < n_analyzed
        && G.instr_exists g id
        && Ir.Bitset.mem st.block_visited (G.block_of g id)
      then
        match (lattice_of st id, G.kind g id) with
        | Cint n, Phi _ ->
            let c = mk_const n in
            if G.has_uses g id then begin
              G.replace_uses g id ~by:c;
              changed := true
            end
        | Cint n, kind when is_pure kind && kind <> Const n ->
            G.set_kind g id (Const n);
            changed := true
        | Cnull, kind when is_pure kind && kind <> Null && (match kind with Phi _ -> false | _ -> true) ->
            G.set_kind g id Null;
            changed := true
        | _ -> ());
  (* Fold branches whose direction the analysis decided.  A condition
     may just have been redirected to a freshly materialized constant
     (no lattice entry): read the constant directly in that case. *)
  let cond_value c =
    if c < n_analyzed then lattice_of st c
    else match G.kind g c with Const n -> Cint n | _ -> Bottom
  in
  G.iter_blocks g (fun bid ->
      if Ir.Bitset.mem st.block_visited bid then
        match G.term g bid with
        | Branch { cond; if_true; if_false; _ } -> (
            match cond_value cond with
            | Cint 0 ->
                G.set_term g bid (Jump if_false);
                changed := true
            | Cint _ ->
                G.set_term g bid (Jump if_true);
                changed := true
            | Top | Cnull | Bottom -> ())
        | Jump _ | Return _ | Unreachable -> ());
  if !changed then ignore (G.remove_unreachable_blocks g);
  !changed

let phase = Phase.make "sccp" run
