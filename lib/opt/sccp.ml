(** Sparse conditional constant propagation (Wegman–Zadeck).

    Runs the classic two-worklist algorithm over the CFG and SSA edges:
    values live in the lattice Top → Const → Bottom, branch conditions
    that evaluate to lattice constants keep their dead successor edge
    non-executable, and phis meet only over executable incoming edges.
    This catches what the per-instruction canonicalizer cannot: constants
    threaded through cycles and through branches whose direction is
    itself determined by constants.

    The transformation step replaces lattice-constant instructions with
    [Const] nodes and folds decided branches; unreachable blocks are then
    swept by the CFG simplifier / DCE. *)

open Ir.Types
module G = Ir.Graph

type lattice = Top | Cint of int | Cnull | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Cint m, Cint n when m = n -> a
  | Cnull, Cnull -> Cnull
  | _ -> Bottom

let equal_lattice a b =
  match (a, b) with
  | Top, Top | Cnull, Cnull | Bottom, Bottom -> true
  | Cint m, Cint n -> m = n
  | _ -> false

(* Evaluate one instruction over the lattice. *)
let eval_kind value kind =
  match kind with
  | Const n -> Cint n
  | Null -> Cnull
  | Param _ | New _ | Load _ | Store _ | Load_global _ | Store_global _
  | Call _ ->
      Bottom
  | Neg a -> (
      match value a with
      | Cint n -> Cint (-n)
      | Top -> Top
      | Cnull | Bottom -> Bottom)
  | Not a -> (
      match value a with
      | Cint n -> Cint (if n = 0 then 1 else 0)
      | Top -> Top
      | Cnull | Bottom -> Bottom)
  | Binop (op, a, b) -> (
      match (value a, value b) with
      | Cint x, Cint y -> Cint (eval_binop op x y)
      | Top, _ | _, Top -> Top
      | _ -> Bottom)
  | Cmp (op, a, b) -> (
      match (value a, value b) with
      | Cint x, Cint y -> Cint (eval_cmp op x y)
      | Cnull, Cnull -> (
          match op with
          | Eq -> Cint 1
          | Ne -> Cint 0
          | Lt | Le | Gt | Ge -> Bottom)
      | Top, _ | _, Top -> Top
      | _ -> Bottom)
  | Phi _ -> assert false (* handled separately: depends on edges *)

type state = {
  g : G.t;
  value : lattice array;
  edge_executable : (block_id * block_id, unit) Hashtbl.t;
  block_visited : (block_id, unit) Hashtbl.t;
  flow_worklist : (block_id * block_id) Queue.t;
  ssa_worklist : value Queue.t;
}

let lattice_of st v = st.value.(v)

let set_value st v l =
  if not (equal_lattice st.value.(v) l) then begin
    st.value.(v) <- l;
    Queue.add v st.ssa_worklist
  end

let edge_is_executable st p s = Hashtbl.mem st.edge_executable (p, s)

let eval_phi st phi =
  let bid = G.block_of st.g phi in
  match G.kind st.g phi with
  | Phi inputs ->
      let preds = G.preds st.g bid in
      let l = ref Top in
      List.iteri
        (fun i p ->
          if edge_is_executable st p bid then
            l := meet !l (lattice_of st inputs.(i)))
        preds;
      set_value st phi !l
  | _ -> assert false

let eval_instr st id =
  match G.kind st.g id with
  | Phi _ -> eval_phi st id
  | k -> set_value st id (eval_kind (lattice_of st) k)

let eval_terminator st bid =
  match G.term st.g bid with
  | Jump t -> Queue.add (bid, t) st.flow_worklist
  | Branch { cond; if_true; if_false; _ } -> (
      match lattice_of st cond with
      | Cint 0 -> Queue.add (bid, if_false) st.flow_worklist
      | Cint _ -> Queue.add (bid, if_true) st.flow_worklist
      | Cnull ->
          (* null is falsy in the interpreter; a type-checked program
             never branches on a reference, stay conservative. *)
          Queue.add (bid, if_true) st.flow_worklist;
          Queue.add (bid, if_false) st.flow_worklist
      | Top -> () (* not yet known: wait for more information *)
      | Bottom ->
          Queue.add (bid, if_true) st.flow_worklist;
          Queue.add (bid, if_false) st.flow_worklist)
  | Return _ | Unreachable -> ()

let analyze g =
  let st =
    {
      g;
      value = Array.make g.G.n_instrs Top;
      edge_executable = Hashtbl.create 32;
      block_visited = Hashtbl.create 16;
      flow_worklist = Queue.create ();
      ssa_worklist = Queue.create ();
    }
  in
  (* Parameters and effects are Bottom from the start. *)
  G.iter_instrs g (fun i ->
      match i.G.kind with
      | Param _ | New _ | Load _ | Store _ | Load_global _ | Store_global _
      | Call _ ->
          st.value.(i.G.ins_id) <- Bottom
      | _ -> ());
  let entry = G.entry g in
  Hashtbl.replace st.block_visited entry ();
  List.iter (fun id -> eval_instr st id) (G.block_instrs g entry);
  eval_terminator st entry;
  let process_block bid =
    List.iter (fun id -> eval_instr st id) (G.block_instrs g bid);
    eval_terminator st bid
  in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    while not (Queue.is_empty st.flow_worklist) do
      continue_ := true;
      let p, s = Queue.pop st.flow_worklist in
      if not (edge_is_executable st p s) then begin
        Hashtbl.replace st.edge_executable (p, s) ();
        (* A newly executable edge re-evaluates the target's phis (their
           meet now includes this edge). *)
        List.iter (fun phi -> eval_phi st phi) (G.block g s).G.phis;
        if not (Hashtbl.mem st.block_visited s) then begin
          Hashtbl.replace st.block_visited s ();
          process_block s
        end
      end
    done;
    while not (Queue.is_empty st.ssa_worklist) do
      continue_ := true;
      let v = Queue.pop st.ssa_worklist in
      List.iter
        (fun user ->
          match user with
          | G.U_instr u ->
              if Hashtbl.mem st.block_visited (G.block_of g u) then
                eval_instr st u
          | G.U_term bid ->
              if Hashtbl.mem st.block_visited bid then eval_terminator st bid)
        (G.uses g v)
    done
  done;
  st

let run ctx g =
  Phase.charge_graph ctx g;
  let st = analyze g in
  let changed = ref false in
  let mk_const = Canonicalize.materialize_const g in
  (* Replace lattice constants.  A phi cannot simply change kind (it
     lives in the block's phi list); its uses are redirected to a
     materialized constant instead and DCE collects it. *)
  G.iter_instrs g (fun i ->
      let id = i.G.ins_id in
      (* Constants materialized during this very loop have no lattice
         entry (and need none). *)
      if
        id < Array.length st.value
        && G.instr_exists g id
        && Hashtbl.mem st.block_visited (G.block_of g id)
      then
        match (st.value.(id), i.G.kind) with
        | Cint n, Phi _ ->
            let c = mk_const n in
            if G.uses g id <> [] then begin
              G.replace_uses g id ~by:c;
              changed := true
            end
        | Cint n, kind when is_pure kind && kind <> Const n ->
            G.set_kind g id (Const n);
            changed := true
        | Cnull, kind when is_pure kind && kind <> Null && (match kind with Phi _ -> false | _ -> true) ->
            G.set_kind g id Null;
            changed := true
        | _ -> ());
  (* Fold branches whose direction the analysis decided.  A condition
     may just have been redirected to a freshly materialized constant
     (no lattice entry): read the constant directly in that case. *)
  let cond_value c =
    if c < Array.length st.value then st.value.(c)
    else match G.kind g c with Const n -> Cint n | _ -> Bottom
  in
  G.iter_blocks g (fun b ->
      if Hashtbl.mem st.block_visited b.G.blk_id then
        match b.G.term with
        | Branch { cond; if_true; if_false; _ } -> (
            match cond_value cond with
            | Cint 0 ->
                G.set_term g b.G.blk_id (Jump if_false);
                changed := true
            | Cint _ ->
                G.set_term g b.G.blk_id (Jump if_true);
                changed := true
            | Top | Cnull | Bottom -> ())
        | Jump _ | Return _ | Unreachable -> ());
  if !changed then ignore (G.remove_unreachable_blocks g);
  !changed

let phase = Phase.make "sccp" run
