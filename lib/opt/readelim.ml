(** Read elimination (paper §2): replace a load that is fully redundant —
    an available load or store of the same location dominates it with no
    intervening kill — by the available value.

    Availability is propagated along the dominator tree, but only into
    children whose sole CFG predecessor is the current block (through a
    merge, facts from one side would be unsound).  Partially redundant
    reads therefore survive this phase — duplication promotes them to
    fully redundant, which is exactly the paper's Listing 5/6 scenario. *)

open Ir.Types
module G = Ir.Graph

let class_fields ctx cls =
  match ctx.Phase.program with
  | None -> None
  | Some p ->
      Option.map
        (fun c -> c.Ir.Program.fields)
        (Ir.Program.find_class p cls)

(** Process one block's instructions over an incoming state; applies
    replacements.  Returns the outgoing state and whether anything
    changed. *)
let process_block ctx g bid st =
  let changed = ref false in
  let state = ref st in
  List.iter
    (fun id ->
      if G.instr_exists g id then begin
        let kind = G.kind g id in
        let st', redundant = Memstate.transfer !state id kind in
        (match redundant with
        | Some v ->
            G.replace_uses g id ~by:v;
            G.remove_instr g id;
            changed := true
        | None -> ());
        let st' =
          match kind with
          | New (cls, args) -> (
              match class_fields ctx cls with
              | Some fields -> Memstate.seed_new st' ~fields id args
              | None -> st')
          | _ -> st'
        in
        state := st'
      end)
    (G.block_instrs g bid);
  (!state, !changed)

let run ctx g =
  Phase.charge_graph ctx g;
  let dom = Ir.Analyses.dom g in
  let changed = ref false in
  let rec visit st bid =
    let st_out, c = process_block ctx g bid st in
    if c then changed := true;
    List.iter
      (fun child ->
        let st_in =
          if G.preds g child = [ bid ] then st_out else Memstate.empty
        in
        visit st_in child)
      (Ir.Dom.children dom bid)
  in
  visit Memstate.empty (G.entry g);
  !changed

(* Replaces loads with known values; the CFG is untouched. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "readelim" run
