(** Dominator-scoped global value numbering: a pure instruction whose
    (kind, operands) key already has a definition in a dominating block is
    replaced by that definition.  The key canonicalizes commutative
    operand order; constants and parameters participate so duplicated
    literals unify. *)

open Ir.Types

(** Canonical hash key of a pure instruction. *)
val key_of_kind : instr_kind -> instr_kind

(** Is this kind subject to value numbering?  (Pure and position
    independent — phis are not.) *)
val is_candidate : instr_kind -> bool

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
