(** Loop-invariant code motion.

    Pure instructions whose operands are all defined outside a loop (or
    already hoisted) move to the loop's unique outside predecessor.  Our
    arithmetic is total (division by zero is defined), so hoisting is
    plain speculation — safe, at worst wasted cycles on the non-loop
    path.  Memory reads stay put.

    This phase is {e not} part of the calibrated default pipeline
    ({!Pipeline.all_phases}): the evaluation's baseline/DBDS/dupalot
    comparison uses a fixed phase plan (as the paper's Graal configuration
    does), and adding a phase would shift every measured ratio.  Enable it
    with [Pipeline.optimize ~licm:true]. *)

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
