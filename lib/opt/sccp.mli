(** Sparse conditional constant propagation (Wegman–Zadeck).

    Runs the classic two-worklist algorithm over the CFG and SSA edges:
    values live in the lattice Top → Const → Bottom, branch conditions
    that evaluate to lattice constants keep their dead successor edge
    non-executable, and phis meet only over executable incoming edges.
    This catches what the per-instruction canonicalizer cannot: constants
    threaded through cycles and through branches whose direction is
    itself determined by constants. *)

type lattice = Top | Cint of int | Cnull | Bottom

val meet : lattice -> lattice -> lattice
val equal_lattice : lattice -> lattice -> bool

val run : Phase.ctx -> Ir.Graph.t -> bool
val phase : Phase.t
