(** The canonicalizer: constant folding, algebraic simplification and
    strength reduction, expressed as a pure decision function
    ({!simplify}) plus a phase that applies it.

    The decision function is deliberately side-effect free with respect
    to the instruction being simplified: it is the shared engine behind
    both the real optimization phase and the DBDS applicability checks
    (paper §4.1 splits optimizations into a {e precondition} and an
    {e action step} following Chang et al.; [simplify] computes both —
    returning the action's result rather than mutating the IR).

    Operand kinds are observed through a caller-supplied [kind_of]
    callback: the real phase passes the graph's kinds, the simulation
    tier passes a synonym-resolving view, which is what makes the same
    rules fire "as if" the duplication had been performed. *)

open Ir.Types

(** Result of the action step. *)
type action =
  | Fold of int  (** instruction becomes an integer constant *)
  | Fold_null  (** instruction becomes the null constant *)
  | Alias of value  (** instruction is redundant with an existing value *)
  | Rewrite of instr_kind
      (** instruction is replaced by a cheaper one; operands are existing
          values (fresh constants are materialized via [mk_const]) *)
  | Unchanged

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(** Does this kind statically produce a non-null reference? *)
let never_null = function New _ -> true | _ -> false

(** [simplify ~kind_of ~mk_const kind] decides how [kind] simplifies given
    the (possibly synonym-resolved) kinds of its operands.  [mk_const] is
    called to materialize fresh integer-constant operands for strength
    reductions.  [self] is the value id of the instruction itself when
    known (it lets loop phis of the shape [phi(x, self)] collapse). *)
let simplify ?self ~kind_of ~mk_const kind =
  let const_of v = match kind_of v with Const n -> Some n | _ -> None in
  let is_null v = match kind_of v with Null -> true | _ -> false in
  match kind with
  | Const _ | Null | Param _ | New _ | Load _ | Store _ | Load_global _
  | Store_global _ | Call _ ->
      Unchanged
  | Neg a -> (
      match kind_of a with
      | Const n -> Fold (-n)
      | Neg inner -> Alias inner
      | _ -> Unchanged)
  | Not a -> (
      match kind_of a with
      | Const n -> Fold (if n = 0 then 1 else 0)
      | Not inner -> Alias inner
      | Cmp _ -> Unchanged (* handled by the phase: rewrite below *)
      | _ -> Unchanged)
  | Phi inputs ->
      (* Degenerate phis: all inputs identical, up to self-references
         (copy propagation). *)
      let v = ref (-1) and distinct = ref false in
      Array.iter
        (fun x ->
          let is_self = match self with Some s -> x = s | None -> false in
          if not is_self then
            if !v = -1 then v := x else if x <> !v then distinct := true)
        inputs;
      if !v >= 0 && not !distinct then Alias !v else Unchanged
  | Cmp (op, a, b) -> (
      let null_compare x y =
        (* x compared against null when x is statically non-null *)
        if is_null y && never_null (kind_of x) then
          match op with Eq -> Fold 0 | Ne -> Fold 1 | _ -> Unchanged
        else Unchanged
      in
      match (const_of a, const_of b) with
      | Some x, Some y -> Fold (eval_cmp op x y)
      | _ when a = b && (op = Eq || op = Le || op = Ge) -> Fold 1
      | _ when a = b && (op = Ne || op = Lt || op = Gt) -> Fold 0
      | _ when is_null a && is_null b -> (
          match op with Eq -> Fold 1 | Ne -> Fold 0 | _ -> Unchanged)
      | _ -> (
          match null_compare a b with
          | Unchanged -> null_compare b a
          | r -> r))
  | Binop (op, a, b) -> (
      match (const_of a, const_of b) with
      | Some x, Some y -> Fold (eval_binop op x y)
      | Some x, None -> (
          (* Normalize constants of commutative operators to the right so
             the algebraic rules below and GVN see one shape. *)
          match op with
          | Add | Mul | And | Or | Xor -> Rewrite (Binop (op, b, a))
          | Sub | Div | Rem | Shl | Shr -> (
              match (op, x) with
              | Sub, 0 -> Rewrite (Neg b)
              | (Div | Rem | Shl | Shr), 0 -> Fold 0
              | _ -> Unchanged))
      | None, Some y -> (
          match (op, y) with
          | (Add | Sub), 0 -> Alias a
          | Mul, 0 -> Fold 0
          | Mul, 1 -> Alias a
          | Mul, -1 -> Rewrite (Neg a)
          | Mul, n when is_power_of_two n ->
              Rewrite (Binop (Shl, a, mk_const (log2 n)))
          | Div, 1 -> Alias a
          | Div, n when is_power_of_two n ->
              (* Exact for floor division — the paper's Figure 3 strength
                 reduction (x / 2 → x >> 1, 32 → 1 cycles). *)
              Rewrite (Binop (Shr, a, mk_const (log2 n)))
          | Rem, 1 -> Fold 0
          | Rem, n when is_power_of_two n ->
              (* Floor modulo by 2^k is a mask. *)
              Rewrite (Binop (And, a, mk_const (n - 1)))
          | And, 0 -> Fold 0
          | Or, 0 -> Alias a
          | Xor, 0 -> Alias a
          | (Shl | Shr), 0 -> Alias a
          | _ -> Unchanged)
      | None, None ->
          if a = b then
            match op with
            | Sub | Xor | Rem -> Fold 0
            | And | Or -> Alias a
            | Div -> Unchanged (* x/x is 1 only for x <> 0 *)
            | Add | Mul | Shl | Shr -> Unchanged
          else Unchanged)

(** Estimated cycle cost of an action's result, given the original kind —
    used by the simulation tier to compute cycles saved. *)
let action_cycles original = function
  | Fold _ | Fold_null -> Costmodel.Cost.cycles_of_kind (Const 0)
  | Alias _ -> 0.0
  | Rewrite k -> Costmodel.Cost.cycles_of_kind k
  | Unchanged -> Costmodel.Cost.cycles_of_kind original

let action_size original = function
  | Fold _ | Fold_null -> Costmodel.Cost.size_of_kind (Const 0)
  | Alias _ -> 0
  | Rewrite k -> Costmodel.Cost.size_of_kind k
  | Unchanged -> Costmodel.Cost.size_of_kind original

(* ------------------------------------------------------------------ *)
(* The phase                                                           *)
(* ------------------------------------------------------------------ *)

(** Find or create a [Const n] usable anywhere: reused entry-block
    constants are hoisted to the head of the entry block so they dominate
    every use site (including earlier instructions of the entry block). *)
let materialize_const g =
  let cache = Hashtbl.create 8 in
  Ir.Graph.iter_instrs g (fun id ->
      match Ir.Graph.kind g id with
      | Const n ->
          if
            Ir.Graph.block_of g id = Ir.Graph.entry g
            && not (Hashtbl.mem cache n)
          then Hashtbl.add cache n id
      | _ -> ());
  let hoisted = Hashtbl.create 8 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some v ->
        if not (Hashtbl.mem hoisted v) then begin
          Hashtbl.add hoisted v ();
          Ir.Graph.detach g v;
          Ir.Graph.attach_front g v (Ir.Graph.entry g)
        end;
        v
    | None ->
        let v = Ir.Graph.prepend g (Ir.Graph.entry g) (Const n) in
        Hashtbl.add cache n v;
        Hashtbl.add hoisted v ();
        v

(** Rewrite [Not (Cmp op a b)] into the negated comparison. *)
let not_of_cmp g id =
  match Ir.Graph.kind g id with
  | Not a -> (
      match Ir.Graph.kind g a with
      | Cmp (op, x, y) ->
          Ir.Graph.set_kind g id (Cmp (negate_cmp op, x, y));
          true
      | _ -> false)
  | _ -> false

let apply_action g id = function
  | Unchanged -> false
  | Fold n ->
      Ir.Graph.set_kind g id (Const n);
      true
  | Fold_null ->
      Ir.Graph.set_kind g id Null;
      true
  | Alias v ->
      (* Alias is only ever returned for pure kinds; delete the redundant
         instruction right away (leaving it would re-fire forever). *)
      Ir.Graph.replace_uses g id ~by:v;
      if not (Ir.Graph.has_uses g id) then Ir.Graph.remove_instr g id;
      true
  | Rewrite k ->
      Ir.Graph.set_kind g id k;
      true

let run ctx g =
  Phase.charge_graph ctx g;
  let mk_const = materialize_const g in
  let kind_of v = Ir.Graph.kind g v in
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    Ir.Graph.iter_instrs g (fun id ->
        if Ir.Graph.instr_exists g id then begin
          let action =
            simplify ~self:id ~kind_of ~mk_const (Ir.Graph.kind g id)
          in
          if apply_action g id action then begin
            progress := true;
            changed := true
          end
          else if not_of_cmp g id then begin
            progress := true;
            changed := true
          end
        end)
  done;
  !changed

(* Pure instruction rewrites: constant folding, strength reduction and
   const hoisting never touch terminators or edges, so all CFG analyses
   survive. *)
let phase = Phase.make ~preserves:Ir.Analyses.all_kinds "canonicalize" run
