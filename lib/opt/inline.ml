(** Function inlining.

    Graal runs DBDS on post-inlining compilation units: hot leaf logic
    sits inside its caller's loops, which is what makes relative block
    frequencies (the trade-off's [p] factor) meaningful and what produces
    the large units the paper's evaluation compiles.  This inliner
    reproduces that: functions are processed callee-first and call sites
    are spliced in place — the call block is split, the callee's blocks
    are copied with parameters bound to arguments, and returns jump to
    the continuation (merging results through a phi).

    Self-recursive calls (and any call that would exceed the size budget)
    stay as calls; the interpreter executes them out-of-line. *)

open Ir.Types
module G = Ir.Graph

type limits = {
  max_callee_size : int;  (** don't inline callees larger than this *)
  max_caller_size : int;  (** stop growing a caller beyond this *)
  max_sites_per_caller : int;
}

let default_limits =
  { max_callee_size = 400; max_caller_size = 4000; max_sites_per_caller = 64 }

(* Splice one call site.  [callee] must be a different graph from [g]. *)
let inline_site g call_id (callee : G.t) =
  let call_block = G.block_of g call_id in
  let args =
    match G.kind g call_id with
    | Call (_, args) -> args
    | _ -> invalid_arg "inline_site: not a call"
  in
  (* Split the call block: everything after the call moves to [cont]. *)
  let rec split before = function
    | [] -> invalid_arg "inline_site: call not found in its block"
    | id :: rest when id = call_id -> (List.rev before, rest)
    | id :: rest -> split (id :: before) rest
  in
  let _before, after = split [] (G.body g call_block) in
  let cont = G.add_block g in
  (* Move the call block's terminator to [cont], keeping successor
     predecessor lists and phi inputs intact (the edge source is renamed,
     its position is unchanged). *)
  G.transfer_term g ~src:call_block ~dst:cont;
  (* Move the instructions after the call into [cont]. *)
  List.iter
    (fun id ->
      G.detach g id;
      G.attach g id cont)
    after;
  (* Copy the callee's reachable blocks. *)
  let callee_rpo = G.rpo callee in
  let block_map = Hashtbl.create 16 in
  List.iter (fun ob -> Hashtbl.replace block_map ob (G.add_block g)) callee_rpo;
  let new_block ob = Hashtbl.find block_map ob in
  let value_map = Hashtbl.create 32 in
  let returns = ref [] in
  (* Copy instructions in reverse-postorder so that a non-phi use always
     sees its definition already mapped (SSA dominance guarantees defs
     come first except for phi back-edge inputs, patched afterwards). *)
  let pending_phis = ref [] in
  List.iter
    (fun ob ->
      let nb = new_block ob in
      List.iter
        (fun id ->
          let kind = G.kind callee id in
          match kind with
          | Param i ->
              let v =
                if i < Array.length args then args.(i)
                else invalid_arg "inline_site: missing argument"
              in
              Hashtbl.replace value_map id v
          | Phi inputs ->
              (* Create with placeholder inputs; patch after all values
                 exist and predecessor orders are final. *)
              let id' =
                G.append g nb (Phi (Array.make (Array.length inputs) invalid_value))
              in
              Hashtbl.replace value_map id id';
              pending_phis := (ob, id, id') :: !pending_phis
          | k ->
              let k' =
                map_inputs
                  (fun v ->
                    match Hashtbl.find_opt value_map v with
                    | Some v' -> v'
                    | None -> invalid_arg "inline_site: use before def")
                  k
              in
              let id' = G.append g nb k' in
              Hashtbl.replace value_map id id')
        (G.block_instrs callee ob))
    callee_rpo;
  let map_value v =
    match Hashtbl.find_opt value_map v with
    | Some v' -> v'
    | None -> invalid_arg "inline_site: unmapped value"
  in
  (* Terminators: structure-preserving, with returns routed to [cont]. *)
  List.iter
    (fun ob ->
      let nb = new_block ob in
      match G.term callee ob with
      | Jump t -> G.set_term g nb (Jump (new_block t))
      | Branch { cond; if_true; if_false; prob } ->
          G.set_term g nb
            (Branch
               {
                 cond = map_value cond;
                 if_true = new_block if_true;
                 if_false = new_block if_false;
                 prob;
               })
      | Return v ->
          returns := (nb, Option.map map_value v) :: !returns;
          G.set_term g nb (Jump cont)
      | Unreachable -> G.set_term g nb Unreachable)
    callee_rpo;
  (* Patch copied phis: align inputs with the copied blocks' predecessor
     order (every predecessor of a copied non-entry block is a copied
     block). *)
  List.iter
    (fun (ob, old_phi, new_phi) ->
      let old_preds = G.preds callee ob in
      let old_inputs =
        match G.kind callee old_phi with Phi i -> i | _ -> assert false
      in
      let input_of_old_pred p =
        let rec idx i = function
          | [] -> invalid_arg "inline_site: phi pred mismatch"
          | q :: rest -> if q = p then i else idx (i + 1) rest
        in
        map_value old_inputs.(idx 0 old_preds)
      in
      let nb = new_block ob in
      let inputs' =
        List.map
          (fun np ->
            (* Find which old pred this new pred is the copy of. *)
            let op =
              Hashtbl.fold
                (fun o n acc -> if n = np then Some o else acc)
                block_map None
            in
            match op with
            | Some o -> input_of_old_pred o
            | None -> invalid_arg "inline_site: unknown predecessor copy")
          (G.preds g nb)
      in
      G.set_kind g new_phi (Phi (Array.of_list inputs')))
    !pending_phis;
  (* Route the split block into the inlined entry. *)
  G.set_term g call_block (Jump (new_block (G.entry callee)));
  (* Bind the call's result. *)
  let result =
    match !returns with
    | [] -> None
    | [ (_, v) ] -> v
    | multiple ->
        (* [cont]'s predecessors are exactly the returning blocks; build
           the result phi aligned with that order. *)
        let by_block = List.map (fun (b, v) -> (b, v)) multiple in
        let inputs =
          List.map
            (fun p ->
              match List.assoc_opt p by_block with
              | Some (Some v) -> v
              | Some None | None ->
                  (* void returns merging into a used result cannot occur
                     in type-checked programs *)
                  invalid_value)
            (G.preds g cont)
        in
        if List.exists (fun v -> v = invalid_value) inputs then None
        else Some (G.prepend g cont (Phi (Array.of_list inputs)))
  in
  (match result with
  | Some v -> G.replace_uses g call_id ~by:v
  | None ->
      if G.uses g call_id <> [] then
        invalid_arg "inline_site: result of void call is used");
  G.remove_instr g call_id;
  ()

(* Size in instruction count (cheap; the cost-model size is for budgets
   elsewhere). *)
let graph_instrs g = G.live_instr_count g

(** Inline eligible call sites in [g] given the program. *)
let inline_graph ?(limits = default_limits) ctx program g =
  let changed = ref false in
  let sites_done = ref 0 in
  let progress = ref true in
  while !progress && !sites_done < limits.max_sites_per_caller do
    progress := false;
    let candidate =
      G.fold_instrs g
        (fun acc id ->
          match (acc, G.kind g id) with
          | Some _, _ -> acc
          | None, Call (callee_name, _) -> (
              match Ir.Program.find_function program callee_name with
              | Some callee
                when callee != g
                     && callee_name <> G.name g
                     && graph_instrs callee <= limits.max_callee_size
                     && graph_instrs g + graph_instrs callee
                        <= limits.max_caller_size ->
                  Some (id, callee)
              | _ -> None)
          | None, _ -> None)
        None
    in
    match candidate with
    | Some (call_id, callee) ->
        Phase.charge ctx (graph_instrs callee);
        inline_site g call_id callee;
        incr sites_done;
        progress := true;
        changed := true
    | None -> ()
  done;
  !changed

(** Inline a whole program bottom-up (callees before callers, so a callee
    spliced into its caller already contains its own inlined calls). *)
let inline_program ?limits ctx program =
  (* Topological-ish order: repeatedly process functions; the per-site
     loop naturally copies fully-inlined callees on later passes. *)
  let names = Ir.Program.function_names program in
  (* Leaf-first: order by number of call instructions ascending. *)
  let call_count name =
    match Ir.Program.find_function program name with
    | None -> 0
    | Some g ->
        G.fold_instrs g
          (fun n id -> match G.kind g id with Call _ -> n + 1 | _ -> n)
          0
  in
  let ordered =
    List.sort (fun a b -> compare (call_count a) (call_count b)) names
  in
  let changed = ref false in
  List.iter
    (fun name ->
      match Ir.Program.find_function program name with
      | Some g -> if inline_graph ?limits ctx program g then changed := true
      | None -> ())
    ordered;
  !changed
