(** Phase framework: every optimization is a function [ctx -> Graph.t ->
    bool] (did it change anything?).  The context carries program
    metadata (class layouts for scalar replacement) and a deterministic
    work-unit counter — the compile-time proxy used by the evaluation
    harness alongside wall-clock measurements. *)

type ctx = {
  program : Ir.Program.t option;
      (** metadata for inter-procedural facts; [None] for lone graphs *)
  mutable work : int;  (** deterministic compile-effort counter *)
  mutable analysis_hits : int;
      (** {!Ir.Analyses} cache hits observed under this context *)
  mutable analysis_misses : int;  (** ... and misses (= real computes) *)
  mutable contained : (string * int) list;
      (** contained per-function failures, per crash site (sorted) *)
  mutable post_phase : (string -> Ir.Graph.t -> unit) option;
      (** paranoid hook: called after every phase that changed the
          graph; may raise to abort (and contain) the pipeline *)
}

let create ?program () =
  {
    program;
    work = 0;
    analysis_hits = 0;
    analysis_misses = 0;
    contained = [];
    post_phase = None;
  }

(** Charge [n] work units (roughly: IR nodes examined). *)
let charge ctx n = ctx.work <- ctx.work + n

let charge_graph ctx g = charge ctx (Ir.Graph.live_instr_count g)

let note_analyses ctx ~hits ~misses =
  ctx.analysis_hits <- ctx.analysis_hits + hits;
  ctx.analysis_misses <- ctx.analysis_misses + misses

(* Sorted-assoc sum: commutative and order-insensitive, so the parallel
   merge stays deterministic. *)
let add_contained counts site n =
  let rec go = function
    | [] -> [ (site, n) ]
    | (s, c) :: rest when s = site -> (s, c + n) :: rest
    | (s, c) :: rest when s < site -> (s, c) :: go rest
    | rest -> (site, n) :: rest
  in
  go counts

(** Record one contained per-function failure at [site]. *)
let note_contained ctx ~site =
  ctx.contained <- add_contained ctx.contained site 1

(** Total contained failures across all sites. *)
let contained_total ctx =
  List.fold_left (fun acc (_, n) -> acc + n) 0 ctx.contained

(** Fold a worker context's counters into [into] (the parallel driver's
    deterministic merge: integer sums, independent of worker order). *)
let merge_into ~into src =
  into.work <- into.work + src.work;
  into.analysis_hits <- into.analysis_hits + src.analysis_hits;
  into.analysis_misses <- into.analysis_misses + src.analysis_misses;
  into.contained <-
    List.fold_left
      (fun acc (site, n) -> add_contained acc site n)
      into.contained src.contained

type t = {
  phase_name : string;
  run : ctx -> Ir.Graph.t -> bool;
}

let make phase_name run = { phase_name; run }

(** Run phases in order repeatedly until a full pass changes nothing (or
    [max_rounds] is hit).  Returns true if any phase ever fired. *)
let fixpoint ?(max_rounds = 8) phases ctx g =
  let any = ref false in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < max_rounds do
    incr round;
    changed := false;
    List.iter
      (fun p ->
        if p.run ctx g then begin
          changed := true;
          any := true;
          match ctx.post_phase with
          | Some hook -> hook p.phase_name g
          | None -> ()
        end)
      phases
  done;
  !any
