(** Pass framework: every optimization is a function [ctx -> Graph.t ->
    bool] (did it change anything?), packaged as a {!t} record carrying
    its name and its {e preservation contract} — the {!Ir.Analyses}
    kinds whose cached values remain valid across the pass's own
    mutations.  The context carries program metadata (class layouts for
    scalar replacement), a deterministic work-unit counter — the
    compile-time proxy used by the evaluation harness alongside
    wall-clock measurements — and the per-pass instrumentation the pass
    manager maintains uniformly ({!run_pass}). *)

(** Per-pass instrumentation, accumulated by {!run_pass} and merged
    deterministically across parallel workers.  All fields except
    [time_s] are deterministic for any [jobs] value. *)
type pass_stat = {
  mutable runs : int;  (** invocations *)
  mutable fired : int;  (** invocations that changed the graph *)
  mutable pwork : int;  (** work units charged while the pass ran *)
  mutable time_s : float;  (** wall-clock seconds inside the pass *)
  mutable size_delta : int;
      (** summed live-instruction delta (negative = the pass shrank IR) *)
}

let fresh_pass_stat () =
  { runs = 0; fired = 0; pwork = 0; time_s = 0.0; size_delta = 0 }

type ctx = {
  program : Ir.Program.t option;
      (** metadata for inter-procedural facts; [None] for lone graphs *)
  mutable work : int;  (** deterministic compile-effort counter *)
  mutable analysis_hits : int;
      (** {!Ir.Analyses} cache hits observed under this context *)
  mutable analysis_misses : int;  (** ... and misses (= real computes) *)
  mutable contained : (string * int) list;
      (** contained per-function failures, per crash site (sorted) *)
  mutable pass_stats : (string * pass_stat) list;
      (** per-pass instrumentation, sorted by pass name *)
  mutable preserve_analyses : bool;
      (** honor pass preservation contracts (on by default); off =
          the historical generation-bump-invalidates-everything mode *)
  mutable memo_clean_passes : bool;
      (** skip a pass when it already ran clean at the graph's current
          generation (on by default); the driver turns it off in
          diagnostic runs (fault injection / paranoia) where every pass
          must really execute *)
  mutable check_contracts : bool;
      (** paranoid: recompute-and-compare every preserved analysis after
          each fired pass, raising {!Contract_violated} on a lie *)
  mutable post_phase : (string -> Ir.Graph.t -> unit) option;
      (** paranoid hook: called after every pass that changed the
          graph; may raise to abort (and contain) the pipeline *)
}

let create ?program () =
  {
    program;
    work = 0;
    analysis_hits = 0;
    analysis_misses = 0;
    contained = [];
    pass_stats = [];
    preserve_analyses = true;
    memo_clean_passes = true;
    check_contracts = false;
    post_phase = None;
  }

(** Charge [n] work units (roughly: IR nodes examined). *)
let charge ctx n = ctx.work <- ctx.work + n

let charge_graph ctx g = charge ctx (Ir.Graph.live_instr_count g)

let note_analyses ctx ~hits ~misses =
  ctx.analysis_hits <- ctx.analysis_hits + hits;
  ctx.analysis_misses <- ctx.analysis_misses + misses

(* Sorted-assoc sum: commutative and order-insensitive, so the parallel
   merge stays deterministic. *)
let add_contained counts site n =
  let rec go = function
    | [] -> [ (site, n) ]
    | (s, c) :: rest when s = site -> (s, c + n) :: rest
    | (s, c) :: rest when s < site -> (s, c) :: go rest
    | rest -> (site, n) :: rest
  in
  go counts

(** Record one contained per-function failure at [site]. *)
let note_contained ctx ~site =
  ctx.contained <- add_contained ctx.contained site 1

(** Total contained failures across all sites. *)
let contained_total ctx =
  List.fold_left (fun acc (_, n) -> acc + n) 0 ctx.contained

(* The sorted-assoc discipline again, for pass stats: the slot for a
   pass name, inserted in name order on first use. *)
let pass_stat ctx name =
  let rec go = function
    | [] ->
        let s = fresh_pass_stat () in
        ([ (name, s) ], s)
    | ((n, s) :: _) as l when n = name -> (l, s)
    | (n, s) :: rest when n < name ->
        let rest', found = go rest in
        ((n, s) :: rest', found)
    | rest ->
        let s = fresh_pass_stat () in
        ((name, s) :: rest, s)
  in
  let stats', s = go ctx.pass_stats in
  ctx.pass_stats <- stats';
  s

(** The per-pass instrumentation table, sorted by pass name. *)
let pass_table ctx = ctx.pass_stats

(** Fold a worker context's counters into [into] (the parallel driver's
    deterministic merge: per-function contexts are merged in function
    name order, independent of which worker ran which function). *)
let merge_into ~into src =
  into.work <- into.work + src.work;
  into.analysis_hits <- into.analysis_hits + src.analysis_hits;
  into.analysis_misses <- into.analysis_misses + src.analysis_misses;
  into.contained <-
    List.fold_left
      (fun acc (site, n) -> add_contained acc site n)
      into.contained src.contained;
  List.iter
    (fun (name, s) ->
      let d = pass_stat into name in
      d.runs <- d.runs + s.runs;
      d.fired <- d.fired + s.fired;
      d.pwork <- d.pwork + s.pwork;
      d.time_s <- d.time_s +. s.time_s;
      d.size_delta <- d.size_delta + s.size_delta)
    src.pass_stats

type t = {
  pass_name : string;
  preserves : Ir.Analyses.kind list;
      (** analyses whose cached values stay valid across this pass's own
          mutations; an empty list = the pass may change the CFG and
          preserves nothing *)
  enables : string list option;
      (** pass-interaction contract: when this pass fires, only the
          named passes can gain new opportunities from its changes —
          every other pass that ran clean on the pre-fire state is still
          clean and keeps its convergence memo.  [None] (the default)
          is conservative: firing may enable anything. *)
  run : ctx -> Ir.Graph.t -> bool;
}

let make ?(preserves = []) ?enables pass_name run =
  { pass_name; preserves; enables; run }

(** A pass lied about its preservation contract: after [pass] ran, the
    cached [analysis] it declared preserved differs from a fresh
    recompute.  Raised only under {!ctx.check_contracts} (paranoid
    mode); contained and attributed to the guilty pass by the driver. *)
exception
  Contract_violated of { pass : string; analysis : string; reason : string }

let () =
  Printexc.register_printer (function
    | Contract_violated { pass; analysis; reason } ->
        Some
          (Printf.sprintf "Opt.Phase.Contract_violated(%s claims %s: %s)" pass
             analysis reason)
    | _ -> None)

(** Run one pass with the manager's uniform instrumentation: per-pass
    stats (runs / fired / work / wall time / IR size delta), application
    of the preservation contract to the analysis cache, the paranoid
    recompute-and-compare contract check, and the post-phase
    verification hook.  Every pass execution in the system — fixpoint
    groups, DBDS tiers, standalone passes — goes through here. *)
let run_pass_now ctx (p : t) g =
  let stat = pass_stat ctx p.pass_name in
  let gen0 = Ir.Graph.generation g in
  let work0 = ctx.work in
  let size0 = Ir.Graph.live_instr_count g in
  let t0 = Unix.gettimeofday () in
  let fired = p.run ctx g in
  stat.runs <- stat.runs + 1;
  if fired then stat.fired <- stat.fired + 1;
  stat.pwork <- stat.pwork + (ctx.work - work0);
  stat.time_s <- stat.time_s +. (Unix.gettimeofday () -. t0);
  stat.size_delta <- stat.size_delta + (Ir.Graph.live_instr_count g - size0);
  if fired then begin
    if ctx.preserve_analyses && p.preserves <> [] then
      Ir.Analyses.preserve g ~since:gen0 p.preserves;
    if ctx.check_contracts then
      List.iter
        (fun k ->
          match Ir.Analyses.check g k with
          | Ok () -> ()
          | Error reason ->
              raise
                (Contract_violated
                   {
                     pass = p.pass_name;
                     analysis = Ir.Analyses.kind_to_string k;
                     reason;
                   }))
        p.preserves;
    (match p.enables with
    | Some enabled when ctx.memo_clean_passes ->
        Ir.Analyses.keep_clean_except g ~since:gen0 ~enabled
    | _ -> ());
    match ctx.post_phase with Some hook -> hook p.pass_name g | None -> ()
  end
  else if Ir.Graph.generation g = gen0 then
    (* Ran clean on this exact state: a deterministic pass will run
       clean again until something mutates the graph.  (The generation
       check matters — a pass may mutate yet report no semantic change,
       e.g. hash-consing a constant nobody ended up using.) *)
    Ir.Analyses.note_pass_clean g p.pass_name;
  fired

let run_pass ctx (p : t) g =
  if ctx.memo_clean_passes && Ir.Analyses.pass_clean g p.pass_name then false
  else run_pass_now ctx p g

(** Run passes in order repeatedly until a full round changes nothing (or
    [max_rounds] is hit).  Returns true if any pass ever fired. *)
let fixpoint ?(max_rounds = 8) passes ctx g =
  let any = ref false in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < max_rounds do
    incr round;
    changed := false;
    List.iter
      (fun p ->
        if run_pass ctx p g then begin
          changed := true;
          any := true
        end)
      passes
  done;
  !any
