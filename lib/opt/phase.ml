(** Phase framework: every optimization is a function [ctx -> Graph.t ->
    bool] (did it change anything?).  The context carries program
    metadata (class layouts for scalar replacement) and a deterministic
    work-unit counter — the compile-time proxy used by the evaluation
    harness alongside wall-clock measurements. *)

type ctx = {
  program : Ir.Program.t option;
      (** metadata for inter-procedural facts; [None] for lone graphs *)
  mutable work : int;  (** deterministic compile-effort counter *)
}

let create ?program () = { program; work = 0 }

(** Charge [n] work units (roughly: IR nodes examined). *)
let charge ctx n = ctx.work <- ctx.work + n

let charge_graph ctx g = charge ctx (Ir.Graph.live_instr_count g)

type t = {
  phase_name : string;
  run : ctx -> Ir.Graph.t -> bool;
}

let make phase_name run = { phase_name; run }

(** Run phases in order repeatedly until a full pass changes nothing (or
    [max_rounds] is hit).  Returns true if any phase ever fired. *)
let fixpoint ?(max_rounds = 8) phases ctx g =
  let any = ref false in
  let round = ref 0 in
  let changed = ref true in
  while !changed && !round < max_rounds do
    incr round;
    changed := false;
    List.iter
      (fun p ->
        if p.run ctx g then begin
          changed := true;
          any := true
        end)
      phases
  done;
  !any
