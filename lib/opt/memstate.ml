(** Abstract memory state for read elimination: which field/global reads
    are available, and what value a read would yield.  Shared between the
    {!Readelim} phase and the DBDS read-elimination applicability check
    (the simulation tier threads a memory state through the dominator
    traversal and into duplication simulation traversals). *)

open Ir.Types

module Key = struct
  type t = F of value * string | G of string

  let compare = compare
end

module KMap = Map.Make (Key)

type t = value KMap.t

let empty : t = KMap.empty

let load st base field = KMap.find_opt (Key.F (base, field)) st
let load_global st name = KMap.find_opt (Key.G name) st

(** Record that [base.field] is known to hold [v] (after a load or a
    store). Stores first kill every entry of the same field name on other
    bases — two distinct bases of the same class may alias. *)
let store st base field v =
  let st =
    KMap.filter
      (fun key _ ->
        match key with Key.F (_, f) -> f <> field | Key.G _ -> true)
      st
  in
  KMap.add (Key.F (base, field)) v st

(** A load does not kill anything; it just records availability. *)
let record_load st base field v = KMap.add (Key.F (base, field)) v st

let store_global st name v =
  KMap.add (Key.G name) v (KMap.remove (Key.G name) st)

let record_global_load st name v = KMap.add (Key.G name) v st

(** Calls may read and write arbitrary memory. *)
let kill_all (_ : t) : t = empty

(** Record the effect of one instruction on the state, returning the new
    state and (if the instruction is a load that would be redundant) the
    available value.  [id] is the value the instruction defines. *)
let transfer st id kind =
  match kind with
  | Load (base, field) -> (
      match load st base field with
      | Some v -> (st, Some v)
      | None -> (record_load st base field id, None))
  | Store (base, field, v) -> (store st base field v, None)
  | Load_global name -> (
      match load_global st name with
      | Some v -> (st, Some v)
      | None -> (record_global_load st name id, None))
  | Store_global (name, v) -> (store_global st name v, None)
  | Call _ -> (kill_all st, None)
  | New (cls, args) ->
      (* A fresh allocation's fields are known: they hold the constructor
         arguments.  Field names are unknown here; the caller with class
         metadata may seed them via [seed_new]. *)
      ignore cls;
      ignore args;
      (st, None)
  | Const _ | Null | Param _ | Binop _ | Cmp _ | Neg _ | Not _ | Phi _ ->
      (st, None)

(** With class metadata: after [New (cls, args)] producing [id], each
    field holds the matching constructor argument. *)
let seed_new st ~fields id args =
  List.fold_left
    (fun (st, i) f ->
      if i < Array.length args then (record_load st id f args.(i), i + 1)
      else (st, i + 1))
    (st, 0) fields
  |> fst
