(** Function inlining.

    Graal runs DBDS on post-inlining compilation units: hot leaf logic
    sits inside its caller's loops, which is what makes relative block
    frequencies (the trade-off's [p] factor) meaningful and what produces
    the large units the paper's evaluation compiles.  This inliner
    reproduces that: functions are processed callee-first and call sites
    are spliced in place — the call block is split, the callee's blocks
    are copied with parameters bound to arguments, and returns jump to
    the continuation (merging results through a phi).

    Self-recursive calls (and any call that would exceed the size budget)
    stay as calls; the interpreter executes them out-of-line. *)

type limits = {
  max_callee_size : int;  (** don't inline callees larger than this *)
  max_caller_size : int;  (** stop growing a caller beyond this *)
  max_sites_per_caller : int;
}

(** 400-instruction callees, 4000-instruction callers, 64 sites. *)
val default_limits : limits

(** Splice one call site (the callee must be a different graph).
    Exposed for tests; most callers want {!inline_program}. *)
val inline_site : Ir.Graph.t -> Ir.Types.instr_id -> Ir.Graph.t -> unit

(** Inline eligible call sites in one graph. *)
val inline_graph :
  ?limits:limits -> Phase.ctx -> Ir.Program.t -> Ir.Graph.t -> bool

(** Inline a whole program bottom-up (callees before callers, so a callee
    spliced into its caller already contains its own inlined calls). *)
val inline_program : ?limits:limits -> Phase.ctx -> Ir.Program.t -> bool
