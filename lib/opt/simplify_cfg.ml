(** Control-flow simplification: fold branches on constants, remove
    unreachable blocks, merge straight-line block pairs, and skip empty
    forwarding blocks.  Runs after duplication to clean up degenerate
    shapes (a merge block left with one predecessor, dead branches
    revealed by folding). *)

open Ir.Types
module G = Ir.Graph

let fold_constant_branches _ctx g =
  let changed = ref false in
  G.iter_blocks g (fun bid ->
      match G.term g bid with
      | Branch { cond; if_true; if_false; _ } -> (
          match G.kind g cond with
          | Const n ->
              let taken = if n <> 0 then if_true else if_false in
              G.set_term g bid (Jump taken);
              changed := true
          | _ -> ())
      | Jump _ | Return _ | Unreachable -> ());
  !changed

(* A block with a single predecessor keeps no phis: rewrite them to their
   unique input. *)
let collapse_single_pred_phis _ctx g =
  let changed = ref false in
  G.iter_blocks g (fun bid ->
      if G.pred_count g bid = 1 then
        List.iter
          (fun phi ->
            match G.kind g phi with
            | Phi [| v |] ->
                G.replace_uses g phi ~by:v;
                G.remove_instr g phi;
                changed := true
            | _ -> ())
          (G.phis g bid));
  !changed

(* Merge [p -> s] when p jumps to s and s has no other predecessor:
   move s's body into p, take over s's terminator, delete s. *)
let merge_straightline _ctx g =
  let changed = ref false in
  let progress = ref true in
  while !progress do
    progress := false;
    G.iter_blocks g (fun p ->
        if G.block_exists g p then
          match G.term g p with
          | Jump s
            when s <> G.entry g && G.preds g s = [ p ] && s <> p ->
              (* Single-pred phis must be collapsed first. *)
              if G.phis g s = [] then begin
                let body = G.body g s in
                List.iter (fun id -> G.detach g id) body;
                let sterm = G.term g s in
                (* Route s's out-edges to p: first disconnect s, then
                   re-terminate p, then restore the phi inputs that s's
                   successors held for s (now coming from p). *)
                let succ_inputs =
                  List.map
                    (fun succ ->
                      let idx = G.pred_index g succ s in
                      ( succ,
                        List.map
                          (fun phi ->
                            match G.kind g phi with
                            | Phi inputs -> (phi, inputs.(idx))
                            | _ -> assert false)
                          (G.phis g succ) ))
                    (G.succs g s)
                in
                G.set_term g s Unreachable;
                G.set_term g p sterm;
                List.iter
                  (fun (succ, phi_inputs) ->
                    let idx = G.pred_index g succ p in
                    List.iter
                      (fun (phi, v) ->
                        match G.kind g phi with
                        | Phi inputs ->
                            let inputs = Array.copy inputs in
                            inputs.(idx) <- v;
                            G.set_kind g phi (Phi inputs)
                        | _ -> assert false)
                      phi_inputs)
                  succ_inputs;
                List.iter (fun id -> G.attach g id p) body;
                G.remove_block g s;
                progress := true;
                changed := true
              end
          | _ -> ())
  done;
  !changed

let remove_unreachable _ctx g = G.remove_unreachable_blocks g

let run ctx g =
  Phase.charge ctx (G.live_block_count g);
  let c1 = fold_constant_branches ctx g in
  let c2 = remove_unreachable ctx g in
  let c3 = collapse_single_pred_phis ctx g in
  let c4 = merge_straightline ctx g in
  c1 || c2 || c3 || c4

let phase = Phase.make "simplify-cfg" run
