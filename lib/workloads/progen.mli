(** Random program generator for differential testing.

    Generates well-typed source programs that terminate by construction:
    loops only use the bounded-counter pattern, and calls only target
    previously generated helpers (no recursion).  Determinism comes from
    the seed, so failures reproduce.

    The generated shapes are biased toward what DBDS cares about: merges
    carrying phis (if/else assigning the same variable, short-circuit
    conditions), constants flowing into one side of a merge, field
    accesses on objects that may or may not escape, and global
    loads/stores around calls. *)

(** Generate a complete source program from a seed.  [n_helpers]
    callable helper functions (default 2) precede [main(int x, int y)];
    [depth] bounds control-flow nesting (default 3). *)
val generate : ?n_helpers:int -> ?depth:int -> seed:int -> unit -> string

(** [generate] compiled to IR; with [~irreducible:true] an {!Advgen}
    multi-entry ring is grafted in as an extra (uncalled) function, so
    optimizing the program exercises irreducible control flow while
    [main]'s observable behaviour is unchanged. *)
val generate_program :
  ?irreducible:bool ->
  ?n_helpers:int ->
  ?depth:int ->
  seed:int ->
  unit ->
  Ir.Program.t
