(** The JavaScript-Octane-like suite (reproduces Figure 8).

    Octane stresses JIT compilation of dynamic-language idioms:
    megamorphic dispatch, boxed numbers, global mutable state and large
    generated bodies.  The paper reports the biggest DBDS wins here
    (geomean +8.81%) and its cautionary tale: under dupalot, raytrace
    loses ~15% against the baseline.  The [raytrace] program reconstructs
    that mechanism exactly: its hot merge tails are bulky (~140 cost-model
    bytes) with token benefit, so the DBDS trade-off ([b x p x 256 > c])
    declines them while dupalot duplicates every one — pushing the hot
    working set past the simulated instruction cache and onto the LRU
    cliff. *)

open Suite

(* box2d: physics step; the inverse-mass divisor merges as phi(2, m). *)
let box2d =
  bench ~name:"box2d" ~args:[| 2000 |]
    ~description:"impulse solver; hot division by phi(2, mass)"
    {|
    global int contacts;
    int main(int n) {
      int seed = 44;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 59 + 3) & 16383;
        /* broad-phase pair test (neutral) */
        int bp = 0;
        while (bp < 3) @0.72 {
          acc = (acc + seed % 541 + bp * 7) & 33554431;
          acc = acc ^ (acc >> 5) % 191;
          bp = bp + 1;
        }
        int m;
        if ((seed >> 6) % 16 != 0) @0.92 { m = 2; } else { m = seed % 9 + 3; }
        int j = (seed & 511) * 3 / m;
        acc = (acc + j) & 33554431;
        if (j > 700) @0.1 { contacts = contacts + 1; }
        if ((seed >> 9) % 96 == 0) @0.01 {
          int bm;
          if ((seed >> 12) % 2 == 0) @0.5 { bm = 0; } else { bm = 4; }
          int b1 = acc ^ bm;
          int b2 = b1 * 19 % 401;
          int b3 = b2 + b1 * 7 % 197;
          int b4 = b3 ^ (b2 * 3 + 5) % 103;
          contacts = contacts + b4 % 7;
        }
        i = i + 1;
      }
      return acc + contacts;
    }
    |}

(* code-load: many small functions each holding one merge — a swarm of
   small candidates; compile-time pressure, little peak payoff. *)
let code_load =
  bench ~name:"code-load" ~args:[| 1200 |]
    ~description:"many small compilation units with one merge each"
    {|
    global int loaded;
    int u1(int x) { int r; if (x % 2 == 0) @0.6 { r = x + 1; } else { r = x - 1; } return r * 2 + x % 89; }
    int u2(int x) { int r; if (x % 3 == 0) @0.4 { r = x ^ 5; } else { r = x + 5; } return (r & 4095) + x % 97; }
    int u3(int x) { int r; if (x % 5 == 0) @0.3 { r = x * 3; } else { r = x / 3; } return r + 7 + x % 61; }
    int u4(int x) { int r; if (x % 7 == 0) @0.2 { r = x << 1; } else { r = x >> 1; } return (r ^ 9) + x % 53; }
    int u5(int x) { int r; if (x > 512) @0.5 { r = x - 512; } else { r = x + 512; } return r % 771 + x % 43; }
    int u6(int x) { int r; if (x % 4 == 1) @0.3 { r = x * 5; } else { r = x + 3; } return (r & 8191) + x % 37; }
    int u7(int x) { int r; if (x % 9 == 0) @0.15 { r = 0; } else { r = x; } return r + 11 + x % 29; }
    int u8(int x) { int r; if (x % 11 == 0) @0.1 { r = x % 13; } else { r = x % 17; } return r * 4 + x % 23; }
    int main(int n) {
      int seed = 21;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 101 + 33) & 16383;
        acc = (acc + u1(seed) + u2(seed) + u3(seed) + u4(seed)
               + u5(seed) + u6(seed) + u7(seed) + u8(seed)) & 33554431;
        loaded = loaded + 1;
        i = i + 1;
      }
      return acc + loaded;
    }
    |}

(* deltablue: constraint propagation; the strength tag is re-tested after
   the planning merge (conditional elimination). *)
let deltablue =
  bench ~name:"deltablue" ~args:[| 1800 |]
    ~description:"constraint planner re-testing strength tags"
    {|
    global int satisfied;
    int main(int n) {
      int seed = 66;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 85 + 27) & 65535;
        /* plan walk (neutral) */
        int pw = 0;
        while (pw < 2) @0.63 {
          acc = (acc + seed % 613 + pw) & 33554431;
          acc = acc ^ (acc >> 4) % 283;
          pw = pw + 1;
        }
        int strength;
        if ((seed >> 5) % 8 < 6) @0.8 { strength = 0; } else { strength = seed % 3 + 1; }
        int out;
        if (strength == 0) @0.8 { out = acc + 1; } else { out = acc * strength % 4093; }
        int walk = out / (strength + 2);
        if (strength == 0) @0.8 { satisfied = satisfied + 1; }
        acc = (out + walk) & 33554431;
        i = i + 1;
      }
      return acc + satisfied;
    }
    |}

(* earley-boyer: symbolic rewriting with boxed cons cells escaping only
   through the merge phi. *)
let earley_boyer =
  bench ~name:"earley-boyer" ~args:[| 1600 |]
    ~description:"term rewriter over boxed cons cells"
    {|
    class Cons { int head; int tail_hash; }
    global int rewrites;
    int main(int n) {
      int seed = 71;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 113 + 9) & 32767;
        /* memo-table probe (neutral) */
        int mp = 0;
        while (mp < 3) @0.72 {
          acc = (acc + seed % 677 + mp * 5) & 16777215;
          acc = acc ^ (acc >> 6) % 239;
          mp = mp + 1;
        }
        Cons c;
        if ((seed >> 3) % 4 != 3) @0.75 { c = new Cons(seed & 255, 0); } else { c = new Cons(seed & 63, seed >> 6); }
        int h;
        if (c.tail_hash == 0) @0.75 { h = c.head * 2 + 1; } else { h = c.head * 31 + c.tail_hash; }
        acc = (acc + h % 2011) & 16777215;
        acc = acc + (acc >> 4) % 127;
        acc = (acc ^ seed % 53) & 16777215;
        acc = acc + (acc >> 7) % 117;
        acc = (acc ^ (seed + 9) % 87) & 16777215;
        acc = acc + (acc >> 2) % 63;
        rewrites = rewrites + 1;
        i = i + 1;
      }
      return acc + rewrites;
    }
    |}

(* gameboy: emulator core; flags recomputed through a merge then
   re-tested (CE plus read elimination of the flags global). *)
let gameboy =
  bench ~name:"gameboy" ~args:[| 1800 |]
    ~description:"CPU emulation with flag recomputation"
    {|
    global int flags;
    global int frames;
    int main(int n) {
      int seed = 83;
      int a = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 69 + 37) & 65535;
        /* memory-mapped fetch (neutral) */
        int mf = 0;
        while (mf < 2) @0.63 {
          a = (a + seed % 491 + mf) & 1048575;
          a = a ^ (a >> 3) % 217;
          mf = mf + 1;
        }
        int op = (seed >> 4) & 15;
        if (op % 4 == 0) @0.7 { a = a + 1; flags = 0; } else { a = a - op % 4; flags = 1; }
        if (flags == 0) @0.7 {
          a = a & 255;
        } else {
          a = a & 127;
          if (a == 0) @0.01 { frames = frames + 1; }
        }
        a = a + (a >> 4) % 131;
        a = (a ^ seed % 67) & 1048575;
        i = i + 1;
      }
      return a + frames;
    }
    |}

(* mandreel: compiled-from-C++ numeric kernel; wide integer math with
   nothing for DBDS (flat), one bait for dupalot. *)
let mandreel =
  bench ~name:"mandreel" ~args:[| 2000 |]
    ~description:"flat numeric kernel, one bait"
    {|
    global int iterations;
    int main(int n) {
      int seed = 101;
      int z = 1;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 53 + 79) & 1048575;
        int zr = z & 1023;
        int zi = z >> 10 & 1023;
        int r2 = zr * zr % 4093;
        int i2 = zi * zi % 4093;
        int cross = zr * zi % 2039;
        z = (r2 - i2 + (seed & 255) + cross * 2) & 1048575;
        iterations = iterations + 1;
        if ((seed >> 10) % 128 == 0) @0.008 {
          int bm;
          if ((seed >> 14) % 2 == 0) @0.5 { bm = 0; } else { bm = 6; }
          int b1 = z ^ bm;
          int b2 = b1 * 21 % 433;
          int b3 = b2 + b1 * 9 % 201;
          int b4 = b3 ^ (b2 * 5 + 7) % 107;
          iterations = iterations + b4 % 5;
        }
        i = i + 1;
      }
      return z + iterations;
    }
    |}

(* navier-stokes: stencil indexing; the grid stride merges as phi(32, s)
   feeding div and mod on the hot path — the suite's big winner. *)
let navier_stokes =
  bench ~name:"navier-stokes" ~args:[| 2000 |]
    ~description:"stencil indexing; hot div+mod by phi(32, s)"
    {|
    global int cells;
    int main(int n) {
      int seed = 7;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 201 + 129) & 65535;
        /* velocity diffusion (neutral) */
        int vd = 0;
        while (vd < 3) @0.72 {
          acc = (acc + seed % 463 + vd * 3) & 33554431;
          acc = acc ^ (acc >> 4) % 181;
          vd = vd + 1;
        }
        int stride;
        if ((seed >> 7) % 16 != 0) @0.93 { stride = 32; } else { stride = seed % 7 + 30; }
        int pos = seed & 4095;
        int row = pos / stride;
        int col = pos % stride;
        acc = (acc + row * 64 + col) & 33554431;
        cells = cells + 1;
        i = i + 1;
      }
      return acc + cells;
    }
    |}

(* pdfjs: stream decoding with boxed span descriptors. *)
let pdfjs =
  bench ~name:"pdfjs" ~args:[| 1700 |]
    ~description:"span decoder with boxed descriptors"
    {|
    class Span { int offset; int len; }
    global int decoded;
    int main(int n) {
      int seed = 37;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 149 + 57) & 32767;
        /* huffman-table lookup (neutral) */
        int hl = 0;
        while (hl < 3) @0.72 {
          acc = (acc + seed % 587 + hl * 3) & 16777215;
          acc = acc ^ (acc >> 5) % 263;
          hl = hl + 1;
        }
        Span sp;
        if ((seed >> 4) % 8 < 7) @0.88 { sp = new Span(seed & 1023, 4); } else { sp = new Span(seed & 255, seed % 9 + 1); }
        int end_ = sp.offset + sp.len;
        acc = (acc + end_ * 2 + sp.len / 4) & 16777215;
        acc = acc + (acc >> 5) % 119;
        acc = (acc ^ seed % 41) & 16777215;
        decoded = decoded + 1;
        i = i + 1;
      }
      return acc + decoded;
    }
    |}

(* raytrace: THE dupalot cautionary tale (see module comment).  Two
   alternating bulky shading branches merge into fat tone-mapping tails
   whose first operation folds on one predecessor (benefit ~1 cycle).
   b x p x 256 < c, so DBDS declines; dupalot duplicates both constructs,
   and the duplicated hot code overflows the i-cache. *)
let raytrace =
  bench ~name:"raytrace" ~args:[| 2000 |]
    ~description:"bulky shading tails; dupalot blows the i-cache"
    {|
    global int bounces;
    int main(int n) {
      int seed = 55;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 97 + 43) & 65535;
        /* shading stage 1: two material arms, fat tone-mapping tail */
        int c1;
        int m1;
        if ((seed >> 2) % 16 < 7) @0.45 {
          int ta1 = seed * 3 + 7;
          int ta2 = ta1 ^ (seed >> 2);
          int ta3 = ta2 * 3 % 8191;
          c1 = ta3 & 8191; m1 = 0;
        } else {
          int tb1 = seed * 5 - 7;
          int tb2 = tb1 ^ (seed >> 3);
          int tb3 = tb2 * 7 % 8191;
          c1 = tb3 & 8191; m1 = 1;
        }
        int t1 = c1 ^ m1;
        int t2 = t1 ^ (t1 + 5);
        int t3 = t2 + (t1 >> 1);
        int t4 = t3 + t2 * 11 % 139;
        int t5 = t4 + (t3 >> 3);
        int t6 = t5 ^ (t4 + 5);
        int t7 = t6 + (t5 >> 2);
        int t8 = t7 + t6 * 7 % 79;
        int t9 = t8 + (t7 >> 1);
        int t10 = t9 ^ (t8 + 5);
        int t11 = t10 + (t9 >> 3);
        int t12 = t11 + t10 * 3 % 61;
        int t13 = t12 + (t11 >> 2);
        int t14 = t13 ^ (t12 + 5);
        int t15 = t14 + (t13 >> 1);
        int t16 = t15 + t14 * 11 % 227;
        int t17 = t16 + (t15 >> 3);
        int t18 = t17 ^ (t16 + 5);
        int t19 = t18 + (t17 >> 2);
        int t20 = t19 + t18 * 7 % 101;
        int t21 = t20 + (t19 >> 1);
        int t22 = t21 ^ (t20 + 5);
        int t23 = t22 + (t21 >> 3);
        int t24 = t23 + t22 * 3 % 73;
        int t25 = t24 + (t23 >> 2);
        int t26 = t25 ^ (t24 + 5);
        int t27 = t26 + (t25 >> 1);
        int t28 = t27 + t26 * 11 % 59;
        int t29 = t28 + (t27 >> 3);
        int t30 = t29 ^ (t28 + 5);
        int t31 = t30 + (t29 >> 2);
        int t32 = t31 + t30 * 7 % 173;
        int t33 = t32 + (t31 >> 1);
        int t34 = t33 ^ (t32 + 5);
        int t35 = t34 + (t33 >> 3);
        int t36 = t35 + t34 * 3 % 97;
        int t37 = t36 + (t35 >> 2);
        int t38 = t37 ^ (t36 + 5);
        int t39 = t38 + (t37 >> 1);
        int t40 = t39 + t38 * 11 % 71;
        int t41 = t40 + (t39 >> 3);
        int t42 = t41 ^ (t40 + 5);
        int t43 = t42 + (t41 >> 2);
        int t44 = t43 + t42 * 7 % 53;
        int t45 = t44 + (t43 >> 1);
        int t46 = t45 ^ (t44 + 5);
        int t47 = t46 + (t45 >> 3);
        int t48 = t47 + t46 * 3 % 157;
        acc = (acc + t48) & 16777215;
        /* shading stage 2: two material arms, fat tone-mapping tail */
        int c2;
        int m2;
        if ((seed >> 5) % 16 < 7) @0.45 {
          int ua1 = seed * 7 + 13;
          int ua2 = ua1 ^ (seed >> 3);
          int ua3 = ua2 * 7 % 8191;
          c2 = ua3 & 8191; m2 = 0;
        } else {
          int ub1 = seed * 9 - 13;
          int ub2 = ub1 ^ (seed >> 4);
          int ub3 = ub2 * 11 % 8191;
          c2 = ub3 & 8191; m2 = 2;
        }
        int u1 = c2 ^ m2;
        int u2 = u1 ^ (u1 + 5);
        int u3 = u2 + (u1 >> 1);
        int u4 = u3 + u2 * 11 % 137;
        int u5 = u4 + (u3 >> 3);
        int u6 = u5 ^ (u4 + 5);
        int u7 = u6 + (u5 >> 2);
        int u8 = u7 + u6 * 7 % 73;
        int u9 = u8 + (u7 >> 1);
        int u10 = u9 ^ (u8 + 5);
        int u11 = u10 + (u9 >> 3);
        int u12 = u11 + u10 * 3 % 59;
        int u13 = u12 + (u11 >> 2);
        int u14 = u13 ^ (u12 + 5);
        int u15 = u14 + (u13 >> 1);
        int u16 = u15 + u14 * 11 % 229;
        int u17 = u16 + (u15 >> 3);
        int u18 = u17 ^ (u16 + 5);
        int u19 = u18 + (u17 >> 2);
        int u20 = u19 + u18 * 7 % 109;
        int u21 = u20 + (u19 >> 1);
        int u22 = u21 ^ (u20 + 5);
        int u23 = u22 + (u21 >> 3);
        int u24 = u23 + u22 * 3 % 71;
        int u25 = u24 + (u23 >> 2);
        int u26 = u25 ^ (u24 + 5);
        int u27 = u26 + (u25 >> 1);
        int u28 = u27 + u26 * 11 % 53;
        int u29 = u28 + (u27 >> 3);
        int u30 = u29 ^ (u28 + 5);
        int u31 = u30 + (u29 >> 2);
        int u32 = u31 + u30 * 7 % 181;
        int u33 = u32 + (u31 >> 1);
        int u34 = u33 ^ (u32 + 5);
        int u35 = u34 + (u33 >> 3);
        int u36 = u35 + u34 * 3 % 103;
        int u37 = u36 + (u35 >> 2);
        int u38 = u37 ^ (u36 + 5);
        int u39 = u38 + (u37 >> 1);
        int u40 = u39 + u38 * 11 % 67;
        int u41 = u40 + (u39 >> 3);
        int u42 = u41 ^ (u40 + 5);
        int u43 = u42 + (u41 >> 2);
        int u44 = u43 + u42 * 7 % 47;
        int u45 = u44 + (u43 >> 1);
        int u46 = u45 ^ (u44 + 5);
        int u47 = u46 + (u45 >> 3);
        int u48 = u47 + u46 * 3 % 151;
        acc = (acc + u48) & 16777215;
        /* shading stage 3: two material arms, fat tone-mapping tail */
        int c3;
        int m3;
        if ((seed >> 8) % 16 < 7) @0.45 {
          int va1 = seed * 11 + 19;
          int va2 = va1 ^ (seed >> 4);
          int va3 = va2 * 11 % 8191;
          c3 = va3 & 8191; m3 = 0;
        } else {
          int vb1 = seed * 13 - 19;
          int vb2 = vb1 ^ (seed >> 5);
          int vb3 = vb2 * 15 % 8191;
          c3 = vb3 & 8191; m3 = 3;
        }
        int v1 = c3 ^ m3;
        int v2 = v1 ^ (v1 + 5);
        int v3 = v2 + (v1 >> 1);
        int v4 = v3 + v2 * 11 % 131;
        int v5 = v4 + (v3 >> 3);
        int v6 = v5 ^ (v4 + 5);
        int v7 = v6 + (v5 >> 2);
        int v8 = v7 + v6 * 7 % 71;
        int v9 = v8 + (v7 >> 1);
        int v10 = v9 ^ (v8 + 5);
        int v11 = v10 + (v9 >> 3);
        int v12 = v11 + v10 * 3 % 51;
        int v13 = v12 + (v11 >> 2);
        int v14 = v13 ^ (v12 + 5);
        int v15 = v14 + (v13 >> 1);
        int v16 = v15 + v14 * 11 % 251;
        int v17 = v16 + (v15 >> 3);
        int v18 = v17 ^ (v16 + 5);
        int v19 = v18 + (v17 >> 2);
        int v20 = v19 + v18 * 7 % 113;
        int v21 = v20 + (v19 >> 1);
        int v22 = v21 ^ (v20 + 5);
        int v23 = v22 + (v21 >> 3);
        int v24 = v23 + v22 * 3 % 69;
        int v25 = v24 + (v23 >> 2);
        int v26 = v25 ^ (v24 + 5);
        int v27 = v26 + (v25 >> 1);
        int v28 = v27 + v26 * 11 % 49;
        int v29 = v28 + (v27 >> 3);
        int v30 = v29 ^ (v28 + 5);
        int v31 = v30 + (v29 >> 2);
        int v32 = v31 + v30 * 7 % 167;
        int v33 = v32 + (v31 >> 1);
        int v34 = v33 ^ (v32 + 5);
        int v35 = v34 + (v33 >> 3);
        int v36 = v35 + v34 * 3 % 107;
        int v37 = v36 + (v35 >> 2);
        int v38 = v37 ^ (v36 + 5);
        int v39 = v38 + (v37 >> 1);
        int v40 = v39 + v38 * 11 % 63;
        int v41 = v40 + (v39 >> 3);
        int v42 = v41 ^ (v40 + 5);
        int v43 = v42 + (v41 >> 2);
        int v44 = v43 + v42 * 7 % 45;
        int v45 = v44 + (v43 >> 1);
        int v46 = v45 ^ (v44 + 5);
        int v47 = v46 + (v45 >> 3);
        int v48 = v47 + v46 * 3 % 149;
        acc = (acc + v48) & 16777215;
        /* shading stage 4: two material arms, fat tone-mapping tail */
        int c4;
        int m4;
        if ((seed >> 11) % 16 < 7) @0.45 {
          int wa1 = seed * 13 + 23;
          int wa2 = wa1 ^ (seed >> 5);
          int wa3 = wa2 * 13 % 8191;
          c4 = wa3 & 8191; m4 = 0;
        } else {
          int wb1 = seed * 15 - 23;
          int wb2 = wb1 ^ (seed >> 6);
          int wb3 = wb2 * 17 % 8191;
          c4 = wb3 & 8191; m4 = 4;
        }
        int w1 = c4 ^ m4;
        int w2 = w1 ^ (w1 + 5);
        int w3 = w2 + (w1 >> 1);
        int w4 = w3 + w2 * 11 % 127;
        int w5 = w4 + (w3 >> 3);
        int w6 = w5 ^ (w4 + 5);
        int w7 = w6 + (w5 >> 2);
        int w8 = w7 + w6 * 7 % 77;
        int w9 = w8 + (w7 >> 1);
        int w10 = w9 ^ (w8 + 5);
        int w11 = w10 + (w9 >> 3);
        int w12 = w11 + w10 * 3 % 55;
        int w13 = w12 + (w11 >> 2);
        int w14 = w13 ^ (w12 + 5);
        int w15 = w14 + (w13 >> 1);
        int w16 = w15 + w14 * 11 % 241;
        int w17 = w16 + (w15 >> 3);
        int w18 = w17 ^ (w16 + 5);
        int w19 = w18 + (w17 >> 2);
        int w20 = w19 + w18 * 7 % 117;
        int w21 = w20 + (w19 >> 1);
        int w22 = w21 ^ (w20 + 5);
        int w23 = w22 + (w21 >> 3);
        int w24 = w23 + w22 * 3 % 75;
        int w25 = w24 + (w23 >> 2);
        int w26 = w25 ^ (w24 + 5);
        int w27 = w26 + (w25 >> 1);
        int w28 = w27 + w26 * 11 % 51;
        int w29 = w28 + (w27 >> 3);
        int w30 = w29 ^ (w28 + 5);
        int w31 = w30 + (w29 >> 2);
        int w32 = w31 + w30 * 7 % 163;
        int w33 = w32 + (w31 >> 1);
        int w34 = w33 ^ (w32 + 5);
        int w35 = w34 + (w33 >> 3);
        int w36 = w35 + w34 * 3 % 111;
        int w37 = w36 + (w35 >> 2);
        int w38 = w37 ^ (w36 + 5);
        int w39 = w38 + (w37 >> 1);
        int w40 = w39 + w38 * 11 % 69;
        int w41 = w40 + (w39 >> 3);
        int w42 = w41 ^ (w40 + 5);
        int w43 = w42 + (w41 >> 2);
        int w44 = w43 + w42 * 7 % 47;
        int w45 = w44 + (w43 >> 1);
        int w46 = w45 ^ (w44 + 5);
        int w47 = w46 + (w45 >> 3);
        int w48 = w47 + w46 * 3 % 143;
        acc = (acc + w48) & 16777215;
        bounces = bounces + 1;
        i = i + 1;
      }
      return acc + bounces;
    }
    |}

(* regexp: NFA state machine; transition merges carry no optimizable
   tail (flat), one bait. *)
let regexp =
  bench ~name:"regexp" ~args:[| 2000 |]
    ~description:"state machine transitions, flat, one bait"
    {|
    global int matches;
    int main(int n) {
      int seed = 63;
      int state = 0;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 91 + 17) & 32767;
        int ch = (seed >> 5) & 255;
        int next;
        if (state == 0) @0.5 {
          if (ch % 4 == 0) @0.25 { next = 1; } else { next = 0; }
        } else {
          if (ch % 4 == 3) @0.25 { next = 2; } else { next = state; }
        }
        if (next == 2) @0.1 { matches = matches + 1; next = 0; }
        state = next;
        acc = (acc + ch % 211) & 16777215;
        if ((seed >> 8) % 112 == 0) @0.009 {
          int bm;
          if ((seed >> 12) % 2 == 0) @0.5 { bm = 0; } else { bm = 3; }
          int b1 = acc ^ bm;
          int b2 = b1 * 25 % 389;
          int b3 = b2 + b1 * 11 % 193;
          int b4 = b3 ^ (b2 * 7 + 1) % 99;
          matches = matches + b4 % 7;
        }
        i = i + 1;
      }
      return state + acc + matches;
    }
    |}

(* richards: OS task scheduler; the picked task is a boxed record and
   the hot idle task unboxes after duplication. *)
let richards =
  bench ~name:"richards" ~args:[| 1800 |]
    ~description:"task scheduler with boxed task records"
    {|
    class Task { int kind; int work; }
    global int scheduled;
    int main(int n) {
      int seed = 47;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 139 + 61) & 32767;
        /* queue rotation (neutral) */
        int qr = 0;
        while (qr < 3) @0.72 {
          acc = (acc + seed % 449 + qr) & 16777215;
          acc = acc ^ (acc >> 4) % 179;
          qr = qr + 1;
        }
        Task t;
        if ((seed >> 6) % 8 < 6) @0.8 { t = new Task(0, 1); } else { t = new Task(seed % 3 + 1, seed & 31); }
        int k = t.kind;
        int r;
        if (k == 0) @0.8 { r = t.work; } else { r = t.work * k + 2; }
        acc = (acc + r) & 16777215;
        acc = acc + (acc >> 6) % 109;
        acc = (acc ^ seed % 47) & 16777215;
        acc = acc + (acc >> 3) % 101;
        acc = (acc ^ (seed + 11) % 77) & 16777215;
        acc = acc + (acc >> 9) % 57;
        scheduled = scheduled + 1;
        i = i + 1;
      }
      return acc + scheduled;
    }
    |}

(* splay: binary-tree insert/lookup — recursion and pointer chasing
   dominate; flat for duplication. *)
let splay =
  bench ~name:"splay" ~args:[| 420 |]
    ~description:"binary tree insert/lookup, pointer-chasing"
    {|
    class N { int key; N left; N right; }
    global int depth_sum;
    N insert(N t, int k) {
      if (t == null) @0.2 { return new N(k, null, null); }
      if (k < t.key) @0.5 {
        return new N(t.key, insert(t.left, k), t.right);
      }
      return new N(t.key, t.left, insert(t.right, k));
    }
    int lookup(N t, int k) {
      int d = 0;
      N cur = t;
      while (cur != null) @0.8 {
        if (cur.key == k) @0.15 { depth_sum = depth_sum + d; return d; }
        if (k < cur.key) @0.5 { cur = cur.left; } else { cur = cur.right; }
        d = d + 1;
      }
      return d;
    }
    int main(int n) {
      N root = null;
      int seed = 1;
      int i = 0;
      while (i < n) @0.99 {
        seed = (seed * 167 + 19) & 2047;
        root = insert(root, seed);
        i = i + 1;
      }
      int acc = 0;
      int q = 0;
      while (q < n) @0.99 {
        acc = acc + lookup(root, q * 31 & 2047);
        q = q + 1;
      }
      return acc + depth_sum;
    }
    |}

(* typescript: parser with a warm token merge (precedence phi is 4 on
   the hot path) and a deep cold error ladder. *)
let typescript =
  bench ~name:"typescript" ~args:[| 1800 |]
    ~description:"parser with warm precedence merge, cold error ladder"
    {|
    global int errors;
    global int nodes;
    int main(int n) {
      int seed = 121;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 157 + 83) & 32767;
        /* scanner (neutral) */
        int sc = 0;
        while (sc < 2) @0.63 {
          acc = (acc + seed % 509 + sc * 5) & 33554431;
          acc = acc ^ (acc >> 3) % 139;
          sc = sc + 1;
        }
        int prec;
        if ((seed >> 6) % 8 != 0) @0.9 { prec = 4; } else { prec = seed % 5 + 1; }
        int node = (seed & 1023) * prec + (seed & 1023) / prec;
        acc = (acc + node % 4099) & 33554431;
        nodes = nodes + 1;
        if (node % 4096 == 17) @0.001 {
          if (seed % 2 == 0) { errors = errors + 1; } else { errors = errors + 2; }
        }
        i = i + 1;
      }
      return acc + nodes + errors;
    }
    |}

(* zlib: bit-twiddling inflate loop — already shift/mask-optimal (flat),
   one bait. *)
let zlib =
  bench ~name:"zlib" ~args:[| 2200 |]
    ~description:"bit-level decoder, already optimal, one bait"
    {|
    global int windows;
    int main(int n) {
      int seed = 89;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 205 + 111) & 1048575;
        int sym = seed & 511;
        int extra = seed >> 9 & 7;
        int len = (sym >> 3) + (extra << 2);
        int dist = (sym & 7) * 33;
        acc = (acc + len * 8 + dist + seed % 311) & 33554431;
        windows = windows + 1;
        if ((seed >> 12) % 104 == 0) @0.01 {
          int bm;
          if ((seed >> 16) % 2 == 0) @0.5 { bm = 0; } else { bm = 7; }
          int b1 = acc + bm;
          int b2 = b1 * 27 % 373;
          int b3 = b2 ^ (b1 * 13 + 3) % 191;
          int b4 = b3 + b2 * 5 % 101;
          windows = windows + b4 % 9;
        }
        i = i + 1;
      }
      return acc + windows;
    }
    |}

let suite =
  {
    suite_name = "JS Octane";
    figure = "Figure 8";
    benchmarks =
      [
        box2d; code_load; deltablue; earley_boyer; gameboy; mandreel;
        navier_stokes; pdfjs; raytrace; regexp; richards; splay; typescript;
        zlib;
      ];
  }
