(** Benchmark suite definitions.

    Each benchmark is a mini-language source program plus the interpreter
    arguments that drive it.  The four suites mirror the paper's
    evaluation sets (Java DaCapo, Scala DaCapo, Java/Scala micro
    benchmarks, JavaScript Octane): we cannot run the real suites on a
    simulated substrate, so each synthetic program is engineered around
    the duplication-opportunity mix the paper attributes to its suite —
    see DESIGN.md §2 for the substitution argument. *)

type benchmark = {
  name : string;
  description : string;
  source : string;
  args : int array;
  builder : (unit -> Ir.Program.t) option;
      (** direct-IR benchmarks (the adversarial workload lab): shapes the
          structured mini-language cannot express, e.g. irreducible
          regions.  [None] = compile [source] through the frontend. *)
}

type t = {
  suite_name : string;
  figure : string;  (** which paper figure this suite reproduces *)
  benchmarks : benchmark list;
}

val find_benchmark : t -> string -> benchmark option

val bench :
  name:string -> description:string -> args:int array -> string -> benchmark

(** A direct-IR benchmark.  The builder must return a {e fresh} program
    per call: optimization mutates graphs in place. *)
val bench_ir :
  name:string ->
  description:string ->
  args:int array ->
  (unit -> Ir.Program.t) ->
  benchmark

(** Compile a benchmark: the frontend for source programs, the builder
    for direct-IR ones. *)
val compile : benchmark -> Ir.Program.t
