(** The Scala-DaCapo-like suite (reproduces Figure 6).

    Stadler et al. (cited by the paper) characterize Scala workloads by
    heavier type-test chains and pervasive auto-boxing; the paper measures
    a +3.15% geomean for DBDS (individual wins up to ~15%) with dupalot
    slightly behind on peak but ~2.5x worse on compile time and ~4x on
    code size.  Each program pairs a boxed-value or tag-dispatch
    opportunity with neutral "business logic" cycles and cold bait
    merges. *)

open Suite

(* actors: mailbox round-robin; messages are boxed and unboxed around a
   merge — duplication unboxes the dominant message kind. *)
let actors =
  bench ~name:"actors" ~args:[| 1800 |]
    ~description:"mailbox dispatch with boxed messages"
    {|
    class Msg { int kind; int body; }
    global int delivered;
    int main(int n) {
      int seed = 11;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 97 + 3) & 65535;
        /* routing-table hash (neutral) */
        int route = seed % 577 + seed % 61;
        route = route ^ (route >> 3) % 127;
        route = route + seed % 409;
        route = route ^ (seed >> 9) % 233;
        acc = (acc + route + seed % 149) & 16777215;
        /* boxed message through the merge */
        Msg m;
        if (seed % 16 < 14) @0.87 { m = new Msg(1, seed & 255); } else { m = new Msg(2, seed & 15); }
        acc = (acc + seed % 193) & 16777215;
        acc = acc ^ (acc >> 3) % 61;
        acc = acc + (acc >> 6) % 107;
        acc = (acc ^ seed % 59) & 16777215;
        int k = m.kind;
        int r;
        if (k == 1) @0.87 { r = m.body + 7; } else { r = m.body * 3; }
        acc = (acc + r + seed % 173) & 16777215;
        delivered = delivered + 1;
        if (seed % 176 == 0) @0.006 {
          int b;
          if (seed % 352 == 0) @0.5 { b = 0; } else { b = 3; }
          int z1 = acc ^ b;
          int z2 = z1 * 21 % 269;
          int z3 = z2 + z1 * 13 % 151;
          int z4 = z3 ^ (z2 * 5 + 3) % 79;
          delivered = delivered + z4 % 9;
        }
        i = i + 1;
      }
      return acc + delivered;
    }
    |}

(* apparat: bytecode rewriting — the operand stride merges as phi(4, w);
   the hot path's div and mod both strength-reduce (the suite's biggest
   winner, like the paper's ~15% outliers). *)
let apparat =
  bench ~name:"apparat" ~args:[| 1500 |]
    ~description:"bytecode rewriter; hot div+mod by phi(4, w)"
    {|
    global int rewritten;
    int main(int n) {
      int seed = 23;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 51 + 13) & 65535;
        /* instruction decode (neutral) */
        int op = seed % 199 + (seed >> 7) % 43;
        acc = (acc + op) & 33554431;
        /* operand stride: 4 except for wide instructions */
        int stride;
        if (seed % 32 < 30) @0.92 { stride = 4; } else { stride = seed % 13 + 5; }
        int slot = seed / stride;
        int pad = seed % 7;
        acc = (acc + slot % 1021 + pad * 16) & 33554431;
        rewritten = rewritten + 1;
        if (seed % 208 == 0) @0.005 {
          int b;
          if (seed % 416 == 0) @0.5 { b = 0; } else { b = 6; }
          int z1 = acc + b;
          int z2 = z1 * 17 % 431;
          int z3 = z2 ^ (z1 * 7 + 11) % 223;
          int z4 = z3 + z2 * 3 % 117;
          rewritten = rewritten + z4 % 13;
        }
        i = i + 1;
      }
      return acc + rewritten;
    }
    |}

(* factorie: factor-graph scoring; weights are boxed per factor and
   escape only through the merge phi. *)
let factorie =
  bench ~name:"factorie" ~args:[| 1400 |]
    ~description:"factor scoring with boxed weights"
    {|
    class Weight { int scale; int bias; }
    global int updates;
    int main(int n) {
      int seed = 77;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 41 + 29) & 32767;
        /* feature extraction (neutral) */
        int f1 = seed % 883;
        int f2 = (seed >> 5) % 419;
        int fi = 0;
        while (fi < 3) @0.72 {
          acc = (acc + f1 % 211 + fi) & 16777215;
          acc = acc ^ (acc >> 2) % 97;
          fi = fi + 1;
        }
        acc = (acc + f1 + f2 * 3) & 16777215;
        /* boxed weight through the merge */
        Weight w;
        if (seed % 8 != 0) @0.88 { w = new Weight(2, 1); } else { w = new Weight(seed % 5 + 1, seed & 7); }
        acc = (acc + f2 % 139) & 16777215;
        acc = acc ^ (acc >> 4) % 47;
        int s = f1 * w.scale + w.bias;
        acc = (acc + s % 4093) & 16777215;
        if (s > 60000) @0.02 { updates = updates + 1; }
        i = i + 1;
      }
      return acc + updates;
    }
    |}

(* kiama: rewriting library — strategy tags re-tested after the
   selection merge; modest win. *)
let kiama =
  bench ~name:"kiama" ~args:[| 1600 |]
    ~description:"strategy rewriter with re-tested tags"
    {|
    global int rewrites;
    int main(int n) {
      int seed = 31;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 77 + 7) & 65535;
        /* term traversal (neutral) */
        int t = 0;
        while (t < 5) @0.8 {
          acc = (acc + seed % 709 + t) & 33554431;
          acc = acc ^ (acc >> 5) % 271;
          t = t + 1;
        }
        /* strategy selection, then a re-test of the selected tag */
        int strat;
        if (seed % 4 != 3) @0.7 { strat = 0; } else { strat = seed % 3 + 1; }
        int out;
        if (strat == 0) @0.7 { out = acc + 1; } else { out = acc - strat; }
        if (strat == 0) @0.7 { rewrites = rewrites + 1; }
        acc = out & 33554431;
        i = i + 1;
      }
      return acc + rewrites;
    }
    |}

(* scalac: symbol-table resolution — owner-chain walk with a re-read
   hash field after a merge (read elimination). *)
let scalac =
  bench ~name:"scalac" ~args:[| 350 |]
    ~description:"symbol table walk with re-read hash fields"
    {|
    class Sym { int hash; Sym owner; }
    global int resolved;
    int main(int n) {
      int acc = 0;
      int i = 0;
      while (i < n) @0.99 {
        /* build a fresh owner chain (neutral allocation churn) */
        Sym cur = null;
        int j = 0;
        while (j < 8) @0.85 {
          cur = new Sym((i * 31 + j * 7) & 8191, cur);
          j = j + 1;
        }
        /* resolve: hash re-read after the parity merge */
        int h = 0;
        Sym s = cur;
        while (s != null) @0.88 {
          int k = s.hash;
          h = (h + k % 487) & 16777215;
          h = h ^ (h >> 6) % 269;
          if (k % 2 == 0) @0.5 { h = h + k; } else { h = h ^ k; }
          h = (h + s.hash % 64) & 16777215;
          s = s.owner;
        }
        resolved = resolved + 1;
        acc = (acc + h % 9973) & 16777215;
        i = i + 1;
      }
      return acc + resolved;
    }
    |}

(* scaladoc: comment formatter — only cold error merges; flat for DBDS,
   two baits for dupalot. *)
let scaladoc =
  bench ~name:"scaladoc" ~args:[| 1700 |]
    ~description:"formatter with cold error merges only"
    {|
    global int warnings;
    int main(int n) {
      int seed = 13;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 39 + 17) & 65535;
        int width = seed * 29 % 173;
        acc = (acc + width * 3 / 7 + seed % 239) & 16777215;
        if (seed % 112 == 0) @0.009 {
          int m;
          if (seed % 224 == 0) @0.5 { m = 0; } else { m = 2; }
          int z1 = acc ^ m;
          int z2 = z1 * 23 % 503;
          int z3 = z2 + z1 * 19 % 257;
          int z4 = z3 ^ (z2 * 3 + 7) % 129;
          warnings = warnings + z4 % 7;
        }
        if (seed % 240 == 0) @0.004 {
          int q;
          if (seed % 480 == 0) @0.5 { q = 0; } else { q = 9; }
          int y1 = acc + q;
          int y2 = y1 * 37 % 347;
          int y3 = y2 ^ (y1 * 11 + 5) % 179;
          int y4 = y3 + y2 * 7 % 89;
          warnings = warnings + y4 % 5;
        }
        i = i + 1;
      }
      return acc + warnings;
    }
    |}

(* scalap: classfile parsing — the hot constant-pool tag folds the
   entry-size computation after duplication. *)
let scalap =
  bench ~name:"scalap" ~args:[| 1700 |]
    ~description:"constant-pool parser with a hot tag"
    {|
    global int entries;
    int main(int n) {
      int seed = 19;
      int total = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 67 + 41) & 65535;
        /* signature checksum (neutral) */
        total = (total + seed % 941 + seed % 89) & 33554431;
        int tag;
        if (seed % 16 < 13) @0.8 { tag = 1; } else { tag = seed % 9; }
        int size;
        if (tag == 1) @0.8 { size = 4; } else {
          if (tag == 2) @0.5 { size = 8; } else { size = tag % 5 + 2; }
        }
        total = (total + size * 2 + size / 4) & 33554431;
        entries = entries + 1;
        i = i + 1;
      }
      return total + entries;
    }
    |}

(* scalariform: pretty printer with boxed indentation contexts. *)
let scalariform =
  bench ~name:"scalariform" ~args:[| 1500 |]
    ~description:"pretty printer, boxed indentation contexts"
    {|
    class Indent { int level; int tabstop; }
    global int emitted;
    int main(int n) {
      int seed = 3;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 173 + 9) & 32767;
        /* token measurement (neutral) */
        int len = seed % 653 + (seed >> 4) % 47;
        len = len + seed % 331;
        len = len ^ (len >> 2) % 173;
        acc = (acc + len) & 16777215;
        /* boxed layout context through the merge */
        Indent ind;
        if (seed % 32 != 0) @0.95 { ind = new Indent(2, 8); } else { ind = new Indent(seed % 6, seed % 4 + 2); }
        acc = (acc + len % 83) & 16777215;
        acc = acc ^ (acc >> 5) % 29;
        int col = ind.level * ind.tabstop + seed % 40;
        acc = (acc + col) & 16777215;
        emitted = emitted + 1;
        if (seed % 144 == 0) @0.007 {
          int b;
          if (seed % 288 == 0) @0.5 { b = 0; } else { b = 4; }
          int z1 = acc ^ b;
          int z2 = z1 * 31 % 367;
          int z3 = z2 + z1 * 9 % 191;
          int z4 = z3 ^ (z2 * 5 + 1) % 101;
          emitted = emitted + z4 % 11;
        }
        i = i + 1;
      }
      return acc + emitted;
    }
    |}

(* scalatest: assertion engine; the passing path folds the severity
   computation after duplication. *)
let scalatest =
  bench ~name:"scalatest" ~args:[| 1600 |]
    ~description:"assertion engine, hot passing path folds"
    {|
    global int failures;
    int main(int n) {
      int seed = 29;
      int passes = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 57 + 23) & 65535;
        /* fixture setup (neutral) */
        int v = (seed % 1023 + seed % 127) & 1023;
        int fx = 0;
        while (fx < 3) @0.72 {
          passes = (passes + v % 421 + fx) & 33554431;
          fx = fx + 1;
        }
        passes = (passes + v % 509) & 33554431;
        int w;
        if (seed % 64 < 62) @0.97 { w = v; } else { w = v + seed % 5 + 1; }
        int delta;
        if (v == w) @0.97 { delta = 0; } else { delta = v - w; failures = failures + 1; }
        int severity = delta * delta + delta * 3;
        passes = (passes + severity + 1) & 33554431;
        i = i + 1;
      }
      return passes + failures;
    }
    |}

(* scalaxb: XML binding — boxed attribute pairs feeding two field reads
   after the merge. *)
let scalaxb =
  bench ~name:"scalaxb" ~args:[| 1500 |]
    ~description:"XML binder with boxed attribute pairs"
    {|
    class Attr { int ns; int hash; }
    global int bound;
    int main(int n) {
      int seed = 43;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 87 + 77) & 32767;
        /* entity decode (neutral) */
        acc = (acc + seed % 797 + (seed >> 6) % 53) & 16777215;
        Attr a;
        if (seed % 8 < 7) @0.87 { a = new Attr(0, seed & 511); } else { a = new Attr(seed % 3 + 1, seed & 127); }
        acc = (acc + seed % 101) & 16777215;
        acc = acc ^ (acc >> 7) % 37;
        acc = acc + (acc >> 5) % 113;
        acc = (acc ^ seed % 43) & 16777215;
        int h;
        if (a.ns == 0) @0.87 { h = a.hash * 2; } else { h = a.hash * 31 + a.ns; }
        acc = (acc + h % 2039) & 16777215;
        bound = bound + 1;
        i = i + 1;
      }
      return acc + bound;
    }
    |}

(* specs: behaviour specs; two warm chained merges with tiny benefit and
   chunky tails — DBDS takes one, dupalot takes everything. *)
let specs =
  bench ~name:"specs" ~args:[| 1500 |]
    ~description:"spec runner with marginal warm merges"
    {|
    global int examples;
    int main(int n) {
      int seed = 53;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 49 + 19) & 65535;
        /* example bookkeeping (neutral) */
        acc = (acc + seed % 617 + seed % 71) & 33554431;
        int setup;
        if (seed % 4 < 3) @0.75 { setup = 1; } else { setup = seed % 6 + 1; }
        int body = (seed & 1023) * setup + seed % 9;
        acc = (acc + body % 3067) & 33554431;
        examples = examples + 1;
        if (seed % 192 == 0) @0.005 {
          int b;
          if (seed % 384 == 0) @0.5 { b = 0; } else { b = 7; }
          int z1 = acc ^ b;
          int z2 = z1 * 27 % 311;
          int z3 = z2 + z1 * 17 % 167;
          int z4 = z3 ^ (z2 * 7 + 13) % 83;
          examples = examples + z4 % 5;
        }
        i = i + 1;
      }
      return acc + examples;
    }
    |}

(* tmt: topic modelling — the sampling normalizer merges as phi(16, z);
   the hot division becomes a shift. *)
let tmt =
  bench ~name:"tmt" ~args:[| 1400 |]
    ~description:"topic sampler; normalizer phi is 16 on the hot path"
    {|
    global int samples;
    int main(int n) {
      int seed = 61;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 119 + 2) & 65535;
        /* word-topic counts (neutral) */
        int w = seed & 8191;
        acc = (acc + w % 739 + (w >> 3) % 97) & 33554431;
        if ((seed >> 8) % 4 == 0) @0.25 {
          int norm;
          if ((seed >> 6) % 16 != 15) @0.9 { norm = 16; } else { norm = w % 23 + 17; }
          int p = w * w % 9973;
          acc = (acc + p / norm) & 33554431;
        }
        samples = samples + 1;
        i = i + 1;
      }
      return acc + samples;
    }
    |}

let suite =
  {
    suite_name = "Scala DaCapo";
    figure = "Figure 6";
    benchmarks =
      [
        actors; apparat; factorie; kiama; scalac; scaladoc; scalap;
        scalariform; scalatest; scalaxb; specs; tmt;
      ];
  }
