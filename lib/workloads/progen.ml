(** Random program generator for differential testing.

    Generates well-typed source programs that terminate by construction:
    loops only use the bounded-counter pattern, and calls only target
    previously generated helpers (no recursion).  Determinism comes from
    the seed, so failures reproduce.

    The generated shapes are biased toward what DBDS cares about: merges
    carrying phis (if/else assigning the same variable, short-circuit
    conditions), constants flowing into one side of a merge, field
    accesses on objects that may or may not escape, and global
    loads/stores around calls. *)

type ctx = {
  rng : Random.State.t;
  buf : Buffer.t;
  mutable indent : int;
  mutable int_vars : string list;
  mutable obj_vars : string list;
  mutable fresh : int;
  helpers : string list;  (** callable (already fully generated) helpers *)
}

let rnd ctx n = Random.State.int ctx.rng n
let chance ctx p = Random.State.float ctx.rng 1.0 < p

let line ctx fmt =
  Printf.ksprintf
    (fun s ->
      Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ');
      Buffer.add_string ctx.buf s;
      Buffer.add_char ctx.buf '\n')
    fmt

let fresh ctx prefix =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "%s%d" prefix ctx.fresh

let pick ctx = function
  | [] -> None
  | l -> Some (List.nth l (rnd ctx (List.length l)))

(* ---- expressions ---- *)

let rec int_expr ctx depth =
  if depth <= 0 || chance ctx 0.35 then leaf ctx
  else
    match rnd ctx 8 with
    | 0 -> Printf.sprintf "(%s + %s)" (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 1 -> Printf.sprintf "(%s - %s)" (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 2 -> Printf.sprintf "(%s * %s)" (int_expr ctx (depth - 1)) (leaf ctx)
    | 3 -> Printf.sprintf "(%s / %s)" (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 4 -> Printf.sprintf "(%s %% %s)" (int_expr ctx (depth - 1)) (int_expr ctx (depth - 1))
    | 5 -> Printf.sprintf "(%s ^ %s)" (int_expr ctx (depth - 1)) (leaf ctx)
    | 6 -> (
        match pick ctx ctx.obj_vars with
        | Some o when chance ctx 0.8 ->
            Printf.sprintf "(%s.%s + %s)" o
              (if chance ctx 0.5 then "a" else "b")
              (leaf ctx)
        | _ -> Printf.sprintf "(%s >> %d)" (int_expr ctx (depth - 1)) (1 + rnd ctx 3))
    | _ -> (
        match pick ctx ctx.helpers with
        | Some h when chance ctx 0.6 ->
            Printf.sprintf "%s(%s, %s)" h (int_expr ctx (depth - 1)) (leaf ctx)
        | _ -> leaf ctx)

and leaf ctx =
  match rnd ctx 4 with
  | 0 -> string_of_int (rnd ctx 64 - 16)
  | 1 | 2 -> (
      match pick ctx ctx.int_vars with
      | Some v -> v
      | None -> string_of_int (rnd ctx 8))
  | _ ->
      (* powers of two feed strength reduction *)
      string_of_int (1 lsl rnd ctx 5)

let rec bool_expr ctx depth =
  if depth <= 0 || chance ctx 0.5 then
    Printf.sprintf "%s %s %s" (int_expr ctx 1)
      (List.nth [ "<"; "<="; ">"; ">="; "=="; "!=" ] (rnd ctx 6))
      (int_expr ctx 1)
  else
    match rnd ctx 3 with
    | 0 -> Printf.sprintf "(%s && %s)" (bool_expr ctx (depth - 1)) (bool_expr ctx (depth - 1))
    | 1 -> Printf.sprintf "(%s || %s)" (bool_expr ctx (depth - 1)) (bool_expr ctx (depth - 1))
    | _ -> Printf.sprintf "!(%s)" (bool_expr ctx (depth - 1))

let prob_annot ctx =
  if chance ctx 0.5 then
    Printf.sprintf " @0.%d" (1 + rnd ctx 9)
  else ""

(* ---- statements ---- *)

let rec stmts ctx depth budget =
  let n = 2 + rnd ctx (max 1 (2 * budget)) in
  for _ = 1 to n do
    stmt ctx depth
  done

and branch_body ctx depth =
  let saved_int = ctx.int_vars and saved_obj = ctx.obj_vars in
  ctx.indent <- ctx.indent + 1;
  stmts ctx (depth - 1) 2;
  (* Phi pressure: re-assign a variable visible after the merge. *)
  (match pick ctx saved_int with
  | Some v when chance ctx 0.7 -> line ctx "%s = %s;" v (int_expr ctx 1)
  | _ -> ());
  if chance ctx 0.12 then line ctx "return %s;" (int_expr ctx 1);
  ctx.indent <- ctx.indent - 1;
  ctx.int_vars <- saved_int;
  ctx.obj_vars <- saved_obj

and stmt ctx depth =
  match rnd ctx 12 with
  | 0 | 1 ->
      let v = fresh ctx "t" in
      line ctx "int %s = %s;" v (int_expr ctx 2);
      ctx.int_vars <- v :: ctx.int_vars
  | 2 -> (
      match pick ctx ctx.int_vars with
      | Some v -> line ctx "%s = %s;" v (int_expr ctx 2)
      | None ->
          let v = fresh ctx "t" in
          line ctx "int %s = %s;" v (int_expr ctx 2);
          ctx.int_vars <- v :: ctx.int_vars)
  | 3 | 4 | 5 when depth > 0 ->
      (* if/else assigning the same variables: guaranteed phis. *)
      line ctx "if (%s)%s {" (bool_expr ctx 1) (prob_annot ctx);
      branch_body ctx depth;
      if chance ctx 0.85 then begin
        line ctx "} else {";
        branch_body ctx depth
      end;
      line ctx "}"
  | 6 when depth > 0 ->
      (* bounded loop *)
      let i = fresh ctx "i" in
      let saved_int = ctx.int_vars and saved_obj = ctx.obj_vars in
      line ctx "int %s = 0;" i;
      line ctx "while (%s < %d)%s {" i (2 + rnd ctx 6) (prob_annot ctx);
      ctx.indent <- ctx.indent + 1;
      stmts ctx (depth - 1) 2;
      line ctx "%s = %s + 1;" i i;
      ctx.indent <- ctx.indent - 1;
      ctx.int_vars <- saved_int;
      ctx.obj_vars <- saved_obj;
      line ctx "}";
      ctx.int_vars <- i :: ctx.int_vars
  | 7 ->
      let o = fresh ctx "o" in
      line ctx "Obj %s = new Obj(%s, %s);" o (int_expr ctx 1) (int_expr ctx 1);
      ctx.obj_vars <- o :: ctx.obj_vars
  | 8 -> (
      match pick ctx ctx.obj_vars with
      | Some o ->
          line ctx "%s.%s = %s;" o
            (if chance ctx 0.5 then "a" else "b")
            (int_expr ctx 2)
      | None -> line ctx "gs = %s;" (int_expr ctx 2))
  | 9 -> line ctx "gs = gs + %s;" (int_expr ctx 1)
  | _ -> (
      match pick ctx ctx.int_vars with
      | Some v -> line ctx "%s = %s + gs;" v (leaf ctx)
      | None -> line ctx "gs = %s;" (leaf ctx))

let gen_function ctx ~name ~depth =
  line ctx "int %s(int x, int y) {" name;
  ctx.indent <- ctx.indent + 1;
  ctx.int_vars <- [ "x"; "y" ];
  ctx.obj_vars <- [];
  stmts ctx depth 5;
  line ctx "return %s;" (int_expr ctx 2);
  ctx.indent <- ctx.indent - 1;
  line ctx "}"

(** Generate a complete source program from a seed. *)
let generate ?(n_helpers = 2) ?(depth = 3) ~seed () =
  let ctx =
    {
      rng = Random.State.make [| seed |];
      buf = Buffer.create 1024;
      indent = 0;
      int_vars = [];
      obj_vars = [];
      fresh = 0;
      helpers = [];
    }
  in
  line ctx "class Obj { int a; int b; }";
  line ctx "global int gs;";
  let helpers = ref [] in
  for k = 1 to n_helpers do
    let name = Printf.sprintf "helper%d" k in
    gen_function { ctx with helpers = !helpers } ~name ~depth:(max 1 (depth - 1));
    helpers := name :: !helpers
  done;
  gen_function { ctx with helpers = !helpers } ~name:"main" ~depth;
  Buffer.contents ctx.buf

(** Compile a generated program, optionally grafting an irreducible
    multi-entry ring (a shape the structured source language cannot
    express) as an extra function.  The ring's blocks exercise dominance
    and SSA repair on entry-into-loop-body edges during optimization,
    while [main]'s behaviour — what differential tests execute — is
    untouched. *)
let generate_program ?(irreducible = false) ?n_helpers ?depth ~seed () =
  let prog = Lang.Frontend.compile (generate ?n_helpers ?depth ~seed ()) in
  if irreducible then begin
    let nodes = 2 + (seed land 3) in
    let g = Ir.Parse.parse_graph (Advgen.irr_ring_text ~nodes ~seed) in
    Ir.Program.add_function prog g
  end;
  prog
