(** Benchmark suite definitions.

    Each benchmark is a mini-language source program plus the interpreter
    arguments that drive it.  The four suites mirror the paper's
    evaluation sets (Java DaCapo, Scala DaCapo, Java/Scala micro
    benchmarks, JavaScript Octane): we cannot run the real suites on a
    simulated substrate, so each synthetic program is engineered around
    the duplication-opportunity mix the paper attributes to its suite —
    see DESIGN.md §2 for the substitution argument. *)

type benchmark = {
  name : string;
  description : string;
  source : string;
  args : int array;
}

type t = {
  suite_name : string;
  figure : string;  (** which paper figure this suite reproduces *)
  benchmarks : benchmark list;
}

let find_benchmark suite name =
  List.find_opt (fun b -> b.name = name) suite.benchmarks

let bench ~name ~description ~args source = { name; description; source; args }
