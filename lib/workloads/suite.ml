(** Benchmark suite definitions.

    Each benchmark is a mini-language source program plus the interpreter
    arguments that drive it.  The four suites mirror the paper's
    evaluation sets (Java DaCapo, Scala DaCapo, Java/Scala micro
    benchmarks, JavaScript Octane): we cannot run the real suites on a
    simulated substrate, so each synthetic program is engineered around
    the duplication-opportunity mix the paper attributes to its suite —
    see DESIGN.md §2 for the substitution argument. *)

type benchmark = {
  name : string;
  description : string;
  source : string;
  args : int array;
  builder : (unit -> Ir.Program.t) option;
      (** direct-IR benchmarks (the adversarial workload lab): shapes the
          structured mini-language cannot express, e.g. irreducible
          regions.  [None] = compile [source] through the frontend. *)
}

type t = {
  suite_name : string;
  figure : string;  (** which paper figure this suite reproduces *)
  benchmarks : benchmark list;
}

let find_benchmark suite name =
  List.find_opt (fun b -> b.name = name) suite.benchmarks

let bench ~name ~description ~args source =
  { name; description; source; args; builder = None }

let bench_ir ~name ~description ~args builder =
  { name; description; source = ""; args; builder = Some builder }

(** The one compilation entry point for benchmarks: the frontend for
    source programs, the registered builder (a fresh program per call —
    optimization mutates graphs in place) for direct-IR ones. *)
let compile b =
  match b.builder with
  | Some build -> build ()
  | None -> Lang.Frontend.compile b.source
