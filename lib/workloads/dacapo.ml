(** The Java-DaCapo-like suite (reproduces Figure 5).

    The paper finds Java workloads benefit least from duplication (geomean
    +0.99% peak performance; jython ~+3%, luindex ~+4%, most others flat;
    dupalot's geomean is slightly negative at ~4x the code growth).
    Accordingly, each program couples a realistic hot kernel (hashing,
    scanning, dispatch — the "neutral" cycles that dominate real Java
    iterations) with at most one duplication-unlockable pattern, plus cold
    {e bait} merges: joins whose tails are bulky but offer only token
    benefit, which dupalot duplicates (paying code size and compile time)
    while the DBDS trade-off declines. *)

open Suite

(* avrora: a microcontroller simulator — dispatch merges with no
   optimizable tails; DBDS finds nothing, dupalot buys dead weight. *)
let avrora =
  bench ~name:"avrora" ~args:[| 3000 |]
    ~description:"interrupt-driven state machine, no unlockable tails"
    {|
    global int cycles;
    global int sreg;
    int main(int n) {
      int seed = 12345;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 1103515245 + 12345) & 1048575;
        int op = seed & 15;
        int r;
        if (op < 6) @0.4 { r = acc + 3; } else {
          if (op < 10) @0.45 { r = acc ^ 21; } else {
            if (op < 13) @0.6 { r = acc - 7; } else { r = acc * 3; }
          }
        }
        acc = (r + seed % 251) & 16777215;
        cycles = cycles + acc % 101;
        if (seed % 128 == 0) @0.008 {
          int m;
          if (seed % 256 == 0) @0.5 { m = 0; } else { m = 5; }
          int z1 = acc ^ m;
          int z2 = z1 * 13 % 257;
          int z3 = z2 + z1 * 29 % 127;
          int z4 = z3 ^ (z2 * 7 + 5) % 511;
          int z5 = z4 + z3 * 11 % 61;
          sreg = sreg + z5 % 31;
        }
        i = i + 1;
      }
      return acc + sreg + cycles % 7;
    }
    |}

(* batik: vector rasterization — fixed-point blending with constants
   strength reduction cannot touch; two cold baits. *)
let batik =
  bench ~name:"batik" ~args:[| 2500 |]
    ~description:"fixed-point rasterizer, awkward constants, two baits"
    {|
    global int coverage;
    global int spans;
    int main(int n) {
      int x = 17;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        x = (x * 29 + 111) % 65521;
        int alpha = x % 255;
        int blended = (x % 256 * alpha + acc % 256 * (255 - alpha)) / 255;
        acc = (acc + blended + x % 739) & 16777215;
        coverage = coverage + blended % 97;
        if (x % 96 == 0) @0.01 {
          int m;
          if (x % 192 == 0) @0.5 { m = 0; } else { m = 2; }
          int z1 = acc + m;
          int z2 = z1 * 23 % 509;
          int z3 = z2 ^ (z1 * 17 + 3) % 251;
          int z4 = z3 + z2 * 19 % 113;
          spans = spans + z4 % 29;
        }
        if (x % 144 == 0) @0.007 {
          int q;
          if (x % 288 == 0) @0.5 { q = 0; } else { q = 7; }
          int y1 = coverage ^ q;
          int y2 = y1 * 31 % 241;
          int y3 = y2 + y1 * 37 % 199;
          int y4 = y3 ^ (y2 * 5 + 11) % 83;
          spans = spans + y4 % 23;
        }
        i = i + 1;
      }
      return acc + coverage % 13 + spans;
    }
    |}

(* fop: line breaking — a justification pass per line (the neutral bulk)
   and a divisor that merges as phi(2, k) on a quarter of the lines. *)
let fop =
  bench ~name:"fop" ~args:[| 900 |]
    ~description:"line breaker; occasional division by phi(2, k)"
    {|
    global int lines;
    int main(int n) {
      int w = 400;
      int acc = 0;
      int checksum = 7;
      int i = 0;
      while (i < n) @0.999 {
        w = (w * 31 + 7) & 1023;
        /* justify: per-word glue computation (neutral) */
        int k = 0;
        while (k < 9) @0.89 {
          checksum = (checksum * 2654435761 + w + k) & 1048575;
          checksum = checksum + w % 641;
          k = k + 1;
        }
        /* hyphenation splits every 4th line; divisor is 2 when the
           break is even (the duplication opportunity) */
        if (w % 4 == 0) @0.25 {
          int divisor;
          if (w % 32 < 28) @0.87 { divisor = 2; } else { divisor = w % 7 + 3; }
          acc = (acc + w / divisor) & 16777215;
        }
        if (w % 64 == 0) @0.015 {
          int m;
          if (w % 128 == 0) @0.5 { m = 0; } else { m = 3; }
          int z1 = acc ^ m;
          int z2 = z1 * 13 % 257;
          int z3 = z2 + z1 * 29 % 127;
          int z4 = z3 ^ (z2 * 7 + 5) % 511;
          int z5 = z4 + z3 * 11 % 61;
          lines = lines + z5 % 31;
        }
        i = i + 1;
      }
      return acc + checksum % 1000 + lines;
    }
    |}

(* h2: an in-memory row scan — loads dominate, nothing duplicable. *)
let h2 =
  bench ~name:"h2" ~args:[| 500 |]
    ~description:"row-store scan with predicate, load-bound"
    {|
    class Row { int key; int value; Row next; }
    global int matches;
    int main(int n) {
      Row head = null;
      int seed = 7;
      int i = 0;
      while (i < n) @0.99 {
        seed = (seed * 137 + 31) & 8191;
        head = new Row(seed, i, head);
        i = i + 1;
      }
      int total = 0;
      int q = 0;
      while (q < 12) @0.9 {
        int lo = q * 512;
        Row cur = head;
        while (cur != null) @0.97 {
          int k = cur.key;
          if (k >= lo) @0.5 {
            if (k <= lo + 900) @0.4 { total = total + cur.value; matches = matches + 1; }
          }
          if (k % 2048 == 0) @0.004 {
            int m;
            if (k % 4096 == 0) @0.5 { m = 0; } else { m = 9; }
            int z1 = total ^ m;
            int z2 = z1 * 43 % 337;
            int z3 = z2 + z1 * 7 % 149;
            int z4 = z3 ^ (z2 * 3 + 2) % 73;
            matches = matches + z4 % 11;
          }
          cur = cur.next;
        }
        q = q + 1;
      }
      return total + matches % 17;
    }
    |}

(* jython: a bytecode interpreter — operands are boxed per instruction
   and merge through a phi; the hot opcode unboxes after duplication. *)
let jython =
  bench ~name:"jython" ~args:[| 1200 |]
    ~description:"interpreter dispatch with boxed operands"
    {|
    class Cell { int tag; int payload; }
    global int heat;
    int main(int n) {
      int seed = 99;
      int tos = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 75 + 74) & 65535;
        /* frame bookkeeping (neutral) */
        int pc = 0;
        while (pc < 6) @0.84 {
          tos = (tos + seed % 919) & 1048575;
          tos = tos ^ (tos >> 5) % 433;
          pc = pc + 1;
        }
        /* operand fetch: boxed; hot opcodes use a unit operand */
        Cell operand;
        if (seed % 8 < 7) @0.87 { operand = new Cell(0, 1); } else { operand = new Cell(seed % 7, seed & 63); }
        int t = operand.tag;
        if (t == 0) @0.87 { tos = tos + operand.payload; } else { tos = tos - operand.payload; }
        /* stack maintenance after the dispatch merge (neutral, gets
           duplicated along with the opportunity) */
        tos = (tos * 3 + seed % 127) & 1048575;
        tos = tos ^ (tos >> 3) % 359;
        tos = tos + (tos >> 7) % 241;
        tos = (tos ^ seed % 179) & 1048575;
        if (tos % 4096 == 0) @0.002 { heat = heat + 1; }
        if (seed % 192 == 0) @0.006 {
          int m;
          if (seed % 384 == 0) @0.5 { m = 0; } else { m = 4; }
          int z1 = tos + m;
          int z2 = z1 * 21 % 419;
          int z3 = z2 ^ (z1 * 9 + 1) % 211;
          int z4 = z3 + z2 * 5 % 109;
          heat = heat + z4 % 19;
        }
        i = i + 1;
      }
      return tos + heat;
    }
    |}

(* luindex: text indexing — the Listing 5 shape (a partially redundant
   field read made fully redundant by duplication) on the hot loop. *)
let luindex =
  bench ~name:"luindex" ~args:[| 2500 |]
    ~description:"token indexer; partially redundant field reads"
    {|
    class Doc { int hash; int length; }
    global Doc current;
    global int indexed;
    int main(int n) {
      int seed = 3;
      int acc = 0;
      current = new Doc(0, 0);
      Doc d = current;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 61 + 17) & 32767;
        d.hash = seed * 31 % 7919;
        d.length = seed % 40;
        /* token normalization (neutral) */
        acc = (acc + seed % 467) & 16777215;
        acc = acc ^ (acc >> 4) % 131;
        /* Read1 on the hot branch, Read2 after the merge (Listing 5) */
        if (seed % 16 != 0) @0.93 {
          indexed = indexed + d.hash;
        } else {
          indexed = indexed + 1;
        }
        acc = (acc + d.hash % 1024 + d.length) & 16777215;
        i = i + 1;
      }
      return acc + indexed % 4093;
    }
    |}

(* lusearch: query scoring — a rare division whose divisor merges as
   phi(1, df); mostly neutral scoring arithmetic. *)
let lusearch =
  bench ~name:"lusearch" ~args:[| 1100 |]
    ~description:"query scorer; rare division by phi(1, df)"
    {|
    global int hits;
    int main(int n) {
      int seed = 41;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 89 + 5) & 65535;
        /* term frequency mix (neutral) */
        int t = 0;
        while (t < 7) @0.86 {
          acc = (acc + seed % 827 + t * 3) & 33554431;
          acc = acc ^ (acc >> 7) % 229;
          t = t + 1;
        }
        /* idf normalization on every 8th term */
        if (seed % 8 == 0) @0.125 {
          int idf;
          if (seed % 64 < 56) @0.88 { idf = 1; } else { idf = seed % 6 + 2; }
          acc = (acc + (seed & 255) * 16 / idf) & 33554431;
        }
        if (acc % 8192 < 8) @0.001 { hits = hits + 1; }
        if (seed % 160 == 0) @0.006 {
          int m;
          if (seed % 320 == 0) @0.5 { m = 0; } else { m = 6; }
          int z1 = acc ^ m;
          int z2 = z1 * 27 % 283;
          int z3 = z2 + z1 * 15 % 131;
          int z4 = z3 ^ (z2 * 7 + 9) % 67;
          hits = hits + z4 % 13;
        }
        i = i + 1;
      }
      return acc + hits;
    }
    |}

(* pmd: AST rule matcher — recursive tree walk (stays a real call);
   merges are cold relative to the walk itself. *)
let pmd =
  bench ~name:"pmd" ~args:[| 260 |]
    ~description:"rule matcher over a binary tree, recursion-bound"
    {|
    class Node { int kind; Node left; Node right; }
    global int violations;
    Node build(int depth, int seed) {
      if (depth <= 0) @0.3 { return null; }
      return new Node(seed % 11, build(depth - 1, seed * 31 + 1), build(depth - 1, seed * 17 + 3));
    }
    int check(Node t) {
      if (t == null) @0.3 { return 0; }
      int k = t.kind;
      if (k == 3) @0.2 { violations = violations + 1; }
      int weight = k * 7 % 23;
      return weight % 2 + check(t.left) + check(t.right);
    }
    int main(int n) {
      int total = 0;
      int i = 0;
      while (i < n) @0.99 {
        Node t = build(6, i * 7 + 1);
        total = total + check(t);
        if (total % 128 == 0) @0.008 {
          int m;
          if (total % 256 == 0) @0.5 { m = 0; } else { m = 5; }
          int z1 = total ^ m;
          int z2 = z1 * 19 % 313;
          int z3 = z2 + z1 * 23 % 163;
          int z4 = z3 ^ (z2 * 3 + 5) % 89;
          violations = violations + z4 % 7;
        }
        i = i + 1;
      }
      return total + violations;
    }
    |}

(* sunflow: a render kernel with two bulky alternating shading branches
   joined by a merge whose tail holds a token opportunity — blanket
   duplication inflates the hot working set for ~nothing. *)
let sunflow =
  bench ~name:"sunflow" ~args:[| 2200 |]
    ~description:"alternating bulky shading branches, marginal merges"
    {|
    global int photons;
    int main(int n) {
      int seed = 1234;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 213 + 453) & 65535;
        int c;
        int bias;
        if (i % 2 == 0) @0.5 {
          int d1 = seed * 3 + 11;  int d2 = d1 ^ (seed >> 2);
          int d3 = d2 * 5 % 8191;  int d4 = d3 + d1 % 97;
          int d5 = d4 * 3 & 16383; int d6 = d5 - d2 % 29;
          int d7 = d6 ^ d3;        int d8 = d7 + d4 % 53;
          c = d8 & 8191; bias = 1;
        } else {
          int e1 = seed * 7 - 3;   int e2 = e1 ^ (seed >> 3);
          int e3 = e2 * 9 % 8191;  int e4 = e3 + e1 % 89;
          int e5 = e4 * 5 & 16383; int e6 = e5 - e2 % 31;
          int e7 = e6 ^ e3;        int e8 = e7 + e4 % 59;
          c = e8 & 8191; bias = 2;
        }
        /* absorbed rays take a cold shortcut whose merge tail is bulky
           with token benefit — DBDS declines, dupalot duplicates */
        if (seed % 80 == 0) @0.012 {
          int m;
          if (seed % 160 == 0) @0.5 { m = 0; } else { m = 3; }
          int y1 = c ^ m;
          int y2 = y1 * 41 % 349;
          int y3 = y2 + y1 * 13 % 181;
          int y4 = y3 ^ (y2 * 7 + 3) % 97;
          int y5 = y4 + y3 * 5 % 59;
          photons = photons + y5 % 11;
        }
        int t1 = c + bias;
        int t2 = t1 * 13 % 2039;
        int t3 = t2 ^ (t1 >> 4) % 227;
        int t4 = t3 + t2 * 7 % 173;
        int t5 = t4 ^ (t3 * 3 + 1) % 157;
        int t6 = t5 + t4 % 139;
        int t7 = t6 ^ t5 % 101;
        acc = (acc + t7) & 16777215;
        photons = photons + t7 % 7;
        i = i + 1;
      }
      return acc + photons;
    }
    |}

(* xalan: a transformation pipeline — duplication saves one global
   reload on the hot path; everything else is neutral string math. *)
let xalan =
  bench ~name:"xalan" ~args:[| 2200 |]
    ~description:"transform pipeline; one global reload saved"
    {|
    global int cache;
    global int flushes;
    int main(int n) {
      int seed = 5;
      int out = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 171 + 11) & 32767;
        /* entity encoding (neutral) */
        out = (out + seed % 769 + seed % 83) & 33554431;
        out = out ^ (out >> 6) % 311;
        /* cache update: the hot arm stores, the tail reloads */
        if (seed % 128 != 0) @0.95 {
          cache = cache + (seed & 511);
        } else {
          cache = 0;
          flushes = flushes + 1;
        }
        out = (out + cache % 1021) & 33554431;
        if (seed % 224 == 0) @0.005 {
          int m;
          if (seed % 448 == 0) @0.5 { m = 0; } else { m = 8; }
          int z1 = out ^ m;
          int z2 = z1 * 33 % 467;
          int z3 = z2 + z1 * 11 % 239;
          int z4 = z3 ^ (z2 * 5 + 7) % 127;
          flushes = flushes + z4 % 17;
        }
        i = i + 1;
      }
      return out + flushes;
    }
    |}

let suite =
  {
    suite_name = "Java DaCapo";
    figure = "Figure 5";
    benchmarks =
      [ avrora; batik; fop; h2; jython; luindex; lusearch; pmd; sunflow; xalan ];
  }
