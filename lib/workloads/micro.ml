(** The Java/Scala micro-benchmark suite (reproduces Figure 7).

    The paper's micro benchmarks target post-Java-8 idioms — streams,
    lambdas, auto-boxing — and show the largest duplication wins (5–40%,
    geomean ~8%) with dupalot essentially matching DBDS's peak (geomean
    8.57% vs 8.07%) at ~2x the code growth.  Each program is one hot
    kernel around one opportunity class, with just enough neutral work to
    keep the win in the paper's band; akkaPP carries an extra marginal
    merge that only dupalot takes (the paper observed dupalot slightly
    ahead there). *)

open Suite

(* akkaPP: ping-pong between two actors; the boxed ball unboxes after
   duplication, plus a low-frequency marginal merge that the DBDS
   trade-off declines but that still pays a little. *)
let akka_pp =
  bench ~name:"akkaPP" ~args:[| 2400 |]
    ~description:"actor ping-pong; dupalot finds a bit extra"
    {|
    class Ball { int round; int from; }
    global int volleys;
    global int drops;
    int main(int n) {
      int s = 0;
      int seed = 5;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 1103515245 + 12345) & 1048575;
        /* mailbox churn (neutral) */
        int mb = 0;
        while (mb < 3) @0.72 {
          s = (s + seed % 431 + mb) & 1048575;
          s = s ^ (s >> 4) % 173;
          mb = mb + 1;
        }
        Ball b;
        if (i % 2 == 0) @0.5 { b = new Ball(s + 1, 0); } else { b = new Ball(s + 1, 1); }
        int r;
        if (b.from == 0) @0.5 { r = b.round * 2 + 1; } else { r = b.round * 2; }
        s = r & 1048575;
        s = s + (s >> 8) % 151;
        s = (s ^ seed % 73) & 1048575;
        s = s + (s >> 2) % 89;
        s = (s ^ (seed + 5) % 119) & 1048575;
        volleys = volleys + 1;
        /* supervision check: 10% frequency, token benefit, fat tail —
           below the DBDS threshold, taken by dupalot */
        if ((seed >> 9) % 8 == 0) @0.1 {
          int m;
          if ((seed >> 12) % 2 == 0) @0.5 { m = 0; } else { m = 2; }
          int z1 = s ^ m;
          int z2 = z1 * 19 % 449;
          int z3 = z2 + z1 * 11 % 251;
          int z4 = z3 ^ (z2 * 7 + 9) % 139;
          int z5 = z4 + z3 * 3 % 71;
          int z6 = z5 ^ (z4 * 5 + 1) % 43;
          int z7 = z6 + z5 % 37;
          int z8 = z7 ^ z6 % 23;
          drops = z8 % 13;
        }
        i = i + 1;
      }
      return s + volleys + drops;
    }
    |}

(* bufdecode: a frame decoder whose stride merges as phi(8, n): the hot
   div/mod pair strength-reduces to shift/mask. *)
let bufdecode =
  bench ~name:"bufdecode" ~args:[| 2400 |]
    ~description:"buffer decoder; hot div+mod by phi(8, n)"
    {|
    global int frames;
    int main(int n) {
      int seed = 91;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 25 + 1) & 1048575;
        /* header checksum (neutral) */
        acc = (acc + seed % 523) & 33554431;
        acc = acc ^ (acc >> 6) % 211;
        acc = (acc + seed % 173) & 33554431;
        int stride;
        if ((seed >> 7) % 32 != 0) @0.97 { stride = 8; } else { stride = seed % 11 + 9; }
        int hi = seed / stride;
        int lo = seed % stride;
        acc = (acc + hi % 2047 + lo * 16) & 33554431;
        if (acc % 65536 < 4) @0.001 { frames = frames + 1; }
        if ((seed >> 11) % 128 == 0) @0.008 {
          int bm;
          if ((seed >> 15) % 2 == 0) @0.5 { bm = 0; } else { bm = 5; }
          int b1 = acc ^ bm;
          int b2 = b1 * 23 % 383;
          int b3 = b2 + b1 * 7 % 181;
          int b4 = b3 ^ (b2 * 3 + 1) % 93;
          frames = frames + b4 % 11;
        }
        i = i + 1;
      }
      return acc + frames;
    }
    |}

(* charcount: Stream.filter(...).count() over boxed characters. *)
let charcount =
  bench ~name:"charcount" ~args:[| 2400 |]
    ~description:"stream count over boxed characters"
    {|
    class Boxed { int ch; }
    global int total;
    int main(int n) {
      int seed = 7;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 137 + 187) & 32767;
        /* decode (neutral) */
        int dc = 0;
        while (dc < 3) @0.72 {
          acc = (acc + seed % 347 + dc) & 16777215;
          acc = acc ^ (acc >> 3) % 157;
          dc = dc + 1;
        }
        Boxed c;
        if ((seed >> 5) % 32 < 30) @0.94 { c = new Boxed(seed & 127); } else { c = new Boxed(10); }
        if (c.ch > 64) @0.6 { total = total + 1; }
        acc = acc + (acc >> 9) % 163;
        acc = (acc ^ seed % 71) & 16777215;
        acc = acc + (acc >> 4) % 143;
        acc = (acc ^ (seed + 3) % 111) & 16777215;
        if ((seed >> 8) % 96 == 0) @0.01 {
          int bm;
          if ((seed >> 12) % 2 == 0) @0.5 { bm = 0; } else { bm = 3; }
          int b1 = acc + bm;
          int b2 = b1 * 29 % 347;
          int b3 = b2 ^ (b1 * 13 + 7) % 173;
          int b4 = b3 + b2 * 5 % 97;
          total = total + b4 % 7;
        }
        i = i + 1;
      }
      return acc + total;
    }
    |}

(* charhist: histogram update; the bucket width merges as phi(4, w) and
   the hot path's division becomes a shift. *)
let charhist =
  bench ~name:"charhist" ~args:[| 2400 |]
    ~description:"histogram bucketing, hot division by phi(4, w)"
    {|
    global int overflow;
    int main(int n) {
      int seed = 15;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 73 + 7) & 8191;
        /* sample normalization (neutral) */
        int sn = 0;
        while (sn < 3) @0.72 {
          acc = (acc + seed % 457 + sn * 5) & 16777215;
          acc = acc ^ (acc >> 5) % 199;
          sn = sn + 1;
        }
        int width;
        if ((seed >> 6) % 16 != 0) @0.93 { width = 4; } else { width = seed % 5 + 5; }
        int b = (seed & 127) / width;
        if (b > 30) @0.08 { overflow = overflow + 1; b = 30; }
        acc = (acc + b) & 16777215;
        if ((seed >> 7) % 64 == 0) @0.015 {
          int bm;
          if ((seed >> 11) % 2 == 0) @0.5 { bm = 0; } else { bm = 7; }
          int b1 = acc ^ bm;
          int b2 = b1 * 31 % 293;
          int b3 = b2 + b1 * 11 % 151;
          int b4 = b3 ^ (b2 * 7 + 3) % 79;
          overflow = overflow + b4 % 9;
        }
        i = i + 1;
      }
      return acc + overflow;
    }
    |}

(* chisquare: chi-square accumulation; expected counts are boxed
   statistics records flowing through a phi into two field reads. *)
let chisquare =
  bench ~name:"chisquare" ~args:[| 2200 |]
    ~description:"statistic accumulation over boxed expectations"
    {|
    class Stat { int expected; int weight; }
    global int cells;
    int main(int n) {
      int seed = 3;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 129 + 37) & 16383;
        /* observation scaling (neutral) */
        int observed = seed & 63;
        int ob = 0;
        while (ob < 5) @0.81 {
          acc = (acc + seed % 601 + ob * 3) & 33554431;
          acc = acc ^ (acc >> 7) % 167;
          ob = ob + 1;
        }
        Stat st;
        if ((seed >> 4) % 16 != 0) @0.9 { st = new Stat(32, 1); } else { st = new Stat(observed % 50 + 1, 2); }
        int d = observed - st.expected;
        int chi = d * d / st.expected;
        acc = (acc + chi * st.weight) & 33554431;
        cells = cells + 1;
        if ((seed >> 9) % 112 == 0) @0.009 {
          int bm;
          if ((seed >> 13) % 2 == 0) @0.5 { bm = 0; } else { bm = 4; }
          int b1 = acc + bm;
          int b2 = b1 * 37 % 419;
          int b3 = b2 ^ (b1 * 17 + 11) % 229;
          int b4 = b3 + b2 * 3 % 119;
          cells = cells + b4 % 13;
        }
        i = i + 1;
      }
      return acc + cells;
    }
    |}

(* groupbyrem: groupBy(x % k) — the modulus merges as phi(16, k) and
   strength-reduces to a mask on the hot path. *)
let groupbyrem =
  bench ~name:"groupbyrem" ~args:[| 2400 |]
    ~description:"groupBy with hot modulus phi(16, k)"
    {|
    global int groups;
    int main(int n) {
      int seed = 27;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 219 + 3) & 65535;
        /* key extraction (neutral) */
        int ke = 0;
        while (ke < 4) @0.77 {
          acc = (acc + seed % 389 + ke) & 16777215;
          acc = acc ^ (acc >> 2) % 149;
          ke = ke + 1;
        }
        int k;
        if ((seed >> 8) % 16 != 0) @0.94 { k = 16; } else { k = seed % 13 + 11; }
        int g = seed % k;
        if (g == 0) @0.07 { groups = groups + 1; }
        acc = (acc + g) & 16777215;
        if ((seed >> 10) % 80 == 0) @0.012 {
          int bm;
          if ((seed >> 14) % 2 == 0) @0.5 { bm = 0; } else { bm = 6; }
          int b1 = acc ^ bm;
          int b2 = b1 * 41 % 311;
          int b3 = b2 + b1 * 19 % 163;
          int b4 = b3 ^ (b2 * 5 + 13) % 87;
          groups = groups + b4 % 5;
        }
        i = i + 1;
      }
      return acc + groups;
    }
    |}

(* kmeanCPC: k-means assignment; the centroid is a boxed pair read twice
   after the merge. *)
let kmean_cpc =
  bench ~name:"kmeanCPC" ~args:[| 2200 |]
    ~description:"k-means assignment with boxed centroids"
    {|
    class Centroid { int x; int y; }
    global int moved;
    int main(int n) {
      int seed = 5;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 77 + 13) & 16383;
        int px = seed & 63;
        int py = (seed >> 6) & 63;
        /* distance-table prefetch (neutral) */
        int pf = 0;
        while (pf < 3) @0.72 {
          acc = (acc + seed % 271 + pf * 9) & 33554431;
          acc = acc ^ (acc >> 4) % 137;
          pf = pf + 1;
        }
        Centroid c;
        if ((px + py) % 8 < 7) @0.88 { c = new Centroid(32, 32); } else { c = new Centroid(px, py); }
        int dx = px - c.x;
        int dy = py - c.y;
        int d = dx * dx + dy * dy;
        if (d > 2000) @0.2 { moved = moved + 1; }
        acc = acc + (acc >> 3) % 97;
        acc = (acc ^ seed % 83) & 33554431;
        acc = acc + (acc >> 8) % 121;
        acc = (acc ^ (seed + 7) % 93) & 33554431;
        acc = (acc + d) & 33554431;
        if ((seed >> 8) % 88 == 0) @0.011 {
          int bm;
          if ((seed >> 12) % 2 == 0) @0.5 { bm = 0; } else { bm = 8; }
          int b1 = acc + bm;
          int b2 = b1 * 43 % 277;
          int b3 = b2 ^ (b1 * 23 + 5) % 143;
          int b4 = b3 + b2 * 7 % 73;
          moved = moved + b4 % 11;
        }
        i = i + 1;
      }
      return acc + moved;
    }
    |}

(* streamPerson: the classic Person-stream benchmark — a record per
   element escaping only through the merge. *)
let stream_person =
  bench ~name:"streamPerson" ~args:[| 2000 |]
    ~description:"mapToObj(Person::new).filter(...).sum()"
    {|
    class Person { int age; int income; }
    global int selected;
    int main(int n) {
      int seed = 9;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 33 + 41) & 32767;
        /* row parsing (neutral) */
        int rp = 0;
        while (rp < 3) @0.72 {
          acc = (acc + seed % 719 + rp) & 33554431;
          acc = acc ^ (acc >> 6) % 251;
          rp = rp + 1;
        }
        Person p;
        if ((seed >> 3) % 4 != 0) @0.75 { p = new Person(seed % 64, 30000); } else { p = new Person(seed % 90, seed * 3 % 90000); }
        if (p.age > 17) @0.7 {
          if (p.income > 20000) @0.9 { acc = (acc + p.income / 1024) & 33554431; selected = selected + 1; }
        }
        if ((seed >> 7) % 104 == 0) @0.01 {
          int bm;
          if ((seed >> 11) % 2 == 0) @0.5 { bm = 0; } else { bm = 2; }
          int b1 = acc ^ bm;
          int b2 = b1 * 47 % 263;
          int b3 = b2 + b1 * 29 % 137;
          int b4 = b3 ^ (b2 * 11 + 7) % 69;
          selected = selected + b4 % 7;
        }
        i = i + 1;
      }
      return acc + selected;
    }
    |}

(* wordcount: token classifier; the class tag feeds a foldable equality
   chain on the hot (letter) path. *)
let wordcount =
  bench ~name:"wordcount" ~args:[| 2400 |]
    ~description:"token classifier with foldable class tags"
    {|
    global int words;
    int main(int n) {
      int seed = 17;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 45 + 21) & 32767;
        int ch = (seed >> 4) & 255;
        /* line accounting (neutral) */
        int la = 0;
        while (la < 2) @0.63 {
          acc = (acc + seed % 293 + la) & 16777215;
          acc = acc ^ (acc >> 3) % 89;
          la = la + 1;
        }
        int cls;
        if (ch % 16 < 12) @0.75 { cls = 1; } else {
          if (ch % 16 < 15) @0.75 { cls = 2; } else { cls = 0; }
        }
        int boundary;
        if (cls == 1) @0.75 { boundary = 0; } else { boundary = 1; }
        if (boundary == 1) @0.25 {
          if (cls != 1) { words = words + 1; }
        }
        acc = (acc + cls) & 16777215;
        if ((seed >> 6) % 120 == 0) @0.008 {
          int bm;
          if ((seed >> 10) % 2 == 0) @0.5 { bm = 0; } else { bm = 9; }
          int b1 = acc + bm;
          int b2 = b1 * 53 % 359;
          int b3 = b2 ^ (b1 * 31 + 3) % 187;
          int b4 = b3 + b2 * 13 % 91;
          words = words + b4 % 9;
        }
        i = i + 1;
      }
      return acc + words;
    }
    |}

(* lambdaCapture: a closure record allocated per application carrying two
   captured values across a merge — pure escape-analysis food. *)
let lambda_capture =
  bench ~name:"lambdaCapture" ~args:[| 2200 |]
    ~description:"per-iteration closure capture record"
    {|
    class Capture { int base; int step; }
    global int applied;
    int main(int n) {
      int seed = 25;
      int acc = 0;
      int i = 0;
      while (i < n) @0.999 {
        seed = (seed * 193 + 11) & 16383;
        int x = seed & 1023;
        /* argument marshalling (neutral) */
        int am = 0;
        while (am < 3) @0.72 {
          acc = (acc + seed % 337 + am * 11) & 33554431;
          acc = acc ^ (acc >> 5) % 113;
          am = am + 1;
        }
        Capture env;
        if ((seed >> 5) % 8 != 0) @0.88 { env = new Capture(100, 2); } else { env = new Capture(x & 31, 3); }
        acc = (acc + x * env.step + env.base) & 33554431;
        applied = applied + 1;
        if ((seed >> 9) % 72 == 0) @0.013 {
          int bm;
          if ((seed >> 13) % 2 == 0) @0.5 { bm = 0; } else { bm = 5; }
          int b1 = acc ^ bm;
          int b2 = b1 * 59 % 331;
          int b3 = b2 + b1 * 37 % 179;
          int b4 = b3 ^ (b2 * 17 + 9) % 95;
          applied = applied + b4 % 13;
        }
        i = i + 1;
      }
      return acc + applied;
    }
    |}

let suite =
  {
    suite_name = "Java/Scala Micro";
    figure = "Figure 7";
    benchmarks =
      [
        akka_pp; bufdecode; charcount; charhist; chisquare; groupbyrem;
        kmean_cpc; stream_person; wordcount; lambda_capture;
      ];
  }
