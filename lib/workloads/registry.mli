(** All benchmark suites, in paper order (Figures 5–8). *)

val all : Suite.t list
val find_suite : string -> Suite.t option
val total_benchmarks : unit -> int
