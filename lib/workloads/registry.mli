(** All benchmark suites, in paper order (Figures 5–8), plus the
    adversarial workload lab. *)

val all : Suite.t list

(** The four workload-lab suites ({!Advgen}); kept out of [all] so the
    paper-figure harnesses and their digests are untouched. *)
val adversarial : Suite.t list

(** Searches [all] and [adversarial]. *)
val find_suite : string -> Suite.t option

val total_benchmarks : unit -> int
