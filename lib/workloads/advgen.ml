(** Adversarial workload lab: CFG shapes engineered to stress specific
    tiers rather than to mirror a paper suite.

    Four families (one suite each):

    - {b adv-irreducible} — multi-entry rings authored directly in the
      textual IR format (the structured mini-language cannot express
      irreducible control flow).  Two entries from the dispatch block
      into a cycle of ring nodes means no node dominates the whole
      cycle: natural-loop detection sees {e no} loop, yet the region is
      hot and carries duplication candidates (per-node diamonds whose
      merges the simulation tier can still split).
    - {b adv-dispatch} — interpreter-style giant-switch loops: a first
      if/else-if chain decodes an opcode into a tag, a second chain
      dispatches on the tag.  Duplicating the merge between the chains
      into each decode predecessor makes the tag a per-path constant and
      folds the entire second chain — the canonical DBDS win.
    - {b adv-diamonds} — deeply nested diamond ladders with repeated
      tests (conditional-elimination fodder), repeated pure
      subexpressions across merges (speculative-PRE fodder), and a tail
      of tiny-benefit merges that stresses trade-off ranking.
    - {b adv-abnormal} — exception-ish shapes: guard helpers with cold
      early returns (@0.01 edges), a loop that can abandon iteration
      from its body, and one direct-IR benchmark whose cold path ends in
      [unreachable].

    Everything is deterministic in the seed (a local LCG; no global
    [Random] state), so tier comparisons and fuzzing reproduce. *)

let buf_add = Buffer.add_string

(* Deterministic per-generator constant stream. *)
let lcg seed =
  let state = ref (seed land max_int) in
  fun () ->
    state := (!state * 25214903917) + 11;
    !state land 0x3FFFFFFF

(* ------------------------------------------------------------------ *)
(* adv-irreducible: multi-entry rings, authored as textual IR          *)
(* ------------------------------------------------------------------ *)

(** Textual IR for a [nodes]-node ring with entries at node 0 and node
    [nodes/2].  Block ids: node [j]'s main block is [b(10*(j+1))]; its
    diamond blocks (odd [j]) are [+1]/[+2]/[+3]; exit is [b9999].
    Value ids are namespaced per node at [100*(j+1)].  The parser
    remaps both, and the [; preds:] comments pin phi-input order. *)
let irr_ring_text ~nodes ~seed =
  if nodes < 2 then invalid_arg "irr_ring_text: need at least 2 nodes";
  let next = lcg seed in
  let const_of = Array.init nodes (fun _ -> 1 + (next () land 1023)) in
  let mid = nodes / 2 in
  let has_diamond j = j land 1 = 1 in
  let main j = 10 * (j + 1) in
  (* the block a node's successor edge leaves from *)
  let exit_of j = if has_diamond j then main j + 3 else main j in
  let b = Buffer.create 1024 in
  buf_add b "fn irr(2 params) entry=b0\n";
  buf_add b "b0:\n";
  buf_add b "v0 = param 0\n";
  (* count *)
  buf_add b "v1 = param 1\n";
  (* entry selector *)
  buf_add b "v4 = const 0\n";
  buf_add b (Printf.sprintf "v5 = const %d\n" (next () land 255));
  (* acc init *)
  buf_add b "v6 = const 1\n";
  for j = 0 to nodes - 1 do
    buf_add b (Printf.sprintf "v%d = const %d\n" (10 + j) const_of.(j))
  done;
  buf_add b "v2 = cmp.gt v1, v4\n";
  buf_add b (Printf.sprintf "branch v2 ? b%d : b%d  @0.50\n" (main mid) (main 0));
  (* count_in/acc_in/count_out/acc_out value ids per node *)
  let base j = 100 * (j + 1) in
  let count_in = Array.make nodes 0 and acc_in = Array.make nodes 0 in
  let count_out = Array.make nodes 0 and acc_out = Array.make nodes 0 in
  (* Pre-resolve dataflow so phis can reference later nodes' values
     (the textual format allows forward references). *)
  for j = 0 to nodes - 1 do
    count_in.(j) <- (if j = 0 || j = mid then base j else count_out.(j - 1));
    (* count only changes at the last node *)
    count_out.(j) <- (if j = nodes - 1 then base j + 10 else count_in.(j));
    acc_in.(j) <- (if j = 0 || j = mid then base j + 1 else acc_out.(j - 1));
    acc_out.(j) <- (if has_diamond j then base j + 5 else base j + 2)
  done;
  for j = 0 to nodes - 1 do
    let bid = main j in
    if j = 0 then begin
      buf_add b
        (Printf.sprintf "b%d:  ; preds: b0, b%d\n" bid (exit_of (nodes - 1)));
      buf_add b
        (Printf.sprintf "v%d = phi [v0, v%d]\n" (base j) count_out.(nodes - 1));
      buf_add b
        (Printf.sprintf "v%d = phi [v5, v%d]\n" (base j + 1) acc_out.(nodes - 1))
    end
    else if j = mid then begin
      buf_add b (Printf.sprintf "b%d:  ; preds: b%d, b0\n" bid (exit_of (j - 1)));
      buf_add b
        (Printf.sprintf "v%d = phi [v%d, v0]\n" (base j) count_out.(j - 1));
      buf_add b
        (Printf.sprintf "v%d = phi [v%d, v5]\n" (base j + 1) acc_out.(j - 1))
    end
    else buf_add b (Printf.sprintf "b%d:\n" bid);
    (* body: either a straight update or an inner diamond *)
    if has_diamond j then begin
      buf_add b
        (Printf.sprintf "v%d = cmp.gt v%d, v%d\n" (base j + 2) acc_in.(j)
           (10 + j));
      buf_add b
        (Printf.sprintf "branch v%d ? b%d : b%d  @0.50\n" (base j + 2) (bid + 1)
           (bid + 2));
      buf_add b (Printf.sprintf "b%d:\n" (bid + 1));
      buf_add b
        (Printf.sprintf "v%d = add v%d, v%d\n" (base j + 3) acc_in.(j) (10 + j));
      buf_add b (Printf.sprintf "jump b%d\n" (bid + 3));
      buf_add b (Printf.sprintf "b%d:\n" (bid + 2));
      buf_add b
        (Printf.sprintf "v%d = xor v%d, v%d\n" (base j + 4) acc_in.(j) (10 + j));
      buf_add b (Printf.sprintf "jump b%d\n" (bid + 3));
      buf_add b
        (Printf.sprintf "b%d:  ; preds: b%d, b%d\n" (bid + 3) (bid + 1) (bid + 2));
      buf_add b
        (Printf.sprintf "v%d = phi [v%d, v%d]\n" (base j + 5) (base j + 3)
           (base j + 4))
    end
    else
      buf_add b
        (Printf.sprintf "v%d = %s v%d, v%d\n" (base j + 2)
           (if j land 3 = 0 then "add" else "xor")
           acc_in.(j) (10 + j));
    if j = nodes - 1 then begin
      buf_add b
        (Printf.sprintf "v%d = sub v%d, v6\n" (base j + 10) count_in.(j));
      buf_add b
        (Printf.sprintf "v%d = cmp.gt v%d, v4\n" (base j + 11) (base j + 10));
      buf_add b
        (Printf.sprintf "branch v%d ? b%d : b9999  @0.90\n" (base j + 11)
           (main 0))
    end
    else buf_add b (Printf.sprintf "jump b%d\n" (main (j + 1)))
  done;
  buf_add b "b9999:\n";
  buf_add b (Printf.sprintf "return v%d\n" acc_out.(nodes - 1));
  Buffer.contents b

(** Parse one ring into a single-function program named [irr]. *)
let irr_ring_program ~nodes ~seed () =
  Ir.Program.of_graph (Ir.Parse.parse_graph (irr_ring_text ~nodes ~seed))

let irr_bench ~name ~nodes ~seed ~count =
  Suite.bench_ir ~name
    ~description:
      (Printf.sprintf
         "%d-node irreducible ring (entries at node 0 and %d), per-node \
          diamonds inside the cycle"
         nodes (nodes / 2))
    ~args:[| count; seed land 1 |]
    (irr_ring_program ~nodes ~seed)

let irreducible =
  {
    Suite.suite_name = "adv-irreducible";
    figure = "workload lab";
    benchmarks =
      [
        irr_bench ~name:"irr-ring3" ~nodes:3 ~seed:11 ~count:400;
        irr_bench ~name:"irr-ring5" ~nodes:5 ~seed:23 ~count:400;
        irr_bench ~name:"irr-ring8" ~nodes:8 ~seed:47 ~count:300;
      ];
  }

(* ------------------------------------------------------------------ *)
(* adv-dispatch: interpreter-style giant-switch loops                  *)
(* ------------------------------------------------------------------ *)

(** [handlers] must be a power of two (the opcode is masked, not
    modulo'd, so it never goes negative). *)
let dispatch_src ~handlers ~seed =
  if handlers land (handlers - 1) <> 0 || handlers < 2 then
    invalid_arg "dispatch_src: handlers must be a power of two >= 2";
  let next = lcg seed in
  let b = Buffer.create 2048 in
  buf_add b "int main(int n, int seed) {\n";
  buf_add b "  int s = seed;\n  int i = 0;\n  int acc = 0;\n";
  buf_add b "  while (i < n) @0.999 {\n";
  buf_add b "    s = ((s * 1103515245) + 12345) & 1073741823;\n";
  buf_add b (Printf.sprintf "    int op = (s >> 5) & %d;\n" (handlers - 1));
  buf_add b "    int t = 0;\n";
  (* chain 1: decode op -> tag (t becomes a phi at the chain's merge) *)
  let tag k = (2 * k) + 3 in
  for k = 0 to handlers - 2 do
    let p = 1.0 /. float_of_int (handlers - k) in
    buf_add b
      (Printf.sprintf "%sif (op == %d) @%.2f { t = %d; } else {\n"
         (String.make (4 + (2 * k)) ' ')
         k
         (max 0.01 (min 0.99 p))
         (tag k))
  done;
  buf_add b
    (Printf.sprintf "%st = %d;\n"
       (String.make (4 + (2 * (handlers - 1))) ' ')
       (tag (handlers - 1)));
  for k = handlers - 2 downto 0 do
    buf_add b (Printf.sprintf "%s}\n" (String.make (4 + (2 * k)) ' '))
  done;
  (* chain 2: dispatch on the tag — folds away once the merge between
     the chains is duplicated into each decode predecessor *)
  let body k =
    let m = 1 + (next () land 511) in
    match k land 3 with
    | 0 -> Printf.sprintf "acc = acc + (s & %d);" m
    | 1 -> Printf.sprintf "acc = acc ^ (s & %d);" m
    | 2 -> Printf.sprintf "acc = (acc + %d) & 65535;" m
    | _ -> Printf.sprintf "acc = acc + ((s >> 3) & %d);" m
  in
  for k = 0 to handlers - 2 do
    buf_add b
      (Printf.sprintf "%sif (t == %d) @%.2f { %s } else {\n"
         (String.make (4 + (2 * k)) ' ')
         (tag k)
         (max 0.01 (min 0.99 (1.0 /. float_of_int (handlers - k))))
         (body k))
  done;
  buf_add b
    (Printf.sprintf "%s%s\n"
       (String.make (4 + (2 * (handlers - 1))) ' ')
       (body (handlers - 1)));
  for k = handlers - 2 downto 0 do
    buf_add b (Printf.sprintf "%s}\n" (String.make (4 + (2 * k)) ' '))
  done;
  buf_add b "    i = i + 1;\n  }\n  return acc;\n}\n";
  Buffer.contents b

let dispatch_bench ~handlers ~seed ~count =
  Suite.bench ~name:(Printf.sprintf "disp%d" handlers)
    ~description:
      (Printf.sprintf
         "interpreter loop, %d-way decode + dispatch chains; duplication \
          folds the dispatch chain per opcode"
         handlers)
    ~args:[| count; seed |]
    (dispatch_src ~handlers ~seed)

let dispatch =
  {
    Suite.suite_name = "adv-dispatch";
    figure = "workload lab";
    benchmarks =
      [
        dispatch_bench ~handlers:4 ~seed:3 ~count:700;
        dispatch_bench ~handlers:8 ~seed:5 ~count:500;
        dispatch_bench ~handlers:16 ~seed:9 ~count:400;
      ];
  }

(* ------------------------------------------------------------------ *)
(* adv-diamonds: nested diamond ladders                                *)
(* ------------------------------------------------------------------ *)

let diamonds_src ~depth ~seed =
  let next = lcg seed in
  let b = Buffer.create 2048 in
  buf_add b "int work(int x, int y) {\n  int a = 0;\n";
  for _ = 0 to depth - 1 do
    let c = 1 + (next () land 255) in
    (* a diamond whose arms both compute with the same subexpression... *)
    buf_add b
      (Printf.sprintf
         "  if (x > y) @0.50 { a = a + ((x * 3) + y + %d); } else { a = a - \
          ((y * 3) + x + %d); }\n"
         c c);
    (* ...a repeated test of the same predicate (conditional-elimination
       fodder once the merge above is duplicated)... *)
    buf_add b
      (Printf.sprintf
         "  if (x > y) @0.50 { a = a ^ %d; } else { a = a + %d; }\n" c (c + 1));
    (* ...and the subexpression again after the merges (speculative-PRE
       fodder: partially redundant along the taken arm). *)
    buf_add b
      (Printf.sprintf "  a = a + (((x * 3) + y + %d) & 1023);\n" c);
    buf_add b "  x = (x + a) & 8191;\n  y = (y + 7) & 8191;\n"
  done;
  (* tail of tiny-benefit merges: lots of candidates, little to gain *)
  for _ = 0 to 5 do
    let c = 1 + (next () land 7) in
    buf_add b
      (Printf.sprintf
         "  if ((a & %d) == 0) @0.50 { a = a + 1; } else { a = a + 2; }\n" c)
  done;
  buf_add b "  return a;\n}\n";
  buf_add b "int rec(int n, int acc) {\n";
  buf_add b "  if (n < 1) @0.05 { return acc; }\n";
  buf_add b "  int r = 0;\n";
  buf_add b
    "  if ((n & 1) == 0) @0.50 { r = rec(n - 1, acc + n); } else { r = rec(n \
     - 1, acc ^ n); }\n";
  buf_add b "  return r;\n}\n";
  buf_add b "int main(int n) {\n";
  buf_add b "  int i = 0;\n  int acc = 0;\n";
  buf_add b "  while (i < n) @0.999 {\n";
  buf_add b "    acc = acc + work(i, acc & 255);\n";
  buf_add b "    i = i + 1;\n  }\n";
  buf_add b "  return (acc & 1048575) + rec(40, 0);\n}\n";
  Buffer.contents b

let diamonds_bench ~depth ~seed ~count =
  Suite.bench ~name:(Printf.sprintf "diamond%d" depth)
    ~description:
      (Printf.sprintf
         "%d-level diamond ladder: repeated tests, partially redundant \
          subexpressions, tiny-benefit merge tail, recursion in one arm"
         depth)
    ~args:[| count |]
    (diamonds_src ~depth ~seed)

let diamonds =
  {
    Suite.suite_name = "adv-diamonds";
    figure = "workload lab";
    benchmarks =
      [
        diamonds_bench ~depth:2 ~seed:13 ~count:600;
        diamonds_bench ~depth:4 ~seed:17 ~count:400;
        diamonds_bench ~depth:6 ~seed:29 ~count:300;
      ];
  }

(* ------------------------------------------------------------------ *)
(* adv-abnormal: cold early exits and an unreachable tail              *)
(* ------------------------------------------------------------------ *)

let abnormal_src ~guards ~seed =
  let next = lcg seed in
  let b = Buffer.create 2048 in
  buf_add b "int check(int v, int lim) {\n";
  for _ = 1 to guards do
    buf_add b
      (Printf.sprintf "  if (v < (0 - %d)) @0.01 { return 0 - 1; }\n"
         (next () land 3))
  done;
  buf_add b "  if (v >= lim) @0.01 { return 0 - 1; }\n";
  buf_add b "  return v & (lim - 1);\n}\n";
  buf_add b "int main(int n) {\n";
  buf_add b "  int i = 0;\n  int acc = 0;\n";
  buf_add b "  while (i < n) @0.999 {\n";
  buf_add b "    int c = check((acc & 2047) + i, 4096);\n";
  buf_add b "    if (c < 0) @0.01 { return acc; }\n";
  buf_add b "    acc = (acc + c) & 1048575;\n";
  buf_add b "    i = i + 1;\n  }\n";
  buf_add b "  return acc;\n}\n";
  Buffer.contents b

(** Direct-IR benchmark whose cold path ends in [unreachable]: with a
    non-negative argument the guard never fires, and canonicalization
    can even prove the [unreachable] arm dead. *)
let unreachable_text =
  "fn abn(1 params) entry=b0\n\
   b0:\n\
   v0 = param 0\n\
   v1 = const 0\n\
   v2 = cmp.lt v0, v1\n\
   branch v2 ? b1 : b2  @0.01\n\
   b1:\n\
   v3 = sub v1, v0\n\
   jump b3\n\
   b2:\n\
   v4 = add v0, v0\n\
   jump b3\n\
   b3:  ; preds: b1, b2\n\
   v5 = phi [v3, v4]\n\
   v6 = cmp.ge v5, v5\n\
   branch v6 ? b4 : b5  @0.99\n\
   b4:\n\
   return v5\n\
   b5:\n\
   unreachable\n"

let unreachable_program () =
  Ir.Program.of_graph (Ir.Parse.parse_graph unreachable_text)

let abnormal =
  {
    Suite.suite_name = "adv-abnormal";
    figure = "workload lab";
    benchmarks =
      [
        Suite.bench
          ~name:"guard3"
          ~description:"guard helper with 3 cold early returns + abandoning loop"
          ~args:[| 800 |]
          (abnormal_src ~guards:3 ~seed:31);
        Suite.bench
          ~name:"guard6"
          ~description:"guard helper with 6 cold early returns + abandoning loop"
          ~args:[| 600 |]
          (abnormal_src ~guards:6 ~seed:37);
        Suite.bench_ir ~name:"unreach"
          ~description:"cold branch into an unreachable terminator"
          ~args:[| 21 |] unreachable_program;
      ];
  }

(* ------------------------------------------------------------------ *)

let suites = [ irreducible; dispatch; diamonds; abnormal ]

(** Fresh programs for every adversarial benchmark, for harnesses that
    want raw client programs (e.g. the simulation front door) rather
    than suite records.  Names are [suite/benchmark]. *)
let programs () =
  List.concat_map
    (fun s ->
      List.map
        (fun (b : Suite.benchmark) ->
          (s.Suite.suite_name ^ "/" ^ b.Suite.name, Suite.compile b))
        s.Suite.benchmarks)
    suites
