(** All benchmark suites, in paper order, plus the adversarial lab. *)

let all : Suite.t list =
  [ Dacapo.suite; Scala_dacapo.suite; Micro.suite; Octane.suite ]

(** The workload-lab suites (not part of [all]: the paper-figure
    harnesses iterate [all], the lab has its own tier harness). *)
let adversarial : Suite.t list = Advgen.suites

let find_suite name =
  List.find_opt (fun s -> s.Suite.suite_name = name) (all @ adversarial)

let total_benchmarks () =
  List.fold_left (fun n s -> n + List.length s.Suite.benchmarks) 0 all
