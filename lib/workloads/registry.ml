(** All benchmark suites, in paper order. *)

let all : Suite.t list =
  [ Dacapo.suite; Scala_dacapo.suite; Micro.suite; Octane.suite ]

let find_suite name =
  List.find_opt (fun s -> s.Suite.suite_name = name) all

let total_benchmarks () =
  List.fold_left (fun n s -> n + List.length s.Suite.benchmarks) 0 all
