(** Adversarial workload lab: CFG shapes engineered to stress specific
    optimization tiers — irreducible multi-entry rings (authored in
    textual IR; the mini-language cannot express them), interpreter-style
    giant-switch dispatch loops, deeply nested diamond ladders, and
    exception-ish cold early exits ending in [unreachable].  All
    generators are deterministic in their seed. *)

(** Textual IR for a [nodes]-node ring ([nodes >= 2]) with entries at
    node 0 and node [nodes/2] — no natural loop, yet duplication
    candidates inside the cycle. *)
val irr_ring_text : nodes:int -> seed:int -> string

(** Mini-language source for a [handlers]-way (power of two) decode +
    dispatch interpreter loop. *)
val dispatch_src : handlers:int -> seed:int -> string

val irreducible : Suite.t
val dispatch : Suite.t
val diamonds : Suite.t
val abnormal : Suite.t

(** The four suites above, in that order. *)
val suites : Suite.t list

(** Fresh programs for every adversarial benchmark ([suite/benchmark]
    names), for harnesses wanting raw client programs. *)
val programs : unit -> (string * Ir.Program.t) list
