(** One of the four synthetic benchmark suites; see {!Suite} and
    DESIGN.md §2 for the substitution rationale, and the module's .ml for
    the per-benchmark design notes. *)

val suite : Suite.t
