(** The deterministic single-threaded discrete-event scheduler.

    Every logical thread of the simulated system — server accept loop,
    broker workers, clients, the harness controller — is a {e fiber}: a
    cooperative task implemented with OCaml effects.  A fiber runs
    uninterrupted until it suspends (sleep, lock, receive, accept);
    suspension captures its one-shot continuation and parks it until
    some event resumes it.  All progress flows through one event heap
    keyed by [(virtual-time, sequence)], so a run is a pure function of
    the seed and the program — replaying a seed replays the exact
    schedule, byte for byte.

    The scheduler also owns the run's verdict on {e liveness}: when the
    heap drains while fibers are still suspended, nothing can ever wake
    them — that is a hang, reported with the stuck fibers' names.  An
    event-count ceiling catches livelock the same way. *)

open Effect
open Effect.Deep

type _ Effect.t +=
  | Suspend : ((unit -> unit) -> unit) -> unit Effect.t
        (** [Suspend f] parks the current fiber and hands [f] a
            one-shot [resume]: the first call schedules the fiber's
            continuation at the then-current virtual time; later calls
            are ignored (a waiter may be woken by both a broadcast and
            a timeout). *)

type fiber = {
  fid : int;
  fname : string;
  mutable finished : bool;
  mutable fault : Dbds.Faults.armed_state option;
      (** fiber-local fault arming — the simulator's replacement for
          the registry's domain-local state *)
  joiners : (unit -> unit) Queue.t;
}

type event = { at : float; seq : int; desc : string; run : unit -> unit }

(* ---- binary min-heap on (at, seq) ---------------------------------- *)

module Heap = struct
  type t = { mutable arr : event array; mutable len : int }

  let dummy = { at = 0.; seq = 0; desc = ""; run = ignore }
  let create () = { arr = Array.make 256 dummy; len = 0 }
  let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

  let push h e =
    if h.len = Array.length h.arr then begin
      let bigger = Array.make (2 * h.len) dummy in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- e;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.arr.(!i) h.arr.(p)
      &&
      (let tmp = h.arr.(p) in
       h.arr.(p) <- h.arr.(!i);
       h.arr.(!i) <- tmp;
       i := p;
       true)
    do
      ()
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      h.arr.(h.len) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && before h.arr.(l) h.arr.(!smallest) then smallest := l;
        if r < h.len && before h.arr.(r) h.arr.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = h.arr.(!smallest) in
          h.arr.(!smallest) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !smallest
        end
      done;
      Some top
    end
end

(* ---- the scheduler -------------------------------------------------- *)

type t = {
  mutable vnow : float;  (** virtual time, seconds *)
  mutable seq : int;
  heap : Heap.t;
  mutable current : fiber option;
  mutable next_fid : int;
  mutable fibers : fiber list;  (** every fiber ever spawned *)
  mutable crashes : (string * string) list;  (** fiber, uncaught exn *)
  rand : Random.State.t;
  mutable events_run : int;
  event_limit : int;
  horizon : float;  (** virtual-time ceiling — livelock guard *)
  mutable trace : int64;  (** FNV-1a 64 over the executed schedule *)
}

type outcome = {
  ok : bool;  (** every fiber finished within the limits *)
  hung : string list;  (** fibers still suspended when the heap drained *)
  crashed : (string * string) list;
  events : int;
  vtime : float;
  trace_hash : int64;
  limit_hit : string option;  (** "events" / "horizon" when a guard tripped *)
}

let create ?(event_limit = 1_000_000) ?(horizon = 3600.) ~seed () =
  {
    vnow = 0.;
    seq = 0;
    heap = Heap.create ();
    current = None;
    next_fid = 0;
    fibers = [];
    crashes = [];
    rand = Random.State.make [| 0x51b1e57; seed |];
    events_run = 0;
    event_limit;
    horizon;
    trace = 0xcbf29ce484222325L;
  }

let now t = t.vnow
let rand_int t bound = Random.State.int t.rand (max 1 bound)

let mix_trace t desc at =
  let mix_byte b =
    t.trace <-
      Int64.mul
        (Int64.logxor t.trace (Int64.of_int (b land 0xff)))
        0x100000001b3L
  in
  String.iter (fun c -> mix_byte (Char.code c)) desc;
  let bits = Int64.bits_of_float at in
  for i = 0 to 7 do
    mix_byte (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let schedule ?(delay = 0.) ~desc t run =
  t.seq <- t.seq + 1;
  Heap.push t.heap
    { at = t.vnow +. Float.max 0. delay; seq = t.seq; desc; run }

(* ---- fibers --------------------------------------------------------- *)

let suspend _t f = perform (Suspend f)

let sleep t d =
  suspend t (fun resume -> schedule ~delay:d ~desc:"timer" t resume)

let finish t fiber err =
  fiber.finished <- true;
  (match err with
  | None -> ()
  | Some e ->
      t.crashes <- (fiber.fname, Printexc.to_string e) :: t.crashes);
  Queue.iter (fun wake -> wake ()) fiber.joiners;
  Queue.clear fiber.joiners

let exec t fiber thunk =
  match_with thunk ()
    {
      retc = (fun () -> finish t fiber None);
      exnc = (fun e -> finish t fiber (Some e));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend f ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  let resume () =
                    if not !resumed then begin
                      resumed := true;
                      schedule ~desc:("wake:" ^ fiber.fname) t (fun () ->
                          let prev = t.current in
                          t.current <- Some fiber;
                          continue k ();
                          t.current <- prev)
                    end
                  in
                  f resume)
          | _ -> None);
    }

let spawn t name thunk =
  let fiber =
    {
      fid = t.next_fid;
      fname = name;
      finished = false;
      fault = None;
      joiners = Queue.create ();
    }
  in
  t.next_fid <- t.next_fid + 1;
  t.fibers <- fiber :: t.fibers;
  schedule ~desc:("spawn:" ^ name) t (fun () ->
      let prev = t.current in
      t.current <- Some fiber;
      exec t fiber thunk;
      t.current <- prev);
  fiber

let join t fiber =
  if not fiber.finished then
    suspend t (fun resume -> Queue.push resume fiber.joiners)

(* ---- cooperative mutex / condition ---------------------------------- *)

(* Fibers only switch at suspension points, but the service holds its
   locks across blocking calls (a store write sleeps on the simulated
   disk mid-critical-section), so these are real queue-based locks, not
   no-ops.  Wakeups schedule the waiter, which re-contends — FIFO and
   deterministic. *)

type smutex = { mutable locked : bool; mwaiters : (unit -> unit) Queue.t }
type scond = { cmutex : smutex; cwaiters : (unit -> unit) Queue.t }

let mutex_create () = { locked = false; mwaiters = Queue.create () }

let rec mutex_lock t m =
  if not m.locked then m.locked <- true
  else begin
    suspend t (fun resume -> Queue.push resume m.mwaiters);
    mutex_lock t m
  end

let mutex_unlock _t m =
  m.locked <- false;
  match Queue.pop m.mwaiters with
  | wake -> wake ()
  | exception Queue.Empty -> ()

let cond_create m = { cmutex = m; cwaiters = Queue.create () }

let cond_wait t c =
  suspend t (fun resume ->
      Queue.push resume c.cwaiters;
      mutex_unlock t c.cmutex);
  mutex_lock t c.cmutex

let cond_broadcast _t c =
  let waiters = Queue.fold (fun acc w -> w :: acc) [] c.cwaiters in
  Queue.clear c.cwaiters;
  List.iter (fun wake -> wake ()) (List.rev waiters)

(* ---- the run loop --------------------------------------------------- *)

let run t main =
  (* Fault arming must be fiber-local, not domain-local: interleaved
     fibers would otherwise save/restore each other's state. *)
  Dbds.Faults.set_state_provider
    ~get:(fun () ->
      match t.current with Some f -> f.fault | None -> None)
    ~set:(fun v ->
      match t.current with Some f -> f.fault <- v | None -> ());
  Fun.protect ~finally:Dbds.Faults.default_state_provider @@ fun () ->
  ignore (spawn t "main" main);
  let limit_hit = ref None in
  let rec drain () =
    if t.events_run >= t.event_limit then limit_hit := Some "events"
    else if t.vnow > t.horizon then limit_hit := Some "horizon"
    else
      match Heap.pop t.heap with
      | None -> ()
      | Some ev ->
          t.vnow <- Float.max t.vnow ev.at;
          t.events_run <- t.events_run + 1;
          mix_trace t ev.desc ev.at;
          ev.run ();
          drain ()
  in
  drain ();
  let hung =
    List.rev_map
      (fun f -> f.fname)
      (List.filter (fun f -> not f.finished) t.fibers)
  in
  {
    ok = hung = [] && t.crashes = [] && !limit_hit = None;
    hung;
    crashed = t.crashes;
    events = t.events_run;
    vtime = t.vnow;
    trace_hash = t.trace;
    limit_hit = !limit_hit;
  }
