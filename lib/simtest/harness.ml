(** Whole-system simulation harness.

    Composes a complete compile-service topology — one server, a broker
    with W worker fibers, N client fibers, an optional tiered-VM
    warm-start — on top of the deterministic scheduler and the
    simulated environment, runs a seeded schedule with chaos faults
    (message drops, reorders, duplicates, partitions, slow disks, torn
    writes, clock jumps), and checks the end-to-end invariant:

    {e every request either receives the byte-identical optimized IR
    the offline oracle computes, or a clean, contained, client-visible
    failure (shed / timeout / transport error / corrupt-evict-miss) —
    never a hang, never a wrong artifact.}

    A violating seed can be {!shrink}-reduced to a minimal topology and
    fault plan, and any result can be written as a replayable
    {!write_bundle} (same grammar family as crash bundles).

    The builder is TestBuilder-shaped: start from {!builder}, chain
    [with_*] functions, finish with {!run} / {!run_seeds}. *)

module F = Dbds.Faults
module Env = Service.Env

(* ---- specs (the builder) -------------------------------------------- *)

(** A node-level fault in a multi-node fleet, at a virtual time.  Node
    indices are taken modulo the fleet size, so shrunk topologies stay
    valid.  [Kill] is a hard crash: the server stops without a [leave],
    its connections reset, and the socket debris stays — the
    coordinator's sweep must detect it.  [Rejoin] restarts a killed
    node over its surviving disk (the restart scan in miniature).
    [Partition] cuts the node off both ways until [until_]. *)
type node_event =
  | Kill of { node : int; at : float }
  | Rejoin of { node : int; at : float }
  | Partition of { node : int; at : float; until_ : float }

type spec = {
  seed : int;
  clients : int;
  requests_per_client : int;
  workers : int;
  queue_limit : int;
  chaos : int;  (** number of fault plans derived from the seed *)
  faults : F.plan list;  (** explicit plans, on top of the derived ones *)
  vm_warm : bool;
  compile_delay_s : float;  (** broker's artificial compile stretch *)
  deadline_ms : int option;  (** per-request deadline *)
  store_capacity : int;
  frontdoor : bool;
      (** serve the single-server topology through the event-loop
          {!Service.Frontdoor} instead of the thread-per-connection
          server: clients carry tenants/lanes, half of them negotiate
          the binary framing, and two protocol-chaos fibers (a
          garbage client, a slow half-open client) join the load.
          Ignored in fleet mode (the fleet verbs stay with
          {!Service.Server}). *)
  nodes : int;  (** 0 = the classic single server; K >= 1 = a fleet of
                    K workers plus a coordinator *)
  replicas : int;  (** successor copies pushed on publish (fleet mode) *)
  node_chaos : int;  (** node events derived from the seed (fleet mode) *)
  node_faults : node_event list;  (** explicit node events, on top *)
}

let builder ?(seed = 0) () =
  {
    seed;
    clients = 3;
    requests_per_client = 4;
    workers = 2;
    queue_limit = 16;
    chaos = 3;
    faults = [];
    vm_warm = false;
    compile_delay_s = 0.02;
    deadline_ms = None;
    store_capacity = 256 * 1024;
    frontdoor = false;
    nodes = 0;
    replicas = 1;
    node_chaos = 0;
    node_faults = [];
  }

let with_seed seed b = { b with seed }
let with_clients clients b = { b with clients = max 1 clients }

let with_requests requests_per_client b =
  { b with requests_per_client = max 1 requests_per_client }

let with_workers workers b = { b with workers = max 1 workers }
let with_queue_limit queue_limit b = { b with queue_limit = max 1 queue_limit }
let with_chaos chaos b = { b with chaos = max 0 chaos }
let with_fault plan b = { b with faults = b.faults @ [ plan ] }
let with_faults faults b = { b with faults = b.faults @ faults }
let with_vm_warm vm_warm b = { b with vm_warm }
let with_compile_delay compile_delay_s b = { b with compile_delay_s }
let with_deadline_ms deadline_ms b = { b with deadline_ms }
let with_frontdoor frontdoor b = { b with frontdoor }
let with_nodes nodes b = { b with nodes = max 0 nodes }
let with_replicas replicas b = { b with replicas = max 0 replicas }
let with_node_chaos node_chaos b = { b with node_chaos = max 0 node_chaos }
let with_node_fault ev b = { b with node_faults = b.node_faults @ [ ev ] }
let with_node_faults evs b = { b with node_faults = b.node_faults @ evs }

(* Chaos plans are a pure function of the seed: [chaos] draws over the
   environment sites, each with a small hit index.  Derivation is
   independent of the schedule, so the same seed always arms the same
   faults. *)
let chaos_plans ~seed n =
  let rng = Random.State.make [| 0xc4a05; seed |] in
  List.init n (fun _ ->
      let site =
        List.nth F.sim_sites (Random.State.int rng (List.length F.sim_sites))
      in
      let hit = 1 + Random.State.int rng 4 in
      { F.seed; site; hit; fn = None })

(* Node chaos is a pure function of the seed, like [chaos_plans]: each
   draw is either a kill/rejoin pair or a partition window, timed to
   land while the client load is in flight.  Every killed node rejoins,
   so the fleet is whole again for the final shutdown and scans. *)
let node_chaos_events ~seed ~nodes n =
  if nodes <= 0 then []
  else
    let rng = Random.State.make [| 0x5eed1; seed |] in
    List.concat
      (List.init n (fun _ ->
           let node = Random.State.int rng nodes in
           let at = 0.2 +. Random.State.float rng 1.3 in
           let dur = 0.3 +. Random.State.float rng 0.9 in
           if Random.State.bool rng then
             [ Kill { node; at }; Rejoin { node; at = at +. dur } ]
           else [ Partition { node; at; until_ = at +. dur } ]))

let node_event_time = function
  | Kill { at; _ } | Rejoin { at; _ } | Partition { at; _ } -> at

let node_event_to_string = function
  | Kill { node; at } -> Printf.sprintf "kill:%d@%.3f" node at
  | Rejoin { node; at } -> Printf.sprintf "rejoin:%d@%.3f" node at
  | Partition { node; at; until_ } ->
      Printf.sprintf "part:%d@%.3f-%.3f" node at until_

let node_event_of_string s =
  try
    Some
      (Scanf.sscanf s "%[a-z]:%d@%f%s" (fun kind node at rest ->
           match (kind, rest) with
           | "kill", "" -> Kill { node; at }
           | "rejoin", "" -> Rejoin { node; at }
           | "part", _ ->
               Scanf.sscanf rest "-%f" (fun until_ ->
                   Partition { node; at; until_ })
           | _ -> raise Exit))
  with _ -> None

(* Explicit faults split by layer: environment sites arm the simulated
   network/disk/clock; everything else (store and pipeline sites,
   including the deliberate [store.corrupt] bug) travels in the
   request configuration's fault plan, exactly as a real client would
   arm it.  [Config.fault_plan] holds one plan — the first wins. *)
let split_faults plans =
  let is_sim p = List.mem p.F.site F.sim_sites in
  let sim, rest = List.partition is_sim plans in
  (sim, match rest with [] -> None | p :: _ -> Some p)

(* ---- results -------------------------------------------------------- *)

type request_outcome = {
  ro_client : int;
  ro_fn : string;
  ro_label : string;  (** outcome label, or "transport"/"unreached" *)
  ro_detail : string;
}

type violation = { vio_kind : string; vio_detail : string }

type result = {
  r_spec : spec;
  r_outcomes : request_outcome list;
  r_violations : violation list;
  r_trace_hash : string;  (** 16 hex digits; equal traces = equal runs *)
  r_events : int;
  r_vtime : float;
  r_counts : (string * int) list;  (** outcome label histogram *)
}

let violating r = r.r_violations <> []

(* ---- the request pool and its oracle -------------------------------- *)

type request = { pr_fn : string; pr_ir : string; pr_digest : string }

(* The pool uses fixed generator seeds (not the run seed), so the
   offline oracle below is computed once per process and shared across
   a whole seed sweep. *)
let pool_config = { Dbds.Config.dbds with containment = true; bundle_dir = None }

let pool =
  lazy
    (let sources =
       List.init 2 (fun p ->
           Workloads.Progen.generate ~n_helpers:2 ~seed:(1000 + p) ())
     in
     (* Adversarial clients: the first benchmark of each workload-lab
        suite joins the pool, so the service is exercised with
        irreducible rings, giant switches, nested diamonds and
        cold-exit-heavy CFGs — not just progen's reducible shapes. *)
     let adversarial =
       List.concat_map
         (fun (s : Workloads.Suite.t) ->
           match s.Workloads.Suite.benchmarks with
           | b :: _ ->
               let prog = Workloads.Suite.compile b in
               List.filter_map
                 (Ir.Program.find_function prog)
                 (Ir.Program.function_names prog)
           | [] -> [])
         Workloads.Registry.adversarial
     in
     let fns =
       List.concat_map
         (fun src ->
           let prog = Lang.Frontend.compile src in
           List.filter_map
             (Ir.Program.find_function prog)
             (Ir.Program.function_names prog))
         sources
       @ adversarial
     in
     List.map
       (fun g ->
         let fn = Ir.Graph.name g in
         let ir = Ir.Printer.graph_to_string g in
         let digest =
           Service.Digest.of_request
             (Service.Digest.request_of_text ~config:pool_config ~fn ir)
         in
         { pr_fn = fn; pr_ir = ir; pr_digest = digest })
       fns
     |> Array.of_list)

(* What the broker must answer: the same lone-graph pipeline it runs,
   executed offline against the pristine request.  Keyed by content
   digest, so a sweep pays each compile once. *)
let oracle_cache : (string, string) Hashtbl.t = Hashtbl.create 64

let oracle (rq : request) =
  match Hashtbl.find_opt oracle_cache rq.pr_digest with
  | Some expected -> expected
  | None ->
      let g = Ir.Parse.parse_graph rq.pr_ir in
      let program = Ir.Program.of_graph g in
      ignore
        (Dbds.Driver.optimize_program_report ~config:pool_config ~inline:false
           ~jobs:1 program);
      let body =
        Option.value (Ir.Program.find_function program rq.pr_fn) ~default:g
      in
      let expected = Service.Digest.canonical_of_graph body in
      Hashtbl.replace oracle_cache rq.pr_digest expected;
      expected

(* ---- one simulated run ---------------------------------------------- *)

let sock = "/run/dbds.sock"
let store_dir = "/store"

(* Fleet-mode topology: one coordinator plus [nodes] workers, each with
   its own socket and its own disk subtree. *)
let coord_sock = "/run/dbds-coord.sock"
let node_sock k = Printf.sprintf "/run/dbds-node-%d.sock" k
let node_dir k = Printf.sprintf "/store/node-%d" k
let node_id k = Printf.sprintf "node-%d" k

let run spec =
  let env_faults, config_plan =
    split_faults (chaos_plans ~seed:spec.seed spec.chaos @ spec.faults)
  in
  let config = { pool_config with Dbds.Config.fault_plan = config_plan } in
  (* A config-armed fault makes contained [Failed] outcomes legitimate;
     without one they indicate a real pipeline bug. *)
  let failures_expected = config_plan <> None in
  let sched = Sched.create ~seed:spec.seed () in
  let io = Simio.create ~faults:env_faults sched in
  let env = Simio.env io in
  let pool = Lazy.force pool in
  let npool = Array.length pool in
  let outcomes = ref [] in
  let violations = ref [] in
  let violate kind detail =
    violations := { vio_kind = kind; vio_detail = detail } :: !violations
  in
  let record ro = outcomes := ro :: !outcomes in
  let request_of i j = pool.((i + j) mod npool) in

  let check_done ~client (rq : request) ir =
    if ir <> oracle rq then
      violate "wrong-artifact"
        (Printf.sprintf "client-%d %s: served IR differs from oracle (%d vs %d bytes)"
           client rq.pr_fn (String.length ir) (String.length (oracle rq)))
  in

  let client_fiber i () =
    let requests =
      List.init spec.requests_per_client (fun j -> (j, request_of i j))
    in
    let record_label (_, (rq : request)) label detail =
      record { ro_client = i; ro_fn = rq.pr_fn; ro_label = label; ro_detail = detail }
    in
    let rec serve_requests conn = function
      | [] -> Service.Client.close conn
      | ((_, rq) as item) :: rest -> (
          match
            Service.Client.compile_ex ?deadline_ms:spec.deadline_ms ~config
              ~fn:rq.pr_fn ~ir:rq.pr_ir conn
          with
          | Ok (Service.Broker.Done { ir; from_cache; _ }, _) ->
              check_done ~client:i rq ir;
              record_label item (if from_cache then "done-cache" else "done") "";
              serve_requests conn rest
          | Ok (Service.Broker.Failed msg, _) ->
              if not failures_expected then
                violate "unexpected-failure"
                  (Printf.sprintf "client-%d %s: %s" i rq.pr_fn msg);
              record_label item "failed" msg;
              serve_requests conn rest
          | Ok (Service.Broker.Shed, retry_after) ->
              (* The frontdoor's admission contract: every shed names
                 its backoff.  (The classic server's sheds predate the
                 hint — only the frontdoor is held to it.) *)
              if spec.frontdoor && retry_after = None then
                violate "shed-without-retry-after"
                  (Printf.sprintf "client-%d %s: shed with no backoff hint" i
                     rq.pr_fn);
              record_label item "shed" "";
              serve_requests conn rest
          | Ok (o, _) ->
              record_label item (Service.Broker.outcome_label o) "";
              serve_requests conn rest
          | Error msg ->
              (* Transport failure: clean and client-visible.  Drop the
                 connection and retry the rest on a fresh one. *)
              record_label item "transport" msg;
              Service.Client.close conn;
              reconnect rest)
    and reconnect = function
      | [] -> ()
      | remaining -> (
          (* Frontdoor mode exercises the multi-tenant surface: each
             client is a tenant, odd clients ride the batch lane, and
             every other client negotiates the binary framing. *)
          let tenant, lane, binary =
            if spec.frontdoor then
              ( Some (Printf.sprintf "tenant-%d" i),
                Some (if i mod 2 = 0 then "interactive" else "batch"),
                i land 1 = 1 )
            else (None, None, false)
          in
          match
            Service.Client.connect ~env ~deadline_s:10. ~io_deadline_s:120.
              ?tenant ?lane ~binary ~sock ()
          with
          | conn -> serve_requests conn remaining
          | exception Service.Client.Connect_failed _ ->
              List.iter
                (fun item -> record_label item "unreached" "connect exhausted")
                remaining)
    in
    reconnect requests
  in

  (* The fleet-mode client: a {!Service.Client.Router} hashes each
     request onto the membership ring and fails over along successors;
     a total routing failure is a clean, client-visible outcome. *)
  let client_fleet_fiber i () =
    let requests =
      List.init spec.requests_per_client (fun j -> (j, request_of i j))
    in
    let record_label (_, (rq : request)) label detail =
      record
        { ro_client = i; ro_fn = rq.pr_fn; ro_label = label; ro_detail = detail }
    in
    match
      Service.Client.Router.create ~env ~connect_deadline_s:1.0
        ~io_deadline_s:120. ~coord:coord_sock ()
    with
    | exception _ ->
        List.iter
          (fun item -> record_label item "unreached" "coordinator unreachable")
          requests
    | router ->
        List.iter
          (fun ((_, rq) as item) ->
            match
              Service.Client.Router.compile ?deadline_ms:spec.deadline_ms
                ~config ~fn:rq.pr_fn ~ir:rq.pr_ir router
            with
            | Ok (Service.Broker.Done { ir; from_cache; _ }) ->
                check_done ~client:i rq ir;
                record_label item (if from_cache then "done-cache" else "done") ""
            | Ok (Service.Broker.Failed msg) ->
                if not failures_expected then
                  violate "unexpected-failure"
                    (Printf.sprintf "client-%d %s: %s" i rq.pr_fn msg);
                record_label item "failed" msg
            | Ok o -> record_label item (Service.Broker.outcome_label o) ""
            | Error msg -> record_label item "transport" msg)
          requests;
        Service.Client.Router.close_all router
  in

  (* Ask the server at [target] to shut down.  Chaos may eat a shutdown
     exchange; armed faults are one-shot, so retries get through.  With
     [required:false] (a node that was killed and never rejoined) an
     unreachable target is simply already down. *)
  let shutdown_at ~required target =
    let rec attempt k =
      if k >= 20 then begin
        if required then
          violate "shutdown-unreachable" (target ^ ": 20 attempts failed")
      end
      else
        match
          Service.Client.connect ~env
            ~deadline_s:(if required then 5. else 0.5)
            ~io_deadline_s:30. ~sock:target ()
        with
        | exception Service.Client.Connect_failed _ ->
            if required then
              violate "shutdown-unreachable" (target ^ ": connect exhausted")
        | conn -> (
            let r = Service.Client.shutdown_server conn in
            Service.Client.close conn;
            match r with
            | Ok () -> ()
            | Error _ ->
                Sched.sleep sched 0.1;
                attempt (k + 1))
    in
    attempt 0
  in

  (* The tiered VM sharing the artifact store: it spills optimized
     bodies through the same simulated disk the broker publishes to,
     so warm-start traffic and service traffic contend under faults. *)
  let vm_warm_step store =
    let src = Workloads.Progen.generate ~n_helpers:1 ~seed:2000 () in
    let prog = Lang.Frontend.compile src in
    let lookup, spill = Service.Warm.hooks ~config store in
    let vm_config =
      Vm.Engine.config ~compile:config ~jobs:1 ~warm_lookup:lookup
        ~warm_spill:spill ()
    in
    let eng = Vm.Engine.create ~config:vm_config prog in
    for _ = 1 to 2 do
      ignore (Vm.Engine.run_full eng ~args:[| 5; 7 |])
    done
  in

  let classic_main () =
    let store =
      Service.Store.create ~env ~capacity:spec.store_capacity ~dir:store_dir ()
    in
    let broker =
      Service.Broker.create ~env ~workers:spec.workers
        ~queue_limit:spec.queue_limit ~delay_s:spec.compile_delay_s
        ~store:(Some store) ()
    in
    let server =
      env.Env.spawn "server" (fun () ->
          if spec.frontdoor then
            let config =
              {
                Service.Frontdoor.default_config with
                fd_queue_limit = spec.queue_limit;
              }
            in
            Service.Frontdoor.serve ~env ~config ~sock ~broker ()
          else Service.Server.serve ~env ~sock ~broker ())
    in
    if spec.vm_warm then vm_warm_step store;
    Sched.sleep sched 0.01;
    (* Protocol-chaos fibers against the frontdoor: a garbage client
       (junk bytes must earn a structured rejection, never an escaping
       exception or a wedged loop) and a slow-loris half-open client
       (one byte of a message at a time, then gone — the loop must
       cull it).  Both are best-effort under net chaos. *)
    let protocol_chaos =
      if not spec.frontdoor then []
      else
        [
          env.Env.spawn "garbage-client" (fun () ->
              match env.Env.connect sock with
              | exception Env.Net _ -> ()
              | conn ->
                  (try
                     conn.Env.send "\xBFgarbage, not a negotiated frame\n";
                     match
                       Service.Protocol.read_conn
                         ~deadline:(env.Env.mono () +. 60.)
                         conn
                     with
                     | Ok r
                       when Service.Protocol.field r "status" = Some "rejected"
                       ->
                         ()
                     | Ok r ->
                         violate "garbage-accepted"
                           (Printf.sprintf
                              "garbage bytes got a %s reply instead of a \
                               rejection"
                              (Service.Protocol.field_or r "status" r.verb))
                     | Error _ -> ()
                   with Env.Net _ -> ());
                  (try conn.Env.close_conn () with Env.Net _ -> ()));
          env.Env.spawn "slow-loris" (fun () ->
              match env.Env.connect sock with
              | exception Env.Net _ -> ()
              | conn ->
                  (try
                     String.iter
                       (fun c ->
                         conn.Env.send (String.make 1 c);
                         env.Env.sleep 0.004)
                       "dbds/1 compile 3\nfn 4\nmai"
                   with Env.Net _ -> ());
                  (try conn.Env.close_conn () with Env.Net _ -> ()));
        ]
    in
    let clients =
      List.init spec.clients (fun i ->
          env.Env.spawn (Printf.sprintf "client-%d" i) (client_fiber i))
    in
    List.iter (fun (c : Env.thread) -> c.Env.join ()) clients;
    List.iter (fun (c : Env.thread) -> c.Env.join ()) protocol_chaos;
    shutdown_at ~required:true sock;
    server.Env.join ();
    (* Model a process restart: a fresh store over the surviving disk
       must only ever serve artifacts the oracle agrees with — torn or
       partial publications must already be invisible or checksum-evicted. *)
    let fresh =
      Service.Store.create ~env ~capacity:spec.store_capacity ~dir:store_dir ()
    in
    Array.iter
      (fun rq ->
        match Service.Store.get fresh ~digest:rq.pr_digest with
        | None -> ()
        | Some e ->
            if e.Service.Store.ar_ir <> oracle rq then
              violate "wrong-artifact"
                (Printf.sprintf "restart scan %s: persisted artifact differs from oracle"
                   rq.pr_fn))
      pool
  in

  (* ---- the fleet topology: K workers + coordinator ------------------- *)
  let fleet_main () =
    let nodes = spec.nodes in
    let beat_s = 0.2 in
    (* Outbound half of a partition: the node's own env refuses
       connects while its cut flag is up; {!Simio.isolate} covers the
       inbound half. *)
    let cut = Array.init nodes (fun _ -> ref false) in
    let node_env k =
      {
        env with
        Env.connect =
          (fun addr ->
            if !(cut.(k)) then
              raise
                (Env.Net (Env.Refused, "connect " ^ addr ^ " (partitioned)"))
            else env.Env.connect addr);
      }
    in
    let controls = Array.make nodes None in
    let threads = Array.make nodes None in
    let alive = Array.make nodes false in
    (* (Re)start worker [k]: a fresh store over whatever survives on its
       disk (the per-node restart discipline), a fresh broker, and a
       server that joins the coordinator and federates its store. *)
    let start_node k =
      let nenv = node_env k in
      let store =
        Service.Store.create ~env:nenv ~capacity:spec.store_capacity
          ~dir:(node_dir k) ()
      in
      let broker =
        Service.Broker.create ~env:nenv ~workers:spec.workers
          ~queue_limit:spec.queue_limit ~delay_s:spec.compile_delay_s
          ~store:(Some store) ()
      in
      let fleet =
        {
          Service.Server.fl_id = node_id k;
          fl_addr = node_sock k;
          fl_coord = coord_sock;
          fl_replicas = spec.replicas;
          fl_beat_s = beat_s;
        }
      in
      controls.(k) <- None;
      threads.(k) <-
        Some
          (env.Env.spawn (node_id k) (fun () ->
               Service.Server.serve ~env:nenv ~fleet
                 ~on_control:(fun c -> controls.(k) <- Some c)
                 ~sock:(node_sock k) ~broker ()));
      alive.(k) <- true
    in
    let coordinator =
      env.Env.spawn "coordinator" (fun () ->
          Service.Fleet.coordinator ~env ~beat_timeout_s:(2.5 *. beat_s)
            ~sock:coord_sock ())
    in
    Sched.sleep sched 0.01;
    for k = 0 to nodes - 1 do
      start_node k
    done;
    (* Wait for the view to cover the whole fleet before load starts —
       a router built against a partial view would miss nodes for no
       interesting reason. *)
    let rec await_fleet attempts =
      if attempts > 200 then
        violate "fleet-boot" "coordinator never assembled the full fleet"
      else
        match
          Service.Client.Router.fetch_view ~env ~deadline_s:1.0
            ~sock:coord_sock ()
        with
        | Ok v when List.length v.Service.Member.v_nodes >= nodes -> ()
        | _ ->
            Sched.sleep sched 0.05;
            await_fleet (attempts + 1)
    in
    await_fleet 0;
    (* Scripted node chaos runs in one fiber, in time order, so
       overlapping events apply deterministically. *)
    let events =
      List.stable_sort
        (fun a b -> compare (node_event_time a) (node_event_time b))
        (node_chaos_events ~seed:spec.seed ~nodes spec.node_chaos
        @ spec.node_faults)
    in
    let norm node = ((node mod nodes) + nodes) mod nodes in
    let apply_event ev =
      let at = node_event_time ev in
      let now = Sched.now sched in
      if at > now then Sched.sleep sched (at -. now);
      match ev with
      | Kill { node; _ } ->
          let k = norm node in
          if alive.(k) then begin
            alive.(k) <- false;
            (match controls.(k) with
            | Some c -> c.Service.Server.stop ()
            | None -> ());
            (* Reset the node's traffic and leave its socket debris
               behind: to everyone else this is a crash, not a leave. *)
            Simio.sever io (node_sock k)
          end
      | Rejoin { node; _ } ->
          let k = norm node in
          if not alive.(k) then begin
            (match threads.(k) with
            | Some (t : Env.thread) -> t.Env.join ()
            | None -> ());
            start_node k
          end
      | Partition { node; until_; _ } ->
          let k = norm node in
          if alive.(k) && not !(cut.(k)) then begin
            cut.(k) := true;
            Simio.isolate io (node_sock k);
            let now = Sched.now sched in
            if until_ > now then Sched.sleep sched (until_ -. now);
            cut.(k) := false;
            Simio.heal io (node_sock k)
          end
    in
    let chaos =
      env.Env.spawn "node-chaos" (fun () -> List.iter apply_event events)
    in
    let clients =
      List.init spec.clients (fun i ->
          env.Env.spawn (Printf.sprintf "client-%d" i) (client_fleet_fiber i))
    in
    List.iter (fun (c : Env.thread) -> c.Env.join ()) clients;
    chaos.Env.join ();
    (* Shut every worker down, then the coordinator.  A node killed
       without a rejoin is already gone — best-effort there. *)
    for k = 0 to nodes - 1 do
      shutdown_at ~required:alive.(k) (node_sock k);
      match threads.(k) with
      | Some (t : Env.thread) -> t.Env.join ()
      | None -> ()
    done;
    shutdown_at ~required:true coord_sock;
    coordinator.Env.join ();
    (* Fleet-wide restart scans: every node's surviving disk must only
       hold artifacts the oracle agrees with. *)
    for k = 0 to nodes - 1 do
      let fresh =
        Service.Store.create ~env ~capacity:spec.store_capacity
          ~dir:(node_dir k) ()
      in
      Array.iter
        (fun rq ->
          match Service.Store.get fresh ~digest:rq.pr_digest with
          | None -> ()
          | Some e ->
              if e.Service.Store.ar_ir <> oracle rq then
                violate "wrong-artifact"
                  (Printf.sprintf
                     "restart scan %s on %s: persisted artifact differs from \
                      oracle"
                     rq.pr_fn (node_id k)))
        pool
    done
  in

  let main = if spec.nodes <= 0 then classic_main else fleet_main in
  let out = Sched.run sched main in
  if out.Sched.hung <> [] then
    violate "hang"
      (Printf.sprintf "heap drained with suspended fibers: %s"
         (String.concat ", " out.Sched.hung));
  List.iter
    (fun (fname, exn) ->
      violate "fiber-crash" (Printf.sprintf "%s: %s" fname exn))
    out.Sched.crashed;
  (match out.Sched.limit_hit with
  | Some guard -> violate "livelock" ("scheduler guard tripped: " ^ guard)
  | None -> ());
  let counts =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun ro ->
        Hashtbl.replace tbl ro.ro_label
          (1 + Option.value (Hashtbl.find_opt tbl ro.ro_label) ~default:0))
      !outcomes;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort compare
  in
  {
    r_spec = spec;
    r_outcomes = List.rev !outcomes;
    r_violations = List.rev !violations;
    r_trace_hash = Printf.sprintf "%016Lx" out.Sched.trace_hash;
    r_events = out.Sched.events;
    r_vtime = out.Sched.vtime;
    r_counts = counts;
  }

(* Sweep [n] seeds starting at [spec.seed]; returns every result in
   seed order. *)
let run_seeds ?(progress = fun _ _ -> ()) ~seeds spec =
  List.init seeds (fun k ->
      let r = run { spec with seed = spec.seed + k } in
      progress (spec.seed + k) r;
      r)

(* ---- shrinking ------------------------------------------------------ *)

(* Greedy minimization: materialize the derived chaos into the explicit
   fault list, then repeatedly try removing one fault or shrinking one
   topology dimension, keeping any candidate that still violates with
   the same kind.  Each accepted step restarts the scan; the loop is a
   fixpoint bounded by the spec's finite size. *)
let shrink ?(max_runs = 200) spec =
  let target =
    let r = run spec in
    match r.r_violations with
    | [] -> None
    | v :: _ -> Some v.vio_kind
  in
  match target with
  | None -> None
  | Some kind ->
      let runs = ref 0 in
      let still_violates candidate =
        incr runs;
        !runs <= max_runs
        && List.exists
             (fun v -> v.vio_kind = kind)
             (run candidate).r_violations
      in
      let materialized =
        {
          spec with
          chaos = 0;
          faults = chaos_plans ~seed:spec.seed spec.chaos @ spec.faults;
          node_chaos = 0;
          node_faults =
            node_chaos_events ~seed:spec.seed ~nodes:spec.nodes spec.node_chaos
            @ spec.node_faults;
        }
      in
      let drop_nth n l = List.filteri (fun i _ -> i <> n) l in
      let candidates s =
        List.init (List.length s.faults) (fun n ->
            { s with faults = drop_nth n s.faults })
        @ List.init (List.length s.node_faults) (fun n ->
              { s with node_faults = drop_nth n s.node_faults })
        @ (if s.clients > 1 then [ { s with clients = s.clients - 1 } ] else [])
        @ (if s.requests_per_client > 1 then
             [ { s with requests_per_client = s.requests_per_client - 1 } ]
           else [])
        @ (if s.workers > 1 then [ { s with workers = s.workers - 1 } ] else [])
        @ (if s.nodes > 1 then [ { s with nodes = s.nodes - 1 } ] else [])
        @ (if s.nodes > 0 && s.replicas > 0 then
             [ { s with replicas = s.replicas - 1 } ]
           else [])
        @ (if s.vm_warm then [ { s with vm_warm = false } ] else [])
        @ (if s.frontdoor then [ { s with frontdoor = false } ] else [])
        @
        if s.compile_delay_s > 0. then [ { s with compile_delay_s = 0. } ]
        else []
      in
      let rec fix s =
        match List.find_opt still_violates (candidates s) with
        | Some smaller when !runs <= max_runs -> fix smaller
        | _ -> s
      in
      Some (fix materialized, kind)

(* ---- replayable bundles --------------------------------------------- *)

let bundle_magic = "dbds-sim-bundle: v1"

let render_bundle (r : result) =
  let s = r.r_spec in
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  line "%s" bundle_magic;
  line "seed: %d" s.seed;
  line "clients: %d" s.clients;
  line "requests-per-client: %d" s.requests_per_client;
  line "workers: %d" s.workers;
  line "queue-limit: %d" s.queue_limit;
  line "chaos: %d" s.chaos;
  line "vm-warm: %b" s.vm_warm;
  line "compile-delay-ms: %d" (int_of_float (s.compile_delay_s *. 1000.));
  line "deadline-ms: %s"
    (match s.deadline_ms with None -> "none" | Some ms -> string_of_int ms);
  line "faults: %s"
    (match s.faults with
    | [] -> "none"
    | fs -> String.concat "," (List.map F.to_string fs));
  (* The frontdoor and fleet fields appear only when set, so classic
     bundles stay byte-compatible with v1 readers. *)
  if s.frontdoor then line "frontdoor: true";
  if s.nodes > 0 then begin
    line "nodes: %d" s.nodes;
    line "replicas: %d" s.replicas;
    line "node-chaos: %d" s.node_chaos;
    line "node-faults: %s"
      (match s.node_faults with
      | [] -> "none"
      | evs -> String.concat "," (List.map node_event_to_string evs))
  end;
  line "trace-hash: %s" r.r_trace_hash;
  List.iter
    (fun v ->
      line "violation: %s %s" v.vio_kind
        (String.map (function '\n' -> ' ' | c -> c) v.vio_detail))
    r.r_violations;
  Buffer.contents buf

exception Malformed_bundle of string

let parse_bundle text =
  let lines = String.split_on_char '\n' text in
  (match lines with
  | magic :: _ when magic = bundle_magic -> ()
  | _ -> raise (Malformed_bundle "not a dbds-sim-bundle v1 file"));
  let field key =
    let prefix = key ^ ": " in
    List.find_map
      (fun l ->
        if
          String.length l > String.length prefix
          && String.sub l 0 (String.length prefix) = prefix
        then Some (String.sub l (String.length prefix)
                     (String.length l - String.length prefix))
        else None)
      lines
  in
  let int_field key =
    match Option.bind (field key) int_of_string_opt with
    | Some n -> n
    | None -> raise (Malformed_bundle ("missing or bad field: " ^ key))
  in
  (* Fleet fields default when absent: pre-fleet bundles parse as the
     classic single-server topology. *)
  let int_field_or key default =
    match field key with
    | None -> default
    | Some s -> (
        match int_of_string_opt s with
        | Some n -> n
        | None -> raise (Malformed_bundle ("bad field: " ^ key)))
  in
  let node_faults =
    match field "node-faults" with
    | None | Some "none" -> []
    | Some s ->
        List.map
          (fun part ->
            match node_event_of_string part with
            | Some ev -> ev
            | None -> raise (Malformed_bundle ("bad node fault: " ^ part)))
          (String.split_on_char ',' s)
  in
  let faults =
    match field "faults" with
    | None | Some "none" -> []
    | Some s ->
        List.map
          (fun part ->
            match F.of_string part with
            | Ok p -> p
            | Error e -> raise (Malformed_bundle e))
          (String.split_on_char ',' s)
  in
  {
    seed = int_field "seed";
    clients = int_field "clients";
    requests_per_client = int_field "requests-per-client";
    workers = int_field "workers";
    queue_limit = int_field "queue-limit";
    chaos = int_field "chaos";
    faults;
    vm_warm = field "vm-warm" = Some "true";
    compile_delay_s = float_of_int (int_field "compile-delay-ms") /. 1000.;
    deadline_ms =
      (match field "deadline-ms" with
      | None | Some "none" -> None
      | Some s -> int_of_string_opt s);
    store_capacity = (builder ()).store_capacity;
    frontdoor = field "frontdoor" = Some "true";
    nodes = int_field_or "nodes" 0;
    replicas = int_field_or "replicas" 1;
    node_chaos = int_field_or "node-chaos" 0;
    node_faults;
  }

(** Write [r] as a replayable bundle under [dir]; returns the path.
    Atomic, via the crash-bundle discipline. *)
let write_bundle ~dir r =
  let name = Printf.sprintf "dbds-sim-%d.bundle" r.r_spec.seed in
  Dbds.Bundle.write_text ~dir ~name (render_bundle r)

(** Parse a bundle file back into its spec and re-run it. *)
let replay path =
  let text = In_channel.with_open_bin path In_channel.input_all in
  run (parse_bundle text)
