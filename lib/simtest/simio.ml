(** The simulated environment: an {!Service.Env.t} backed by the
    deterministic scheduler — virtual clocks, an in-memory network with
    per-link latency plus seeded drop/reorder/duplicate/partition
    faults, and an in-memory disk with slow IO, torn writes, and
    crash-mid-rename.

    Environment faults reuse the service's {!Dbds.Faults.plan} grammar:
    each plan arms one {!Dbds.Faults.sim_sites} site with a hit count,
    and the optional [fn] component matches as a substring of the
    operation's tag (a link name like ["conn3:client-2->server"] or a
    file path), so [net.drop:2:client-2] drops the second chunk that
    client ever sends.  Fault decisions are pure counter arithmetic —
    no randomness beyond the seeded scheduler — so a seed plus a plan
    list replays exactly. *)

module F = Dbds.Faults
module Env = Service.Env

(** A hard simulated crash (process death mid-operation).  Deliberately
    {e not} a [Sys_error]: the store's containment must not see it, so
    it propagates like a power cut and leaves whatever state was on the
    simulated disk at that instant. *)
exception Crashed of string

let () =
  Printexc.register_printer (function
    | Crashed ctx -> Some (Printf.sprintf "Simio.Crashed(%s)" ctx)
    | _ -> None)

type arm = { plan : F.plan; mutable count : int }

(* One endpoint of a bidirectional stream.  [floor] is the FIFO
   delivery floor for chunks arriving here: no send ever delivers
   before an earlier send — the link is a reliable ordered stream,
   like the Unix socket it stands in for.  Faults delay, sever or
   partition the link; they never garble the byte stream itself. *)
type ep = {
  edge : string;
  inq : string Queue.t;
  rbuf : Buffer.t;
  mutable floor : float;
  mutable closed : bool;
  mutable peer_closed : bool;
  mutable reset : bool;
  mutable rwaiter : (unit -> unit) option;
}

type conn_rec = { cr_client : ep; cr_server : ep }

type t = {
  sched : Sched.t;
  net_latency : float;
  disk_latency : float;
  wall_base : float;
  mutable wall_offset : float;  (** NTP steps land here; mono ignores it *)
  files : (string, string) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
  listeners : (string, listener_rec) Hashtbl.t;
  denied : (string, unit) Hashtbl.t;
      (** socket paths whose connect answers EACCES — test hook for the
          stale-socket probe *)
  unreachable : (string, unit) Hashtbl.t;
      (** isolated listener addrs: connect answers ECONNREFUSED — the
          node-partition primitive for multi-node fleets *)
  conns : (string, conn_rec list ref) Hashtbl.t;
      (** live connections by the listener addr they were accepted on,
          so {!sever} / {!isolate} can reset a whole node's traffic *)
  eps : (int, ep) Hashtbl.t;
      (** conn-id → endpoint, the poller's readiness lookup *)
  lrecs : (int, listener_rec) Hashtbl.t;  (** listener-id → record *)
  arms : arm list;
  mutable partition_until : float;
  mutable conn_count : int;
}

and listener_rec = {
  laddr : string;
  l_id : int;
  backlog : Env.conn Queue.t;
  mutable lwaiter : (unit -> unit) option;
  mutable lclosed : bool;
}

let create ?(net_latency = 0.001) ?(disk_latency = 0.002)
    ?(wall_base = 1.7e9) ?(faults = []) sched =
  let io =
    {
      sched;
      net_latency;
      disk_latency;
      wall_base;
      wall_offset = 0.;
      files = Hashtbl.create 64;
      dirs = Hashtbl.create 8;
      listeners = Hashtbl.create 4;
      denied = Hashtbl.create 4;
      unreachable = Hashtbl.create 4;
      conns = Hashtbl.create 4;
      eps = Hashtbl.create 16;
      lrecs = Hashtbl.create 4;
      arms = List.map (fun plan -> { plan; count = 0 }) faults;
      partition_until = 0.;
      conn_count = 0;
    }
  in
  (* Clock jumps are scheduled, not counted: plan [clock.jump:N] steps
     the wall clock +1h at virtual second N.  The monotonic clock is
     untouched — deadlines must not notice. *)
  List.iter
    (fun (p : F.plan) ->
      if p.F.site = F.Clock_jump then
        Sched.schedule ~delay:(float_of_int p.F.hit) ~desc:"clock-jump" sched
          (fun () -> io.wall_offset <- io.wall_offset +. 3600.))
    faults;
  io

let deny io addr = Hashtbl.replace io.denied addr ()

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

(* Does an armed env fault fire for this (site, tag) occurrence?  Each
   matching arm counts the occurrence; the arm fires exactly on its
   hit-th one. *)
let fires io site ~tag =
  List.exists
    (fun a ->
      a.plan.F.site = site
      && (match a.plan.F.fn with
         | None -> true
         | Some sub -> contains ~needle:sub tag)
      &&
      (a.count <- a.count + 1;
       a.count = a.plan.F.hit))
    io.arms

(* ---- network -------------------------------------------------------- *)

let make_ep edge =
  {
    edge;
    inq = Queue.create ();
    rbuf = Buffer.create 256;
    floor = 0.;
    closed = false;
    peer_closed = false;
    reset = false;
    rwaiter = None;
  }

let wake_reader ep =
  match ep.rwaiter with
  | None -> ()
  | Some wake ->
      ep.rwaiter <- None;
      wake ()

let deliver io peer chunk =
  if not (peer.closed || peer.reset) then begin
    Queue.push chunk peer.inq;
    wake_reader peer
  end;
  ignore io

let send io self peer chunk =
  if self.closed then raise (Env.Net (Env.Closed, "send on closed connection"));
  if self.reset || peer.reset then raise (Env.Net (Env.Reset, self.edge));
  if peer.closed then raise (Env.Net (Env.Reset, self.edge));
  let tag = self.edge in
  let now = Sched.now io.sched in
  if fires io F.Net_partition ~tag then
    io.partition_until <- Float.max io.partition_until (now +. 1.0);
  let base =
    Float.max (now +. io.net_latency)
      (Float.max peer.floor io.partition_until)
  in
  if fires io F.Net_drop ~tag then begin
    (* A dropped chunk is a lost stream prefix: silently black-holing
       it could hang the peer mid-message forever, so the link resets —
       both sides see a clean, *detectable* failure. *)
    Sched.schedule ~delay:(base -. now) ~desc:("drop:" ^ tag) io.sched
      (fun () ->
        self.reset <- true;
        peer.reset <- true;
        wake_reader peer;
        wake_reader self)
  end
  else begin
    (* The transport is a reliable byte stream (a Unix socket): the
       kernel never reorders or duplicates bytes *within* a
       connection, so those faults must not garble the stream —
       garbling would fail requests the real system answers correctly.
       Reorder therefore surfaces as what packet reordering looks like
       through a stream: a head-of-line latency spike (FIFO
       preserved).  Dup surfaces as a retransmission storm the
       endpoints give up on: the chunk arrives, then the link resets —
       a clean, detectable failure at a *different* point than drop
       (after delivery rather than instead of it). *)
    let tdel =
      if fires io F.Net_reorder ~tag then base +. (3. *. io.net_latency)
      else base
    in
    peer.floor <- tdel;
    Sched.schedule ~delay:(tdel -. now) ~desc:("deliver:" ^ tag) io.sched
      (fun () -> deliver io peer chunk);
    if fires io F.Net_dup ~tag then
      Sched.schedule
        ~delay:(tdel -. now +. io.net_latency)
        ~desc:("dup:" ^ tag) io.sched
        (fun () ->
          self.reset <- true;
          peer.reset <- true;
          wake_reader peer;
          wake_reader self)
  end

(* Block until the endpoint has buffered bytes, EOF, reset, or the
   (absolute, monotonic) deadline.  The waiter may be woken by either a
   delivery or the deadline timer; the loop re-checks state, so a
   double wake is harmless (and [Suspend]'s resume is one-shot). *)
let rec await_input io ep deadline =
  while not (Queue.is_empty ep.inq) do
    Buffer.add_string ep.rbuf (Queue.pop ep.inq)
  done;
  if Buffer.length ep.rbuf = 0 then
    if ep.reset then raise (Env.Net (Env.Reset, ep.edge))
    else if ep.peer_closed then raise (Env.Net (Env.Eof, ep.edge))
    else if Sched.now io.sched >= deadline then
      raise (Env.Net (Env.Timeout, ep.edge))
    else begin
      Sched.suspend io.sched (fun resume ->
          ep.rwaiter <- Some resume;
          if deadline < Float.infinity then
            Sched.schedule
              ~delay:(deadline -. Sched.now io.sched)
              ~desc:("recv-deadline:" ^ ep.edge) io.sched resume);
      await_input io ep deadline
    end

let take ep n =
  let s = Buffer.sub ep.rbuf 0 n in
  let rest = Buffer.sub ep.rbuf n (Buffer.length ep.rbuf - n) in
  Buffer.clear ep.rbuf;
  Buffer.add_string ep.rbuf rest;
  s

let recv_exact io ep deadline n =
  while
    (while not (Queue.is_empty ep.inq) do
       Buffer.add_string ep.rbuf (Queue.pop ep.inq)
     done;
     Buffer.length ep.rbuf < n)
  do
    await_input io ep deadline
  done;
  take ep n

let recv_line io ep deadline =
  let rec find () =
    match String.index_opt (Buffer.contents ep.rbuf) '\n' with
    | Some i -> i
    | None ->
        await_input io ep deadline;
        find ()
  in
  let i = find () in
  let line = take ep (i + 1) in
  String.sub line 0 i

let close_ep io self peer =
  if not self.closed then begin
    self.closed <- true;
    Sched.schedule ~delay:io.net_latency ~desc:("close:" ^ self.edge) io.sched
      (fun () ->
        peer.peer_closed <- true;
        wake_reader peer)
  end

(* The non-blocking read: drain delivered chunks into the read buffer
   and hand back what is there.  EOF/reset only surface once the buffer
   is empty — bytes that arrived before the failure are still valid. *)
let try_recv io self n =
  ignore io;
  if self.closed then raise (Env.Net (Env.Closed, "recv on closed connection"));
  while not (Queue.is_empty self.inq) do
    Buffer.add_string self.rbuf (Queue.pop self.inq)
  done;
  let k = min n (Buffer.length self.rbuf) in
  if k > 0 then take self k
  else if self.reset then raise (Env.Net (Env.Reset, self.edge))
  else if self.peer_closed then raise (Env.Net (Env.Eof, self.edge))
  else ""

let conn_of_ep io self peer =
  let id = Env.fresh_id () in
  Hashtbl.replace io.eps id self;
  {
    Env.id;
    send = (fun chunk -> send io self peer chunk);
    recv_exact = (fun deadline n -> recv_exact io self deadline n);
    recv_line = (fun deadline -> recv_line io self deadline);
    try_recv = (fun n -> try_recv io self n);
    try_send =
      (* The simulated link never short-writes: one send is one chunk,
         which keeps message-per-chunk fault targeting intact. *)
      (fun chunk ->
        send io self peer chunk;
        String.length chunk);
    close_conn =
      (fun () ->
        Hashtbl.remove io.eps id;
        close_ep io self peer);
  }

let register_conn io addr cr =
  match Hashtbl.find_opt io.conns addr with
  | Some cell -> cell := cr :: !cell
  | None -> Hashtbl.replace io.conns addr (ref [ cr ])

let connect io addr =
  if Hashtbl.mem io.denied addr then
    raise (Env.Net (Env.Denied, "connect " ^ addr));
  if Hashtbl.mem io.unreachable addr then
    raise (Env.Net (Env.Refused, "connect " ^ addr ^ " (isolated)"));
  match Hashtbl.find_opt io.listeners addr with
  | Some l when not l.lclosed ->
      io.conn_count <- io.conn_count + 1;
      let tag = Printf.sprintf "conn%d" io.conn_count in
      let cep = make_ep (tag ^ ":c->s") and sep = make_ep (tag ^ ":s->c") in
      register_conn io addr { cr_client = cep; cr_server = sep };
      Queue.push (conn_of_ep io sep cep) l.backlog;
      (match l.lwaiter with
      | None -> ()
      | Some wake ->
          l.lwaiter <- None;
          wake ());
      conn_of_ep io cep sep
  | _ ->
      if Hashtbl.mem io.files addr then
        raise (Env.Net (Env.Refused, "connect " ^ addr))
      else raise (Env.Net (Env.Not_found, "connect " ^ addr))

let listen io addr =
  if Hashtbl.mem io.files addr || Hashtbl.mem io.listeners addr then
    raise (Env.Net (Env.Other "address already in use", "listen " ^ addr));
  Hashtbl.replace io.files addr "";
  let lid = Env.fresh_id () in
  let l =
    {
      laddr = addr;
      l_id = lid;
      backlog = Queue.create ();
      lwaiter = None;
      lclosed = false;
    }
  in
  Hashtbl.replace io.listeners addr l;
  Hashtbl.replace io.lrecs lid l;
  let rec accept () =
    if l.lclosed then raise (Env.Net (Env.Closed, "accept " ^ addr));
    match Queue.pop l.backlog with
    | conn -> conn
    | exception Queue.Empty ->
        Sched.suspend io.sched (fun resume -> l.lwaiter <- Some resume);
        accept ()
  in
  let try_accept () =
    if l.lclosed then raise (Env.Net (Env.Closed, "accept " ^ addr));
    match Queue.pop l.backlog with
    | conn -> Some conn
    | exception Queue.Empty -> None
  in
  let close_listener () =
    if not l.lclosed then begin
      l.lclosed <- true;
      Hashtbl.remove io.listeners addr;
      Hashtbl.remove io.lrecs lid;
      (match l.lwaiter with
      | None -> ()
      | Some wake ->
          l.lwaiter <- None;
          wake ())
    end
  in
  { Env.lid; accept; try_accept; close_listener }

(* ---- node-level faults ----------------------------------------------- *)

(* Reset every live connection accepted on [addr] — both endpoints see
   ECONNRESET and any blocked reader wakes.  The registry entry is
   dropped; already-closed conns are reset harmlessly (their readers
   are gone). *)
let reset_conns io addr =
  match Hashtbl.find_opt io.conns addr with
  | None -> ()
  | Some cell ->
      List.iter
        (fun cr ->
          cr.cr_client.reset <- true;
          cr.cr_server.reset <- true;
          wake_reader cr.cr_client;
          wake_reader cr.cr_server)
        !cell;
      Hashtbl.remove io.conns addr

let close_listener_at io addr =
  match Hashtbl.find_opt io.listeners addr with
  | None -> ()
  | Some l ->
      l.lclosed <- true;
      Hashtbl.remove io.listeners addr;
      Hashtbl.remove io.lrecs l.l_id;
      (match l.lwaiter with
      | None -> ()
      | Some wake ->
          l.lwaiter <- None;
          wake ())

(** Hard-kill the node listening on [addr]: every live connection
    resets and the listener closes (its accept raises [Closed]).  The
    socket file is left behind — exactly the stale-socket debris a
    crashed process leaves, so later connects answer [Refused] and a
    restart exercises the claim-socket probe. *)
let sever io addr =
  reset_conns io addr;
  close_listener_at io addr

(** Partition the node at [addr] off the network: live connections
    reset and new connects answer [Refused], but the listener itself
    stays up — the process is alive, just unreachable.  Outbound
    traffic is the harness's side of the cut (wrap the node's
    [Env.connect]). *)
let isolate io addr =
  Hashtbl.replace io.unreachable addr ();
  reset_conns io addr

(** Undo {!isolate}: connects to [addr] reach the listener again. *)
let heal io addr = Hashtbl.remove io.unreachable addr

(* ---- poller ---------------------------------------------------------- *)

(* The simulated readiness multiplexer.  Readiness is a pure state
   check; when nothing is ready the fiber parks one one-shot resume in
   every watched endpoint's waiter slot (plus a deadline timer).  The
   resume is idempotent, so N slots firing is fine, and stale resumes
   left in unwoken slots are no-ops that the next poll overwrites —
   polled endpoints must never also have a blocking reader, which is
   exactly the Env contract. *)
let sim_poller io =
  let pending = ref false in
  let closed = ref false in
  let waiter = ref None in
  let conn_ready (c : Env.conn) =
    match Hashtbl.find_opt io.eps c.Env.id with
    | None -> true (* closed under the poller's feet: let the loop see *)
    | Some ep ->
        Buffer.length ep.rbuf > 0
        || (not (Queue.is_empty ep.inq))
        || ep.reset || ep.peer_closed
  in
  let listener_ready (l : Env.listener) =
    match Hashtbl.find_opt io.lrecs l.Env.lid with
    | None -> true
    | Some lr -> lr.lclosed || not (Queue.is_empty lr.backlog)
  in
  let poll ~conns ~listeners deadline =
    if !closed then raise (Env.Net (Env.Closed, "poll on closed poller"));
    if
      !pending
      || List.exists conn_ready conns
      || List.exists listener_ready listeners
      || Sched.now io.sched >= deadline
    then pending := false
    else begin
      Sched.suspend io.sched (fun resume ->
          waiter := Some resume;
          List.iter
            (fun (c : Env.conn) ->
              match Hashtbl.find_opt io.eps c.Env.id with
              | Some ep -> ep.rwaiter <- Some resume
              | None -> ())
            conns;
          List.iter
            (fun (l : Env.listener) ->
              match Hashtbl.find_opt io.lrecs l.Env.lid with
              | Some lr -> lr.lwaiter <- Some resume
              | None -> ())
            listeners;
          if deadline < Float.infinity then
            Sched.schedule
              ~delay:(deadline -. Sched.now io.sched)
              ~desc:"poll-deadline" io.sched resume);
      pending := false;
      waiter := None
    end
  in
  let wake () =
    pending := true;
    match !waiter with
    | None -> ()
    | Some resume ->
        waiter := None;
        resume ()
  in
  let close_poller () =
    if not !closed then begin
      closed := true;
      wake ()
    end
  in
  { Env.poll; wake; close_poller }

(* ---- disk ----------------------------------------------------------- *)

let disk_op io site ~path =
  Sched.sleep io.sched io.disk_latency;
  if fires io F.Disk_slow ~tag:path then Sched.sleep io.sched 2.0;
  ignore site

let read_file io path =
  disk_op io `Read ~path;
  match Hashtbl.find_opt io.files path with
  | Some content -> content
  | None -> raise (Sys_error (path ^ ": no such file (simulated)"))

let write_file io path content =
  disk_op io `Write ~path;
  if fires io F.Disk_torn ~tag:path then begin
    Hashtbl.replace io.files path
      (String.sub content 0 (String.length content / 2));
    raise (Sys_error (path ^ ": torn write (simulated)"))
  end
  else Hashtbl.replace io.files path content

let rename io src dst =
  disk_op io `Rename ~path:src;
  match Hashtbl.find_opt io.files src with
  | None -> raise (Sys_error (src ^ ": no such file (simulated)"))
  | Some content ->
      if fires io F.Disk_crash ~tag:src then
        (* Power cut between data write and publication: the temp file
           stays, the final name never appears, and control never
           returns to the writer. *)
        raise (Crashed ("rename " ^ src))
      else begin
        Hashtbl.remove io.files src;
        Hashtbl.replace io.files dst content
      end

let readdir io dir =
  let names =
    Hashtbl.fold
      (fun path _ acc ->
        if Filename.dirname path = dir then Filename.basename path :: acc
        else acc)
      io.files []
  in
  let arr = Array.of_list names in
  Array.sort compare arr;
  arr

(* ---- the environment record ----------------------------------------- *)

let env io =
  {
    Env.now =
      (fun () -> io.wall_base +. Sched.now io.sched +. io.wall_offset);
    mono = (fun () -> Sched.now io.sched);
    sleep = (fun d -> Sched.sleep io.sched d);
    rand_int = (fun bound -> Sched.rand_int io.sched bound);
    pid = 1;
    spawn =
      (fun name f ->
        let fiber = Sched.spawn io.sched name f in
        { Env.join = (fun () -> Sched.join io.sched fiber) });
    mutex =
      (fun () ->
        let m = Sched.mutex_create () in
        {
          Env.lock = (fun () -> Sched.mutex_lock io.sched m);
          unlock = (fun () -> Sched.mutex_unlock io.sched m);
          new_cond =
            (fun () ->
              let c = Sched.cond_create m in
              {
                Env.wait = (fun () -> Sched.cond_wait io.sched c);
                broadcast = (fun () -> Sched.cond_broadcast io.sched c);
              });
        });
    listen = (fun addr -> listen io addr);
    connect = (fun addr -> connect io addr);
    poller = (fun () -> sim_poller io);
    file_exists =
      (fun path -> Hashtbl.mem io.files path || Hashtbl.mem io.dirs path);
    mkdir = (fun path -> Hashtbl.replace io.dirs path ());
    readdir = (fun dir -> readdir io dir);
    file_size =
      (fun path ->
        match Hashtbl.find_opt io.files path with
        | Some c -> String.length c
        | None -> raise (Sys_error (path ^ ": no such file (simulated)")));
    read_file = (fun path -> read_file io path);
    write_file = (fun path content -> write_file io path content);
    rename = (fun src dst -> rename io src dst);
    remove =
      (fun path ->
        if Hashtbl.mem io.files path then Hashtbl.remove io.files path
        else raise (Sys_error (path ^ ": no such file (simulated)")));
  }
