(** The tiered execution engine: interpret → profile → background-compile
    → deopt.

    Tier 0 is {!Interp.Machine}: every function starts interpreted, with
    per-function invocation and loop-backedge counters and branch
    outcomes recorded into a persistent {!Interp.Profile}.  When
    {!Policy} thresholds fire, the function's tier-0 body is copied, its
    branch probabilities rewritten from the observed profile
    ([Profile.apply_graph]) and the copy enqueued on the
    {!Compilequeue}; the optimized result is installed in the versioned
    {!Codecache} and subsequent calls dispatch to it (tier 1).

    Safety comes from {!Deopt}: an optimized frame that faults is undone
    (heap, globals, allocations — the interpreter's journal), the cache
    entry invalidated, and the invocation transparently re-executed in
    tier 0, so the engine's observable behaviour is byte-identical to a
    never-compiled run.  Profile drift past the policy threshold
    triggers recompilation, capped per function like the paper's
    3-iteration pipeline cap.

    There is no on-stack replacement: promotion takes effect at the next
    {i invocation} of a function, never mid-loop.  Steady-state
    behaviour therefore emerges over repeated {!run} calls (heap and
    globals are fresh per run; profile, counters and code cache
    persist), matching how the evaluation measures warmed-up peak
    performance (paper §5.1). *)

module Machine = Interp.Machine
module Profile = Interp.Profile

type config = {
  policy : Policy.t;
  compile : Dbds.Config.t;  (** background-compilation pipeline config *)
  cache_capacity : int;  (** code-cache size budget (models [MS]) *)
  jobs : int;  (** compile-queue parallelism *)
  batch : int;  (** drain the queue once this many requests pend *)
  icache : Machine.icache_config;
  fuel : int;  (** per-{!run} instruction budget *)
  deopt_penalty : float;  (** flat cycle cost of a tier transition *)
  deopt_plan : (string * int) option;
      (** force a deoptimization in [fn]'s [n]-th tier-1 frame (1-based;
          fires once) — the runtime analogue of a fault plan *)
  warm_lookup :
    (fn:string -> pristine:Ir.Graph.t -> (Ir.Graph.t * int) option) option;
      (** compilation-service warm start: given a function's {e pristine}
          tier-0 body (profile deliberately excluded from the key — a
          stale-profile body is still a correct body, deopt guards it),
          return a previously published optimized body and its work
          units.  Consulted on first-time promotions only; drift
          recompiles always recompile. *)
  warm_spill :
    (fn:string ->
    pristine:Ir.Graph.t ->
    optimized:Ir.Graph.t ->
    work:int ->
    unit)
    option;
      (** publish a background-compile result keyed by the same pristine
          body, so the next engine lifetime warm-starts *)
}

let config ?(policy = Policy.default) ?(compile = Dbds.Config.dbds)
    ?cache_capacity ?(jobs = 1) ?(batch = 1)
    ?(icache = Machine.default_icache) ?(fuel = 10_000_000)
    ?(deopt_penalty = 200.0) ?deopt_plan ?warm_lookup ?warm_spill () =
  {
    policy;
    compile;
    cache_capacity =
      (match cache_capacity with
      | Some c -> c
      | None -> compile.Dbds.Config.max_unit_size);
    jobs;
    batch;
    icache;
    fuel;
    deopt_penalty;
    deopt_plan;
    warm_lookup;
    warm_spill;
  }

type t = {
  cfg : config;
  base : Ir.Program.t;  (** tier-0 truth; never mutated by the engine *)
  profile : Profile.t;  (** persistent across runs *)
  counters : (string, Policy.counters) Hashtbl.t;
  cache : Codecache.t;
  queue : Compilequeue.t;
  snapshots : (string, Profile.t) Hashtbl.t;
      (** per installed function: the profile its code was compiled
          against — the {!Profile.drift} baseline *)
  backedge_sets : (string, (int * int, unit) Hashtbl.t) Hashtbl.t;
  stats : Vmstats.t;
  mutable deopt_log : Deopt.event list;  (** newest first *)
  mutable failures : Dbds.Driver.failure list;  (** newest first *)
  mutable forced_left : int;
      (** countdown for [deopt_plan]; -1 once fired or absent *)
}

let create ?(config = config ()) program =
  {
    cfg = config;
    base = program;
    profile = Profile.create ();
    counters = Hashtbl.create 16;
    cache = Codecache.create ~capacity:config.cache_capacity;
    queue = Compilequeue.create ~compile:config.compile ~jobs:config.jobs program;
    snapshots = Hashtbl.create 16;
    backedge_sets = Hashtbl.create 16;
    stats = Vmstats.create ();
    deopt_log = [];
    failures = [];
    forced_left =
      (match config.deopt_plan with Some (_, n) -> n | None -> -1);
  }

let counters_of t fn =
  match Hashtbl.find_opt t.counters fn with
  | Some c -> c
  | None ->
      let c = Policy.fresh_counters () in
      Hashtbl.replace t.counters fn c;
      c

(* The set of CFG back edges of [fn]'s tier-0 body, computed once. *)
let backedges_of t fn g =
  match Hashtbl.find_opt t.backedge_sets fn with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 4 in
      let dom = Ir.Dom.compute g in
      let loops = Ir.Loops.compute dom in
      List.iter
        (fun (l : Ir.Loops.loop) ->
          List.iter (fun e -> Hashtbl.replace s e ()) l.Ir.Loops.back_edges)
        (Ir.Loops.loops loops);
      Hashtbl.replace t.backedge_sets fn s;
      s

let base_graph t fn =
  match Ir.Program.find_function t.base fn with
  | Some g -> g
  | None -> raise (Machine.Runtime_error (Printf.sprintf "unknown function %s" fn))

(* ------------------------------------------------------------------ *)
(* Compilation requests                                                *)
(* ------------------------------------------------------------------ *)

(* Warm start: on a first-time promotion, ask the attached artifact
   store for an optimized body before spending any compile effort.  A
   hit installs directly — no queue, no pipeline — with the current
   profile as the drift baseline. *)
let try_warm_start t fn =
  match t.cfg.warm_lookup with
  | None -> false
  | Some lookup -> (
      match lookup ~fn ~pristine:(base_graph t fn) with
      | None ->
          t.stats.Vmstats.service_misses <-
            t.stats.Vmstats.service_misses + 1;
          false
      | Some (body, work) ->
          ignore
            (Codecache.install t.cache ~fn ~body
               ~samples:(Profile.samples_of t.profile ~fn)
               ~work);
          Hashtbl.replace t.snapshots fn (Profile.snapshot t.profile);
          t.stats.Vmstats.service_hits <- t.stats.Vmstats.service_hits + 1;
          true)

let enqueue_compile t fn ~recompile =
  let c = counters_of t fn in
  c.Policy.attempts <- c.Policy.attempts + 1;
  if recompile then t.stats.Vmstats.recompilations <- t.stats.Vmstats.recompilations + 1
  else t.stats.Vmstats.promotions <- t.stats.Vmstats.promotions + 1;
  if (not recompile) && try_warm_start t fn then ()
  else begin
    c.Policy.pending <- true;
    let body = Ir.Graph.copy (base_graph t fn) in
    Profile.apply_graph t.profile body;
    Compilequeue.enqueue t.queue
      {
        Compilequeue.rq_fn = fn;
        rq_body = body;
        rq_profile = Profile.render (Profile.snapshot t.profile);
        rq_samples = Profile.samples_of t.profile ~fn;
        rq_recompile = recompile;
      };
    t.stats.Vmstats.max_queue_depth <-
      max t.stats.Vmstats.max_queue_depth (Compilequeue.depth t.queue)
  end

let drain t =
  let outcomes = Compilequeue.drain t.queue in
  List.iter
    (fun (oc : Compilequeue.outcome) ->
      let rq = oc.Compilequeue.oc_request in
      let c = counters_of t rq.Compilequeue.rq_fn in
      c.Policy.pending <- false;
      match oc.Compilequeue.oc_result with
      | Ok (body, work) ->
          ignore
            (Codecache.install t.cache ~fn:rq.Compilequeue.rq_fn ~body
               ~samples:rq.Compilequeue.rq_samples ~work);
          Hashtbl.replace t.snapshots rq.Compilequeue.rq_fn
            (Profile.parse rq.Compilequeue.rq_profile);
          t.stats.Vmstats.compiles <- t.stats.Vmstats.compiles + 1;
          t.stats.Vmstats.compile_work <- t.stats.Vmstats.compile_work + work;
          (match t.cfg.warm_spill with
          | None -> ()
          | Some spill ->
              let fn = rq.Compilequeue.rq_fn in
              spill ~fn ~pristine:(base_graph t fn) ~optimized:body ~work;
              t.stats.Vmstats.service_spills <-
                t.stats.Vmstats.service_spills + 1)
      | Error f ->
          t.stats.Vmstats.compile_failures <-
            t.stats.Vmstats.compile_failures + 1;
          t.failures <- f :: t.failures)
    outcomes

let maybe_drain t =
  if Compilequeue.depth t.queue >= t.cfg.batch then drain t

let consider_compile t fn =
  let c = counters_of t fn in
  if Policy.should_promote t.cfg.policy c then begin
    enqueue_compile t fn ~recompile:false;
    maybe_drain t
  end

(* Drift check at a run boundary: any installed function whose observed
   probabilities moved too far from its compile-time snapshot gets
   re-enqueued. *)
let check_drift t =
  List.iter
    (fun (e : Codecache.entry) ->
      let fn = e.Codecache.ce_fn in
      match Hashtbl.find_opt t.snapshots fn with
      | None -> ()
      | Some baseline ->
          let drift =
            Profile.drift ~min_samples:t.cfg.policy.Policy.drift_min_samples
              ~fn ~baseline t.profile
          in
          let c = counters_of t fn in
          if Policy.should_recompile t.cfg.policy c ~drift then
            enqueue_compile t fn ~recompile:true)
    (Codecache.entries t.cache)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

(* Per-tier cycle attribution: a stack of frames, each remembering the
   cycle counter at entry and accumulating its children's totals so the
   frame's own share is total - children. *)
type frame = { ftier : int; fstart : float; mutable fchild : float }

type run_state = {
  st : Machine.Exec.st;
  mutable frames : frame list;
  mutable opt_depth : int;  (** live tier-1 frames (journaling while > 0) *)
}

let push_frame t rs tier =
  ignore t;
  rs.frames <-
    { ftier = tier; fstart = (Machine.Exec.stats rs.st).Machine.cycles; fchild = 0.0 }
    :: rs.frames

let pop_frame t rs =
  match rs.frames with
  | [] -> 0.0
  | f :: rest ->
      rs.frames <- rest;
      let total = (Machine.Exec.stats rs.st).Machine.cycles -. f.fstart in
      let self = total -. f.fchild in
      if f.ftier = 0 then
        t.stats.Vmstats.tier0_cycles <- t.stats.Vmstats.tier0_cycles +. self
      else t.stats.Vmstats.tier1_cycles <- t.stats.Vmstats.tier1_cycles +. self;
      (match rest with p :: _ -> p.fchild <- p.fchild +. total | [] -> ());
      total

(* Execute [fn] in tier 0.  [count] is false for deopt re-runs and
   sampled runs must not re-trigger promotion. *)
let rec run_tier0 t rs fn args ~count ~sampled =
  let g = base_graph t fn in
  let c = counters_of t fn in
  if count then c.Policy.invocations <- c.Policy.invocations + 1;
  if sampled then t.stats.Vmstats.sampled_calls <- t.stats.Vmstats.sampled_calls + 1;
  t.stats.Vmstats.interpreted_calls <- t.stats.Vmstats.interpreted_calls + 1;
  let backedges = backedges_of t fn g in
  let on_edge src dst =
    if Hashtbl.mem backedges (src, dst) then
      c.Policy.backedges <- c.Policy.backedges + 1
  in
  push_frame t rs 0;
  let finish () = ignore (pop_frame t rs) in
  let result =
    try
      Machine.Exec.run_body ~version:0 ~profile:t.profile ~on_edge rs.st g args
    with e ->
      finish ();
      raise e
  in
  finish ();
  if count then consider_compile t fn;
  result

(* Execute [fn] through its cache entry, deoptimizing on a contained
   fault: undo to the frame's entry mark, invalidate, re-run tier 0. *)
and run_optimized t rs fn (e : Codecache.entry) args =
  if rs.opt_depth = 0 then Machine.Exec.set_journaling rs.st true;
  rs.opt_depth <- rs.opt_depth + 1;
  let m = Machine.Exec.mark rs.st in
  push_frame t rs 1;
  let leave_tier1 () =
    rs.opt_depth <- rs.opt_depth - 1;
    if rs.opt_depth = 0 then Machine.Exec.set_journaling rs.st false
  in
  match
    (match t.cfg.deopt_plan with
    | Some (pfn, _) when pfn = fn && t.forced_left >= 0 ->
        t.forced_left <- t.forced_left - 1;
        if t.forced_left = 0 then begin
          t.forced_left <- -1;
          raise (Deopt.Forced_deopt fn)
        end
    | _ -> ());
    Machine.Exec.run_body ~version:e.Codecache.ce_version rs.st
      e.Codecache.ce_body args
  with
  | result ->
      ignore (pop_frame t rs);
      leave_tier1 ();
      t.stats.Vmstats.optimized_calls <- t.stats.Vmstats.optimized_calls + 1;
      result
  | exception exn -> (
      match Deopt.classify exn with
      | None ->
          (* Not a deoptimization trigger (fuel, fatals): propagate with
             frame bookkeeping unwound. *)
          ignore (pop_frame t rs);
          leave_tier1 ();
          raise exn
      | Some reason ->
          (* Roll mutable state back BEFORE leaving the tier-1 region:
             leave_tier1 at depth 0 clears the journal. *)
          Machine.Exec.undo_to rs.st m;
          let wasted = pop_frame t rs in
          leave_tier1 ();
          t.stats.Vmstats.deopts <- t.stats.Vmstats.deopts + 1;
          t.stats.Vmstats.deopt_wasted_cycles <-
            t.stats.Vmstats.deopt_wasted_cycles +. wasted;
          Machine.Exec.charge rs.st t.cfg.deopt_penalty;
          t.stats.Vmstats.deopt_penalty_cycles <-
            t.stats.Vmstats.deopt_penalty_cycles +. t.cfg.deopt_penalty;
          Codecache.invalidate t.cache fn;
          Hashtbl.remove t.snapshots fn;
          t.deopt_log <-
            {
              Deopt.de_fn = fn;
              de_version = e.Codecache.ce_version;
              de_reason = reason;
            }
            :: t.deopt_log;
          run_tier0 t rs fn args ~count:false ~sampled:false)

and dispatch t rs fn args =
  match Codecache.peek t.cache fn with
  | None -> run_tier0 t rs fn args ~count:true ~sampled:false
  | Some _ -> (
      let c = counters_of t fn in
      c.Policy.invocations <- c.Policy.invocations + 1;
      let period = t.cfg.policy.Policy.profile_period in
      if period > 0 && c.Policy.invocations mod period = 0 then
        (* Sampled tier-0 run: keeps the profile fresh after promotion
           so drift stays observable; must not re-trigger promotion. *)
        run_tier0 t rs fn args ~count:false ~sampled:true
      else
        match Codecache.lookup t.cache fn with
        | Some e -> run_optimized t rs fn e args
        | None -> run_tier0 t rs fn args ~count:false ~sampled:false)

(* ------------------------------------------------------------------ *)
(* Top-level runs                                                      *)
(* ------------------------------------------------------------------ *)

(** One program execution: fresh heap/globals, persistent profile,
    counters and code cache.  Returns the result, the run's interpreter
    statistics, and the final globals.  Compile requests batched during
    the run are drained at the run boundary (after a drift check), so
    promotions take effect in subsequent runs — steady state emerges
    over repeated calls. *)
let run_full t ~args =
  let st = Machine.Exec.make ~icache:t.cfg.icache ~fuel:t.cfg.fuel t.base in
  let rs = { st; frames = []; opt_depth = 0 } in
  Machine.Exec.set_call_handler st (fun fn vals -> dispatch t rs fn vals);
  let vals = Array.map (fun n -> Machine.VInt n) args in
  let result =
    Fun.protect
      ~finally:(fun () ->
        check_drift t;
        drain t)
      (fun () -> dispatch t rs t.base.Ir.Program.main vals)
  in
  (result, Machine.Exec.stats st, Machine.Exec.globals st)

let run t ~args =
  let result, stats, _ = run_full t ~args in
  (result, stats)

(** Run [n] times on the same arguments; returns the last run's triple.
    The conventional warm-up loop. *)
let run_n t ~args n =
  let last = ref None in
  for _ = 1 to max 1 n do
    last := Some (run_full t ~args)
  done;
  Option.get !last

let stats t = t.stats
let cache t = t.cache
let queue t = t.queue
let profile t = t.profile
let deopt_log t = List.rev t.deopt_log
let failures t = List.rev t.failures

(** Sync cache/queue high-water marks into the aggregate counters and
    return them — call after the last run. *)
let finish t =
  t.stats.Vmstats.evictions <- t.cache.Codecache.evictions;
  t.stats.Vmstats.invalidations <- t.cache.Codecache.invalidations;
  t.stats.Vmstats.max_queue_depth <-
    max t.stats.Vmstats.max_queue_depth (Compilequeue.peak_depth t.queue);
  t.stats
