(** The versioned code cache: installed optimized function bodies.

    Models the machine-code cache of a JIT under the paper's [MS]
    (max unit size) budget: each entry carries its estimated code size,
    and installing past [capacity] evicts least-recently-used entries —
    code duplication inflates body sizes, so an over-eager tier would
    thrash its own cache here exactly as dupalot blows the i-cache.

    Entries are generation-stamped: every install mints a fresh version
    number (engine-global, monotonic), which also keys the interpreter's
    i-cache so an optimized body never shares modelled cache lines with
    the tier-0 body it shadows.

    All operations are serialized on an internal mutex, so a cache can
    be shared between the dispatching domain and background
    installers/spillers: the LRU size bound and version monotonicity
    hold under concurrent install/lookup/invalidate. *)

type entry = {
  ce_fn : string;
  ce_body : Ir.Graph.t;  (** the optimized body *)
  ce_version : int;  (** engine-global generation stamp, from 1 *)
  ce_size : int;  (** {!Costmodel.Estimate.graph_size} of [ce_body] *)
  ce_samples : int;  (** profile samples the compilation was driven by *)
  ce_work : int;  (** compile-effort units spent producing it *)
  mutable ce_hits : int;  (** tier-1 dispatches through this entry *)
}

type t = {
  capacity : int;  (** total installed code size budget *)
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  mutable lru : string list;  (** most recently used first *)
  mutable used : int;
  mutable next_version : int;
  mutable installs : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ~capacity =
  {
    capacity;
    mutex = Mutex.create ();
    table = Hashtbl.create 16;
    lru = [];
    used = 0;
    next_version = 1;
    installs = 0;
    evictions = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let touch t fn = t.lru <- fn :: List.filter (fun f -> f <> fn) t.lru

let remove_unlocked t fn =
  match Hashtbl.find_opt t.table fn with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.table fn;
      t.lru <- List.filter (fun f -> f <> fn) t.lru;
      t.used <- t.used - e.ce_size

(** Install an optimized body, evicting LRU entries (never the one just
    installed) until the size budget holds.  Returns the new entry. *)
let install t ~fn ~body ~samples ~work =
  locked t (fun () ->
      remove_unlocked t fn;
      let e =
        {
          ce_fn = fn;
          ce_body = body;
          ce_version = t.next_version;
          ce_size = Costmodel.Estimate.graph_size body;
          ce_samples = samples;
          ce_work = work;
          ce_hits = 0;
        }
      in
      t.next_version <- t.next_version + 1;
      t.installs <- t.installs + 1;
      Hashtbl.replace t.table fn e;
      t.lru <- fn :: t.lru;
      t.used <- t.used + e.ce_size;
      let rec evict () =
        if t.used > t.capacity then
          match List.rev t.lru with
          | victim :: _ when victim <> fn ->
              remove_unlocked t victim;
              t.evictions <- t.evictions + 1;
              evict ()
          | _ -> () (* only the fresh entry left; it stays even if oversized *)
      in
      evict ();
      e)

(** Dispatch lookup: bumps LRU position and hit count. *)
let lookup t fn =
  locked t (fun () ->
      match Hashtbl.find_opt t.table fn with
      | None -> None
      | Some e ->
          touch t fn;
          e.ce_hits <- e.ce_hits + 1;
          Some e)

(** Non-perturbing lookup (no LRU/hit update). *)
let peek t fn = locked t (fun () -> Hashtbl.find_opt t.table fn)

(** Drop [fn]'s entry (deoptimization). *)
let invalidate t fn =
  locked t (fun () ->
      if Hashtbl.mem t.table fn then begin
        remove_unlocked t fn;
        t.invalidations <- t.invalidations + 1
      end)

(** All live entries, in function-name order. *)
let entries t =
  locked t (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.table [])
  |> List.sort (fun a b -> compare a.ce_fn b.ce_fn)

let used t = locked t (fun () -> t.used)
let size t = locked t (fun () -> Hashtbl.length t.table)
