(** Deoptimization: the safety net under tier 1.

    The contract is the strongest the containment machinery offers
    (DESIGN.md §8 carried to runtime): if an optimized body misbehaves —
    a contained runtime fault, an injected fault, or a forced test
    deopt — the engine rolls the interpreter's mutable state back to the
    frame's entry mark, invalidates the cache entry, and re-executes the
    invocation in tier 0.  The observable outcome (result value, heap,
    globals) is byte-identical to a run that never compiled anything.

    [Out_of_fuel] deliberately does {i not} deoptimize: fuel models the
    measurement budget, not program behaviour, and catching it would
    turn a diverging optimized body into a silent slow retry. *)

type reason =
  | Runtime_fault of string  (** contained {!Interp.Machine.Runtime_error} *)
  | Injected of string  (** a {!Dbds.Faults.Injected} that fired at runtime *)
  | Forced  (** [--tiered-deopt] / test-plan trigger *)

(** Raised by the engine itself when a forced-deopt plan fires inside
    the named function's optimized frame. *)
exception Forced_deopt of string

let reason_to_string = function
  | Runtime_fault msg -> Printf.sprintf "runtime-fault: %s" msg
  | Injected msg -> Printf.sprintf "injected: %s" msg
  | Forced -> "forced"

(** Classify an exception escaping a tier-1 frame.  [None] means the
    exception is not a deoptimization trigger and must propagate
    (fuel exhaustion, genuine fatals). *)
let classify = function
  | Interp.Machine.Runtime_error msg -> Some (Runtime_fault msg)
  | Dbds.Faults.Injected { site; hit } ->
      Some
        (Injected
           (Printf.sprintf "%s, hit %d" (Dbds.Faults.site_to_string site) hit))
  | Forced_deopt _ -> Some Forced
  | _ -> None

(** One deoptimization event, for the engine's log. *)
type event = { de_fn : string; de_version : int; de_reason : reason }

let pp_event ppf e =
  Format.fprintf ppf "deopt %s v%d (%s)" e.de_fn e.de_version
    (reason_to_string e.de_reason)
