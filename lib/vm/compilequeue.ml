(** The background compilation queue.

    Promotion requests accumulate here; {!drain} fans the batch out over
    {!Dbds.Parallel} domains (the same deterministic fork/join substrate
    as the AOT driver), compiling each function through the full
    [Opt.Manager] pipeline with its profile-derived branch probabilities
    already applied.  Results come back in function-name order, so the
    install sequence — and therefore every cache version number — is
    identical for any [jobs] value.

    Containment is forced on for background compiles: a crashing
    pipeline must never take the VM down, it only costs the request
    (the function stays in tier 0, the attempt is counted against the
    policy's [max_compiles]).  Crash bundles are written sequentially
    {i after} the parallel join, from the main domain, and record the
    profile snapshot the compilation was driven by. *)

type request = {
  rq_fn : string;
  rq_body : Ir.Graph.t;
      (** private copy, profile probabilities already applied *)
  rq_profile : string;  (** rendered snapshot ({!Interp.Profile.render}) *)
  rq_samples : int;
  rq_recompile : bool;  (** drift-triggered re-enqueue *)
}

type outcome = {
  oc_request : request;
  oc_result : (Ir.Graph.t * int, Dbds.Driver.failure) result;
      (** [Ok (optimized_body, work_units)] or the contained failure *)
}

type t = {
  base : Ir.Program.t;  (** whole program: call context for inlining-free
                            per-function pipelines *)
  compile : Dbds.Config.t;
  jobs : int;
  mutable pending : request list;  (** newest first *)
  mutable peak_depth : int;
}

let create ~compile ~jobs base = { base; compile; jobs; pending = []; peak_depth = 0 }

let depth t = List.length t.pending
let peak_depth t = t.peak_depth

let enqueue t rq =
  t.pending <- rq :: t.pending;
  t.peak_depth <- max t.peak_depth (depth t)

(* A single-function program sharing the base program's class table and
   globals — reads only, so sharing across domains is safe. *)
let program_of t (rq : request) =
  let functions = Hashtbl.create 1 in
  Hashtbl.replace functions rq.rq_fn rq.rq_body;
  {
    Ir.Program.classes = t.base.Ir.Program.classes;
    globals = t.base.Ir.Program.globals;
    functions;
    main = rq.rq_fn;
  }

let compile_one t (rq : request) =
  (* Bundles are written by the caller after the join (sequentially);
     workers must not touch the filesystem. *)
  let config =
    { t.compile with Dbds.Config.containment = true; bundle_dir = None }
  in
  let program = program_of t rq in
  let report =
    Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1 program
  in
  match report.Dbds.Driver.rep_failures with
  | f :: _ -> { oc_request = rq; oc_result = Error f }
  | [] ->
      let body =
        match Ir.Program.find_function program rq.rq_fn with
        | Some g -> g
        | None -> rq.rq_body
      in
      {
        oc_request = rq;
        oc_result = Ok (body, report.Dbds.Driver.rep_ctx.Opt.Phase.work);
      }

(** Compile every pending request, in function-name order, over [jobs]
    domains.  Bundles for contained failures are written here (main
    domain) when the compile config asks for them; the returned failures
    carry the bundle path. *)
let drain t =
  let batch =
    List.sort (fun a b -> compare a.rq_fn b.rq_fn) (List.rev t.pending)
  in
  t.pending <- [];
  if batch = [] then []
  else begin
    let outcomes = Dbds.Parallel.map ~jobs:t.jobs (compile_one t) batch in
    match t.compile.Dbds.Config.bundle_dir with
    | None -> outcomes
    | Some dir ->
        List.map
          (fun oc ->
            match oc.oc_result with
            | Ok _ -> oc
            | Error f ->
                let bundle =
                  {
                    Dbds.Bundle.b_fn = f.Dbds.Driver.fail_fn;
                    b_site = f.Dbds.Driver.fail_site;
                    b_exn = f.Dbds.Driver.fail_exn;
                    b_plan = t.compile.Dbds.Config.fault_plan;
                    b_config = t.compile;
                    b_profile = Some oc.oc_request.rq_profile;
                    b_ir = f.Dbds.Driver.fail_pre_ir;
                  }
                in
                let path = Dbds.Bundle.write ~dir bundle in
                {
                  oc with
                  oc_result =
                    Error { f with Dbds.Driver.fail_bundle = Some path };
                })
          outcomes
  end
