(** Aggregate counters of one tiered-engine lifetime.

    Everything the engine's observability surfaces ([dbdsc --tiered
    --stats], [Harness.Report.pp_tiered]) reads lives here: call counts
    per tier, promotion/compilation/deoptimization events, the cycle
    split between tiers, and queue/cache high-water marks. *)

type t = {
  mutable interpreted_calls : int;  (** tier-0 executions (incl. sampled) *)
  mutable optimized_calls : int;  (** tier-1 executions that completed *)
  mutable sampled_calls : int;
      (** tier-0 re-profiling runs of an already-promoted function *)
  mutable promotions : int;  (** first-time promotion enqueues *)
  mutable recompilations : int;  (** drift-triggered re-enqueues *)
  mutable compiles : int;  (** background compilations that succeeded *)
  mutable compile_failures : int;  (** contained background-compile crashes *)
  mutable deopts : int;  (** tier-1 frames undone and re-run in tier 0 *)
  mutable evictions : int;  (** cache entries evicted by the size budget *)
  mutable invalidations : int;  (** cache entries killed by deopt *)
  mutable tier0_cycles : float;  (** cycles charged inside tier-0 frames *)
  mutable tier1_cycles : float;  (** cycles charged inside tier-1 frames *)
  mutable deopt_wasted_cycles : float;
      (** tier-1 cycles discarded by deoptimizations (already counted in
          [tier1_cycles]; the rerun charges tier-0 cycles again) *)
  mutable deopt_penalty_cycles : float;  (** flat transition cost charged *)
  mutable max_queue_depth : int;
  mutable compile_work : int;  (** work units spent in background compiles *)
  mutable service_hits : int;
      (** promotions warm-started from the artifact store (no compile) *)
  mutable service_misses : int;
      (** promotions that consulted the store and found nothing *)
  mutable service_spills : int;
      (** background-compile results published to the store *)
}

let create () =
  {
    interpreted_calls = 0;
    optimized_calls = 0;
    sampled_calls = 0;
    promotions = 0;
    recompilations = 0;
    compiles = 0;
    compile_failures = 0;
    deopts = 0;
    evictions = 0;
    invalidations = 0;
    tier0_cycles = 0.0;
    tier1_cycles = 0.0;
    deopt_wasted_cycles = 0.0;
    deopt_penalty_cycles = 0.0;
    max_queue_depth = 0;
    compile_work = 0;
    service_hits = 0;
    service_misses = 0;
    service_spills = 0;
  }

let total_calls t = t.interpreted_calls + t.optimized_calls

(** Fraction of completed calls that ran optimized code. *)
let tier1_share t =
  let total = total_calls t in
  if total = 0 then 0.0 else float_of_int t.optimized_calls /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "@[<v>calls: %d interpreted (%d sampled), %d optimized (%.1f%% tier-1)@,\
     promotions: %d (+%d recompilations), compiles: %d ok / %d failed@,\
     deopts: %d, cache evictions: %d, invalidations: %d@,\
     cycles: %.0f tier-0, %.0f tier-1 (%.0f wasted by deopt, %.0f penalty)@,\
     compile queue: max depth %d, %d work units@,\
     service: %d warm hits, %d misses, %d spills@]"
    t.interpreted_calls t.sampled_calls t.optimized_calls
    (100.0 *. tier1_share t)
    t.promotions t.recompilations t.compiles t.compile_failures t.deopts
    t.evictions t.invalidations t.tier0_cycles t.tier1_cycles
    t.deopt_wasted_cycles t.deopt_penalty_cycles t.max_queue_depth
    t.compile_work t.service_hits t.service_misses t.service_spills

(** The counters a differential test compares across [jobs] values —
    everything except wall-clock-ish incidentals (there are none today,
    so this is simply a stable rendering). *)
let fingerprint t =
  Printf.sprintf
    "i=%d s=%d o=%d p=%d r=%d c=%d cf=%d d=%d ev=%d inv=%d t0=%.3f t1=%.3f \
     dw=%.3f dp=%.3f q=%d w=%d sh=%d sm=%d sp=%d"
    t.interpreted_calls t.sampled_calls t.optimized_calls t.promotions
    t.recompilations t.compiles t.compile_failures t.deopts t.evictions
    t.invalidations t.tier0_cycles t.tier1_cycles t.deopt_wasted_cycles
    t.deopt_penalty_cycles t.max_queue_depth t.compile_work t.service_hits
    t.service_misses t.service_spills
