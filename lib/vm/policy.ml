(** Promotion policy — when does a function move from tier 0 to tier 1?

    Mirrors HotSpot's invocation + backedge counters (the paper's
    profiles come from exactly this interpreter tier, §5.3): a function
    becomes promotion-eligible once either its invocation count or its
    loop-backedge count crosses a threshold.  Re-compilation is driven
    by profile {i drift}: when the observed branch probabilities move
    far enough from the snapshot the installed code was compiled with,
    the code is stale and a recompile is requested — capped by
    [max_compiles] total attempts per function, the runtime twin of the
    paper's 3-iteration pipeline cap. *)

type t = {
  invocation_threshold : int;  (** calls before promotion *)
  backedge_threshold : int;  (** loop backedges before promotion *)
  drift_threshold : float;
      (** max |p - p_compiled| before a recompile is requested *)
  drift_min_samples : int;  (** branch samples needed to trust drift *)
  profile_period : int;
      (** every Nth call of a promoted function re-runs tier 0 with
          profiling, so drift remains observable after promotion *)
  max_compiles : int;  (** total compile attempts per function *)
}

let default =
  {
    invocation_threshold = 2;
    backedge_threshold = 192;
    drift_threshold = 0.15;
    drift_min_samples = 16;
    profile_period = 32;
    max_compiles = 3;
  }

(** Tier-0-only: nothing ever promotes.  The engine degenerates to a
    plain profiled interpreter — the differential baseline. *)
let never =
  {
    default with
    invocation_threshold = max_int;
    backedge_threshold = max_int;
    max_compiles = 0;
  }

(** Per-function runtime counters. *)
type counters = {
  mutable invocations : int;
  mutable backedges : int;
  mutable attempts : int;  (** compile attempts, successful or contained *)
  mutable pending : bool;  (** a compile request is queued or in flight *)
}

let fresh_counters () =
  { invocations = 0; backedges = 0; attempts = 0; pending = false }

let hot t c =
  c.invocations >= t.invocation_threshold || c.backedges >= t.backedge_threshold

(** Promote now?  Hot, not already queued, and attempts remaining. *)
let should_promote t c = hot t c && (not c.pending) && c.attempts < t.max_compiles

(** Recompile an installed body given observed drift? *)
let should_recompile t c ~drift =
  drift >= t.drift_threshold && (not c.pending) && c.attempts < t.max_compiles
