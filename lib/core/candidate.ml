(** A duplication candidate: the outcome of simulating the duplication of
    one merge block into one of its predecessors (one "Sim Result" box of
    the paper's Figure 2). *)

type opportunity =
  | Constant_fold
  | Strength_reduce
  | Copy_propagation
  | Value_numbering
  | Read_elimination
  | Conditional_elimination
  | Escape_analysis

let n_opportunities = 7

(* Dense tag, used by the simulation tier's per-candidate seen-flags. *)
let opportunity_index = function
  | Constant_fold -> 0
  | Strength_reduce -> 1
  | Copy_propagation -> 2
  | Value_numbering -> 3
  | Read_elimination -> 4
  | Conditional_elimination -> 5
  | Escape_analysis -> 6

let opportunity_to_string = function
  | Constant_fold -> "constant-fold"
  | Strength_reduce -> "strength-reduce"
  | Copy_propagation -> "copy-propagation"
  | Value_numbering -> "value-numbering"
  | Read_elimination -> "read-elimination"
  | Conditional_elimination -> "conditional-elimination"
  | Escape_analysis -> "escape-analysis"

type t = {
  merge : Ir.Types.block_id;
  pred : Ir.Types.block_id;
  path : Ir.Types.block_id list;
      (** merges beyond [merge] along a straight path (paper §8's
          future-work extension); [] for ordinary tail duplication.
          Applying the candidate duplicates [merge] into [pred], then
          each path merge into the previous duplicate. *)
  benefit : float;  (** estimated cycles saved (unscaled) *)
  probability : float;
      (** the predecessor's execution frequency relative to the hottest
          block of the compilation unit (paper §5.4 factor p) *)
  size_delta : int;  (** estimated code-size increase, abstract bytes *)
  opportunities : opportunity list;
}

(** The sort key of the trade-off tier: expected cycles saved per unit of
    execution, i.e. benefit scaled by relative frequency. *)
let scaled_benefit c = c.benefit *. c.probability

let pp ppf c =
  Fmt.pf ppf "b%d->b%d%s benefit=%.1f p=%.3f size=%+d [%s]" c.pred c.merge
    (match c.path with
    | [] -> ""
    | path ->
        "~>" ^ String.concat "~>" (List.map (Printf.sprintf "b%d") path))
    c.benefit c.probability c.size_delta
    (String.concat ", " (List.map opportunity_to_string c.opportunities))
