(** DBDS configuration: the trade-off constants of paper §5.4 and the
    evaluation configurations of §6.1. *)

type mode =
  | Off  (** baseline: classic optimizations only, no duplication *)
  | Dbds  (** full simulate → trade-off → optimize pipeline *)
  | Dupalot
      (** simulation tier finds opportunities; every candidate with any
          benefit is duplicated, ignoring cost (paper's dupalot) *)
  | Backtracking
      (** Algorithm 1: tentatively duplicate, optimize, keep on progress,
          restore otherwise — the expensive strategy DBDS replaces *)
  | Condelim_dup
      (** conditional elimination through duplication (arXiv 1106.3478):
          duplicate every (merge, predecessor) pair where the duplicate's
          branch or a compare would fold, with no trade-off — the greedy
          single-optimization comparator of the workload lab *)

type t = {
  mode : mode;
  benefit_scale : float;  (** BS; the paper derived 256 empirically *)
  size_budget : float;  (** IB; 1.5 = max 150% of the initial code size *)
  max_unit_size : int;  (** MS; the VM's installed-code limit *)
  max_iterations : int;  (** iterative DBDS applications; paper uses 3 *)
  iteration_benefit_threshold : float;
      (** run another iteration only if the previous one's cumulative
          accepted benefit exceeds this (paper §5.2: ~20% of units
          re-iterate) *)
  loop_factor : float;  (** assumed loop trip count for frequencies *)
  path_duplication : bool;
      (** §8 future-work extension: let the simulation continue through a
          straight chain of merges and apply the whole path as one
          candidate (up to [max_path_length] merges) *)
  max_path_length : int;
  containment : bool;
      (** contain per-function crashes: roll the graph back, record a
          structured failure, keep optimizing the remaining functions *)
  verify_between_phases : bool;
      (** paranoid mode: run the IR verifier after every phase /
          duplication and treat violations as contained crashes *)
  fault_plan : Faults.plan option;
      (** deterministic fault injection (testing); [None] in production *)
  bundle_dir : string option;
      (** write a replayable crash bundle here on every containment *)
  passes : Opt.Spec.t option;
      (** explicit pipeline spec ([dbdsc --passes]); [None] = the
          mode-derived default ({!Driver.default_spec}) *)
  licm : bool;
      (** include loop-invariant code motion in the classic fixpoint
          group (off in the calibrated evaluation plan — see {!Licm}) *)
  pea_max_rounds : int;
      (** bound on scalar replacement's internal sweep count per
          invocation; 0 = run to its fixpoint (the historical default).
          The fig5-style functions whose nested allocation chains make
          PEA the dominant phase can be capped without touching the
          rest of the pipeline. *)
  preserve_analyses : bool;
      (** honor pass preservation contracts in the analysis cache; false
          = the historical generation-bump-invalidates-everything mode
          (kept as a comparison baseline for the bench harness) *)
}

let default =
  {
    mode = Dbds;
    benefit_scale = 256.0;
    size_budget = 1.5;
    max_unit_size = 65_536;
    max_iterations = 3;
    iteration_benefit_threshold = 20.0;
    loop_factor = Ir.Frequency.default_loop_factor;
    path_duplication = false;
    max_path_length = 3;
    containment = true;
    verify_between_phases = false;
    fault_plan = None;
    bundle_dir = None;
    passes = None;
    licm = false;
    pea_max_rounds = 0;
    preserve_analyses = true;
  }

let dbds = default
let off = { default with mode = Off }
let dupalot = { default with mode = Dupalot }
let backtracking = { default with mode = Backtracking }
let condelim_dup = { default with mode = Condelim_dup }

(** DBDS with the §8 path extension enabled. *)
let dbds_paths = { default with path_duplication = true }

(** DBDS with paranoid between-phase verification enabled. *)
let paranoid = { default with verify_between_phases = true }

let mode_to_string = function
  | Off -> "baseline"
  | Dbds -> "dbds"
  | Dupalot -> "dupalot"
  | Backtracking -> "backtracking"
  | Condelim_dup -> "condelim-dup"

let mode_of_string = function
  | "baseline" | "off" -> Some Off
  | "dbds" -> Some Dbds
  | "dupalot" -> Some Dupalot
  | "backtracking" -> Some Backtracking
  | "condelim-dup" | "condelim_dup" -> Some Condelim_dup
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Line (de)serialization                                              *)
(* ------------------------------------------------------------------ *)

(* One space-separated key=value line covering every knob that shapes
   the produced IR: the crash-bundle header, the service protocol and
   the artifact-store digest all share it.  Keys without a pipeline
   effect (containment, fault_plan, bundle_dir) are deliberately
   excluded — two configs differing only there must collide in the
   cache.  The historical key set (the v1 bundle format) is preserved;
   [licm], [preserve_analyses] and [passes] were appended later and
   default when absent, so old bundles still parse. *)

let to_line (c : t) =
  let base =
    Printf.sprintf
      "mode=%s benefit_scale=%.17g size_budget=%.17g max_unit_size=%d \
       max_iterations=%d iteration_benefit_threshold=%.17g loop_factor=%.17g \
       path_duplication=%b max_path_length=%d paranoid=%b licm=%b \
       preserve_analyses=%b"
      (mode_to_string c.mode) c.benefit_scale c.size_budget c.max_unit_size
      c.max_iterations c.iteration_benefit_threshold c.loop_factor
      c.path_duplication c.max_path_length c.verify_between_phases c.licm
      c.preserve_analyses
  in
  (* Appended only when non-default so every pre-knob rendering — and
     with it every cached digest — is byte-stable. *)
  let base =
    if c.pea_max_rounds = 0 then base
    else base ^ " pea_max_rounds=" ^ string_of_int c.pea_max_rounds
  in
  match c.passes with
  | None -> base
  (* The canonical spec rendering contains no spaces, so it stays one
     token of the line. *)
  | Some spec -> base ^ " passes=" ^ Opt.Spec.to_string spec

let of_line line =
  let fields =
    List.filter_map
      (fun part ->
        match String.index_opt part '=' with
        | Some i ->
            Some
              ( String.sub part 0 i,
                String.sub part (i + 1) (String.length part - i - 1) )
        | None -> None)
      (String.split_on_char ' ' line)
  in
  let get k = List.assoc_opt k fields in
  let int_field k d =
    match get k with
    | Some v -> int_of_string_opt v |> Option.value ~default:d
    | None -> d
  in
  let float_field k d =
    match get k with
    | Some v -> float_of_string_opt v |> Option.value ~default:d
    | None -> d
  in
  let bool_field k d =
    match get k with
    | Some v -> bool_of_string_opt v |> Option.value ~default:d
    | None -> d
  in
  let d = default in
  {
    d with
    mode =
      (match Option.bind (get "mode") mode_of_string with
      | Some m -> m
      | None -> d.mode);
    benefit_scale = float_field "benefit_scale" d.benefit_scale;
    size_budget = float_field "size_budget" d.size_budget;
    max_unit_size = int_field "max_unit_size" d.max_unit_size;
    max_iterations = int_field "max_iterations" d.max_iterations;
    iteration_benefit_threshold =
      float_field "iteration_benefit_threshold" d.iteration_benefit_threshold;
    loop_factor = float_field "loop_factor" d.loop_factor;
    path_duplication = bool_field "path_duplication" d.path_duplication;
    max_path_length = int_field "max_path_length" d.max_path_length;
    verify_between_phases = bool_field "paranoid" d.verify_between_phases;
    licm = bool_field "licm" d.licm;
    pea_max_rounds = int_field "pea_max_rounds" d.pea_max_rounds;
    preserve_analyses = bool_field "preserve_analyses" d.preserve_analyses;
    passes =
      (match get "passes" with
      | Some s -> (
          match Opt.Spec.of_string s with Ok spec -> Some spec | Error _ -> None)
      | None -> None);
  }
