(** DBDS configuration: the trade-off constants of paper §5.4 and the
    evaluation configurations of §6.1. *)

type mode =
  | Off  (** baseline: classic optimizations only, no duplication *)
  | Dbds  (** full simulate → trade-off → optimize pipeline *)
  | Dupalot
      (** simulation tier finds opportunities; every candidate with any
          benefit is duplicated, ignoring cost (paper's dupalot) *)
  | Backtracking
      (** Algorithm 1: tentatively duplicate, optimize, keep on progress,
          restore otherwise — the expensive strategy DBDS replaces *)

type t = {
  mode : mode;
  benefit_scale : float;  (** BS; the paper derived 256 empirically *)
  size_budget : float;  (** IB; 1.5 = max 150% of the initial code size *)
  max_unit_size : int;  (** MS; the VM's installed-code limit *)
  max_iterations : int;  (** iterative DBDS applications; paper uses 3 *)
  iteration_benefit_threshold : float;
      (** run another iteration only if the previous one's cumulative
          accepted benefit exceeds this (paper §5.2: ~20% of units
          re-iterate) *)
  loop_factor : float;  (** assumed loop trip count for frequencies *)
  path_duplication : bool;
      (** §8 future-work extension: let the simulation continue through a
          straight chain of merges and apply the whole path as one
          candidate (up to [max_path_length] merges) *)
  max_path_length : int;
  containment : bool;
      (** contain per-function crashes: roll the graph back, record a
          structured failure, keep optimizing the remaining functions *)
  verify_between_phases : bool;
      (** paranoid mode: run the IR verifier after every phase /
          duplication and treat violations as contained crashes *)
  fault_plan : Faults.plan option;
      (** deterministic fault injection (testing); [None] in production *)
  bundle_dir : string option;
      (** write a replayable crash bundle here on every containment *)
  passes : Opt.Spec.t option;
      (** explicit pipeline spec ([dbdsc --passes]); [None] = the
          mode-derived default ({!Driver.default_spec}) *)
  licm : bool;
      (** include loop-invariant code motion in the classic fixpoint
          group (off in the calibrated evaluation plan — see {!Licm}) *)
  preserve_analyses : bool;
      (** honor pass preservation contracts in the analysis cache; false
          = the historical generation-bump-invalidates-everything mode
          (kept as a comparison baseline for the bench harness) *)
}

let default =
  {
    mode = Dbds;
    benefit_scale = 256.0;
    size_budget = 1.5;
    max_unit_size = 65_536;
    max_iterations = 3;
    iteration_benefit_threshold = 20.0;
    loop_factor = Ir.Frequency.default_loop_factor;
    path_duplication = false;
    max_path_length = 3;
    containment = true;
    verify_between_phases = false;
    fault_plan = None;
    bundle_dir = None;
    passes = None;
    licm = false;
    preserve_analyses = true;
  }

let dbds = default
let off = { default with mode = Off }
let dupalot = { default with mode = Dupalot }
let backtracking = { default with mode = Backtracking }

(** DBDS with the §8 path extension enabled. *)
let dbds_paths = { default with path_duplication = true }

(** DBDS with paranoid between-phase verification enabled. *)
let paranoid = { default with verify_between_phases = true }

let mode_to_string = function
  | Off -> "baseline"
  | Dbds -> "dbds"
  | Dupalot -> "dupalot"
  | Backtracking -> "backtracking"

let mode_of_string = function
  | "baseline" | "off" -> Some Off
  | "dbds" -> Some Dbds
  | "dupalot" -> Some Dupalot
  | "backtracking" -> Some Backtracking
  | _ -> None
