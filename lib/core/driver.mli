(** The DBDS driver: the iterative simulate → trade-off → optimize
    pipeline (paper §5.2), plus the two comparator strategies of the
    evaluation — dupalot (trade-off disabled) and backtracking
    (Algorithm 1 of §3.1).

    The driver is applied per compilation unit (function graph).  After
    each batch of duplications the classic optimization phases run — the
    action steps whose potential the simulation tier detected.  Up to
    [max_iterations] rounds are performed; a new round only starts if the
    previous round's cumulative accepted benefit clears a threshold (or
    ranked candidates went stale mid-round). *)

(** Paranoid mode ({!Config.t.verify_between_phases}): the IR verifier
    found a broken invariant right after the named phase ran. *)
exception Phase_invalid of { phase : string; reason : string }

type stats = {
  mutable candidates_found : int;
  mutable duplications_performed : int;
  mutable iterations_run : int;
  mutable benefit_accepted : float;
  mutable backtrack_attempts : int;
  mutable backtrack_kept : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** A per-function failure that was contained: the function's graph was
    rolled back to its pre-attempt state, the rest of the program kept
    optimizing. *)
type failure = {
  fail_fn : string;  (** function whose pipeline crashed *)
  fail_site : string;
      (** crash site: a {!Faults.site} name, ["verify.<phase>"] for a
          paranoid violation, or ["exception"] for anything else *)
  fail_exn : string;  (** rendered exception *)
  fail_backtrace : string;
  fail_work : int;  (** work units charged during the failed attempt *)
  fail_pre_ir : string;
      (** the function's IR when the attempt started — what the graph
          was rolled back to, and what a crash bundle replays *)
  fail_bundle : string option;  (** bundle path, when one was written *)
}

val pp_failure : Format.formatter -> failure -> unit

(** The pipeline actually run for a configuration: {!Config.t.passes}
    when set, otherwise derived from the mode (e.g. [Dbds] →
    [inline,fix(canon,...,dce),dbds{iters=3}]).  [inline] is a
    program-level item: {!optimize_program_report} runs it once before
    fanning functions out; the per-function pipeline is the rest. *)
val default_spec : Config.t -> Opt.Spec.t

(** Check a pipeline spec against the driver's registry: classic passes
    (no options), duplication tiers ([dbds]/[dupalot] with [iters] and
    [threshold], [backtracking] with [iters]), [fix] groups ([rounds]),
    and program-level [inline] at the top level only. *)
val validate_spec : Config.t -> Opt.Spec.t -> (unit, string) result

(** Contract table of a spec's per-function passes in pipeline order
    (fix bodies flattened, repeats collapsed): [(pass_name, preserves,
    enables)].  Rendered by [dbdsc --print-passes] under the canonical
    spec line. *)
val describe_spec :
  Config.t ->
  Opt.Spec.t ->
  (string * Ir.Analyses.kind list * string list option) list

(** Optimize one graph under the given configuration: execute the
    configured pipeline (minus program-level items) through the pass
    manager. *)
val optimize_graph :
  ?config:Config.t -> Opt.Phase.ctx -> Ir.Graph.t -> stats

(** The full result of a program run: phase context, per-function
    statistics (zeroed for contained functions) and contained failures —
    all in function-name order, identical for any [jobs]. *)
type report = {
  rep_ctx : Opt.Phase.ctx;
  rep_stats : (string * stats) list;
  rep_failures : failure list;
}

(** A pluggable compilation cache (the service's content-addressed
    artifact store).  [cache_lookup] runs before a function's
    per-function pipeline: a [Some] replacement overwrites the graph and
    skips the pipeline entirely; the returned key is the content digest
    of the {e pre-optimization} request.  [cache_store] runs after a
    successful (uncontained) pipeline with that same key.  Both hooks
    must be domain-safe and must never raise. *)
type cache = {
  cache_lookup : Config.t -> Ir.Graph.t -> Ir.Graph.t option * string;
  cache_store : Config.t -> key:string -> Ir.Graph.t -> work:int -> unit;
}

(** Optimize a whole program: inline first (compilation units in the
    evaluation are post-inlining, as in Graal; disable with
    [~inline:false]), then fan the configured per-function pipeline out
    over [jobs] domains (default: all cores; [~jobs:1] is sequential).
    Output graphs and aggregate statistics are identical for any [jobs].

    Under {!Config.t.containment} (the default) no exception escapes:
    a crashing per-function pipeline is rolled back to its pre-attempt
    IR and reported in [rep_failures] (with a crash bundle when
    {!Config.t.bundle_dir} is set) while the remaining functions still
    optimize — under any [jobs] value.

    [cache] attaches a compilation cache: each function is looked up
    before its pipeline runs (a hit replaces the body and skips the
    pipeline) and stored after an uncontained run. *)
val optimize_program_report :
  ?config:Config.t ->
  ?inline:bool ->
  ?jobs:int ->
  ?cache:cache ->
  ?sched_stats:Ir.Parallel.util option ref ->
  Ir.Program.t ->
  report

(** {!optimize_program_report} without the failure detail — the
    historical interface.  Contained failures are still contained
    (counted in the context's [contained] stats). *)
val optimize_program :
  ?config:Config.t ->
  ?inline:bool ->
  ?jobs:int ->
  ?cache:cache ->
  Ir.Program.t ->
  Opt.Phase.ctx * (string * stats) list

(** Re-execute a crash bundle: parse its pre-attempt IR, rebuild the
    recorded configuration (fault plan included) and rerun the
    per-function pipeline under containment. *)
val replay_bundle : Bundle.t -> [ `Reproduced of failure | `Clean ]

(** Aggregate statistics over a program run. *)
val total_stats : (string * stats) list -> stats
