(** The DBDS driver: the iterative simulate → trade-off → optimize
    pipeline (paper §5.2), plus the two comparator strategies of the
    evaluation — dupalot (trade-off disabled) and backtracking
    (Algorithm 1 of §3.1).

    The driver is applied per compilation unit (function graph).  After
    each batch of duplications the classic optimization phases run — the
    action steps whose potential the simulation tier detected.  Up to
    [max_iterations] rounds are performed; a new round only starts if the
    previous round's cumulative accepted benefit clears a threshold (or
    ranked candidates went stale mid-round). *)

type stats = {
  mutable candidates_found : int;
  mutable duplications_performed : int;
  mutable iterations_run : int;
  mutable benefit_accepted : float;
  mutable backtrack_attempts : int;
  mutable backtrack_kept : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Optimize one graph under the given configuration. *)
val optimize_graph :
  ?config:Config.t -> Opt.Phase.ctx -> Ir.Graph.t -> stats

(** Optimize a whole program: inline first (compilation units in the
    evaluation are post-inlining, as in Graal; disable with
    [~inline:false]), then fan the configured per-function pipeline out
    over [jobs] domains (default: all cores; [~jobs:1] is sequential).
    Output graphs and aggregate statistics are identical for any [jobs].
    Returns the phase context (work-unit accounting) and per-function
    statistics. *)
val optimize_program :
  ?config:Config.t ->
  ?inline:bool ->
  ?jobs:int ->
  Ir.Program.t ->
  Opt.Phase.ctx * (string * stats) list

(** Aggregate statistics over a program run. *)
val total_stats : (string * stats) list -> stats
