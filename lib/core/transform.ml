(** The duplication transformation (the optimization tier's primitive,
    paper §4.3): copy a merge block into one of its predecessors.

    Given merge [bm] and predecessor [bp]:
    + a fresh block [bm'] receives a copy of [bm]'s body, with [bm]'s
      phis resolved to their inputs along the [bp] edge;
    + [bm']'s terminator replicates [bm]'s, so [bm]'s successors gain
      [bm'] as a predecessor (their phis receive the copied values);
    + the [bp → bm] edge is redirected to [bm'];
    + SSA is reconstructed: every value defined in [bm] (including its
      phis) now has an alternate definition on the duplicated path, and
      uses in blocks [bm] no longer dominates are rewritten through
      freshly placed phis ({!Ir.Ssa_repair}).

    If this removed [bm]'s last second predecessor, the CFG simplifier
    will merge the now-straight-line blocks. *)

open Ir.Types
module G = Ir.Graph

exception Not_applicable of string

(** [duplicate g ~merge ~pred] performs the transformation and returns the
    id of the duplicate block. *)
let duplicate g ~merge ~pred =
  let bm = merge and bp = pred in
  if not (G.block_exists g bm) then Not_applicable "merge block is gone" |> raise;
  if not (G.block_exists g bp) then Not_applicable "predecessor is gone" |> raise;
  if not (List.mem bp (G.preds g bm)) then
    raise (Not_applicable "edge no longer exists");
  if List.length (G.preds g bm) < 2 then
    raise (Not_applicable "not a merge anymore");
  (match G.term g bp with
  | Jump _ | Branch _ -> ()
  | Return _ | Unreachable -> raise (Not_applicable "predecessor has no edge"));
  (* Loop headers are merges too, but duplicating one is loop
     peeling/rotation, not tail duplication: the copied block represents
     the *next* iteration, so phi inputs that reference values defined in
     the loop (in particular other phis of the same header) are off by one
     iteration under the sequential SSA repair.  The simulation tier never
     proposes loop headers; reject them here as well so the backtracking
     strategy cannot reach them either. *)
  let dom = Ir.Analyses.dom g in
  if List.exists (fun q -> Ir.Dom.dominates dom bm q) (G.preds g bm) then
    raise (Not_applicable "merge is a loop header");
  let pred_idx = G.pred_index g bm bp in
  let phis = G.phis g bm in
  let body = G.body g bm in
  (* Value substitution for the duplicated path. *)
  let mapping : (value, value) Hashtbl.t = Hashtbl.create 16 in
  let subst v =
    match Hashtbl.find_opt mapping v with Some v' -> v' | None -> v
  in
  List.iter
    (fun phi ->
      match G.kind g phi with
      | Phi inputs -> Hashtbl.replace mapping phi inputs.(pred_idx)
      | _ -> assert false)
    phis;
  let bm' = G.add_block g in
  List.iter
    (fun id ->
      let kind' = map_inputs subst (G.kind g id) in
      let id' = G.append g bm' kind' in
      Hashtbl.replace mapping id id')
    body;
  (* Replicate the terminator; successors gain bm' as predecessor with
     placeholder phi inputs that we fill from the substitution. *)
  let term' =
    match G.term g bm with
    | Jump t -> Jump t
    | Branch br -> Branch { br with cond = subst br.cond }
    | Return (Some v) -> Return (Some (subst v))
    | Return None -> Return None
    | Unreachable -> Unreachable
  in
  G.set_term g bm' term';
  (* Fault site: the transform is mid-mutation here (bm' exists, the
     edge is not yet redirected) — an injected crash exercises the
     containment journal's ability to undo a partial duplication. *)
  Faults.hit Faults.Transform_apply;
  List.iter
    (fun s ->
      let idx_bm = G.pred_index g s bm in
      let idx_bm' = G.pred_index g s bm' in
      List.iter
        (fun phi ->
          match G.kind g phi with
          | Phi inputs ->
              let inputs = Array.copy inputs in
              inputs.(idx_bm') <- subst inputs.(idx_bm);
              G.set_kind g phi (Phi inputs)
          | _ -> assert false)
        (G.phis g s))
    (G.succs g bm');
  (* Steer bp into the duplicate. *)
  G.redirect_edge g ~from_block:bp ~old_target:bm ~new_target:bm';
  (* SSA reconstruction for every value bm defines: on the duplicated
     path, the reaching definition at the end of bm' is the copy (for
     body instructions) or the phi's input (for phis). *)
  let classes =
    List.map (fun phi -> (phi, [ (bm', Hashtbl.find mapping phi) ])) phis
    @ List.map (fun id -> (id, [ (bm', Hashtbl.find mapping id) ])) body
  in
  ignore (Ir.Ssa_repair.repair g ~classes);
  bm'
