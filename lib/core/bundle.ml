(** Replayable crash bundles.

    When the driver contains a per-function failure it can dump
    everything needed to re-execute the attempt into a small text file:
    the pre-attempt IR (the graph as it stood when the per-function
    pipeline started — i.e. after the containment rollback), the
    configuration knobs that shape the pipeline, and the fault plan (if
    the crash was injected).  [dbdsc --replay-bundle FILE] re-runs the
    bundle and reports whether the failure reproduces.

    Format (version 1) — a line-oriented header followed by the printed
    graph:
    {v
    dbds-bundle: v1
    function: <name>
    site: <crash site>
    exception: <Printexc.to_string>
    plan: <site:hit[:fn] | none>
    config: mode=<m> benefit_scale=<f> ... paranoid=<bool>
    --- profile ---        (optional; absent in bundles without one)
    <fn> <bid> <taken> <total>
    ...
    --- ir ---
    fn <name>(<n> params) entry=bK
    ...
    v}

    The profile section records the branch-profile snapshot a tiered
    background compilation was driven by ([Interp.Profile.render]
    format), so [--replay-bundle] reproduces the exact compilation —
    same probabilities, same trade-off decisions. *)

type t = {
  b_fn : string;  (** crashed function *)
  b_site : string;  (** crash site (or ["exception"]) *)
  b_exn : string;  (** rendered exception *)
  b_plan : Faults.plan option;
  b_config : Config.t;
  b_profile : string option;
      (** branch-profile snapshot ({!Interp.Profile.render} format) the
          compilation was driven by, when it was profile-guided *)
  b_ir : string;  (** pre-attempt IR, {!Ir.Printer} format *)
}

exception Malformed of string

let ir_marker = "--- ir ---"
let profile_marker = "--- profile ---"

(* Config (de)serialization lives in {!Config.to_line} / {!Config.of_line}
   now — the service protocol and artifact store share the format. *)

(* ------------------------------------------------------------------ *)
(* Write / read                                                        *)
(* ------------------------------------------------------------------ *)

let render b =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "dbds-bundle: v1";
  line "function: %s" b.b_fn;
  line "site: %s" b.b_site;
  line "exception: %s" (String.map (function '\n' -> ' ' | c -> c) b.b_exn);
  line "plan: %s"
    (match b.b_plan with Some p -> Faults.to_string p | None -> "none");
  line "config: %s" (Config.to_line b.b_config);
  (match b.b_profile with
  | Some p ->
      line "%s" profile_marker;
      Buffer.add_string buf p;
      if p <> "" && p.[String.length p - 1] <> '\n' then
        Buffer.add_char buf '\n'
  | None -> ());
  line "%s" ir_marker;
  Buffer.add_string buf b.b_ir;
  Buffer.contents buf

(* Function names come from the frontend (identifiers), but sanitize
   anyway: the file name must never escape the bundle directory. *)
let sanitize fn =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> c
      | _ -> '_')
    fn

(** Atomically publish [text] as [dir/name] (creating [dir] if
    missing); returns the path.  Temp file + rename in the same
    directory: readers see the previous complete file or the new one,
    never a truncation.  Shared by crash bundles and the simulator's
    schedule bundles. *)
let write_text ~dir ~name text =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir name in
  let tmp = path ^ ".tmp" in
  let committed = ref false in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !committed then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      output_string oc text;
      close_out oc;
      Sys.rename tmp path;
      committed := true);
  path

(** Write the bundle into [dir] (created if missing); returns the path.
    Deterministic file name per (function, site), so repeated runs
    overwrite rather than accumulate; the write itself is
    {!write_text}-atomic, so a run interrupted mid-write can never
    leave a truncated bundle for [--replay-bundle] to choke on. *)
let write ~dir b =
  let name =
    Printf.sprintf "dbds-crash-%s-%s.bundle" (sanitize b.b_fn)
      (sanitize b.b_site)
  in
  write_text ~dir ~name (render b)

let parse text =
  match String.split_on_char '\n' text with
  | magic :: _ when magic <> "dbds-bundle: v1" ->
      raise (Malformed "not a dbds-bundle v1 file")
  | _ :: rest ->
      let header = Hashtbl.create 8 in
      (* Profile lines sit between the (optional) profile marker and the
         ir marker; older v1 bundles have no profile section. *)
      let rec split_profile acc = function
        | [] -> raise (Malformed "missing IR section")
        | l :: rest when l = ir_marker -> (List.rev acc, rest)
        | l :: rest -> split_profile (l :: acc) rest
      in
      let rec split_header = function
        | [] -> raise (Malformed "missing IR section")
        | l :: rest when l = ir_marker -> (None, rest)
        | l :: rest when l = profile_marker ->
            let profile_lines, ir_lines = split_profile [] rest in
            (Some (String.concat "\n" profile_lines), ir_lines)
        | l :: rest ->
            (match String.index_opt l ':' with
            | Some i ->
                let k = String.sub l 0 i in
                let v =
                  String.trim (String.sub l (i + 1) (String.length l - i - 1))
                in
                Hashtbl.replace header k v
            | None -> ());
            split_header rest
      in
      let profile, ir_lines = split_header rest in
      let get k =
        match Hashtbl.find_opt header k with
        | Some v -> v
        | None -> raise (Malformed (Printf.sprintf "missing %S field" k))
      in
      let plan =
        match get "plan" with
        | "none" -> None
        | s -> (
            match Faults.of_string s with
            | Ok p -> Some p
            | Error e -> raise (Malformed e))
      in
      {
        b_fn = get "function";
        b_site = get "site";
        b_exn = get "exception";
        b_plan = plan;
        b_config = Config.of_line (get "config");
        b_profile = profile;
        b_ir = String.concat "\n" ir_lines;
      }
  | [] -> raise (Malformed "empty bundle")

(** Read and parse a bundle file.
    @raise Malformed on anything that is not a v1 bundle. *)
let read path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text
