(** The DBDS simulation tier (paper §4.1).

    A depth-first traversal of the dominator tree carries three kinds of
    context: condition facts from dominating branches (shared with
    {!Opt.Condelim}), memory-availability state (shared with
    {!Opt.Readelim} via {!Opt.Memstate}), and available pure expressions
    (value numbering).  Whenever the current block [bp] has a CFG
    successor [bm] that is a merge, the traversal pauses and runs a
    {e duplication simulation traversal} (DST): [bm]'s instructions are
    processed as if appended to [bp], with a {e synonym map} binding each
    of [bm]'s phis to its input along the [bp] edge.  Applicability
    checks — the precondition/action pairs of the optimizations from
    paper §2 — run against this synonym-resolved view and report the
    cycles the optimization would save and the code size it would add or
    remove, using the static node cost model.  No IR is mutated (apart
    from hash-consed integer constants materialized in the entry block,
    which are semantically inert and collected by DCE if unused).

    Loop headers are merges too, but duplicating into a back edge is loop
    peeling rather than tail duplication, so they are skipped.  With
    {!Config.t.path_duplication} the DST continues through straight
    chains of merges, emitting additional path candidates (paper §8). *)

(** Run the simulation tier over one graph: all candidates with positive
    estimated benefit, one (or more, with paths) per (predecessor, merge)
    pair. *)
val simulate : Opt.Phase.ctx -> Config.t -> Ir.Graph.t -> Candidate.t list
