(** Re-export of {!Ir.Parallel} under its historical [Dbds.Parallel]
    name; see that module for the pool's determinism and ownership
    contract. *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** Scheduler observability; see {!Ir.Parallel.util}. *)
type util = Ir.Parallel.util = {
  workers : int;
  busy : float array;
  items : int array;
  elapsed : float;
}

val utilization : util -> float

(** [map ~jobs f items]: apply [f] on up to [jobs] domains, results in
    input order — deterministic for any [jobs]; exceptions re-raised in
    the calling domain after all workers joined. *)
val map :
  ?stats:util option ref -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** Size-aware {!map}: longest-processing-time-first dispatch by
    [weight]. *)
val map_weighted :
  ?stats:util option ref ->
  jobs:int ->
  weight:('a -> int) ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** LPT makespan model; see {!Ir.Parallel.lpt_makespan}. *)
val lpt_makespan : jobs:int -> float array -> float * float
