(** Re-export of {!Ir.Parallel} under its historical [Dbds.Parallel]
    name; see that module for the pool's determinism and ownership
    contract. *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [map ~jobs f items]: apply [f] on up to [jobs] domains, results in
    input order — deterministic for any [jobs]; exceptions re-raised in
    the calling domain after all workers joined. *)
val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
