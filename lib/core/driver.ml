(** The DBDS driver: the iterative simulate → trade-off → optimize
    pipeline (paper §5.2), plus the two comparator strategies of the
    evaluation — dupalot (trade-off disabled) and backtracking
    (Algorithm 1 of §3.1).

    The driver is applied per compilation unit (function graph).  After
    each batch of duplications the classic optimization phases run — the
    action steps whose potential the simulation tier detected.  Up to
    [max_iterations] rounds are performed; a new round only starts if the
    previous round's cumulative accepted benefit clears a threshold. *)

module G = Ir.Graph

(** Paranoid mode ({!Config.t.verify_between_phases}): the IR verifier
    found a broken invariant right after the named phase ran. *)
exception Phase_invalid of { phase : string; reason : string }

let () =
  Printexc.register_printer (function
    | Phase_invalid { phase; reason } ->
        Some (Printf.sprintf "Driver.Phase_invalid(after %s: %s)" phase reason)
    | _ -> None)

let paranoid_check (config : Config.t) phase g =
  if config.Config.verify_between_phases then
    match Ir.Verifier.verify_result g with
    | Ok () -> ()
    | Error reason -> raise (Phase_invalid { phase; reason })

type stats = {
  mutable candidates_found : int;
  mutable duplications_performed : int;
  mutable iterations_run : int;
  mutable benefit_accepted : float;
  mutable backtrack_attempts : int;
  mutable backtrack_kept : int;
}

let fresh_stats () =
  {
    candidates_found = 0;
    duplications_performed = 0;
    iterations_run = 0;
    benefit_accepted = 0.0;
    backtrack_attempts = 0;
    backtrack_kept = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "candidates=%d duplicated=%d iterations=%d benefit=%.1f backtrack=%d/%d"
    s.candidates_found s.duplications_performed s.iterations_run
    s.benefit_accepted s.backtrack_kept s.backtrack_attempts

(* One simulate → trade-off → optimize round.  Returns the cumulative
   accepted benefit and the number of accepted candidates that had gone
   stale (an earlier duplication in the round moved their edge). *)
let run_round config ctx stats g =
  let candidates = Simulation.simulate ctx config g in
  stats.candidates_found <- stats.candidates_found + List.length candidates;
  let budget = Tradeoff.budget_for g in
  let round_benefit = ref 0.0 in
  let stale = ref 0 in
  List.iter
    (fun c ->
      if Tradeoff.should_duplicate config budget c then
        match Transform.duplicate g ~merge:c.Candidate.merge ~pred:c.Candidate.pred with
        | bm' ->
            Tradeoff.commit budget c;
            stats.duplications_performed <- stats.duplications_performed + 1;
            round_benefit := !round_benefit +. Candidate.scaled_benefit c;
            (* §8 path extension: continue the duplication along the
               simulated merge chain — each previous duplicate becomes
               the predecessor of the next merge.  A step that went stale
               just truncates the path (each step is independently
               sound). *)
            let pred = ref bm' in
            (try
               List.iter
                 (fun m2 ->
                    let d = Transform.duplicate g ~merge:m2 ~pred:!pred in
                    stats.duplications_performed <-
                      stats.duplications_performed + 1;
                    pred := d)
                 c.Candidate.path
             with Transform.Not_applicable _ -> ());
            Opt.Phase.charge ctx (G.live_instr_count g);
            paranoid_check config "dbds.duplicate" g
        | exception Transform.Not_applicable _ ->
            (* An earlier duplication in this round invalidated the
               candidate (its edge moved); rediscovered next round. *)
            incr stale)
    (Tradeoff.rank candidates);
  (* Action steps: run the classic optimizations over the transformed
     graph (the per-candidate opportunities all fall out of these). *)
  if !round_benefit > 0.0 then
    ignore
      (Opt.Pipeline.optimize ~licm:config.Config.licm
         ~pea_max_rounds:config.Config.pea_max_rounds ctx g);
  stats.benefit_accepted <- stats.benefit_accepted +. !round_benefit;
  (!round_benefit, !stale)

(* Algorithm 1: tentative duplication with backtracking.  For every
   (merge, predecessor) pair: copy the graph, duplicate, run the full
   optimizer, keep the result only if the static performance estimate
   improved. *)
let run_backtracking config ctx stats g =
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < config.Config.max_iterations do
    incr rounds;
    progress := false;
    let merges =
      G.fold_blocks g
        (fun acc bid ->
          if
            G.pred_count g bid >= 2
            && not (List.mem bid (G.succs g bid))
          then bid :: acc
          else acc)
        []
    in
    List.iter
      (fun bm ->
        if G.block_exists g bm then
          List.iter
            (fun bp ->
              if
                G.block_exists g bm
                && List.mem bp (G.preds g bm)
                && List.length (G.preds g bm) >= 2
              then begin
                stats.backtrack_attempts <- stats.backtrack_attempts + 1;
                (* Copy-on-demand speculation: only the blocks /
                   instructions the attempt actually touches are saved,
                   instead of deep-copying the whole graph per attempt.
                   The protect guarantees the journal is unwound on
                   *any* exception — an injected fault or a verifier
                   violation mid-attempt must not leave the graph in a
                   half-speculated state. *)
                G.checkpoint g;
                Fun.protect
                  ~finally:(fun () -> if G.in_speculation g then G.rollback g)
                  (fun () ->
                    Opt.Phase.charge ctx (G.live_instr_count g);
                    let before = Costmodel.Estimate.weighted_cycles g in
                    match Transform.duplicate g ~merge:bm ~pred:bp with
                    | _ ->
                        paranoid_check config "backtracking.duplicate" g;
                        ignore
                          (Opt.Pipeline.optimize ~licm:config.Config.licm
                             ~pea_max_rounds:config.Config.pea_max_rounds ctx
                             g);
                        let after = Costmodel.Estimate.weighted_cycles g in
                        let size_after = Costmodel.Estimate.graph_size g in
                        if
                          after < before
                          && size_after < config.Config.max_unit_size
                        then begin
                          stats.backtrack_kept <- stats.backtrack_kept + 1;
                          stats.duplications_performed <-
                            stats.duplications_performed + 1;
                          progress := true;
                          G.commit g
                        end
                        else G.rollback g
                    | exception Transform.Not_applicable _ -> G.rollback g)
              end)
            (G.preds g bm))
      merges
  done

(* ------------------------------------------------------------------ *)
(* The pipeline spec and its resolver                                  *)
(* ------------------------------------------------------------------ *)

(** The pipeline actually run for a configuration: [passes] when set,
    otherwise derived from the mode.  [inline] is a program-level item —
    the driver runs it once before fanning functions out and strips it
    from the per-function pipeline. *)
let default_spec (config : Config.t) : Opt.Spec.t =
  match config.Config.passes with
  | Some spec -> spec
  | None ->
      let fix () =
        Opt.Pipeline.fix_group ~licm:config.Config.licm
          ~pea_max_rounds:config.Config.pea_max_rounds ()
      in
      let inline = Opt.Spec.Pass { name = "inline"; opts = [] } in
      let tier name =
        Opt.Spec.Pass
          {
            name;
            opts = [ ("iters", string_of_int config.Config.max_iterations) ];
          }
      in
      (match config.Config.mode with
      | Config.Off -> [ inline; fix () ]
      | Config.Dbds -> [ inline; fix (); tier "dbds" ]
      | Config.Dupalot -> [ inline; fix (); tier "dupalot" ]
      | Config.Backtracking -> [ inline; fix (); tier "backtracking"; fix () ]
      (* The greedy tier performs no embedded action steps (unlike the
         simulation tiers, which optimize after each round), so the
         opportunities it opens need a trailing fixpoint group. *)
      | Config.Condelim_dup ->
          [ inline; fix (); tier "condelim_dup"; fix () ])

let is_inline_item = function
  | Opt.Spec.Pass { name = "inline"; _ } -> true
  | _ -> false

let wants_inline spec = List.exists is_inline_item spec
let per_function_items spec = List.filter (fun i -> not (is_inline_item i)) spec

(* Backtracking owns the speculation journal for its own attempts, and
   checkpoints do not nest — containment must fall back to a full
   pre-copy when the pipeline contains that tier. *)
let spec_uses_journal spec =
  let rec item = function
    | Opt.Spec.Pass { name = "backtracking"; _ } -> true
    | Opt.Spec.Pass _ -> false
    | Opt.Spec.Fix { body; _ } -> List.exists item body
  in
  List.exists item spec

(* Resolve the duplication tiers ([dbds], [dupalot], [backtracking]) on
   top of the classic passes.  The tier passes close over the
   per-function [stats] record, so the manager runs them like any other
   pass — per-pass stats, paranoid hooks and preservation handling
   included — while the driver keeps its historical reporting. *)
let resolve (config : Config.t) stats : Opt.Manager.resolver =
 fun name opts ->
  let ( let* ) = Result.bind in
  (* The iterative simulate → trade-off → optimize loop of §5.2; with
     the trade-off disabled ([Dupalot]) every beneficial candidate is
     taken.  Another round only starts if this one's accepted benefit
     cleared the threshold or ranked candidates went stale mid-round. *)
  let iterative_tier mode =
    let* () = Opt.Spec.check_opts ~pass:name [ "iters"; "threshold" ] opts in
    let* iters =
      Opt.Spec.int_opt opts "iters" ~default:config.Config.max_iterations
    in
    let* threshold =
      Opt.Spec.float_opt opts "threshold"
        ~default:config.Config.iteration_benefit_threshold
    in
    let config =
      {
        config with
        Config.mode;
        max_iterations = iters;
        iteration_benefit_threshold = threshold;
      }
    in
    Ok
      (Opt.Phase.make name (fun ctx g ->
           let dup0 = stats.duplications_performed in
           let continue_ = ref true in
           let iter = ref 0 in
           while !continue_ && !iter < config.Config.max_iterations do
             incr iter;
             stats.iterations_run <- stats.iterations_run + 1;
             let benefit, stale = run_round config ctx stats g in
             if
               benefit <= config.Config.iteration_benefit_threshold
               && stale = 0
             then continue_ := false
           done;
           stats.duplications_performed > dup0))
  in
  match name with
  | "dbds" -> iterative_tier Config.Dbds
  | "dupalot" -> iterative_tier Config.Dupalot
  | "backtracking" ->
      let* () = Opt.Spec.check_opts ~pass:name [ "iters" ] opts in
      let* iters =
        Opt.Spec.int_opt opts "iters" ~default:config.Config.max_iterations
      in
      let config =
        {
          config with
          Config.mode = Config.Backtracking;
          max_iterations = iters;
        }
      in
      Ok
        (Opt.Phase.make name (fun ctx g ->
             let kept0 = stats.backtrack_kept in
             run_backtracking config ctx stats g;
             stats.backtrack_kept > kept0))
  | "condelim_dup" ->
      let* () = Opt.Spec.check_opts ~pass:name [ "iters" ] opts in
      let* iters =
        Opt.Spec.int_opt opts "iters" ~default:config.Config.max_iterations
      in
      (* The analysis lives below the core library; inject the
         duplication transform (and the staleness signal) here, counting
         applications into the driver's historical stats. *)
      let duplicate g ~merge ~pred =
        match Transform.duplicate g ~merge ~pred with
        | bm' ->
            stats.duplications_performed <- stats.duplications_performed + 1;
            Some bm'
        | exception Transform.Not_applicable _ -> None
      in
      Ok (Opt.Condelim_dup.phase_with ~duplicate ~iters)
  | "inline" ->
      Error
        "inline is program-level: it may only appear at the top level of \
         the pipeline (the driver runs it before fanning functions out)"
  | _ -> Opt.Pipeline.resolve_classic name opts

(** Check a pipeline spec against the driver's registry: classic passes
    (no options), duplication tiers ([iters], [threshold]), [fix] groups
    ([rounds]), and program-level [inline] at the top level only. *)
let validate_spec (config : Config.t) spec =
  let bad_inline_opts =
    List.find_map
      (function
        | Opt.Spec.Pass { name = "inline"; opts = (k, _) :: _ } ->
            Some (Printf.sprintf "pass inline: unknown option %S" k)
        | _ -> None)
      spec
  in
  match bad_inline_opts with
  | Some msg -> Error msg
  | None ->
      Opt.Manager.validate
        (resolve config (fresh_stats ()))
        (per_function_items spec)

(** Contract table of a spec's per-function passes in pipeline order
    (fix bodies flattened, repeated passes collapsed to their first
    occurrence): [(pass_name, preserves, enables)].  What
    [dbdsc --print-passes] renders under the canonical spec line. *)
let describe_spec (config : Config.t) spec =
  let resolver = resolve config (fresh_stats ()) in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let rec walk items =
    List.iter
      (function
        | Opt.Spec.Fix { body; _ } -> walk body
        | Opt.Spec.Pass { name = "inline"; _ } -> ()
        | Opt.Spec.Pass { name; opts } -> (
            match resolver name opts with
            | Error _ -> ()
            | Ok (p : Opt.Phase.t) ->
                if not (Hashtbl.mem seen p.Opt.Phase.pass_name) then begin
                  Hashtbl.replace seen p.Opt.Phase.pass_name ();
                  out :=
                    ( p.Opt.Phase.pass_name,
                      p.Opt.Phase.preserves,
                      p.Opt.Phase.enables )
                    :: !out
                end))
      items
  in
  walk (per_function_items spec);
  List.rev !out

(** Optimize one graph under the given configuration: execute the
    configured pipeline (minus program-level items) through the pass
    manager.  Returns statistics about the duplication work performed. *)
let optimize_graph ?(config = Config.default) ctx g =
  if config.Config.verify_between_phases then begin
    if ctx.Opt.Phase.post_phase = None then
      ctx.Opt.Phase.post_phase <-
        Some
          (fun phase g ->
            match Ir.Verifier.verify_result g with
            | Ok () -> ()
            | Error reason -> raise (Phase_invalid { phase; reason }));
    (* Paranoid mode also audits preservation contracts: recompute each
       declared-preserved analysis and compare against the kept cache. *)
    ctx.Opt.Phase.check_contracts <- true
  end;
  ctx.Opt.Phase.preserve_analyses <- config.Config.preserve_analyses;
  (* Diagnostic runs want every pass to really execute: fault-injection
     hit counts and paranoid verification both observe pass bodies. *)
  if config.Config.fault_plan <> None || config.Config.verify_between_phases
  then ctx.Opt.Phase.memo_clean_passes <- false;
  let stats = fresh_stats () in
  let analyses_before = Ir.Analyses.stats g in
  ignore
    (Opt.Manager.run (resolve config stats)
       (per_function_items (default_spec config))
       ctx g);
  let analyses_after = Ir.Analyses.stats g in
  Opt.Phase.note_analyses ctx
    ~hits:(analyses_after.Ir.Analyses.hits - analyses_before.Ir.Analyses.hits)
    ~misses:
      (analyses_after.Ir.Analyses.misses - analyses_before.Ir.Analyses.misses);
  stats

(* ------------------------------------------------------------------ *)
(* Crash containment                                                   *)
(* ------------------------------------------------------------------ *)

(** A per-function failure that was contained: the function's graph was
    rolled back to its pre-attempt state, the rest of the program kept
    optimizing. *)
type failure = {
  fail_fn : string;  (** function whose pipeline crashed *)
  fail_site : string;
      (** crash site: a {!Faults.site} name, ["verify.<phase>"] for a
          paranoid violation, or ["exception"] for anything else *)
  fail_exn : string;  (** rendered exception *)
  fail_backtrace : string;
  fail_work : int;  (** work units charged during the failed attempt *)
  fail_pre_ir : string;
      (** the function's IR when the attempt started — what the graph
          was rolled back to, and what a crash bundle replays *)
  fail_bundle : string option;  (** bundle path, when one was written *)
}

let pp_failure ppf f =
  Fmt.pf ppf "%s: contained crash at %s (%s)" f.fail_fn f.fail_site f.fail_exn

(* Containment must never swallow genuinely unrecoverable conditions. *)
let fatal = function Out_of_memory | Stack_overflow -> true | _ -> false

let site_of_exn = function
  | Faults.Injected { site; _ } -> Faults.site_to_string site
  | Phase_invalid { phase; _ } -> "verify." ^ phase
  | Opt.Phase.Contract_violated { pass; _ } -> "preserve." ^ pass
  | Ir.Verifier.Invalid _ -> "verify"
  | _ -> "exception"

(* Optimize one function under containment: arm the fault registry,
   speculate the whole per-function pipeline, and on any exception roll
   the graph back to its pre-attempt state and return a structured
   failure instead of propagating.

   The undo mechanism depends on the pipeline.  Dbds / Dupalot /
   baseline pipelines never speculate internally, so they run under a
   journal checkpoint (copy-on-demand, committed on success).  The
   backtracking tier owns the journal for its own attempts —
   checkpoints do not nest — so containment falls back to a full
   pre-copy when the pipeline contains it (the strategy is the
   expensive comparator anyway). *)
let optimize_one (config : Config.t) ctx g =
  let fn = Ir.Graph.name g in
  let attempt () =
    Faults.armed config.Config.fault_plan ~fn (fun () ->
        Faults.hit Faults.Parallel_worker;
        optimize_graph ~config ctx g)
  in
  if not config.Config.containment then (attempt (), None)
  else begin
    (* In diagnostic runs (injection / bundles / paranoia) capture the
       pre-attempt IR up front, so rollback fidelity is checkable
       against an independent copy; otherwise print it only after a
       rollback, costing nothing on the fault-free fast path. *)
    let diagnostics =
      config.Config.fault_plan <> None
      || config.Config.bundle_dir <> None
      || config.Config.verify_between_phases
    in
    let pre_ir =
      if diagnostics then Some (Ir.Printer.graph_to_string g) else None
    in
    let backup =
      if spec_uses_journal (default_spec config) then Some (G.copy g)
      else begin
        G.checkpoint g;
        None
      end
    in
    let work_before = ctx.Opt.Phase.work in
    match attempt () with
    | s ->
        (match backup with None -> G.commit g | Some _ -> ());
        (s, None)
    | exception e when not (fatal e) ->
        let bt = Printexc.get_raw_backtrace () in
        (* Undo everything the attempt did: unwind whatever speculation
           the crash interrupted, then restore the pre-attempt state. *)
        if G.in_speculation g then G.rollback g;
        (match backup with Some b -> G.restore g ~backup:b | None -> ());
        let pre_ir =
          match pre_ir with
          | Some s -> s
          | None -> Ir.Printer.graph_to_string g
        in
        let site = site_of_exn e in
        let rendered = Printexc.to_string e in
        let bundle =
          match config.Config.bundle_dir with
          | Some dir ->
              Some
                (Bundle.write ~dir
                   {
                     Bundle.b_fn = fn;
                     b_site = site;
                     b_exn = rendered;
                     b_plan = config.Config.fault_plan;
                     b_config = config;
                     b_profile = None;
                     b_ir = pre_ir;
                   })
          | None -> None
        in
        Opt.Phase.note_contained ctx ~site;
        ( fresh_stats (),
          Some
            {
              fail_fn = fn;
              fail_site = site;
              fail_exn = rendered;
              fail_backtrace = Printexc.raw_backtrace_to_string bt;
              fail_work = ctx.Opt.Phase.work - work_before;
              fail_pre_ir = pre_ir;
              fail_bundle = bundle;
            } )
  end

(** The full result of a program run: phase context, per-function
    statistics (zeroed for contained functions) and contained
    failures — all in function-name order, identical for any [jobs]. *)
type report = {
  rep_ctx : Opt.Phase.ctx;
  rep_stats : (string * stats) list;
  rep_failures : failure list;
}

(** A pluggable compilation cache (the service's content-addressed
    artifact store; see [Service.Store.driver_cache]).  [cache_lookup]
    runs before a function's per-function pipeline: a [Some] replacement
    overwrites the graph and skips the pipeline entirely; the returned
    key is the content digest of the {e pre-optimization} request.
    [cache_store] runs after a successful (uncontained) pipeline with
    that same key.  Both hooks must be safe to call from worker domains
    and must never raise — a cache is an accelerator, not a
    dependency. *)
type cache = {
  cache_lookup : Config.t -> Ir.Graph.t -> Ir.Graph.t option * string;
  cache_store : Config.t -> key:string -> Ir.Graph.t -> work:int -> unit;
}

(** Optimize a whole program: inline first (compilation units in the
    evaluation are post-inlining, as in Graal), then fan the configured
    per-function pipeline out over [jobs] domains (default: all cores;
    [~jobs:1] is the sequential behavior).  Each function graph is owned
    by exactly one domain; per-domain phase contexts are merged
    deterministically (in function-name order), so output graphs and
    aggregate statistics are identical for any [jobs].

    Under {!Config.t.containment} (the default) no exception escapes:
    a crashing per-function pipeline is rolled back and reported in
    [rep_failures] while the remaining functions still optimize. *)
let optimize_program_report ?(config = Config.default) ?(inline = true) ?jobs
    ?cache ?sched_stats program =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
  in
  let ctx = Opt.Phase.create ~program () in
  let spec = default_spec config in
  (* A bad --passes spec is a configuration error, not a per-function
     crash: refuse up front rather than containing it N times. *)
  (match validate_spec config spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("pipeline spec: " ^ msg));
  if inline && wants_inline spec then
    ignore (Opt.Inline.inline_program ctx program);
  (* Resolve the graphs up front (name order) so workers never touch the
     program's function table. *)
  let functions =
    List.filter_map
      (fun name -> Ir.Program.find_function program name)
      (Ir.Program.function_names program)
  in
  (* With a cache attached, consult it before a function's pipeline and
     feed it afterwards.  A hit bypasses optimization completely — the
     stats row is zeroed exactly like a contained function's, and the
     artifact was produced by a deterministic pipeline on an identical
     request, so skipping is observationally a (much faster) recompile. *)
  let optimize_one_cached config wctx g =
    match cache with
    | None ->
        let s, f = optimize_one config wctx g in
        (Ir.Graph.name g, s, f)
    | Some c -> (
        match c.cache_lookup config g with
        | Some optimized, _key ->
            G.restore g ~backup:optimized;
            (Ir.Graph.name g, fresh_stats (), None)
        | None, key ->
            let work_before = wctx.Opt.Phase.work in
            let s, f = optimize_one config wctx g in
            if f = None then
              c.cache_store config ~key g
                ~work:(wctx.Opt.Phase.work - work_before);
            (Ir.Graph.name g, s, f))
  in
  let results =
    if jobs = 1 then
      List.map (fun g -> optimize_one_cached config ctx g) functions
    else
      List.map
        (fun (name, s, f, wctx) ->
          Opt.Phase.merge_into ~into:ctx wctx;
          (name, s, f))
        (Parallel.map_weighted ?stats:sched_stats ~jobs
           ~weight:G.live_instr_count
           (fun g ->
             let wctx = Opt.Phase.create ~program () in
             let name, s, f = optimize_one_cached config wctx g in
             (name, s, f, wctx))
           functions)
  in
  {
    rep_ctx = ctx;
    rep_stats = List.map (fun (name, s, _) -> (name, s)) results;
    rep_failures = List.filter_map (fun (_, _, f) -> f) results;
  }

(** {!optimize_program_report} without the failure detail — the
    historical interface most callers use.  Contained failures are still
    contained (counted in the context's [contained] stats). *)
let optimize_program ?config ?inline ?jobs ?cache program =
  let r = optimize_program_report ?config ?inline ?jobs ?cache program in
  (r.rep_ctx, r.rep_stats)

(* ------------------------------------------------------------------ *)
(* Bundle replay                                                       *)
(* ------------------------------------------------------------------ *)

(** Re-execute a crash bundle: parse its pre-attempt IR, rebuild the
    recorded configuration (fault plan included) and run the
    per-function pipeline under containment.  [`Reproduced f] if the
    attempt was contained again, [`Clean] if it now succeeds. *)
let replay_bundle (b : Bundle.t) =
  let g = Ir.Parse.parse_graph b.Bundle.b_ir in
  let program = Ir.Program.of_graph g in
  let config =
    {
      b.Bundle.b_config with
      Config.containment = true;
      fault_plan = b.Bundle.b_plan;
      bundle_dir = None;
    }
  in
  (* The bundle holds post-inlining IR: do not inline again. *)
  let r = optimize_program_report ~config ~inline:false program in
  match r.rep_failures with f :: _ -> `Reproduced f | [] -> `Clean

(** Aggregate statistics over a program run. *)
let total_stats per_function =
  let t = fresh_stats () in
  List.iter
    (fun (_, s) ->
      t.candidates_found <- t.candidates_found + s.candidates_found;
      t.duplications_performed <-
        t.duplications_performed + s.duplications_performed;
      t.iterations_run <- max t.iterations_run s.iterations_run;
      t.benefit_accepted <- t.benefit_accepted +. s.benefit_accepted;
      t.backtrack_attempts <- t.backtrack_attempts + s.backtrack_attempts;
      t.backtrack_kept <- t.backtrack_kept + s.backtrack_kept)
    per_function;
  t
