(** The DBDS driver: the iterative simulate → trade-off → optimize
    pipeline (paper §5.2), plus the two comparator strategies of the
    evaluation — dupalot (trade-off disabled) and backtracking
    (Algorithm 1 of §3.1).

    The driver is applied per compilation unit (function graph).  After
    each batch of duplications the classic optimization phases run — the
    action steps whose potential the simulation tier detected.  Up to
    [max_iterations] rounds are performed; a new round only starts if the
    previous round's cumulative accepted benefit clears a threshold. *)

module G = Ir.Graph

type stats = {
  mutable candidates_found : int;
  mutable duplications_performed : int;
  mutable iterations_run : int;
  mutable benefit_accepted : float;
  mutable backtrack_attempts : int;
  mutable backtrack_kept : int;
}

let fresh_stats () =
  {
    candidates_found = 0;
    duplications_performed = 0;
    iterations_run = 0;
    benefit_accepted = 0.0;
    backtrack_attempts = 0;
    backtrack_kept = 0;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "candidates=%d duplicated=%d iterations=%d benefit=%.1f backtrack=%d/%d"
    s.candidates_found s.duplications_performed s.iterations_run
    s.benefit_accepted s.backtrack_kept s.backtrack_attempts

(* One simulate → trade-off → optimize round.  Returns the cumulative
   accepted benefit and the number of accepted candidates that had gone
   stale (an earlier duplication in the round moved their edge). *)
let run_round config ctx stats g =
  let candidates = Simulation.simulate ctx config g in
  stats.candidates_found <- stats.candidates_found + List.length candidates;
  let budget = Tradeoff.budget_for g in
  let round_benefit = ref 0.0 in
  let stale = ref 0 in
  List.iter
    (fun c ->
      if Tradeoff.should_duplicate config budget c then
        match Transform.duplicate g ~merge:c.Candidate.merge ~pred:c.Candidate.pred with
        | bm' ->
            Tradeoff.commit budget c;
            stats.duplications_performed <- stats.duplications_performed + 1;
            round_benefit := !round_benefit +. Candidate.scaled_benefit c;
            (* §8 path extension: continue the duplication along the
               simulated merge chain — each previous duplicate becomes
               the predecessor of the next merge.  A step that went stale
               just truncates the path (each step is independently
               sound). *)
            let pred = ref bm' in
            (try
               List.iter
                 (fun m2 ->
                    let d = Transform.duplicate g ~merge:m2 ~pred:!pred in
                    stats.duplications_performed <-
                      stats.duplications_performed + 1;
                    pred := d)
                 c.Candidate.path
             with Transform.Not_applicable _ -> ());
            Opt.Phase.charge ctx (G.live_instr_count g)
        | exception Transform.Not_applicable _ ->
            (* An earlier duplication in this round invalidated the
               candidate (its edge moved); rediscovered next round. *)
            incr stale)
    (Tradeoff.rank candidates);
  (* Action steps: run the classic optimizations over the transformed
     graph (the per-candidate opportunities all fall out of these). *)
  if !round_benefit > 0.0 then ignore (Opt.Pipeline.optimize ctx g);
  stats.benefit_accepted <- stats.benefit_accepted +. !round_benefit;
  (!round_benefit, !stale)

(* Algorithm 1: tentative duplication with backtracking.  For every
   (merge, predecessor) pair: copy the graph, duplicate, run the full
   optimizer, keep the result only if the static performance estimate
   improved. *)
let run_backtracking config ctx stats g =
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < config.Config.max_iterations do
    incr rounds;
    progress := false;
    let merges =
      G.fold_blocks g
        (fun acc b ->
          if
            List.length b.G.preds >= 2
            && not (List.mem b.G.blk_id (G.succs g b.G.blk_id))
          then b.G.blk_id :: acc
          else acc)
        []
    in
    List.iter
      (fun bm ->
        if G.block_exists g bm then
          List.iter
            (fun bp ->
              if
                G.block_exists g bm
                && List.mem bp (G.preds g bm)
                && List.length (G.preds g bm) >= 2
              then begin
                stats.backtrack_attempts <- stats.backtrack_attempts + 1;
                (* Copy-on-demand speculation: only the blocks /
                   instructions the attempt actually touches are saved,
                   instead of deep-copying the whole graph per attempt. *)
                G.checkpoint g;
                Opt.Phase.charge ctx (G.live_instr_count g);
                let before = Costmodel.Estimate.weighted_cycles g in
                match Transform.duplicate g ~merge:bm ~pred:bp with
                | _ ->
                    ignore (Opt.Pipeline.optimize ctx g);
                    let after = Costmodel.Estimate.weighted_cycles g in
                    let size_after = Costmodel.Estimate.graph_size g in
                    if
                      after < before
                      && size_after < config.Config.max_unit_size
                    then begin
                      stats.backtrack_kept <- stats.backtrack_kept + 1;
                      stats.duplications_performed <-
                        stats.duplications_performed + 1;
                      progress := true;
                      G.commit g
                    end
                    else G.rollback g
                | exception Transform.Not_applicable _ -> G.rollback g
              end)
            (G.preds g bm))
      merges
  done

(** Optimize one graph under the given configuration.  Returns statistics
    about the duplication work performed. *)
let optimize_graph ?(config = Config.default) ctx g =
  let stats = fresh_stats () in
  let analyses_before = Ir.Analyses.stats g in
  (match config.Config.mode with
  | Config.Off -> ignore (Opt.Pipeline.optimize ctx g)
  | Config.Backtracking ->
      ignore (Opt.Pipeline.optimize ctx g);
      run_backtracking config ctx stats g;
      ignore (Opt.Pipeline.optimize ctx g)
  | Config.Dbds | Config.Dupalot ->
      ignore (Opt.Pipeline.optimize ctx g);
      let continue_ = ref true in
      let iter = ref 0 in
      while !continue_ && !iter < config.Config.max_iterations do
        incr iter;
        stats.iterations_run <- !iter;
        let benefit, stale = run_round config ctx stats g in
        (* Another round pays off when this one's accepted benefit was
           high enough (paper §5.2) or when ranked candidates went stale
           mid-round and deserve a fresh simulation. *)
        if benefit <= config.Config.iteration_benefit_threshold && stale = 0
        then continue_ := false
      done);
  let analyses_after = Ir.Analyses.stats g in
  Opt.Phase.note_analyses ctx
    ~hits:(analyses_after.Ir.Analyses.hits - analyses_before.Ir.Analyses.hits)
    ~misses:
      (analyses_after.Ir.Analyses.misses - analyses_before.Ir.Analyses.misses);
  stats

(** Optimize a whole program: inline first (compilation units in the
    evaluation are post-inlining, as in Graal), then fan the configured
    per-function pipeline out over [jobs] domains (default: all cores;
    [~jobs:1] is the sequential behavior).  Each function graph is owned
    by exactly one domain; per-domain phase contexts are merged
    deterministically (in function-name order), so output graphs and
    aggregate statistics are identical for any [jobs].  Returns the phase
    context (for work-unit accounting) and per-function statistics. *)
let optimize_program ?(config = Config.default) ?(inline = true) ?jobs program =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Parallel.default_jobs ()
  in
  let ctx = Opt.Phase.create ~program () in
  if inline then ignore (Opt.Inline.inline_program ctx program);
  (* Resolve the graphs up front (name order) so workers never touch the
     program's function table. *)
  let functions =
    List.filter_map
      (fun name -> Ir.Program.find_function program name)
      (Ir.Program.function_names program)
  in
  if jobs = 1 then
    ( ctx,
      List.map
        (fun g -> (Ir.Graph.name g, optimize_graph ~config ctx g))
        functions )
  else begin
    let results =
      Parallel.map ~jobs
        (fun g ->
          let wctx = Opt.Phase.create ~program () in
          let s = optimize_graph ~config wctx g in
          (Ir.Graph.name g, s, wctx))
        functions
    in
    let stats =
      List.map
        (fun (name, s, wctx) ->
          Opt.Phase.merge_into ~into:ctx wctx;
          (name, s))
        results
    in
    (ctx, stats)
  end

(** Aggregate statistics over a program run. *)
let total_stats per_function =
  let t = fresh_stats () in
  List.iter
    (fun (_, s) ->
      t.candidates_found <- t.candidates_found + s.candidates_found;
      t.duplications_performed <-
        t.duplications_performed + s.duplications_performed;
      t.iterations_run <- max t.iterations_run s.iterations_run;
      t.benefit_accepted <- t.benefit_accepted +. s.benefit_accepted;
      t.backtrack_attempts <- t.backtrack_attempts + s.backtrack_attempts;
      t.backtrack_kept <- t.backtrack_kept + s.backtrack_kept)
    per_function;
  t
