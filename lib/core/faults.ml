(** Deterministic fault injection for the DBDS pipeline.

    The optimizer has a handful of named {e sites} — points where real
    failures have bitten or could bite: an opportunity check in the
    simulation tier, the duplication transform mid-mutation, SSA
    reconstruction, a worker domain picking up a function, an analysis
    cache miss.  A {e fault plan} [(seed, site, nth-hit)] arms exactly
    one of them: the [nth] time that site executes inside a matching
    function's per-function pipeline, {!Injected} is raised.

    Hit counting is {e per function}: the registry is armed by the
    driver around each function's pipeline ({!armed}) and counts hits in
    domain-local state.  Because every function is optimized by exactly
    one domain and its pipeline is sequential, the [nth] hit of a site
    within a function is a deterministic point — independent of how many
    worker domains run and of scheduling.  The same plan therefore
    crashes the same functions at the same instruction under [jobs:1]
    and [jobs:N], which is what makes contained failures reproducible
    and crash bundles replayable.

    Sites below the [dbds] library ([ssa.repair], [analyses.cache]) are
    reached through {!Ir.Probe}: this module installs the process-wide
    probe handler at load time. *)

type site =
  | Sim_opportunity  (** an applicability check fired in a DST *)
  | Transform_apply  (** the duplication transform, mid-mutation *)
  | Ssa_repair  (** SSA reconstruction after a duplication *)
  | Parallel_worker  (** a worker domain picking up a function *)
  | Analyses_cache  (** an analysis-cache miss (a real recompute) *)
  | Store_write  (** the artifact store, mid-payload (torn temp write) *)
  | Store_read  (** the artifact store reading an entry back *)
  | Store_rename  (** the atomic publish rename (torn publication) *)
  | Store_corrupt
      (** publish a subtly-wrong artifact with a {e valid} checksum — a
          deliberate bug the whole-system simulator's invariant checker
          must catch (never armed by seed derivation) *)
  | Net_drop  (** a transport chunk is lost; the connection resets *)
  | Net_reorder  (** a transport chunk is delivered out of order *)
  | Net_dup  (** a transport chunk is delivered twice *)
  | Net_partition  (** the network partitions for a window of time *)
  | Disk_slow  (** one disk operation stalls for a long time *)
  | Disk_torn  (** a file write is cut short mid-payload *)
  | Disk_crash  (** a crash between data write and publication rename *)
  | Clock_jump  (** the wall clock steps forward (NTP); mono is steady *)

let pipeline_sites =
  [ Sim_opportunity; Transform_apply; Ssa_repair; Parallel_worker; Analyses_cache ]

let store_sites = [ Store_write; Store_read; Store_rename ]

let sim_sites =
  [
    Net_drop;
    Net_reorder;
    Net_dup;
    Net_partition;
    Disk_slow;
    Disk_torn;
    Disk_crash;
    Clock_jump;
  ]

let all_sites = pipeline_sites @ store_sites @ (Store_corrupt :: sim_sites)

let site_to_string = function
  | Sim_opportunity -> "sim.opportunity"
  | Transform_apply -> "transform.apply"
  | Ssa_repair -> "ssa.repair"
  | Parallel_worker -> "parallel.worker"
  | Analyses_cache -> "analyses.cache"
  | Store_write -> "store.write"
  | Store_read -> "store.read"
  | Store_rename -> "store.rename"
  | Store_corrupt -> "store.corrupt"
  | Net_drop -> "net.drop"
  | Net_reorder -> "net.reorder"
  | Net_dup -> "net.dup"
  | Net_partition -> "net.partition"
  | Disk_slow -> "disk.slow"
  | Disk_torn -> "disk.torn"
  | Disk_crash -> "disk.crash"
  | Clock_jump -> "clock.jump"

let site_of_string = function
  | "sim.opportunity" -> Some Sim_opportunity
  | "transform.apply" -> Some Transform_apply
  | "ssa.repair" -> Some Ssa_repair
  | "parallel.worker" -> Some Parallel_worker
  | "analyses.cache" -> Some Analyses_cache
  | "store.write" -> Some Store_write
  | "store.read" -> Some Store_read
  | "store.rename" -> Some Store_rename
  | "store.corrupt" -> Some Store_corrupt
  | "net.drop" -> Some Net_drop
  | "net.reorder" -> Some Net_reorder
  | "net.dup" -> Some Net_dup
  | "net.partition" -> Some Net_partition
  | "disk.slow" -> Some Disk_slow
  | "disk.torn" -> Some Disk_torn
  | "disk.crash" -> Some Disk_crash
  | "clock.jump" -> Some Clock_jump
  | _ -> None

type plan = {
  seed : int;  (** provenance: the fuzz seed this plan was derived from *)
  site : site;
  hit : int;  (** 1-based: the [hit]-th execution of [site] raises *)
  fn : string option;  (** only arm for this function ([None] = all) *)
}

exception Injected of { site : site; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
        Some
          (Printf.sprintf "Faults.Injected(%s, hit %d)" (site_to_string site)
             hit)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Plan syntax: "site:hit", "site:hit:fn", "seed:N"                    *)
(* ------------------------------------------------------------------ *)

let to_string p =
  let base = Printf.sprintf "%s:%d" (site_to_string p.site) p.hit in
  match p.fn with None -> base | Some fn -> base ^ ":" ^ fn

(** Derive a pseudorandom plan from a seed: a pipeline site and a small
    hit index, uniformly.  Deterministic in [seed].  Drawn from
    {!pipeline_sites} only, so historical seeds keep crashing at the
    same points; store sites are armed explicitly
    ({!of_seed_store}). *)
let of_seed seed =
  let rng = Random.State.make [| 0x0fa17; seed |] in
  let site =
    List.nth pipeline_sites (Random.State.int rng (List.length pipeline_sites))
  in
  let hit = 1 + Random.State.int rng 6 in
  { seed; site; hit; fn = None }

(** Like {!of_seed}, over the artifact-store sites — the plans the
    service fuzzer feeds the compilation cache. *)
let of_seed_store seed =
  let rng = Random.State.make [| 0x570fa17; seed |] in
  let site =
    List.nth store_sites (Random.State.int rng (List.length store_sites))
  in
  let hit = 1 + Random.State.int rng 2 in
  { seed; site; hit; fn = None }

let of_string s =
  match String.split_on_char ':' s with
  | [ "seed"; n ] -> (
      match int_of_string_opt n with
      | Some seed -> Ok (of_seed seed)
      | None -> Error (Printf.sprintf "invalid fault seed %S" n))
  | site :: hit :: rest -> (
      match (site_of_string site, int_of_string_opt hit) with
      | None, _ ->
          Error
            (Printf.sprintf "unknown fault site %S (known: %s)" site
               (String.concat ", " (List.map site_to_string all_sites)))
      | _, None -> Error (Printf.sprintf "invalid hit count %S" hit)
      | Some site, Some hit when hit >= 1 ->
          let fn =
            match rest with [] -> None | parts -> Some (String.concat ":" parts)
          in
          Ok { seed = 0; site; hit; fn }
      | _ -> Error "hit count must be >= 1")
  | _ ->
      Error
        (Printf.sprintf
           "cannot parse fault plan %S (expected site:hit[:fn] or seed:N)" s)

(* ------------------------------------------------------------------ *)
(* Arming and hit counting (domain-local)                              *)
(* ------------------------------------------------------------------ *)

type armed_state = { plan : plan; mutable count : int }

let state_key : armed_state option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* Where the registry keeps its armed state.  The default is
   domain-local storage — every function is optimized by exactly one
   domain, so the [nth] hit of a site within a function is
   scheduling-independent.  The whole-system simulator runs many
   logical tasks as fibers inside ONE domain; it swaps in a
   fiber-local provider so arming in one task cannot leak into an
   interleaved task (see {!set_state_provider}). *)
type state_provider = {
  sp_get : unit -> armed_state option;
  sp_set : armed_state option -> unit;
}

let dls_provider =
  {
    sp_get = (fun () -> Domain.DLS.get state_key);
    sp_set = (fun v -> Domain.DLS.set state_key v);
  }

let provider = ref dls_provider
let set_state_provider ~get ~set = provider := { sp_get = get; sp_set = set }
let default_state_provider () = provider := dls_provider
let get_state () = !provider.sp_get ()
let set_state v = !provider.sp_set v

(** [armed plan ~fn f] runs [f] with the registry armed for function
    [fn] under [plan] ([None] or a non-matching [plan.fn] arm nothing).
    The hit counter starts fresh; the previous arming is restored on
    exit, exceptional or not. *)
let armed plan ~fn f =
  match plan with
  | None -> f ()
  | Some p when p.fn <> None && p.fn <> Some fn -> f ()
  | Some p ->
      let prev = get_state () in
      set_state (Some { plan = p; count = 0 });
      Fun.protect ~finally:(fun () -> set_state prev) f

(** Announce one execution of [site].  No-op unless armed for it; raises
    {!Injected} on the plan's hit. *)
let hit site =
  match get_state () with
  | Some st when st.plan.site = site ->
      st.count <- st.count + 1;
      if st.count = st.plan.hit then
        raise (Injected { site; hit = st.count })
  | _ -> ()

(* Wire the IR-level probes ("ssa.repair", "analyses.cache") into the
   registry.  Installed once, when the dbds library loads. *)
let () =
  Ir.Probe.set_handler (fun name ->
      match site_of_string name with Some s -> hit s | None -> ())
