(** The trade-off tier (paper §4.2 and §5.4): rank candidates by expected
    payoff and accept them against the cost model

    {v (b × p × BS) > c  ∧  (cs < MS)  ∧  (cs + c < is × IB) v}

    where [b] is estimated cycles saved, [p] the predecessor's relative
    frequency, [c] the estimated code-size increase, [cs] the current
    unit size, [is] the initial unit size, [BS] the benefit scale (256),
    [IB] the code-size increase budget (1.5) and [MS] the VM's maximum
    unit size.  The dupalot configuration accepts any positive benefit
    and only respects the hard VM limit. *)

type budget = {
  initial_size : int;
  mutable current_size : int;
}

(** Budget seeded from the graph's current cost-model size. *)
val budget_for : Ir.Graph.t -> budget

(** The paper's [shouldDuplicate] predicate. *)
val should_duplicate : Config.t -> budget -> Candidate.t -> bool

(** Record an accepted duplication against the budget. *)
val commit : budget -> Candidate.t -> unit

(** Sort candidates by expected payoff: scaled benefit descending, then
    smaller cost first (paper: "optimize the most likely and most
    beneficial ones first"). *)
val rank : Candidate.t list -> Candidate.t list
