(** Re-export of {!Ir.Parallel}.

    The worker pool moved into the [ir] library so that [opt]'s pipeline
    can fan out over it too; [Dbds.Parallel] remains the historical name
    every driver-level caller uses. *)

include Ir.Parallel
