(** Multicore fan-out: a stdlib-[Domain] worker pool (OCaml 5, no
    external dependencies).

    [map ~jobs f items] applies [f] to every item and returns the results
    {e in input order}, regardless of which worker ran which item or in
    what order they finished — so callers observe deterministic output
    for any [jobs].  Items are dispatched dynamically (an atomic cursor),
    which load-balances uneven per-item cost; each item is processed by
    exactly one domain.

    Exceptions raised by [f] are captured per item and re-raised in the
    calling domain (the earliest-indexed failure wins), with their
    backtrace preserved.

    Ownership discipline: [f] must only mutate state reachable from its
    own item (the driver passes one function graph per item and merges
    per-worker contexts afterwards).  Shared lookups (e.g. the program's
    class table) must be read-only. *)

let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else
          results.(i) <-
            Some
              (try Ok (f arr.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain works too: jobs domains total. *)
    worker ();
    List.iter Domain.join helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end
