(** The DBDS simulation tier (paper §4.1).

    A depth-first traversal of the dominator tree carries three kinds of
    context: condition facts from dominating branches (shared with
    {!Opt.Condelim}), memory-availability state (shared with
    {!Opt.Readelim} via {!Opt.Memstate}), and available pure expressions
    (value numbering).  Whenever the current block [bp] has a CFG
    successor [bm] that is a merge, the traversal pauses and runs a
    {e duplication simulation traversal} (DST): [bm]'s instructions are
    processed as if appended to [bp], with a {e synonym map} binding each
    of [bm]'s phis to its input along the [bp] edge.  Applicability
    checks — the precondition/action pairs of the optimizations from
    paper §2 — run against this synonym-resolved view and report the
    cycles the optimization would save and the code size it would add or
    remove, using the static node cost model.  No IR is mutated (apart
    from hash-consed integer constants materialized in the entry block,
    which are semantically inert and collected by DCE if unused).

    Loop headers are merges too, but duplicating into a back edge is loop
    peeling rather than tail duplication, so they are skipped — as is the
    paper's implicit behaviour for Graal loop-begin nodes. *)

open Ir.Types
module G = Ir.Graph

type dst_context = {
  env : Opt.Condelim.env;
  mem : Opt.Memstate.t;
  exprs : (instr_kind, value) Hashtbl.t;
}

(* Per-simulation scratch for the DST synonym and overlay maps:
   epoch-stamped flat arrays indexed by value id, reused across every
   DST of one traversal.  Bumping [epoch] empties all maps at once, so
   the simulation inner loop neither allocates nor clears. *)
type scratch = {
  mutable syn_epoch : int array;
  mutable syn_val : int array;  (** synonym binding when epoch matches *)
  mutable ovl_epoch : int array;
  mutable ovl_kind : instr_kind array;  (** overlay when epoch matches *)
  mutable pea_epoch : int array;  (** counted-allocation flags *)
  mutable epoch : int;
}

let scratch_create n =
  let n = max 16 n in
  {
    syn_epoch = Array.make n 0;
    syn_val = Array.make n 0;
    ovl_epoch = Array.make n 0;
    ovl_kind = Array.make n (Const 0);
    pea_epoch = Array.make n 0;
    epoch = 0;
  }

(* Constants hash-consed by [mk_const] mid-DST can exceed the initial
   arena watermark; grow on write, treat out-of-range as unbound on
   read. *)
let scratch_ensure sc v =
  let n = Array.length sc.syn_epoch in
  if v >= n then begin
    let n' = max (v + 1) (2 * n) in
    let grow a fill =
      let a' = Array.make n' fill in
      Array.blit a 0 a' 0 n;
      a'
    in
    sc.syn_epoch <- grow sc.syn_epoch 0;
    sc.syn_val <- grow sc.syn_val 0;
    sc.ovl_epoch <- grow sc.ovl_epoch 0;
    sc.ovl_kind <- grow sc.ovl_kind (Const 0);
    sc.pea_epoch <- grow sc.pea_epoch 0
  end

let class_fields ctx cls =
  match ctx.Opt.Phase.program with
  | None -> None
  | Some p ->
      Option.map (fun c -> c.Ir.Program.fields) (Ir.Program.find_class p cls)

(* The cost of an instruction kind. *)
let cycles k = Costmodel.Cost.cycles_of_kind k
let size k = Costmodel.Cost.size_of_kind k

(** Simulate duplicating merge [bm] into predecessor [bp] given the
    traversal context at the end of [bp].  Returns a candidate when any
    applicability check fires with positive benefit — and, when the §8
    path extension is enabled and [bm] jumps straight into further
    merges, additional path candidates covering the chain. *)
let simulate_dst ctx (config : Config.t) g ~loops ~mk_const ~freq ~sc dctx bp
    bm =
  Opt.Phase.charge ctx (G.block_size g bm);
  sc.epoch <- sc.epoch + 1;
  let ep = sc.epoch in
  let set_syn v w =
    scratch_ensure sc v;
    sc.syn_epoch.(v) <- ep;
    sc.syn_val.(v) <- w
  in
  let set_ovl v k =
    scratch_ensure sc v;
    sc.ovl_epoch.(v) <- ep;
    sc.ovl_kind.(v) <- k
  in
  let resolve v =
    let v = ref v in
    while !v < Array.length sc.syn_epoch && sc.syn_epoch.(!v) = ep do
      v := sc.syn_val.(!v)
    done;
    !v
  in
  let kind_of v =
    let v = resolve v in
    if v < Array.length sc.ovl_epoch && sc.ovl_epoch.(v) = ep then
      sc.ovl_kind.(v)
    else G.kind g v
  in
  let bind_phis merge pred =
    let pred_idx = G.pred_index g merge pred in
    G.iter_phis g merge (fun phi ->
        match G.kind g phi with
        | Phi inputs -> set_syn phi inputs.(pred_idx)
        | _ -> assert false)
  in
  bind_phis bm bp;
  let benefit = ref 0.0 in
  let size_delta = ref 0 in
  let opps = ref [] in
  (* Seen-flags indexed by opportunity tag: O(1) dedup instead of a
     List.mem scan per fired check (this runs for every instruction of
     every simulated merge). *)
  let opp_seen = Array.make Candidate.n_opportunities false in
  let mem = ref dctx.mem in
  let fire opp ~saved_cycles ~saved_size =
    Faults.hit Faults.Sim_opportunity;
    benefit := !benefit +. saved_cycles;
    size_delta := !size_delta - saved_size;
    let tag = Candidate.opportunity_index opp in
    if not opp_seen.(tag) then begin
      opp_seen.(tag) <- true;
      opps := opp :: !opps
    end
  in
  (* PEA check: a memory access through a synonym that turns out to be an
     allocation which currently escapes only through phis. *)
  let check_pea base =
    let base = resolve base in
    match G.kind g base with
    | New (_, _)
      when Opt.Pea.escape_state g base = Opt.Pea.Through_phi_only ->
        if sc.pea_epoch.(base) <> ep then begin
          sc.pea_epoch.(base) <- ep;
          (* Scalar replacement would remove the allocation itself. *)
          fire Candidate.Escape_analysis
            ~saved_cycles:(cycles (G.kind g base))
            ~saved_size:0
        end;
        true
    | _ -> false
  in
  let process_body block_id =
   G.iter_body g block_id
    (fun id ->
      let orig = G.kind g id in
      (* The duplication copies this instruction: count its size. *)
      size_delta := !size_delta + size orig;
      let resolved = map_inputs resolve orig in
      let action = Opt.Canonicalize.simplify ~kind_of ~mk_const resolved in
      match action with
      | Opt.Canonicalize.Fold n ->
          fire
            (match resolved with
            | Cmp _ -> Candidate.Conditional_elimination
            | _ -> Candidate.Constant_fold)
            ~saved_cycles:(cycles orig -. cycles (Const n))
            ~saved_size:(size orig - size (Const n));
          set_ovl id (Const n)
      | Opt.Canonicalize.Fold_null ->
          fire Candidate.Constant_fold
            ~saved_cycles:(cycles orig)
            ~saved_size:(size orig - 1);
          set_ovl id Null
      | Opt.Canonicalize.Alias v ->
          fire Candidate.Copy_propagation ~saved_cycles:(cycles orig)
            ~saved_size:(size orig);
          set_syn id v
      | Opt.Canonicalize.Rewrite k ->
          fire Candidate.Strength_reduce
            ~saved_cycles:(cycles orig -. cycles k)
            ~saved_size:(size orig - size k);
          set_ovl id k
      | Opt.Canonicalize.Unchanged -> (
          (* Conditional elimination: facts from dominating branches. *)
          match
            match resolved with
            | Cmp _ -> Opt.Condelim.implied ~kind_of dctx.env id resolved
            | _ -> None
          with
          | Some t ->
              fire Candidate.Conditional_elimination
                ~saved_cycles:(cycles orig -. cycles (Const 0))
                ~saved_size:(size orig - 1);
              set_ovl id (Const (if t then 1 else 0))
          | None ->
              (* Value numbering against dominating expressions. *)
              let gvn_hit =
                if Opt.Gvn.is_candidate resolved then
                  Hashtbl.find_opt dctx.exprs (Opt.Gvn.key_of_kind resolved)
                else None
              in
              (match gvn_hit with
              | Some earlier ->
                  fire Candidate.Value_numbering ~saved_cycles:(cycles orig)
                    ~saved_size:(size orig);
                  set_syn id earlier
              | None -> (
                  (* Read elimination over the threaded memory state. *)
                  match resolved with
                  | Load (base, _field) ->
                      let st, redundant =
                        Opt.Memstate.transfer !mem id resolved
                      in
                      (* An access through a phi-escaping allocation is a
                         scalar-replacement opportunity whether or not the
                         read is also directly redundant. *)
                      ignore (check_pea base);
                      (match redundant with
                      | Some v ->
                          fire Candidate.Read_elimination
                            ~saved_cycles:(cycles orig) ~saved_size:(size orig);
                          set_syn id v
                      | None -> ());
                      mem := st
                  | Load_global _ ->
                      let st, redundant =
                        Opt.Memstate.transfer !mem id resolved
                      in
                      (match redundant with
                      | Some v ->
                          fire Candidate.Read_elimination
                            ~saved_cycles:(cycles orig) ~saved_size:(size orig);
                          set_syn id v
                      | None -> ());
                      mem := st
                  | Store (base, _, _) ->
                      ignore (check_pea base);
                      let st, _ = Opt.Memstate.transfer !mem id resolved in
                      mem := st
                  | New (cls, args) ->
                      let st, _ = Opt.Memstate.transfer !mem id resolved in
                      mem :=
                        (match class_fields ctx cls with
                        | Some fields ->
                            Opt.Memstate.seed_new st ~fields id args
                        | None -> st)
                  | k ->
                      let st, _ = Opt.Memstate.transfer !mem id k in
                      mem := st))))
  in
  (* The duplicated terminator: count its size; a branch whose condition
     resolves to a constant or is implied folds into a jump and unlocks
     downstream simplification. *)
  let process_term block_id =
    match G.term g block_id with
    | Branch { cond; _ } as t ->
        size_delta :=
          !size_delta + (Costmodel.Cost.of_term t).Costmodel.Cost.size;
        let decided =
          match kind_of (resolve cond) with
          | Const _ -> true
          | k -> (
              match k with
              | Cmp _ ->
                  Opt.Condelim.implied ~kind_of dctx.env (resolve cond) k <> None
              | _ -> false)
        in
        if decided then
          fire Candidate.Conditional_elimination ~saved_cycles:1.0 ~saved_size:1
    | t ->
        size_delta :=
          !size_delta + (Costmodel.Cost.of_term t).Costmodel.Cost.size
  in
  let probability = Ir.Frequency.relative freq bp in
  let mk_candidate path =
    {
      Candidate.merge = bm;
      pred = bp;
      path = List.rev path;
      benefit = !benefit;
      probability;
      size_delta = !size_delta;
      opportunities = List.rev !opps;
    }
  in
  process_body bm;
  process_term bm;
  let results = ref [] in
  if !benefit > 0.0 then results := [ mk_candidate [] ];
  (* §8 path extension: continue the DST through a straight chain of
     further merges; each extension that adds benefit becomes its own
     candidate, priced with the cumulative cost of the whole path. *)
  if config.Config.path_duplication then begin
    let cur = ref bm in
    let path = ref [] in
    let path_len = ref 0 in
    let continue_ = ref true in
    while !continue_ && !path_len < config.Config.max_path_length - 1 do
      match G.term g !cur with
      | Jump next
        when next <> !cur
             && G.pred_count g next >= 2
             && (not (Ir.Loops.is_header loops next))
             && next <> bm
             && not (List.mem next !path) ->
          Opt.Phase.charge ctx (G.block_size g next);
          let benefit_before = !benefit in
          bind_phis next !cur;
          process_body next;
          process_term next;
          path := next :: !path;
          incr path_len;
          if !benefit > benefit_before then
            results := mk_candidate !path :: !results;
          cur := next
      | _ -> continue_ := false
    done
  end;
  !results

(** Run the simulation tier over one graph: returns all candidates with
    positive estimated benefit, one per (predecessor, merge) pair. *)
let simulate ctx (config : Config.t) g =
  Opt.Phase.charge_graph ctx g;
  let dom = Ir.Analyses.dom g in
  let loops = Ir.Analyses.loops g in
  let freq = Ir.Analyses.frequency ~loop_factor:config.Config.loop_factor g in
  let mk_const = Opt.Canonicalize.materialize_const g in
  let sc = scratch_create (G.n_instrs g + 64) in
  let exprs : (instr_kind, value) Hashtbl.t = Hashtbl.create 64 in
  let candidates = ref [] in
  let kind_of v = G.kind g v in
  let rec visit env mem bid =
    (* Process this block's instructions into the traversal context. *)
    let added = ref [] in
    let mem_out =
      let st = ref mem in
      G.iter_block_instrs g bid (fun id ->
          let kind = G.kind g id in
          if Opt.Gvn.is_candidate kind then begin
            let key = Opt.Gvn.key_of_kind kind in
            if not (Hashtbl.mem exprs key) then begin
              Hashtbl.add exprs key id;
              added := key :: !added
            end
          end;
          let st', _ = Opt.Memstate.transfer !st id kind in
          st :=
            (match kind with
            | New (cls, args) -> (
                match class_fields ctx cls with
                | Some fields -> Opt.Memstate.seed_new st' ~fields id args
                | None -> st')
            | _ -> st'));
      !st
    in
    (* Pause at predecessor→merge pairs and run DSTs. *)
    List.iter
      (fun s ->
        if
          s <> bid
          && G.pred_count g s >= 2
          && not (Ir.Loops.is_header loops s)
        then
          candidates :=
            simulate_dst ctx config g ~loops ~mk_const ~freq ~sc
              { env; mem = mem_out; exprs }
              bid s
            @ !candidates)
      (G.succs g bid);
    (* Descend the dominator tree with gated facts/state. *)
    List.iter
      (fun child ->
        let child_env =
          match G.term g bid with
          | Branch { cond; if_true; if_false; _ } ->
              if child = if_true && G.pred_count g if_true = 1 then
                Opt.Condelim.assume ~kind_of env cond true
              else if child = if_false && G.pred_count g if_false = 1 then
                Opt.Condelim.assume ~kind_of env cond false
              else env
          | Jump _ | Return _ | Unreachable -> env
        in
        let child_mem =
          if G.pred_count g child = 1 && G.pred_nth g child 0 = bid then
            mem_out
          else Opt.Memstate.empty
        in
        visit child_env child_mem child)
      (Ir.Dom.children dom bid);
    List.iter (Hashtbl.remove exprs) !added
  in
  visit Opt.Condelim.empty_env Opt.Memstate.empty (G.entry g);
  List.rev !candidates
