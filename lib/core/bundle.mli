(** Replayable crash bundles: the pre-attempt IR, configuration and
    fault plan of one contained per-function failure, serialized to a
    small text file.  {!Driver.replay_bundle} re-executes one;
    [dbdsc --replay-bundle FILE] is the CLI entry. *)

type t = {
  b_fn : string;  (** crashed function *)
  b_site : string;  (** crash site (or ["exception"]) *)
  b_exn : string;  (** rendered exception *)
  b_plan : Faults.plan option;
  b_config : Config.t;
  b_profile : string option;
      (** branch-profile snapshot ({!Interp.Profile.render} format) the
          compilation was driven by, when it was profile-guided *)
  b_ir : string;  (** pre-attempt IR, {!Ir.Printer} format *)
}

exception Malformed of string

(** Serialize to the v1 text format. *)
val render : t -> string

(** Parse the v1 text format.
    @raise Malformed on anything else. *)
val parse : string -> t

(** Atomically publish [text] as [dir/name] (creating [dir] if
    missing); returns the path.  Temp file + rename in the same
    directory, so readers never observe a truncation.  Shared by crash
    bundles and the simulator's schedule bundles. *)
val write_text : dir:string -> name:string -> string -> string

(** Write the bundle into [dir] (created if missing); returns the path.
    Deterministic file name per (function, site); the write is atomic
    ({!write_text}). *)
val write : dir:string -> t -> string

(** Read and parse a bundle file.
    @raise Malformed on anything that is not a v1 bundle. *)
val read : string -> t
