(** Deterministic fault injection for the DBDS pipeline.

    A fault plan [(seed, site, nth-hit)] arms one named site: the [nth]
    time it executes inside a matching function's per-function pipeline,
    {!Injected} is raised.  Hits are counted per function in
    domain-local state, so the crash point is deterministic for any
    [jobs] value — the foundation for reproducible containment and
    replayable crash bundles.  See {!Config.t.fault_plan} for threading
    a plan through the driver and [dbdsc --inject] / [DBDS_FAULTS] for
    the user-facing syntax. *)

type site =
  | Sim_opportunity  (** an applicability check fired in a DST *)
  | Transform_apply  (** the duplication transform, mid-mutation *)
  | Ssa_repair  (** SSA reconstruction after a duplication *)
  | Parallel_worker  (** a worker domain picking up a function *)
  | Analyses_cache  (** an analysis-cache miss (a real recompute) *)
  | Store_write  (** the artifact store, mid-payload (torn temp write) *)
  | Store_read  (** the artifact store reading an entry back *)
  | Store_rename  (** the atomic publish rename (torn publication) *)
  | Store_corrupt
      (** publish a subtly-wrong artifact with a {e valid} checksum — a
          deliberate bug the whole-system simulator's invariant checker
          must catch (never armed by seed derivation) *)
  | Net_drop  (** a transport chunk is lost; the connection resets *)
  | Net_reorder  (** a transport chunk is delivered out of order *)
  | Net_dup  (** a transport chunk is delivered twice *)
  | Net_partition  (** the network partitions for a window of time *)
  | Disk_slow  (** one disk operation stalls for a long time *)
  | Disk_torn  (** a file write is cut short mid-payload *)
  | Disk_crash  (** a crash between data write and publication rename *)
  | Clock_jump  (** the wall clock steps forward (NTP); mono is steady *)

(** The five per-function pipeline sites — the pool {!of_seed} draws
    from (kept stable so historical fuzz seeds reproduce). *)
val pipeline_sites : site list

(** The artifact-store sites of the compilation service. *)
val store_sites : site list

(** The whole-system simulator's environment sites (network, disk,
    clock) — the pool its chaos plans draw from. *)
val sim_sites : site list

val all_sites : site list
val site_to_string : site -> string
val site_of_string : string -> site option

type plan = {
  seed : int;  (** provenance: the fuzz seed this plan was derived from *)
  site : site;
  hit : int;  (** 1-based: the [hit]-th execution of [site] raises *)
  fn : string option;  (** only arm for this function ([None] = all) *)
}

exception Injected of { site : site; hit : int }

(** Render as [site:hit] or [site:hit:fn] — the [--inject] syntax. *)
val to_string : plan -> string

(** Parse [site:hit], [site:hit:fn] or [seed:N]. *)
val of_string : string -> (plan, string) result

(** Derive a pseudorandom (site, hit) plan from a seed, over
    {!pipeline_sites}.  Deterministic in [seed]. *)
val of_seed : int -> plan

(** Derive a pseudorandom (site, hit) plan from a seed, over
    {!store_sites}.  Deterministic in [seed]. *)
val of_seed_store : int -> plan

(** [armed plan ~fn f] runs [f] with the registry armed for function
    [fn] ([None] or a non-matching [plan.fn] arm nothing).  The hit
    counter starts fresh; the previous arming is restored on exit. *)
val armed : plan option -> fn:string -> (unit -> 'a) -> 'a

(** Announce one execution of [site].  No-op unless armed for it;
    raises {!Injected} on the plan's hit. *)
val hit : site -> unit

(** The registry's armed state (a plan plus its live hit counter),
    abstract.  Exposed only so a scheduler can store it per logical
    task. *)
type armed_state

(** Replace where the registry keeps its armed state.  By default it
    lives in domain-local storage; the whole-system simulator runs many
    logical tasks as cooperative fibers inside one domain, so it
    installs fiber-local storage here to keep arming from leaking
    between interleaved tasks. *)
val set_state_provider :
  get:(unit -> armed_state option) -> set:(armed_state option -> unit) -> unit

(** Restore the default (domain-local) state provider. *)
val default_state_provider : unit -> unit
