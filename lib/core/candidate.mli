(** A duplication candidate: the outcome of simulating the duplication of
    one merge block into one of its predecessors (one "Sim Result" box of
    the paper's Figure 2). *)

type opportunity =
  | Constant_fold
  | Strength_reduce
  | Copy_propagation
  | Value_numbering
  | Read_elimination
  | Conditional_elimination
  | Escape_analysis

val opportunity_to_string : opportunity -> string

(** Number of distinct opportunity kinds. *)
val n_opportunities : int

(** Dense tag in [0, n_opportunities): index for flag arrays. *)
val opportunity_index : opportunity -> int

type t = {
  merge : Ir.Types.block_id;
  pred : Ir.Types.block_id;
  path : Ir.Types.block_id list;
      (** merges beyond [merge] along a straight path (paper §8's
          future-work extension); [] for ordinary tail duplication.
          Applying the candidate duplicates [merge] into [pred], then
          each path merge into the previous duplicate. *)
  benefit : float;  (** estimated cycles saved (unscaled) *)
  probability : float;
      (** the predecessor's execution frequency relative to the hottest
          block of the compilation unit (paper §5.4 factor p) *)
  size_delta : int;  (** estimated code-size increase, abstract bytes *)
  opportunities : opportunity list;
}

(** The sort key of the trade-off tier: expected cycles saved per unit of
    execution, i.e. benefit scaled by relative frequency. *)
val scaled_benefit : t -> float

val pp : Format.formatter -> t -> unit
