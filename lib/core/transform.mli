(** The duplication transformation (the optimization tier's primitive,
    paper §4.3): copy a merge block into one of its predecessors.

    Given merge [bm] and predecessor [bp]:
    + a fresh block [bm'] receives a copy of [bm]'s body, with [bm]'s
      phis resolved to their inputs along the [bp] edge;
    + [bm']'s terminator replicates [bm]'s, so [bm]'s successors gain
      [bm'] as a predecessor (their phis receive the copied values);
    + the [bp → bm] edge is redirected to [bm'];
    + SSA is reconstructed: every value defined in [bm] (including its
      phis) now has an alternate definition on the duplicated path, and
      uses in blocks [bm] no longer dominates are rewritten through
      freshly placed phis ({!Ir.Ssa_repair}).

    Loop headers are rejected: duplicating one is loop peeling/rotation,
    not tail duplication (see the regression test for the off-by-one-
    iteration hazard). *)

exception Not_applicable of string

(** Perform the transformation; returns the duplicate block's id.
    @raise Not_applicable when the edge is gone, the merge degenerated,
    or the merge is a loop header. *)
val duplicate :
  Ir.Graph.t -> merge:Ir.Types.block_id -> pred:Ir.Types.block_id ->
  Ir.Types.block_id
