(** The trade-off tier (paper §4.2 and §5.4): rank candidates by expected
    payoff and accept them against the cost model

    {v (b × p × BS) > c  ∧  (cs < MS)  ∧  (cs + c < is × IB) v}

    where [b] is estimated cycles saved, [p] the predecessor's relative
    frequency, [c] the estimated code-size increase, [cs] the current
    unit size, [is] the initial unit size, [BS] the benefit scale (256),
    [IB] the code-size increase budget (1.5) and [MS] the VM's maximum
    unit size.  The dupalot configuration accepts any positive benefit
    and only respects the hard VM limit. *)

type budget = {
  initial_size : int;
  mutable current_size : int;
}

let budget_for g =
  let s = Costmodel.Estimate.graph_size g in
  { initial_size = s; current_size = s }

(** The paper's [shouldDuplicate] predicate. *)
let should_duplicate (config : Config.t) budget (c : Candidate.t) =
  let cost = float_of_int (max c.Candidate.size_delta 0) in
  match config.Config.mode with
  (* Condelim-dup never reaches this predicate (its tier pass does not
     run the simulation), but a hand-written spec could combine a
     condelim-dup mode with a simulation tier pass; duplicate nothing
     extra there. *)
  | Config.Off | Config.Condelim_dup -> false
  | Config.Dupalot ->
      c.Candidate.benefit > 0.0
      && budget.current_size < config.Config.max_unit_size
  | Config.Dbds | Config.Backtracking ->
      Candidate.scaled_benefit c *. config.Config.benefit_scale > cost
      && budget.current_size < config.Config.max_unit_size
      && float_of_int budget.current_size +. cost
         < float_of_int budget.initial_size *. config.Config.size_budget

(** Record an accepted duplication against the budget. *)
let commit budget (c : Candidate.t) =
  budget.current_size <- budget.current_size + max c.Candidate.size_delta 0

(** Sort candidates by expected payoff: scaled benefit descending, then
    smaller cost first (paper: "optimize the most likely and most
    beneficial ones first"). *)
let rank candidates =
  List.stable_sort
    (fun a b ->
      match
        compare (Candidate.scaled_benefit b) (Candidate.scaled_benefit a)
      with
      | 0 -> compare a.Candidate.size_delta b.Candidate.size_delta
      | n -> n)
    candidates
