(** DBDS configuration: the trade-off constants of paper §5.4 and the
    evaluation configurations of §6.1. *)

type mode =
  | Off  (** baseline: classic optimizations only, no duplication *)
  | Dbds  (** full simulate → trade-off → optimize pipeline *)
  | Dupalot
      (** simulation tier finds opportunities; every candidate with any
          benefit is duplicated, ignoring cost (paper's dupalot) *)
  | Backtracking
      (** Algorithm 1: tentatively duplicate, optimize, keep on progress,
          restore otherwise — the expensive strategy DBDS replaces *)
  | Condelim_dup
      (** conditional elimination through duplication (arXiv 1106.3478):
          duplicate every (merge, predecessor) pair where the duplicate's
          branch or a compare would fold, with no trade-off — the greedy
          single-optimization comparator of the workload lab *)

type t = {
  mode : mode;
  benefit_scale : float;  (** BS; the paper derived 256 empirically *)
  size_budget : float;  (** IB; 1.5 = max 150% of the initial code size *)
  max_unit_size : int;  (** MS; the VM's installed-code limit *)
  max_iterations : int;  (** iterative DBDS applications; paper uses 3 *)
  iteration_benefit_threshold : float;
      (** run another iteration only if the previous one's cumulative
          accepted benefit exceeds this (paper §5.2: ~20% of units
          re-iterate) *)
  loop_factor : float;  (** assumed loop trip count for frequencies *)
  path_duplication : bool;
      (** §8 future-work extension: let the simulation continue through a
          straight chain of merges and apply the whole path as one
          candidate (up to [max_path_length] merges) *)
  max_path_length : int;
  containment : bool;
      (** contain per-function crashes: roll the graph back, record a
          structured failure, keep optimizing the remaining functions *)
  verify_between_phases : bool;
      (** paranoid mode: run the IR verifier after every phase /
          duplication and treat violations as contained crashes *)
  fault_plan : Faults.plan option;
      (** deterministic fault injection (testing); [None] in production *)
  bundle_dir : string option;
      (** write a replayable crash bundle here on every containment *)
  passes : Opt.Spec.t option;
      (** explicit pipeline spec ([dbdsc --passes]); [None] = the
          mode-derived default ({!Driver.default_spec}) *)
  licm : bool;
      (** include loop-invariant code motion in the classic fixpoint
          group (off in the calibrated evaluation plan — see {!Licm}) *)
  pea_max_rounds : int;
      (** bound on scalar replacement's internal sweep count per
          invocation; 0 = run to its fixpoint (the historical default,
          and what every pre-knob digest assumed — {!to_line} renders
          the key only when non-zero) *)
  preserve_analyses : bool;
      (** honor pass preservation contracts in the analysis cache; false
          = the historical generation-bump-invalidates-everything mode
          (kept as a comparison baseline for the bench harness) *)
}

(** Mode [Dbds], BS=256, IB=1.5, MS=65536, 3 iterations, paths off,
    mode-derived pipeline, preservation contracts honored. *)
val default : t

val dbds : t
val off : t
val dupalot : t
val backtracking : t
val condelim_dup : t

(** DBDS with the §8 path extension enabled. *)
val dbds_paths : t

val mode_to_string : mode -> string
val mode_of_string : string -> mode option

(** One space-separated [key=value] line covering every knob that shapes
    the produced IR (crash-bundle header, service protocol, and the
    artifact-store digest all share it).  Knobs without a pipeline
    effect — containment, fault plan, bundle dir — are excluded so that
    configs differing only there collide in the compilation cache. *)
val to_line : t -> string

(** Parse a {!to_line} rendering; missing or unparseable fields fall
    back to {!default} (old crash bundles predate some keys). *)
val of_line : string -> t

(** DBDS with paranoid between-phase verification enabled. *)
val paranoid : t
