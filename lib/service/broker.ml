(** In-process compilation broker — see the interface for the
    coalescing / backpressure / deadline semantics. *)

type outcome =
  | Done of { ir : string; work : int; from_cache : bool }
  | Failed of string
  | Timed_out
  | Shed
  | Rejected of string

let outcome_label = function
  | Done { from_cache = true; _ } -> "done(cache)"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Timed_out -> "timed-out"
  | Shed -> "shed"
  | Rejected _ -> "rejected"

type stats = {
  mutable requests : int;
  mutable compiles : int;
  mutable cache_hits : int;
  mutable coalesced : int;
  mutable shed : int;
  mutable timeouts : int;
  mutable failures : int;
}

let fresh_stats () =
  {
    requests = 0;
    compiles = 0;
    cache_hits = 0;
    coalesced = 0;
    shed = 0;
    timeouts = 0;
    failures = 0;
  }

type job = {
  jb_digest : string;
  jb_fn : string;
  jb_ir : string;  (** canonical IR text *)
  jb_config : Dbds.Config.t;
  jb_delay_s : float;  (** artificial compile stretch (test hook) *)
  mutable jb_deadline : float;
      (** absolute; the latest deadline any interested request carries
          ([infinity] = some requester has none) *)
  mutable jb_outcome : outcome option;
}

type t = {
  env : Env.t;
  bstore : Store.t option;
  delay_s : float;
  queue_limit : int;
  mutex : Env.mutex;
  work_ready : Env.cond;  (** workers: the queue may be non-empty *)
  job_done : Env.cond;  (** waiters: some job completed *)
  queue : job Queue.t;
  inflight : (string, job) Hashtbl.t;
  bstats : stats;
  mutable shutting_down : bool;
  mutable workers : Env.thread list;
}

let store t = t.bstore
let stats t = t.bstats

let locked t f =
  t.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> t.mutex.Env.unlock ()) f

(* Complete a job: publish the outcome, retire the digest, account it,
   and wake every waiter.  Call under the lock. *)
let complete t job outcome =
  job.jb_outcome <- Some outcome;
  Hashtbl.remove t.inflight job.jb_digest;
  (match outcome with
  | Done { from_cache = true; _ } -> t.bstats.cache_hits <- t.bstats.cache_hits + 1
  | Done _ -> t.bstats.compiles <- t.bstats.compiles + 1
  | Failed _ ->
      t.bstats.compiles <- t.bstats.compiles + 1;
      t.bstats.failures <- t.bstats.failures + 1
  | Timed_out -> t.bstats.timeouts <- t.bstats.timeouts + 1
  | Shed | Rejected _ -> ());
  t.job_done.Env.broadcast ()

(* ---- the compile path (runs without the broker lock) ---------------- *)

let armed config ~fn f = Dbds.Faults.armed config.Dbds.Config.fault_plan ~fn f

(* The federated lookup chain: the store resolves parsed memo → local
   disk → peer fetch; only a miss through all three falls to the cold
   compile below. *)
let store_lookup t job =
  match t.bstore with
  | None -> None
  | Some s -> (
      match
        armed job.jb_config ~fn:job.jb_fn (fun () ->
            Store.fetch s ~digest:job.jb_digest)
      with
      | None -> None
      | Some e -> (
          match Ir.Parse.parse_graph e.ar_ir with
          | _ -> Some e
          | exception _ ->
              Store.discard s ~digest:job.jb_digest;
              None)
      | exception _ -> None)

let store_publish t job ~ir ~work =
  match t.bstore with
  | None -> ()
  | Some s -> (
      try
        armed job.jb_config ~fn:job.jb_fn (fun () ->
            Store.put s ~digest:job.jb_digest ~fn:job.jb_fn ~ir ~work)
      with _ -> ())

let compile t job =
  match store_lookup t job with
  | Some e -> Done { ir = e.ar_ir; work = e.ar_work; from_cache = true }
  | None -> (
      if job.jb_delay_s > 0. then t.env.Env.sleep job.jb_delay_s;
      match Ir.Parse.parse_graph job.jb_ir with
      | exception Ir.Parse.Parse_error msg -> Failed ("parse: " ^ msg)
      | g -> (
          let program = Ir.Program.of_graph g in
          let config =
            {
              job.jb_config with
              Dbds.Config.containment = true;
              bundle_dir = None;
            }
          in
          match
            Dbds.Driver.optimize_program_report ~config ~inline:false ~jobs:1
              program
          with
          | exception exn -> Failed (Printexc.to_string exn)
          | report -> (
              match report.Dbds.Driver.rep_failures with
              | f :: _ ->
                  Failed
                    (Printf.sprintf "%s: %s" f.Dbds.Driver.fail_site
                       f.Dbds.Driver.fail_exn)
              | [] ->
                  let body =
                    Option.value
                      (Ir.Program.find_function program job.jb_fn)
                      ~default:g
                  in
                  let ir = Digest.canonical_of_graph body in
                  let work = report.Dbds.Driver.rep_ctx.Opt.Phase.work in
                  store_publish t job ~ir ~work;
                  Done { ir; work; from_cache = false })))

(* ---- workers --------------------------------------------------------- *)

let rec worker t =
  t.mutex.Env.lock ();
  while Queue.is_empty t.queue && not t.shutting_down do
    t.work_ready.Env.wait ()
  done;
  if Queue.is_empty t.queue then (
    (* shutting down with nothing queued *)
    t.mutex.Env.unlock ())
  else begin
    let job = Queue.pop t.queue in
    (* Deadlines live on the monotonic clock: a wall-clock (NTP) step
       must neither spuriously expire nor immortalize queued jobs. *)
    if t.env.Env.mono () > job.jb_deadline then begin
      (* Every interested deadline has passed: drop without compiling. *)
      complete t job Timed_out;
      t.mutex.Env.unlock ();
      worker t
    end
    else begin
      t.mutex.Env.unlock ();
      let outcome = try compile t job with exn -> Failed (Printexc.to_string exn) in
      t.mutex.Env.lock ();
      complete t job outcome;
      t.mutex.Env.unlock ();
      worker t
    end
  end

let create ?(env = Env.real) ?(workers = 2) ?(queue_limit = 64) ?(delay_s = 0.)
    ~store () =
  let mutex = env.Env.mutex () in
  let t =
    {
      env;
      bstore = store;
      delay_s;
      queue_limit = max 1 queue_limit;
      mutex;
      work_ready = mutex.Env.new_cond ();
      job_done = mutex.Env.new_cond ();
      queue = Queue.create ();
      inflight = Hashtbl.create 64;
      bstats = fresh_stats ();
      shutting_down = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (max 1 workers) (fun i ->
        env.Env.spawn (Printf.sprintf "broker-worker-%d" i) (fun () -> worker t));
  t

(* ---- submission ------------------------------------------------------ *)

let submit ?deadline_s ?delay_s ~config ~fn ~ir t =
  match Digest.request_of_text ~config ~fn ir with
  | exception Ir.Parse.Parse_error msg ->
      locked t (fun () -> t.bstats.requests <- t.bstats.requests + 1);
      Rejected ("parse: " ^ msg)
  | rq ->
      let digest = Digest.of_request rq in
      let deadline =
        match deadline_s with
        | None -> infinity
        | Some d -> t.env.Env.mono () +. d
      in
      locked t (fun () ->
          t.bstats.requests <- t.bstats.requests + 1;
          if t.shutting_down then Rejected "broker is shutting down"
          else if deadline <= t.env.Env.mono () then begin
            t.bstats.timeouts <- t.bstats.timeouts + 1;
            Timed_out
          end
          else begin
            let rec await job =
              match job.jb_outcome with
              | Some o -> o
              | None ->
                  t.job_done.Env.wait ();
                  await job
            in
            match Hashtbl.find_opt t.inflight digest with
            | Some job ->
                t.bstats.coalesced <- t.bstats.coalesced + 1;
                job.jb_deadline <- Float.max job.jb_deadline deadline;
                await job
            | None ->
                if Queue.length t.queue >= t.queue_limit then begin
                  t.bstats.shed <- t.bstats.shed + 1;
                  Shed
                end
                else begin
                  let job =
                    {
                      jb_digest = digest;
                      jb_fn = rq.Digest.rq_fn;
                      (* The submitted text, not a canonical rendering:
                         the compile parses it and canonicalizes its
                         output independently, so coalesced requests
                         that differ only in id numbering still share
                         one byte-identical result. *)
                      jb_ir = ir;
                      jb_config = config;
                      jb_delay_s = Option.value delay_s ~default:t.delay_s;
                      jb_deadline = deadline;
                      jb_outcome = None;
                    }
                  in
                  Hashtbl.replace t.inflight digest job;
                  Queue.push job t.queue;
                  t.work_ready.Env.broadcast ();
                  await job
                end
          end)

let shutdown t =
  let workers =
    locked t (fun () ->
        if t.shutting_down then []
        else begin
          t.shutting_down <- true;
          (* Fail everything still queued so its waiters return; jobs
             already compiling finish normally. *)
          Queue.iter
            (fun job -> complete t job (Rejected "broker is shutting down"))
            t.queue;
          Queue.clear t.queue;
          t.work_ready.Env.broadcast ();
          let ws = t.workers in
          t.workers <- [];
          ws
        end)
  in
  List.iter (fun (w : Env.thread) -> w.Env.join ()) workers

let pp_stats ppf s =
  Format.fprintf ppf
    "broker: requests=%d compiles=%d cache_hits=%d coalesced=%d shed=%d \
     timeouts=%d failures=%d"
    s.requests s.compiles s.cache_hits s.coalesced s.shed s.timeouts s.failures
