(** The in-process compilation broker: worker domains, in-flight
    coalescing, bounded admission and deadlines.

    Callers {!submit} one function's IR under a configuration and block
    until an outcome is available.  Three service disciplines:

    - {e coalescing}: requests are keyed by content digest; while a
      digest is in flight (queued or compiling), further requests for it
      do not enqueue new work — they wait on the same job and share its
      outcome.  N concurrent identical requests cost one compile.
    - {e backpressure}: the admission queue is bounded; a request that
      finds it full is {e shed} immediately ([Shed]) rather than queued
      — the caller can retry, the broker never builds unbounded backlog.
      Coalescing waiters don't occupy queue slots.
    - {e deadlines}: a request may carry a relative deadline.  An
      already-expired deadline is rejected at admission; a job whose
      interested deadlines have all passed by the time a worker picks it
      up is dropped without compiling ([Timed_out]).  There is no
      mid-compile cancellation (stdlib domains cannot be interrupted) —
      a deadline that expires while its job is already compiling is
      still served the result; expiry is only acted on at admission and
      dequeue.

    Compiles run through {!Dbds.Driver.optimize_program_report} with
    containment forced on, so a crashing pipeline costs one request
    ([Failed]), never the broker.  With a {!Store} attached, workers
    check it before compiling and publish after, so outcomes survive the
    process. *)

type outcome =
  | Done of { ir : string; work : int; from_cache : bool }
      (** canonical optimized IR; [from_cache] = served from the store *)
  | Failed of string  (** contained pipeline failure *)
  | Timed_out  (** deadline expired before a worker ran the job *)
  | Shed  (** admission queue full *)
  | Rejected of string  (** malformed request or broker shut down *)

val outcome_label : outcome -> string

type stats = {
  mutable requests : int;  (** submissions, including rejected ones *)
  mutable compiles : int;  (** pipeline executions that completed *)
  mutable cache_hits : int;  (** jobs served from the store *)
  mutable coalesced : int;  (** requests that joined an in-flight job *)
  mutable shed : int;  (** requests refused by backpressure *)
  mutable timeouts : int;  (** expired at admission or dequeue *)
  mutable failures : int;  (** contained pipeline failures *)
}

type t

(** Start a broker with [workers] compile threads (default 2) and an
    admission queue bounded at [queue_limit] jobs (default 64).
    [delay_s] artificially stretches every real (non-cache) compile —
    a test hook that makes request overlap, and therefore coalescing,
    deterministic for the protocol smoke tests.  [env] supplies clock,
    thread and lock capabilities (default {!Env.real}, which spawns
    real domains); under simulation the workers become cooperative
    fibers.  Deadlines are measured on [env]'s {e monotonic} clock, so
    a wall-clock (NTP) step can neither expire nor immortalize queued
    jobs. *)
val create :
  ?env:Env.t ->
  ?workers:int ->
  ?queue_limit:int ->
  ?delay_s:float ->
  store:Store.t option ->
  unit ->
  t

val store : t -> Store.t option
val stats : t -> stats

(** Submit one function and block for its outcome.  [ir] is printed IR
    text (any id numbering); [deadline_s] is relative seconds from now
    (default: none); [delay_s] overrides the broker's compile stretch
    for this request's job (test hook — a coalesced request inherits the
    job's existing delay).  Safe to call from many domains
    concurrently. *)
val submit :
  ?deadline_s:float ->
  ?delay_s:float ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  t ->
  outcome

(** Stop accepting work, fail queued jobs ([Rejected]), finish the jobs
    already compiling, and join the workers.  Idempotent. *)
val shutdown : t -> unit

val pp_stats : Format.formatter -> stats -> unit
