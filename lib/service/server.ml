(** Compile-server daemon — see the interface for connection and
    shutdown semantics. *)

type state = {
  broker : Broker.t;
  sock : string;
  listen_fd : Unix.file_descr;
  log : string -> unit;
  mutex : Mutex.t;
  mutable stopping : bool;
  mutable conns : unit Domain.t list;
}

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let stopping st = locked st (fun () -> st.stopping)

(* Stop the accept loop: raise the flag, then nudge [accept] awake with
   a throwaway connection (portable — closing a listening socket from
   another domain does not reliably interrupt an accept). *)
let trigger_stop st =
  locked st (fun () -> st.stopping <- true);
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
      try
        Unix.connect fd (Unix.ADDR_UNIX st.sock);
        Unix.close fd
      with Unix.Unix_error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))

let ok_reply = { Protocol.verb = "reply"; fields = [ ("status", "ok") ] }

let rejected msg =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "rejected"); ("message", msg) ];
  }

let stats_reply st =
  let b = Broker.stats st.broker in
  let counts = Buffer.create 256 in
  Printf.bprintf counts
    "requests=%d compiles=%d cache_hits=%d coalesced=%d shed=%d timeouts=%d \
     failures=%d"
    b.Broker.requests b.Broker.compiles b.Broker.cache_hits b.Broker.coalesced
    b.Broker.shed b.Broker.timeouts b.Broker.failures;
  let store_line =
    match Broker.store st.broker with
    | None -> "none"
    | Some s ->
        let ss = Store.stats s in
        Printf.bprintf counts
          " store_hits=%d store_misses=%d store_writes=%d store_evictions=%d \
           store_corrupt=%d"
          ss.Store.hits ss.Store.misses ss.Store.writes ss.Store.evictions
          ss.Store.corrupt;
        Format.asprintf "%a" Store.pp_stats ss
  in
  {
    Protocol.verb = "reply";
    fields =
      [
        ("status", "ok");
        ("broker", Format.asprintf "%a" Broker.pp_stats b);
        ("store", store_line);
        ("counts", Buffer.contents counts);
      ];
  }

let handle_compile st m =
  match (Protocol.field m "fn", Protocol.field m "ir") with
  | Some fn, Some ir ->
      let config = Dbds.Config.of_line (Protocol.field_or m "config" "") in
      let ms_field name =
        Option.bind (Protocol.field m name) int_of_string_opt
        |> Option.map (fun ms -> float_of_int ms /. 1000.)
      in
      let outcome =
        Broker.submit ?deadline_s:(ms_field "deadline-ms")
          ?delay_s:(ms_field "delay-ms") ~config ~fn ~ir st.broker
      in
      st.log (Printf.sprintf "compile %s -> %s" fn (Broker.outcome_label outcome));
      Protocol.reply_of_outcome outcome
  | _ -> rejected "compile needs fn and ir fields"

(* One connection: synchronous request/reply until EOF, a protocol
   error, or a shutdown request. *)
let handle st fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send m = try Protocol.write oc m with Sys_error _ -> () in
  let rec loop () =
    match Protocol.read ic with
    | Error "eof" -> ()
    | Error msg ->
        (* The stream may be desynchronized: answer and hang up. *)
        send (rejected ("protocol error: " ^ msg))
    | Ok m -> (
        match m.Protocol.verb with
        | "ping" ->
            send ok_reply;
            loop ()
        | "stats" ->
            send (stats_reply st);
            loop ()
        | "shutdown" ->
            st.log "shutdown requested";
            send ok_reply;
            trigger_stop st
        | "compile" ->
            send (handle_compile st m);
            loop ()
        | verb ->
            send (rejected ("unknown verb: " ^ verb));
            loop ())
  in
  (try loop () with _ -> ());
  (try flush oc with Sys_error _ -> ());
  close_out_noerr oc (* closes [fd]; [ic] shares it *)

let serve ?(log = fun _ -> ()) ~sock ~broker () =
  if Sys.file_exists sock then
    invalid_arg
      (Printf.sprintf
         "Server.serve: %s already exists (stale socket? remove it first)" sock);
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX sock);
  Unix.listen listen_fd 64;
  let st =
    {
      broker;
      sock;
      listen_fd;
      log;
      mutex = Mutex.create ();
      stopping = false;
      conns = [];
    }
  in
  log (Printf.sprintf "listening on %s" sock);
  let rec accept_loop () =
    if not (stopping st) then
      match Unix.accept st.listen_fd with
      | fd, _ ->
          if stopping st then (try Unix.close fd with Unix.Unix_error _ -> ())
          else begin
            let d = Domain.spawn (fun () -> handle st fd) in
            locked st (fun () -> st.conns <- d :: st.conns);
            accept_loop ()
          end
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          accept_loop ()
      | exception Unix.Unix_error _ -> ()
  in
  accept_loop ();
  (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
  let conns = locked st (fun () -> st.conns) in
  List.iter Domain.join conns;
  Broker.shutdown broker;
  (try Sys.remove sock with Sys_error _ -> ());
  log "stopped"
