(** Compile-server daemon — see the interface for connection and
    shutdown semantics. *)

type fleet = {
  fl_id : string;
  fl_addr : string;
  fl_coord : string;
  fl_replicas : int;
  fl_beat_s : float;
}

type control = { stop : unit -> unit }

type state = {
  env : Env.t;
  broker : Broker.t;
  sock : string;
  listener : Env.listener;
  log : string -> unit;
  mutex : Env.mutex;
  fleet : fleet option;
  mutable fview : Member.view;  (** current membership view (fleet mode) *)
  mutable stopping : bool;
  mutable killed : bool;  (** stopped via {!control}, not [shutdown] *)
  mutable conns : Env.thread list;
}

let locked st f =
  st.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> st.mutex.Env.unlock ()) f

let stopping st = locked st (fun () -> st.stopping)

(* Stop the accept loop: raise the flag, then nudge [accept] awake with
   a throwaway connection (portable — closing a listening socket from
   another thread does not reliably interrupt an accept). *)
let trigger_stop st =
  locked st (fun () -> st.stopping <- true);
  match st.env.Env.connect st.sock with
  | conn -> conn.Env.close_conn ()
  | exception Env.Net _ -> ()

let ok_reply = { Protocol.verb = "reply"; fields = [ ("status", "ok") ] }

let rejected msg =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "rejected"); ("message", msg) ];
  }

let stats_reply st =
  let b = Broker.stats st.broker in
  let counts = Buffer.create 256 in
  Printf.bprintf counts
    "requests=%d compiles=%d cache_hits=%d coalesced=%d shed=%d timeouts=%d \
     failures=%d"
    b.Broker.requests b.Broker.compiles b.Broker.cache_hits b.Broker.coalesced
    b.Broker.shed b.Broker.timeouts b.Broker.failures;
  let store_line =
    match Broker.store st.broker with
    | None -> "none"
    | Some s ->
        let ss = Store.stats s in
        Printf.bprintf counts
          " store_hits=%d store_misses=%d store_writes=%d store_evictions=%d \
           store_corrupt=%d store_peer_hits=%d store_peer_misses=%d \
           store_replicated=%d"
          ss.Store.hits ss.Store.misses ss.Store.writes ss.Store.evictions
          ss.Store.corrupt ss.Store.peer_hits ss.Store.peer_misses
          ss.Store.replicated;
        Format.asprintf "%a" Store.pp_stats ss
  in
  {
    Protocol.verb = "reply";
    fields =
      [
        ("status", "ok");
        ("broker", Format.asprintf "%a" Broker.pp_stats b);
        ("store", store_line);
        ("counts", Buffer.contents counts);
      ];
  }

let handle_compile st m =
  match (Protocol.field m "fn", Protocol.field m "ir") with
  | Some fn, Some ir ->
      let config = Dbds.Config.of_line (Protocol.field_or m "config" "") in
      (* Re-attach the fault plan the wire config cannot carry (see
         [Client.compile]): worker-side injection — crash sites, torn
         or corrupted publications — needs it in the job's config. *)
      let config =
        match
          Option.bind (Protocol.field m "inject") (fun s ->
              Result.to_option (Dbds.Faults.of_string s))
        with
        | Some p -> { config with Dbds.Config.fault_plan = Some p }
        | None -> config
      in
      let ms_field name =
        Option.bind (Protocol.field m name) int_of_string_opt
        |> Option.map (fun ms -> float_of_int ms /. 1000.)
      in
      let outcome =
        Broker.submit ?deadline_s:(ms_field "deadline-ms")
          ?delay_s:(ms_field "delay-ms") ~config ~fn ~ir st.broker
      in
      st.log (Printf.sprintf "compile %s -> %s" fn (Broker.outcome_label outcome));
      Protocol.reply_of_outcome outcome
  | _ -> rejected "compile needs fn and ir fields"

(* ---- fleet verbs ------------------------------------------------------ *)

let with_store st f =
  match Broker.store st.broker with
  | Some s -> f s
  | None -> rejected "this node has no artifact store"

(* A peer asks for an artifact: local disk only — a federated lookup
   here could bounce a miss around the ring forever. *)
let handle_fetch st m =
  match Protocol.field m "digest" with
  | None -> rejected "fetch needs a digest field"
  | Some digest ->
      with_store st (fun s ->
          match Store.get s ~digest with
          | Some e ->
              {
                Protocol.verb = "reply";
                fields =
                  [
                    ("status", "hit");
                    ("fn", e.Store.ar_fn);
                    ("ir", e.Store.ar_ir);
                    ("work", string_of_int e.Store.ar_work);
                  ];
              }
          | None -> { Protocol.verb = "reply"; fields = [ ("status", "miss") ] })

(* A peer replicates or re-homes an artifact onto this node.  Adopt it
   without re-replication (the pusher owns the placement decision);
   publication failures are contained in the store as always. *)
let handle_push st m =
  match
    ( Protocol.field m "digest",
      Protocol.field m "fn",
      Protocol.field m "ir",
      int_of_string_opt (Protocol.field_or m "work" "") )
  with
  | Some digest, Some fn, Some ir, Some work ->
      with_store st (fun s ->
          Store.put ~replicate:false s ~digest ~fn ~ir ~work;
          ok_reply)
  | _ -> rejected "push needs digest, fn, ir and work fields"

let current_view st = locked st (fun () -> st.fview)

let adopt_view st (v : Member.view) =
  locked st (fun () ->
      if v.Member.v_epoch > st.fview.Member.v_epoch then st.fview <- v)

(* The coordinator pushed a new view: adopt it, then re-home every
   artifact whose owner set no longer includes this node. *)
let handle_rebalance st m =
  match (st.fleet, Protocol.view_of_message m) with
  | None, _ -> rejected "this node is not in a fleet"
  | Some _, None -> rejected "rebalance needs epoch and nodes fields"
  | Some fl, Some v ->
      adopt_view st v;
      let moved =
        match Broker.store st.broker with
        | None -> 0
        | Some s ->
            Fleet.rebalance ~env:st.env ~replicas:fl.fl_replicas
              ~self:fl.fl_id ~view:(current_view st) s
      in
      st.log
        (Printf.sprintf "rebalance to epoch %d: %d artifact(s) re-homed"
           v.Member.v_epoch moved);
      {
        Protocol.verb = "reply";
        fields = [ ("status", "ok"); ("moved", string_of_int moved) ];
      }

(* Membership heartbeat: join the coordinator, then beat every
   [fl_beat_s].  A beat answered "unknown" (we were swept out as
   crashed — e.g. healed from a partition) falls back to a re-join; an
   unreachable coordinator is retried forever.  A beat carrying a newer
   epoch than our view pulls the fresh view (the rebalance push may
   have been lost to the same partition that made us stale). *)
let heartbeat st fl =
  let env = st.env in
  let joined_view c =
    match Client.roundtrip c { Protocol.verb = "view"; fields = [] } with
    | Ok m when Protocol.field m "status" = Some "ok" ->
        Option.iter (adopt_view st) (Protocol.view_of_message m)
    | Ok _ | Error _ -> ()
  in
  let join c =
    match
      Client.roundtrip c
        {
          Protocol.verb = "join";
          fields = [ ("id", fl.fl_id); ("addr", fl.fl_addr) ];
        }
    with
    | Ok m when Protocol.field m "status" = Some "ok" ->
        Option.iter (adopt_view st) (Protocol.view_of_message m);
        true
    | Ok _ | Error _ -> false
  in
  let beat c =
    match
      Client.roundtrip c
        { Protocol.verb = "beat"; fields = [ ("id", fl.fl_id) ] }
    with
    | Ok m when Protocol.field m "status" = Some "ok" ->
        (match int_of_string_opt (Protocol.field_or m "epoch" "") with
        | Some e when e <> (current_view st).Member.v_epoch -> joined_view c
        | _ -> ());
        true
    | Ok m when Protocol.field m "status" = Some "unknown" -> false
    | Ok _ | Error _ -> true (* a hiccup is not an eviction *)
  in
  let rec loop joined =
    if not (stopping st) then begin
      let joined =
        match
          Client.connect ~env ~deadline_s:(fl.fl_beat_s /. 2.)
            ~io_deadline_s:(4. *. fl.fl_beat_s) ~sock:fl.fl_coord ()
        with
        | exception _ -> joined
        | c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> if joined then beat c else join c)
      in
      env.Env.sleep fl.fl_beat_s;
      loop joined
    end
  in
  loop false

(* Best-effort graceful departure — only on [shutdown], never on a
   {!control} kill (a killed node must look crashed, so the
   coordinator's sweep is what evicts it). *)
let send_leave st fl =
  match
    Client.connect ~env:st.env ~deadline_s:0.25 ~io_deadline_s:5.0
      ~sock:fl.fl_coord ()
  with
  | exception _ -> ()
  | c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore
            (Client.roundtrip c
               { Protocol.verb = "leave"; fields = [ ("id", fl.fl_id) ] }))

(* One connection: synchronous request/reply until EOF, a protocol
   error, or a shutdown request. *)
let handle st conn =
  let send m = try Protocol.write_conn conn m with Env.Net _ -> () in
  let rec loop () =
    match Protocol.read_conn conn with
    | Error "eof" -> ()
    | Error msg ->
        (* The stream may be desynchronized: answer and hang up. *)
        send (rejected ("protocol error: " ^ msg))
    | Ok m -> (
        match m.Protocol.verb with
        | "ping" ->
            send ok_reply;
            loop ()
        | "stats" ->
            send (stats_reply st);
            loop ()
        | "shutdown" ->
            st.log "shutdown requested";
            send ok_reply;
            trigger_stop st
        | "compile" ->
            send (handle_compile st m);
            loop ()
        | "fetch" ->
            send (handle_fetch st m);
            loop ()
        | "push" ->
            send (handle_push st m);
            loop ()
        | "rebalance" ->
            send (handle_rebalance st m);
            loop ()
        | verb ->
            send (rejected ("unknown verb: " ^ verb));
            loop ())
  in
  (try loop () with _ -> ());
  conn.Env.close_conn ()

(* A socket path that already exists is either a live server or the
   debris of a crashed one.  Probe it: a connection means live — refuse
   to start; refused / denied / vanished means stale — remove the
   debris and proceed.  [Denied] matters: a root-owned stale socket
   answers EACCES, not ECONNREFUSED, and must not abort startup. *)
let claim_socket env sock =
  if env.Env.file_exists sock then begin
    (match env.Env.connect sock with
    | conn ->
        conn.Env.close_conn ();
        invalid_arg
          (Printf.sprintf "Server.serve: %s already has a live server" sock)
    | exception Env.Net ((Env.Refused | Env.Denied | Env.Not_found), _) -> ());
    try env.Env.remove sock with Sys_error _ -> ()
  end

let serve ?(env = Env.real) ?(log = fun _ -> ()) ?fleet ?on_control ~sock
    ~broker () =
  claim_socket env sock;
  let listener = env.Env.listen sock in
  let st =
    {
      env;
      broker;
      sock;
      listener;
      log;
      mutex = env.Env.mutex ();
      fleet;
      fview = { Member.v_epoch = 0; v_nodes = [] };
      stopping = false;
      killed = false;
      conns = [];
    }
  in
  (match on_control with
  | None -> ()
  | Some f ->
      f
        {
          stop =
            (fun () ->
              locked st (fun () ->
                  st.stopping <- true;
                  st.killed <- true);
              (* Close the listener under the simulator (which wakes the
                 accept); the real environment relies on the shutdown
                 verb's self-connect nudge instead. *)
              try st.listener.Env.close_listener () with _ -> ());
        });
  (* Fleet mode: wire the store's federated lookup chain to the live
     view, and start the join/heartbeat loop.  The accept loop is
     already listening, so a rebalance push racing the join reply finds
     a server to talk to. *)
  let hb =
    match fleet with
    | None -> None
    | Some fl ->
        (match Broker.store broker with
        | Some s ->
            Fleet.federate ~env ~replicas:fl.fl_replicas ~self:fl.fl_id
              ~view:(fun () -> current_view st)
              s
        | None -> ());
        Some (env.Env.spawn "fleet-heartbeat" (fun () -> heartbeat st fl))
  in
  log (Printf.sprintf "listening on %s" sock);
  let conn_id = ref 0 in
  let rec accept_loop () =
    if not (stopping st) then
      match st.listener.Env.accept () with
      | conn ->
          if stopping st then conn.Env.close_conn ()
          else begin
            incr conn_id;
            let t =
              st.env.Env.spawn
                (Printf.sprintf "server-conn-%d" !conn_id)
                (fun () -> handle st conn)
            in
            locked st (fun () -> st.conns <- t :: st.conns);
            accept_loop ()
          end
      | exception Env.Net _ -> ()
  in
  accept_loop ();
  (try st.listener.Env.close_listener () with _ -> ());
  let conns = locked st (fun () -> st.conns) in
  List.iter (fun (t : Env.thread) -> t.Env.join ()) conns;
  (match hb with Some t -> t.Env.join () | None -> ());
  (match fleet with
  | Some fl when not (locked st (fun () -> st.killed)) -> send_leave st fl
  | _ -> ());
  Broker.shutdown broker;
  (try env.Env.remove sock with Sys_error _ -> ());
  log "stopped"
