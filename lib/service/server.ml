(** Compile-server daemon — see the interface for connection and
    shutdown semantics. *)

type state = {
  env : Env.t;
  broker : Broker.t;
  sock : string;
  listener : Env.listener;
  log : string -> unit;
  mutex : Env.mutex;
  mutable stopping : bool;
  mutable conns : Env.thread list;
}

let locked st f =
  st.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> st.mutex.Env.unlock ()) f

let stopping st = locked st (fun () -> st.stopping)

(* Stop the accept loop: raise the flag, then nudge [accept] awake with
   a throwaway connection (portable — closing a listening socket from
   another thread does not reliably interrupt an accept). *)
let trigger_stop st =
  locked st (fun () -> st.stopping <- true);
  match st.env.Env.connect st.sock with
  | conn -> conn.Env.close_conn ()
  | exception Env.Net _ -> ()

let ok_reply = { Protocol.verb = "reply"; fields = [ ("status", "ok") ] }

let rejected msg =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "rejected"); ("message", msg) ];
  }

let stats_reply st =
  let b = Broker.stats st.broker in
  let counts = Buffer.create 256 in
  Printf.bprintf counts
    "requests=%d compiles=%d cache_hits=%d coalesced=%d shed=%d timeouts=%d \
     failures=%d"
    b.Broker.requests b.Broker.compiles b.Broker.cache_hits b.Broker.coalesced
    b.Broker.shed b.Broker.timeouts b.Broker.failures;
  let store_line =
    match Broker.store st.broker with
    | None -> "none"
    | Some s ->
        let ss = Store.stats s in
        Printf.bprintf counts
          " store_hits=%d store_misses=%d store_writes=%d store_evictions=%d \
           store_corrupt=%d"
          ss.Store.hits ss.Store.misses ss.Store.writes ss.Store.evictions
          ss.Store.corrupt;
        Format.asprintf "%a" Store.pp_stats ss
  in
  {
    Protocol.verb = "reply";
    fields =
      [
        ("status", "ok");
        ("broker", Format.asprintf "%a" Broker.pp_stats b);
        ("store", store_line);
        ("counts", Buffer.contents counts);
      ];
  }

let handle_compile st m =
  match (Protocol.field m "fn", Protocol.field m "ir") with
  | Some fn, Some ir ->
      let config = Dbds.Config.of_line (Protocol.field_or m "config" "") in
      (* Re-attach the fault plan the wire config cannot carry (see
         [Client.compile]): worker-side injection — crash sites, torn
         or corrupted publications — needs it in the job's config. *)
      let config =
        match
          Option.bind (Protocol.field m "inject") (fun s ->
              Result.to_option (Dbds.Faults.of_string s))
        with
        | Some p -> { config with Dbds.Config.fault_plan = Some p }
        | None -> config
      in
      let ms_field name =
        Option.bind (Protocol.field m name) int_of_string_opt
        |> Option.map (fun ms -> float_of_int ms /. 1000.)
      in
      let outcome =
        Broker.submit ?deadline_s:(ms_field "deadline-ms")
          ?delay_s:(ms_field "delay-ms") ~config ~fn ~ir st.broker
      in
      st.log (Printf.sprintf "compile %s -> %s" fn (Broker.outcome_label outcome));
      Protocol.reply_of_outcome outcome
  | _ -> rejected "compile needs fn and ir fields"

(* One connection: synchronous request/reply until EOF, a protocol
   error, or a shutdown request. *)
let handle st conn =
  let send m = try Protocol.write_conn conn m with Env.Net _ -> () in
  let rec loop () =
    match Protocol.read_conn conn with
    | Error "eof" -> ()
    | Error msg ->
        (* The stream may be desynchronized: answer and hang up. *)
        send (rejected ("protocol error: " ^ msg))
    | Ok m -> (
        match m.Protocol.verb with
        | "ping" ->
            send ok_reply;
            loop ()
        | "stats" ->
            send (stats_reply st);
            loop ()
        | "shutdown" ->
            st.log "shutdown requested";
            send ok_reply;
            trigger_stop st
        | "compile" ->
            send (handle_compile st m);
            loop ()
        | verb ->
            send (rejected ("unknown verb: " ^ verb));
            loop ())
  in
  (try loop () with _ -> ());
  conn.Env.close_conn ()

(* A socket path that already exists is either a live server or the
   debris of a crashed one.  Probe it: a connection means live — refuse
   to start; refused / denied / vanished means stale — remove the
   debris and proceed.  [Denied] matters: a root-owned stale socket
   answers EACCES, not ECONNREFUSED, and must not abort startup. *)
let claim_socket env sock =
  if env.Env.file_exists sock then begin
    (match env.Env.connect sock with
    | conn ->
        conn.Env.close_conn ();
        invalid_arg
          (Printf.sprintf "Server.serve: %s already has a live server" sock)
    | exception Env.Net ((Env.Refused | Env.Denied | Env.Not_found), _) -> ());
    try env.Env.remove sock with Sys_error _ -> ()
  end

let serve ?(env = Env.real) ?(log = fun _ -> ()) ~sock ~broker () =
  claim_socket env sock;
  let listener = env.Env.listen sock in
  let st =
    {
      env;
      broker;
      sock;
      listener;
      log;
      mutex = env.Env.mutex ();
      stopping = false;
      conns = [];
    }
  in
  log (Printf.sprintf "listening on %s" sock);
  let conn_id = ref 0 in
  let rec accept_loop () =
    if not (stopping st) then
      match st.listener.Env.accept () with
      | conn ->
          if stopping st then conn.Env.close_conn ()
          else begin
            incr conn_id;
            let t =
              st.env.Env.spawn
                (Printf.sprintf "server-conn-%d" !conn_id)
                (fun () -> handle st conn)
            in
            locked st (fun () -> st.conns <- t :: st.conns);
            accept_loop ()
          end
      | exception Env.Net _ -> ()
  in
  accept_loop ();
  st.listener.Env.close_listener ();
  let conns = locked st (fun () -> st.conns) in
  List.iter (fun (t : Env.thread) -> t.Env.join ()) conns;
  Broker.shutdown broker;
  (try env.Env.remove sock with Sys_error _ -> ());
  log "stopped"
