(** Consistent-hash ring over node ids — see the interface for the
    remapping guarantees. *)

type t = {
  vnodes : int;
  nodes : string list;  (** sorted, distinct *)
  points : (string * string) array;
      (** (point hash, node id), sorted by hash.  Hashes are rendered
          as fixed-width lowercase hex, so string order is unsigned
          numeric order. *)
}

(* FNV-1a has no output avalanche: similar keys (sequential digests,
   "node-K#I" points) share high bits and would land on the ring in
   runs, wrecking the balance.  A murmur3-style finalizer gives every
   input bit a ~50% chance at every output bit. *)
let fmix64 h =
  let open Int64 in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xff51afd7ed558ccdL in
  let h = logxor h (shift_right_logical h 33) in
  let h = mul h 0xc4ceb9fe1a85ec53L in
  logxor h (shift_right_logical h 33)

let hash s = Printf.sprintf "%016Lx" (fmix64 (Digest.fnv64_int64 s))
let point id i = hash (id ^ "#" ^ string_of_int i)

let create ?(vnodes = 64) ids =
  let vnodes = max 1 vnodes in
  let nodes = List.sort_uniq compare ids in
  let points =
    Array.of_list
      (List.concat_map
         (fun id -> List.init vnodes (fun i -> (point id i, id)))
         nodes)
  in
  Array.sort compare points;
  { vnodes; nodes; points }

let nodes t = t.nodes
let is_empty t = t.nodes = []
let vnodes t = t.vnodes
let add t id = create ~vnodes:t.vnodes (id :: t.nodes)
let remove t id = create ~vnodes:t.vnodes (List.filter (( <> ) id) t.nodes)

(* Index of the first point at or clockwise-after [key]'s hash. *)
let index t key =
  let h = hash key in
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key =
  if t.points = [||] then None else Some (snd t.points.(index t key))

let successors t key ~n =
  if t.points = [||] || n <= 0 then []
  else begin
    let len = Array.length t.points in
    let start = index t key in
    let acc = ref [] in
    let count = ref 0 in
    let i = ref 0 in
    while !count < n && !i < len do
      let id = snd t.points.((start + !i) mod len) in
      if not (List.mem id !acc) then begin
        acc := id :: !acc;
        incr count
      end;
      incr i
    done;
    List.rev !acc
  end
