(** Fleet membership roster — see the interface for the epoch and
    crash-detection semantics. *)

type view = { v_epoch : int; v_nodes : (string * string) list }

type node = { mutable n_addr : string; mutable n_beat : float }

type t = {
  env : Env.t;
  timeout_s : float;
  mutex : Env.mutex;
  tbl : (string, node) Hashtbl.t;
  mutable epoch : int;
}

let create ?(env = Env.real) ?(timeout_s = 2.0) () =
  {
    env;
    timeout_s;
    mutex = env.Env.mutex ();
    tbl = Hashtbl.create 8;
    epoch = 0;
  }

let locked t f =
  t.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> t.mutex.Env.unlock ()) f

let view_locked t =
  let nodes =
    Hashtbl.fold (fun id n acc -> (id, n.n_addr) :: acc) t.tbl []
  in
  { v_epoch = t.epoch; v_nodes = List.sort compare nodes }

let view t = locked t (fun () -> view_locked t)
let epoch t = locked t (fun () -> t.epoch)

let join t ~id ~addr =
  locked t (fun () ->
      let now = t.env.Env.mono () in
      (match Hashtbl.find_opt t.tbl id with
      | Some n when n.n_addr = addr -> n.n_beat <- now
      | Some n ->
          n.n_addr <- addr;
          n.n_beat <- now;
          t.epoch <- t.epoch + 1
      | None ->
          Hashtbl.replace t.tbl id { n_addr = addr; n_beat = now };
          t.epoch <- t.epoch + 1);
      view_locked t)

let leave t ~id =
  locked t (fun () ->
      if Hashtbl.mem t.tbl id then begin
        Hashtbl.remove t.tbl id;
        t.epoch <- t.epoch + 1
      end;
      view_locked t)

let beat t ~id =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl id with
      | Some n ->
          n.n_beat <- t.env.Env.mono ();
          Some t.epoch
      | None -> None)

let sweep t =
  locked t (fun () ->
      let now = t.env.Env.mono () in
      let dead =
        Hashtbl.fold
          (fun id n acc ->
            if now -. n.n_beat > t.timeout_s then id :: acc else acc)
          t.tbl []
      in
      let dead = List.sort compare dead in
      if dead <> [] then begin
        List.iter (Hashtbl.remove t.tbl) dead;
        t.epoch <- t.epoch + 1
      end;
      dead)

(* ---- wire form (one "id addr" pair per line) ------------------------ *)

let string_of_nodes nodes =
  String.concat "\n" (List.map (fun (id, addr) -> id ^ " " ^ addr) nodes)

let nodes_of_string s =
  if s = "" then Some []
  else
    let parse_line l =
      match String.index_opt l ' ' with
      | Some i when i > 0 && i < String.length l - 1 ->
          Some
            ( String.sub l 0 i,
              String.sub l (i + 1) (String.length l - i - 1) )
      | _ -> None
    in
    let lines = String.split_on_char '\n' s in
    let parsed = List.map parse_line lines in
    if List.exists (( = ) None) parsed then None
    else Some (List.filter_map Fun.id parsed)
