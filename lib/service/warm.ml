(** VM warm-start hooks — see the interface for the keying rationale. *)

let context = "vm-warm"

let key ~config pristine =
  Digest.of_request (Digest.request_of_graph ~context ~config pristine)

let hooks ~config store =
  let lookup ~fn ~pristine =
    try
      Dbds.Faults.armed config.Dbds.Config.fault_plan ~fn (fun () ->
          let digest = key ~config pristine in
          match Store.get_graph store ~digest with
          | None -> None
          | Some (e, g) ->
              (* The memoized graph is shared; the engine installs and
                 executes bodies read-only, so handing it out is safe. *)
              Some (g, e.Store.ar_work))
    with _ -> None
  in
  let spill ~fn ~pristine ~optimized ~work =
    try
      Dbds.Faults.armed config.Dbds.Config.fault_plan ~fn (fun () ->
          Store.put store
            ~digest:(key ~config pristine)
            ~fn
            ~ir:(Digest.canonical_of_graph optimized)
            ~work)
    with _ -> ()
  in
  (lookup, spill)
