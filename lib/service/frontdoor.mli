(** The async multi-tenant front door: a single-threaded, poll-based,
    non-blocking event loop serving the compile protocol in front of a
    {!Broker}.

    Where {!Server} spawns one thread per connection and blocks on
    reads, the front door owns every connection from one loop built on
    {!Env.poller} and the non-blocking [try_*] connection operations —
    so it runs unchanged (and fully deterministically) under the
    whole-system simulator.  Three responsibilities:

    - {e connection state machines}: per-connection incremental read
      and write buffers for the length-prefixed text protocol, plus the
      compact binary framing (see {!Protocol.render_binary}) negotiated
      per connection with [hello framing=binary] — text stays the
      default and wire-compatible with old clients.  Garbage on a
      connection yields a structured [rejected] protocol-error reply
      and a drained close, never an exception out of the loop.
    - {e tenant-aware admission}: clients present a tenant id via
      [hello tenant=...]; each tenant holds a token-bucket quota, and
      every request rides one of two priority lanes ([interactive] —
      tiered-VM promotions — preempting [batch] AOT) drained by
      weighted-deficit round-robin, so interactive wins the head of
      each round but batch never starves.  Overload (quota exhausted or
      lane queue full) is answered with a structured [shed] reply
      carrying a [retry-after-ms] hint instead of a dropped connection.
    - {e per-tenant observability}: log2-bucket latency histograms
      (p50/p95/p99), queue depths, shed and protocol-error counters,
      all surfaced in the [stats] reply's [frontdoor] field.

    Admitted requests are queued to a small pool of dispatcher threads
    that call the blocking {!Broker.submit} and the store, so the loop
    itself never blocks on a compile.  An admitted request is always
    answered — shutdown drains the lanes before the loop exits.

    Verbs: [ping], [hello], [stats], [shutdown], [compile], and
    [lookup] (digest-keyed artifact fetch through the store's federated
    chain).  Fleet membership verbs stay with {!Server} — a fleet
    worker node keeps the classic front end. *)

(** Log2-bucket latency histogram: bucket 0 is [\[0, 1)] ms, bucket
    [i >= 1] is [\[2^(i-1), 2^i)] ms.  Quantiles come back as the upper
    bound of the covering bucket (a <= 2x overestimate — stable and
    cheap, which is what an admission dashboard needs). *)
module Hist : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val bucket_of_ms : float -> int
  val quantile : t -> float -> float
end

(** Token-bucket quota, refilled lazily on the monotonic clock. *)
module Quota : sig
  type t

  val create : rate:float -> burst:float -> t
  val try_take : t -> now:float -> bool

  (** Milliseconds until one full token accrues — the hint a quota
      shed carries. *)
  val retry_after_ms : t -> int
end

(** Two priority lanes with weighted-deficit round-robin dequeue. *)
module Lanes : sig
  type lane = Interactive | Batch

  val lane_of_string : string -> lane

  (** ["interactive"] or ["batch"]. *)
  val lane_to_string : lane -> string

  type 'a t

  (** Weights clamp to [>= 1]; defaults 3 (interactive) : 1 (batch). *)
  val create : ?w_interactive:float -> ?w_batch:float -> unit -> 'a t

  val push : 'a t -> lane -> 'a -> unit
  val pop : 'a t -> 'a option
  val length : 'a t -> lane -> int
  val is_empty : 'a t -> bool
end

type config = {
  fd_dispatchers : int;  (** broker-facing worker threads (default 2) *)
  fd_queue_limit : int;  (** per-lane admission bound (default 64) *)
  fd_tenant_rate : float;  (** tokens per second per tenant (default 50) *)
  fd_tenant_burst : float;  (** bucket depth (default 100) *)
  fd_w_interactive : float;
  fd_w_batch : float;
  fd_shed_retry_ms : int;  (** hint on a queue-full shed (default 250) *)
}

val default_config : config

(** Serve until a [shutdown] request arrives; same socket-claiming,
    logging and control semantics as {!Server.serve} (the control
    handle type is shared).  [Broker.shutdown] runs on exit. *)
val serve :
  ?env:Env.t ->
  ?log:(string -> unit) ->
  ?config:config ->
  ?on_control:(Server.control -> unit) ->
  sock:string ->
  broker:Broker.t ->
  unit ->
  unit
