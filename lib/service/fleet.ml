(** Fleet plumbing: peer store exchange, federation wiring, rebalance
    scans, and the membership coordinator — see the interface. *)

(* Peer exchanges are short-lived connections with tight deadlines: a
   dead or partitioned peer must degrade to a miss quickly, never stall
   a lookup behind a reconnect dance. *)
let peer_connect_deadline_s = 0.25
let peer_io_deadline_s = 5.0

(* ---- peer store exchange -------------------------------------------- *)

let with_peer ?env ~addr f =
  match
    Client.connect ?env ~deadline_s:peer_connect_deadline_s
      ~io_deadline_s:peer_io_deadline_s ~sock:addr ()
  with
  | exception _ -> None
  | c -> Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let peer_fetch ?env ~addr ~digest () =
  with_peer ?env ~addr (fun c ->
      match
        Client.roundtrip c
          { Protocol.verb = "fetch"; fields = [ ("digest", digest) ] }
      with
      | Ok m when Protocol.field m "status" = Some "hit" -> (
          match
            ( Protocol.field m "fn",
              Protocol.field m "ir",
              int_of_string_opt (Protocol.field_or m "work" "") )
          with
          | Some fn, Some ir, Some work ->
              Some { Store.ar_fn = fn; ar_ir = ir; ar_work = work }
          | _ -> None)
      | Ok _ | Error _ -> None)

let peer_push ?env ~addr ~digest (e : Store.entry) =
  Option.is_some
    (with_peer ?env ~addr (fun c ->
         match
           Client.roundtrip c
             {
               Protocol.verb = "push";
               fields =
                 [
                   ("digest", digest);
                   ("fn", e.Store.ar_fn);
                   ("ir", e.Store.ar_ir);
                   ("work", string_of_int e.Store.ar_work);
                 ];
             }
         with
         | Ok m when Protocol.field m "status" = Some "ok" -> Some ()
         | Ok _ | Error _ -> None))

(* ---- ring views ------------------------------------------------------ *)

(* The ring is a pure function of the node-id set; rebuilding it on
   every lookup would be sorting 64N points per request, so cache it by
   epoch. *)
let ring_cache view =
  let cached = ref None in
  fun () ->
    let v = view () in
    match !cached with
    | Some (epoch, ring) when epoch = v.Member.v_epoch -> (ring, v)
    | _ ->
        let ring = Ring.create (List.map fst v.Member.v_nodes) in
        cached := Some (v.Member.v_epoch, ring);
        (ring, v)

let addr_of v id = List.assoc_opt id v.Member.v_nodes

(* The digest's owner and replica successors: the first [1 + replicas]
   distinct nodes clockwise from the digest's point. *)
let owners ring digest ~replicas =
  Ring.successors ring digest ~n:(1 + max 0 replicas)

(* ---- federation wiring ----------------------------------------------- *)

let federate ?env ?(replicas = 1) ~self ~view store =
  let ring = ring_cache view in
  let fetch ~digest =
    let r, v = ring () in
    let rec try_peers = function
      | [] -> None
      | id :: rest ->
          if id = self then try_peers rest
          else
            let hit =
              Option.bind (addr_of v id) (fun addr ->
                  peer_fetch ?env ~addr ~digest ())
            in
            if hit = None then try_peers rest else hit
    in
    try_peers (owners r digest ~replicas)
  in
  let replicate ~digest entry =
    let r, v = ring () in
    List.fold_left
      (fun acc id ->
        if id = self then acc
        else
          match addr_of v id with
          | Some addr when peer_push ?env ~addr ~digest entry -> acc + 1
          | _ -> acc)
      0
      (owners r digest ~replicas)
  in
  Store.set_federation store ~fetch:(Some fetch) ~replicate:(Some replicate)

let rebalance ?env ?(replicas = 1) ~self ~view store =
  let r, v = ring_cache (fun () -> view) () in
  if Ring.is_empty r then 0
  else
    List.fold_left
      (fun moved digest ->
        match owners r digest ~replicas with
        | owner :: _ as os when not (List.mem self os) -> (
            (* This node no longer owns the artifact: offer it to the
               new owner (the local copy stays — it is a cache, and the
               LRU GC will reclaim it). *)
            match Store.get store ~digest with
            | Some e -> (
                match addr_of v owner with
                | Some addr when owner <> self ->
                    if peer_push ?env ~addr ~digest e then moved + 1
                    else moved
                | _ -> moved)
            | None -> moved)
        | _ -> moved)
      0 (Store.digests store)

(* ---- the coordinator -------------------------------------------------- *)

type coord_state = {
  env : Env.t;
  member : Member.t;
  sock : string;
  listener : Env.listener;
  log : string -> unit;
  mutex : Env.mutex;
  mutable stopping : bool;
  mutable conns : Env.thread list;
}

let locked st f =
  st.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> st.mutex.Env.unlock ()) f

let stopping st = locked st (fun () -> st.stopping)

let trigger_stop st =
  locked st (fun () -> st.stopping <- true);
  match st.env.Env.connect st.sock with
  | conn -> conn.Env.close_conn ()
  | exception Env.Net _ -> ()

let ok_fields fields = { Protocol.verb = "reply"; fields = ("status", "ok") :: fields }
let ok_reply = ok_fields []

let rejected msg =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "rejected"); ("message", msg) ];
  }

let view_fields = Protocol.view_fields
let view_of_message = Protocol.view_of_message

(* Push the new view to every member so each can re-home artifacts it
   no longer owns.  Failures are the member's problem (it is crashing
   or partitioned; the next sweep will notice). *)
let push_rebalance st (v : Member.view) =
  List.iter
    (fun (id, addr) ->
      match
        with_peer ~env:st.env ~addr (fun c ->
            match
              Client.roundtrip c
                { Protocol.verb = "rebalance"; fields = view_fields v }
            with
            | Ok m when Protocol.field m "status" = Some "ok" -> Some ()
            | Ok _ | Error _ -> None)
      with
      | Some () -> ()
      | None -> st.log (Printf.sprintf "rebalance push to %s failed" id))
    v.Member.v_nodes

let handle_coord st conn =
  let send m = try Protocol.write_conn conn m with Env.Net _ -> () in
  let rec loop () =
    match Protocol.read_conn conn with
    | Error "eof" -> ()
    | Error msg ->
        send (rejected ("protocol error: " ^ msg))
    | Ok m -> (
        match m.Protocol.verb with
        | "ping" ->
            send ok_reply;
            loop ()
        | "join" -> (
            match (Protocol.field m "id", Protocol.field m "addr") with
            | Some id, Some addr ->
                let before = Member.epoch st.member in
                let v = Member.join st.member ~id ~addr in
                st.log
                  (Printf.sprintf "join %s @ %s (epoch %d)" id addr
                     v.Member.v_epoch);
                send (ok_fields (view_fields v));
                if v.Member.v_epoch <> before then push_rebalance st v;
                loop ()
            | _ ->
                send (rejected "join needs id and addr fields");
                loop ())
        | "beat" -> (
            match Protocol.field m "id" with
            | Some id -> (
                match Member.beat st.member ~id with
                | Some epoch ->
                    send (ok_fields [ ("epoch", string_of_int epoch) ]);
                    loop ()
                | None ->
                    (* Swept out as crashed (or never joined): the
                       worker must re-join to re-enter the ring. *)
                    send
                      {
                        Protocol.verb = "reply";
                        fields = [ ("status", "unknown") ];
                      };
                    loop ())
            | None ->
                send (rejected "beat needs an id field");
                loop ())
        | "leave" -> (
            match Protocol.field m "id" with
            | Some id ->
                let v = Member.leave st.member ~id in
                st.log (Printf.sprintf "leave %s (epoch %d)" id v.Member.v_epoch);
                send (ok_fields (view_fields v));
                push_rebalance st v;
                loop ()
            | None ->
                send (rejected "leave needs an id field");
                loop ())
        | "view" ->
            send (ok_fields (view_fields (Member.view st.member)));
            loop ()
        | "stats" ->
            let v = Member.view st.member in
            send
              (ok_fields
                 (("members", string_of_int (List.length v.Member.v_nodes))
                 :: view_fields v));
            loop ()
        | "shutdown" ->
            st.log "shutdown requested";
            send ok_reply;
            trigger_stop st
        | verb ->
            send (rejected ("unknown verb: " ^ verb));
            loop ())
  in
  (try loop () with _ -> ());
  conn.Env.close_conn ()

(* Same stale-socket discipline as [Server.serve]. *)
let claim_socket (env : Env.t) sock =
  if env.Env.file_exists sock then begin
    (match env.Env.connect sock with
    | conn ->
        conn.Env.close_conn ();
        invalid_arg
          (Printf.sprintf "Fleet.coordinator: %s already has a live server"
             sock)
    | exception Env.Net ((Env.Refused | Env.Denied | Env.Not_found), _) -> ());
    try env.Env.remove sock with Sys_error _ -> ()
  end

let coordinator ?(env = Env.real) ?(log = fun _ -> ())
    ?(beat_timeout_s = 2.0) ~sock () =
  claim_socket env sock;
  let listener = env.Env.listen sock in
  let member = Member.create ~env ~timeout_s:beat_timeout_s () in
  let st =
    {
      env;
      member;
      sock;
      listener;
      log;
      mutex = env.Env.mutex ();
      stopping = false;
      conns = [];
    }
  in
  log (Printf.sprintf "coordinating on %s" sock);
  (* Crash detection: sweep at twice the heartbeat-timeout rate so a
     silent node is declared dead within ~1.5 timeouts. *)
  let sweeper =
    env.Env.spawn "coord-sweeper" (fun () ->
        let rec tick () =
          if not (stopping st) then begin
            env.Env.sleep (beat_timeout_s /. 2.);
            (match Member.sweep member with
            | [] -> ()
            | dead ->
                let v = Member.view member in
                st.log
                  (Printf.sprintf "crashed: %s (epoch %d)"
                     (String.concat ", " dead) v.Member.v_epoch);
                push_rebalance st v);
            tick ()
          end
        in
        tick ())
  in
  let conn_id = ref 0 in
  let rec accept_loop () =
    if not (stopping st) then
      match st.listener.Env.accept () with
      | conn ->
          if stopping st then conn.Env.close_conn ()
          else begin
            incr conn_id;
            let t =
              st.env.Env.spawn
                (Printf.sprintf "coord-conn-%d" !conn_id)
                (fun () -> handle_coord st conn)
            in
            locked st (fun () -> st.conns <- t :: st.conns);
            accept_loop ()
          end
      | exception Env.Net _ -> ()
  in
  accept_loop ();
  st.listener.Env.close_listener ();
  let conns = locked st (fun () -> st.conns) in
  List.iter (fun (t : Env.thread) -> t.Env.join ()) conns;
  sweeper.Env.join ();
  (try env.Env.remove sock with Sys_error _ -> ());
  log "stopped"
