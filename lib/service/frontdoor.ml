(** The async multi-tenant front door — see the interface. *)

(* ---- latency histograms ---------------------------------------------- *)

module Hist = struct
  let nbuckets = 32

  type t = { counts : int array; mutable total : int }

  let create () = { counts = Array.make nbuckets 0; total = 0 }

  (* Bucket 0 is [0, 1) ms; bucket i >= 1 is [2^(i-1), 2^i) ms. *)
  let bucket_of_ms ms =
    if Float.is_nan ms || ms < 1.0 then 0
    else
      let rec go i v = if i >= nbuckets - 1 || v < 2.0 then i else go (i + 1) (v /. 2.0) in
      go 1 ms

  let upper_ms i = if i = 0 then 1.0 else Float.of_int (1 lsl min i 30)

  let add t ms =
    let b = bucket_of_ms ms in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1

  let count t = t.total

  (* The q-quantile as the upper bound of the first bucket whose
     cumulative count reaches it — a <= 2x overestimate, stable and
     mergeable, which is all an admission dashboard needs. *)
  let quantile t q =
    if t.total = 0 then 0.0
    else
      let target = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
      let rec go i acc =
        let acc = acc + t.counts.(i) in
        if acc >= target || i = nbuckets - 1 then upper_ms i else go (i + 1) acc
      in
      go 0 0
end

(* ---- per-tenant token buckets ---------------------------------------- *)

module Quota = struct
  type t = {
    rate : float;  (** tokens per second *)
    burst : float;
    mutable tokens : float;
    mutable last : float;  (** mono time of the last refill *)
  }

  let create ~rate ~burst =
    let burst = Float.max 1.0 burst in
    { rate = Float.max 0.001 rate; burst; tokens = burst; last = Float.neg_infinity }

  let refill t ~now =
    if now > t.last then begin
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.last) *. t.rate));
      t.last <- now
    end

  let try_take t ~now =
    refill t ~now;
    if t.tokens >= 1.0 then begin
      t.tokens <- t.tokens -. 1.0;
      true
    end
    else false

  (* How long until one full token accrues — the structured backoff
     hint a quota shed carries. *)
  let retry_after_ms t =
    max 1 (int_of_float (ceil ((1.0 -. t.tokens) /. t.rate *. 1000.0)))
end

(* ---- priority lanes with weighted-deficit dequeue -------------------- *)

module Lanes = struct
  type lane = Interactive | Batch

  let lane_of_string = function "interactive" -> Interactive | _ -> Batch
  let lane_to_string = function Interactive -> "interactive" | Batch -> "batch"

  type 'a t = {
    q_int : 'a Queue.t;
    q_bat : 'a Queue.t;
    w_int : float;
    w_bat : float;
    mutable def_int : float;
    mutable def_bat : float;
  }

  let create ?(w_interactive = 3.0) ?(w_batch = 1.0) () =
    {
      q_int = Queue.create ();
      q_bat = Queue.create ();
      w_int = Float.max 1.0 w_interactive;
      w_bat = Float.max 1.0 w_batch;
      def_int = 0.0;
      def_bat = 0.0;
    }

  let queue t = function Interactive -> t.q_int | Batch -> t.q_bat
  let push t lane x = Queue.push x (queue t lane)
  let length t lane = Queue.length (queue t lane)
  let is_empty t = Queue.is_empty t.q_int && Queue.is_empty t.q_bat

  (* Deficit round-robin: each round credits every backlogged lane its
     weight and drains in priority order, so interactive wins the head
     of every round but batch is guaranteed w_bat dequeues per round —
     starvation-free by construction.  An idle lane's deficit resets:
     priority cannot be hoarded while there is nothing to send. *)
  let rec pop t =
    if is_empty t then None
    else if (not (Queue.is_empty t.q_int)) && t.def_int >= 1.0 then begin
      t.def_int <- t.def_int -. 1.0;
      Some (Queue.pop t.q_int)
    end
    else if (not (Queue.is_empty t.q_bat)) && t.def_bat >= 1.0 then begin
      t.def_bat <- t.def_bat -. 1.0;
      Some (Queue.pop t.q_bat)
    end
    else begin
      if Queue.is_empty t.q_int then t.def_int <- 0.0
      else t.def_int <- t.def_int +. t.w_int;
      if Queue.is_empty t.q_bat then t.def_bat <- 0.0
      else t.def_bat <- t.def_bat +. t.w_bat;
      pop t
    end
end

(* ---- configuration and state ----------------------------------------- *)

type config = {
  fd_dispatchers : int;
  fd_queue_limit : int;
  fd_tenant_rate : float;
  fd_tenant_burst : float;
  fd_w_interactive : float;
  fd_w_batch : float;
  fd_shed_retry_ms : int;
}

let default_config =
  {
    fd_dispatchers = 2;
    fd_queue_limit = 64;
    fd_tenant_rate = 50.0;
    fd_tenant_burst = 100.0;
    fd_w_interactive = 3.0;
    fd_w_batch = 1.0;
    fd_shed_retry_ms = 250;
  }

type stats = {
  mutable fd_accepted : int;
  mutable fd_admitted : int;
  mutable fd_completed : int;
  mutable fd_shed_quota : int;
  mutable fd_shed_queue : int;
  mutable fd_proto_errors : int;
}

type tenant = {
  tn_id : string;
  tn_quota : Quota.t;
  tn_hist : Hist.t;
  mutable tn_admitted : int;
  mutable tn_done : int;
  mutable tn_shed : int;
}

type codec = Text | Binary

(* One connection's state machine: incremental read buffer (unparsed
   inbound bytes), pending out-bytes, and the count of admitted
   requests whose replies are still owed.  Only the event loop touches
   a cstate; dispatchers reference one solely as a completion
   address. *)
type cstate = {
  c_conn : Env.conn;
  c_rbuf : Buffer.t;
  mutable c_out : string;
  mutable c_codec : codec;
  mutable c_tenant : tenant;
  mutable c_lane : Lanes.lane;
  mutable c_inflight : int;
  mutable c_closing : bool;  (** no more input; close once drained *)
  mutable c_err : bool;  (** stream desynchronized; stop parsing *)
  mutable c_dead : bool;
}

type kind = Compile | Lookup

type job = {
  jb_cs : cstate;
  jb_kind : kind;
  jb_msg : Protocol.message;
  jb_tenant : tenant;
  jb_admit : float;  (** mono time of admission — queue wait counts *)
  jb_deadline : float option;  (** absolute, mono *)
}

type t = {
  env : Env.t;
  broker : Broker.t;
  cfg : config;
  sock : string;
  listener : Env.listener;
  poller : Env.poller;
  log : string -> unit;
  mx : Env.mutex;
  job_cond : Env.cond;
  lanes : job Lanes.t;
  comps : (cstate * Protocol.message) Queue.t;
  tenants : (string, tenant) Hashtbl.t;
  stats : stats;
  mutable conns : cstate list;
  mutable stopping : bool;
  mutable killed : bool;
}

let locked fd f =
  fd.mx.Env.lock ();
  Fun.protect ~finally:(fun () -> fd.mx.Env.unlock ()) f

let tenant fd id =
  match Hashtbl.find_opt fd.tenants id with
  | Some tn -> tn
  | None ->
      let tn =
        {
          tn_id = id;
          tn_quota =
            Quota.create ~rate:fd.cfg.fd_tenant_rate
              ~burst:fd.cfg.fd_tenant_burst;
          tn_hist = Hist.create ();
          tn_admitted = 0;
          tn_done = 0;
          tn_shed = 0;
        }
      in
      Hashtbl.replace fd.tenants id tn;
      tn

(* ---- replies ---------------------------------------------------------- *)

let ok_reply = { Protocol.verb = "reply"; fields = [ ("status", "ok") ] }

let rejected msg =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "rejected"); ("message", msg) ];
  }

let shed_reply retry_ms =
  {
    Protocol.verb = "reply";
    fields = [ ("status", "shed"); ("retry-after-ms", string_of_int retry_ms) ];
  }

(* ---- connection I/O --------------------------------------------------- *)

let mark_dead cs =
  if not cs.c_dead then begin
    cs.c_dead <- true;
    cs.c_out <- "";
    try cs.c_conn.Env.close_conn () with _ -> ()
  end

let flush_out cs =
  if (not cs.c_dead) && cs.c_out <> "" then
    match cs.c_conn.Env.try_send cs.c_out with
    | 0 -> ()
    | n -> cs.c_out <- String.sub cs.c_out n (String.length cs.c_out - n)
    | exception Env.Net _ -> mark_dead cs

let enqueue_out cs m =
  if not cs.c_dead then begin
    let s =
      match cs.c_codec with
      | Text -> Protocol.render m
      | Binary -> Protocol.render_binary m
    in
    cs.c_out <- cs.c_out ^ s;
    flush_out cs
  end

(* ---- request handling ------------------------------------------------- *)

let stats_reply fd =
  let b = Broker.stats fd.broker in
  let counts = Buffer.create 256 in
  Printf.bprintf counts
    "requests=%d compiles=%d cache_hits=%d coalesced=%d shed=%d timeouts=%d \
     failures=%d"
    b.Broker.requests b.Broker.compiles b.Broker.cache_hits b.Broker.coalesced
    b.Broker.shed b.Broker.timeouts b.Broker.failures;
  let store_line =
    match Broker.store fd.broker with
    | None -> "none"
    | Some s ->
        let ss = Store.stats s in
        Printf.bprintf counts
          " store_hits=%d store_misses=%d store_writes=%d store_evictions=%d \
           store_corrupt=%d store_peer_hits=%d store_peer_misses=%d \
           store_replicated=%d"
          ss.Store.hits ss.Store.misses ss.Store.writes ss.Store.evictions
          ss.Store.corrupt ss.Store.peer_hits ss.Store.peer_misses
          ss.Store.replicated;
        Format.asprintf "%a" Store.pp_stats ss
  in
  let fdline = Buffer.create 256 in
  locked fd (fun () ->
      Printf.bprintf fdline
        "accepted=%d admitted=%d completed=%d shed_quota=%d shed_queue=%d \
         proto_errors=%d queue_interactive=%d queue_batch=%d"
        fd.stats.fd_accepted fd.stats.fd_admitted fd.stats.fd_completed
        fd.stats.fd_shed_quota fd.stats.fd_shed_queue fd.stats.fd_proto_errors
        (Lanes.length fd.lanes Lanes.Interactive)
        (Lanes.length fd.lanes Lanes.Batch);
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) fd.tenants [] in
      List.iter
        (fun id ->
          let tn = Hashtbl.find fd.tenants id in
          Printf.bprintf fdline
            "\ntenant=%s admitted=%d done=%d shed=%d p50_ms=%g p95_ms=%g \
             p99_ms=%g"
            tn.tn_id tn.tn_admitted tn.tn_done tn.tn_shed
            (Hist.quantile tn.tn_hist 0.50)
            (Hist.quantile tn.tn_hist 0.95)
            (Hist.quantile tn.tn_hist 0.99))
        (List.sort compare ids));
  {
    Protocol.verb = "reply";
    fields =
      [
        ("status", "ok");
        ("broker", Format.asprintf "%a" Broker.pp_stats b);
        ("store", store_line);
        ("counts", Buffer.contents counts);
        ("frontdoor", Buffer.contents fdline);
      ];
  }

let handle_hello fd cs m =
  let tenant_id = Protocol.field_or m "tenant" "default" in
  cs.c_tenant <- locked fd (fun () -> tenant fd tenant_id);
  cs.c_lane <- Lanes.lane_of_string (Protocol.field_or m "lane" "batch");
  let binary = Protocol.field m "framing" = Some "binary" in
  (* The confirmation travels in the codec the hello arrived in; only
     messages after it switch. *)
  enqueue_out cs
    {
      Protocol.verb = "reply";
      fields =
        [
          ("status", "ok");
          ("framing", (if binary then "binary" else "text"));
          ("tenant", tenant_id);
          ("lane", Lanes.lane_to_string cs.c_lane);
        ];
    };
  if binary then cs.c_codec <- Binary

let admit fd cs kind m =
  let now = fd.env.Env.mono () in
  let tn = cs.c_tenant in
  let lane =
    match Protocol.field m "lane" with
    | Some s -> Lanes.lane_of_string s
    | None -> cs.c_lane
  in
  let decision =
    locked fd (fun () ->
        if fd.stopping then `Reject "server is shutting down"
        else if not (Quota.try_take tn.tn_quota ~now) then begin
          tn.tn_shed <- tn.tn_shed + 1;
          fd.stats.fd_shed_quota <- fd.stats.fd_shed_quota + 1;
          `Shed (Quota.retry_after_ms tn.tn_quota)
        end
        else if Lanes.length fd.lanes lane >= fd.cfg.fd_queue_limit then begin
          tn.tn_shed <- tn.tn_shed + 1;
          fd.stats.fd_shed_queue <- fd.stats.fd_shed_queue + 1;
          `Shed fd.cfg.fd_shed_retry_ms
        end
        else begin
          tn.tn_admitted <- tn.tn_admitted + 1;
          fd.stats.fd_admitted <- fd.stats.fd_admitted + 1;
          cs.c_inflight <- cs.c_inflight + 1;
          let deadline =
            Option.bind (Protocol.field m "deadline-ms") int_of_string_opt
            |> Option.map (fun ms -> now +. (float_of_int ms /. 1000.0))
          in
          Lanes.push fd.lanes lane
            {
              jb_cs = cs;
              jb_kind = kind;
              jb_msg = m;
              jb_tenant = tn;
              jb_admit = now;
              jb_deadline = deadline;
            };
          fd.job_cond.Env.broadcast ();
          `Admitted
        end)
  in
  match decision with
  | `Admitted -> ()
  | `Reject msg -> enqueue_out cs (rejected msg)
  | `Shed retry_ms -> enqueue_out cs (shed_reply retry_ms)

let initiate_stop ?(kill = false) fd =
  locked fd (fun () ->
      if not fd.stopping then begin
        fd.stopping <- true;
        fd.job_cond.Env.broadcast ()
      end;
      if kill then fd.killed <- true);
  (try fd.listener.Env.close_listener () with _ -> ());
  fd.poller.Env.wake ()

let handle_msg fd cs m =
  match m.Protocol.verb with
  | "ping" -> enqueue_out cs ok_reply
  | "hello" -> handle_hello fd cs m
  | "stats" -> enqueue_out cs (stats_reply fd)
  | "shutdown" ->
      fd.log "shutdown requested";
      enqueue_out cs ok_reply;
      initiate_stop fd
  | "compile" -> admit fd cs Compile m
  | "lookup" -> admit fd cs Lookup m
  | verb -> enqueue_out cs (rejected ("unknown verb: " ^ verb))

let consume cs n =
  let data = Buffer.contents cs.c_rbuf in
  Buffer.clear cs.c_rbuf;
  Buffer.add_substring cs.c_rbuf data n (String.length data - n)

let rec parse_loop fd cs =
  if (not cs.c_dead) && (not cs.c_err) && Buffer.length cs.c_rbuf > 0 then begin
    let data = Buffer.contents cs.c_rbuf in
    let progress =
      match cs.c_codec with
      | Text -> Protocol.decode data
      | Binary -> Protocol.decode_binary data
    in
    match progress with
    | Protocol.More -> ()
    | Protocol.Err e ->
        (* The stream is desynchronized: answer with a structured
           protocol error, stop reading, close once drained. *)
        locked fd (fun () ->
            fd.stats.fd_proto_errors <- fd.stats.fd_proto_errors + 1);
        Buffer.clear cs.c_rbuf;
        cs.c_err <- true;
        cs.c_closing <- true;
        enqueue_out cs (rejected ("protocol error: " ^ e))
    | Protocol.Msg (m, used) ->
        consume cs used;
        handle_msg fd cs m;
        parse_loop fd cs
  end

let pump_in fd cs =
  if (not cs.c_dead) && not cs.c_closing then begin
    (try
       let rec rd () =
         match cs.c_conn.Env.try_recv 65536 with
         | "" -> ()
         | s ->
             Buffer.add_string cs.c_rbuf s;
             rd ()
       in
       rd ()
     with
    | Env.Net (Env.Eof, _) -> cs.c_closing <- true
    | Env.Net _ -> mark_dead cs);
    ignore fd
  end

let service_conn fd cs =
  if not cs.c_dead then begin
    flush_out cs;
    pump_in fd cs;
    (* Bytes buffered before an EOF may still hold complete requests
       (send + shutdown-write is a legal client). *)
    parse_loop fd cs;
    flush_out cs;
    if cs.c_closing && cs.c_out = "" && cs.c_inflight = 0 then mark_dead cs
  end

(* ---- dispatchers ------------------------------------------------------ *)

let ms_field m name =
  Option.bind (Protocol.field m name) int_of_string_opt
  |> Option.map (fun ms -> float_of_int ms /. 1000.)

let process fd j =
  let m = j.jb_msg in
  match j.jb_kind with
  | Compile -> (
      match (Protocol.field m "fn", Protocol.field m "ir") with
      | Some fn, Some ir ->
          let expired =
            match j.jb_deadline with
            | Some d -> fd.env.Env.mono () >= d
            | None -> false
          in
          if expired then Protocol.reply_of_outcome Broker.Timed_out
          else begin
            let config = Dbds.Config.of_line (Protocol.field_or m "config" "") in
            let config =
              match
                Option.bind (Protocol.field m "inject") (fun s ->
                    Result.to_option (Dbds.Faults.of_string s))
              with
              | Some p -> { config with Dbds.Config.fault_plan = Some p }
              | None -> config
            in
            (* The remaining budget, not the original: queue wait has
               already been charged against the deadline — all on the
               monotonic clock, so a wall step changes nothing. *)
            let deadline_s =
              Option.map (fun d -> d -. fd.env.Env.mono ()) j.jb_deadline
            in
            let outcome =
              Broker.submit ?deadline_s ?delay_s:(ms_field m "delay-ms")
                ~config ~fn ~ir fd.broker
            in
            fd.log
              (Printf.sprintf "compile %s [%s] -> %s" fn j.jb_tenant.tn_id
                 (Broker.outcome_label outcome));
            Protocol.reply_of_outcome outcome
          end
      | _ -> rejected "compile needs fn and ir fields")
  | Lookup -> (
      match Protocol.field m "digest" with
      | None -> rejected "lookup needs a digest field"
      | Some digest -> (
          match Broker.store fd.broker with
          | None -> rejected "this node has no artifact store"
          | Some s -> (
              match Store.fetch s ~digest with
              | Some e ->
                  {
                    Protocol.verb = "reply";
                    fields =
                      [
                        ("status", "hit");
                        ("fn", e.Store.ar_fn);
                        ("ir", e.Store.ar_ir);
                        ("work", string_of_int e.Store.ar_work);
                      ];
                  }
              | None ->
                  { Protocol.verb = "reply"; fields = [ ("status", "miss") ] })))

let dispatcher fd () =
  let next () =
    fd.mx.Env.lock ();
    let rec wait () =
      match Lanes.pop fd.lanes with
      | Some j ->
          fd.mx.Env.unlock ();
          Some j
      | None ->
          if fd.stopping then begin
            fd.mx.Env.unlock ();
            None
          end
          else begin
            fd.job_cond.Env.wait ();
            wait ()
          end
    in
    wait ()
  in
  let rec run () =
    match next () with
    | None -> ()
    | Some j ->
        let reply =
          try process fd j
          with e ->
            rejected ("internal error: " ^ Printexc.to_string e)
        in
        let lat_ms = (fd.env.Env.mono () -. j.jb_admit) *. 1000. in
        locked fd (fun () ->
            Hist.add j.jb_tenant.tn_hist lat_ms;
            j.jb_tenant.tn_done <- j.jb_tenant.tn_done + 1;
            fd.stats.fd_completed <- fd.stats.fd_completed + 1;
            Queue.push (j.jb_cs, reply) fd.comps);
        fd.poller.Env.wake ();
        run ()
  in
  run ()

(* ---- the event loop --------------------------------------------------- *)

let accept_all fd =
  if not (locked fd (fun () -> fd.stopping)) then
    let rec go () =
      match fd.listener.Env.try_accept () with
      | None -> ()
      | Some conn ->
          locked fd (fun () -> fd.stats.fd_accepted <- fd.stats.fd_accepted + 1);
          let cs =
            {
              c_conn = conn;
              c_rbuf = Buffer.create 256;
              c_out = "";
              c_codec = Text;
              c_tenant = locked fd (fun () -> tenant fd "default");
              c_lane = Lanes.Batch;
              c_inflight = 0;
              c_closing = false;
              c_err = false;
              c_dead = false;
            }
          in
          fd.conns <- cs :: fd.conns;
          go ()
      | exception Env.Net _ -> ()
    in
    go ()

let rec loop fd =
  (* Replies completed by the dispatchers since the last pass. *)
  let comps =
    locked fd (fun () ->
        let l = Queue.fold (fun acc c -> c :: acc) [] fd.comps in
        Queue.clear fd.comps;
        List.rev l)
  in
  List.iter
    (fun (cs, reply) ->
      cs.c_inflight <- cs.c_inflight - 1;
      enqueue_out cs reply)
    comps;
  accept_all fd;
  List.iter (service_conn fd) fd.conns;
  fd.conns <- List.filter (fun cs -> not cs.c_dead) fd.conns;
  let inflight = List.fold_left (fun a cs -> a + cs.c_inflight) 0 fd.conns in
  let out_pending = List.exists (fun cs -> cs.c_out <> "") fd.conns in
  let stopping, killed, comps_empty =
    locked fd (fun () -> (fd.stopping, fd.killed, Queue.is_empty fd.comps))
  in
  if killed || (stopping && inflight = 0 && (not out_pending) && comps_empty)
  then ()
  else begin
    (* Readable conns and the listener wake the poll; dispatchers wake
       it through the poller.  A non-empty out-buffer (real env only —
       the simulated link never short-writes) polls on a short tick to
       retry the write. *)
    let pollable =
      List.filter (fun cs -> (not cs.c_closing) && not cs.c_dead) fd.conns
    in
    let deadline =
      if out_pending then fd.env.Env.mono () +. 0.05 else Float.infinity
    in
    fd.poller.Env.poll
      ~conns:(List.map (fun cs -> cs.c_conn) pollable)
      ~listeners:(if stopping then [] else [ fd.listener ])
      deadline;
    loop fd
  end

(* A socket path that already exists is either a live server or the
   debris of a crashed one — same probe as [Server.claim_socket]. *)
let claim_socket env sock =
  if env.Env.file_exists sock then begin
    (match env.Env.connect sock with
    | conn ->
        conn.Env.close_conn ();
        invalid_arg
          (Printf.sprintf "Frontdoor.serve: %s already has a live server" sock)
    | exception Env.Net ((Env.Refused | Env.Denied | Env.Not_found), _) -> ());
    try env.Env.remove sock with Sys_error _ -> ()
  end

let serve ?(env = Env.real) ?(log = fun _ -> ()) ?(config = default_config)
    ?on_control ~sock ~broker () =
  claim_socket env sock;
  let listener = env.Env.listen sock in
  let poller = env.Env.poller () in
  let mx = env.Env.mutex () in
  let fd =
    {
      env;
      broker;
      cfg = config;
      sock;
      listener;
      poller;
      log;
      mx;
      job_cond = mx.Env.new_cond ();
      lanes =
        Lanes.create ~w_interactive:config.fd_w_interactive
          ~w_batch:config.fd_w_batch ();
      comps = Queue.create ();
      tenants = Hashtbl.create 8;
      stats =
        {
          fd_accepted = 0;
          fd_admitted = 0;
          fd_completed = 0;
          fd_shed_quota = 0;
          fd_shed_queue = 0;
          fd_proto_errors = 0;
        };
      conns = [];
      stopping = false;
      killed = false;
    }
  in
  (match on_control with
  | None -> ()
  | Some f -> f { Server.stop = (fun () -> initiate_stop ~kill:true fd) });
  log (Printf.sprintf "frontdoor listening on %s" sock);
  let dispatchers =
    List.init config.fd_dispatchers (fun i ->
        env.Env.spawn
          (Printf.sprintf "frontdoor-dispatch-%d" i)
          (dispatcher fd))
  in
  loop fd;
  (try fd.listener.Env.close_listener () with _ -> ());
  locked fd (fun () -> fd.job_cond.Env.broadcast ());
  List.iter (fun (t : Env.thread) -> t.Env.join ()) dispatchers;
  List.iter mark_dead fd.conns;
  fd.poller.Env.close_poller ();
  Broker.shutdown broker;
  (try env.Env.remove sock with Sys_error _ -> ());
  log "frontdoor stopped"
