(** Content addressing for compilation requests.

    The DBDS pipeline is deterministic: the same function IR under the
    same configuration, pipeline spec and cost model always produces the
    same optimized IR.  That makes compilation results cacheable — if
    two requests hash equal here, one artifact serves both.

    The hash is computed over the {e canonical} form of each component,
    so semantically identical requests collide:

    - IR is hashed by {!ir_hash_of_graph}, a single streaming traversal
      that renumbers blocks by reverse-postorder position and values by
      first appearance — the same normalization the print → parse →
      print round-trip performs ({!Ir.Parse} remaps textual ids to
      fresh dense ids in order of appearance and {!Ir.Printer} emits
      reachable blocks in reverse postorder), without materializing any
      text: any renumbering of blocks or instructions washes out.
    - The configuration is {!Dbds.Config.to_line} — only knobs that
      shape the produced IR, in a fixed key order.
    - The pipeline spec is the {e resolved} spec
      ({!Dbds.Driver.default_spec}, canonically rendered), so
      [--mode dbds] and the equivalent explicit [--passes] collide.
    - {!Costmodel.Cost.revision} — artifacts produced under one cost
      table are never reused under another. *)

(** One hashable compilation request. *)
type request = {
  rq_fn : string;  (** function name *)
  rq_ir_hash : string;  (** canonical IR hash ({!ir_hash_of_graph}) *)
  rq_context : string;
      (** program context the pipeline can observe beyond the function's
          own IR — class layouts and globals ({!context_of_program}).
          Empty for lone graphs (the service protocol), so artifacts
          produced with program context never collide with ones produced
          without. *)
  rq_config : string;  (** {!Dbds.Config.to_line} rendering *)
  rq_spec : string;  (** resolved pipeline spec, canonical rendering *)
  rq_cost_revision : int;  (** {!Costmodel.Cost.revision} *)
}

(** 64-bit FNV-1a over a string, rendered as 16 lowercase hex digits.
    Also used by {!Store} for artifact checksums. *)
val fnv64 : string -> string

(** The raw 64-bit FNV-1a.  Note FNV has no output avalanche: similar
    inputs give hashes with similar high bits — callers that need
    spatial uniformity (the {!Ring}) must finalize it themselves. *)
val fnv64_int64 : string -> int64

(** Canonical IR text of a graph: print → parse → print. *)
val canonical_of_graph : Ir.Graph.t -> string

(** Canonical IR text of printed IR (parse → print).
    @raise Ir.Parse.Parse_error on malformed input. *)
val canonical_of_text : string -> string

(** Canonical IR hash of a graph: a single traversal feeding FNV-1a —
    equal for any two graphs that differ only by block/value id
    numbering (blocks keyed by reverse-postorder position, values by
    first appearance), and stable across the print → parse round-trip
    (branch probabilities are hashed at the printer's precision).  The
    cache-lookup hot path: no IR text is materialized. *)
val ir_hash_of_graph : Ir.Graph.t -> string

(** As {!ir_hash_of_graph}, from printed IR.
    @raise Ir.Parse.Parse_error on malformed input. *)
val ir_hash_of_text : string -> string

(** Canonical rendering of the program facts a per-function pipeline can
    observe beyond its own graph: class layouts (field order matters —
    scalar replacement reads it) and globals, in sorted order.  [""] for
    a program with neither. *)
val context_of_program : Ir.Program.t -> string

(** Build the request for one function graph under a configuration (the
    spec is resolved via {!Dbds.Driver.default_spec}).  [context]
    defaults to [""] — a lone graph with no program facts. *)
val request_of_graph :
  ?context:string -> config:Dbds.Config.t -> Ir.Graph.t -> request

(** As {!request_of_graph}, from printed IR (the wire form).
    @raise Ir.Parse.Parse_error on malformed input. *)
val request_of_text :
  ?context:string -> config:Dbds.Config.t -> fn:string -> string -> request

(** The content digest: hash of the framed canonical request.  Collides
    exactly when function IR (canonically), config, resolved spec and
    cost-model revision all agree. *)
val of_request : request -> string
