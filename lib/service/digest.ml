(** Content addressing for compilation requests — see the interface for
    the canonicalization argument. *)

type request = {
  rq_fn : string;
  rq_ir_hash : string;
  rq_context : string;
  rq_config : string;
  rq_spec : string;
  rq_cost_revision : int;
}

(* 64-bit FNV-1a.  Dependency-free and plenty for a content-addressed
   cache whose entries are checksummed again on read; framing below
   makes component boundaries unambiguous. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64_int64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let fnv64 s = Printf.sprintf "%016Lx" (fnv64_int64 s)

let canonical_of_graph g =
  Ir.Printer.graph_to_string (Ir.Parse.parse_graph (Ir.Printer.graph_to_string g))

let canonical_of_text text =
  Ir.Printer.graph_to_string (Ir.Parse.parse_graph text)

(* Streaming canonical IR hash: one graph traversal feeding FNV-1a
   directly, no strings built.  The token stream renumbers blocks by
   reverse-postorder position and values by first appearance in stream
   order — exactly the normalization the print → parse → print
   round-trip performs — so the hash is invariant under any id
   renumbering and under the round-trip itself, at a fraction of the
   cost (the digest is the hot path of every cache lookup).  Branch
   probabilities are fed at the printer's %.2f precision so a printed
   artifact round-trips to the same hash. *)
let ir_hash_int64 g =
  let h = ref fnv_offset in
  let feed_char c =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime
  in
  let feed s = String.iter feed_char s in
  let feed_int n = feed (string_of_int n) in
  let blocks = Hashtbl.create 32 in
  let values = Hashtbl.create 64 in
  let next_value = ref 0 in
  let feed_block bid =
    feed_char 'b';
    feed_int (try Hashtbl.find blocks bid with Not_found -> -1)
  in
  let feed_value v =
    feed_char 'v';
    if v = Ir.Types.invalid_value then feed_char '?'
    else
      feed_int
        (match Hashtbl.find_opt values v with
        | Some n -> n
        | None ->
            let n = !next_value in
            incr next_value;
            Hashtbl.add values v n;
            n)
  in
  let feed_values vs =
    Array.iter
      (fun v ->
        feed_value v;
        feed_char ',')
      vs
  in
  let feed_kind = function
    | Ir.Types.Const n ->
        feed "const ";
        feed_int n
    | Ir.Types.Null -> feed "null"
    | Ir.Types.Param i ->
        feed "param ";
        feed_int i
    | Ir.Types.Binop (op, a, b) ->
        feed (Ir.Types.binop_to_string op);
        feed_char ' ';
        feed_value a;
        feed_char ',';
        feed_value b
    | Ir.Types.Cmp (op, a, b) ->
        feed "cmp.";
        feed (Ir.Types.cmpop_to_string op);
        feed_char ' ';
        feed_value a;
        feed_char ',';
        feed_value b
    | Ir.Types.Neg a ->
        feed "neg ";
        feed_value a
    | Ir.Types.Not a ->
        feed "not ";
        feed_value a
    | Ir.Types.Phi inputs ->
        (* Only a malformed phi (arity ≠ predecessor count, which the
           verifier rejects) reaches here; well-formed ones are
           canonicalized against predecessor order in [hash_block]. *)
        feed "phi ";
        feed_values inputs
    | Ir.Types.New (cls, args) ->
        feed "new ";
        feed cls;
        feed_char '(';
        feed_values args;
        feed_char ')'
    | Ir.Types.Load (o, f) ->
        feed "load ";
        feed_value o;
        feed_char '.';
        feed f
    | Ir.Types.Store (o, f, v) ->
        feed "store ";
        feed_value o;
        feed_char '.';
        feed f;
        feed "<-";
        feed_value v
    | Ir.Types.Load_global gl ->
        feed "gload ";
        feed gl
    | Ir.Types.Store_global (gl, v) ->
        feed "gstore ";
        feed gl;
        feed "<-";
        feed_value v
    | Ir.Types.Call (fn, args) ->
        feed "call ";
        feed fn;
        feed_char '(';
        feed_values args;
        feed_char ')'
  in
  let feed_term = function
    | Ir.Types.Jump b ->
        feed "jump ";
        feed_block b
    | Ir.Types.Branch { cond; if_true; if_false; prob } ->
        feed "branch ";
        feed_value cond;
        feed_char '?';
        feed_block if_true;
        feed_char ':';
        feed_block if_false;
        feed_char '@';
        feed (Printf.sprintf "%.2f" prob)
    | Ir.Types.Return None -> feed "return"
    | Ir.Types.Return (Some v) ->
        feed "return ";
        feed_value v
    | Ir.Types.Unreachable -> feed "unreachable"
  in
  let dense_block bid = try Hashtbl.find blocks bid with Not_found -> -1 in
  let hash_block bid =
    feed_block bid;
    feed_char ':';
    let n_preds = Ir.Graph.pred_count g bid in
    Ir.Graph.iter_block_instrs g bid (fun id ->
        feed_value id;
        feed_char '=';
        match Ir.Graph.kind g id with
        | Ir.Types.Phi inputs when n_preds = Array.length inputs ->
            (* Phi inputs align with the block's predecessor list, and
               predecessor order is a representation detail the parser
               is free to rebuild differently — hash the inputs as
               (predecessor, value) pairs sorted by canonical
               predecessor id instead. *)
            let pairs =
              Array.mapi
                (fun i v -> (dense_block (Ir.Graph.pred_nth g bid i), v))
                inputs
            in
            Array.sort (fun (p, _) (q, _) -> compare (p : int) q) pairs;
            feed "phi ";
            Array.iter
              (fun (p, v) ->
                feed_char 'b';
                feed_int p;
                feed_char ':';
                feed_value v;
                feed_char ',')
              pairs;
            feed_char ';'
        | kind ->
            feed_kind kind;
            feed_char ';');
    feed_term (Ir.Graph.term g bid);
    feed_char '\n'
  in
  feed "fn ";
  feed (Ir.Graph.name g);
  feed_char '(';
  feed_int (Ir.Graph.n_params g);
  feed ") entry=";
  (* Dense block numbering: reachable blocks by RPO position, detached
     ones appended in iteration order — mirroring the printer. *)
  let rpo = Ir.Graph.rpo g in
  List.iteri (fun i bid -> Hashtbl.replace blocks bid i) rpo;
  let next_block = ref (List.length rpo) in
  Ir.Graph.iter_blocks g (fun bid ->
      if not (Hashtbl.mem blocks bid) then begin
        Hashtbl.replace blocks bid !next_block;
        incr next_block
      end);
  feed_block (Ir.Graph.entry g);
  feed_char '\n';
  List.iter hash_block rpo;
  Ir.Graph.iter_blocks g (fun bid ->
      if not (List.mem bid rpo) then begin
        feed ";unreachable\n";
        hash_block bid
      end);
  !h

let ir_hash_of_graph g = Printf.sprintf "%016Lx" (ir_hash_int64 g)
let ir_hash_of_text text = ir_hash_of_graph (Ir.Parse.parse_graph text)

let resolved_spec config = Opt.Spec.to_string (Dbds.Driver.default_spec config)

let context_of_program (p : Ir.Program.t) =
  let classes =
    Hashtbl.fold (fun _ c acc -> c :: acc) p.Ir.Program.classes []
    |> List.sort (fun a b ->
           compare a.Ir.Program.cls_name b.Ir.Program.cls_name)
    |> List.map (fun c ->
           Printf.sprintf "class %s: %s" c.Ir.Program.cls_name
             (String.concat "," c.Ir.Program.fields))
  in
  let globals =
    match List.sort compare p.Ir.Program.globals with
    | [] -> []
    | gs -> [ "globals: " ^ String.concat "," gs ]
  in
  String.concat "\n" (classes @ globals)

let request_of_graph ?(context = "") ~config g =
  {
    rq_fn = Ir.Graph.name g;
    rq_ir_hash = ir_hash_of_graph g;
    rq_context = context;
    rq_config = Dbds.Config.to_line config;
    rq_spec = resolved_spec config;
    rq_cost_revision = Costmodel.Cost.revision;
  }

let request_of_text ?(context = "") ~config ~fn text =
  {
    rq_fn = fn;
    rq_ir_hash = ir_hash_of_text text;
    rq_context = context;
    rq_config = Dbds.Config.to_line config;
    rq_spec = resolved_spec config;
    rq_cost_revision = Costmodel.Cost.revision;
  }

(* Length-prefixed framing: a component can never bleed into the next
   (["ab" ^ "c"] vs ["a" ^ "bc"] hash differently). *)
let of_request r =
  let buf = Buffer.create 256 in
  let frame tag s =
    Buffer.add_string buf
      (Printf.sprintf "%s:%d:" tag (String.length s));
    Buffer.add_string buf s
  in
  frame "fn" r.rq_fn;
  frame "ir" r.rq_ir_hash;
  frame "context" r.rq_context;
  frame "config" r.rq_config;
  frame "spec" r.rq_spec;
  frame "cost" (string_of_int r.rq_cost_revision);
  fnv64 (Buffer.contents buf)
