(** The compile-server daemon: a Unix-domain-socket front end over a
    {!Broker}.

    One accepted connection is served per domain; a connection may carry
    any number of requests (the protocol is synchronous per connection —
    one reply per request, in order).  Malformed messages get a
    [rejected] reply (or close the connection when unreadable); they
    never take the server down.

    A [shutdown] request stops the accept loop, drains the broker
    ({!Broker.shutdown}) and removes the socket file; {!serve} then
    returns.  Concurrency still works under a shutdown race: requests
    already accepted are answered before their connections close. *)

(** Serve until a [shutdown] request arrives.  Creates (and on exit
    removes) the socket at [sock].  A pre-existing socket path is
    probed first: if something answers, startup is refused
    ([Invalid_argument]); if the probe is refused, denied, or finds
    nothing (a stale socket from a crashed server — including a
    permission-denied one), the debris is removed and startup
    proceeds.  [env] supplies transport/thread/disk capabilities
    (default {!Env.real}); pass the broker's environment.  [log]
    receives one line per served request (e.g. stderr logging);
    default: silent. *)
val serve :
  ?env:Env.t ->
  ?log:(string -> unit) ->
  sock:string ->
  broker:Broker.t ->
  unit ->
  unit
