(** The compile-server daemon: a Unix-domain-socket front end over a
    {!Broker}.

    One accepted connection is served per domain; a connection may carry
    any number of requests (the protocol is synchronous per connection —
    one reply per request, in order).  Malformed messages get a
    [rejected] reply (or close the connection when unreadable); they
    never take the server down.

    A [shutdown] request stops the accept loop, drains the broker
    ({!Broker.shutdown}) and removes the socket file; {!serve} then
    returns.  Concurrency still works under a shutdown race: requests
    already accepted are answered before their connections close. *)

(** Fleet-worker configuration.  With it, {!serve} additionally: joins
    the coordinator at [fl_coord] (advertising [fl_id] at [fl_addr])
    and heartbeats every [fl_beat_s]; answers the peer-exchange verbs
    [fetch] / [push] and the coordinator's [rebalance]; federates its
    store's lookup chain through the live membership view
    ({!Fleet.federate} with [fl_replicas] successor copies); and sends
    a best-effort [leave] on graceful shutdown. *)
type fleet = {
  fl_id : string;  (** node id on the ring *)
  fl_addr : string;  (** this node's socket, as peers reach it *)
  fl_coord : string;  (** coordinator socket *)
  fl_replicas : int;  (** successor copies pushed on publish *)
  fl_beat_s : float;  (** heartbeat period, seconds *)
}

(** A handle to stop the server from outside the protocol, abruptly: no
    [leave] is sent (the node must look crashed — the coordinator's
    sweep evicts it) and no reply drains are awaited beyond what is
    already in flight.  Built for the whole-system simulator's node
    kills, where closing the listener reliably wakes the accept. *)
type control = { stop : unit -> unit }

(** Serve until a [shutdown] request arrives.  Creates (and on exit
    removes) the socket at [sock].  A pre-existing socket path is
    probed first: if something answers, startup is refused
    ([Invalid_argument]); if the probe is refused, denied, or finds
    nothing (a stale socket from a crashed server — including a
    permission-denied one), the debris is removed and startup
    proceeds.  [env] supplies transport/thread/disk capabilities
    (default {!Env.real}); pass the broker's environment.  [log]
    receives one line per served request (e.g. stderr logging);
    default: silent.  [fleet] makes this server a fleet worker (see
    {!fleet}); [on_control] receives the kill handle before the accept
    loop starts. *)
val serve :
  ?env:Env.t ->
  ?log:(string -> unit) ->
  ?fleet:fleet ->
  ?on_control:(control -> unit) ->
  sock:string ->
  broker:Broker.t ->
  unit ->
  unit
