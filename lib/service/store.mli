(** The on-disk content-addressed artifact store.

    One file per digest ([<digest>.art] under the store directory)
    holding the optimized IR plus the compile effort that produced it.
    Three disciplines make it safe to share between processes and to
    survive crashes:

    - {e atomic publication}: artifacts are written to a temp file in
      the store directory and [rename]d into place, so a reader never
      observes a half-written entry under its final name;
    - {e checksum verification}: every read re-hashes the payload
      against the recorded checksum (and the recorded digest against
      the file name); any mismatch — a torn write, bit rot, a truncated
      file — evicts the entry and degrades to a {e miss}, never a
      crash;
    - {e size-bounded LRU GC}: publishing past [capacity] evicts
      least-recently-used artifacts until the budget holds.

    Store operations announce the {!Dbds.Faults.store_sites} fault
    sites, so the fuzzer can tear writes and publications
    deterministically; all injected faults (and real [Sys_error]s) are
    contained inside the store as degraded operations. *)

type entry = {
  ar_fn : string;  (** function name the artifact was compiled from *)
  ar_ir : string;  (** optimized IR, canonical {!Ir.Printer} text *)
  ar_work : int;  (** work units the original compilation charged *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;  (** includes corrupt / failed reads *)
  mutable writes : int;  (** successful publications *)
  mutable write_failures : int;  (** torn or failed writes, contained *)
  mutable read_failures : int;  (** injected / IO read failures, contained *)
  mutable corrupt : int;  (** checksum or format mismatches, evicted *)
  mutable evictions : int;  (** LRU GC victims *)
  mutable peer_hits : int;  (** federated lookups answered by a peer *)
  mutable peer_misses : int;  (** federated lookups no peer could answer *)
  mutable replicated : int;  (** artifact copies pushed to successors *)
}

type t

(** Open (creating if needed) a store rooted at [dir].  [capacity] is
    the artifact-byte budget the LRU GC maintains (default 8 MiB).
    [env] supplies clock/disk/lock capabilities (default {!Env.real});
    the whole-system simulator passes its own. *)
val create : ?env:Env.t -> ?capacity:int -> dir:string -> unit -> t

val dir : t -> string
val stats : t -> stats

(** Artifact bytes currently accounted to the store. *)
val used : t -> int

(** Look an artifact up by digest on the local disk only.  Bumps LRU
    recency on a hit; evicts and reports a miss on corruption. *)
val get : t -> digest:string -> entry option

(** Install the federation hooks (see {!Fleet.federate}, which builds
    them from the ring view).  [fetch] is consulted by {!fetch} after a
    local miss; [replicate] is called after every successful
    {!put} with the bytes actually published, returning how many peer
    copies landed.  Pass [None] to disconnect. *)
val set_federation :
  t ->
  fetch:(digest:string -> entry option) option ->
  replicate:(digest:string -> entry -> int) option ->
  unit

(** The federated lookup chain: local disk (via {!get}), then the peer
    hook when installed.  A peer hit is adopted into the local store
    (without re-replication) so the next lookup is a disk hit, and
    counted under [peer_hits]; the cold-compile fallback stays with the
    caller (the broker).  Hook failures degrade to a miss. *)
val fetch : t -> digest:string -> entry option

(** Publish an artifact under [digest] (atomic; runs the LRU GC).
    Failures are contained and counted, never raised.  When federation
    is installed and [replicate] is [true] (the default), the published
    bytes are offered to the digest's ring successors outside the store
    lock. *)
val put :
  ?replicate:bool ->
  t ->
  digest:string ->
  fn:string ->
  ir:string ->
  work:int ->
  unit

(** Digests currently indexed, most recently used first (a rebalance
    scan's worklist). *)
val digests : t -> string list

(** Drop one entry (used when a checksummed artifact later fails to
    parse — semantic corruption the checksum cannot see). *)
val discard : t -> digest:string -> unit

(** {!get} plus IR parsing, memoized in memory per live entry: repeat
    lookups of a digest skip the filesystem and the parser entirely
    (the content was checksum-verified when first read; the memo is
    dropped whenever the entry is evicted, discarded or republished).
    An artifact whose IR fails to parse is evicted like any other
    corrupt entry.  The returned graph is {e shared} between every
    caller of the same digest — treat it as read-only (restore/copy
    from it, never mutate it). *)
val get_graph : t -> digest:string -> (entry * Ir.Graph.t) option

(** The store as a {!Dbds.Driver.cache}: lookups digest the function's
    canonical request under the run's configuration (with [context] as
    the program facts — see {!Digest.context_of_program}); stores
    publish the optimized body under the same key.  Faults are armed per
    function from the config's plan, and every path is contained — the
    hooks never raise. *)
val driver_cache : ?context:string -> t -> Dbds.Driver.cache

val pp_stats : Format.formatter -> stats -> unit
