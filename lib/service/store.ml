(** On-disk content-addressed artifact store — see the interface for the
    atomicity / checksum / GC disciplines. *)

module F = Dbds.Faults

type entry = { ar_fn : string; ar_ir : string; ar_work : int }

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable write_failures : int;
  mutable read_failures : int;
  mutable corrupt : int;
  mutable evictions : int;
  mutable peer_hits : int;
  mutable peer_misses : int;
  mutable replicated : int;
}

type t = {
  env : Env.t;
  dir : string;
  capacity : int;
  mutex : Env.mutex;
  (* In-memory accounting only: recency-ordered (most recent first)
     [digest, bytes] pairs.  The filesystem stays the source of truth —
     a file published by another process is found by [get] even before
     it enters this index. *)
  mutable lru : (string * int) list;
  (* Parsed-artifact memo for [get_graph]: digest -> verified entry and
     its parsed graph.  Populated only after a successful disk read
     (so every artifact is checksum-verified at least once per
     process), dropped whenever the entry is evicted or discarded —
     the memo never outlives the file it mirrors. *)
  parsed : (string, entry * Ir.Graph.t) Hashtbl.t;
  stats : stats;
  (* Federation hooks, injected after construction (the store sits
     below the protocol/client layer in the module graph, so the fleet
     wires the network side in from above).  [peer_fetch] asks the
     digest's ring owners for an artifact this disk does not hold;
     [replicate] pushes a fresh publication to the digest's replica
     successors and returns how many copies landed. *)
  mutable peer_fetch : (digest:string -> entry option) option;
  mutable replicate : (digest:string -> entry -> int) option;
}

let fresh_stats () =
  {
    hits = 0;
    misses = 0;
    writes = 0;
    write_failures = 0;
    read_failures = 0;
    corrupt = 0;
    evictions = 0;
    peer_hits = 0;
    peer_misses = 0;
    replicated = 0;
  }

let magic = "dbds-artifact: v1"
let art_suffix = ".art"
let path_of t digest = Filename.concat t.dir (digest ^ art_suffix)

let locked t f =
  t.mutex.Env.lock ();
  Fun.protect ~finally:(fun () -> t.mutex.Env.unlock ()) f

(* ---- rendering / parsing ------------------------------------------- *)

let render ~digest ~fn ~ir ~work =
  String.concat "\n"
    [
      magic;
      "digest: " ^ digest;
      "function: " ^ fn;
      "work: " ^ string_of_int work;
      "checksum: " ^ Digest.fnv64 ir;
      "--- ir ---";
      ir;
    ]

(* Returns [None] on any structural or checksum mismatch. *)
let parse ~digest content =
  let marker = "\n--- ir ---\n" in
  let split_header () =
    match String.index_opt content '\000' with
    | Some _ -> None (* artifacts are text; NUL means garbage *)
    | None -> (
        let rec find i =
          if i + String.length marker > String.length content then None
          else if String.sub content i (String.length marker) = marker then
            Some i
          else find (i + 1)
        in
        match find 0 with
        | None -> None
        | Some i ->
            let header = String.sub content 0 i in
            let ir =
              String.sub content
                (i + String.length marker)
                (String.length content - i - String.length marker)
            in
            Some (header, ir))
  in
  match split_header () with
  | None -> None
  | Some (header, ir) -> (
      let field key =
        let prefix = key ^ ": " in
        String.split_on_char '\n' header
        |> List.find_map (fun line ->
               if String.length line > String.length prefix
                  && String.sub line 0 (String.length prefix) = prefix
               then
                 Some
                   (String.sub line (String.length prefix)
                      (String.length line - String.length prefix))
               else None)
      in
      match
        ( String.split_on_char '\n' header,
          field "digest",
          field "function",
          field "work",
          field "checksum" )
      with
      | first :: _, Some d, Some fn, Some work, Some checksum
        when first = magic ->
          if d <> digest then None
          else if Digest.fnv64 ir <> checksum then None
          else
            Option.map
              (fun w -> { ar_fn = fn; ar_ir = ir; ar_work = w })
              (int_of_string_opt work)
      | _ -> None)

(* ---- construction --------------------------------------------------- *)

let create ?(env = Env.real) ?(capacity = 8 * 1024 * 1024) ~dir () =
  (try env.Env.mkdir dir with Sys_error _ -> ());
  let lru =
    match env.Env.readdir dir with
    | exception Sys_error _ -> []
    | names ->
        (* Deterministic initial recency: name order (the environment
           sorts).  Real recency only matters once the store is warm. *)
        Array.to_list names
        |> List.filter_map (fun name ->
               if Filename.check_suffix name art_suffix then
                 let digest = Filename.chop_suffix name art_suffix in
                 match env.Env.file_size (Filename.concat dir name) with
                 | size -> Some (digest, size)
                 | exception Sys_error _ -> None
               else None)
  in
  {
    env;
    dir;
    capacity;
    mutex = env.Env.mutex ();
    lru;
    parsed = Hashtbl.create 64;
    stats = fresh_stats ();
    peer_fetch = None;
    replicate = None;
  }

let dir t = t.dir
let stats t = t.stats
let set_federation t ~fetch ~replicate =
  t.peer_fetch <- fetch;
  t.replicate <- replicate
let used_unlocked t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.lru
let used t = locked t (fun () -> used_unlocked t)

(* ---- index maintenance (call under the lock) ------------------------ *)

let index_remove t digest =
  t.lru <- List.filter (fun (d, _) -> d <> digest) t.lru

let index_touch t digest size =
  index_remove t digest;
  t.lru <- (digest, size) :: t.lru

let remove_file t digest =
  try t.env.Env.remove (path_of t digest) with Sys_error _ -> ()

let drop_unlocked t digest =
  remove_file t digest;
  Hashtbl.remove t.parsed digest;
  index_remove t digest

(* Evict least-recently-used artifacts until the byte budget holds.
   The head of [lru] (what was just published / hit) is never evicted,
   so a single oversized artifact still lives until the next publish. *)
let gc t =
  let rec loop () =
    if used_unlocked t > t.capacity then
      match List.rev t.lru with
      | [] | [ _ ] -> ()
      | (victim, _) :: _ ->
          drop_unlocked t victim;
          t.stats.evictions <- t.stats.evictions + 1;
          loop ()
  in
  loop ()

(* ---- operations ----------------------------------------------------- *)

let get t ~digest =
  locked t (fun () ->
      match
        F.hit F.Store_read;
        t.env.Env.read_file (path_of t digest)
      with
      | exception F.Injected _ ->
          t.stats.read_failures <- t.stats.read_failures + 1;
          t.stats.misses <- t.stats.misses + 1;
          None
      | exception Sys_error _ ->
          t.stats.misses <- t.stats.misses + 1;
          None
      | content -> (
          match parse ~digest content with
          | Some e ->
              index_touch t digest (String.length content);
              t.stats.hits <- t.stats.hits + 1;
              Some e
          | None ->
              (* A torn or rotten artifact is evicted and reported as a
                 miss — corruption must never stop a compilation. *)
              drop_unlocked t digest;
              t.stats.corrupt <- t.stats.corrupt + 1;
              t.stats.misses <- t.stats.misses + 1;
              None))

(* Mutate an artifact's IR subtly: bump the first integer literal.  The
   render below checksums the {e mutated} text, so every later read
   validates — a wrong artifact the store itself cannot detect.  Only
   reachable when [Store_corrupt] is armed explicitly: it is a
   deliberate bug planted for the whole-system simulator's end-to-end
   invariant checker (and its shrinker demo) to catch. *)
let corrupt_ir ir =
  let key = "const " in
  let klen = String.length key in
  let len = String.length ir in
  let rec find i =
    if i + klen > len then None
    else if String.sub ir i klen = key then Some (i + klen)
    else find (i + 1)
  in
  match find 0 with
  | None -> ir
  | Some j ->
      let k = ref j in
      if !k < len && ir.[!k] = '-' then incr k;
      while !k < len && ir.[!k] >= '0' && ir.[!k] <= '9' do
        incr k
      done;
      if !k = j then ir
      else
        let n = int_of_string (String.sub ir j (!k - j)) in
        String.sub ir 0 j
        ^ string_of_int (n + 1)
        ^ String.sub ir !k (len - !k)

(* The locked half of [put]: returns the payload actually published
   (post fault injection) so federation can replicate the bytes on
   disk, or [None] when the publication failed or tore. *)
let put_locked t ~digest ~fn ~ir ~work =
      let ir =
        match F.hit F.Store_corrupt with
        | () -> ir
        | exception F.Injected _ -> corrupt_ir ir
      in
      let content = render ~digest ~fn ~ir ~work in
      let final = path_of t digest in
      let tmp =
        Filename.concat t.dir (Printf.sprintf ".tmp.%s.%d" digest t.env.Env.pid)
      in
      let cleanup_tmp () = try t.env.Env.remove tmp with Sys_error _ -> () in
      match
        t.env.Env.mkdir t.dir;
        (* Fault sites around the temp write: an injected [Store_write]
           models a crash mid-payload.  Because the payload is still
           under its temp name, the store stays clean — the publication
           simply never happens. *)
        F.hit F.Store_write;
        t.env.Env.write_file tmp content;
        F.hit F.Store_write;
        (* The publication point.  An injected [Store_rename] models a
           torn publish — a crash where the entry appears under its
           final name truncated (what a real crash between data write
           and metadata flush can leave behind). *)
        F.hit F.Store_rename;
        t.env.Env.rename tmp final
      with
      | () ->
          (* Digest-addressed content is immutable in principle, but a
             republish may follow a torn predecessor — never let a
             stale memo shadow the fresh file. *)
          Hashtbl.remove t.parsed digest;
          index_touch t digest (String.length content);
          t.stats.writes <- t.stats.writes + 1;
          gc t;
          Some ir
      | exception F.Injected { site = F.Store_write; _ } ->
          cleanup_tmp ();
          t.stats.write_failures <- t.stats.write_failures + 1;
          None
      | exception F.Injected { site = F.Store_rename; _ } ->
          (* Simulate the tear: publish a truncated payload under the
             final name.  A later [get] sees the checksum mismatch,
             evicts it and recompiles. *)
          let torn = String.sub content 0 (String.length content / 2) in
          (try t.env.Env.write_file final torn with Sys_error _ -> ());
          cleanup_tmp ();
          Hashtbl.remove t.parsed digest;
          index_touch t digest (String.length torn);
          t.stats.write_failures <- t.stats.write_failures + 1;
          None
      | exception F.Injected _ | exception Sys_error _ ->
          cleanup_tmp ();
          t.stats.write_failures <- t.stats.write_failures + 1;
          None

let put ?(replicate = true) t ~digest ~fn ~ir ~work =
  let published = locked t (fun () -> put_locked t ~digest ~fn ~ir ~work) in
  (* Replication happens outside the store lock: it is network IO to
     peer stores, and the peers' replies must not serialize local
     lookups. *)
  match (published, t.replicate) with
  | Some ir', Some rep when replicate ->
      let copies =
        try rep ~digest { ar_fn = fn; ar_ir = ir'; ar_work = work }
        with _ -> 0
      in
      if copies > 0 then
        locked t (fun () -> t.stats.replicated <- t.stats.replicated + copies)
  | _ -> ()

let fetch t ~digest =
  match get t ~digest with
  | Some _ as hit -> hit
  | None -> (
      match t.peer_fetch with
      | None -> None
      | Some pf -> (
          match (try pf ~digest with _ -> None) with
          | Some e ->
              locked t (fun () ->
                  t.stats.peer_hits <- t.stats.peer_hits + 1);
              (* Adopt the artifact locally so the next lookup is a
                 disk hit; no re-replication — a fetched artifact
                 already lives with its ring owners. *)
              put ~replicate:false t ~digest ~fn:e.ar_fn ~ir:e.ar_ir
                ~work:e.ar_work;
              Some e
          | None ->
              locked t (fun () ->
                  t.stats.peer_misses <- t.stats.peer_misses + 1);
              None))

let digests t = locked t (fun () -> List.map fst t.lru)

let discard t ~digest =
  locked t (fun () ->
      drop_unlocked t digest;
      t.stats.corrupt <- t.stats.corrupt + 1)

(* [get] plus IR parsing, memoized.  A memo hit skips the filesystem
   entirely (the content was checksum-verified when first read); a
   checksummed artifact whose IR fails to parse — semantic corruption
   the checksum cannot see — is evicted like any other corrupt entry.
   Callers must treat the returned graph as read-only: it is shared
   between every caller until the entry is dropped. *)
let get_graph t ~digest =
  let memo =
    locked t (fun () ->
        match Hashtbl.find_opt t.parsed digest with
        | Some _ as found ->
            t.stats.hits <- t.stats.hits + 1;
            (match List.assoc_opt digest t.lru with
            | Some bytes -> index_touch t digest bytes
            | None -> ());
            found
        | None -> None)
  in
  match memo with
  | Some (e, g) -> Some (e, g)
  | None -> (
      match get t ~digest with
      | None -> None
      | Some e -> (
          match Ir.Parse.parse_graph e.ar_ir with
          | g ->
              locked t (fun () ->
                  (* Only memoize while the entry is still indexed — a
                     concurrent eviction between the read and here must
                     win. *)
                  if List.mem_assoc digest t.lru then
                    Hashtbl.replace t.parsed digest (e, g));
              Some (e, g)
          | exception _ ->
              discard t ~digest;
              None))

(* ---- the driver hook ------------------------------------------------ *)

let driver_cache ?(context = "") t =
  let lookup config g =
    try
      Dbds.Faults.armed config.Dbds.Config.fault_plan ~fn:(Ir.Graph.name g)
        (fun () ->
          let key =
            Digest.of_request (Digest.request_of_graph ~context ~config g)
          in
          match get_graph t ~digest:key with
          | None -> (None, key)
          | Some (_, g') ->
              (* [g'] is the shared memoized parse; the driver only
                 reads it (restoring copies it into the request's
                 graph). *)
              (Some g', key))
    with _ -> (None, "")
  in
  let store config ~key g ~work =
    if key <> "" then
      try
        Dbds.Faults.armed config.Dbds.Config.fault_plan ~fn:(Ir.Graph.name g)
          (fun () ->
            put t ~digest:key ~fn:(Ir.Graph.name g)
              ~ir:(Digest.canonical_of_graph g) ~work)
      with _ -> ()
  in
  { Dbds.Driver.cache_lookup = lookup; cache_store = store }

let pp_stats ppf s =
  Format.fprintf ppf
    "store: hits=%d misses=%d writes=%d write_failures=%d read_failures=%d \
     corrupt=%d evictions=%d peer_hits=%d peer_misses=%d replicated=%d"
    s.hits s.misses s.writes s.write_failures s.read_failures s.corrupt
    s.evictions s.peer_hits s.peer_misses s.replicated
