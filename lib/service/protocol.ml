(** Wire protocol — see the interface for the grammar. *)

type message = { verb : string; fields : (string * string) list }

let magic = "dbds/1"
let max_field_bytes = 16 * 1024 * 1024
let max_fields = 32

let write oc m =
  Printf.fprintf oc "%s %s %d\n" magic m.verb (List.length m.fields);
  List.iter
    (fun (name, payload) ->
      Printf.fprintf oc "%s %d\n" name (String.length payload);
      output_string oc payload;
      output_char oc '\n')
    m.fields;
  flush oc

let read ic =
  let ( let* ) r f = Result.bind r f in
  let line () =
    match input_line ic with
    | l -> Ok l
    | exception End_of_file -> Error "eof"
  in
  let* header = line () in
  let* verb, nfields =
    match String.split_on_char ' ' header with
    | [ m; verb; n ] when m = magic -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && n <= max_fields -> Ok (verb, n)
        | _ -> Error ("bad field count: " ^ header))
    | _ -> Error ("bad header: " ^ header)
  in
  let rec fields acc = function
    | 0 -> Ok (List.rev acc)
    | k -> (
        let* fheader = line () in
        match String.split_on_char ' ' fheader with
        | [ name; len ] -> (
            match int_of_string_opt len with
            | Some len when len >= 0 && len <= max_field_bytes -> (
                match
                  let payload = really_input_string ic len in
                  let nl = input_char ic in
                  (payload, nl)
                with
                | payload, '\n' -> fields ((name, payload) :: acc) (k - 1)
                | _ -> Error "missing payload terminator"
                | exception End_of_file -> Error "truncated payload")
            | _ -> Error ("bad field length: " ^ fheader))
        | _ -> Error ("bad field header: " ^ fheader))
  in
  let* fields = fields [] nfields in
  Ok { verb; fields }

(* ---- Env.conn transport -------------------------------------------- *)

(* One message renders to one string and travels as one [send]: under
   the simulator that makes a message a single network chunk, so chunk
   faults (drop/reorder/duplicate) act on whole protocol messages. *)
let render m =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %s %d\n" magic m.verb (List.length m.fields);
  List.iter
    (fun (name, payload) ->
      Printf.bprintf buf "%s %d\n" name (String.length payload);
      Buffer.add_string buf payload;
      Buffer.add_char buf '\n')
    m.fields;
  Buffer.contents buf

let write_conn (c : Env.conn) m = c.Env.send (render m)

let read_conn ?(deadline = Float.infinity) (c : Env.conn) =
  let ( let* ) r f = Result.bind r f in
  match
    let* header =
      match c.Env.recv_line deadline with
      | l -> Ok l
      | exception Env.Net (Env.Eof, _) -> Error "eof"
    in
    let* verb, nfields =
      match String.split_on_char ' ' header with
      | [ m; verb; n ] when m = magic -> (
          match int_of_string_opt n with
          | Some n when n >= 0 && n <= max_fields -> Ok (verb, n)
          | _ -> Error ("bad field count: " ^ header))
      | _ -> Error ("bad header: " ^ header)
    in
    let rec fields acc = function
      | 0 -> Ok (List.rev acc)
      | k -> (
          let* fheader =
            match c.Env.recv_line deadline with
            | l -> Ok l
            | exception Env.Net (Env.Eof, _) -> Error "truncated message"
          in
          match String.split_on_char ' ' fheader with
          | [ name; len ] -> (
              match int_of_string_opt len with
              | Some len when len >= 0 && len <= max_field_bytes -> (
                  match c.Env.recv_exact deadline (len + 1) with
                  | s when s.[len] = '\n' ->
                      fields ((name, String.sub s 0 len) :: acc) (k - 1)
                  | _ -> Error "missing payload terminator"
                  | exception Env.Net (Env.Eof, _) -> Error "truncated payload")
              | _ -> Error ("bad field length: " ^ fheader))
          | _ -> Error ("bad field header: " ^ fheader))
    in
    let* fields = fields [] nfields in
    Ok { verb; fields }
  with
  | r -> r
  | exception Env.Net (Env.Timeout, _) -> Error "timeout"
  | exception Env.Net (err, _) ->
      Error ("transport: " ^ Env.net_err_to_string err)

let field m name = List.assoc_opt name m.fields
let field_or m name default = Option.value (field m name) ~default

let reply_of_outcome (o : Broker.outcome) =
  let fields =
    match o with
    | Broker.Done { ir; work; from_cache } ->
        [
          ("status", if from_cache then "done-cache" else "done");
          ("ir", ir);
          ("work", string_of_int work);
        ]
    | Broker.Failed msg -> [ ("status", "failed"); ("message", msg) ]
    | Broker.Timed_out -> [ ("status", "timed-out") ]
    | Broker.Shed -> [ ("status", "shed") ]
    | Broker.Rejected msg -> [ ("status", "rejected"); ("message", msg) ]
  in
  { verb = "reply"; fields }

let outcome_of_reply m =
  if m.verb <> "reply" then Error ("expected a reply, got " ^ m.verb)
  else
    let msg () = field_or m "message" "" in
    match field m "status" with
    | Some "done" | Some "done-cache" -> (
        match (field m "ir", int_of_string_opt (field_or m "work" "")) with
        | Some ir, Some work ->
            Ok
              (Broker.Done
                 { ir; work; from_cache = field m "status" = Some "done-cache" })
        | _ -> Error "done reply missing ir/work")
    | Some "failed" -> Ok (Broker.Failed (msg ()))
    | Some "timed-out" -> Ok Broker.Timed_out
    | Some "shed" -> Ok Broker.Shed
    | Some "rejected" -> Ok (Broker.Rejected (msg ()))
    | Some s -> Error ("unknown status: " ^ s)
    | None -> Error "reply missing status"

(* ---- membership views ----------------------------------------------- *)

let view_fields (v : Member.view) =
  [
    ("epoch", string_of_int v.Member.v_epoch);
    ("nodes", Member.string_of_nodes v.Member.v_nodes);
  ]

let view_of_message m =
  match
    ( int_of_string_opt (field_or m "epoch" ""),
      Option.bind (field m "nodes") Member.nodes_of_string )
  with
  | Some epoch, Some nodes -> Some { Member.v_epoch = epoch; v_nodes = nodes }
  | _ -> None
