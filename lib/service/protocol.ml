(** Wire protocol — see the interface for the grammar. *)

type message = { verb : string; fields : (string * string) list }

let magic = "dbds/1"
let max_field_bytes = 16 * 1024 * 1024
let max_fields = 32

let write oc m =
  Printf.fprintf oc "%s %s %d\n" magic m.verb (List.length m.fields);
  List.iter
    (fun (name, payload) ->
      Printf.fprintf oc "%s %d\n" name (String.length payload);
      output_string oc payload;
      output_char oc '\n')
    m.fields;
  flush oc

let read ic =
  let ( let* ) r f = Result.bind r f in
  let line () =
    match input_line ic with
    | l -> Ok l
    | exception End_of_file -> Error "eof"
  in
  let* header = line () in
  let* verb, nfields =
    match String.split_on_char ' ' header with
    | [ m; verb; n ] when m = magic -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && n <= max_fields -> Ok (verb, n)
        | _ -> Error ("bad field count: " ^ header))
    | _ -> Error ("bad header: " ^ header)
  in
  let rec fields acc = function
    | 0 -> Ok (List.rev acc)
    | k -> (
        let* fheader = line () in
        match String.split_on_char ' ' fheader with
        | [ name; len ] -> (
            match int_of_string_opt len with
            | Some len when len >= 0 && len <= max_field_bytes -> (
                match
                  let payload = really_input_string ic len in
                  let nl = input_char ic in
                  (payload, nl)
                with
                | payload, '\n' -> fields ((name, payload) :: acc) (k - 1)
                | _ -> Error "missing payload terminator"
                | exception End_of_file -> Error "truncated payload")
            | _ -> Error ("bad field length: " ^ fheader))
        | _ -> Error ("bad field header: " ^ fheader))
  in
  let* fields = fields [] nfields in
  Ok { verb; fields }

(* ---- Env.conn transport -------------------------------------------- *)

(* One message renders to one string and travels as one [send]: under
   the simulator that makes a message a single network chunk, so chunk
   faults (drop/reorder/duplicate) act on whole protocol messages. *)
let render m =
  let buf = Buffer.create 256 in
  Printf.bprintf buf "%s %s %d\n" magic m.verb (List.length m.fields);
  List.iter
    (fun (name, payload) ->
      Printf.bprintf buf "%s %d\n" name (String.length payload);
      Buffer.add_string buf payload;
      Buffer.add_char buf '\n')
    m.fields;
  Buffer.contents buf

let write_conn (c : Env.conn) m = c.Env.send (render m)

let read_conn ?(deadline = Float.infinity) (c : Env.conn) =
  let ( let* ) r f = Result.bind r f in
  match
    let* header =
      match c.Env.recv_line deadline with
      | l -> Ok l
      | exception Env.Net (Env.Eof, _) -> Error "eof"
    in
    let* verb, nfields =
      match String.split_on_char ' ' header with
      | [ m; verb; n ] when m = magic -> (
          match int_of_string_opt n with
          | Some n when n >= 0 && n <= max_fields -> Ok (verb, n)
          | _ -> Error ("bad field count: " ^ header))
      | _ -> Error ("bad header: " ^ header)
    in
    let rec fields acc = function
      | 0 -> Ok (List.rev acc)
      | k -> (
          let* fheader =
            match c.Env.recv_line deadline with
            | l -> Ok l
            | exception Env.Net (Env.Eof, _) -> Error "truncated message"
          in
          match String.split_on_char ' ' fheader with
          | [ name; len ] -> (
              match int_of_string_opt len with
              | Some len when len >= 0 && len <= max_field_bytes -> (
                  match c.Env.recv_exact deadline (len + 1) with
                  | s when s.[len] = '\n' ->
                      fields ((name, String.sub s 0 len) :: acc) (k - 1)
                  | _ -> Error "missing payload terminator"
                  | exception Env.Net (Env.Eof, _) -> Error "truncated payload")
              | _ -> Error ("bad field length: " ^ fheader))
          | _ -> Error ("bad field header: " ^ fheader))
    in
    let* fields = fields [] nfields in
    Ok { verb; fields }
  with
  | r -> r
  | exception Env.Net (Env.Timeout, _) -> Error "timeout"
  | exception Env.Net (err, _) ->
      Error ("transport: " ^ Env.net_err_to_string err)

(* ---- binary framing -------------------------------------------------- *)

(* The compact frame negotiated by [hello framing=binary]:

     frame = 0xBF vcode:u8 nfields:u8 field* ;
     field = namelen:u8 name payloadlen:u32be payload ;

   Verb codes below; code 0 is the extension escape — the verb string
   travels as a leading "!verb" field, so the framing never constrains
   the verb set. *)

let binary_magic = '\xBF'

let verb_codes =
  [
    ("compile", 1);
    ("reply", 2);
    ("ping", 3);
    ("stats", 4);
    ("shutdown", 5);
    ("hello", 6);
    ("lookup", 7);
    ("fetch", 8);
    ("push", 9);
    ("join", 10);
    ("beat", 11);
    ("leave", 12);
    ("view", 13);
    ("rebalance", 14);
  ]

let code_of_verb v = List.assoc_opt v verb_codes

let verb_of_code c =
  List.find_map (fun (v, k) -> if k = c then Some v else None) verb_codes

let render_binary m =
  let code, fields =
    match code_of_verb m.verb with
    | Some c -> (c, m.fields)
    | None -> (0, ("!verb", m.verb) :: m.fields)
  in
  if List.length fields > max_fields then
    invalid_arg "Protocol.render_binary: too many fields";
  let buf = Buffer.create 256 in
  Buffer.add_char buf binary_magic;
  Buffer.add_char buf (Char.chr code);
  Buffer.add_char buf (Char.chr (List.length fields));
  List.iter
    (fun (name, payload) ->
      if String.length name > 255 then
        invalid_arg "Protocol.render_binary: field name too long";
      if String.length payload > max_field_bytes then
        invalid_arg "Protocol.render_binary: field too large";
      Buffer.add_char buf (Char.chr (String.length name));
      Buffer.add_string buf name;
      let l = String.length payload in
      Buffer.add_char buf (Char.chr ((l lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((l lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((l lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (l land 0xff));
      Buffer.add_string buf payload)
    fields;
  Buffer.contents buf

(* Resolve the verb of a decoded binary frame; code 0 pops "!verb". *)
let resolve_binary_verb code fields =
  if code = 0 then
    match fields with
    | ("!verb", v) :: rest when v <> "" -> Ok { verb = v; fields = rest }
    | _ -> Error "extended frame missing verb"
  else
    match verb_of_code code with
    | Some verb -> Ok { verb; fields }
    | None -> Error (Printf.sprintf "unknown verb code %d" code)

let write_conn_binary (c : Env.conn) m = c.Env.send (render_binary m)

let read_conn_binary ?(deadline = Float.infinity) (c : Env.conn) =
  match
    let hdr = c.Env.recv_exact deadline 3 in
    if hdr.[0] <> binary_magic then Error "bad binary magic"
    else
      let code = Char.code hdr.[1] and nf = Char.code hdr.[2] in
      if nf > max_fields then Error "too many fields"
      else
        let rec fields acc k =
          if k = 0 then Ok (List.rev acc)
          else
            let nlen = Char.code (c.Env.recv_exact deadline 1).[0] in
            let name = c.Env.recv_exact deadline nlen in
            let l4 = c.Env.recv_exact deadline 4 in
            let plen =
              (Char.code l4.[0] lsl 24)
              lor (Char.code l4.[1] lsl 16)
              lor (Char.code l4.[2] lsl 8)
              lor Char.code l4.[3]
            in
            if plen > max_field_bytes then Error "field too large"
            else
              let payload = c.Env.recv_exact deadline plen in
              fields ((name, payload) :: acc) (k - 1)
        in
        Result.bind (fields [] nf) (resolve_binary_verb code)
  with
  | r -> r
  | exception Env.Net (Env.Eof, _) -> Error "eof"
  | exception Env.Net (Env.Timeout, _) -> Error "timeout"
  | exception Env.Net (err, _) ->
      Error ("transport: " ^ Env.net_err_to_string err)

(* ---- incremental decoders -------------------------------------------- *)

type progress = Msg of message * int | More | Err of string

(* A header or field-header line must fit in this many bytes — the
   bound that keeps an attacker from growing the unparsed buffer with
   a newline-free stream. *)
let max_line_bytes = 4096

let decode buf =
  let len = String.length buf in
  let line_at pos =
    let limit = min len (pos + max_line_bytes) in
    let rec find i =
      if i < limit then
        if buf.[i] = '\n' then `Line (String.sub buf pos (i - pos), i + 1)
        else find (i + 1)
      else if limit < pos + max_line_bytes then `More
      else `Err "header line too long"
    in
    find pos
  in
  if len > 0 && buf.[0] = binary_magic then
    (* A binary frame can sit newline-free inside the text decoder's
       line bound forever — fail it fast; binary must be negotiated. *)
    Err "binary frame without negotiation"
  else
    match line_at 0 with
    | `More -> More
    | `Err e -> Err e
  | `Line (header, pos) -> (
      match String.split_on_char ' ' header with
      | [ m; verb; n ] when m = magic -> (
          match int_of_string_opt n with
          | Some n when n >= 0 && n <= max_fields ->
              let rec fields acc pos = function
                | 0 -> Msg ({ verb; fields = List.rev acc }, pos)
                | k -> (
                    match line_at pos with
                    | `More -> More
                    | `Err e -> Err e
                    | `Line (fheader, pos) -> (
                        match String.split_on_char ' ' fheader with
                        | [ name; l ] -> (
                            match int_of_string_opt l with
                            | Some l when l >= 0 && l <= max_field_bytes ->
                                if pos + l + 1 > len then More
                                else if buf.[pos + l] <> '\n' then
                                  Err "missing payload terminator"
                                else
                                  fields
                                    ((name, String.sub buf pos l) :: acc)
                                    (pos + l + 1) (k - 1)
                            | _ -> Err ("bad field length: " ^ fheader))
                        | _ -> Err ("bad field header: " ^ fheader)))
              in
              fields [] pos n
          | _ -> Err ("bad field count: " ^ header))
      | _ -> Err ("bad header: " ^ header))

let decode_binary buf =
  let len = String.length buf in
  if len = 0 then More
  else if buf.[0] <> binary_magic then Err "bad binary magic"
  else if len < 3 then More
  else
    let code = Char.code buf.[1] in
    let nf = Char.code buf.[2] in
    (* Reject an unknown verb code at the header — don't buffer its
       fields first (code 0 is the extension escape, always valid). *)
    if code <> 0 && verb_of_code code = None then
      Err (Printf.sprintf "unknown verb code %d" code)
    else if nf > max_fields then Err "too many fields"
    else
      let rec fields acc pos k =
        if k = 0 then
          match resolve_binary_verb code (List.rev acc) with
          | Ok m -> Msg (m, pos)
          | Error e -> Err e
        else if pos >= len then More
        else
          let nlen = Char.code buf.[pos] in
          if pos + 1 + nlen + 4 > len then More
          else
            let name = String.sub buf (pos + 1) nlen in
            let lp = pos + 1 + nlen in
            let plen =
              (Char.code buf.[lp] lsl 24)
              lor (Char.code buf.[lp + 1] lsl 16)
              lor (Char.code buf.[lp + 2] lsl 8)
              lor Char.code buf.[lp + 3]
            in
            if plen > max_field_bytes then Err "field too large"
            else if lp + 4 + plen > len then More
            else
              fields
                ((name, String.sub buf (lp + 4) plen) :: acc)
                (lp + 4 + plen) (k - 1)
      in
      fields [] 3 nf

let field m name = List.assoc_opt name m.fields
let field_or m name default = Option.value (field m name) ~default

let retry_after_of_reply m =
  Option.bind (field m "retry-after-ms") int_of_string_opt

let reply_of_outcome (o : Broker.outcome) =
  let fields =
    match o with
    | Broker.Done { ir; work; from_cache } ->
        [
          ("status", if from_cache then "done-cache" else "done");
          ("ir", ir);
          ("work", string_of_int work);
        ]
    | Broker.Failed msg -> [ ("status", "failed"); ("message", msg) ]
    | Broker.Timed_out -> [ ("status", "timed-out") ]
    | Broker.Shed -> [ ("status", "shed") ]
    | Broker.Rejected msg -> [ ("status", "rejected"); ("message", msg) ]
  in
  { verb = "reply"; fields }

let outcome_of_reply m =
  if m.verb <> "reply" then Error ("expected a reply, got " ^ m.verb)
  else
    let msg () = field_or m "message" "" in
    match field m "status" with
    | Some "done" | Some "done-cache" -> (
        match (field m "ir", int_of_string_opt (field_or m "work" "")) with
        | Some ir, Some work ->
            Ok
              (Broker.Done
                 { ir; work; from_cache = field m "status" = Some "done-cache" })
        | _ -> Error "done reply missing ir/work")
    | Some "failed" -> Ok (Broker.Failed (msg ()))
    | Some "timed-out" -> Ok Broker.Timed_out
    | Some "shed" -> Ok Broker.Shed
    | Some "rejected" -> Ok (Broker.Rejected (msg ()))
    | Some s -> Error ("unknown status: " ^ s)
    | None -> Error "reply missing status"

(* ---- membership views ----------------------------------------------- *)

let view_fields (v : Member.view) =
  [
    ("epoch", string_of_int v.Member.v_epoch);
    ("nodes", Member.string_of_nodes v.Member.v_nodes);
  ]

let view_of_message m =
  match
    ( int_of_string_opt (field_or m "epoch" ""),
      Option.bind (field m "nodes") Member.nodes_of_string )
  with
  | Some epoch, Some nodes -> Some { Member.v_epoch = epoch; v_nodes = nodes }
  | _ -> None
