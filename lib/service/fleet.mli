(** Fleet plumbing: peer store exchange, store federation, rebalance
    scans, and the membership coordinator.

    A fleet is [K] ordinary {!Server}s (each with its own {!Store} and
    {!Broker}) plus one coordinator.  Workers join the coordinator and
    heartbeat; the coordinator tracks the roster in a {!Member} table
    and pushes epoch-stamped views to every worker on membership change
    ([rebalance] verb), so each worker can re-home artifacts it no
    longer owns under the new {!Ring}.  Artifact exchange between
    stores uses two verbs of the existing length-prefixed protocol:
    [fetch] (digest → artifact or miss) and [push] (artifact → ok). *)

(** Ask the store at [addr] for an artifact.  [None] on a miss, a dead
    peer, or any protocol error — peer fetches must degrade to a miss,
    never block a lookup (connect deadline 0.25s, IO deadline 5s). *)
val peer_fetch :
  ?env:Env.t -> addr:string -> digest:string -> unit -> Store.entry option

(** Offer an artifact to the store at [addr]; [false] when it did not
    land. *)
val peer_push :
  ?env:Env.t -> addr:string -> digest:string -> Store.entry -> bool

(** Install the federated lookup chain on [store]: after a local miss,
    {!Store.fetch} asks the digest's ring owners (at most
    [1 + replicas] nodes, [self] excluded); after a local publish, the
    artifact is pushed to the digest's replica successors.  [view] is
    read on every operation (the server updates it on [rebalance]
    messages); the ring is rebuilt only when the epoch changes. *)
val federate :
  ?env:Env.t ->
  ?replicas:int ->
  self:string ->
  view:(unit -> Member.view) ->
  Store.t ->
  unit

(** One rebalance sweep: push every locally-held artifact whose owner
    set under [view] no longer includes [self] to its new owner.  Local
    copies stay (the store is a cache; LRU GC reclaims them).  Returns
    the number of artifacts moved. *)
val rebalance :
  ?env:Env.t -> ?replicas:int -> self:string -> view:Member.view -> Store.t -> int

(** Protocol fields of a view ([epoch], [nodes]) and the inverse. *)
val view_fields : Member.view -> (string * string) list

val view_of_message : Protocol.message -> Member.view option

(** Run the membership coordinator on [sock]; blocks until a [shutdown]
    request.  Speaks [join]/[beat]/[leave]/[view]/[ping]/[stats]/
    [shutdown]; on every membership change — join, leave, or a
    heartbeat older than [beat_timeout_s] (swept at twice that rate) —
    it pushes the new view to every member as a [rebalance] message. *)
val coordinator :
  ?env:Env.t ->
  ?log:(string -> unit) ->
  ?beat_timeout_s:float ->
  sock:string ->
  unit ->
  unit
