(** Fleet membership: a node roster with heartbeat crash detection and
    epoch-stamped views.

    The coordinator owns one roster.  Workers [join] with their id and
    socket address, then [beat] periodically; a periodic [sweep]
    removes nodes whose last heartbeat is older than [timeout_s] (a
    crashed or partitioned node stops beating).  Every membership
    change — join, address change, leave, crash — bumps the {e epoch},
    so a router holding a view can tell at a glance whether its ring is
    stale.  All clocks are the injected {!Env.t}'s monotonic clock, so
    crash detection is deterministic under the simulator. *)

type view = {
  v_epoch : int;
  v_nodes : (string * string) list;  (** (node id, socket addr), sorted *)
}

type t

val create : ?env:Env.t -> ?timeout_s:float -> unit -> t

(** Add (or refresh) a node; bumps the epoch when the roster actually
    changes.  Returns the post-join view. *)
val join : t -> id:string -> addr:string -> view

(** Remove a node; bumps the epoch when it was present. *)
val leave : t -> id:string -> view

(** Refresh a node's heartbeat.  [None] when the node is unknown (it
    crashed out of the roster and must re-join). *)
val beat : t -> id:string -> int option

(** Drop every node whose heartbeat is older than [timeout_s]; returns
    the expired ids (sorted).  One epoch bump covers the whole batch. *)
val sweep : t -> string list

val view : t -> view
val epoch : t -> int

(** Wire form of a node list: one ["id addr"] pair per line.  Ids and
    addresses must not contain spaces or newlines (socket paths do
    not). *)
val string_of_nodes : (string * string) list -> string

val nodes_of_string : string -> (string * string) list option
