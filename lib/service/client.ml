(** Client side of the service protocol. *)

type t = { env : Env.t; conn : Env.conn; io_deadline_s : float }

exception
  Connect_failed of {
    sock : string;
    attempts : int;
    elapsed_s : float;
    last : Env.net_err;
  }

let () =
  Printexc.register_printer (function
    | Connect_failed { sock; attempts; elapsed_s; last } ->
        Some
          (Printf.sprintf
             "Client.Connect_failed(%s after %d attempts over %.2fs: %s)" sock
             attempts elapsed_s
             (Env.net_err_to_string last))
    | _ -> None)

(* Full-jitter exponential backoff: the [k]-th retry sleeps a uniform
   draw from [0, min (base * 2^k) cap] — seeded through the
   environment, so a simulated run replays the same waits.  Retries
   stop once the next attempt could not start before [deadline_s] has
   elapsed. *)
let connect ?(env = Env.real) ?(deadline_s = 0.) ?(base_backoff_s = 0.02)
    ?(max_backoff_s = 1.0) ?(io_deadline_s = Float.infinity) ~sock () =
  let start = env.Env.mono () in
  let give_up = start +. deadline_s in
  let rec attempt k =
    match env.Env.connect sock with
    | conn -> { env; conn; io_deadline_s }
    | exception Env.Net (((Env.Not_found | Env.Refused) as last), _) ->
        let backoff =
          let cap = Float.min max_backoff_s (base_backoff_s *. (2. ** float_of_int k)) in
          let ms = max 1 (int_of_float (cap *. 1000.)) in
          float_of_int (env.Env.rand_int ms) /. 1000.
        in
        if env.Env.mono () +. backoff > give_up then
          raise
            (Connect_failed
               {
                 sock;
                 attempts = k + 1;
                 elapsed_s = env.Env.mono () -. start;
                 last;
               })
        else begin
          env.Env.sleep backoff;
          attempt (k + 1)
        end
  in
  attempt 0

let close t = t.conn.Env.close_conn ()

let roundtrip t (m : Protocol.message) =
  let deadline =
    if t.io_deadline_s = Float.infinity then Float.infinity
    else t.env.Env.mono () +. t.io_deadline_s
  in
  match
    Protocol.write_conn t.conn m;
    Protocol.read_conn ~deadline t.conn
  with
  | Ok r -> Ok r
  | Error "eof" -> Error "transport: connection closed"
  | Error e -> Error e
  | exception Env.Net (err, _) ->
      Error ("transport: " ^ Env.net_err_to_string err)

let ping t =
  match roundtrip t { Protocol.verb = "ping"; fields = [] } with
  | Ok m -> Protocol.field m "status" = Some "ok"
  | Error _ -> false

let compile ?deadline_ms ?delay_ms ~config ~fn ~ir t =
  let opt name v =
    Option.to_list (Option.map (fun n -> (name, string_of_int n)) v)
  in
  let m =
    {
      Protocol.verb = "compile";
      fields =
        [ ("config", Dbds.Config.to_line config); ("fn", fn); ("ir", ir) ]
        @ opt "deadline-ms" deadline_ms @ opt "delay-ms" delay_ms
        (* [Config.to_line] deliberately drops the fault plan (it must
           not split the artifact digest), so injection travels as its
           own test-hook header, like [delay-ms]. *)
        @ (match config.Dbds.Config.fault_plan with
          | None -> []
          | Some p -> [ ("inject", Dbds.Faults.to_string p) ]);
    }
  in
  Result.bind (roundtrip t m) Protocol.outcome_of_reply

let stats t =
  Result.bind
    (roundtrip t { Protocol.verb = "stats"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" ->
          Ok
            ( Protocol.field_or m "broker" "",
              Protocol.field_or m "store" "",
              Protocol.field_or m "counts" "" )
      | _ -> Error "stats refused")

let shutdown_server t =
  Result.bind
    (roundtrip t { Protocol.verb = "shutdown"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" -> Ok ()
      | _ -> Error "shutdown refused")
