(** Client side of the service protocol. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?(retries = 0) ?(retry_interval_s = 0.05) ~sock () =
  let rec attempt left =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX sock)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd ->
        {
          fd;
          ic = Unix.in_channel_of_descr fd;
          oc = Unix.out_channel_of_descr fd;
        }
    | exception (Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) as e)
      ->
        if left <= 0 then raise e
        else begin
          Unix.sleepf retry_interval_s;
          attempt (left - 1)
        end
  in
  attempt retries

let close t =
  (try flush t.oc with Sys_error _ -> ());
  close_out_noerr t.oc (* closes the descriptor; [ic] shares it *)

let roundtrip t (m : Protocol.message) =
  match
    Protocol.write t.oc m;
    Protocol.read t.ic
  with
  | r -> r
  | exception Sys_error e -> Error ("transport: " ^ e)
  | exception End_of_file -> Error "transport: connection closed"

let ping t =
  match roundtrip t { Protocol.verb = "ping"; fields = [] } with
  | Ok m -> Protocol.field m "status" = Some "ok"
  | Error _ -> false

let compile ?deadline_ms ?delay_ms ~config ~fn ~ir t =
  let opt name v =
    Option.to_list (Option.map (fun n -> (name, string_of_int n)) v)
  in
  let m =
    {
      Protocol.verb = "compile";
      fields =
        [ ("config", Dbds.Config.to_line config); ("fn", fn); ("ir", ir) ]
        @ opt "deadline-ms" deadline_ms @ opt "delay-ms" delay_ms;
    }
  in
  Result.bind (roundtrip t m) Protocol.outcome_of_reply

let stats t =
  Result.bind
    (roundtrip t { Protocol.verb = "stats"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" ->
          Ok
            ( Protocol.field_or m "broker" "",
              Protocol.field_or m "store" "",
              Protocol.field_or m "counts" "" )
      | _ -> Error "stats refused")

let shutdown_server t =
  Result.bind
    (roundtrip t { Protocol.verb = "shutdown"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" -> Ok ()
      | _ -> Error "shutdown refused")
