(** Client side of the service protocol. *)

type t = {
  env : Env.t;
  conn : Env.conn;
  io_deadline_s : float;
  mutable binary : bool;  (** negotiated via [hello framing=binary] *)
}

exception
  Connect_failed of {
    sock : string;
    attempts : int;
    elapsed_s : float;
    last : Env.net_err;
  }

let () =
  Printexc.register_printer (function
    | Connect_failed { sock; attempts; elapsed_s; last } ->
        Some
          (Printf.sprintf
             "Client.Connect_failed(%s after %d attempts over %.2fs: %s)" sock
             attempts elapsed_s
             (Env.net_err_to_string last))
    | _ -> None)

(* Full-jitter exponential backoff: the [k]-th retry sleeps a uniform
   draw from [0, min (base * 2^k) cap] — seeded through the
   environment, so a simulated run replays the same waits.  Retries
   stop once the next attempt could not start before [deadline_s] has
   elapsed. *)
let roundtrip t (m : Protocol.message) =
  let deadline =
    if t.io_deadline_s = Float.infinity then Float.infinity
    else t.env.Env.mono () +. t.io_deadline_s
  in
  match
    if t.binary then begin
      Protocol.write_conn_binary t.conn m;
      Protocol.read_conn_binary ~deadline t.conn
    end
    else begin
      Protocol.write_conn t.conn m;
      Protocol.read_conn ~deadline t.conn
    end
  with
  | Ok r -> Ok r
  | Error "eof" -> Error "transport: connection closed"
  | Error e -> Error e
  | exception Env.Net (err, _) ->
      Error ("transport: " ^ Env.net_err_to_string err)

(* Introduce this connection to a frontdoor: tenant id, default lane,
   and optionally the binary framing (switched only once the server
   confirms it).  A classic server answers [rejected] — the client
   degrades to anonymous text, so old servers keep working. *)
let hello ?tenant ?lane ~binary t =
  let opt name v = Option.to_list (Option.map (fun x -> (name, x)) v) in
  let fields =
    opt "tenant" tenant @ opt "lane" lane
    @ if binary then [ ("framing", "binary") ] else []
  in
  match roundtrip t { Protocol.verb = "hello"; fields } with
  | Ok m when Protocol.field m "status" = Some "ok" ->
      if binary && Protocol.field m "framing" = Some "binary" then
        t.binary <- true;
      true
  | Ok _ | Error _ -> false

let connect ?(env = Env.real) ?(deadline_s = 0.) ?(base_backoff_s = 0.02)
    ?(max_backoff_s = 1.0) ?(io_deadline_s = Float.infinity) ?tenant ?lane
    ?(binary = false) ~sock () =
  let start = env.Env.mono () in
  let give_up = start +. deadline_s in
  let rec attempt k =
    match env.Env.connect sock with
    | conn ->
        let t = { env; conn; io_deadline_s; binary = false } in
        (match (tenant, lane, binary) with
        | None, None, false -> ()
        | _ -> ignore (hello ?tenant ?lane ~binary t));
        t
    | exception Env.Net (((Env.Not_found | Env.Refused) as last), _) ->
        let backoff =
          let cap = Float.min max_backoff_s (base_backoff_s *. (2. ** float_of_int k)) in
          let ms = max 1 (int_of_float (cap *. 1000.)) in
          float_of_int (env.Env.rand_int ms) /. 1000.
        in
        if env.Env.mono () +. backoff > give_up then
          raise
            (Connect_failed
               {
                 sock;
                 attempts = k + 1;
                 elapsed_s = env.Env.mono () -. start;
                 last;
               })
        else begin
          env.Env.sleep backoff;
          attempt (k + 1)
        end
  in
  attempt 0

let close t = t.conn.Env.close_conn ()

let ping t =
  match roundtrip t { Protocol.verb = "ping"; fields = [] } with
  | Ok m -> Protocol.field m "status" = Some "ok"
  | Error _ -> false

let compile_msg ?deadline_ms ?delay_ms ?lane ~config ~fn ~ir () =
  let opt name v =
    Option.to_list (Option.map (fun n -> (name, string_of_int n)) v)
  in
  {
    Protocol.verb = "compile";
    fields =
      [ ("config", Dbds.Config.to_line config); ("fn", fn); ("ir", ir) ]
      @ opt "deadline-ms" deadline_ms @ opt "delay-ms" delay_ms
      @ Option.to_list (Option.map (fun l -> ("lane", l)) lane)
      (* [Config.to_line] deliberately drops the fault plan (it must
         not split the artifact digest), so injection travels as its
         own test-hook header, like [delay-ms]. *)
      @ (match config.Dbds.Config.fault_plan with
        | None -> []
        | Some p -> [ ("inject", Dbds.Faults.to_string p) ]);
  }

let compile ?deadline_ms ?delay_ms ~config ~fn ~ir t =
  Result.bind
    (roundtrip t (compile_msg ?deadline_ms ?delay_ms ~config ~fn ~ir ()))
    Protocol.outcome_of_reply

let compile_ex ?deadline_ms ?delay_ms ?lane ~config ~fn ~ir t =
  Result.bind
    (roundtrip t (compile_msg ?deadline_ms ?delay_ms ?lane ~config ~fn ~ir ()))
    (fun reply ->
      Result.map
        (fun o -> (o, Protocol.retry_after_of_reply reply))
        (Protocol.outcome_of_reply reply))

let lookup ~digest t =
  Result.bind
    (roundtrip t { Protocol.verb = "lookup"; fields = [ ("digest", digest) ] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "hit" -> (
          match Protocol.field m "ir" with
          | Some ir -> Ok (Some ir)
          | None -> Error "malformed hit reply")
      | Some "miss" -> Ok None
      | _ -> Error ("lookup refused: " ^ Protocol.field_or m "message" ""))

let stats t =
  Result.bind
    (roundtrip t { Protocol.verb = "stats"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" ->
          Ok
            ( Protocol.field_or m "broker" "",
              Protocol.field_or m "store" "",
              Protocol.field_or m "counts" "" )
      | _ -> Error "stats refused")

let shutdown_server t =
  Result.bind
    (roundtrip t { Protocol.verb = "shutdown"; fields = [] })
    (fun m ->
      match Protocol.field m "status" with
      | Some "ok" -> Ok ()
      | _ -> Error "shutdown refused")

(* ---- fleet-aware routing --------------------------------------------- *)

module Router = struct
  type client = t

  type t = {
    renv : Env.t;
    coord : string option;  (** coordinator socket, for view refreshes *)
    mutex : Env.mutex;
    mutable view : Member.view;
    mutable ring : Ring.t;
    conns : (string, client) Hashtbl.t;  (** node id -> live connection *)
    connect_deadline_s : float;
    io_deadline_s : float;
  }

  let locked r f =
    r.mutex.Env.lock ();
    Fun.protect ~finally:(fun () -> r.mutex.Env.unlock ()) f

  let make env coord view ~connect_deadline_s ~io_deadline_s =
    {
      renv = env;
      coord;
      mutex = env.Env.mutex ();
      view;
      ring = Ring.create (List.map fst view.Member.v_nodes);
      conns = Hashtbl.create 8;
      connect_deadline_s;
      io_deadline_s;
    }

  let view r = locked r (fun () -> r.view)

  let drop_conn r id =
    locked r (fun () ->
        match Hashtbl.find_opt r.conns id with
        | Some c ->
            Hashtbl.remove r.conns id;
            Some c
        | None -> None)
    |> Option.iter (fun c -> try close c with _ -> ())

  (* Adopt a newer view: swap the ring and hang up on departed nodes
     (their artifacts re-home; the next request re-routes). *)
  let update_view r (v : Member.view) =
    let stale =
      locked r (fun () ->
          if v.Member.v_epoch <= r.view.Member.v_epoch then []
          else begin
            r.view <- v;
            r.ring <- Ring.create (List.map fst v.Member.v_nodes);
            Hashtbl.fold
              (fun id _ acc ->
                if List.mem_assoc id v.Member.v_nodes then acc else id :: acc)
              r.conns []
          end)
    in
    List.iter (drop_conn r) stale

  let fetch_view ?(env = Env.real) ?(deadline_s = 1.0) ~sock () =
    let c = connect ~env ~deadline_s ~io_deadline_s:10.0 ~sock () in
    Fun.protect ~finally:(fun () -> close c) @@ fun () ->
    match roundtrip c { Protocol.verb = "view"; fields = [] } with
    | Ok m when Protocol.field m "status" = Some "ok" -> (
        match Protocol.view_of_message m with
        | Some v -> Ok v
        | None -> Error "malformed view reply")
    | Ok m ->
        Error ("view refused: " ^ Protocol.field_or m "message" "")
    | Error e -> Error e

  let refresh r =
    match r.coord with
    | None -> ()
    | Some sock -> (
        match
          try fetch_view ~env:r.renv ~deadline_s:r.connect_deadline_s ~sock ()
          with _ -> Error "unreachable"
        with
        | Ok v -> update_view r v
        | Error _ -> ())

  let create ?(env = Env.real) ?(connect_deadline_s = 1.0)
      ?(io_deadline_s = Float.infinity) ~coord () =
    match fetch_view ~env ~deadline_s:connect_deadline_s ~sock:coord () with
    | Ok v ->
        make env (Some coord) v ~connect_deadline_s ~io_deadline_s
    | Error e -> failwith ("Router.create: " ^ e)

  let of_view ?(env = Env.real) ?(connect_deadline_s = 1.0)
      ?(io_deadline_s = Float.infinity) view =
    make env None view ~connect_deadline_s ~io_deadline_s

  let close_all r =
    let cs =
      locked r (fun () ->
          let cs = Hashtbl.fold (fun _ c acc -> c :: acc) r.conns [] in
          Hashtbl.reset r.conns;
          cs)
    in
    List.iter (fun c -> try close c with _ -> ()) cs

  let node_conn r id addr =
    match locked r (fun () -> Hashtbl.find_opt r.conns id) with
    | Some c -> Some c
    | None -> (
        match
          connect ~env:r.renv ~deadline_s:r.connect_deadline_s
            ~io_deadline_s:r.io_deadline_s ~sock:addr ()
        with
        | c ->
            locked r (fun () -> Hashtbl.replace r.conns id c);
            Some c
        | exception _ -> None)

  (* One node, at most two tries: the cached connection (which may have
     died with a previous server incarnation), then one fresh connect. *)
  let try_node r id addr req =
    let attempt c =
      match req c with
      | Ok _ as ok -> Some ok
      | Error _ ->
          drop_conn r id;
          None
    in
    match node_conn r id addr with
    | None -> None
    | Some c -> (
        match attempt c with
        | Some ok -> Some ok
        | None -> Option.bind (node_conn r id addr) attempt)

  (* Route by the request digest: owner first, then its ring successors
     — a dead or partitioned owner fails over to the nodes most likely
     to hold a replica. *)
  let candidates r key =
    locked r (fun () ->
        let n = List.length r.view.Member.v_nodes in
        List.filter_map
          (fun id ->
            Option.map (fun a -> (id, a)) (List.assoc_opt id r.view.Member.v_nodes))
          (Ring.successors r.ring key ~n))

  let compile ?deadline_ms ?delay_ms ~config ~fn ~ir r =
    let key =
      match Digest.request_of_text ~config ~fn ir with
      | rq -> Digest.of_request rq
      | exception _ -> fn (* unparseable: any node will reject it *)
    in
    let req c = compile ?deadline_ms ?delay_ms ~config ~fn ~ir c in
    let sweep () =
      List.find_map (fun (id, addr) -> try_node r id addr req) (candidates r key)
    in
    match sweep () with
    | Some outcome -> outcome
    | None -> (
        (* Every known node failed: the view may be stale (crashes,
           rejoins).  Refresh it and sweep once more. *)
        let before = (view r).Member.v_epoch in
        refresh r;
        let retry =
          if (view r).Member.v_epoch <> before then sweep () else None
        in
        match retry with
        | Some outcome -> outcome
        | None -> Error "no fleet node reachable")
end
