(** The wire protocol of the compilation service: a small
    length-prefixed text protocol over a Unix-domain socket.

    A {e message} is a verb plus an ordered list of named fields.
    On the wire:

    {v
    message   = header field* ;
    header    = "dbds/1 " verb " " nfields LF ;
    field     = name " " nbytes LF payload LF ;
    payload   = nbytes bytes, verbatim (may contain LF) ;
    v}

    Field payloads are length-prefixed, so IR text travels unescaped.
    Both sides read with {!read}, which validates the magic, bounds
    field sizes and counts, and returns [Error] (never raises) on
    malformed input.

    Verbs (client → server): [compile] (fields [config], [fn], [ir],
    optional [deadline-ms], [delay-ms]), [stats], [ping], [shutdown].
    Server → client: [reply] with a [status] field
    ([ok], [done], [done-cache], [failed], [timed-out], [shed],
    [rejected]) plus verb-specific fields ([ir], [work], [message],
    [broker], [store]). *)

type message = { verb : string; fields : (string * string) list }

(** Hard ceilings enforced by {!read}: per-field bytes and fields per
    message.  Oversized input is a protocol error, not an allocation. *)
val max_field_bytes : int

val max_fields : int

val write : out_channel -> message -> unit

(** Read one message.  [Error] covers EOF at a message boundary
    (rendered ["eof"]), truncation, bad magic, and limit violations. *)
val read : in_channel -> (message, string) result

(** Render one message as its text wire form — what {!write_conn}
    sends as one chunk. *)
val render : message -> string

(** {!write} over an {!Env.conn}: the whole message is rendered and
    sent as one chunk (so simulated chunk faults act on whole
    messages).  May raise {!Env.Net}. *)
val write_conn : Env.conn -> message -> unit

(** {!read} over an {!Env.conn}.  [deadline] is absolute on the
    environment's monotonic clock (default: wait forever); expiry and
    transport failures come back as [Error] ("timeout",
    "transport: ..."), EOF at a message boundary as [Error "eof"] —
    never an exception. *)
val read_conn : ?deadline:float -> Env.conn -> (message, string) result

(** {1 Binary framing}

    The compact frame negotiated per connection by
    [hello framing=binary] (the text protocol stays the default):

    {v
    frame = 0xBF vcode:u8 nfields:u8 field* ;
    field = namelen:u8 name payloadlen:u32be payload ;
    v}

    Verbs map to one-byte codes; code [0] is the extension escape —
    the verb string travels as a leading ["!verb"] field, so new verbs
    never need a framing bump. *)

(** The frame magic byte, [0xBF]. *)
val binary_magic : char

val code_of_verb : string -> int option
val verb_of_code : int -> string option

(** Render one message as one binary frame (one send → one simulated
    chunk, like {!render}'s text form). *)
val render_binary : message -> string

val write_conn_binary : Env.conn -> message -> unit

(** Blocking binary read over an {!Env.conn}; same error discipline as
    {!read_conn}. *)
val read_conn_binary : ?deadline:float -> Env.conn -> (message, string) result

(** {1 Incremental decoding}

    The event-loop half of the protocol: feed the unparsed head of a
    connection's receive buffer, get back a complete message plus how
    many bytes it consumed, a request for more bytes, or a protocol
    error (the frontdoor answers it and closes the connection).  Pure
    functions — they never raise on any input. *)

type progress = Msg of message * int | More | Err of string

(** A header/field-header line must terminate within this many bytes —
    bounds buffer growth against newline-free garbage. *)
val max_line_bytes : int

(** Incremental text-protocol decoder. *)
val decode : string -> progress

(** Incremental binary-frame decoder. *)
val decode_binary : string -> progress

(** First payload under [name], if present. *)
val field : message -> string -> string option

(** {!field} with a default. *)
val field_or : message -> string -> string -> string

(** Build a [reply] carrying a {!Broker.outcome}. *)
val reply_of_outcome : Broker.outcome -> message

(** Parse a [reply] back into a {!Broker.outcome}. *)
val outcome_of_reply : message -> (Broker.outcome, string) result

(** The structured backoff hint a shed reply carries
    ([retry-after-ms]), when present and well-formed. *)
val retry_after_of_reply : message -> int option

(** Protocol fields of a membership view ([epoch], [nodes]); used by
    the fleet verbs [join] (reply), [view] (reply) and [rebalance]
    (request). *)
val view_fields : Member.view -> (string * string) list

(** Parse a view out of a message carrying {!view_fields}. *)
val view_of_message : message -> Member.view option
