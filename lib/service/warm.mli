(** Warm-starting the tiered VM from the artifact store.

    Builds the {!Vm.Engine} [warm_lookup] / [warm_spill] hooks over a
    {!Store}.  Artifacts are keyed by the digest of the function's
    {e pristine} tier-0 body under the engine's compile configuration,
    with two deliberate keying choices:

    - the {e profile is excluded}: a body compiled under one profile is
      reused under another.  That trades peak-shape fidelity for cross-
      process reuse — the body is still a correct optimized body of the
      same function (branch probabilities only steer optimization
      choices, never semantics), and {!Vm.Deopt} guards the residual
      risk exactly as it guards any stale compile;
    - the request context is the marker ["vm-warm"], so profile-driven
      VM artifacts never collide with the AOT driver-cache artifacts of
      the same function (those are compiled without a profile). *)

(** The engine hooks over [store] for a compile configuration.  Both are
    contained: store faults and parse failures degrade to a miss / a
    dropped spill, never an exception into the engine. *)
val hooks :
  config:Dbds.Config.t ->
  Store.t ->
  (fn:string -> pristine:Ir.Graph.t -> (Ir.Graph.t * int) option)
  * (fn:string -> pristine:Ir.Graph.t -> optimized:Ir.Graph.t -> work:int -> unit)
