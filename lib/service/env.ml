(** The service's capability environment — see the interface. *)

type net_err =
  | Refused
  | Denied
  | Not_found
  | Reset
  | Timeout
  | Closed
  | Eof
  | Other of string

exception Net of net_err * string

let net_err_to_string = function
  | Refused -> "connection refused"
  | Denied -> "permission denied"
  | Not_found -> "no such socket"
  | Reset -> "connection reset"
  | Timeout -> "timed out"
  | Closed -> "closed"
  | Eof -> "end of stream"
  | Other s -> s

let () =
  Printexc.register_printer (function
    | Net (err, ctx) ->
        Some (Printf.sprintf "Env.Net(%s, %s)" (net_err_to_string err) ctx)
    | _ -> None)

let fresh_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1

type conn = {
  id : int;
  send : string -> unit;
  recv_exact : float -> int -> string;
  recv_line : float -> string;
  try_recv : int -> string;
  try_send : string -> int;
  close_conn : unit -> unit;
}

type listener = {
  lid : int;
  accept : unit -> conn;
  try_accept : unit -> conn option;
  close_listener : unit -> unit;
}

type poller = {
  poll : conns:conn list -> listeners:listener list -> float -> unit;
  wake : unit -> unit;
  close_poller : unit -> unit;
}

type cond = { wait : unit -> unit; broadcast : unit -> unit }

type mutex = {
  lock : unit -> unit;
  unlock : unit -> unit;
  new_cond : unit -> cond;
}

type thread = { join : unit -> unit }

type t = {
  now : unit -> float;
  mono : unit -> float;
  sleep : float -> unit;
  rand_int : int -> int;
  pid : int;
  spawn : string -> (unit -> unit) -> thread;
  mutex : unit -> mutex;
  listen : string -> listener;
  connect : string -> conn;
  poller : unit -> poller;
  file_exists : string -> bool;
  mkdir : string -> unit;
  readdir : string -> string array;
  file_size : string -> int;
  read_file : string -> string;
  write_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
}

(* ------------------------------------------------------------------ *)
(* Real implementation                                                 *)
(* ------------------------------------------------------------------ *)

let net_of_unix = function
  | Unix.ECONNREFUSED -> Refused
  | Unix.EACCES -> Denied
  | Unix.ENOENT -> Not_found
  | Unix.ECONNRESET | Unix.EPIPE -> Reset
  | e -> Other (Unix.error_message e)

(* This toolchain has no [Unix.clock_gettime], so the monotonic clock
   is the wall clock clamped to never decrease — coarse, but it
   guarantees deadlines computed against it survive a backwards NTP
   step, which is all the broker needs. *)
let real_mono =
  let last = Atomic.make 0. in
  fun () ->
    let t = Unix.gettimeofday () in
    let rec bump () =
      let l = Atomic.get last in
      if t > l then if Atomic.compare_and_set last l t then t else bump ()
      else l
    in
    bump ()

let real_rand =
  let m = Mutex.create () in
  let st = lazy (Random.State.make_self_init ()) in
  fun bound ->
    Mutex.lock m;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () -> Random.State.int (Lazy.force st) bound)

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The poller finds descriptors by conn/listener id through this
   registry.  [fde_ready] reports bytes already buffered in userland —
   they would never wake a [select], so poll checks them first. *)
type fd_entry = { fde_fd : Unix.file_descr; fde_ready : unit -> bool }

let fd_registry : (int, fd_entry) Hashtbl.t = Hashtbl.create 64
let fd_registry_mx = Mutex.create ()

let register_fd id entry =
  Mutex.lock fd_registry_mx;
  Hashtbl.replace fd_registry id entry;
  Mutex.unlock fd_registry_mx

let unregister_fd id =
  Mutex.lock fd_registry_mx;
  Hashtbl.remove fd_registry id;
  Mutex.unlock fd_registry_mx

let find_fd id =
  Mutex.lock fd_registry_mx;
  let r = Hashtbl.find_opt fd_registry id in
  Mutex.unlock fd_registry_mx;
  r

(* A buffered byte-stream over a connected descriptor.  Receives honor
   an absolute deadline on [real_mono] via [select]. *)
let real_conn fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let closed = ref false in
  let eof = ref false in
  let id = fresh_id () in
  let fill deadline =
    (* Block (up to [deadline]) for at least one more byte. *)
    let rec wait () =
      if !closed then raise (Net (Closed, "recv on closed connection"));
      let remaining =
        if deadline = Float.infinity then -1.0
        else
          let r = deadline -. real_mono () in
          if r <= 0. then raise (Net (Timeout, "recv deadline expired"))
          else r
      in
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> raise (Net (Timeout, "recv deadline expired"))
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> raise (Net (Eof, "recv"))
          | n -> Buffer.add_subbytes buf chunk 0 n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          | exception Unix.Unix_error (e, _, _) ->
              raise (Net (net_of_unix e, "recv")))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    wait ()
  in
  let take n =
    let s = Buffer.sub buf 0 n in
    let rest = Buffer.sub buf n (Buffer.length buf - n) in
    Buffer.clear buf;
    Buffer.add_string buf rest;
    s
  in
  let recv_exact deadline n =
    while Buffer.length buf < n do
      fill deadline
    done;
    take n
  in
  let recv_line deadline =
    let rec find_nl () =
      match String.index_opt (Buffer.contents buf) '\n' with
      | Some i -> i
      | None ->
          fill deadline;
          find_nl ()
    in
    let i = find_nl () in
    let line = take (i + 1) in
    String.sub line 0 i
  in
  (* Pull whatever the kernel has ready into [buf] without blocking. *)
  let try_fill () =
    if not !eof then
      match Unix.select [ fd ] [] [] 0.0 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | n -> Buffer.add_subbytes buf chunk 0 n
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              ()
          | exception Unix.Unix_error (e, _, _) ->
              raise (Net (net_of_unix e, "recv")))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  let try_recv n =
    if !closed then raise (Net (Closed, "recv on closed connection"));
    if Buffer.length buf = 0 then try_fill ();
    let k = min n (Buffer.length buf) in
    if k > 0 then take k
    else if !eof then raise (Net (Eof, "recv"))
    else ""
  in
  let send s =
    if !closed then raise (Net (Closed, "send on closed connection"));
    let len = String.length s in
    let rec push off =
      if off < len then
        match Unix.write_substring fd s off (len - off) with
        | n -> push (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> push off
        | exception Unix.Unix_error (e, _, _) ->
            raise (Net (net_of_unix e, "send"))
    in
    push 0
  in
  let try_send s =
    if !closed then raise (Net (Closed, "send on closed connection"));
    let len = String.length s in
    if len = 0 then 0
    else
      match Unix.select [] [ fd ] [] 0.0 with
      | _, [], _ -> 0
      | _ -> (
          match Unix.write_substring fd s 0 len with
          | n -> n
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              0
          | exception Unix.Unix_error (e, _, _) ->
              raise (Net (net_of_unix e, "send")))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
  in
  let close_conn () =
    if not !closed then begin
      closed := true;
      unregister_fd id;
      close_quiet fd
    end
  in
  register_fd id
    { fde_fd = fd; fde_ready = (fun () -> Buffer.length buf > 0 || !eof) };
  { id; send; recv_exact; recv_line; try_recv; try_send; close_conn }

let real_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX sock)
   with Unix.Unix_error (e, _, _) ->
     close_quiet fd;
     raise (Net (net_of_unix e, "connect " ^ sock)));
  real_conn fd

let real_listen sock =
  let fd =
    try
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX sock);
         Unix.listen fd 64
       with e ->
         close_quiet fd;
         raise e);
      fd
    with Unix.Unix_error (e, _, _) ->
      raise (Net (net_of_unix e, "listen " ^ sock))
  in
  let closed = ref false in
  let lid = fresh_id () in
  let rec accept () =
    if !closed then raise (Net (Closed, "accept on closed listener"));
    match Unix.accept fd with
    | cfd, _ -> real_conn cfd
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        accept ()
    | exception Unix.Unix_error (e, _, _) ->
        if !closed then raise (Net (Closed, "accept on closed listener"))
        else raise (Net (net_of_unix e, "accept"))
  in
  let try_accept () =
    if !closed then raise (Net (Closed, "accept on closed listener"));
    Unix.set_nonblock fd;
    Fun.protect
      ~finally:(fun () ->
        try Unix.clear_nonblock fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.accept fd with
        | cfd, _ -> Some (real_conn cfd)
        | exception
            Unix.Unix_error
              ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED),
                _,
                _ ) ->
            None
        | exception Unix.Unix_error (e, _, _) ->
            if !closed then raise (Net (Closed, "accept on closed listener"))
            else raise (Net (net_of_unix e, "accept")))
  in
  let close_listener () =
    if not !closed then begin
      closed := true;
      unregister_fd lid;
      close_quiet fd
    end
  in
  register_fd lid { fde_fd = fd; fde_ready = (fun () -> false) };
  { lid; accept; try_accept; close_listener }

(* Readiness via [select] over the registered descriptors, plus a
   self-pipe so a dispatcher thread can interrupt a sleeping loop.
   Bytes already buffered in a conn's userland buffer count as ready
   before the [select] — the kernel has forgotten about them. *)
let real_poller () =
  let rfd, wfd = Unix.pipe () in
  Unix.set_nonblock rfd;
  Unix.set_nonblock wfd;
  let closed = ref false in
  let scratch = Bytes.create 256 in
  let drain () =
    let rec go () =
      match Unix.read rfd scratch 0 (Bytes.length scratch) with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let poll ~conns ~listeners deadline =
    if !closed then raise (Net (Closed, "poll on closed poller"));
    let entries =
      List.filter_map (fun (c : conn) -> find_fd c.id) conns
      @ List.filter_map (fun (l : listener) -> find_fd l.lid) listeners
    in
    if List.exists (fun e -> e.fde_ready ()) entries then drain ()
    else begin
      let fds = rfd :: List.map (fun e -> e.fde_fd) entries in
      let timeout =
        if deadline = Float.infinity then -1.0
        else Float.max 0. (deadline -. real_mono ())
      in
      match Unix.select fds [] [] timeout with
      | _ -> drain ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EBADF), _, _) -> ()
    end
  in
  let wake () =
    try ignore (Unix.write_substring wfd "w" 0 1) with Unix.Unix_error _ -> ()
  in
  let close_poller () =
    if not !closed then begin
      closed := true;
      close_quiet rfd;
      close_quiet wfd
    end
  in
  { poll; wake; close_poller }

let real_mutex () =
  let m = Mutex.create () in
  {
    lock = (fun () -> Mutex.lock m);
    unlock = (fun () -> Mutex.unlock m);
    new_cond =
      (fun () ->
        let c = Condition.create () in
        {
          wait = (fun () -> Condition.wait c m);
          broadcast = (fun () -> Condition.broadcast c);
        });
  }

(* Disk operations raise [Sys_error] on failure, matching the channel
   API the store was written against. *)
let sys_error ctx e =
  raise (Sys_error (Printf.sprintf "%s: %s" ctx (Unix.error_message e)))

let real =
  {
    now = Unix.gettimeofday;
    mono = real_mono;
    sleep = Unix.sleepf;
    rand_int = real_rand;
    pid = Unix.getpid ();
    spawn =
      (fun _name f ->
        let d = Domain.spawn f in
        { join = (fun () -> Domain.join d) });
    mutex = real_mutex;
    listen = real_listen;
    connect = real_connect;
    poller = (fun () -> real_poller ());
    file_exists = Sys.file_exists;
    mkdir =
      (fun path ->
        try Unix.mkdir path 0o755 with
        | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
        | Unix.Unix_error (e, _, _) -> sys_error ("mkdir " ^ path) e);
    readdir =
      (fun path ->
        let names = Sys.readdir path in
        Array.sort compare names;
        names);
    file_size =
      (fun path ->
        try (Unix.stat path).Unix.st_size
        with Unix.Unix_error (e, _, _) -> sys_error ("stat " ^ path) e);
    read_file =
      (fun path -> In_channel.with_open_bin path In_channel.input_all);
    write_file =
      (fun path content ->
        Out_channel.with_open_bin path (fun oc ->
            Out_channel.output_string oc content));
    rename = Sys.rename;
    remove = Sys.remove;
  }
