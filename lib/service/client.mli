(** Client side of the compilation service protocol. *)

type t

(** Connection gave out: [attempts] tries over [elapsed_s] seconds, the
    final one failing with [last]. *)
exception
  Connect_failed of {
    sock : string;
    attempts : int;
    elapsed_s : float;
    last : Env.net_err;
  }

(** Connect to a server socket.  While the socket is missing or refuses
    ([ENOENT]/[ECONNREFUSED] — a server still starting), retries with
    {e full-jitter exponential backoff}: the [k]-th retry sleeps a
    uniform draw from [0, min (base_backoff_s * 2^k) max_backoff_s]
    (defaults 0.02 / 1.0), drawn through [env]'s seeded generator so a
    simulated run replays the same waits.  [deadline_s] bounds the
    whole dance (default 0 — a single attempt, no waiting);
    {!Connect_failed} reports exhaustion.  [io_deadline_s] bounds each
    later request/reply round-trip (default: none).  [env] defaults to
    {!Env.real}.

    [tenant], [lane] and [binary] introduce the connection to a
    frontdoor with a [hello] once connected: [tenant] names the quota
    account, [lane] ("interactive"/"batch") sets the default priority
    lane, and [binary] requests the compact framing — switched only
    when the server confirms it, so against a classic server (which
    rejects the unknown verb) the client degrades to anonymous text
    and keeps working. *)
val connect :
  ?env:Env.t ->
  ?deadline_s:float ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?io_deadline_s:float ->
  ?tenant:string ->
  ?lane:string ->
  ?binary:bool ->
  sock:string ->
  unit ->
  t

val close : t -> unit

(** One request/reply exchange (bounded by the connection's
    [io_deadline_s]).  [Error] covers transport and protocol failures;
    the fleet layers build their verbs ([fetch], [push], [join], ...)
    on this. *)
val roundtrip : t -> Protocol.message -> (Protocol.message, string) result

(** Round-trip a [ping]; [false] on any error. *)
val ping : t -> bool

(** Submit one function; the IR travels as printed text.  [deadline_ms]
    and [delay_ms] map to the protocol's optional headers.  [Error]
    covers transport/protocol failures (service-level refusals come back
    as [Ok Shed], [Ok (Rejected _)], ...). *)
val compile :
  ?deadline_ms:int ->
  ?delay_ms:int ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  t ->
  (Broker.outcome, string) result

(** The request message {!compile} sends — exposed for callers that
    pipeline raw messages over an {!Env.conn} (load generators, tests). *)
val compile_msg :
  ?deadline_ms:int ->
  ?delay_ms:int ->
  ?lane:string ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  unit ->
  Protocol.message

(** {!compile}, also surfacing the structured backoff hint a frontdoor
    shed carries ([retry-after-ms]) and an optional per-request [lane]
    override. *)
val compile_ex :
  ?deadline_ms:int ->
  ?delay_ms:int ->
  ?lane:string ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  t ->
  (Broker.outcome * int option, string) result

(** Digest-keyed artifact fetch through the frontdoor's [lookup] verb:
    [Ok (Some ir)] on a hit, [Ok None] on a miss. *)
val lookup : digest:string -> t -> (string option, string) result

(** Fetch the server's stats: [(broker_line, store_line, counts_line)] —
    see {!Server} for the counts grammar. *)
val stats : t -> (string * string * string, string) result

(** Ask the server to shut down (it acknowledges, then stops). *)
val shutdown_server : t -> (unit, string) result

(** The fleet-aware client: hashes each request's digest onto the
    membership view's consistent-hash ring, sends it to the owner, and
    fails over along the ring successors (the nodes most likely to hold
    a replica) on transport errors.  When every known node fails, the
    view is refreshed from the coordinator and the sweep retried once —
    so a router survives node kills and rejoins without caller-side
    logic. *)
module Router : sig
  type t

  (** Fetch an epoch-stamped view from a coordinator socket. *)
  val fetch_view :
    ?env:Env.t ->
    ?deadline_s:float ->
    sock:string ->
    unit ->
    (Member.view, string) result

  (** Build a router against a coordinator (fetches the initial view;
      raises [Failure] when the coordinator is unreachable within
      [connect_deadline_s]).  [connect_deadline_s] also bounds each
      per-node connect during failover (default 1s); [io_deadline_s]
      bounds each request round-trip (default: none). *)
  val create :
    ?env:Env.t ->
    ?connect_deadline_s:float ->
    ?io_deadline_s:float ->
    coord:string ->
    unit ->
    t

  (** Build a router from a static view (no coordinator, no
      refreshes). *)
  val of_view :
    ?env:Env.t ->
    ?connect_deadline_s:float ->
    ?io_deadline_s:float ->
    Member.view ->
    t

  val view : t -> Member.view

  (** Adopt [view] if its epoch is newer; connections to departed
      nodes are closed. *)
  val update_view : t -> Member.view -> unit

  (** Re-fetch the view from the coordinator (no-op without one; a dead
      coordinator leaves the current view in place). *)
  val refresh : t -> unit

  (** Route one compile — see {!Client.compile} for the fields.
      [Error] only when no fleet node could be reached at all. *)
  val compile :
    ?deadline_ms:int ->
    ?delay_ms:int ->
    config:Dbds.Config.t ->
    fn:string ->
    ir:string ->
    t ->
    (Broker.outcome, string) result

  (** Close every cached connection (the router stays usable; the next
      request reconnects). *)
  val close_all : t -> unit
end
