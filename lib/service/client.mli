(** Client side of the compilation service protocol. *)

type t

(** Connection gave out: [attempts] tries over [elapsed_s] seconds, the
    final one failing with [last]. *)
exception
  Connect_failed of {
    sock : string;
    attempts : int;
    elapsed_s : float;
    last : Env.net_err;
  }

(** Connect to a server socket.  While the socket is missing or refuses
    ([ENOENT]/[ECONNREFUSED] — a server still starting), retries with
    {e full-jitter exponential backoff}: the [k]-th retry sleeps a
    uniform draw from [0, min (base_backoff_s * 2^k) max_backoff_s]
    (defaults 0.02 / 1.0), drawn through [env]'s seeded generator so a
    simulated run replays the same waits.  [deadline_s] bounds the
    whole dance (default 0 — a single attempt, no waiting);
    {!Connect_failed} reports exhaustion.  [io_deadline_s] bounds each
    later request/reply round-trip (default: none).  [env] defaults to
    {!Env.real}. *)
val connect :
  ?env:Env.t ->
  ?deadline_s:float ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?io_deadline_s:float ->
  sock:string ->
  unit ->
  t

val close : t -> unit

(** Round-trip a [ping]; [false] on any error. *)
val ping : t -> bool

(** Submit one function; the IR travels as printed text.  [deadline_ms]
    and [delay_ms] map to the protocol's optional headers.  [Error]
    covers transport/protocol failures (service-level refusals come back
    as [Ok Shed], [Ok (Rejected _)], ...). *)
val compile :
  ?deadline_ms:int ->
  ?delay_ms:int ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  t ->
  (Broker.outcome, string) result

(** Fetch the server's stats: [(broker_line, store_line, counts_line)] —
    see {!Server} for the counts grammar. *)
val stats : t -> (string * string * string, string) result

(** Ask the server to shut down (it acknowledges, then stops). *)
val shutdown_server : t -> (unit, string) result
