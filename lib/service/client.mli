(** Client side of the compilation service protocol. *)

type t

(** Connect to a server socket.  [retries] × [retry_interval_s] poll for
    the socket to appear first (defaults 0 / 0.05 — no waiting), so a
    freshly forked server can be awaited without shell sleeps.
    @raise Unix.Unix_error when the server stays unreachable. *)
val connect :
  ?retries:int -> ?retry_interval_s:float -> sock:string -> unit -> t

val close : t -> unit

(** Round-trip a [ping]; [false] on any error. *)
val ping : t -> bool

(** Submit one function; the IR travels as printed text.  [deadline_ms]
    and [delay_ms] map to the protocol's optional headers.  [Error]
    covers transport/protocol failures (service-level refusals come back
    as [Ok Shed], [Ok (Rejected _)], ...). *)
val compile :
  ?deadline_ms:int ->
  ?delay_ms:int ->
  config:Dbds.Config.t ->
  fn:string ->
  ir:string ->
  t ->
  (Broker.outcome, string) result

(** Fetch the server's stats: [(broker_line, store_line, counts_line)] —
    see {!Server} for the counts grammar. *)
val stats : t -> (string * string * string, string) result

(** Ask the server to shut down (it acknowledges, then stops). *)
val shutdown_server : t -> (unit, string) result
