(** Consistent-hash ring over node ids.

    Each node contributes [vnodes] points on a ring keyed by
    {!Digest.fnv64} pushed through a murmur3-style avalanche finalizer
    (FNV-1a alone clusters similar keys into runs); a request digest
    maps to the owner whose point is the first at or clockwise-after
    the digest's hash.  The
    construction is a pure function of the node-id set and [vnodes] —
    no randomness, no insertion-order or jobs dependence — and adding
    or removing one node only remaps the keys that fall on that node's
    points (about [1/N] of the space), which is what makes digest
    sharding safe across membership changes. *)

type t

(** Build a ring from node ids (duplicates collapse; order is
    irrelevant).  [vnodes] defaults to 64 points per node, clamped to
    at least 1. *)
val create : ?vnodes:int -> string list -> t

(** The distinct node ids on the ring, sorted. *)
val nodes : t -> string list

val is_empty : t -> bool
val vnodes : t -> int

(** [add t id] / [remove t id] return the ring with [id] present /
    absent, same [vnodes].  Idempotent. *)
val add : t -> string -> t

val remove : t -> string -> t

(** The owner of [key] — [None] on an empty ring. *)
val lookup : t -> string -> string option

(** The first [n] distinct nodes clockwise from [key]'s point: the
    owner followed by the replica successors.  Shorter than [n] when
    the ring has fewer nodes. *)
val successors : t -> string -> n:int -> string list
