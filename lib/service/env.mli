(** The service's capability environment — every effect the compile
    service performs (clocks, sleeping, randomness, threads, locks,
    transport, disk) goes through this record.

    Two implementations exist: {!real}, which maps each capability to
    the obvious [Unix]/[Sys]/[Domain] primitive and preserves the
    pre-seam behavior byte-for-byte; and the whole-system simulator's
    ([Simtest.Simio]), where the same record is backed by a virtual
    clock, an in-memory network, and a simulated disk, all driven by
    one seeded single-threaded scheduler.  Service code cannot tell
    which one it is running on — that is the point. *)

(** Structured transport errors, normalized across implementations. *)
type net_err =
  | Refused  (** nobody listening ([ECONNREFUSED]) *)
  | Denied  (** permission denied ([EACCES]) *)
  | Not_found  (** no such socket path ([ENOENT]) *)
  | Reset  (** peer vanished mid-stream ([ECONNRESET]/[EPIPE]) *)
  | Timeout  (** a receive deadline expired *)
  | Closed  (** the endpoint was closed locally *)
  | Eof  (** the peer closed cleanly mid-receive *)
  | Other of string

exception Net of net_err * string

val net_err_to_string : net_err -> string

(** A bidirectional byte-stream connection.  Receive operations take an
    absolute deadline on the {e monotonic} clock ([Float.infinity] =
    wait forever) and raise [Net (Timeout, _)] past it. *)
type conn = {
  send : string -> unit;
  recv_exact : float -> int -> string;
      (** [recv_exact deadline n] blocks for exactly [n] bytes. *)
  recv_line : float -> string;
      (** [recv_line deadline] reads up to a ['\n'] (consumed, not
          returned). *)
  close_conn : unit -> unit;
}

type listener = {
  accept : unit -> conn;
      (** Blocks for the next connection; raises [Net (Closed, _)] once
          the listener is closed. *)
  close_listener : unit -> unit;
}

(** A condition variable bound to the mutex that created it. *)
type cond = { wait : unit -> unit; broadcast : unit -> unit }

type mutex = {
  lock : unit -> unit;
  unlock : unit -> unit;
  new_cond : unit -> cond;
}

type thread = { join : unit -> unit }

type t = {
  now : unit -> float;  (** wall clock — timestamps, logs *)
  mono : unit -> float;
      (** monotonic clock — deadlines; never steps backwards even if
          the wall clock does *)
  sleep : float -> unit;
  rand_int : int -> int;
      (** uniform in [\[0, bound)] — seeded and replayable under
          simulation *)
  pid : int;
  spawn : string -> (unit -> unit) -> thread;
      (** [spawn name f] — [name] labels the task in simulator traces *)
  mutex : unit -> mutex;
  listen : string -> listener;  (** bind + listen on a socket path *)
  connect : string -> conn;
  file_exists : string -> bool;
  mkdir : string -> unit;  (** create-if-missing; existing dir is fine *)
  readdir : string -> string array;  (** sorted, for determinism *)
  file_size : string -> int;
  read_file : string -> string;
  write_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
}

(** The production environment: real clocks, [Unix] sockets, the real
    filesystem, [Domain]-based threads.  [mono] is the wall clock
    clamped to never decrease (the toolchain here lacks
    [Unix.clock_gettime]); that is enough to keep an NTP step from
    expiring or immortalizing queued jobs. *)
val real : t
