(** The service's capability environment — every effect the compile
    service performs (clocks, sleeping, randomness, threads, locks,
    transport, disk) goes through this record.

    Two implementations exist: {!real}, which maps each capability to
    the obvious [Unix]/[Sys]/[Domain] primitive and preserves the
    pre-seam behavior byte-for-byte; and the whole-system simulator's
    ([Simtest.Simio]), where the same record is backed by a virtual
    clock, an in-memory network, and a simulated disk, all driven by
    one seeded single-threaded scheduler.  Service code cannot tell
    which one it is running on — that is the point. *)

(** Structured transport errors, normalized across implementations. *)
type net_err =
  | Refused  (** nobody listening ([ECONNREFUSED]) *)
  | Denied  (** permission denied ([EACCES]) *)
  | Not_found  (** no such socket path ([ENOENT]) *)
  | Reset  (** peer vanished mid-stream ([ECONNRESET]/[EPIPE]) *)
  | Timeout  (** a receive deadline expired *)
  | Closed  (** the endpoint was closed locally *)
  | Eof  (** the peer closed cleanly mid-receive *)
  | Other of string

exception Net of net_err * string

val net_err_to_string : net_err -> string

(** Environment-unique ids for connections and listeners — the handle a
    {!poller} uses to find the underlying descriptor/endpoint. *)
val fresh_id : unit -> int

(** A bidirectional byte-stream connection.  Receive operations take an
    absolute deadline on the {e monotonic} clock ([Float.infinity] =
    wait forever) and raise [Net (Timeout, _)] past it.  The [try_]
    variants never block — they are the event-loop half of the API and
    must only be mixed with the blocking half by one owner at a time. *)
type conn = {
  id : int;
  send : string -> unit;
  recv_exact : float -> int -> string;
      (** [recv_exact deadline n] blocks for exactly [n] bytes. *)
  recv_line : float -> string;
      (** [recv_line deadline] reads up to a ['\n'] (consumed, not
          returned). *)
  try_recv : int -> string;
      (** Up to [n] bytes already available, [""] when none are — never
          blocks.  Raises [Net (Eof, _)] at clean stream end,
          [Net (Reset, _)] on a vanished peer. *)
  try_send : string -> int;
      (** Write what fits without blocking; returns the count (possibly
          0).  Raises like [send] on a dead peer. *)
  close_conn : unit -> unit;
}

type listener = {
  lid : int;
  accept : unit -> conn;
      (** Blocks for the next connection; raises [Net (Closed, _)] once
          the listener is closed. *)
  try_accept : unit -> conn option;
      (** The pending connection if one is queued, [None] otherwise —
          never blocks.  Raises [Net (Closed, _)] once closed. *)
  close_listener : unit -> unit;
}

(** A readiness multiplexer over connections and listeners — the
    primitive under the frontdoor's event loop.  [poll] blocks until at
    least one of the given conns has readable input (or EOF/reset), a
    listener has a pending connection, [wake] is called, or the
    absolute monotonic deadline passes; the caller then re-checks each
    endpoint with the [try_] operations.  Spurious returns are allowed.
    [wake] is safe from any thread (a dispatcher completing a job). *)
type poller = {
  poll : conns:conn list -> listeners:listener list -> float -> unit;
  wake : unit -> unit;
  close_poller : unit -> unit;
}

(** A condition variable bound to the mutex that created it. *)
type cond = { wait : unit -> unit; broadcast : unit -> unit }

type mutex = {
  lock : unit -> unit;
  unlock : unit -> unit;
  new_cond : unit -> cond;
}

type thread = { join : unit -> unit }

type t = {
  now : unit -> float;  (** wall clock — timestamps, logs *)
  mono : unit -> float;
      (** monotonic clock — deadlines; never steps backwards even if
          the wall clock does *)
  sleep : float -> unit;
  rand_int : int -> int;
      (** uniform in [\[0, bound)] — seeded and replayable under
          simulation *)
  pid : int;
  spawn : string -> (unit -> unit) -> thread;
      (** [spawn name f] — [name] labels the task in simulator traces *)
  mutex : unit -> mutex;
  listen : string -> listener;  (** bind + listen on a socket path *)
  connect : string -> conn;
  poller : unit -> poller;
  file_exists : string -> bool;
  mkdir : string -> unit;  (** create-if-missing; existing dir is fine *)
  readdir : string -> string array;  (** sorted, for determinism *)
  file_size : string -> int;
  read_file : string -> string;
  write_file : string -> string -> unit;
  rename : string -> string -> unit;
  remove : string -> unit;
}

(** The production environment: real clocks, [Unix] sockets, the real
    filesystem, [Domain]-based threads.  [mono] is the wall clock
    clamped to never decrease (the toolchain here lacks
    [Unix.clock_gettime]); that is enough to keep an NTP step from
    expiring or immortalizing queued jobs.  The poller is a [select]
    over the registered descriptors plus a self-pipe for [wake]. *)
val real : t
