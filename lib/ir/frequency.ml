(** Static block execution-frequency estimation.

    The entry block has frequency 1.  Frequencies propagate along forward
    edges in reverse postorder, split by branch probabilities; each loop
    level multiplies its header's incoming frequency by [loop_factor]
    (approximating an average trip count, as JIT profiles would).  DBDS
    consumes the frequency of a block *relative to the maximum frequency
    in the compilation unit* (paper §5.3–5.4). *)

type t = {
  freq : float array;
  max_freq : float;
}

let default_loop_factor = 10.0

let edge_prob g p s =
  match Graph.term g p with
  | Types.Jump _ -> 1.0
  | Types.Branch { if_true; if_false; prob; _ } ->
      if if_true = s then prob else if if_false = s then 1.0 -. prob else 0.0
  | Types.Return _ | Types.Unreachable -> 0.0

let compute ?(loop_factor = default_loop_factor) (dom : Dom.t) (loops : Loops.t) =
  let g = Dom.graph dom in
  let n = Graph.n_blocks g in
  let freq = Array.make (max 1 n) 0.0 in
  let is_back_edge p s = Dom.dominates dom s p in
  List.iter
    (fun b ->
      if b = Graph.entry g then
        freq.(b) <- 1.0
      else begin
        let incoming = ref 0.0 in
        Graph.iter_preds g b (fun p ->
            if Dom.is_reachable dom p && not (is_back_edge p b) then
              incoming := !incoming +. (freq.(p) *. edge_prob g p b));
        let incoming = !incoming in
        let f = if Loops.is_header loops b then incoming *. loop_factor else incoming in
        freq.(b) <- f
      end)
    (Dom.order dom);
  let max_freq = Array.fold_left max 1e-9 freq in
  { freq; max_freq }

let frequency t b = if b < Array.length t.freq then t.freq.(b) else 0.0

(** Frequency relative to the hottest block of the unit, in (0, 1]. *)
let relative t b = frequency t b /. t.max_freq

(** Equality of two frequency estimates over the same graph, within a
    small relative tolerance (frequencies are accumulated floats; two
    computations over an identical CFG agree exactly, but the tolerance
    keeps the preservation check robust to array-size differences for
    blocks allocated after the first computation). *)
let equal a b =
  let get arr i = if i < Array.length arr then arr.(i) else 0.0 in
  let close x y =
    Float.abs (x -. y)
    <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
  in
  let n = max (Array.length a.freq) (Array.length b.freq) in
  let ok = ref (close a.max_freq b.max_freq) in
  for i = 0 to n - 1 do
    if not (close (get a.freq i) (get b.freq i)) then ok := false
  done;
  !ok
