(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm,
    plus dominance queries, tree children, depths and dominance frontiers
    (the latter feed SSA repair after duplication). *)

type t = {
  graph : Graph.t;
  idom : int array;  (** immediate dominator per block; entry maps to itself;
                         -1 for unreachable blocks *)
  rpo_index : int array;  (** position in reverse postorder; -1 unreachable *)
  order : Types.block_id list;  (** reverse postorder *)
  children : Types.block_id list array;  (** dominator-tree children *)
  depth : int array;  (** dominator-tree depth, entry = 0 *)
}

let graph t = t.graph
let order t = t.order

let compute (g : Graph.t) =
  let n = Graph.n_blocks g in
  let order = Graph.rpo g in
  let rpo_index = Array.make (max 1 n) (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) order;
  let idom = Array.make (max 1 n) (-1) in
  let entry = Graph.entry g in
  idom.(entry) <- entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_index.(!f1) > rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_index.(!f2) > rpo_index.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          (* Only processed (hence reachable) predecessors take part:
             idom.(p) >= 0 subsumes the old reachability filter since
             idoms are only ever assigned along the reverse postorder. *)
          let new_idom = ref (-1) in
          Graph.iter_preds g b (fun p ->
              if idom.(p) >= 0 then
                new_idom := (if !new_idom < 0 then p else intersect !new_idom p));
          if !new_idom >= 0 && idom.(b) <> !new_idom then begin
            idom.(b) <- !new_idom;
            changed := true
          end
        end)
      order
  done;
  let children = Array.make (max 1 n) [] in
  let depth = Array.make (max 1 n) 0 in
  (* Children in reverse postorder: iterate the order backwards so the
     consed lists come out forwards. *)
  List.iter
    (fun b ->
      if b <> entry && idom.(b) >= 0 then
        children.(idom.(b)) <- b :: children.(idom.(b)))
    (List.rev order);
  List.iter
    (fun b -> if b <> entry && idom.(b) >= 0 then depth.(b) <- depth.(idom.(b)) + 1)
    order;
  { graph = g; idom; rpo_index; order; children; depth }

let idom t b = if b = Graph.entry t.graph then None else Some t.idom.(b)
let children t b = t.children.(b)
let depth t b = t.depth.(b)
let is_reachable t b = b < Array.length t.rpo_index && t.rpo_index.(b) >= 0

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
let dominates t a b =
  if not (is_reachable t a && is_reachable t b) then false
  else begin
    let b = ref b in
    while t.depth.(!b) > t.depth.(a) do
      b := t.idom.(!b)
    done;
    !b = a
  end

let strictly_dominates t a b = a <> b && dominates t a b

(** Preorder traversal of the dominator tree with entry/exit callbacks —
    the skeleton of both the DBDS simulation tier and the dominator-scoped
    optimizations. *)
let walk t ~enter ~exit =
  let rec go b =
    enter b;
    List.iter go t.children.(b);
    exit b
  in
  if is_reachable t (Graph.entry t.graph) then go (Graph.entry t.graph)

(** Blocks in dominator-tree preorder. *)
let preorder t =
  let acc = ref [] in
  walk t ~enter:(fun b -> acc := b :: !acc) ~exit:(fun _ -> ());
  List.rev !acc

(** Dominance frontiers (Cooper–Harvey–Kennedy's simple algorithm).
    Membership dedup uses a stamp array keyed on the join block — each
    join is processed exactly once, so a matching stamp means "already in
    this runner's frontier" without the old O(|df|) list scan. *)
let frontiers t =
  let g = t.graph in
  let n = max 1 (Graph.n_blocks g) in
  let df = Array.make n [] in
  let stamp = Array.make n (-1) in
  List.iter
    (fun b ->
      let live_preds = ref 0 in
      Graph.iter_preds g b (fun p ->
          if is_reachable t p then incr live_preds);
      if !live_preds >= 2 then
        Graph.iter_preds g b (fun p ->
            if is_reachable t p then begin
              let runner = ref p in
              while !runner <> t.idom.(b) do
                if stamp.(!runner) <> b then begin
                  stamp.(!runner) <- b;
                  df.(!runner) <- b :: df.(!runner)
                end;
                runner := t.idom.(!runner)
              done
            end))
    t.order;
  df

(** Iterated dominance frontier of a set of blocks — the phi-placement set
    for SSA construction/repair. *)
let iterated_frontier t ~frontiers:df blocks =
  let in_result = Hashtbl.create 16 in
  let worklist = Queue.create () in
  List.iter (fun b -> Queue.add b worklist) blocks;
  let result = ref [] in
  while not (Queue.is_empty worklist) do
    let b = Queue.pop worklist in
    if is_reachable t b then
      List.iter
        (fun d ->
          if not (Hashtbl.mem in_result d) then begin
            Hashtbl.add in_result d ();
            result := d :: !result;
            Queue.add d worklist
          end)
        df.(b)
  done;
  !result

(** Structural equality of two dominator trees over the same graph: the
    same reverse postorder and the same immediate dominator for every
    reachable block.  Children, depths and frontiers are all derived
    from the idoms, so comparing idoms suffices — this is the
    preservation-contract check of {!Analyses}. *)
let equal a b =
  a.order = b.order
  && List.for_all (fun blk -> a.idom.(blk) = b.idom.(blk)) a.order
