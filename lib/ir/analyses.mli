(** Incremental analysis caching: memoized {!Dom}, {!Loops} and
    {!Frequency} computations per graph, with {e per-kind} validity
    stamps against the graph's monotonic {!Graph.generation} counter.

    A mutation invalidates by default, but a pass that declares it
    preserves an analysis can {!preserve} it — re-stamping the cached
    value to the current generation — so e.g. a pure instruction rewrite
    keeps the dominator tree cached across its own mutations.  The
    contract is checkable by recompute-and-compare ({!check}).

    The cache lives in the graph's {!Graph.cache} slot and is updated
    copy-on-write, so it is saved/restored exactly by the speculation
    journal ({!Graph.checkpoint} / {!Graph.rollback}).  A graph is owned
    by exactly one domain at a time, so no synchronization is needed. *)

type stats = { hits : int; misses : int }

(** The three cached CFG analyses — the vocabulary of pass preservation
    contracts. *)
type kind = Dom | Loops | Frequency

val kind_to_string : kind -> string
val all_kinds : kind list

(** Memoized {!Dom.compute}. *)
val dom : Graph.t -> Dom.t

(** Memoized {!Loops.compute} (over the memoized dominator tree). *)
val loops : Graph.t -> Loops.t

(** Memoized {!Frequency.compute}, additionally keyed by [loop_factor]. *)
val frequency : ?loop_factor:float -> Graph.t -> Frequency.t

(** [preserve g ~since kinds] re-stamps each cached analysis in [kinds]
    that was valid at generation [since] to the graph's current
    generation — the pass manager applies a pass's declared preservation
    contract with this after the pass ran. *)
val preserve : Graph.t -> since:int -> kind list -> unit

(** [pass_clean g pass]: did [pass] last run at [g]'s current generation
    without changing anything?  Deterministic passes may be skipped when
    this holds (the fixpoint driver's convergence memo). *)
val pass_clean : Graph.t -> string -> bool

(** Record that [pass] just ran on [g] without firing or mutating.
    Stored copy-on-write in the analysis cache entry, so speculation
    rollback restores the memo exactly. *)
val note_pass_clean : Graph.t -> string -> unit

(** [keep_clean_except g ~since ~enabled]: a pass fired, moving [g] from
    generation [since] to the current one, and declares that only the
    [enabled] passes can gain new opportunities from its changes.
    Re-stamps every other pass's clean memo from [since] to the current
    generation; the [enabled] memos stay stale and really re-run. *)
val keep_clean_except : Graph.t -> since:int -> enabled:string list -> unit

(** Paranoid recompute-and-compare: [Error _] if the cached,
    currently-valid value of [kind] differs from a fresh computation
    (an invalid preservation claim).  A stale or absent cache trivially
    passes. *)
val check : Graph.t -> kind -> (unit, string) result

(** Lifetime cache hit/miss counters of a graph (0/0 before any
    lookup). *)
val stats : Graph.t -> stats
