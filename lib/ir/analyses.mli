(** Incremental analysis caching: memoized {!Dom}, {!Loops} and
    {!Frequency} computations per graph, keyed on the graph's monotonic
    {!Graph.generation} counter.  As long as no mutation happened since
    the last computation, the physically-same analysis is returned.

    The cache lives in the graph's {!Graph.cache} slot and is therefore
    saved/restored by the speculation journal ({!Graph.checkpoint} /
    {!Graph.rollback}).  A graph is owned by exactly one domain at a
    time, so no synchronization is needed. *)

type stats = { hits : int; misses : int }

(** Memoized {!Dom.compute}. *)
val dom : Graph.t -> Dom.t

(** Memoized {!Loops.compute} (over the memoized dominator tree). *)
val loops : Graph.t -> Loops.t

(** Memoized {!Frequency.compute}, additionally keyed by [loop_factor]. *)
val frequency : ?loop_factor:float -> Graph.t -> Frequency.t

(** Lifetime cache hit/miss counters of a graph (0/0 before any
    lookup). *)
val stats : Graph.t -> stats
