(** Parser for the textual IR format produced by {!Printer} — the
    round-trip partner of [pp_graph].  Lets tests and tools author IR
    fixtures directly and guards the printer against ambiguity (see the
    round-trip property in the test suite).

    Reconstruction order matters: blocks are created first, then
    placeholder instructions (so every value id exists), then terminators
    (establishing predecessor lists), then the real instruction kinds —
    and finally phi inputs are permuted from the textual predecessor
    order (recorded in the "; preds:" comments) to the reconstructed
    one. *)

open Types

exception Parse_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Tokenizing helpers (line oriented, whitespace separated)            *)
(* ------------------------------------------------------------------ *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_space s.[!i] do incr i done;
  while !j >= !i && is_space s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let split_on_string ~sep s =
  (* Split on the first occurrence; [None] when absent. *)
  let sl = String.length sep and n = String.length s in
  let rec go i =
    if i + sl > n then None
    else if String.sub s i sl = sep then
      Some (String.sub s 0 i, String.sub s (i + sl) (n - i - sl))
    else go (i + 1)
  in
  go 0

let int_of ~what s =
  match int_of_string_opt (strip s) with
  | Some n -> n
  | None -> fail "expected %s, got %S" what s

let value_of s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> 'v' then fail "expected a value, got %S" s
  else int_of ~what:"value id" (String.sub s 1 (String.length s - 1))

let block_ref s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> 'b' then fail "expected a block, got %S" s
  else
    (* tolerate a trailing ':' *)
    let s = String.sub s 1 (String.length s - 1) in
    let s = match split_on_string ~sep:":" s with Some (a, _) -> a | None -> s in
    int_of ~what:"block id" s

let comma_list s =
  String.split_on_char ',' s |> List.map strip
  |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Kind / terminator parsing over textual value ids                    *)
(* ------------------------------------------------------------------ *)

let binop_of_string = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | _ -> None

let cmpop_of_string = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

(* "new Cls(v1, v2)" / "call f(v1)" argument lists *)
let parse_call_like s =
  match split_on_string ~sep:"(" s with
  | None -> fail "expected '(' in %S" s
  | Some (name, rest) -> (
      match split_on_string ~sep:")" rest with
      | None -> fail "expected ')' in %S" s
      | Some (args, _) ->
          (strip name, Array.of_list (List.map value_of (comma_list args))))

(** Parse one instruction right-hand side into a kind over {e textual}
    value ids (remapped by the caller). *)
let parse_kind rhs =
  let rhs = strip rhs in
  match String.index_opt rhs ' ' with
  | None -> (
      match rhs with
      | "null" -> Null
      | _ -> fail "cannot parse instruction %S" rhs)
  | Some sp -> (
      let head = String.sub rhs 0 sp in
      let rest = strip (String.sub rhs sp (String.length rhs - sp)) in
      match head with
      | "const" -> Const (int_of ~what:"constant" rest)
      | "param" -> Param (int_of ~what:"parameter index" rest)
      | "neg" -> Neg (value_of rest)
      | "not" -> Not (value_of rest)
      | "phi" ->
          let inner =
            match (split_on_string ~sep:"[" rest, split_on_string ~sep:"]" rest) with
            | Some (_, r), Some _ -> (
                match split_on_string ~sep:"]" r with
                | Some (l, _) -> l
                | None -> fail "unterminated phi list %S" rest)
            | _ -> fail "expected phi [..] in %S" rest
          in
          Phi (Array.of_list (List.map value_of (comma_list inner)))
      | "new" ->
          let cls, args = parse_call_like rest in
          New (cls, args)
      | "call" ->
          let fn, args = parse_call_like rest in
          Call (fn, args)
      | "load" -> (
          match split_on_string ~sep:"." rest with
          | Some (obj, field) -> Load (value_of obj, strip field)
          | None -> fail "expected obj.field in %S" rest)
      | "store" -> (
          match split_on_string ~sep:"<-" rest with
          | Some (lhs, v) -> (
              match split_on_string ~sep:"." lhs with
              | Some (obj, field) ->
                  Store (value_of obj, strip field, value_of v)
              | None -> fail "expected obj.field in %S" rest)
          | None -> fail "expected '<-' in %S" rest)
      | "gload" -> Load_global (strip rest)
      | "gstore" -> (
          match split_on_string ~sep:"<-" rest with
          | Some (g, v) -> Store_global (strip g, value_of v)
          | None -> fail "expected '<-' in %S" rest)
      | _ -> (
          (* "add v1, v2" / "cmp.lt v1, v2" *)
          match binop_of_string head with
          | Some op -> (
              match comma_list rest with
              | [ a; b ] -> Binop (op, value_of a, value_of b)
              | _ -> fail "expected two operands in %S" rhs)
          | None -> (
              match split_on_string ~sep:"." head with
              | Some ("cmp", opname) -> (
                  match cmpop_of_string opname with
                  | Some op -> (
                      match comma_list rest with
                      | [ a; b ] -> Cmp (op, value_of a, value_of b)
                      | _ -> fail "expected two operands in %S" rhs)
                  | None -> fail "unknown comparison %S" opname)
              | _ -> fail "unknown instruction %S" rhs)))

(** Parse a terminator line (over textual value/block ids). *)
let parse_term line =
  let line = strip line in
  match String.index_opt line ' ' with
  | None -> (
      match line with
      | "return" -> Return None
      | "unreachable" -> Unreachable
      | _ -> fail "cannot parse terminator %S" line)
  | Some sp -> (
      let head = String.sub line 0 sp in
      let rest = strip (String.sub line sp (String.length line - sp)) in
      match head with
      | "jump" -> Jump (block_ref rest)
      | "return" -> Return (Some (value_of rest))
      | "branch" -> (
          (* "branch v3 ? b1 : b2  @0.50" *)
          match split_on_string ~sep:"?" rest with
          | None -> fail "expected '?' in %S" line
          | Some (cond, targets) -> (
              match split_on_string ~sep:":" targets with
              | None -> fail "expected ':' in %S" line
              | Some (t, rest2) ->
                  let f, prob =
                    match split_on_string ~sep:"@" rest2 with
                    | Some (f, p) -> (f, float_of_string (strip p))
                    | None -> (rest2, 0.5)
                  in
                  Branch
                    {
                      cond = value_of cond;
                      if_true = block_ref t;
                      if_false = block_ref f;
                      prob;
                    }))
      | _ -> fail "cannot parse terminator %S" line)

(* ------------------------------------------------------------------ *)
(* Whole-graph parsing                                                 *)
(* ------------------------------------------------------------------ *)

type parsed_block = {
  pb_id : int;  (** textual id *)
  pb_preds : int list;  (** textual ids from the "; preds:" comment *)
  mutable pb_instrs : (int * string) list;  (** textual vid, rhs (reversed) *)
  mutable pb_term : string option;
}

let parse_header line =
  (* "fn name(N params) entry=bK" *)
  match split_on_string ~sep:"fn " line with
  | Some ("", rest) -> (
      match split_on_string ~sep:"(" rest with
      | None -> fail "malformed header %S" line
      | Some (name, rest) -> (
          match split_on_string ~sep:" params)" rest with
          | None -> fail "malformed header %S" line
          | Some (n, rest) -> (
              match split_on_string ~sep:"entry=" rest with
              | None -> fail "missing entry in %S" line
              | Some (_, e) ->
                  (strip name, int_of ~what:"param count" n, block_ref e))))
  | _ -> fail "expected 'fn' header, got %S" line

(** Parse a graph printed by {!Printer.pp_graph}.
    @raise Parse_error on malformed input. *)
let parse_graph text =
  let lines = String.split_on_char '\n' text in
  let header = ref None in
  let blocks : parsed_block list ref = ref [] in
  let current = ref None in
  let finish_current () =
    match !current with
    | Some pb -> blocks := pb :: !blocks
    | None -> ()
  in
  List.iter
    (fun raw ->
      let line = strip raw in
      if line = "" || line = "; unreachable:" then ()
      else if String.length line >= 3 && String.sub line 0 3 = "fn " then
        header := Some (parse_header line)
      else if
        (* block header: 'b' followed by digits then ':' (not "branch") *)
        line.[0] = 'b'
        && String.length line > 1
        && (let rec digits i =
              if i >= String.length line then false
              else if line.[i] = ':' then i > 1
              else if line.[i] >= '0' && line.[i] <= '9' then digits (i + 1)
              else false
            in
            digits 1)
      then begin
        (* block header: "bK:" or "bK:  ; preds: b1, b2" *)
        finish_current ();
        let bid = block_ref line in
        let preds =
          match split_on_string ~sep:"; preds:" line with
          | Some (_, l) -> List.map block_ref (comma_list l)
          | None -> []
        in
        current := Some { pb_id = bid; pb_preds = preds; pb_instrs = []; pb_term = None }
      end
      else
        match !current with
        | None -> fail "instruction outside a block: %S" line
        | Some pb -> (
            match split_on_string ~sep:" = " line with
            | Some (v, rhs) when String.length (strip v) > 1 && (strip v).[0] = 'v'
              ->
                pb.pb_instrs <- (value_of v, strip rhs) :: pb.pb_instrs
            | _ ->
                if pb.pb_term <> None then
                  fail "two terminators in b%d (%S)" pb.pb_id line
                else pb.pb_term <- Some line))
    lines;
  finish_current ();
  let name, n_params, entry_text =
    match !header with Some h -> h | None -> fail "missing 'fn' header"
  in
  let parsed = List.rev !blocks in
  (* Pass 1: blocks. *)
  let g = Graph.create ~name ~n_params () in
  let block_map = Hashtbl.create 16 in
  List.iter
    (fun pb ->
      if Hashtbl.mem block_map pb.pb_id then fail "duplicate block b%d" pb.pb_id;
      Hashtbl.replace block_map pb.pb_id (Graph.add_block g))
    parsed;
  let real_block tb =
    match Hashtbl.find_opt block_map tb with
    | Some b -> b
    | None -> fail "reference to undefined block b%d" tb
  in
  Graph.set_entry g (real_block entry_text);
  (* Pass 2: placeholder instructions (every value id gets a slot). *)
  let value_map = Hashtbl.create 64 in
  List.iter
    (fun pb ->
      List.iter
        (fun (tv, rhs) ->
          if Hashtbl.mem value_map tv then fail "duplicate value v%d" tv;
          let placeholder =
            (* phis must sit in the phi list from the start *)
            if String.length rhs >= 4 && String.sub rhs 0 4 = "phi " then
              Phi [||]
            else Const 0
          in
          Hashtbl.replace value_map tv
            (Graph.append g (real_block pb.pb_id) placeholder))
        (List.rev pb.pb_instrs))
    parsed;
  let real_value tv =
    match Hashtbl.find_opt value_map tv with
    | Some v -> v
    | None -> fail "reference to undefined value v%d" tv
  in
  (* Pass 3: terminators (establishes predecessor lists). *)
  List.iter
    (fun pb ->
      match pb.pb_term with
      | None -> fail "block b%d has no terminator" pb.pb_id
      | Some t -> (
          match parse_term t with
          | Jump tb -> Graph.set_term g (real_block pb.pb_id) (Jump (real_block tb))
          | Branch { cond; if_true; if_false; prob } ->
              Graph.set_term g (real_block pb.pb_id)
                (Branch
                   {
                     cond = real_value cond;
                     if_true = real_block if_true;
                     if_false = real_block if_false;
                     prob;
                   })
          | Return (Some v) ->
              Graph.set_term g (real_block pb.pb_id) (Return (Some (real_value v)))
          | Return None -> Graph.set_term g (real_block pb.pb_id) (Return None)
          | Unreachable -> ()))
    parsed;
  (* Pass 4: real kinds.  Phi inputs arrive in the *textual* predecessor
     order and are permuted to the reconstructed one. *)
  List.iter
    (fun pb ->
      let bid = real_block pb.pb_id in
      let actual_preds = Graph.preds g bid in
      let permute inputs =
        if pb.pb_preds = [] then inputs
        else begin
          let textual = List.map real_block pb.pb_preds in
          if List.length textual <> Array.length inputs then
            fail "phi arity mismatch in b%d" pb.pb_id;
          Array.of_list
            (List.map
               (fun p ->
                 let rec find i = function
                   | [] -> fail "predecessor mismatch in b%d" pb.pb_id
                   | q :: rest -> if q = p then i else find (i + 1) rest
                 in
                 inputs.(find 0 textual))
               actual_preds)
        end
      in
      List.iter
        (fun (tv, rhs) ->
          let kind = map_inputs real_value (parse_kind rhs) in
          let kind =
            match kind with Phi inputs -> Phi (permute inputs) | k -> k
          in
          Graph.set_kind g (real_value tv) kind)
        (List.rev pb.pb_instrs))
    parsed;
  g
