(** SSA reconstruction after code duplication.

    When the duplication transform copies a merge block [bm] into a
    predecessor, every value originally defined in [bm] gains a second
    definition (its copy).  Uses of the original value in blocks that [bm]
    no longer dominates must be rewritten to see the correct reaching
    definition, inserting phis where control flow re-joins.  This module
    implements the on-demand value-lookup algorithm (in the style of
    LLVM's SSAUpdater / Braun et al.'s SSA construction): phis are created
    lazily at join points while walking predecessors, then trivial phis
    are cleaned up.

    This is exactly the "complex analysis to generate valid φ instructions
    for usages in dominated blocks" that the paper's Section 3.1 cites as
    the expensive part of the real transformation (and the reason the
    simulation tier avoids it). *)

open Types

type var_state = {
  defs : (block_id, value) Hashtbl.t;  (** reaching def at end of block *)
  live_in : (block_id, value) Hashtbl.t;  (** memoized value live into block *)
  mutable inserted : value list;  (** phis created during repair *)
}

exception No_reaching_def of block_id

let rec value_at_end g st bid =
  match Hashtbl.find_opt st.defs bid with
  | Some v -> v
  | None -> value_live_into g st bid

and value_live_into g st bid =
  match Hashtbl.find_opt st.live_in bid with
  | Some v -> v
  | None -> (
      match Graph.preds g bid with
      | [] -> raise (No_reaching_def bid)
      | [ p ] ->
          let v = value_at_end g st p in
          Hashtbl.replace st.live_in bid v;
          v
      | preds ->
          (* Create the phi before recursing so loops terminate. *)
          let n = List.length preds in
          let phi =
            Graph.prepend g bid (Phi (Array.make n invalid_value))
          in
          Hashtbl.replace st.live_in bid phi;
          st.inserted <- phi :: st.inserted;
          let inputs =
            Array.of_list (List.map (fun p -> value_at_end g st p) preds)
          in
          Graph.set_kind g phi (Phi inputs);
          phi)

(* Remove phis of the shape  v = phi [x, x, ..., x]  or  v = phi [x, v]. *)
let simplify_inserted_phis g inserted =
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun phi ->
        if Graph.instr_exists g phi then
          match Graph.kind g phi with
          | Phi inputs ->
              let distinct =
                Array.to_list inputs
                |> List.filter (fun v -> v <> phi)
                |> List.sort_uniq compare
              in
              (match distinct with
              | [ v ] ->
                  Graph.replace_uses g phi ~by:v;
                  Graph.remove_instr g phi;
                  changed := true
              | _ -> ())
          | _ -> ())
      inserted
  done

(** [repair g ~classes] fixes uses after duplication.  Each class is
    [(original, copies)]: the original value together with its alternate
    definitions, given as [(block, value)] pairs — the value that acts as
    the reaching definition at the end of [block].  (For a duplicated
    phi, the "copy" is the phi's input on the duplicated path, recorded
    as a definition at the duplicate block even though the value itself
    is defined earlier.)  Uses of [original] that are no longer dominated
    by its definition are rewritten; phis are inserted at join points as
    needed.  Returns the list of inserted phis (after trivial-phi cleanup
    some may already be deleted). *)
let repair g ~classes =
  (* Fault-injection site: SSA reconstruction runs with the graph
     already rewired, so a crash here leaves maximal damage behind. *)
  Probe.fire "ssa.repair";
  let all_inserted = ref [] in
  List.iter
    (fun (original, copies) ->
      let st =
        {
          defs = Hashtbl.create 4;
          live_in = Hashtbl.create 8;
          inserted = [];
        }
      in
      Hashtbl.replace st.defs (Graph.block_of g original) original;
      List.iter (fun (blk, c) -> Hashtbl.replace st.defs blk c) copies;
      let def_block = Graph.block_of g original in
      (* Snapshot uses before rewriting. *)
      let users = Graph.uses g original in
      List.iter
        (fun user ->
          match user with
          | Graph.U_instr uid when Graph.instr_exists g uid -> (
              match Graph.kind g uid with
              | Phi inputs ->
                  (* A phi use is a use at the end of the matching
                     predecessor. *)
                  let use_block = Graph.block_of g uid in
                  let preds = Graph.preds g use_block in
                  let inputs' =
                    Array.mapi
                      (fun i v ->
                        if v = original then begin
                          let p = List.nth preds i in
                          if p = def_block then v else value_at_end g st p
                        end
                        else v)
                      inputs
                  in
                  Graph.set_kind g uid (Phi inputs')
              | k ->
                  let use_block = Graph.block_of g uid in
                  if use_block <> def_block then begin
                    let v' = value_live_into g st use_block in
                    if v' <> original then
                      Graph.set_kind g uid
                        (map_inputs
                           (fun v -> if v = original then v' else v)
                           k)
                  end)
          | Graph.U_term bid ->
              if bid <> def_block then begin
                let v' = value_live_into g st bid in
                if v' <> original then
                  match Graph.term g bid with
                  | Return (Some v) when v = original ->
                      Graph.patch_term g bid (Return (Some v'))
                  | Branch br when br.cond = original ->
                      Graph.patch_term g bid (Branch { br with cond = v' })
                  | _ -> ()
              end
          | Graph.U_instr _ -> ())
        users;
      all_inserted := st.inserted @ !all_inserted)
    classes;
  simplify_inserted_phis g !all_inserted;
  List.filter (Graph.instr_exists g) !all_inserted
