(** Graphviz export of a function graph: one record-shaped node per basic
    block (entry in bold), control-flow edges with true/false branch
    probabilities.  Inspect with
    [dbdsc file.mj --dot out && dot -Tsvg out.main.dot]. *)

val pp : Format.formatter -> Graph.t -> unit
val to_string : Graph.t -> string

(** Write one function's graph to a .dot file. *)
val write_file : string -> Graph.t -> unit
