(** A compilation unit collection: class declarations, globals and
    functions.  Produced by the frontend, consumed by the optimizer (field
    layouts for scalar replacement), the interpreter and the harness. *)

type class_decl = { cls_name : string; fields : string list }

type t = {
  classes : (string, class_decl) Hashtbl.t;
  globals : string list;
  functions : (string, Graph.t) Hashtbl.t;
  main : string;  (** entry function name *)
}

val create : ?main:string -> unit -> t
val add_class : t -> class_decl -> unit
val find_class : t -> string -> class_decl option

(** Position of a field within its class's layout. *)
val field_index : t -> string -> string -> int option

(** Register a function under its graph name (replaces any previous). *)
val add_function : t -> Graph.t -> unit

val find_function : t -> string -> Graph.t option

(** Sorted function names. *)
val function_names : t -> string list

(** Visit every function, in name order. *)
val iter_functions : t -> (Graph.t -> unit) -> unit

(** Deep copy (graphs are copied; metadata shared structurally). *)
val copy : t -> t

(** A single-function program wrapper, convenient in tests/examples. *)
val of_graph : ?classes:class_decl list -> ?globals:string list -> Graph.t -> t
