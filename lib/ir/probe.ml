(** Named instrumentation points inside the IR layer.

    Modules above [ir] (the DBDS fault-injection registry, test
    harnesses) can install a single process-wide handler; IR-level code
    announces interesting events by name ([fire "ssa.repair"],
    [fire "analyses.cache"]).  With no handler installed a probe is a
    single atomic load — cheap enough for hot paths.

    The handler is installed once (module initialization of the
    installer) and read from many domains; [Atomic] makes the handoff
    race-free.  Handlers may raise: that is precisely how fault
    injection turns a probe into a crash site. *)

let nop : string -> unit = fun _ -> ()
let handler = Atomic.make nop

(** Install the process-wide probe handler (replaces any previous). *)
let set_handler f = Atomic.set handler f

(** Announce event [name] to the installed handler (default: no-op). *)
let fire name = (Atomic.get handler) name
