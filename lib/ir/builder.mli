(** Convenience layer for constructing graphs directly (tests, examples,
    and the paper's figure programs).  Keeps a current insertion block and
    offers one function per instruction kind. *)

open Types

type t

(** A fresh graph with its entry block as the insertion point. *)
val create : ?name:string -> n_params:int -> unit -> t

val graph : t -> Graph.t

(** Current insertion block. *)
val current : t -> block_id

val entry : t -> block_id

(** Create a fresh (empty, unconnected) block. *)
val new_block : t -> block_id

(** Move the insertion point. *)
val switch : t -> block_id -> unit

(** Append an arbitrary instruction at the insertion point. *)
val add : t -> instr_kind -> instr_id

val const : t -> int -> instr_id
val null : t -> instr_id
val param : t -> int -> instr_id
val binop : t -> binop -> value -> value -> instr_id
val cmp : t -> cmpop -> value -> value -> instr_id
val neg : t -> value -> instr_id
val not_ : t -> value -> instr_id
val new_ : t -> string -> value list -> instr_id
val load : t -> value -> string -> instr_id
val store : t -> value -> string -> value -> instr_id
val gload : t -> string -> instr_id
val gstore : t -> string -> value -> instr_id
val call : t -> string -> value list -> instr_id

(** Add a phi to a block.  The block must already have all its
    predecessors; inputs align with the predecessor order.
    @raise Invalid_argument on an arity mismatch. *)
val phi : t -> block_id -> value list -> instr_id

val jump : t -> block_id -> unit
val branch : ?prob:float -> t -> value -> if_true:block_id -> if_false:block_id -> unit
val ret : t -> value -> unit
val ret_void : t -> unit

(** Verify and return the graph.
    @raise Verifier.Invalid when the construction is ill-formed. *)
val finish : t -> Graph.t
