(** Named instrumentation points inside the IR layer.

    Modules above [ir] install a single process-wide handler; IR-level
    code announces events by name ([fire "ssa.repair"]).  With no
    handler installed a probe costs one atomic load.  Handlers may
    raise — fault injection turns a probe into a crash site. *)

(** Install the process-wide probe handler (replaces any previous). *)
val set_handler : (string -> unit) -> unit

(** Announce event [name] to the installed handler (default: no-op). *)
val fire : string -> unit
