(** A compilation unit collection: class declarations, globals and
    functions.  Produced by the frontend, consumed by the optimizer (field
    layouts for scalar replacement), the interpreter and the harness. *)

type class_decl = { cls_name : string; fields : string list }

type t = {
  classes : (string, class_decl) Hashtbl.t;
  globals : string list;
  functions : (string, Graph.t) Hashtbl.t;
  main : string;  (** entry function name *)
}

let create ?(main = "main") () =
  { classes = Hashtbl.create 8; globals = []; functions = Hashtbl.create 8; main }

let add_class p cls = Hashtbl.replace p.classes cls.cls_name cls
let find_class p name = Hashtbl.find_opt p.classes name

let field_index p cls field =
  match find_class p cls with
  | None -> None
  | Some c ->
      let rec idx i = function
        | [] -> None
        | f :: rest -> if f = field then Some i else idx (i + 1) rest
      in
      idx 0 c.fields

let add_function p g = Hashtbl.replace p.functions (Graph.name g) g
let find_function p name = Hashtbl.find_opt p.functions name

let function_names p =
  Hashtbl.fold (fun name _ acc -> name :: acc) p.functions []
  |> List.sort compare

let iter_functions p f =
  List.iter (fun name -> f (Hashtbl.find p.functions name)) (function_names p)

(** Deep copy (graphs are copied; metadata shared structurally). *)
let copy p =
  {
    classes = Hashtbl.copy p.classes;
    globals = p.globals;
    functions =
      (let h = Hashtbl.create (Hashtbl.length p.functions) in
       Hashtbl.iter (fun name g -> Hashtbl.add h name (Graph.copy g)) p.functions;
       h);
    main = p.main;
  }

(** A single-function program wrapper, convenient in tests/examples. *)
let of_graph ?(classes = []) ?(globals = []) g =
  let p = create ~main:(Graph.name g) () in
  List.iter (add_class p) classes;
  add_function p g;
  { p with globals }
