(** Parser for the textual IR format produced by {!Printer} — the
    round-trip partner of [pp_graph].  Lets tests and tools author IR
    fixtures directly and guards the printer against ambiguity.

    Instruction and block {e numbering} need not be dense: textual ids are
    remapped to fresh arena ids (so a round-trip preserves structure and
    semantics, not literal ids). *)

exception Parse_error of string

(** Parse a graph printed by {!Printer.pp_graph}.
    @raise Parse_error on malformed input. *)
val parse_graph : string -> Graph.t
