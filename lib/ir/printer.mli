(** Textual dump of IR graphs, for the CLI driver, tests and debugging. *)

val pp_value : Format.formatter -> Types.value -> unit
val pp_kind : Format.formatter -> Types.instr_kind -> unit
val pp_term : Format.formatter -> Types.terminator -> unit

(** One block: header with predecessors, instructions, terminator. *)
val pp_block : Graph.t -> Format.formatter -> Types.block_id -> unit

(** Whole graph, reachable blocks in reverse postorder (unreachable ones
    flagged at the end). *)
val pp_graph : Format.formatter -> Graph.t -> unit

val graph_to_string : Graph.t -> string
