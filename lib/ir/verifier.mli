(** Structural and SSA well-formedness checks: edge/pred consistency,
    instruction placement, phi arity and fill, input liveness, use-list
    accuracy, and the SSA dominance property.  Tests run the verifier
    after every transformation; a failure message pinpoints the broken
    invariant. *)

exception Invalid of string

(** Run all checks.
    @raise Invalid with a description of the first violation. *)
val verify : Graph.t -> unit

(** [Ok ()] or [Error message]. *)
val verify_result : Graph.t -> (unit, string) result
