(** Multicore fan-out: a stdlib-[Domain] worker pool (OCaml 5, no
    external dependencies).

    [map ~jobs f items] applies [f] to every item and returns the results
    {e in input order}, regardless of which worker ran which item or in
    what order they finished — so callers observe deterministic output
    for any [jobs].  Items are dispatched dynamically (an atomic cursor),
    which load-balances uneven per-item cost; each item is processed by
    exactly one domain.

    Exceptions raised by [f] are captured per item and re-raised in the
    calling domain (the earliest-indexed failure wins), with their
    backtrace preserved.

    Ownership discipline: [f] must only mutate state reachable from its
    own item (the driver passes one function graph per item and merges
    per-worker contexts afterwards).  Shared lookups (e.g. the program's
    class table) must be read-only. *)

let default_jobs () = Domain.recommended_domain_count ()

(* Join every domain, even if some join re-raises a worker's uncaught
   exception; the earliest-spawned failure is re-raised only after all
   siblings have terminated (no orphaned domains, no wedged cursor). *)
let join_all helpers =
  let first_error = ref None in
  List.iter
    (fun d ->
      try Domain.join d
      with e ->
        if !first_error = None then
          first_error := Some (e, Printexc.get_raw_backtrace ()))
    helpers;
  match !first_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let map ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let continue_ = ref true in
      while !continue_ do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue_ := false
        else
          results.(i) <-
            Some
              (try Ok (f arr.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()))
      done
    in
    (* Spawn helpers one at a time: if a spawn fails (resource
       exhaustion), the domains already running are joined before the
       error propagates — no orphans draining the cursor unwatched. *)
    let helpers = ref [] in
    (try
       for _ = 2 to jobs do
         helpers := Domain.spawn worker :: !helpers
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       join_all !helpers;
       Printexc.raise_with_backtrace e bt);
    (* The calling domain works too: jobs domains total.  [worker]
       captures per-item exceptions, so it normally cannot raise; the
       explicit join-all-then-reraise path below keeps the guarantee
       even for asynchronous exceptions (Out_of_memory, Stack_overflow)
       in the caller's slice. *)
    (match worker () with
    | () -> ()
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (try join_all !helpers with _ -> ());
        Printexc.raise_with_backtrace e bt);
    join_all !helpers;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
           | None -> assert false)
         results)
  end
