(** Multicore fan-out: a stdlib-[Domain] worker pool (OCaml 5, no
    external dependencies).

    [map ~jobs f items] applies [f] to every item and returns the results
    {e in input order}, regardless of which worker ran which item or in
    what order they finished — so callers observe deterministic output
    for any [jobs].  Items are dispatched dynamically (an atomic cursor),
    which load-balances uneven per-item cost; each item is processed by
    exactly one domain.

    [map_weighted ~jobs ~weight f items] additionally applies
    longest-processing-time-first scheduling: items are dispatched in
    descending [weight] order (ties broken by input position, so the
    dispatch schedule is deterministic), which bounds the makespan at
    4/3 · OPT instead of 2 · OPT for arbitrary arrival order.  The
    shared atomic cursor doubles as work stealing — a worker that
    finishes early simply claims the next-heaviest remaining item.
    Results still come back in input order, and because each item is
    owned by exactly one domain the output is byte-identical to the
    sequential run for any [jobs].

    Per-worker busy time is recorded into an optional {!util} so callers
    (the bench harness) can report scheduler utilization.

    Exceptions raised by [f] are captured per item and re-raised in the
    calling domain (the earliest-indexed failure wins), with their
    backtrace preserved.

    Ownership discipline: [f] must only mutate state reachable from its
    own item (the driver passes one function graph per item and merges
    per-worker contexts afterwards).  Shared lookups (e.g. the program's
    class table) must be read-only. *)

let default_jobs () = Domain.recommended_domain_count ()

(** Scheduler observability: per-worker busy seconds (time spent inside
    [f]) and the pool's wall-clock elapsed time.  Worker 0 is the
    calling domain. *)
type util = {
  workers : int;
  busy : float array;  (** seconds inside [f], per worker *)
  items : int array;  (** items processed, per worker *)
  elapsed : float;  (** pool wall-clock seconds *)
}

(** Mean busy fraction across workers, in [0, 1]. *)
let utilization u =
  if u.workers = 0 || u.elapsed <= 0.0 then 1.0
  else
    Float.min 1.0
      (Array.fold_left ( +. ) 0.0 u.busy
      /. (float_of_int u.workers *. u.elapsed))

(* Join every domain, even if some join re-raises a worker's uncaught
   exception; the earliest-spawned failure is re-raised only after all
   siblings have terminated (no orphaned domains, no wedged cursor). *)
let join_all helpers =
  let first_error = ref None in
  List.iter
    (fun d ->
      try Domain.join d
      with e ->
        if !first_error = None then
          first_error := Some (e, Printexc.get_raw_backtrace ()))
    helpers;
  match !first_error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let now () = Unix.gettimeofday ()

(* Shared pool body: run [f] over [arr] with [jobs] domains pulling
   positions in [order] (the dispatch schedule) through one atomic
   cursor.  Results land at their original index. *)
let run_pool ~jobs ~stats f arr order =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let busy = Array.make jobs 0.0 in
  let counts = Array.make jobs 0 in
  let worker w () =
    let continue_ = ref true in
    while !continue_ do
      let k = Atomic.fetch_and_add next 1 in
      if k >= n then continue_ := false
      else begin
        let i = order.(k) in
        let t0 = now () in
        results.(i) <-
          Some
            (try Ok (f arr.(i))
             with e -> Error (e, Printexc.get_raw_backtrace ()));
        busy.(w) <- busy.(w) +. (now () -. t0);
        counts.(w) <- counts.(w) + 1
      end
    done
  in
  let t_start = now () in
  (* Spawn helpers one at a time: if a spawn fails (resource
     exhaustion), the domains already running are joined before the
     error propagates — no orphans draining the cursor unwatched. *)
  let helpers = ref [] in
  (try
     for w = 1 to jobs - 1 do
       helpers := Domain.spawn (worker w) :: !helpers
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     join_all !helpers;
     Printexc.raise_with_backtrace e bt);
  (* The calling domain works too: jobs domains total.  [worker]
     captures per-item exceptions, so it normally cannot raise; the
     explicit join-all-then-reraise path below keeps the guarantee
     even for asynchronous exceptions (Out_of_memory, Stack_overflow)
     in the caller's slice. *)
  (match worker 0 () with
  | () -> ()
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (try join_all !helpers with _ -> ());
      Printexc.raise_with_backtrace e bt);
  join_all !helpers;
  (match stats with
  | Some r ->
      r :=
        Some
          { workers = jobs; busy; items = counts; elapsed = now () -. t_start }
  | None -> ());
  Array.to_list
    (Array.map
       (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
       results)

let identity_order n = Array.init n (fun i -> i)

let sequential_map ~stats f items =
  match stats with
  | None -> List.map f items
  | Some r ->
      let t0 = now () in
      let out = List.map f items in
      let dt = now () -. t0 in
      r :=
        Some
          {
            workers = 1;
            busy = [| dt |];
            items = [| List.length items |];
            elapsed = dt;
          };
      out

let map ?stats ~jobs f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then sequential_map ~stats f items
  else run_pool ~jobs ~stats f arr (identity_order n)

(** [lpt_order weights] is the longest-processing-time-first dispatch
    schedule: item positions sorted by descending weight, ties broken by
    ascending input position (deterministic for equal weights). *)
let lpt_order weights =
  let order = identity_order (Array.length weights) in
  Array.sort
    (fun a b ->
      let c = compare weights.(b) weights.(a) in
      if c <> 0 then c else compare a b)
    order;
  order

(** Size-aware {!map}: dispatch in descending [weight] order (LPT) so a
    heavyweight item claimed late cannot stretch the makespan.  Same
    determinism guarantees as {!map}. *)
let map_weighted ?stats ~jobs ~weight f items =
  let arr = Array.of_list items in
  let n = Array.length arr in
  let jobs = max 1 (min jobs n) in
  if jobs <= 1 then sequential_map ~stats f items
  else run_pool ~jobs ~stats f arr (lpt_order (Array.map weight arr))

(** Deterministic LPT makespan model: given per-item costs and the
    worker count, simulate the greedy longest-first assignment and
    return (makespan, total).  Used by the bench harness to report the
    scheduler's modeled speedup when the host has fewer cores than
    requested jobs (speedup = total / makespan). *)
let lpt_makespan ~jobs costs =
  let jobs = max 1 jobs in
  let order = lpt_order costs in
  let load = Array.make jobs 0.0 in
  Array.iter
    (fun i ->
      (* least-loaded worker gets the next-heaviest item *)
      let w = ref 0 in
      for k = 1 to jobs - 1 do
        if load.(k) < load.(!w) then w := k
      done;
      load.(!w) <- load.(!w) +. costs.(i))
    order;
  let makespan = Array.fold_left Float.max 0.0 load in
  let total = Array.fold_left ( +. ) 0.0 costs in
  (makespan, total)
