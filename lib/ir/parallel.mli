(** Multicore fan-out: a stdlib-[Domain] worker pool.

    [map ~jobs f items] applies [f] to every item on up to [jobs] domains
    (the calling domain included) and returns the results in input order
    — deterministic for any [jobs].  Each item is processed by exactly
    one domain; [f] must only mutate state owned by its item.  Exceptions
    are re-raised in the calling domain (earliest-indexed failure wins),
    with backtraces preserved.  A raising worker — or a failing spawn —
    never leaves sibling domains unjoined: all domains are joined before
    anything propagates (explicit join-all-then-reraise). *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
