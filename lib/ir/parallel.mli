(** Multicore fan-out: a stdlib-[Domain] worker pool.

    [map ~jobs f items] applies [f] to every item on up to [jobs] domains
    (the calling domain included) and returns the results in input order
    — deterministic for any [jobs].  Each item is processed by exactly
    one domain; [f] must only mutate state owned by its item.  Exceptions
    are re-raised in the calling domain (earliest-indexed failure wins),
    with backtraces preserved.  A raising worker — or a failing spawn —
    never leaves sibling domains unjoined: all domains are joined before
    anything propagates (explicit join-all-then-reraise).

    [map_weighted] is the size-aware variant: items are dispatched in
    descending weight order (longest-processing-time-first), bounding the
    makespan at 4/3 · OPT; the shared cursor doubles as work stealing.
    Output is identical to [map]'s for the same inputs. *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** Scheduler observability: per-worker busy seconds and pool wall time.
    Worker 0 is the calling domain. *)
type util = {
  workers : int;
  busy : float array;  (** seconds inside [f], per worker *)
  items : int array;  (** items processed, per worker *)
  elapsed : float;  (** pool wall-clock seconds *)
}

(** Mean busy fraction across workers, in [0, 1]. *)
val utilization : util -> float

val map :
  ?stats:util option ref -> jobs:int -> ('a -> 'b) -> 'a list -> 'b list

(** [map_weighted ~jobs ~weight f items]: {!map} with
    longest-processing-time-first dispatch by [weight] (ties broken by
    input position, so the schedule is deterministic). *)
val map_weighted :
  ?stats:util option ref ->
  jobs:int ->
  weight:('a -> int) ->
  ('a -> 'b) ->
  'a list ->
  'b list

(** [lpt_makespan ~jobs costs] simulates the greedy
    longest-processing-time-first assignment of [costs] onto [jobs]
    workers and returns [(makespan, total_cost)].  The bench harness uses
    this to model the parallel speedup ([total /. makespan]) when the
    host machine has fewer cores than requested jobs. *)
val lpt_makespan : jobs:int -> float array -> float * float
