(** Dense bitsets over small integer ids (blocks, instructions), backed
    by [Bytes].  One allocation per set, no boxing per element — the
    workhorse of the arena analyses (dominance, liveness, reachability,
    duplication-simulation visited sets). *)

type t = { mutable bits : Bytes.t }

let create n = { bits = Bytes.make (max 1 ((n + 7) lsr 3)) '\000' }

let length t = Bytes.length t.bits lsl 3

(* Grow to cover index [i] (amortized doubling). *)
let ensure t i =
  let need = (i lsr 3) + 1 in
  let cur = Bytes.length t.bits in
  if need > cur then begin
    let bits = Bytes.make (max need (2 * cur)) '\000' in
    Bytes.blit t.bits 0 bits 0 cur;
    t.bits <- bits
  end

let mem t i =
  let byte = i lsr 3 in
  byte < Bytes.length t.bits
  && Char.code (Bytes.unsafe_get t.bits byte) land (1 lsl (i land 7)) <> 0

let add t i =
  ensure t i;
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let remove t i =
  let byte = i lsr 3 in
  if byte < Bytes.length t.bits then
    Bytes.unsafe_set t.bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get t.bits byte)
         land lnot (1 lsl (i land 7))))

(** Set membership of [i] to [b] — [add]/[remove] in one branch-free call
    site. *)
let set t i b = if b then add t i else remove t i

let clear t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let copy t = { bits = Bytes.copy t.bits }

(* Popcount per byte, precomputed. *)
let popcount_byte =
  Array.init 256 (fun b ->
      let rec go n b = if b = 0 then n else go (n + (b land 1)) (b lsr 1) in
      go 0 b)

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte.(Char.code c)) t.bits;
  !n

(** Iterate set members in increasing order. *)
let iter t f =
  for byte = 0 to Bytes.length t.bits - 1 do
    let b = Char.code (Bytes.unsafe_get t.bits byte) in
    if b <> 0 then
      for bit = 0 to 7 do
        if b land (1 lsl bit) <> 0 then f ((byte lsl 3) lor bit)
      done
  done
