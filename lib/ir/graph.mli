(** The function graph: an arena of instructions and basic blocks with
    maintained def-use chains and predecessor lists.

    Invariants maintained by this module's mutation API (and checked by
    {!Verifier}):
    - [preds] of a block lists exactly the blocks whose terminator targets
      it, in a stable order;
    - every [Phi] has exactly one input per predecessor, aligned with the
      predecessor order;
    - use lists record every instruction and terminator referencing a
      value.

    The record types are transparent: analyses throughout the code base
    read fields directly; all {e mutation} must go through this API so the
    invariants hold. *)

open Types

type user = U_instr of instr_id | U_term of block_id

type instr = {
  ins_id : instr_id;
  mutable kind : instr_kind;
  mutable ins_block : block_id;  (** -1 when detached *)
}

type block = {
  blk_id : block_id;
  mutable phis : instr_id list;
  mutable body : instr_id list;
  mutable term : terminator;
  mutable preds : block_id list;
}

(** Extensible per-graph cache slot.  {!Analyses} stores memoized CFG
    analyses here, keyed on {!generation}; the slot is saved and restored
    by the speculation journal together with the graph. *)
type cache = ..

type cache += No_cache

(** Copy-on-demand undo log; see {!checkpoint}. *)
type journal

type t = {
  name : string;
  n_params : int;
  mutable instrs : instr option array;
  mutable n_instrs : int;
  mutable blocks : block option array;
  mutable n_blocks : int;
  mutable entry : block_id;
  mutable uses : user list array;
  mutable generation : int;
      (** bumped by every mutation; analysis caches key on it *)
  mutable n_live : int;  (** live instruction count, maintained *)
  mutable cache : cache;
  mutable journal : journal option;
}

val name : t -> string
val n_params : t -> int
val entry : t -> block_id

(** Monotonic mutation counter.  Every operation that changes the graph
    bumps it; {!rollback} restores it (the graph really is back in its
    checkpoint state). *)
val generation : t -> int

val create : ?name:string -> n_params:int -> unit -> t

(** {2 Speculation (checkpoint / rollback)}

    A copy-on-demand alternative to {!copy}/{!restore}: {!checkpoint}
    starts journaling, after which every mutation first saves the
    pre-state of the block / instruction / use list it touches (only the
    first time each is touched).  {!rollback} undoes everything since the
    checkpoint; {!commit} keeps it and drops the journal.  One level
    only — checkpoints do not nest. *)

val checkpoint : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_speculation : t -> bool

(** {2 Hand-mutation hooks}

    The few modules that write graph record fields directly (the SSA
    repairer and inliner moving terminators and bodies by hand, constant
    hoisting) must announce each mutation {e before} performing it so the
    journal and generation counter stay sound. *)

val record_block : t -> block_id -> unit
val record_instr : t -> instr_id -> unit

(** {2 Arena access} *)

(** @raise Invalid_argument on a dead id. *)
val instr : t -> instr_id -> instr

(** @raise Invalid_argument on a dead id. *)
val block : t -> block_id -> block

val instr_exists : t -> instr_id -> bool
val block_exists : t -> block_id -> bool
val kind : t -> instr_id -> instr_kind

(** The block an instruction lives in (-1 when detached). *)
val block_of : t -> instr_id -> block_id

(** All recorded users of a value (duplicates appear once per read). *)
val uses : t -> value -> user list

val is_phi : t -> instr_id -> bool

(** {2 Low-level use bookkeeping}

    Exposed for transforms that move terminators by hand (the inliner);
    ordinary code never needs them. *)

val add_use : t -> value -> user -> unit
val remove_use : t -> value -> user -> unit

(** {2 Creation} *)

val add_block : t -> block_id
val set_entry : t -> block_id -> unit

(** Append an instruction to a block's body (or phi list for [Phi]). *)
val append : t -> block_id -> instr_kind -> instr_id

(** Insert an instruction at the head of a block's body (or phi list). *)
val prepend : t -> block_id -> instr_kind -> instr_id

(** {2 Mutation} *)

(** Replace an instruction's kind, keeping use lists consistent. *)
val set_kind : t -> instr_id -> instr_kind -> unit

val succs_of_term : terminator -> block_id list
val succs : t -> block_id -> block_id list
val preds : t -> block_id -> block_id list

(** Position of [pred] in the predecessor list (= the phi input index).
    @raise Invalid_argument when absent. *)
val pred_index : t -> block_id -> block_id -> int

(** Set a block's terminator, keeping predecessor lists of the old and new
    successors consistent.  Phis of newly-gained successors receive
    {!Types.invalid_value} inputs which the caller must fill. *)
val set_term : t -> block_id -> terminator -> unit

val term : t -> block_id -> terminator

(** Redirect the edge [from_block -> old_target] to [new_target].  The phi
    inputs that [old_target] held for this edge are dropped; phis of
    [new_target] (if any) receive {!Types.invalid_value} for the new
    edge. *)
val redirect_edge :
  t -> from_block:block_id -> old_target:block_id -> new_target:block_id -> unit

(** Replace every use of a value (in instructions and terminators). *)
val replace_uses : t -> value -> by:value -> unit

(** Detach and delete an instruction.
    @raise Invalid_argument when it still has uses. *)
val remove_instr : t -> instr_id -> unit

(** Detach an instruction from its block without deleting it. *)
val detach : t -> instr_id -> unit

(** Re-attach a detached instruction at the end of a block's body (or phi
    list). *)
val attach : t -> instr_id -> block_id -> unit

(** Delete a whole block; its predecessor edges must already be gone. *)
val remove_block : t -> block_id -> unit

(** Rename a predecessor entry of a block, keeping its phi inputs
    untouched (used when a jump-only block is merged into its
    predecessor). *)
val replace_pred : t -> block_id -> old_pred:block_id -> new_pred:block_id -> unit

(** {2 Iteration} *)

val iter_blocks : t -> (block -> unit) -> unit
val fold_blocks : t -> ('a -> block -> 'a) -> 'a -> 'a
val block_ids : t -> block_id list
val iter_instrs : t -> (instr -> unit) -> unit
val fold_instrs : t -> ('a -> instr -> 'a) -> 'a -> 'a

(** All instruction ids of a block in execution order: phis then body. *)
val block_instrs : t -> block_id -> instr_id list

val live_instr_count : t -> int
val live_block_count : t -> int

(** {2 Orders} *)

(** Reverse postorder over reachable blocks. *)
val rpo : t -> block_id list

(** Per-block reachability flags (indexed by block id). *)
val reachable : t -> bool array

(** Delete every block not reachable from the entry (dropping their edges
    into reachable blocks, with the matching phi inputs).  Returns true if
    anything was removed. *)
val remove_unreachable_blocks : t -> bool

(** {2 Copy / restore} *)

(** Overwrite a graph's contents with those of a {!copy} (the
    backtracking strategy's undo). *)
val restore : t -> backup:t -> unit

(** Deep copy; instruction and block ids are preserved. *)
val copy : t -> t
