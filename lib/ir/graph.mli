(** The function graph: a flat, int-indexed arena of instructions and
    basic blocks with maintained def-use chains and predecessor lists.

    Storage is struct-of-arrays: instruction kinds, block membership and
    the intra-block instruction order live in parallel unboxed [int]
    arrays (intrusive doubly-linked chains), use lists are packed
    intrusive chains over an int-cell pool, and liveness is a bitset —
    no [option] boxing, no per-node records, and no allocation on the
    mutation hot path beyond the kinds themselves.  Dead slots are
    threaded onto explicit free-lists; ids stay stable (slots are only
    recycled under {!set_recycle} or an explicit {!compact}).

    Invariants maintained by this module's mutation API (and checked by
    {!Verifier}):
    - [preds] of a block lists exactly the blocks whose terminator targets
      it, in a stable order;
    - every [Phi] has exactly one input per predecessor, aligned with the
      predecessor order;
    - use chains record every instruction and terminator referencing a
      value.

    All reads go through accessors; all mutation goes through this API so
    the invariants (and the speculation journal) stay sound. *)

open Types

type user = U_instr of instr_id | U_term of block_id

(** Extensible per-graph cache slot.  {!Analyses} stores memoized CFG
    analyses here, keyed on {!generation}; the slot is saved and restored
    by the speculation journal together with the graph. *)
type cache = ..

type cache += No_cache

type t

val name : t -> string
val n_params : t -> int
val entry : t -> block_id

(** Monotonic mutation counter.  Every operation that changes the graph
    bumps it; {!rollback} restores it (the graph really is back in its
    checkpoint state). *)
val generation : t -> int

(** Arena high-water marks: every live instruction (block) id is
    [< n_instrs] ([< n_blocks]).  Sized for flat side-tables. *)
val n_instrs : t -> int

val n_blocks : t -> int

(** The analysis-cache slot (see {!Analyses}). *)
val cache : t -> cache

val set_cache : t -> cache -> unit

val create : ?name:string -> n_params:int -> unit -> t

(** {2 Speculation (checkpoint / rollback)}

    A copy-on-demand alternative to {!copy}/{!restore}: {!checkpoint}
    starts journaling, after which every mutation first saves the
    pre-state of the block / instruction / use chain it touches (only the
    first time each is touched).  {!rollback} undoes everything since the
    checkpoint; {!commit} keeps it and drops the journal.  One level
    only — checkpoints do not nest.  The journal's storage is pooled
    inside the graph and reused across checkpoints, so repeated
    speculation (the backtracking strategy) allocates nothing per
    attempt beyond first-touch snapshots. *)

val checkpoint : t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_speculation : t -> bool

(** {2 Hand-mutation hooks}

    Retained for transforms that patch terminators through {!patch_term}
    after announcing the mutation; ordinary code never needs them. *)

val record_block : t -> block_id -> unit
val record_instr : t -> instr_id -> unit

(** {2 Arena access} *)

val instr_exists : t -> instr_id -> bool
val block_exists : t -> block_id -> bool

(** @raise Invalid_argument on a dead id. *)
val kind : t -> instr_id -> instr_kind

(** The block an instruction lives in (-1 when detached).
    @raise Invalid_argument on a dead id. *)
val block_of : t -> instr_id -> block_id

(** All recorded users of a value, most recent first (duplicates appear
    once per read). *)
val uses : t -> value -> user list

(** Non-allocating iteration over a value's users (read-only: do not
    mutate the graph from [f]). *)
val iter_uses : t -> value -> (user -> unit) -> unit

(** Like {!iter_uses} but hands out the packed user encoding — zero
    allocation per visit.  Decode with {!user_is_term} (terminator use?)
    and {!user_target} (the using instruction, or the block whose
    terminator reads the value). *)
val iter_uses_enc : t -> value -> (int -> unit) -> unit

val user_is_term : int -> bool
val user_target : int -> int

val has_uses : t -> value -> bool
val is_phi : t -> instr_id -> bool

(** {2 Low-level use bookkeeping}

    Exposed for transforms that move terminators by hand; ordinary code
    never needs them. *)

val add_use : t -> value -> user -> unit
val remove_use : t -> value -> user -> unit

(** {2 Creation} *)

val add_block : t -> block_id
val set_entry : t -> block_id -> unit

(** Append an instruction to a block's body (or phi list for [Phi]). *)
val append : t -> block_id -> instr_kind -> instr_id

(** Insert an instruction at the head of a block's body (or phi list). *)
val prepend : t -> block_id -> instr_kind -> instr_id

(** {2 Mutation} *)

(** Replace an instruction's kind, keeping use chains consistent. *)
val set_kind : t -> instr_id -> instr_kind -> unit

val succs_of_term : terminator -> block_id list
val succs : t -> block_id -> block_id list
val preds : t -> block_id -> block_id list
val pred_count : t -> block_id -> int
val pred_nth : t -> block_id -> int -> block_id
val iter_preds : t -> block_id -> (block_id -> unit) -> unit

(** Position of [pred] in the predecessor list (= the phi input index).
    @raise Invalid_argument when absent. *)
val pred_index : t -> block_id -> block_id -> int

(** Set a block's terminator, keeping predecessor lists of the old and new
    successors consistent.  Phis of newly-gained successors receive
    {!Types.invalid_value} inputs which the caller must fill. *)
val set_term : t -> block_id -> terminator -> unit

val term : t -> block_id -> terminator

(** Replace a block's terminator with one that has the {e same successor
    blocks} (e.g. substituting the returned value or branch condition).
    Cheaper than {!set_term}: predecessor lists and phis are untouched;
    only the journal and use chains are maintained. *)
val patch_term : t -> block_id -> terminator -> unit

(** Move [src]'s terminator to [dst] (whose terminator must be
    [Unreachable] with no successors), renaming the edge source in every
    successor's predecessor list — phi inputs keep their positions.
    [src] is left [Unreachable].  The block-splitting primitive of the
    inliner. *)
val transfer_term : t -> src:block_id -> dst:block_id -> unit

(** Redirect the edge [from_block -> old_target] to [new_target].  The phi
    inputs that [old_target] held for this edge are dropped; phis of
    [new_target] (if any) receive {!Types.invalid_value} for the new
    edge. *)
val redirect_edge :
  t -> from_block:block_id -> old_target:block_id -> new_target:block_id -> unit

(** Replace every use of a value (in instructions and terminators). *)
val replace_uses : t -> value -> by:value -> unit

(** Detach and delete an instruction; its slot goes on the free-list.
    @raise Invalid_argument when it still has uses. *)
val remove_instr : t -> instr_id -> unit

(** Detach an instruction from its block without deleting it. *)
val detach : t -> instr_id -> unit

(** Re-attach a detached instruction at the end of a block's body (or phi
    list). *)
val attach : t -> instr_id -> block_id -> unit

(** Re-attach a detached instruction at the head of a block's body (or
    phi list) — constant hoisting. *)
val attach_front : t -> instr_id -> block_id -> unit

(** Delete a whole block; its predecessor edges must already be gone. *)
val remove_block : t -> block_id -> unit

(** Rename a predecessor entry of a block, keeping its phi inputs
    untouched (used when a jump-only block is merged into its
    predecessor). *)
val replace_pred : t -> block_id -> old_pred:block_id -> new_pred:block_id -> unit

(** {2 Iteration}

    Iterators pass ids (not records); all are in increasing-id order for
    arenas and chain order within blocks. *)

val iter_blocks : t -> (block_id -> unit) -> unit
val fold_blocks : t -> ('a -> block_id -> 'a) -> 'a -> 'a
val block_ids : t -> block_id list
val iter_instrs : t -> (instr_id -> unit) -> unit
val fold_instrs : t -> ('a -> instr_id -> 'a) -> 'a -> 'a

(** Non-allocating in-order iteration over a block's phis / body /
    both. *)
val iter_phis : t -> block_id -> (instr_id -> unit) -> unit

val iter_body : t -> block_id -> (instr_id -> unit) -> unit
val iter_block_instrs : t -> block_id -> (instr_id -> unit) -> unit

(** Materialized phi / body lists in execution order (cold paths;
    prefer the iterators above on hot paths). *)
val phis : t -> block_id -> instr_id list

val body : t -> block_id -> instr_id list

(** All instruction ids of a block in execution order: phis then body. *)
val block_instrs : t -> block_id -> instr_id list

(** Number of instructions in a block (phis + body), O(1). *)
val block_size : t -> block_id -> int

val live_instr_count : t -> int
val live_block_count : t -> int

(** {2 Free-lists / compaction}

    Dead slots are threaded onto free-lists.  By default they are {e not}
    recycled — ids stay monotonic, so printed output is reproducible
    across runs.  [set_recycle g true] lets {!append}/{!prepend}/
    {!add_block} pop free slots instead of growing the arena (never
    while a checkpoint is active: rollback truncates by watermark).
    {!compact} renumbers instructions densely (dropping all free slots),
    returning the old→new id mapping. *)

val set_recycle : t -> bool -> unit
val recycling : t -> bool

(** Dead instruction slots currently on the free-list. *)
val free_instr_slots : t -> int

(** Renumber live instructions densely in (block, position) order of the
    current iteration order; rewrites operands, phis and use chains.
    Returns an array mapping old id → new id (-1 for dead slots).  Must
    not be called during speculation. *)
val compact : t -> int array

(** {2 Orders} *)

(** Reverse postorder over reachable blocks. *)
val rpo : t -> block_id list

(** Per-block reachability flags (indexed by block id). *)
val reachable : t -> bool array

(** Delete every block not reachable from the entry (dropping their edges
    into reachable blocks, with the matching phi inputs).  Returns true if
    anything was removed. *)
val remove_unreachable_blocks : t -> bool

(** {2 Copy / restore} *)

(** Overwrite a graph's contents with those of a {!copy} (the
    backtracking strategy's undo). *)
val restore : t -> backup:t -> unit

(** Deep copy; instruction and block ids are preserved. *)
val copy : t -> t
