(** Natural-loop detection.  A back edge is an edge [t -> h] where [h]
    dominates [t]; the loop body is found by walking predecessors backwards
    from the tail.  Per-block loop nesting depth feeds the block-frequency
    estimator. *)

type loop = {
  header : Types.block_id;
  body : Types.block_id list;  (** includes the header *)
  back_edges : (Types.block_id * Types.block_id) list;
}

type t = {
  loops : loop list;
  loop_depth : int array;  (** nesting depth per block; 0 = not in a loop *)
  loop_header : bool array;
}

let loops t = t.loops
let depth t b = if b < Array.length t.loop_depth then t.loop_depth.(b) else 0
let is_header t b = b < Array.length t.loop_header && t.loop_header.(b)

let compute (dom : Dom.t) =
  let g = Dom.graph dom in
  let n = Graph.n_blocks g in
  let back_edges = ref [] in
  List.iter
    (fun b ->
      List.iter
        (fun s -> if Dom.dominates dom s b then back_edges := (b, s) :: !back_edges)
        (Graph.succs g b))
    (Dom.order dom);
  (* Group back edges by header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (tail, header) ->
      let cur = try Hashtbl.find by_header header with Not_found -> [] in
      Hashtbl.replace by_header header ((tail, header) :: cur))
    !back_edges;
  let loop_depth = Array.make (max 1 n) 0 in
  let loop_header = Array.make (max 1 n) false in
  let loops =
    Hashtbl.fold
      (fun header edges acc ->
        loop_header.(header) <- true;
        let in_body = Hashtbl.create 8 in
        Hashtbl.add in_body header ();
        let worklist = Queue.create () in
        List.iter
          (fun (tail, _) ->
            if not (Hashtbl.mem in_body tail) then begin
              Hashtbl.add in_body tail ();
              Queue.add tail worklist
            end)
          edges;
        while not (Queue.is_empty worklist) do
          let b = Queue.pop worklist in
          Graph.iter_preds g b (fun p ->
              if Dom.is_reachable dom p && not (Hashtbl.mem in_body p) then begin
                Hashtbl.add in_body p ();
                Queue.add p worklist
              end)
        done;
        let body = Hashtbl.fold (fun b () acc -> b :: acc) in_body [] in
        List.iter (fun b -> loop_depth.(b) <- loop_depth.(b) + 1) body;
        { header; body; back_edges = edges } :: acc)
      by_header []
  in
  { loops; loop_depth; loop_header }

(* Loop bodies are collected from a hashtable, so their order is
   arbitrary; normalize before comparing. *)
let normalize t =
  List.sort compare
    (List.map
       (fun l ->
         (l.header, List.sort compare l.body, List.sort compare l.back_edges))
       t.loops)

(** Structural equality of two loop forests over the same graph (loop
    sets compared order-insensitively; depths are derived from the
    bodies). *)
let equal a b = normalize a = normalize b
