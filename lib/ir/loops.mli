(** Natural-loop detection.  A back edge is an edge [t -> h] where [h]
    dominates [t]; the loop body is found by walking predecessors backwards
    from the tail.  Per-block loop nesting depth feeds the block-frequency
    estimator. *)

type loop = {
  header : Types.block_id;
  body : Types.block_id list;  (** includes the header *)
  back_edges : (Types.block_id * Types.block_id) list;
}

type t

val loops : t -> loop list

(** Nesting depth; 0 = not in a loop. *)
val depth : t -> Types.block_id -> int

val is_header : t -> Types.block_id -> bool
val compute : Dom.t -> t

(** Structural equality of two loop forests over the same graph (loop
    sets compared order-insensitively). *)
val equal : t -> t -> bool
