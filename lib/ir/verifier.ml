(** Structural and SSA well-formedness checks.  Tests run the verifier
    after every transformation; a failure message pinpoints the broken
    invariant.

    The checks are arena-shaped: position maps and use-count tables are
    flat int arrays indexed by instruction id (reset by walking the same
    ids again, so a verify pass allocates O(arena) once and nothing per
    block), and the dominance check reads the memoized {!Analyses.dom}
    tree — on the common verify-then-optimize path the optimizer reuses
    the same cached tree. *)

open Types

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let check_edges g =
  (* succs/preds must be mutually consistent over reachable blocks. *)
  Graph.iter_blocks g (fun bid ->
      List.iter
        (fun s ->
          if not (Graph.block_exists g s) then
            fail "b%d targets dead block b%d" bid s;
          let found = ref false in
          Graph.iter_preds g s (fun p -> if p = bid then found := true);
          if not !found then
            fail "b%d -> b%d edge missing from preds of b%d" bid s s)
        (Graph.succs g bid);
      Graph.iter_preds g bid (fun p ->
          if not (Graph.block_exists g p) then
            fail "b%d lists dead predecessor b%d" bid p;
          if not (List.mem bid (Graph.succs g p)) then
            fail "b%d lists b%d as predecessor but b%d does not target it" bid
              p p))

let check_instr_placement g =
  Graph.iter_blocks g (fun bid ->
      Graph.iter_block_instrs g bid (fun id ->
          if not (Graph.instr_exists g id) then
            fail "b%d contains dead instruction v%d" bid id;
          if Graph.block_of g id <> bid then
            fail "v%d listed in b%d but claims block b%d" id bid
              (Graph.block_of g id));
      Graph.iter_phis g bid (fun id ->
          match Graph.kind g id with
          | Phi _ -> ()
          | _ -> fail "v%d is in the phi list of b%d but is not a phi" id bid);
      Graph.iter_body g bid (fun id ->
          match Graph.kind g id with
          | Phi _ -> fail "phi v%d appears in the body of b%d" id bid
          | _ -> ()))

let check_phi_arity g =
  Graph.iter_blocks g (fun bid ->
      let n_preds = Graph.pred_count g bid in
      Graph.iter_phis g bid (fun id ->
          match Graph.kind g id with
          | Phi inputs ->
              if Array.length inputs <> n_preds then
                fail "phi v%d in b%d has %d inputs for %d predecessors" id bid
                  (Array.length inputs) n_preds;
              Array.iter
                (fun v ->
                  if v = invalid_value then
                    fail "phi v%d in b%d has an unfilled input" id bid)
                inputs
          | _ -> ()))

let check_input_validity g =
  Graph.iter_instrs g (fun id ->
      iter_inputs
        (fun v ->
          if v = invalid_value then fail "v%d has an invalid input" id
          else if not (Graph.instr_exists g v) then
            fail "v%d reads dead value v%d" id v)
        (Graph.kind g id));
  Graph.iter_blocks g (fun bid ->
      let check v =
        if v = invalid_value || not (Graph.instr_exists g v) then
          fail "terminator of b%d reads invalid value" bid
      in
      match Graph.term g bid with
      | Return (Some v) -> check v
      | Branch { cond; _ } -> check cond
      | Jump _ | Return None | Unreachable -> ())

(* SSA dominance property: every non-phi use is dominated by its def;
   every phi input is defined at the end of the corresponding predecessor
   (i.e. its def dominates that predecessor). *)
let check_dominance g =
  let dom = Analyses.dom g in
  (* Same-block ordering positions, shared across blocks: filled and
     reset per block by walking the block's own ids. *)
  let pos = Array.make (max 1 (Graph.n_instrs g)) (-1) in
  Graph.iter_blocks g (fun bid ->
      if Dom.is_reachable dom bid then begin
        let next = ref 0 in
        Graph.iter_block_instrs g bid (fun id ->
            pos.(id) <- !next;
            incr next);
        let def_ok use_id v =
          let def_block = Graph.block_of g v in
          if def_block = bid then begin
            (* Same-block: def must come first. *)
            let p_def = pos.(v) in
            if p_def < 0 || p_def >= pos.(use_id) then
              fail "v%d uses v%d before its definition in b%d" use_id v bid
          end
          else if not (Dom.strictly_dominates dom def_block bid) then
            fail "use of v%d (def b%d) in v%d (b%d) violates dominance" v
              def_block use_id bid
        in
        Graph.iter_block_instrs g bid (fun id ->
            match Graph.kind g id with
            | Phi inputs ->
                let pred_i = ref 0 in
                Graph.iter_preds g bid (fun pred ->
                    (* An edge from an unreachable predecessor (e.g. a
                       region cut off by a folded branch) is never taken;
                       dominance is undefined there and the input is
                       dead. *)
                    (if Dom.is_reachable dom pred then
                       let v = inputs.(!pred_i) in
                       let def_block = Graph.block_of g v in
                       if not (Dom.dominates dom def_block pred) then
                         fail
                           "phi v%d input v%d (def b%d) does not dominate \
                            predecessor b%d"
                           id v def_block pred);
                    incr pred_i)
            | k -> List.iter (def_ok id) (inputs_of_kind k));
        (match Graph.term g bid with
        | Return (Some v) ->
            let db = Graph.block_of g v in
            if db <> bid && not (Dom.strictly_dominates dom db bid) then
              fail "return in b%d uses non-dominating v%d" bid v
        | Branch { cond; _ } ->
            let db = Graph.block_of g cond in
            if db <> bid && not (Dom.strictly_dominates dom db bid) then
              fail "branch in b%d uses non-dominating v%d" bid cond
        | Jump _ | Return None | Unreachable -> ());
        Graph.iter_block_instrs g bid (fun id -> pos.(id) <- -1)
      end)

let check_uses g =
  (* Use lists must match actual references, as multisets of
     (value, user) pairs.  Keys pack the value id with the user's packed
     encoding into one int, counted in an int-keyed table — no tuple
     allocation per reference. *)
  let expected : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let shift = 1 + (2 * Sys.int_size / 3) in
  let key v enc = (v lsl shift) lor enc in
  let record v enc =
    if v >= 0 then
      let k = key v enc in
      Hashtbl.replace expected k
        (1 + Option.value ~default:0 (Hashtbl.find_opt expected k))
  in
  Graph.iter_instrs g (fun id ->
      iter_inputs (fun v -> record v (id lsl 1)) (Graph.kind g id));
  Graph.iter_blocks g (fun bid ->
      match Graph.term g bid with
      | Return (Some v) -> record v ((bid lsl 1) lor 1)
      | Branch { cond; _ } -> record cond ((bid lsl 1) lor 1)
      | Jump _ | Return None | Unreachable -> ());
  Graph.iter_instrs g (fun v ->
      Graph.iter_uses_enc g v (fun enc ->
          let k = key v enc in
          match Hashtbl.find_opt expected k with
          | Some n when n > 0 -> Hashtbl.replace expected k (n - 1)
          | _ -> fail "use list of v%d has a stale entry" v));
  Hashtbl.iter
    (fun k n ->
      if n > 0 then fail "use list of v%d is missing an entry" (k lsr shift))
    expected

let check_entry g =
  let entry = Graph.entry g in
  if not (Graph.block_exists g entry) then fail "entry block b%d is dead" entry;
  if Graph.phis g entry <> [] then fail "entry block has phis"

(** Run all checks; raises {!Invalid} with a description on failure. *)
let verify g =
  check_entry g;
  check_edges g;
  check_instr_placement g;
  check_phi_arity g;
  check_input_validity g;
  check_uses g;
  check_dominance g

(** [verify_result g] is [Ok ()] or [Error message]. *)
let verify_result g =
  match verify g with () -> Ok () | exception Invalid m -> Error m
