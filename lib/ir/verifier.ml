(** Structural and SSA well-formedness checks.  Tests run the verifier
    after every transformation; a failure message pinpoints the broken
    invariant. *)

open Types

exception Invalid of string

let fail fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let check_edges g =
  (* succs/preds must be mutually consistent over reachable blocks. *)
  Graph.iter_blocks g (fun b ->
      let bid = b.Graph.blk_id in
      List.iter
        (fun s ->
          if not (Graph.block_exists g s) then
            fail "b%d targets dead block b%d" bid s;
          if not (List.mem bid (Graph.preds g s)) then
            fail "b%d -> b%d edge missing from preds of b%d" bid s s)
        (Graph.succs g bid);
      List.iter
        (fun p ->
          if not (Graph.block_exists g p) then
            fail "b%d lists dead predecessor b%d" bid p;
          if not (List.mem bid (Graph.succs g p)) then
            fail "b%d lists b%d as predecessor but b%d does not target it" bid
              p p)
        b.Graph.preds)

let check_instr_placement g =
  Graph.iter_blocks g (fun b ->
      let bid = b.Graph.blk_id in
      List.iter
        (fun id ->
          if not (Graph.instr_exists g id) then
            fail "b%d contains dead instruction v%d" bid id;
          if Graph.block_of g id <> bid then
            fail "v%d listed in b%d but claims block b%d" id bid
              (Graph.block_of g id))
        (Graph.block_instrs g bid);
      List.iter
        (fun id ->
          match Graph.kind g id with
          | Phi _ -> ()
          | _ -> fail "v%d is in the phi list of b%d but is not a phi" id bid)
        b.Graph.phis;
      List.iter
        (fun id ->
          match Graph.kind g id with
          | Phi _ -> fail "phi v%d appears in the body of b%d" id bid
          | _ -> ())
        b.Graph.body)

let check_phi_arity g =
  Graph.iter_blocks g (fun b ->
      let n_preds = List.length b.Graph.preds in
      List.iter
        (fun id ->
          match Graph.kind g id with
          | Phi inputs ->
              if Array.length inputs <> n_preds then
                fail "phi v%d in b%d has %d inputs for %d predecessors" id
                  b.Graph.blk_id (Array.length inputs) n_preds;
              Array.iter
                (fun v ->
                  if v = invalid_value then
                    fail "phi v%d in b%d has an unfilled input" id b.Graph.blk_id)
                inputs
          | _ -> ())
        b.Graph.phis)

let check_input_validity g =
  Graph.iter_instrs g (fun i ->
      List.iter
        (fun v ->
          if v = invalid_value then
            fail "v%d has an invalid input" i.Graph.ins_id
          else if not (Graph.instr_exists g v) then
            fail "v%d reads dead value v%d" i.Graph.ins_id v)
        (inputs_of_kind i.Graph.kind));
  Graph.iter_blocks g (fun b ->
      let check v =
        if v = invalid_value || not (Graph.instr_exists g v) then
          fail "terminator of b%d reads invalid value" b.Graph.blk_id
      in
      match b.Graph.term with
      | Return (Some v) -> check v
      | Branch { cond; _ } -> check cond
      | Jump _ | Return None | Unreachable -> ())

(* SSA dominance property: every non-phi use is dominated by its def;
   every phi input is defined at the end of the corresponding predecessor
   (i.e. its def dominates that predecessor). *)
let check_dominance g =
  let dom = Dom.compute g in
  Graph.iter_blocks g (fun b ->
      let bid = b.Graph.blk_id in
      if Dom.is_reachable dom bid then begin
        (* Position map for same-block ordering checks. *)
        let pos = Hashtbl.create 16 in
        List.iteri (fun i id -> Hashtbl.add pos id i) (Graph.block_instrs g bid);
        let def_ok use_id v =
          let def_block = Graph.block_of g v in
          if def_block = bid then
            (* Same-block: def must come first. *)
            let p_use = Hashtbl.find pos use_id in
            match Hashtbl.find_opt pos v with
            | Some p_def when p_def < p_use -> ()
            | _ -> fail "v%d uses v%d before its definition in b%d" use_id v bid
          else if not (Dom.strictly_dominates dom def_block bid) then
            fail "use of v%d (def b%d) in v%d (b%d) violates dominance" v
              def_block use_id bid
        in
        List.iter
          (fun id ->
            match Graph.kind g id with
            | Phi inputs ->
                List.iteri
                  (fun pred_i pred ->
                    (* An edge from an unreachable predecessor (e.g. a
                       region cut off by a folded branch) is never taken;
                       dominance is undefined there and the input is
                       dead. *)
                    if Dom.is_reachable dom pred then
                      let v = inputs.(pred_i) in
                      let def_block = Graph.block_of g v in
                      if not (Dom.dominates dom def_block pred) then
                        fail
                          "phi v%d input v%d (def b%d) does not dominate \
                           predecessor b%d"
                          id v def_block pred)
                  b.Graph.preds
            | k -> List.iter (def_ok id) (inputs_of_kind k))
          (Graph.block_instrs g bid);
        match b.Graph.term with
        | Return (Some v) ->
            let db = Graph.block_of g v in
            if db <> bid && not (Dom.strictly_dominates dom db bid) then
              fail "return in b%d uses non-dominating v%d" bid v
        | Branch { cond; _ } ->
            let db = Graph.block_of g cond in
            if db <> bid && not (Dom.strictly_dominates dom db bid) then
              fail "branch in b%d uses non-dominating v%d" bid cond
        | Jump _ | Return None | Unreachable -> ()
      end)

let check_uses g =
  (* Use lists must match actual references. *)
  let expected = Hashtbl.create 64 in
  let record v user =
    if v >= 0 then
      Hashtbl.replace expected (v, user)
        (1 + Option.value ~default:0 (Hashtbl.find_opt expected (v, user)))
  in
  Graph.iter_instrs g (fun i ->
      List.iter
        (fun v -> record v (Graph.U_instr i.Graph.ins_id))
        (inputs_of_kind i.Graph.kind));
  Graph.iter_blocks g (fun b ->
      match b.Graph.term with
      | Return (Some v) -> record v (Graph.U_term b.Graph.blk_id)
      | Branch { cond; _ } -> record cond (Graph.U_term b.Graph.blk_id)
      | Jump _ | Return None | Unreachable -> ());
  Graph.iter_instrs g (fun i ->
      let v = i.Graph.ins_id in
      List.iter
        (fun user ->
          match Hashtbl.find_opt expected (v, user) with
          | Some n when n > 0 -> Hashtbl.replace expected (v, user) (n - 1)
          | _ -> fail "use list of v%d has a stale entry" v)
        (Graph.uses g v));
  Hashtbl.iter
    (fun (v, _) n -> if n > 0 then fail "use list of v%d is missing an entry" v)
    expected

let check_entry g =
  let entry = Graph.entry g in
  if not (Graph.block_exists g entry) then fail "entry block b%d is dead" entry;
  if (Graph.block g entry).Graph.phis <> [] then fail "entry block has phis"

(** Run all checks; raises {!Invalid} with a description on failure. *)
let verify g =
  check_entry g;
  check_edges g;
  check_instr_placement g;
  check_phi_arity g;
  check_input_validity g;
  check_uses g;
  check_dominance g

(** [verify_result g] is [Ok ()] or [Error message]. *)
let verify_result g =
  match verify g with () -> Ok () | exception Invalid m -> Error m
