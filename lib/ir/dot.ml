(** Graphviz export of a function graph: control flow as solid edges
    (true/false branch edges labelled with their profile probability),
    one record-shaped node per basic block listing its instructions.
    Handy for inspecting IR before/after duplication:
    [dbdsc file.mj --dot out.dot && dot -Tsvg out.dot]. *)

open Types

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' | '>' | '{' | '}' | '|' | '"' | '\\' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let block_label g bid =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "b%d" bid);
  Graph.iter_block_instrs g bid (fun id ->
      Buffer.add_string buf "\\l";
      Buffer.add_string buf
        (escape (Fmt.str "v%d = %a" id Printer.pp_kind (Graph.kind g id))));
  Buffer.add_string buf "\\l";
  Buffer.add_string buf
    (escape (Fmt.str "%a" Printer.pp_term (Graph.term g bid)));
  Buffer.add_string buf "\\l";
  Buffer.contents buf

let pp ppf g =
  Fmt.pf ppf "digraph %S {@." (Graph.name g);
  Fmt.pf ppf "  node [shape=box, fontname=\"monospace\", fontsize=9];@.";
  List.iter
    (fun bid ->
      let attrs =
        if bid = Graph.entry g then ", style=bold" else ""
      in
      Fmt.pf ppf "  b%d [label=\"%s\"%s];@." bid (block_label g bid) attrs;
      match Graph.term g bid with
      | Jump t -> Fmt.pf ppf "  b%d -> b%d;@." bid t
      | Branch { if_true; if_false; prob; _ } ->
          Fmt.pf ppf "  b%d -> b%d [label=\"T %.2f\", color=darkgreen];@." bid
            if_true prob;
          Fmt.pf ppf "  b%d -> b%d [label=\"F %.2f\", color=firebrick];@." bid
            if_false (1.0 -. prob)
      | Return _ | Unreachable -> ())
    (Graph.rpo g);
  Fmt.pf ppf "}@."

let to_string g = Fmt.str "%a" pp g

(** Write a function's graph to a .dot file. *)
let write_file path g =
  let oc = open_out path in
  output_string oc (to_string g);
  close_out oc
