(** Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm,
    plus dominance queries, tree children, depths and dominance frontiers
    (the latter feed SSA construction and repair). *)

type t

val graph : t -> Graph.t

(** Reverse postorder of reachable blocks. *)
val order : t -> Types.block_id list

val compute : Graph.t -> t

(** Immediate dominator; [None] for the entry block.
    Unreachable blocks report -1. *)
val idom : t -> Types.block_id -> Types.block_id option

(** Dominator-tree children, in reverse postorder. *)
val children : t -> Types.block_id -> Types.block_id list

(** Dominator-tree depth; entry = 0. *)
val depth : t -> Types.block_id -> int

val is_reachable : t -> Types.block_id -> bool

(** [dominates t a b]: does [a] dominate [b] (reflexively)? *)
val dominates : t -> Types.block_id -> Types.block_id -> bool

val strictly_dominates : t -> Types.block_id -> Types.block_id -> bool

(** Preorder traversal of the dominator tree with entry/exit callbacks —
    the skeleton of both the DBDS simulation tier and the dominator-scoped
    optimizations. *)
val walk :
  t -> enter:(Types.block_id -> unit) -> exit:(Types.block_id -> unit) -> unit

(** Blocks in dominator-tree preorder. *)
val preorder : t -> Types.block_id list

(** Dominance frontiers, indexed by block id. *)
val frontiers : t -> Types.block_id list array

(** Structural equality of two dominator trees over the same graph: same
    reverse postorder, same immediate dominator per reachable block (the
    preservation-contract check of {!Analyses}). *)
val equal : t -> t -> bool

(** Iterated dominance frontier of a set of blocks — the phi-placement set
    for SSA construction/repair. *)
val iterated_frontier :
  t ->
  frontiers:Types.block_id list array ->
  Types.block_id list ->
  Types.block_id list
