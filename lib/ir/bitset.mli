(** Dense bitsets over small integer ids, backed by [Bytes]; grows on
    [add].  See {!Graph} and {!Dom} for the hot-path uses. *)

type t

val create : int -> t

(** Capacity in bits (a multiple of 8). *)
val length : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val set : t -> int -> bool -> unit
val clear : t -> unit
val copy : t -> t
val cardinal : t -> int

(** Iterate members in increasing order. *)
val iter : t -> (int -> unit) -> unit
