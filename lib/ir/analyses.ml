(** Incremental analysis caching.

    The dominator tree, loop forest and block frequencies are recomputed
    many times per compilation unit by the simulate → trade-off →
    optimize loop: every optimization phase, every duplication attempt
    and every cost estimate starts from [Dom.compute].  This module
    memoizes the three CFG analyses per graph, keyed on the graph's
    monotonic {!Graph.generation} counter: as long as no mutation
    happened since the last computation, the physically-same analysis is
    returned.

    The cache lives in the graph's {!Graph.cache} slot, so it is saved
    and restored by the speculation journal: a {!Graph.rollback} revives
    the analyses that were valid at the checkpoint.

    Frequencies are additionally keyed by [loop_factor] (different
    configurations may assume different trip counts).

    Thread-safety: a graph (and therefore its cache slot) is owned by
    exactly one domain at a time — the parallel driver partitions
    functions across workers — so no synchronization is needed. *)

type stats = { hits : int; misses : int }

type entry = {
  gen : int;  (** the graph generation this entry is valid for *)
  mutable dom : Dom.t option;
  mutable loops : Loops.t option;
  mutable freqs : (float * Frequency.t) list;  (** keyed by loop_factor *)
  mutable hits : int;  (** lifetime counters, carried across entries *)
  mutable misses : int;
}

type Graph.cache += Cache of entry

let fresh_entry ~gen ~hits ~misses =
  { gen; dom = None; loops = None; freqs = []; hits; misses }

(* The entry valid for the graph's current generation, creating or
   replacing as needed.  Lifetime hit/miss counters survive
   invalidation. *)
let entry g =
  let gen = Graph.generation g in
  match g.Graph.cache with
  | Cache e when e.gen = gen -> e
  | Cache old ->
      let e = fresh_entry ~gen ~hits:old.hits ~misses:old.misses in
      g.Graph.cache <- Cache e;
      e
  | _ ->
      let e = fresh_entry ~gen ~hits:0 ~misses:0 in
      g.Graph.cache <- Cache e;
      e

let dom g =
  let e = entry g in
  match e.dom with
  | Some d ->
      e.hits <- e.hits + 1;
      d
  | None ->
      Probe.fire "analyses.cache";
      e.misses <- e.misses + 1;
      let d = Dom.compute g in
      e.dom <- Some d;
      d

let loops g =
  let e = entry g in
  match e.loops with
  | Some l ->
      e.hits <- e.hits + 1;
      l
  | None ->
      let d = dom g in
      (* [dom] cannot have invalidated the entry: computing an analysis
         does not mutate the graph. *)
      Probe.fire "analyses.cache";
      e.misses <- e.misses + 1;
      let l = Loops.compute d in
      e.loops <- Some l;
      l

let frequency ?(loop_factor = Frequency.default_loop_factor) g =
  let e = entry g in
  match List.assoc_opt loop_factor e.freqs with
  | Some f ->
      e.hits <- e.hits + 1;
      f
  | None ->
      let d = dom g in
      let l = loops g in
      Probe.fire "analyses.cache";
      e.misses <- e.misses + 1;
      let f = Frequency.compute ~loop_factor d l in
      e.freqs <- (loop_factor, f) :: e.freqs;
      f

(** Lifetime hit/miss counters of a graph's cache (0/0 before any
    lookup).  A {!Graph.rollback} also rolls these back to their
    checkpoint values. *)
let stats g =
  match g.Graph.cache with
  | Cache e -> { hits = e.hits; misses = e.misses }
  | _ -> { hits = 0; misses = 0 }
