(** Incremental analysis caching with per-kind validity.

    The dominator tree, loop forest and block frequencies are recomputed
    many times per compilation unit by the simulate → trade-off →
    optimize loop: every optimization phase, every duplication attempt
    and every cost estimate starts from [Dom.compute].  This module
    memoizes the three CFG analyses per graph.

    Validity is tracked {e per analysis kind}: each cached value carries
    the {!Graph.generation} it was computed (or last revalidated) at.  A
    mutation therefore invalidates by default — the generation moved on —
    but a pass that declares it preserves an analysis can call
    {!preserve} after running to re-stamp the cached value to the current
    generation, keeping e.g. the dominator tree alive across pure
    instruction rewrites (the pass manager's preservation contract;
    checked in paranoid mode by {!check}).

    The cache lives in the graph's {!Graph.cache} slot, so it is saved
    and restored by the speculation journal.  Every update replaces the
    entry record (copy-on-write) rather than mutating it in place, so a
    {!Graph.rollback} restores the exact validity state of the
    checkpoint and revives the analyses that were valid there.

    Frequencies are additionally keyed by [loop_factor] (different
    configurations may assume different trip counts).

    Thread-safety: a graph (and therefore its cache slot) is owned by
    exactly one domain at a time — the parallel driver partitions
    functions across workers — so no synchronization is needed. *)

type stats = { hits : int; misses : int }

(** The three cached CFG analyses — the vocabulary of pass preservation
    contracts. *)
type kind = Dom | Loops | Frequency

let kind_to_string = function
  | Dom -> "dom"
  | Loops -> "loops"
  | Frequency -> "frequency"

let all_kinds = [ Dom; Loops; Frequency ]

(* Validity stamps and values are immutable: every update allocates a
   fresh entry (see the copy-on-write note above).  Only the lifetime
   hit/miss counters mutate in place — they are monotone bookkeeping,
   not validity state (a rollback restores the counter values saved in
   the checkpoint's entry, as documented). *)
type entry = {
  dom_gen : int;  (** generation {!dom_tree} is valid for; -1 = none *)
  dom_tree : Dom.t option;
  loops_gen : int;
  loop_forest : Loops.t option;
  freq_gen : int;
  freqs : (float * Frequency.t) list;  (** keyed by loop_factor *)
  clean_gens : (string * int) list;
      (** passes that ran without firing (and without mutating), keyed by
          the generation they ran clean at — the pass manager's
          skip-if-unchanged memo *)
  mutable hits : int;  (** lifetime counters, carried across updates *)
  mutable misses : int;
}

type Graph.cache += Cache of entry

let empty_entry =
  {
    dom_gen = -1;
    dom_tree = None;
    loops_gen = -1;
    loop_forest = None;
    freq_gen = -1;
    freqs = [];
    clean_gens = [];
    hits = 0;
    misses = 0;
  }

let entry g =
  match Graph.cache g with Cache e -> e | _ -> { empty_entry with hits = 0 }

let store g e = Graph.set_cache g (Cache e)

let miss e =
  Probe.fire "analyses.cache";
  e.misses <- e.misses + 1

let dom g =
  let e = entry g in
  let gen = Graph.generation g in
  match e.dom_tree with
  | Some d when e.dom_gen = gen ->
      e.hits <- e.hits + 1;
      d
  | _ ->
      miss e;
      let d = Dom.compute g in
      store g { e with dom_gen = gen; dom_tree = Some d };
      d

let loops g =
  (* [dom] may replace the entry; re-fetch after it (computing an
     analysis does not mutate the graph, so the generation is stable). *)
  let d = dom g in
  let e = entry g in
  let gen = Graph.generation g in
  match e.loop_forest with
  | Some l when e.loops_gen = gen ->
      e.hits <- e.hits + 1;
      l
  | _ ->
      miss e;
      let l = Loops.compute d in
      store g { e with loops_gen = gen; loop_forest = Some l };
      l

let frequency ?(loop_factor = Frequency.default_loop_factor) g =
  let d = dom g in
  let l = loops g in
  let e = entry g in
  let gen = Graph.generation g in
  let valid = e.freq_gen = gen in
  match if valid then List.assoc_opt loop_factor e.freqs else None with
  | Some f ->
      e.hits <- e.hits + 1;
      f
  | None ->
      miss e;
      let f = Frequency.compute ~loop_factor d l in
      let freqs =
        if valid then (loop_factor, f) :: e.freqs else [ (loop_factor, f) ]
      in
      store g { e with freq_gen = gen; freqs };
      f

(** Re-stamp the cached [kinds] of [g] to the current generation,
    provided they were valid at generation [since] — the pass manager's
    preservation contract: a pass that mutated the graph but declared it
    preserves an analysis keeps the value cached across its own
    mutations.  Kinds that were already stale at [since] (or never
    computed) are left alone: the contract only covers analyses that
    were valid when the pass started. *)
let preserve g ~since kinds =
  let gen = Graph.generation g in
  if gen <> since then begin
    let e = entry g in
    let e' =
      List.fold_left
        (fun e k ->
          match k with
          | Dom -> if e.dom_gen = since then { e with dom_gen = gen } else e
          | Loops ->
              if e.loops_gen = since then { e with loops_gen = gen } else e
          | Frequency ->
              if e.freq_gen = since then { e with freq_gen = gen } else e)
        e kinds
    in
    if e' != e then store g e'
  end

(** Did [pass] last run at the current generation without changing the
    graph?  (See {!note_pass_clean}.)  A deterministic pass that ran
    clean on this exact graph state will run clean again — the pass
    manager uses this to skip the re-run entirely. *)
let pass_clean g pass =
  match Graph.cache g with
  | Cache e -> (
      match List.assoc_opt pass e.clean_gens with
      | Some gen -> gen = Graph.generation g
      | None -> false)
  | _ -> false

(** Record that [pass] just ran on [g] without firing and without
    bumping the generation.  Stored copy-on-write in the cache entry, so
    rollback restores the memo state of the checkpoint along with the
    graph.  Memos stamped at older generations are dropped — any
    mutation invalidated them. *)
let note_pass_clean g pass =
  let e = entry g in
  let gen = Graph.generation g in
  let clean_gens =
    (pass, gen)
    :: List.filter (fun (n, g') -> n <> pass && g' = gen) e.clean_gens
  in
  store g { e with clean_gens }

(** A pass just fired, moving the graph from generation [since] to the
    current one, and its {e enables} contract says only [enabled] passes
    can gain new opportunities from its changes.  Every other pass that
    was clean on the pre-fire state is still clean: re-stamp those memos
    at the current generation (the enabled ones stay stale and will
    really re-run). *)
let keep_clean_except g ~since ~enabled =
  match Graph.cache g with
  | Cache e ->
      let gen = Graph.generation g in
      let clean_gens =
        List.filter_map
          (fun (n, g') ->
            if g' = since && not (List.mem n enabled) then Some (n, gen)
            else if g' = gen then Some (n, g')
            else None)
          e.clean_gens
      in
      if clean_gens <> [] || e.clean_gens <> [] then
        store g { e with clean_gens }
  | _ -> ()

(** Paranoid recompute-and-compare: does the cached, currently-valid
    value of [kind] (if any) equal a fresh computation?  Used to check
    preservation contracts; a [None]/stale cache trivially passes.  The
    fresh computation bypasses the cache and is discarded. *)
let check g kind =
  let e = entry g in
  let gen = Graph.generation g in
  let ok = function
    | true -> Ok ()
    | false ->
        Error
          (Printf.sprintf "cached %s differs from a fresh recompute"
             (kind_to_string kind))
  in
  match kind with
  | Dom -> (
      match e.dom_tree with
      | Some d when e.dom_gen = gen -> ok (Dom.equal d (Dom.compute g))
      | _ -> Ok ())
  | Loops -> (
      match e.loop_forest with
      | Some l when e.loops_gen = gen ->
          ok (Loops.equal l (Loops.compute (Dom.compute g)))
      | _ -> Ok ())
  | Frequency ->
      if e.freq_gen = gen then begin
        let d = Dom.compute g in
        let l = Loops.compute d in
        ok
          (List.for_all
             (fun (lf, f) ->
               Frequency.equal f (Frequency.compute ~loop_factor:lf d l))
             e.freqs)
      end
      else Ok ()

(** Lifetime hit/miss counters of a graph's cache (0/0 before any
    lookup).  A {!Graph.rollback} also rolls these back to their
    checkpoint values. *)
let stats g =
  match Graph.cache g with
  | Cache e -> { hits = e.hits; misses = e.misses }
  | _ -> { hits = 0; misses = 0 }
