(** The function graph: an arena of instructions and basic blocks with
    maintained def-use chains and predecessor lists.

    Invariants maintained by this module's mutation API (and checked by
    {!Verifier}):
    - [preds] of a block lists exactly the blocks whose terminator targets
      it, in a stable order;
    - every [Phi] has exactly one input per predecessor, aligned with the
      predecessor order;
    - use lists record every instruction and terminator referencing a
      value. *)

open Types

type user = U_instr of instr_id | U_term of block_id

type instr = {
  ins_id : instr_id;
  mutable kind : instr_kind;
  mutable ins_block : block_id;  (** -1 when detached *)
}

type block = {
  blk_id : block_id;
  mutable phis : instr_id list;
  mutable body : instr_id list;
  mutable term : terminator;
  mutable preds : block_id list;
}

(* Extensible per-graph cache slot: {!Analyses} stores memoized dominator
   trees / loop forests / frequencies here, keyed on [generation].  The
   slot lives in [Graph] (rather than in [Analyses]) so it can be saved
   and restored together with the graph by the speculation journal. *)
type cache = ..
type cache += No_cache

(* Copy-on-demand undo log for speculative transformation (the
   backtracking strategy).  Only the blocks / instructions / use lists
   actually touched after {!checkpoint} are saved, the first time each is
   mutated — far cheaper than the full {!copy} per attempt it replaces. *)
type journal = {
  j_blocks : (block_id, block option) Hashtbl.t;
  j_instrs : (instr_id, instr option) Hashtbl.t;
  j_uses : (instr_id, user list) Hashtbl.t;
  j_n_instrs : int;
  j_n_blocks : int;
  j_entry : block_id;
  j_generation : int;
  j_n_live : int;
  j_cache : cache;
}

type t = {
  name : string;
  n_params : int;
  mutable instrs : instr option array;
  mutable n_instrs : int;
  mutable blocks : block option array;
  mutable n_blocks : int;
  mutable entry : block_id;
  mutable uses : user list array;
  mutable generation : int;
      (** bumped by every mutation; analysis caches key on it *)
  mutable n_live : int;  (** live instruction count, maintained *)
  mutable cache : cache;
  mutable journal : journal option;
}

let name g = g.name
let n_params g = g.n_params
let entry g = g.entry
let generation g = g.generation

let create ?(name = "fn") ~n_params () =
  {
    name;
    n_params;
    instrs = Array.make 16 None;
    n_instrs = 0;
    blocks = Array.make 8 None;
    n_blocks = 0;
    entry = -1;
    uses = Array.make 16 [];
    generation = 0;
    n_live = 0;
    cache = No_cache;
    journal = None;
  }

(* ------------------------------------------------------------------ *)
(* Generation + journal bookkeeping                                    *)
(* ------------------------------------------------------------------ *)

let touch g = g.generation <- g.generation + 1

let copy_instr i = { ins_id = i.ins_id; kind = i.kind; ins_block = i.ins_block }

let copy_block b =
  {
    blk_id = b.blk_id;
    phis = b.phis;
    body = b.body;
    term = b.term;
    preds = b.preds;
  }

(* Save the pre-mutation state of a block/instruction/use list the first
   time it is touched after a checkpoint.  Slots allocated after the
   checkpoint need no saving: rollback truncates the arenas back to the
   checkpoint watermark. *)
let save_block g id =
  match g.journal with
  | None -> ()
  | Some j ->
      if id < j.j_n_blocks && not (Hashtbl.mem j.j_blocks id) then
        Hashtbl.add j.j_blocks id (Option.map copy_block g.blocks.(id))

let save_instr g id =
  match g.journal with
  | None -> ()
  | Some j ->
      if id < j.j_n_instrs && not (Hashtbl.mem j.j_instrs id) then
        Hashtbl.add j.j_instrs id (Option.map copy_instr g.instrs.(id))

let save_uses g v =
  match g.journal with
  | None -> ()
  | Some j ->
      if v < j.j_n_instrs && not (Hashtbl.mem j.j_uses v) then
        Hashtbl.add j.j_uses v g.uses.(v)

(* Hooks for the few modules that hand-mutate graph records directly
   (ssa_repair, inline, canonicalize): they must announce the mutation
   before performing it so the journal and generation stay sound. *)
let record_block g id =
  save_block g id;
  touch g

let record_instr g id =
  save_instr g id;
  touch g

let checkpoint g =
  (match g.journal with
  | Some _ -> invalid_arg "Graph.checkpoint: speculation already active"
  | None -> ());
  g.journal <-
    Some
      {
        j_blocks = Hashtbl.create 32;
        j_instrs = Hashtbl.create 64;
        j_uses = Hashtbl.create 64;
        j_n_instrs = g.n_instrs;
        j_n_blocks = g.n_blocks;
        j_entry = g.entry;
        j_generation = g.generation;
        j_n_live = g.n_live;
        j_cache = g.cache;
      }

let commit g =
  match g.journal with
  | None -> invalid_arg "Graph.commit: no active checkpoint"
  | Some _ -> g.journal <- None

let rollback g =
  match g.journal with
  | None -> invalid_arg "Graph.rollback: no active checkpoint"
  | Some j ->
      g.journal <- None;
      Hashtbl.iter (fun id saved -> g.instrs.(id) <- saved) j.j_instrs;
      Hashtbl.iter (fun id saved -> g.blocks.(id) <- saved) j.j_blocks;
      Hashtbl.iter (fun v l -> g.uses.(v) <- l) j.j_uses;
      for id = j.j_n_instrs to g.n_instrs - 1 do
        g.instrs.(id) <- None;
        g.uses.(id) <- []
      done;
      for id = j.j_n_blocks to g.n_blocks - 1 do
        g.blocks.(id) <- None
      done;
      g.n_instrs <- j.j_n_instrs;
      g.n_blocks <- j.j_n_blocks;
      g.entry <- j.j_entry;
      (* Restoring the generation (not bumping it) is sound — the graph
         is again byte-identical to its checkpoint state — and revives
         any analysis cached in the restored slot. *)
      g.generation <- j.j_generation;
      g.n_live <- j.j_n_live;
      g.cache <- j.j_cache

let in_speculation g = g.journal <> None

(* ------------------------------------------------------------------ *)
(* Arena access                                                        *)
(* ------------------------------------------------------------------ *)

let instr g id =
  match g.instrs.(id) with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Graph.instr: dead instruction %d" id)

let block g id =
  match g.blocks.(id) with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Graph.block: dead block %d" id)

let instr_exists g id =
  id >= 0 && id < g.n_instrs && g.instrs.(id) <> None

let block_exists g id =
  id >= 0 && id < g.n_blocks && g.blocks.(id) <> None

let kind g id = (instr g id).kind
let block_of g id = (instr g id).ins_block

let uses g id = g.uses.(id)

let is_phi g id = match kind g id with Phi _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Use-list maintenance                                                *)
(* ------------------------------------------------------------------ *)

let add_use g v user =
  if v >= 0 then begin
    save_uses g v;
    g.uses.(v) <- user :: g.uses.(v)
  end

let remove_use g v user =
  if v >= 0 then begin
    save_uses g v;
    (* Tail-recursive: use lists of hot values can be very long. *)
    let rec drop acc = function
      | [] -> List.rev acc
      | u :: rest ->
          if u = user then List.rev_append acc rest else drop (u :: acc) rest
    in
    g.uses.(v) <- drop [] g.uses.(v)
  end

let term_inputs = function
  | Jump _ | Unreachable | Return None -> []
  | Return (Some v) -> [ v ]
  | Branch { cond; _ } -> [ cond ]

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let grow_instrs g =
  if g.n_instrs = Array.length g.instrs then begin
    let instrs = Array.make (2 * Array.length g.instrs) None in
    Array.blit g.instrs 0 instrs 0 g.n_instrs;
    g.instrs <- instrs;
    let uses = Array.make (2 * Array.length g.uses) [] in
    Array.blit g.uses 0 uses 0 g.n_instrs;
    g.uses <- uses
  end

let grow_blocks g =
  if g.n_blocks = Array.length g.blocks then begin
    let blocks = Array.make (2 * Array.length g.blocks) None in
    Array.blit g.blocks 0 blocks 0 g.n_blocks;
    g.blocks <- blocks
  end

let add_block g =
  grow_blocks g;
  let id = g.n_blocks in
  g.blocks.(id) <-
    Some { blk_id = id; phis = []; body = []; term = Unreachable; preds = [] };
  g.n_blocks <- id + 1;
  if g.entry = -1 then g.entry <- id;
  touch g;
  id

let set_entry g bid =
  g.entry <- bid;
  touch g

(* Allocates the instruction without attaching it to a block. *)
let alloc_instr g kind =
  grow_instrs g;
  let id = g.n_instrs in
  g.instrs.(id) <- Some { ins_id = id; kind; ins_block = -1 };
  g.n_instrs <- id + 1;
  g.n_live <- g.n_live + 1;
  touch g;
  List.iter (fun v -> add_use g v (U_instr id)) (inputs_of_kind kind);
  id

(** Append an instruction to a block's body (or phi list for [Phi]). *)
let append g bid kind =
  let id = alloc_instr g kind in
  save_block g bid;
  let b = block g bid in
  (instr g id).ins_block <- bid;
  (match kind with
  | Phi _ -> b.phis <- b.phis @ [ id ]
  | _ -> b.body <- b.body @ [ id ]);
  id

(** Insert an instruction at the head of a block's body. *)
let prepend g bid kind =
  let id = alloc_instr g kind in
  save_block g bid;
  let b = block g bid in
  (instr g id).ins_block <- bid;
  (match kind with
  | Phi _ -> b.phis <- id :: b.phis
  | _ -> b.body <- id :: b.body);
  id

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let set_kind g id new_kind =
  save_instr g id;
  touch g;
  let i = instr g id in
  List.iter (fun v -> remove_use g v (U_instr id)) (inputs_of_kind i.kind);
  i.kind <- new_kind;
  List.iter (fun v -> add_use g v (U_instr id)) (inputs_of_kind new_kind)

let succs_of_term = function
  | Jump b -> [ b ]
  | Branch { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Return _ | Unreachable -> []

let succs g bid = succs_of_term (block g bid).term
let preds g bid = (block g bid).preds

let pred_index g bid pred =
  let rec find i = function
    | [] ->
        invalid_arg
          (Printf.sprintf "Graph.pred_index: b%d is not a predecessor of b%d"
             pred bid)
    | p :: rest -> if p = pred then i else find (i + 1) rest
  in
  find 0 (block g bid).preds

(* Drop predecessor [pred] from [bid], removing the matching phi input. *)
let remove_pred g bid pred =
  save_block g bid;
  touch g;
  let b = block g bid in
  let idx = pred_index g bid pred in
  b.preds <- List.filteri (fun i _ -> i <> idx) b.preds;
  List.iter
    (fun phi_id ->
      match kind g phi_id with
      | Phi inputs ->
          let inputs' =
            Array.init
              (Array.length inputs - 1)
              (fun i -> if i < idx then inputs.(i) else inputs.(i + 1))
          in
          set_kind g phi_id (Phi inputs')
      | _ -> assert false)
    b.phis

(* Add [pred] as a new predecessor of [bid]; each phi gets [filler] as its
   input for the new edge (callers typically pass a real value or
   [invalid_value] and patch afterwards). *)
let add_pred g bid pred ~filler =
  save_block g bid;
  touch g;
  let b = block g bid in
  b.preds <- b.preds @ [ pred ];
  List.iteri
    (fun i phi_id ->
      match kind g phi_id with
      | Phi inputs ->
          let f = filler i phi_id in
          set_kind g phi_id (Phi (Array.append inputs [| f |]))
      | _ -> assert false)
    b.phis

(** Set a block's terminator, keeping predecessor lists of the old and new
    successors consistent.  Phis of newly-gained successors receive
    [invalid_value] inputs which the caller must fill. *)
let set_term g bid term =
  (* Canonicalize a branch with identical targets into a jump so successor
     lists never contain duplicates. *)
  let term =
    match term with
    | Branch { if_true; if_false; _ } when if_true = if_false -> Jump if_true
    | t -> t
  in
  save_block g bid;
  touch g;
  let b = block g bid in
  let old_succs = succs_of_term b.term in
  let new_succs = succs_of_term term in
  List.iter (fun v -> remove_use g v (U_term bid)) (term_inputs b.term);
  List.iter
    (fun s -> if not (List.mem s new_succs) then remove_pred g s bid)
    old_succs;
  b.term <- term;
  List.iter (fun v -> add_use g v (U_term bid)) (term_inputs term);
  List.iter
    (fun s ->
      if not (List.mem s old_succs) then
        add_pred g s bid ~filler:(fun _ _ -> invalid_value))
    new_succs

let term g bid = (block g bid).term

(** Redirect the edge [from_block -> old_target] to [new_target].  The phi
    inputs that [old_target] held for this edge are dropped; phis of
    [new_target] (if any) receive [invalid_value] for the new edge. *)
let redirect_edge g ~from_block ~old_target ~new_target =
  if old_target <> new_target then begin
    save_block g from_block;
    touch g;
    let b = block g from_block in
    (match b.term with
    | Jump t when t = old_target -> b.term <- Jump new_target
    | Branch br when br.if_true = old_target && br.if_false = old_target ->
        b.term <- Branch { br with if_true = new_target; if_false = new_target }
    | Branch br when br.if_true = old_target ->
        b.term <- Branch { br with if_true = new_target }
    | Branch br when br.if_false = old_target ->
        b.term <- Branch { br with if_false = new_target }
    | _ ->
        invalid_arg
          (Printf.sprintf "Graph.redirect_edge: b%d does not target b%d"
             from_block old_target));
    remove_pred g old_target from_block;
    add_pred g new_target from_block ~filler:(fun _ _ -> invalid_value)
  end

(** Replace every use of [v] by [by] (in instructions and terminators). *)
let replace_uses g v ~by =
  let users = g.uses.(v) in
  List.iter
    (fun user ->
      match user with
      | U_instr id ->
          set_kind g id (map_inputs (fun x -> if x = v then by else x) (kind g id))
      | U_term bid -> (
          let b = block g bid in
          match b.term with
          | Return (Some x) when x = v ->
              save_block g bid;
              touch g;
              remove_use g v (U_term bid);
              b.term <- Return (Some by);
              add_use g by (U_term bid)
          | Branch br when br.cond = v ->
              save_block g bid;
              touch g;
              remove_use g v (U_term bid);
              b.term <- Branch { br with cond = by };
              add_use g by (U_term bid)
          | _ -> ()))
    users

(** Detach and delete an instruction.  The instruction must be unused. *)
let remove_instr g id =
  let i = instr g id in
  (match g.uses.(id) with
  | [] -> ()
  | _ -> invalid_arg (Printf.sprintf "Graph.remove_instr: %d still has uses" id));
  save_instr g id;
  save_uses g id;
  touch g;
  List.iter (fun v -> remove_use g v (U_instr id)) (inputs_of_kind i.kind);
  if i.ins_block >= 0 then begin
    save_block g i.ins_block;
    let b = block g i.ins_block in
    b.phis <- List.filter (fun x -> x <> id) b.phis;
    b.body <- List.filter (fun x -> x <> id) b.body
  end;
  g.instrs.(id) <- None;
  g.uses.(id) <- [];
  g.n_live <- g.n_live - 1

(** Detach an instruction from its block without deleting it (it keeps its
    kind and uses; it can be re-attached with [attach]). *)
let detach g id =
  let i = instr g id in
  if i.ins_block >= 0 then begin
    save_instr g id;
    save_block g i.ins_block;
    touch g;
    let b = block g i.ins_block in
    b.phis <- List.filter (fun x -> x <> id) b.phis;
    b.body <- List.filter (fun x -> x <> id) b.body;
    i.ins_block <- -1
  end

(** Re-attach a detached instruction at the end of [bid]'s body. *)
let attach g id bid =
  let i = instr g id in
  assert (i.ins_block = -1);
  save_instr g id;
  save_block g bid;
  touch g;
  i.ins_block <- bid;
  let b = block g bid in
  match i.kind with
  | Phi _ -> b.phis <- b.phis @ [ id ]
  | _ -> b.body <- b.body @ [ id ]

(** Delete a whole block: its phis and body are removed (uses of the
    removed instructions must already be gone), edges to successors are
    dropped. *)
let remove_block g bid =
  let b = block g bid in
  set_term g bid Unreachable;
  save_block g bid;
  touch g;
  List.iter
    (fun id ->
      let i = instr g id in
      save_instr g id;
      save_uses g id;
      List.iter (fun v -> remove_use g v (U_instr id)) (inputs_of_kind i.kind);
      g.instrs.(id) <- None;
      g.uses.(id) <- [];
      g.n_live <- g.n_live - 1)
    (b.phis @ b.body);
  (* Predecessor edges must have been redirected already. *)
  assert (b.preds = []);
  g.blocks.(bid) <- None

(* ------------------------------------------------------------------ *)
(* Iteration                                                           *)
(* ------------------------------------------------------------------ *)

let iter_blocks g f =
  for id = 0 to g.n_blocks - 1 do
    match g.blocks.(id) with Some b -> f b | None -> ()
  done

let fold_blocks g f acc =
  let acc = ref acc in
  iter_blocks g (fun b -> acc := f !acc b);
  !acc

let block_ids g = fold_blocks g (fun acc b -> b.blk_id :: acc) [] |> List.rev

let iter_instrs g f =
  for id = 0 to g.n_instrs - 1 do
    match g.instrs.(id) with Some i -> f i | None -> ()
  done

let fold_instrs g f acc =
  let acc = ref acc in
  iter_instrs g (fun i -> acc := f !acc i);
  !acc

(** All instruction ids of a block in execution order: phis then body. *)
let block_instrs g bid =
  let b = block g bid in
  b.phis @ b.body

(* Maintained incrementally by the mutation API (alloc / remove) so the
   hot per-duplication work charge in the driver is O(1) instead of an
   arena scan. *)
let live_instr_count g = g.n_live
let live_block_count g = fold_blocks g (fun n _ -> n + 1) 0

(** Rename a predecessor entry of [bid] from [old_pred] to [new_pred],
    keeping the phi inputs of [bid] untouched (used when a jump-only
    block is merged into its predecessor). *)
let replace_pred g bid ~old_pred ~new_pred =
  save_block g bid;
  touch g;
  let b = block g bid in
  b.preds <- List.map (fun p -> if p = old_pred then new_pred else p) b.preds

(* ------------------------------------------------------------------ *)
(* Orders                                                              *)
(* ------------------------------------------------------------------ *)

(** Reverse postorder over reachable blocks. *)
let rpo g =
  let visited = Array.make g.n_blocks false in
  let order = ref [] in
  let rec dfs bid =
    if not visited.(bid) then begin
      visited.(bid) <- true;
      List.iter dfs (succs g bid);
      order := bid :: !order
    end
  in
  if g.entry >= 0 then dfs g.entry;
  !order

let reachable g =
  let set = Array.make (max 1 g.n_blocks) false in
  List.iter (fun b -> set.(b) <- true) (rpo g);
  set

(** Delete every block not reachable from the entry (dropping their edges
    into reachable blocks, with the matching phi inputs).  Returns true if
    anything was removed. *)
let remove_unreachable_blocks g =
  let reach = reachable g in
  let dead =
    fold_blocks g
      (fun acc b -> if reach.(b.blk_id) then acc else b.blk_id :: acc)
      []
  in
  if dead = [] then false
  else begin
    (* Drop all edges out of dead blocks (this also removes phi inputs
       that reachable merge blocks held for them). *)
    List.iter (fun bid -> set_term g bid Unreachable) dead;
    (* Clear def-use edges among dead instructions, then delete them. *)
    List.iter
      (fun bid ->
        List.iter (fun id -> set_kind g id (Const 0)) (block_instrs g bid))
      dead;
    List.iter
      (fun bid ->
        save_block g bid;
        touch g;
        let b = block g bid in
        List.iter
          (fun id ->
            save_instr g id;
            save_uses g id;
            g.instrs.(id) <- None;
            g.uses.(id) <- [];
            g.n_live <- g.n_live - 1)
          (b.phis @ b.body);
        b.phis <- [];
        b.body <- [];
        b.preds <- [];
        g.blocks.(bid) <- None)
      dead;
    true
  end

(* ------------------------------------------------------------------ *)
(* Deep copy                                                           *)
(* ------------------------------------------------------------------ *)

(** Overwrite [g]'s contents with those of [backup] (a graph produced by
    {!copy}).  Used by the backtracking duplication strategy to undo a
    tentative transformation while keeping the same graph identity. *)
let restore g ~backup =
  (match g.journal with
  | Some _ -> invalid_arg "Graph.restore: speculation active (use rollback)"
  | None -> ());
  g.instrs <-
    Array.map
      (Option.map (fun i ->
           { ins_id = i.ins_id; kind = i.kind; ins_block = i.ins_block }))
      backup.instrs;
  g.n_instrs <- backup.n_instrs;
  g.blocks <-
    Array.map
      (Option.map (fun b ->
           {
             blk_id = b.blk_id;
             phis = b.phis;
             body = b.body;
             term = b.term;
             preds = b.preds;
           }))
      backup.blocks;
  g.n_blocks <- backup.n_blocks;
  g.entry <- backup.entry;
  g.uses <- Array.copy backup.uses;
  g.n_live <- backup.n_live;
  (* The overwrite is an arbitrary state change: advance the generation
     (never rewind — cached analyses key on it) and drop the cache. *)
  touch g;
  g.cache <- No_cache

(** Deep copy of a graph.  Instruction and block ids are preserved, which
    keeps external id-keyed tables meaningful across a copy (used by the
    backtracking comparator). *)
let copy g =
  {
    name = g.name;
    n_params = g.n_params;
    instrs =
      Array.map
        (Option.map (fun i ->
             { ins_id = i.ins_id; kind = i.kind; ins_block = i.ins_block }))
        g.instrs;
    n_instrs = g.n_instrs;
    blocks =
      Array.map
        (Option.map (fun b ->
             {
               blk_id = b.blk_id;
               phis = b.phis;
               body = b.body;
               term = b.term;
               preds = b.preds;
             }))
        g.blocks;
    n_blocks = g.n_blocks;
    entry = g.entry;
    uses = Array.copy g.uses;
    generation = 0;
    n_live = g.n_live;
    cache = No_cache;
    journal = None;
  }
